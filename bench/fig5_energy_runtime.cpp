// Reproduces paper Fig. 5: energy vs runtime scatter for (a) TinyLlama
// autoregressive, (b) TinyLlama prompt, (c) MobileBERT — original models
// (crosses, 1-8 / 1-4 chips) plus the scaled-up 64-head model (circles,
// up to 64 chips) on the same axes.
//
// Shapes to hold (paper Sec. V-B/V-C): 8 chips reaches ~single-chip
// energy at a fraction of the runtime; the scaled model's energy drops
// once all weights fit on-chip (32+ chips, no double-buffering).
#include <iostream>

#include "bench_common.hpp"

using namespace distmcu;

namespace {

void panel(const std::string& title, const model::TransformerConfig& original,
           const model::TransformerConfig* scaled, model::Mode mode,
           const std::vector<int>& orig_chips, const std::vector<int>& scaled_chips) {
  std::cout << title << "\n";
  util::Table table({"series", "chips", "runtime_cycles", "energy_mJ", "E_core_mJ",
                     "E_l3_mJ", "E_l2_mJ", "E_c2c_mJ", "residency"});
  auto add_series = [&](const char* name, const model::TransformerConfig& cfg,
                        const std::vector<int>& chips) {
    for (const auto& p : bench::sweep_chips(cfg, mode, chips)) {
      table.row()
          .add(name)
          .add(p.chips)
          .add(p.report.block_cycles)
          .add(p.energy.total_mj(), 4)
          .add(util::pj_to_mj(p.energy.core), 4)
          .add(util::pj_to_mj(p.energy.l3), 4)
          .add(util::pj_to_mj(p.energy.l2), 4)
          .add(util::pj_to_mj(p.energy.c2c), 4)
          .add(partition::residency_name(p.report.residency));
    }
  };
  add_series("original", original, orig_chips);
  if (scaled != nullptr) add_series("scaled-up", *scaled, scaled_chips);
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.write_csv(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  const auto llama = model::TransformerConfig::tiny_llama_42m();
  const auto scaled = model::TransformerConfig::tiny_llama_scaled(64);
  const auto bert = model::TransformerConfig::mobile_bert();

  panel("Fig. 5(a) — TinyLlama autoregressive: energy vs runtime", llama, &scaled,
        model::Mode::autoregressive, {1, 2, 4, 8}, {16, 32, 64});
  panel("Fig. 5(b) — TinyLlama prompt: energy vs runtime", llama, &scaled,
        model::Mode::prompt, {1, 2, 4, 8}, {16, 32, 64});
  panel("Fig. 5(c) — MobileBERT: energy vs runtime", bert, nullptr, model::Mode::prompt,
        {1, 2, 4}, {});

  // Shape checks mirroring the paper's three energy claims.
  const auto ar = bench::sweep_chips(llama, model::Mode::autoregressive, {1, 8});
  const auto ar_scaled = bench::sweep_chips(scaled, model::Mode::autoregressive,
                                            {16, 32});
  const auto bert_pts = bench::sweep_chips(bert, model::Mode::prompt, {1, 4});
  const bool similar_energy_8 =
      ar[1].energy.total_mj() < ar[0].energy.total_mj() * 1.05;
  const bool resident_drop =
      ar_scaled[1].energy.total_mj() < ar_scaled[0].energy.total_mj() * 0.9;
  const bool bert_increase = bert_pts[1].energy.total_mj() > bert_pts[0].energy.total_mj();
  std::cout << "shape checks:\n"
            << "  (a) 8-chip AR energy <= single-chip: "
            << (similar_energy_8 ? "PASS" : "FAIL") << "\n"
            << "  (a) fully-resident (32 chips) cuts energy vs double-buffered (16): "
            << (resident_drop ? "PASS" : "FAIL") << "\n"
            << "  (c) MobileBERT 4-chip energy slightly above single-chip: "
            << (bert_increase ? "PASS" : "FAIL") << "\n";
  return 0;
}
