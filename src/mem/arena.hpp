#ifndef DISTMCU_MEM_ARENA_HPP
#define DISTMCU_MEM_ARENA_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "mem/memory_level.hpp"
#include "util/units.hpp"

namespace distmcu::mem {

/// One named allocation inside an arena. Offsets are byte offsets from
/// the arena base; the planner uses them only for fit accounting and
/// human-readable memory maps, never for host pointers.
struct Allocation {
  std::string name;
  Bytes offset = 0;
  Bytes size = 0;
};

/// Bump allocator over a fixed-capacity memory tier, in the style of the
/// static memory planners used by TinyML deployment flows (Deeploy/TVM):
/// allocations are named, aligned, never freed individually, and the high
/// -water mark decides whether a deployment plan fits. `try_allocate`
/// reports failure instead of throwing so the memory planner can probe
/// residency regimes cheaply.
class Arena {
 public:
  Arena(std::string name, Bytes capacity, Bytes alignment = 8);

  /// Attempt an allocation; returns false (and leaves the arena
  /// unchanged) when it would exceed capacity.
  [[nodiscard]] bool try_allocate(const std::string& name, Bytes size);

  /// Allocation that throws PlanError on failure.
  Allocation allocate(const std::string& name, Bytes size);

  /// Release everything (new block / new plan probe).
  void reset();

  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] Bytes used() const { return used_; }
  [[nodiscard]] Bytes remaining() const { return capacity_ - used_; }
  [[nodiscard]] Bytes high_water() const { return high_water_; }
  [[nodiscard]] const std::vector<Allocation>& allocations() const { return allocations_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Multi-line human-readable memory map (used by partition_inspector).
  [[nodiscard]] std::string memory_map() const;

 private:
  [[nodiscard]] Bytes aligned(Bytes size) const;

  std::string name_;
  Bytes capacity_;
  Bytes alignment_;
  Bytes used_ = 0;
  Bytes high_water_ = 0;
  std::vector<Allocation> allocations_;
};

}  // namespace distmcu::mem

#endif  // DISTMCU_MEM_ARENA_HPP
