#ifndef DISTMCU_CHIP_KERNEL_TIMING_HPP
#define DISTMCU_CHIP_KERNEL_TIMING_HPP

#include <cstdint>

#include "chip/chip_config.hpp"
#include "util/units.hpp"

namespace distmcu::chip {

/// Cost of one kernel launch on the cluster, split the way the timed
/// runtime needs it:
///  - `compute_cycles`: pure core-active time (drives the P*T_comp energy
///    term and overlaps with tile DMA),
///  - `overhead_cycles`: kernel call + barrier (not overlappable),
///  - `l1_in_bytes` / `l1_out_bytes`: L2<->L1 tile traffic implied by the
///    kernel's operands (streamed through L1 by the cluster DMA).
struct KernelCost {
  Cycles compute_cycles = 0;
  Cycles overhead_cycles = 0;
  Bytes l1_in_bytes = 0;
  Bytes l1_out_bytes = 0;

  [[nodiscard]] Bytes l1_bytes() const { return l1_in_bytes + l1_out_bytes; }
};

/// Analytic cycle model for the kernels of a Transformer block on one
/// Siracusa cluster. The model is deliberately simple and fully
/// documented so every constant can be ablated:
///
///   per-output-element cost = K / macs_per_cycle + out_elem_overhead
///   per-core work           = ceil over the parallelized dimension
///   kernel total            = call_overhead + core work + barrier
///
/// Work is parallelized across the 8 cores over the larger of the two
/// output dimensions (rows for GEMM, output channels for GEMV), matching
/// how PULP kernels split work. The ceil-based split captures the
/// utilization cliff when a partitioned kernel's dimension drops below
/// the core count — the cause of the paper's sub-linear kernel scaling.
class KernelTiming {
 public:
  explicit KernelTiming(const TimingConfig& cfg) : cfg_(cfg) {}

  /// C[M,N] = A[M,K] * B[K,N]; B is the stationary operand ("weights").
  /// `weight_bytes_per_elem` controls traffic, `acc_precision` the MAC
  /// throughput. GEMV is the M == 1 case.
  [[nodiscard]] KernelCost gemm(std::int64_t m, std::int64_t n, std::int64_t k,
                                Precision op_precision, Bytes weight_elem_bytes,
                                Bytes act_elem_bytes) const;

  /// Row-wise softmax over an [rows, cols] tensor.
  [[nodiscard]] KernelCost softmax(std::int64_t rows, std::int64_t cols,
                                   Bytes act_elem_bytes) const;

  /// RMSNorm / LayerNorm over [rows, cols].
  [[nodiscard]] KernelCost norm(std::int64_t rows, std::int64_t cols,
                                Bytes act_elem_bytes) const;

  /// Element-wise map (GELU/SiLU/residual add) over n elements.
  [[nodiscard]] KernelCost elementwise(std::int64_t n, Bytes act_elem_bytes) const;

  /// Rotary position embedding over [rows, dim].
  [[nodiscard]] KernelCost rope(std::int64_t rows, std::int64_t dim,
                                Bytes act_elem_bytes) const;

  /// Accumulation of a partial-sum buffer during the hierarchical
  /// reduce: n elements added into a local buffer.
  [[nodiscard]] KernelCost accumulate(std::int64_t n, Bytes act_elem_bytes) const;

  [[nodiscard]] const TimingConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] Cycles ceil_div_work(double work, double rate) const;

  TimingConfig cfg_;
};

}  // namespace distmcu::chip

#endif  // DISTMCU_CHIP_KERNEL_TIMING_HPP
