#ifndef DISTMCU_ENERGY_ENERGY_MODEL_HPP
#define DISTMCU_ENERGY_ENERGY_MODEL_HPP

#include "chip/chip_config.hpp"
#include "noc/topology.hpp"
#include "runtime/timed_simulation.hpp"
#include "util/units.hpp"

namespace distmcu::energy {

/// Per-component energy of one simulated execution, in picojoules —
/// the terms of the paper's Sec. V-A equation:
///
///   E_total = N_C2C * E_C2C
///           + sum_j [ P * T_comp,j
///                   + N_L3<->L2,j * E_L3<->L2
///                   + N_L2<->L1,j * E_L2<->L1 ]
struct EnergyBreakdown {
  PicoJoules core = 0;  // P * T_comp summed over chips
  PicoJoules l3 = 0;    // off-chip accesses (100 pJ/B)
  PicoJoules l2 = 0;    // L2<->L1 tile traffic (2 pJ/B)
  PicoJoules c2c = 0;   // MIPI link traffic (100 pJ/B)

  [[nodiscard]] PicoJoules total() const { return core + l3 + l2 + c2c; }
  [[nodiscard]] double total_mj() const { return util::pj_to_mj(total()); }
  [[nodiscard]] double total_uj() const { return util::pj_to_uj(total()); }
};

/// Evaluates the paper's analytical energy model on a RunReport.
/// P is the active cluster power (8 cores x 13 mW) applied to each
/// chip's compute-active time only — DMA stalls are not charged, exactly
/// as the equation is written (see DESIGN.md "Calibration decisions").
class EnergyModel {
 public:
  EnergyModel(chip::ChipConfig chip_cfg, noc::LinkConfig link);

  [[nodiscard]] EnergyBreakdown compute(const runtime::RunReport& report) const;

  /// Energy-Delay Product in mJ*ms — the paper's abstract metric
  /// (27.2x improvement at 8 chips).
  [[nodiscard]] double edp_mj_ms(const EnergyBreakdown& energy, Cycles cycles) const;

  [[nodiscard]] const chip::ChipConfig& chip() const { return chip_; }

 private:
  chip::ChipConfig chip_;
  noc::LinkConfig link_;
};

}  // namespace distmcu::energy

#endif  // DISTMCU_ENERGY_ENERGY_MODEL_HPP
