// Design-space exploration: sweep chip count (and optionally head count)
// for any of the paper's workloads and emit a CSV of latency, speedup,
// energy, EDP and residency — the tool a platform architect would use to
// size a multi-chip deployment before committing to silicon.
//
//   ./examples/scalability_explorer [model] [mode] [max_chips]
//     model: tinyllama | mobilebert | scaled64     mode: ar | prompt
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "energy/energy_model.hpp"
#include "model/config.hpp"
#include "partition/plan.hpp"
#include "runtime/timed_simulation.hpp"
#include "util/table.hpp"

using namespace distmcu;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "scaled64";
  const std::string mode_s = argc > 2 ? argv[2] : "ar";
  const int max_chips = argc > 3 ? std::atoi(argv[3]) : 64;

  model::TransformerConfig cfg;
  if (which == "mobilebert") {
    cfg = model::TransformerConfig::mobile_bert();
  } else if (which == "tinyllama") {
    cfg = model::TransformerConfig::tiny_llama_42m();
  } else {
    cfg = model::TransformerConfig::tiny_llama_scaled(64);
  }
  const model::Mode mode =
      mode_s == "prompt" ? model::Mode::prompt : model::Mode::autoregressive;

  const runtime::SystemConfig sys = runtime::SystemConfig::siracusa_system();
  const runtime::TimedBlockSimulation sim(sys);
  const energy::EnergyModel em(sys.chip, sys.link);

  util::Table table({"chips", "residency", "cycles", "latency_ms", "speedup",
                     "efficiency", "energy_mJ", "EDP_mJms"});
  double base_cycles = 0.0;
  for (int n = 1; n <= max_chips && n <= cfg.num_heads; n *= 2) {
    const auto plan = partition::PartitionPlan::create(cfg, n);
    const auto rep = sim.run(plan, mode);
    const auto e = em.compute(rep);
    if (n == 1) base_cycles = static_cast<double>(rep.block_cycles);
    const double speedup = base_cycles / static_cast<double>(rep.block_cycles);
    table.row()
        .add(n)
        .add(partition::residency_name(rep.residency))
        .add(rep.block_cycles)
        .add(rep.ms(sys.chip.freq_hz), 4)
        .add(speedup, 2)
        .add(speedup / n, 2)
        .add(e.total_mj(), 4)
        .add(em.edp_mj_ms(e, rep.block_cycles), 5);
  }

  std::cout << cfg.name << " / " << model::mode_name(mode)
            << " — one Transformer block\n\n";
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.write_csv(std::cout);
  return 0;
}
