// Tests for the batched serving runtime: continuous batching must keep
// every request's token stream bit-identical to an independent
// InferenceSession::generate call, aggregate cycle/energy accounting
// must sum to the per-request parts, the KV-cache pool must reject
// gracefully when exhausted, and the GenerationResult/BlockResult rate
// metrics must survive their zero-input edge cases.
#include <gtest/gtest.h>

#include <numeric>
#include <optional>
#include <vector>

#include "mem/arena.hpp"
#include "model/kv_cache.hpp"
#include "runtime/batched_engine.hpp"
#include "runtime/inference_session.hpp"
#include "sim/tracer.hpp"
#include "util/check.hpp"

using namespace distmcu;
using model::TransformerConfig;
using runtime::BatchedEngine;
using runtime::GenerationResult;
using runtime::InferenceSession;
using runtime::RequestId;
using runtime::RequestResult;

namespace {

constexpr double kFreqHz = 500e6;

TransformerConfig small_llama() {
  TransformerConfig cfg = TransformerConfig::tiny_llama_42m();
  cfg.embed_dim = 32;
  cfg.ffn_dim = 64;
  cfg.num_heads = 4;
  cfg.head_dim = 8;
  cfg.num_layers = 2;
  cfg.vocab_size = 100;
  cfg.ar_context = 24;
  cfg.prompt_len = 4;
  cfg.validate();
  return cfg;
}

/// Full-width TinyLlama blocks (only the layer count and vocab are cut
/// for speed): at 4 chips this deployment is in the *streamed* regime,
/// where block weights are fetched from L3 during every decode step —
/// the case continuous batching exists for.
TransformerConfig streamed_llama() {
  TransformerConfig cfg = TransformerConfig::tiny_llama_42m();
  cfg.num_layers = 2;
  cfg.vocab_size = 200;
  cfg.ar_context = 32;
  cfg.prompt_len = 4;
  cfg.validate();
  return cfg;
}

/// Mixed workload: prompts of different lengths decoding different
/// token counts, so requests finish at different steps.
struct Workload {
  std::vector<int> prompt;
  int new_tokens;
};

std::vector<Workload> mixed_workloads() {
  return {
      {{1, 2, 3}, 6},
      {{7}, 3},
      {{4, 9, 2, 11}, 8},
      {{5, 5}, 1},
  };
}

const RequestResult& result_for(const std::vector<RequestResult>& results,
                                RequestId id) {
  for (const auto& r : results) {
    if (r.id == id) return r;
  }
  throw Error("result_for: no such request id");
}

}  // namespace

TEST(BatchedEngine, TokensIdenticalToSequentialGenerate) {
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  const auto workloads = mixed_workloads();

  for (int batch = 1; batch <= 4; ++batch) {
    BatchedEngine engine(session, {.max_batch = batch, .max_pending = 64});
    std::vector<RequestId> ids;
    for (const auto& w : workloads) {
      const auto id = engine.submit(w.prompt, w.new_tokens);
      ASSERT_TRUE(id.has_value());
      ids.push_back(*id);
    }
    const auto results = engine.run_to_completion();
    ASSERT_EQ(results.size(), workloads.size());
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      const auto solo =
          session.generate(workloads[i].prompt, workloads[i].new_tokens);
      const auto& batched = result_for(results, ids[i]);
      EXPECT_EQ(batched.gen.tokens, solo.tokens)
          << "request " << i << " diverged at batch size " << batch;
      EXPECT_EQ(batched.gen.generated, solo.generated);
    }
  }
}

TEST(BatchedEngine, RequestsFinishAtDifferentSteps) {
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  BatchedEngine engine(session, {.max_batch = 4, .max_pending = 64});
  std::vector<RequestId> ids;
  for (const auto& w : mixed_workloads()) ids.push_back(*engine.submit(w.prompt, w.new_tokens));
  const auto results = engine.run_to_completion();
  // All admitted together (batch covers the workload), so finish steps
  // order by token count: 1 < 3 < 6 < 8.
  EXPECT_LT(result_for(results, ids[3]).finished_step,
            result_for(results, ids[1]).finished_step);
  EXPECT_LT(result_for(results, ids[1]).finished_step,
            result_for(results, ids[0]).finished_step);
  EXPECT_LT(result_for(results, ids[0]).finished_step,
            result_for(results, ids[2]).finished_step);
  EXPECT_EQ(engine.stats().peak_batch, 4);
  EXPECT_EQ(engine.stats().completed, 4);
}

TEST(BatchedEngine, AggregateAccountingSumsToPerRequestParts) {
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  BatchedEngine engine(session, {.max_batch = 3, .max_pending = 64});
  for (const auto& w : mixed_workloads()) (void)*engine.submit(w.prompt, w.new_tokens);
  const auto results = engine.run_to_completion();

  Cycles cycle_sum = 0;
  double energy_sum = 0.0;
  int generated_sum = 0;
  for (const auto& r : results) {
    EXPECT_GT(r.gen.total_cycles, 0u);
    EXPECT_GT(r.gen.total_energy_mj, 0.0);
    cycle_sum += r.gen.total_cycles;
    energy_sum += r.gen.total_energy_mj;
    generated_sum += r.gen.generated;
  }
  // Cycles are attributed with integer remainder distribution: exact.
  EXPECT_EQ(cycle_sum, engine.stats().total_cycles);
  EXPECT_NEAR(energy_sum, engine.stats().total_energy_mj,
              1e-9 * energy_sum);
  EXPECT_EQ(generated_sum, engine.stats().total_generated);
  EXPECT_GT(engine.stats().aggregate_tokens_per_s(kFreqHz), 0.0);

  // Residence latency covers every step a request was in flight, so it
  // is at least the request's own attributed cost and the spans stay
  // inside the engine timeline.
  for (const auto& r : results) {
    EXPECT_GE(r.latency_cycles(), r.gen.total_cycles);
    EXPECT_LE(r.finished_at, engine.stats().total_cycles);
    EXPECT_GE(r.finished_at, r.admitted_at);
  }
}

TEST(BatchedEngine, SingleRequestMatchesGenerateCosts) {
  // At batch size 1 nothing is shared, so the serving cost model must
  // collapse to exactly the sequential generate accounting.
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  BatchedEngine engine(session, {.max_batch = 1, .max_pending = 4});
  const std::vector<int> prompt{3, 1, 4};
  const auto id = engine.submit(prompt, 5);
  ASSERT_TRUE(id.has_value());
  const auto results = engine.run_to_completion();
  const auto solo = session.generate(prompt, 5);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].gen.tokens, solo.tokens);
  EXPECT_EQ(results[0].gen.total_cycles, solo.total_cycles);
  EXPECT_NEAR(results[0].gen.total_energy_mj, solo.total_energy_mj,
              1e-9 * solo.total_energy_mj);
  // Alone in the batch, residence latency equals the attributed cost.
  EXPECT_EQ(results[0].latency_cycles(), solo.total_cycles);
}

TEST(BatchedEngine, BatchingReducesAggregateCyclesVersusSequential) {
  // The point of continuous batching on a weight-streaming deployment:
  // B requests served together cost less than B independent runs,
  // because block weights stream once per step instead of once per
  // request.
  const auto cfg = streamed_llama();
  const InferenceSession session(cfg, 4);
  // Precondition for the win: weight streaming must be on the decode
  // latency path.
  const auto ar = session.run_block(model::Mode::autoregressive);
  ASSERT_EQ(ar.report.residency, partition::Residency::streamed);
  ASSERT_GT(ar.report.breakdown.dma_l3_l2, 0u);

  const std::vector<int> prompt{1, 2, 3};
  const int steps = 6;
  const int batch = 4;

  BatchedEngine engine(session, {.max_batch = batch, .max_pending = 64});
  for (int i = 0; i < batch; ++i) (void)*engine.submit(prompt, steps);
  (void)engine.run_to_completion();

  const auto solo = session.generate(prompt, steps);
  const Cycles sequential = solo.total_cycles * batch;
  EXPECT_LT(engine.stats().total_cycles, sequential);
  // The saving is exactly the de-duplicated weight streaming: every
  // decode step fetches the block weights once instead of `batch`
  // times, so the advantage must exceed one full streaming pass.
  EXPECT_GT(sequential - engine.stats().total_cycles,
            static_cast<Cycles>(cfg.num_layers) *
                ar.report.breakdown.dma_l3_l2);
}

TEST(BatchedEngine, ContinuousAdmissionBackfillsFreedSlots) {
  // More requests than slots: late requests wait in the queue and join
  // the running batch as earlier ones finish (continuous batching, not
  // static batches).
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  BatchedEngine engine(session, {.max_batch = 2, .max_pending = 64});
  const auto workloads = mixed_workloads();
  std::vector<RequestId> ids;
  for (const auto& w : workloads) ids.push_back(*engine.submit(w.prompt, w.new_tokens));
  EXPECT_EQ(engine.pending_requests(), 4);

  const auto results = engine.run_to_completion();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(engine.stats().peak_batch, 2);
  // The last two requests were admitted strictly after the first two.
  EXPECT_GT(result_for(results, ids[2]).admitted_step, 0);
  EXPECT_GT(result_for(results, ids[3]).admitted_step, 0);
  // Equivalence still holds for requests that joined mid-flight.
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const auto solo =
        session.generate(workloads[i].prompt, workloads[i].new_tokens);
    EXPECT_EQ(result_for(results, ids[i]).gen.tokens, solo.tokens);
  }
}

TEST(BatchedEngine, SubmitRejectsGracefullyWhenQueueFull) {
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 2);
  BatchedEngine engine(session, {.max_batch = 1, .max_pending = 1});
  const auto a = engine.submit({1, 2}, 4);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(engine.step());  // admits A into the only KV slot
  const auto b = engine.submit({3, 4}, 4);
  ASSERT_TRUE(b.has_value());  // queue has room again
  const auto c = engine.submit({5, 6}, 4);
  EXPECT_FALSE(c.has_value());  // queue full: graceful reject, no throw
  EXPECT_EQ(engine.stats().rejected, 1);

  const auto results = engine.run_to_completion();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(result_for(results, *a).gen.tokens, session.generate({1, 2}, 4).tokens);
  EXPECT_EQ(result_for(results, *b).gen.tokens, session.generate({3, 4}, 4).tokens);
}

TEST(BatchedEngine, SubmitValidatesLikeGenerate) {
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 2);
  BatchedEngine engine(session, {});
  EXPECT_THROW((void)engine.submit({}, 1), Error);
  EXPECT_THROW((void)engine.submit({1}, -1), Error);
  EXPECT_THROW((void)engine.submit({1}, cfg.ar_context + 1), Error);
  // Prefill cost/fit are derived from the static prompt shape, so
  // prompts beyond prompt_len are rejected rather than under-charged.
  const std::vector<int> long_prompt(
      static_cast<std::size_t>(cfg.prompt_len) + 1, 1);
  EXPECT_THROW((void)engine.submit(long_prompt, 1), Error);
  // Bad options are rejected up front, before any pool construction.
  EXPECT_THROW(BatchedEngine(session, {.max_batch = 0, .max_pending = 4}),
               Error);
  EXPECT_THROW(BatchedEngine(session, {.max_batch = 2, .max_pending = -1}),
               Error);
}

TEST(BatchedEngine, ZeroNewTokensFinishesAfterPrefillOnly) {
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 2);
  BatchedEngine engine(session, {});
  const auto id = engine.submit({1, 2, 3}, 0);
  ASSERT_TRUE(id.has_value());
  const auto results = engine.run_to_completion();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].gen.tokens, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(results[0].gen.generated, 0);
  EXPECT_GT(results[0].gen.total_cycles, 0u);  // prefill is still charged
  // Zero generated tokens must not divide by zero anywhere.
  EXPECT_EQ(results[0].gen.mj_per_token(), 0.0);
  EXPECT_GT(results[0].gen.tokens_per_s(kFreqHz), -1.0);
}

TEST(BatchedEngine, TracerAttributesChargesToRequests) {
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  sim::Tracer tracer;
  BatchedEngine engine(session, {.max_batch = 2, .max_pending = 8}, &tracer);
  const auto a = engine.submit({1, 2, 3}, 4);
  const auto b = engine.submit({7, 8}, 2);
  const auto results = engine.run_to_completion();

  // Every span carries its owning request; traced time per request
  // equals the attributed cycle accounting.
  EXPECT_EQ(tracer.total_for_request(sim::kNoRequest), 0u);
  EXPECT_EQ(tracer.total_for_request(*a),
            result_for(results, *a).gen.total_cycles);
  EXPECT_EQ(tracer.total_for_request(*b),
            result_for(results, *b).gen.total_cycles);
  EXPECT_EQ(tracer.makespan(), engine.stats().total_cycles);
  // The tag resets after every engine charge.
  EXPECT_EQ(tracer.current_request(), sim::kNoRequest);
}

// --- KV pool / slot arena -------------------------------------------------

TEST(SlotArena, ExhaustionReturnsNulloptNotUB) {
  mem::Arena arena("l2.kv_pool", 4096);
  mem::SlotArena slots(arena, "kv_set", 2, 1024);
  EXPECT_EQ(arena.used(), 2048u);

  const auto s0 = slots.acquire();
  const auto s1 = slots.acquire();
  ASSERT_TRUE(s0.has_value());
  ASSERT_TRUE(s1.has_value());
  EXPECT_NE(*s0, *s1);
  EXPECT_EQ(slots.free(), 0);

  const auto s2 = slots.acquire();
  EXPECT_FALSE(s2.has_value());  // graceful reject

  slots.release(*s0);
  const auto s3 = slots.acquire();
  ASSERT_TRUE(s3.has_value());
  EXPECT_EQ(*s3, *s0);  // lowest-free-index policy

  EXPECT_THROW(slots.release(*s1 + 5), Error);  // out of range
  slots.release(*s1);
  EXPECT_THROW(slots.release(*s1), Error);  // double release
}

TEST(SlotArena, PoolThatDoesNotFitThrowsPlanError) {
  mem::Arena arena("l2.kv_pool", 1024);
  EXPECT_THROW(mem::SlotArena(arena, "kv_set", 2, 1024), PlanError);
}

TEST(SlotArena, RejectsNonPositiveShapes) {
  mem::Arena arena("l2.kv_pool", 1024);
  EXPECT_THROW(mem::SlotArena(arena, "kv_set", -1, 64), Error);
  EXPECT_THROW(mem::SlotArena(arena, "kv_set", 0, 64), Error);
  EXPECT_THROW(mem::SlotArena(arena, "kv_set", 1, 0), Error);
}

TEST(BatchedEngine, PoolExceedingL2BudgetThrowsPlanError) {
  // Full-capacity KV sets for every slot must fit the worst-case chip's
  // L2 next to the single-request deployment plan; a batch that cannot
  // physically hold its caches is rejected at construction, not served
  // with fictitious memory.
  auto cfg = small_llama();
  cfg.ar_context = 24;
  cfg.validate();
  auto sys = runtime::SystemConfig::siracusa_system();
  sys.chip.l2_size = 80 * 1024ull;  // tight: fits a handful of KV sets
  const InferenceSession session(cfg, 4, sys);
  // A modest batch fits...
  BatchedEngine ok(session, {.max_batch = 2, .max_pending = 4});
  // ...but an absurd one must throw instead of overcommitting L2.
  EXPECT_THROW(BatchedEngine(session, {.max_batch = 10000, .max_pending = 4}),
               PlanError);
}

TEST(BatchedEngine, PromptModePlanGatesThePoolToo) {
  // Prefill activations scale with prompt_len, so a batch can fit the
  // decode-mode plan while prefill cannot hold its caches: the fit
  // check must gate on both modes.
  auto cfg = small_llama();
  cfg.prompt_len = 96;
  cfg.ar_context = 128;
  cfg.validate();
  auto sys = runtime::SystemConfig::siracusa_system();
  sys.chip.l2_size = 88 * 1024ull;  // 24 KiB usable
  const InferenceSession session(cfg, 4, sys);

  const auto ar_mp = session.run_block(model::Mode::autoregressive).memory;
  const auto pr_mp = session.run_block(model::Mode::prompt).memory;
  // Precondition: two KV sets fit next to the decode plan but not next
  // to the prefill plan.
  ASSERT_LE(ar_mp.need() + ar_mp.kv_cache_bytes, ar_mp.l2_usable);
  ASSERT_GT(pr_mp.need() + pr_mp.kv_cache_bytes, pr_mp.l2_usable);

  BatchedEngine ok(session, {.max_batch = 1, .max_pending = 4});
  EXPECT_THROW(BatchedEngine(session, {.max_batch = 2, .max_pending = 4}),
               PlanError);
}

TEST(KvCachePool, SlotsAreIndependentAndRecycled) {
  model::KvCachePool pool(2, [] {
    model::KvCachePool::CacheSet set(2);
    for (auto& per_chip : set) per_chip.emplace_back(4, 8);
    return set;
  });
  EXPECT_EQ(pool.capacity(), 2);
  // One full set: 2 chips x 1 layer x (2 * 4 positions * 8 dims) bytes.
  EXPECT_EQ(pool.set_capacity_bytes(1), 2u * 2u * 4u * 8u);

  const std::vector<float> row(8, 1.0f);
  pool.slot(0)[0][0].append(row, row);
  EXPECT_EQ(pool.slot(0)[0][0].length(), 1);
  EXPECT_EQ(pool.slot(1)[0][0].length(), 0);  // other slot untouched

  pool.reset_slot(0);
  EXPECT_EQ(pool.slot(0)[0][0].length(), 0);
  EXPECT_THROW((void)pool.slot(2), Error);
}

// --- rate-metric edge cases (regressions) ---------------------------------

TEST(GenerationResultEdgeCases, ZeroTokensAndZeroCyclesAreFinite) {
  GenerationResult empty;
  EXPECT_EQ(empty.tokens_per_s(kFreqHz), 0.0);
  EXPECT_EQ(empty.mj_per_token(), 0.0);

  GenerationResult no_cycles;
  no_cycles.generated = 5;
  EXPECT_EQ(no_cycles.tokens_per_s(kFreqHz), 0.0);  // guard, not inf

  GenerationResult no_tokens;
  no_tokens.total_cycles = 1000;
  no_tokens.total_energy_mj = 3.0;
  EXPECT_EQ(no_tokens.tokens_per_s(kFreqHz), 0.0);
  EXPECT_EQ(no_tokens.mj_per_token(), 0.0);  // guard, not inf
}

TEST(GenerationResultEdgeCases, ServingStatsZeroGuards) {
  runtime::ServingStats stats;
  EXPECT_EQ(stats.aggregate_tokens_per_s(kFreqHz), 0.0);
  EXPECT_EQ(stats.mj_per_token(), 0.0);
}

TEST(BlockResultEdgeCases, ZeroCyclesEdpIsZero) {
  runtime::BlockResult block;  // default: zero cycles, zero energy
  EXPECT_EQ(block.edp_mj_ms(kFreqHz), 0.0);
  EXPECT_EQ(block.latency_ms(kFreqHz), 0.0);
  block.energy.core = 1e9;  // 1 mJ with zero cycles: EDP stays zero
  EXPECT_EQ(block.edp_mj_ms(kFreqHz), 0.0);
}

TEST(BatchedEngine, GenerateWithZeroNewTokensStaysConsistent) {
  // Session-level regression for the same edge: generate(prompt, 0)
  // must report zero generated tokens and finite rate metrics.
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 2);
  const auto gen = session.generate({1, 2}, 0);
  EXPECT_EQ(gen.generated, 0);
  EXPECT_EQ(gen.tokens, (std::vector<int>{1, 2}));
  EXPECT_EQ(gen.mj_per_token(), 0.0);
  EXPECT_GT(gen.total_cycles, 0u);  // prefill cost
}
