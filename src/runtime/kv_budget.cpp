#include "runtime/kv_budget.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace distmcu::runtime {

namespace {

const KvBudgetPolicy::TenantView& view_of(
    ModelId tenant, const std::vector<KvBudgetPolicy::TenantView>& tenants) {
  DISTMCU_CHECK(tenant >= 0 && tenant < static_cast<int>(tenants.size()),
              "KvBudgetPolicy: tenant out of range");
  return tenants[static_cast<std::size_t>(tenant)];
}

/// Slots other demanding tenants are still owed out of their reserves —
/// capacity a borrow must never eat into.
int unmet_reserves_of_others(
    ModelId tenant, const std::vector<KvBudgetPolicy::TenantView>& tenants) {
  int unmet = 0;
  for (const auto& t : tenants) {
    if (t.model == tenant || t.pending == 0) continue;
    unmet += std::max(0, t.quota - t.in_use);
  }
  return unmet;
}

}  // namespace

bool StaticSplitPolicy::may_acquire(
    ModelId tenant, const std::vector<TenantView>& tenants, int /*total_slots*/,
    int /*free_slots*/) const {
  const TenantView& t = view_of(tenant, tenants);
  return t.in_use < t.quota;
}

bool ProportionalSharePolicy::may_acquire(
    ModelId tenant, const std::vector<TenantView>& tenants, int total_slots,
    int /*free_slots*/) const {
  const TenantView& t = view_of(tenant, tenants);
  long long total_demand = 0;
  for (const auto& v : tenants) total_demand += v.in_use + v.pending;
  if (total_demand <= 0) return false;  // nothing queued anywhere
  const long long demand = t.in_use + t.pending;
  if (demand <= 0) return false;
  // ceil(total * demand / total_demand), floored at one slot so any
  // demanding tenant makes progress even when dwarfed by the others.
  const long long allowance = std::max<long long>(
      1, (static_cast<long long>(total_slots) * demand + total_demand - 1) /
             total_demand);
  return t.in_use < allowance;
}

bool WatermarkBorrowPolicy::may_acquire(
    ModelId tenant, const std::vector<TenantView>& tenants, int /*total_slots*/,
    int free_slots) const {
  const TenantView& t = view_of(tenant, tenants);
  if (t.in_use < t.quota) return true;  // guaranteed reserve
  // Borrow: grant only while the remaining free slots still cover every
  // other demanding tenant's unmet reserve plus the configured headroom.
  return free_slots - 1 >= unmet_reserves_of_others(tenant, tenants) +
                               opts_.headroom;
}

const char* kv_budget_name(KvBudget policy) {
  switch (policy) {
    case KvBudget::static_split: return "static_split";
    case KvBudget::proportional: return "proportional";
    case KvBudget::watermark: return "watermark";
  }
  return "?";
}

std::shared_ptr<const KvBudgetPolicy> make_kv_budget(KvBudget policy) {
  switch (policy) {
    case KvBudget::static_split:
      return std::make_shared<StaticSplitPolicy>();
    case KvBudget::proportional:
      return std::make_shared<ProportionalSharePolicy>();
    case KvBudget::watermark:
      return std::make_shared<WatermarkBorrowPolicy>();
  }
  throw Error("make_kv_budget: unknown policy");
}

}  // namespace distmcu::runtime
