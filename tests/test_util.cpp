// Unit tests for the util layer: formatting, RNG determinism and
// statistical sanity, table rendering, and the check helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace du = distmcu::util;
using namespace distmcu;

TEST(Units, ByteLiterals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
  EXPECT_EQ(256_KiB, 262144u);
}

TEST(Units, CyclesToMs) {
  // 500 MHz: 500k cycles = 1 ms.
  EXPECT_DOUBLE_EQ(du::cycles_to_ms(500000, 500e6), 1.0);
  EXPECT_DOUBLE_EQ(du::cycles_to_s(500e6, 500e6), 1.0);
}

TEST(Units, PjConversions) {
  EXPECT_DOUBLE_EQ(du::pj_to_mj(1e9), 1.0);
  EXPECT_DOUBLE_EQ(du::pj_to_uj(1e6), 1.0);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(du::format_bytes(512), "512 B");
  EXPECT_EQ(du::format_bytes(1536), "1.5 KiB");
  EXPECT_EQ(du::format_bytes(2u * 1024 * 1024), "2.0 MiB");
}

TEST(Units, FormatSi) {
  EXPECT_EQ(du::format_si(6900000.0, 1), "6.9M");
  EXPECT_EQ(du::format_si(123.0, 0), "123");
}

TEST(Check, ThrowsOnFailure) {
  EXPECT_NO_THROW(du::check(true, "ok"));
  EXPECT_THROW(du::check(false, "boom"), distmcu::Error);
  EXPECT_THROW(du::check_plan(false, "plan"), distmcu::PlanError);
}

TEST(Check, PlanErrorIsError) {
  // PlanError must be catchable as the base library error.
  try {
    du::check_plan(false, "does not fit");
    FAIL() << "expected throw";
  } catch (const distmcu::Error& e) {
    EXPECT_NE(std::string(e.what()).find("does not fit"), std::string::npos);
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  du::Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  du::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  du::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  du::Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.uniform(-0.25f, 0.75f);
    ASSERT_GE(v, -0.25f);
    ASSERT_LT(v, 0.75f);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  du::Rng rng(11);
  const int n = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NextBelowInRange) {
  du::Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(8);
    ASSERT_LT(v, 8u);
    seen.insert(v);
  }
  // All 8 buckets should be hit in 1000 draws.
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Table, RendersAlignedColumns) {
  du::Table t({"Chips", "Runtime", "Speedup"});
  t.row().add(1).add(std::uint64_t{6900000}).add(1.0, 2);
  t.row().add(8).add(std::uint64_t{264000}).add(26.1, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Chips"), std::string::npos);
  EXPECT_NE(out.find("26.10"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvOutput) {
  du::Table t({"a", "b"});
  t.row().add(1).add(2.5, 1);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2.5\n");
}

TEST(Table, RejectsTooManyCells) {
  du::Table t({"only"});
  t.row().add(1);
  EXPECT_THROW(t.add(2), distmcu::Error);
}

TEST(Table, AddBeforeRowThrows) {
  du::Table t({"x"});
  EXPECT_THROW(t.add(1), distmcu::Error);
}
