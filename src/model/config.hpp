#ifndef DISTMCU_MODEL_CONFIG_HPP
#define DISTMCU_MODEL_CONFIG_HPP

#include <string>

#include "util/units.hpp"

namespace distmcu::model {

enum class NormKind { rmsnorm, layernorm };
enum class Activation { gelu, silu, relu };

/// Feed-forward variant: the paper describes the classic two-matrix MLP
/// (Sec. II-A); `swiglu` is the gated three-matrix FFN the Llama family
/// actually ships with — supported to show the F-dimension split carries
/// over unchanged (both W1 and W3 shard along F, W2 along its rows).
enum class FfnKind { mlp, swiglu };
enum class PosEmbed { rope, none };
enum class MaskKind { causal, bidirectional };

/// Inference mode (paper Sec. II-A): autoregressive decodes one token
/// against a KV-cache (GEMV-dominated, memory-bound); prompt processes a
/// full sequence at once (GEMM-dominated, compute-bound).
enum class Mode { autoregressive, prompt };

[[nodiscard]] const char* mode_name(Mode m);

/// Architecture hyper-parameters of a Transformer in the paper's
/// notation (Sec. II-A): embedding dim E, intermediate (FFN) dim F, H
/// heads of projection dim P each, with P*H the total projection width.
struct TransformerConfig {
  std::string name = "transformer";
  int embed_dim = 512;     // E
  int ffn_dim = 2048;      // F
  int num_heads = 8;       // H
  int head_dim = 64;       // P
  int num_layers = 8;
  int vocab_size = 32000;

  // Sequence parameters used by the paper's experiments: autoregressive
  // mode decodes one token against `ar_context` cached positions; prompt
  // mode processes `prompt_len` tokens at once.
  int ar_context = 128;
  int prompt_len = 16;

  NormKind norm = NormKind::rmsnorm;
  Activation act = Activation::gelu;
  FfnKind ffn = FfnKind::mlp;
  PosEmbed pos = PosEmbed::rope;
  MaskKind mask = MaskKind::causal;
  // Post-norm follows the paper's Fig. 3 (Norm applied to the all-reduced
  // sublayer output on a single chip); pre-norm (Llama-style) is also
  // supported — it only moves which tensor the root normalizes and
  // broadcasts, not the number of synchronizations.
  bool pre_norm = false;

  float norm_eps = 1e-5f;
  float rope_base = 10000.0f;

  /// Total projection width P*H.
  [[nodiscard]] int proj_dim() const { return num_heads * head_dim; }

  /// Weight elements of one Transformer block:
  /// WQ/WK/WV [E, P*H], WO [P*H, E], W1 [E, F], W2 [F, E]
  /// (+ the gate W3 [E, F] for SwiGLU).
  [[nodiscard]] std::uint64_t block_weight_elems() const;

  /// Norm parameter elements per block (replicated on the root only).
  [[nodiscard]] std::uint64_t block_norm_elems() const;

  /// Throws distmcu::Error when inconsistent.
  void validate() const;

  /// TinyLlama-42M as deployed by the paper (Sec. V-A): E=512, F=2048,
  /// 8 heads, 8 layers, S=128 autoregressive / 16 prompt.
  [[nodiscard]] static TransformerConfig tiny_llama_42m();

  /// MobileBERT as deployed by the paper: E=F=512, 4 heads, S=268.
  [[nodiscard]] static TransformerConfig mobile_bert();

  /// The scalability-study variant (Sec. V-C): heads raised to 64 with
  /// all other parameters unchanged (head_dim shrinks to keep P*H = E).
  [[nodiscard]] static TransformerConfig tiny_llama_scaled(int heads = 64);
};

}  // namespace distmcu::model

#endif  // DISTMCU_MODEL_CONFIG_HPP
