// Tests for the batched serving runtime: continuous batching must keep
// every request's token stream bit-identical to an independent
// InferenceSession::generate call, aggregate cycle/energy accounting
// must sum to the per-request parts, the KV-cache pool must reject
// gracefully when exhausted, and the GenerationResult/BlockResult rate
// metrics must survive their zero-input edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <numeric>
#include <optional>
#include <vector>

#include "mem/arena.hpp"
#include "model/kv_cache.hpp"
#include "runtime/batched_engine.hpp"
#include "runtime/inference_session.hpp"
#include "sim/tracer.hpp"
#include "util/check.hpp"

using namespace distmcu;
using model::TransformerConfig;
using runtime::BatchedEngine;
using runtime::GenerationResult;
using runtime::InferenceSession;
using runtime::RequestId;
using runtime::RequestResult;

namespace {

constexpr double kFreqHz = 500e6;

TransformerConfig small_llama() {
  TransformerConfig cfg = TransformerConfig::tiny_llama_42m();
  cfg.embed_dim = 32;
  cfg.ffn_dim = 64;
  cfg.num_heads = 4;
  cfg.head_dim = 8;
  cfg.num_layers = 2;
  cfg.vocab_size = 100;
  cfg.ar_context = 24;
  cfg.prompt_len = 4;
  cfg.validate();
  return cfg;
}

/// Full-width TinyLlama blocks (only the layer count and vocab are cut
/// for speed): at 4 chips this deployment is in the *streamed* regime,
/// where block weights are fetched from L3 during every decode step —
/// the case continuous batching exists for.
TransformerConfig streamed_llama() {
  TransformerConfig cfg = TransformerConfig::tiny_llama_42m();
  cfg.num_layers = 2;
  cfg.vocab_size = 200;
  cfg.ar_context = 32;
  cfg.prompt_len = 4;
  cfg.validate();
  return cfg;
}

/// Mixed workload: prompts of different lengths decoding different
/// token counts, so requests finish at different steps.
struct Workload {
  std::vector<int> prompt;
  int new_tokens;
};

std::vector<Workload> mixed_workloads() {
  return {
      {{1, 2, 3}, 6},
      {{7}, 3},
      {{4, 9, 2, 11}, 8},
      {{5, 5}, 1},
  };
}

const RequestResult& result_for(const std::vector<RequestResult>& results,
                                RequestId id) {
  for (const auto& r : results) {
    if (r.id == id) return r;
  }
  throw Error("result_for: no such request id");
}

}  // namespace

TEST(BatchedEngine, TokensIdenticalToSequentialGenerate) {
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  const auto workloads = mixed_workloads();

  for (int batch = 1; batch <= 4; ++batch) {
    BatchedEngine engine(session, {.max_batch = batch, .max_pending = 64});
    std::vector<RequestId> ids;
    for (const auto& w : workloads) {
      const auto id = engine.submit(w.prompt, w.new_tokens);
      ASSERT_TRUE(id.has_value());
      ids.push_back(*id);
    }
    const auto results = engine.run_to_completion();
    ASSERT_EQ(results.size(), workloads.size());
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      const auto solo =
          session.generate(workloads[i].prompt, workloads[i].new_tokens);
      const auto& batched = result_for(results, ids[i]);
      EXPECT_EQ(batched.gen.tokens, solo.tokens)
          << "request " << i << " diverged at batch size " << batch;
      EXPECT_EQ(batched.gen.generated, solo.generated);
    }
  }
}

TEST(BatchedEngine, RequestsFinishAtDifferentSteps) {
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  BatchedEngine engine(session, {.max_batch = 4, .max_pending = 64});
  std::vector<RequestId> ids;
  for (const auto& w : mixed_workloads()) ids.push_back(*engine.submit(w.prompt, w.new_tokens));
  const auto results = engine.run_to_completion();
  // All admitted together (batch covers the workload), so finish steps
  // order by token count: 1 < 3 < 6 < 8.
  EXPECT_LT(result_for(results, ids[3]).finished_step,
            result_for(results, ids[1]).finished_step);
  EXPECT_LT(result_for(results, ids[1]).finished_step,
            result_for(results, ids[0]).finished_step);
  EXPECT_LT(result_for(results, ids[0]).finished_step,
            result_for(results, ids[2]).finished_step);
  EXPECT_EQ(engine.stats().peak_batch, 4);
  EXPECT_EQ(engine.stats().completed, 4);
}

TEST(BatchedEngine, AggregateAccountingSumsToPerRequestParts) {
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  BatchedEngine engine(session, {.max_batch = 3, .max_pending = 64});
  for (const auto& w : mixed_workloads()) (void)*engine.submit(w.prompt, w.new_tokens);
  const auto results = engine.run_to_completion();

  Cycles cycle_sum = 0;
  double energy_sum = 0.0;
  int generated_sum = 0;
  for (const auto& r : results) {
    EXPECT_GT(r.gen.total_cycles, 0u);
    EXPECT_GT(r.gen.total_energy_mj, 0.0);
    cycle_sum += r.gen.total_cycles;
    energy_sum += r.gen.total_energy_mj;
    generated_sum += r.gen.generated;
  }
  // Cycles are attributed with integer remainder distribution: exact.
  EXPECT_EQ(cycle_sum, engine.stats().total_cycles);
  EXPECT_NEAR(energy_sum, engine.stats().total_energy_mj,
              1e-9 * energy_sum);
  EXPECT_EQ(generated_sum, engine.stats().total_generated);
  EXPECT_GT(engine.stats().aggregate_tokens_per_s(kFreqHz), 0.0);

  // Residence latency covers every step a request was in flight, so it
  // is at least the request's own attributed cost and the spans stay
  // inside the engine timeline.
  for (const auto& r : results) {
    EXPECT_GE(r.latency_cycles(), r.gen.total_cycles);
    EXPECT_LE(r.finished_at, engine.stats().total_cycles);
    EXPECT_GE(r.finished_at, r.admitted_at);
  }
}

TEST(BatchedEngine, SingleRequestMatchesGenerateCosts) {
  // At batch size 1 on a fully resident deployment nothing is shared
  // and nothing streams, so the serving cost model must collapse to
  // exactly the sequential generate accounting (the streamed overlap
  // case is covered by SingleStreamOverlapHidesStreamBehindCompute).
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  BatchedEngine engine(session, {.max_batch = 1, .max_pending = 4});
  const std::vector<int> prompt{3, 1, 4};
  const auto id = engine.submit(prompt, 5);
  ASSERT_TRUE(id.has_value());
  const auto results = engine.run_to_completion();
  const auto solo = session.generate(prompt, 5);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].gen.tokens, solo.tokens);
  EXPECT_EQ(results[0].gen.total_cycles, solo.total_cycles);
  EXPECT_NEAR(results[0].gen.total_energy_mj, solo.total_energy_mj,
              1e-9 * solo.total_energy_mj);
  // Alone in the batch, residence latency equals the attributed cost.
  EXPECT_EQ(results[0].latency_cycles(), solo.total_cycles);
}

TEST(BatchedEngine, BatchingReducesAggregateCyclesVersusSequential) {
  // The point of continuous batching on a weight-streaming deployment:
  // B requests served together cost less than B independent runs,
  // because block weights stream once per step instead of once per
  // request.
  const auto cfg = streamed_llama();
  const InferenceSession session(cfg, 4);
  // Precondition for the win: weight streaming must be on the decode
  // latency path.
  const auto ar = session.run_block(model::Mode::autoregressive);
  ASSERT_EQ(ar.report.residency, partition::Residency::streamed);
  ASSERT_GT(ar.report.breakdown.dma_l3_l2, 0u);

  const std::vector<int> prompt{1, 2, 3};
  const int steps = 6;
  const int batch = 4;

  BatchedEngine engine(session, {.max_batch = batch, .max_pending = 64});
  for (int i = 0; i < batch; ++i) (void)*engine.submit(prompt, steps);
  (void)engine.run_to_completion();

  const auto solo = session.generate(prompt, steps);
  const Cycles sequential = solo.total_cycles * batch;
  EXPECT_LT(engine.stats().total_cycles, sequential);
  // The saving has two parts: the de-duplicated weight streaming (each
  // decode step fetches the block weights once instead of `batch`
  // times) plus whatever of the remaining single stream the prefetch
  // overlap hid behind compute — so the advantage must exceed the
  // de-duplication alone: (batch-1) streams per decode step.
  const Cycles stream =
      static_cast<Cycles>(cfg.num_layers) * ar.report.breakdown.dma_l3_l2;
  EXPECT_GT(sequential - engine.stats().total_cycles,
            static_cast<Cycles>(batch - 1) *
                static_cast<Cycles>(engine.stats().decode_steps) * stream);
}

// --- prefetch overlap (tentpole) ------------------------------------------

TEST(BatchedEngine, PrefetchOverlapConservation) {
  // The event-driven step timeline races the next step's weight
  // prefetch against the batch's compute: per decode step the engine
  // pays max(compute, stream) instead of compute + stream. Every cycle
  // of the serial stream must be accounted as either hidden behind
  // compute or as a visible stall, and per-request attribution must
  // still sum exactly to the aggregate.
  const auto cfg = streamed_llama();
  const InferenceSession session(cfg, 4);
  const auto ar = session.run_block(model::Mode::autoregressive);
  ASSERT_EQ(ar.report.residency, partition::Residency::streamed);
  const auto layers = static_cast<Cycles>(cfg.num_layers);
  const Cycles stream = ar.report.breakdown.dma_l3_l2 * layers;
  const Cycles per_req =
      (ar.report.block_cycles - ar.report.breakdown.dma_l3_l2) * layers;
  const Cycles prefill =
      session.run_block(model::Mode::prompt).report.block_cycles * layers;
  ASSERT_GT(stream, 0u);

  const int batch = 3;
  const int steps = 5;
  BatchedEngine engine(session, {.max_batch = batch, .max_pending = 64});
  std::vector<RequestId> ids;
  for (int i = 0; i < batch; ++i) {
    ids.push_back(*engine.submit({1 + i, 9 - i}, steps));
  }
  const auto results = engine.run_to_completion();
  const auto& stats = engine.stats();

  // Stream conservation: stall + hidden == one serial stream per
  // consuming step.
  EXPECT_EQ(stats.prefetch_stall_cycles + stats.stream_cycles_hidden,
            static_cast<Cycles>(stats.decode_steps) * stream);
  // All requests are admitted together and decode in lock-step, so the
  // serial-charging model is exactly reconstructible: total + hidden.
  EXPECT_EQ(stats.decode_steps, steps - 1);
  const Cycles serial =
      static_cast<Cycles>(batch) * prefill +
      static_cast<Cycles>(steps - 1) *
          (static_cast<Cycles>(batch) * per_req + stream);
  EXPECT_EQ(stats.total_cycles + stats.stream_cycles_hidden, serial);
  // First stream is staged; later steps stall only for the part of the
  // stream that batch compute cannot cover.
  const Cycles batch_compute = static_cast<Cycles>(batch) * per_req;
  const Cycles per_step_stall =
      stream > batch_compute ? stream - batch_compute : 0;
  EXPECT_EQ(stats.prefetch_stall_cycles,
            static_cast<Cycles>(steps - 2) * per_step_stall);

  // Exact-attribution invariant survives the overlap: per-request
  // cycles/energy sum to the aggregate.
  Cycles cycle_sum = 0;
  double energy_sum = 0.0;
  for (const auto& r : results) {
    cycle_sum += r.gen.total_cycles;
    energy_sum += r.gen.total_energy_mj;
  }
  EXPECT_EQ(cycle_sum, stats.total_cycles);
  EXPECT_NEAR(energy_sum, stats.total_energy_mj, 1e-9 * energy_sum);

  // Token streams stay bit-identical to dedicated generate calls.
  for (int i = 0; i < batch; ++i) {
    const auto solo = session.generate({1 + i, 9 - i}, steps);
    EXPECT_EQ(result_for(results, ids[i]).gen.tokens, solo.tokens);
  }
}

TEST(BatchedEngine, MidServingAdmissionKeepsConservation) {
  // A request admitted while a stream prefetch is in flight contends
  // with it for the L3 port (the prefill's own streaming pushes the
  // fetch back), so stalls can grow — but every conservation invariant
  // must survive the mixed prefill/decode regime.
  const auto cfg = streamed_llama();
  const InferenceSession session(cfg, 4);
  const auto ar = session.run_block(model::Mode::autoregressive);
  ASSERT_EQ(ar.report.residency, partition::Residency::streamed);
  const Cycles stream = ar.report.breakdown.dma_l3_l2 *
                        static_cast<Cycles>(cfg.num_layers);

  BatchedEngine engine(session, {.max_batch = 2, .max_pending = 8});
  std::vector<RequestId> ids;
  ids.push_back(*engine.submit({1, 2}, 6));
  ids.push_back(*engine.submit({3}, 2));
  ids.push_back(*engine.submit({4, 5}, 4));  // joins mid-serving
  const auto results = engine.run_to_completion();
  const auto& stats = engine.stats();
  ASSERT_GT(result_for(results, ids[2]).admitted_step, 0);

  EXPECT_EQ(stats.prefetch_stall_cycles + stats.stream_cycles_hidden,
            static_cast<Cycles>(stats.decode_steps) * stream);
  Cycles cycle_sum = 0;
  for (const auto& r : results) cycle_sum += r.gen.total_cycles;
  EXPECT_EQ(cycle_sum, stats.total_cycles);
  const std::vector<std::vector<int>> prompts{{1, 2}, {3}, {4, 5}};
  const std::vector<int> lens{6, 2, 4};
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(result_for(results, ids[i]).gen.tokens,
              session.generate(prompts[i], lens[i]).tokens);
  }
}

TEST(BatchedEngine, SingleStreamOverlapHidesStreamBehindCompute) {
  // B=1 on a streamed deployment: the engine's overlap model beats the
  // serial charging InferenceSession::generate uses, by exactly the
  // hidden stream cycles — while tokens and energy stay identical.
  const auto cfg = streamed_llama();
  const InferenceSession session(cfg, 4);
  const auto ar = session.run_block(model::Mode::autoregressive);
  ASSERT_EQ(ar.report.residency, partition::Residency::streamed);
  const auto layers = static_cast<Cycles>(cfg.num_layers);
  const Cycles stream = ar.report.breakdown.dma_l3_l2 * layers;
  const Cycles per_req =
      (ar.report.block_cycles - ar.report.breakdown.dma_l3_l2) * layers;
  // Precondition for visible stalls: one request's compute cannot cover
  // the stream.
  ASSERT_GT(stream, per_req);

  const std::vector<int> prompt{2, 4, 6};
  const int steps = 6;
  BatchedEngine engine(session, {.max_batch = 1, .max_pending = 4});
  const auto id = engine.submit(prompt, steps);
  ASSERT_TRUE(id.has_value());
  const auto results = engine.run_to_completion();
  const auto solo = session.generate(prompt, steps);
  const auto& stats = engine.stats();

  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].gen.tokens, solo.tokens);
  EXPECT_NEAR(results[0].gen.total_energy_mj, solo.total_energy_mj,
              1e-9 * solo.total_energy_mj);
  EXPECT_GT(stats.stream_cycles_hidden, 0u);
  EXPECT_EQ(stats.total_cycles, solo.total_cycles - stats.stream_cycles_hidden);
  // Staged first stream stalls nothing; each later step stalls for the
  // uncovered remainder.
  EXPECT_EQ(stats.prefetch_stall_cycles,
            static_cast<Cycles>(steps - 2) * (stream - per_req));
  EXPECT_EQ(results[0].latency_cycles(), stats.total_cycles);
}

TEST(BatchedEngine, NoStallWhenBatchComputeCoversStream) {
  // Acceptance property: prefetch_stall_cycles is nonzero ONLY when the
  // batch's compute cannot cover the stream. streamed_llama at 4 chips
  // has stream < 3x per-request compute, so B=3 decodes stall-free.
  const auto cfg = streamed_llama();
  const InferenceSession session(cfg, 4);
  const auto ar = session.run_block(model::Mode::autoregressive);
  const auto layers = static_cast<Cycles>(cfg.num_layers);
  const Cycles stream = ar.report.breakdown.dma_l3_l2 * layers;
  const Cycles per_req =
      (ar.report.block_cycles - ar.report.breakdown.dma_l3_l2) * layers;
  ASSERT_GT(stream, 0u);
  ASSERT_LE(stream, 3 * per_req);

  BatchedEngine engine(session, {.max_batch = 3, .max_pending = 8});
  for (int i = 0; i < 3; ++i) (void)*engine.submit({1 + i}, 5);
  (void)engine.run_to_completion();
  EXPECT_EQ(engine.stats().prefetch_stall_cycles, 0u);
  EXPECT_EQ(engine.stats().stream_cycles_hidden,
            static_cast<Cycles>(engine.stats().decode_steps) * stream);
}

TEST(BatchedEngine, ContinuousAdmissionBackfillsFreedSlots) {
  // More requests than slots: late requests wait in the queue and join
  // the running batch as earlier ones finish (continuous batching, not
  // static batches).
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  BatchedEngine engine(session, {.max_batch = 2, .max_pending = 64});
  const auto workloads = mixed_workloads();
  std::vector<RequestId> ids;
  for (const auto& w : workloads) ids.push_back(*engine.submit(w.prompt, w.new_tokens));
  EXPECT_EQ(engine.pending_requests(), 4);

  const auto results = engine.run_to_completion();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(engine.stats().peak_batch, 2);
  // The last two requests were admitted strictly after the first two.
  EXPECT_GT(result_for(results, ids[2]).admitted_step, 0);
  EXPECT_GT(result_for(results, ids[3]).admitted_step, 0);
  // Equivalence still holds for requests that joined mid-flight.
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const auto solo =
        session.generate(workloads[i].prompt, workloads[i].new_tokens);
    EXPECT_EQ(result_for(results, ids[i]).gen.tokens, solo.tokens);
  }
}

TEST(BatchedEngine, SubmitRejectsGracefullyWhenQueueFull) {
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 2);
  BatchedEngine engine(session, {.max_batch = 1, .max_pending = 1});
  const auto a = engine.submit({1, 2}, 4);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(engine.step());  // admits A into the only KV slot
  const auto b = engine.submit({3, 4}, 4);
  ASSERT_TRUE(b.has_value());  // queue has room again
  const auto c = engine.submit({5, 6}, 4);
  EXPECT_FALSE(c.has_value());  // queue full: graceful reject, no throw
  EXPECT_EQ(engine.stats().rejected, 1);

  const auto results = engine.run_to_completion();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(result_for(results, *a).gen.tokens, session.generate({1, 2}, 4).tokens);
  EXPECT_EQ(result_for(results, *b).gen.tokens, session.generate({3, 4}, 4).tokens);
}

TEST(BatchedEngine, MaxPendingZeroStillAdmitsUpToFreeSlots) {
  // Regression: max_pending bounds the QUEUE, not total submits. With
  // max_pending == 0 an idle engine must still accept whatever its free
  // KV slots can admit at the next step; only requests that would have
  // to wait behind a full batch are rejected.
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 2);
  BatchedEngine engine(session, {.max_batch = 2, .max_pending = 0});

  const auto a = engine.submit({1, 2}, 2);
  const auto b = engine.submit({3}, 2);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // A third submit exceeds what the free slots can absorb: rejected.
  EXPECT_FALSE(engine.submit({5}, 1).has_value());
  EXPECT_EQ(engine.stats().rejected, 1);

  EXPECT_TRUE(engine.step());  // both admitted, batch now full
  EXPECT_FALSE(engine.submit({6}, 1).has_value());  // queue bound is 0

  auto results = engine.run_to_completion();
  EXPECT_EQ(results.size(), 2u);
  // Drained: free slots absorb submits again.
  const auto e = engine.submit({7}, 1);
  ASSERT_TRUE(e.has_value());
  (void)engine.run_to_completion();
  EXPECT_EQ(engine.stats().completed, 3);
  EXPECT_EQ(result_for(engine.finished(), *a).gen.tokens,
            session.generate({1, 2}, 2).tokens);
}

TEST(BatchedEngine, AdmittedAtExcludesEarlierSameStepPrefills) {
  // Regression: a request admitted after other requests' prefills in the
  // same step used to be stamped at the step START, charging it their
  // prefill cycles in latency_cycles(). It must be stamped at its own
  // position on the step timeline.
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  const Cycles prefill =
      session.run_block(model::Mode::prompt).report.block_cycles *
      static_cast<Cycles>(cfg.num_layers);
  ASSERT_GT(prefill, 0u);

  BatchedEngine engine(session, {.max_batch = 3, .max_pending = 8});
  const auto a = engine.submit({1, 2}, 3);
  const auto b = engine.submit({3, 4}, 3);
  const auto c = engine.submit({5, 6}, 3);
  const auto results = engine.run_to_completion();

  const auto& ra = result_for(results, *a);
  const auto& rb = result_for(results, *b);
  const auto& rc = result_for(results, *c);
  // All joined at step 0, each at its own prefill position.
  EXPECT_EQ(ra.admitted_step, 0);
  EXPECT_EQ(rb.admitted_step, 0);
  EXPECT_EQ(ra.admitted_at, 0u);
  EXPECT_EQ(rb.admitted_at, prefill);
  EXPECT_EQ(rc.admitted_at, 2 * prefill);
  // Same workloads finish together, so the later-admitted request's
  // residence latency is strictly shorter by the earlier prefills.
  EXPECT_EQ(rb.finished_at, ra.finished_at);
  EXPECT_EQ(ra.latency_cycles() - rb.latency_cycles(), prefill);
}

TEST(BatchedEngine, FinishedAtExcludesWorkAfterFinalTokenCommit) {
  // Mirror of the admitted_at fix on the finish side: a request that
  // merely commits its final token at a step boundary must not be
  // charged that step's prefills/decode in latency_cycles().
  const auto cfg = streamed_llama();
  const InferenceSession session(cfg, 4);
  const auto ar = session.run_block(model::Mode::autoregressive);
  const auto layers = static_cast<Cycles>(cfg.num_layers);
  const Cycles per_req =
      (ar.report.block_cycles - ar.report.breakdown.dma_l3_l2) * layers;
  const Cycles prefill =
      session.run_block(model::Mode::prompt).report.block_cycles * layers;

  BatchedEngine engine(session, {.max_batch = 2, .max_pending = 8});
  (void)*engine.submit({1, 2}, 5);  // A keeps decoding past B's finish
  const auto b = engine.submit({3, 4}, 2);
  const auto c = engine.submit({5, 6}, 2);
  const auto results = engine.run_to_completion();

  // B commits its final token at the step-1 boundary; its residence
  // ends at step 0's end (two prefills + one 2-wide stall-free staged
  // decode phase), not at step 1's end where A keeps decoding.
  const auto& rb = result_for(results, *b);
  EXPECT_EQ(rb.finished_step, 1);
  EXPECT_EQ(rb.finished_at, 2 * prefill + 2 * per_req);
  // C only joins once B's slot frees at the next admission point.
  EXPECT_EQ(result_for(results, *c).admitted_step, 2);

  // Prefill-only requests end at their own prefill, even when another
  // request's prefill follows in the same step.
  BatchedEngine engine2(session, {.max_batch = 2, .max_pending = 8});
  const auto d = engine2.submit({7}, 0);
  const auto e = engine2.submit({8}, 0);
  const auto results2 = engine2.run_to_completion();
  EXPECT_EQ(result_for(results2, *d).finished_at, prefill);
  EXPECT_EQ(result_for(results2, *e).admitted_at, prefill);
  EXPECT_EQ(result_for(results2, *e).finished_at, 2 * prefill);
  EXPECT_EQ(result_for(results2, *d).latency_cycles(),
            result_for(results2, *e).latency_cycles());
}

TEST(BatchedEngine, SubmitValidatesLikeGenerate) {
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 2);
  BatchedEngine engine(session, {});
  EXPECT_THROW((void)engine.submit({}, 1), Error);
  EXPECT_THROW((void)engine.submit({1}, -1), Error);
  EXPECT_THROW((void)engine.submit({1}, cfg.ar_context + 1), Error);
  // Prefill cost/fit are derived from the static prompt shape, so
  // prompts beyond prompt_len are rejected rather than under-charged.
  const std::vector<int> long_prompt(
      static_cast<std::size_t>(cfg.prompt_len) + 1, 1);
  EXPECT_THROW((void)engine.submit(long_prompt, 1), Error);
  // Bad options are rejected up front, before any pool construction.
  EXPECT_THROW(BatchedEngine(session, {.max_batch = 0, .max_pending = 4}),
               Error);
  EXPECT_THROW(BatchedEngine(session, {.max_batch = 2, .max_pending = -1}),
               Error);
}

TEST(BatchedEngine, ZeroNewTokensFinishesAfterPrefillOnly) {
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 2);
  BatchedEngine engine(session, {});
  const auto id = engine.submit({1, 2, 3}, 0);
  ASSERT_TRUE(id.has_value());
  const auto results = engine.run_to_completion();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].gen.tokens, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(results[0].gen.generated, 0);
  EXPECT_GT(results[0].gen.total_cycles, 0u);  // prefill is still charged
  // Zero generated tokens must not divide by zero anywhere.
  EXPECT_EQ(results[0].gen.mj_per_token(), 0.0);
  EXPECT_GT(results[0].gen.tokens_per_s(kFreqHz), -1.0);
}

TEST(BatchedEngine, TracerAttributesChargesToRequests) {
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  sim::Tracer tracer;
  BatchedEngine engine(session, {.max_batch = 2, .max_pending = 8}, &tracer);
  const auto a = engine.submit({1, 2, 3}, 4);
  const auto b = engine.submit({7, 8}, 2);
  const auto results = engine.run_to_completion();

  // Every span carries its owning request; traced time per request
  // equals the attributed cycle accounting plus the scheduler-lane queue
  // wait (the sched.queue span from submit to admission).
  EXPECT_EQ(tracer.total_for_request(sim::kNoRequest), 0u);
  EXPECT_EQ(tracer.total_for_request(*a),
            result_for(results, *a).gen.total_cycles +
                result_for(results, *a).queue_delay_cycles());
  EXPECT_EQ(tracer.total_for_request(*b),
            result_for(results, *b).gen.total_cycles +
                result_for(results, *b).queue_delay_cycles());
  EXPECT_EQ(tracer.makespan(), engine.stats().total_cycles);
  // The tag resets after every engine charge.
  EXPECT_EQ(tracer.current_request(), sim::kNoRequest);
}

TEST(BatchedEngine, TracerLaysSpansOnPerRequestLanesWithOverlap) {
  // Regression: charges used to be serialized on one global cursor, so
  // concurrent batch members rendered strictly sequentially. Spans must
  // sit at their true engine-timeline positions, tagged per request, and
  // genuinely overlap within a step: the shared stream prefetch races
  // the batch's compute, and stall shares cover the same wait window.
  const auto cfg = streamed_llama();
  const InferenceSession session(cfg, 4);
  sim::Tracer tracer;
  BatchedEngine engine(session, {.max_batch = 2, .max_pending = 8}, &tracer);
  const auto a = engine.submit({1, 2}, 4);
  const auto b = engine.submit({7}, 4);
  const auto results = engine.run_to_completion();
  const auto& stats = engine.stats();
  // Precondition: two-request compute cannot cover the stream, so every
  // non-staged step stalls.
  ASSERT_GT(stats.prefetch_stall_cycles, 0u);

  // Attribution still matches the trace exactly, per request (the
  // sched.queue span adds exactly the admission wait).
  EXPECT_EQ(tracer.total_for_request(*a),
            result_for(results, *a).gen.total_cycles +
                result_for(results, *a).queue_delay_cycles());
  EXPECT_EQ(tracer.total_for_request(*b),
            result_for(results, *b).gen.total_cycles +
                result_for(results, *b).queue_delay_cycles());
  EXPECT_EQ(tracer.makespan(), stats.total_cycles);

  // Untagged spans are exactly the consumed stream prefetches (the
  // first stream is staged, the final step issues none).
  int prefetch_spans = 0;
  for (const auto& span : tracer.spans()) {
    if (span.request != sim::kNoRequest) continue;
    EXPECT_EQ(span.category, sim::Category::dma_l3_l2);
    EXPECT_EQ(span.label, "weights.prefetch");
    ++prefetch_spans;
  }
  EXPECT_EQ(prefetch_spans, stats.decode_steps - 1);

  // Overlap 1: every prefetch DMA races request-tagged compute.
  // Overlap 2: both requests' stall shares sit in the same wait window.
  bool prefetch_overlaps_compute = false;
  bool stalls_overlap = false;
  const auto& spans = tracer.spans();
  for (const auto& s1 : spans) {
    for (const auto& s2 : spans) {
      const bool overlap = s1.begin < s2.end && s2.begin < s1.end;
      if (!overlap) continue;
      if (s1.request == sim::kNoRequest && s2.request != sim::kNoRequest) {
        prefetch_overlaps_compute = true;
      }
      if (s1.request == *a && s2.request == *b &&
          s1.label == "weights.stall" && s2.label == "weights.stall") {
        stalls_overlap = true;
      }
    }
  }
  EXPECT_TRUE(prefetch_overlaps_compute);
  EXPECT_TRUE(stalls_overlap);
}

// --- chunked prefill (tentpole) -------------------------------------------

TEST(BatchedEngineChunked, TokensIdenticalAcrossChunkSizes) {
  // The chunked functional path (one chunk per prefilling request per
  // step, KV prefix + pos_offset attention) must keep every token stream
  // bit-identical to a dedicated generate call, at any chunk size.
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  const auto workloads = mixed_workloads();

  for (const int chunk : {1, 2, 3, cfg.prompt_len}) {
    BatchedEngine engine(session, {.max_batch = 2,
                                   .max_pending = 64,
                                   .prefill_chunk_tokens = chunk});
    EXPECT_EQ(engine.chunk_tokens(), chunk);
    std::vector<RequestId> ids;
    for (const auto& w : workloads) {
      ids.push_back(*engine.submit(w.prompt, w.new_tokens));
    }
    const auto results = engine.run_to_completion();
    ASSERT_EQ(results.size(), workloads.size());
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      const auto solo =
          session.generate(workloads[i].prompt, workloads[i].new_tokens);
      EXPECT_EQ(result_for(results, ids[i]).gen.tokens, solo.tokens)
          << "chunk size " << chunk << ", request " << i;
    }
  }
}

TEST(BatchedEngineChunked, MixedStepConservationIsExact) {
  // Heterogeneous steps (chunks + decodes co-scheduled) must preserve
  // every conservation invariant: per-request cycles/energy sum to the
  // aggregate, the decode stream splits into stall + hidden, and the
  // chunk-stream windows split into visible tails + hidden cycles.
  const auto cfg = streamed_llama();
  const InferenceSession session(cfg, 4);
  const auto ar = session.run_block(model::Mode::autoregressive);
  ASSERT_EQ(ar.report.residency, partition::Residency::streamed);
  const Cycles stream =
      ar.report.breakdown.dma_l3_l2 * static_cast<Cycles>(cfg.num_layers);

  BatchedEngine engine(session, {.max_batch = 2,
                                 .max_pending = 8,
                                 .prefill_chunk_tokens = 2});
  std::vector<RequestId> ids;
  ids.push_back(*engine.submit({1, 2, 3, 4}, 5));
  ids.push_back(*engine.submit({9}, 3));
  ids.push_back(*engine.submit({5, 6, 7}, 4));  // joins mid-serving
  const auto results = engine.run_to_completion();
  const auto& stats = engine.stats();
  ASSERT_GT(result_for(results, ids[2]).admitted_step, 0);
  ASSERT_GT(stats.prefill_steps, 0);

  Cycles cycle_sum = 0;
  double energy_sum = 0.0;
  for (const auto& r : results) {
    cycle_sum += r.gen.total_cycles;
    energy_sum += r.gen.total_energy_mj;
  }
  EXPECT_EQ(cycle_sum, stats.total_cycles);
  EXPECT_NEAR(energy_sum, stats.total_energy_mj, 1e-9 * energy_sum);
  EXPECT_EQ(stats.prefetch_stall_cycles + stats.stream_cycles_hidden,
            static_cast<Cycles>(stats.decode_steps) * stream);
  EXPECT_EQ(stats.prefill_stall_cycles + stats.prefill_cycles_hidden,
            stats.prefill_stream_cycles);
  EXPECT_GT(stats.prefill_stream_cycles, 0u);

  for (const auto& r : results) {
    EXPECT_GE(r.latency_cycles(), r.gen.total_cycles);
    EXPECT_LE(r.finished_at, stats.total_cycles);
  }
}

TEST(BatchedEngineChunked, ChunkedPromptPhaseBeatsSerialCharging) {
  // The point of the chunked model: prompt-phase weight streaming races
  // batch compute instead of being charged serially, and short prompts
  // stop paying the full static prefill shape. Same workload, same
  // deployment: the chunked engine's charged prompt cycles must be
  // strictly below the serial model's.
  const auto cfg = streamed_llama();
  const InferenceSession session(cfg, 4);

  const auto run = [&](int chunk) {
    BatchedEngine engine(session, {.max_batch = 2,
                                   .max_pending = 16,
                                   .prefill_chunk_tokens = chunk});
    for (int i = 0; i < 4; ++i) (void)*engine.submit({1 + i, 2, 3}, 6);
    (void)engine.run_to_completion();
    return engine.stats();
  };

  const auto serial = run(0);
  const auto chunked = run(cfg.prompt_len);
  EXPECT_EQ(serial.completed, 4);
  EXPECT_EQ(chunked.completed, 4);
  EXPECT_LT(chunked.prefill_cycles, serial.prefill_cycles);
  EXPECT_GT(chunked.prefill_cycles_hidden, 0u);
  // The hidden prompt streaming is exactly the serial model's charge
  // minus the chunked one (modulo the visible tails).
  EXPECT_LT(chunked.total_cycles, serial.total_cycles);
}

TEST(BatchedEngineChunked, SingleChunkStepStructureMatchesSerialMode) {
  // prefill_chunk_tokens >= prompt_len degenerates to one chunk per
  // prompt: step count, finish steps, and token streams all match the
  // serial mode — only the cost timeline differs (the chunk's stream
  // races the step instead of being charged inline).
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  const auto workloads = mixed_workloads();

  BatchedEngine serial(session, {.max_batch = 2, .max_pending = 64});
  BatchedEngine chunked(session, {.max_batch = 2,
                                  .max_pending = 64,
                                  .prefill_chunk_tokens = 1000});
  EXPECT_EQ(chunked.chunk_tokens(), cfg.prompt_len);
  std::vector<RequestId> sids, cids;
  for (const auto& w : workloads) {
    sids.push_back(*serial.submit(w.prompt, w.new_tokens));
    cids.push_back(*chunked.submit(w.prompt, w.new_tokens));
  }
  const auto sres = serial.run_to_completion();
  const auto cres = chunked.run_to_completion();
  EXPECT_EQ(serial.stats().steps, chunked.stats().steps);
  EXPECT_EQ(serial.stats().total_generated, chunked.stats().total_generated);
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    EXPECT_EQ(result_for(sres, sids[i]).gen.tokens,
              result_for(cres, cids[i]).gen.tokens);
    EXPECT_EQ(result_for(sres, sids[i]).finished_step,
              result_for(cres, cids[i]).finished_step);
  }
}

TEST(BatchedEngineChunked, AdmittedAtIsOwnFirstChunkStart) {
  // The PR 2 admission-stamp guarantee generalizes to chunks: a request
  // admitted behind another's chunk in the same step is stamped at its
  // own chunk's serialized position, not the step start.
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  BatchedEngine engine(session, {.max_batch = 3,
                                 .max_pending = 8,
                                 .prefill_chunk_tokens = cfg.prompt_len});
  const auto a = engine.submit({1, 2}, 2);
  const auto b = engine.submit({3, 4}, 2);
  const auto results = engine.run_to_completion();
  const auto& ra = result_for(results, *a);
  const auto& rb = result_for(results, *b);
  EXPECT_EQ(ra.admitted_step, 0);
  EXPECT_EQ(rb.admitted_step, 0);
  EXPECT_EQ(ra.admitted_at, 0u);
  EXPECT_GT(rb.admitted_at, ra.admitted_at);
  // Identical workloads finish together.
  EXPECT_EQ(ra.finished_at, rb.finished_at);
  EXPECT_GT(ra.latency_cycles(), rb.latency_cycles());
}

TEST(BatchedEngineChunked, ChunkedPromptFitAdmitsBatchesSerialModeCannot) {
  // Chunked prefill materializes chunk-shaped activations only, so under
  // a tight L2 the pool fit admits batches the full prompt shape would
  // reject — the MCUBERT-style memory-bounded scheduling win.
  auto cfg = small_llama();
  cfg.prompt_len = 96;
  cfg.ar_context = 128;
  cfg.validate();
  auto sys = runtime::SystemConfig::siracusa_system();
  sys.chip.l2_size = 88 * 1024ull;
  const InferenceSession session(cfg, 4, sys);

  // Full prompt shape: two KV sets do not fit next to the prefill plan.
  EXPECT_THROW(BatchedEngine(session, {.max_batch = 2, .max_pending = 4}),
               PlanError);
  // Chunked prompt shape: they do.
  BatchedEngine ok(session, {.max_batch = 2,
                             .max_pending = 4,
                             .prefill_chunk_tokens = 8});
  const auto a = ok.submit({1, 2, 3}, 2);
  const auto b = ok.submit({4, 5}, 2);
  const auto results = ok.run_to_completion();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(result_for(results, *a).gen.tokens,
            session.generate({1, 2, 3}, 2).tokens);
  EXPECT_EQ(result_for(results, *b).gen.tokens,
            session.generate({4, 5}, 2).tokens);
}

TEST(BatchedEngineChunked, ConstructsWhereFullPromptShapeCannotPlanAtAll) {
  // Regression: chunked construction used to measure the full
  // prompt-shape block anyway, so a deployment whose full-prompt
  // activations exceed L2 even in the streamed regime threw PlanError
  // despite the chunk shape fitting comfortably. Chunked mode must not
  // plan the full prompt shape at all.
  auto cfg = small_llama();
  cfg.prompt_len = 96;
  cfg.ar_context = 128;
  cfg.validate();
  auto sys = runtime::SystemConfig::siracusa_system();
  sys.chip.l2_size = 80 * 1024ull;
  const InferenceSession session(cfg, 4, sys);
  // Precondition: the full prompt shape cannot be planned even for a
  // single request, while decode mode is fine.
  EXPECT_THROW((void)session.run_block(model::Mode::prompt), PlanError);
  (void)session.run_block(model::Mode::autoregressive);

  EXPECT_THROW(BatchedEngine(session, {.max_batch = 1, .max_pending = 4}),
               PlanError);
  BatchedEngine chunked(session, {.max_batch = 1,
                                  .max_pending = 4,
                                  .prefill_chunk_tokens = 8});
  const auto id = chunked.submit({1, 2, 3, 4, 5}, 3);
  ASSERT_TRUE(id.has_value());
  const auto results = chunked.run_to_completion();
  ASSERT_EQ(results.size(), 1u);
  // generate() on the tight deployment would itself plan the full prompt
  // shape (and throw); the functional numerics are platform-independent,
  // so cross-check tokens against the same model on a roomy L2.
  const InferenceSession roomy(cfg, 4);
  EXPECT_EQ(results[0].gen.tokens, roomy.generate({1, 2, 3, 4, 5}, 3).tokens);
}

TEST(BatchedEngineChunked, RejectsNegativeChunkTokens) {
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 2);
  EXPECT_THROW(BatchedEngine(session, {.max_batch = 1,
                                       .max_pending = 4,
                                       .prefill_chunk_tokens = -1}),
               Error);
}

// --- KV pool / slot arena -------------------------------------------------

TEST(SlotArena, ExhaustionReturnsNulloptNotUB) {
  mem::Arena arena("l2.kv_pool", 4096);
  mem::SlotArena slots(arena, "kv_set", 2, 1024);
  EXPECT_EQ(arena.used(), 2048u);

  const auto s0 = slots.acquire();
  const auto s1 = slots.acquire();
  ASSERT_TRUE(s0.has_value());
  ASSERT_TRUE(s1.has_value());
  EXPECT_NE(*s0, *s1);
  EXPECT_EQ(slots.free(), 0);

  const auto s2 = slots.acquire();
  EXPECT_FALSE(s2.has_value());  // graceful reject

  slots.release(*s0);
  const auto s3 = slots.acquire();
  ASSERT_TRUE(s3.has_value());
  EXPECT_EQ(*s3, *s0);  // lowest-free-index policy

  EXPECT_THROW(slots.release(*s1 + 5), Error);  // out of range
  slots.release(*s1);
  EXPECT_THROW(slots.release(*s1), Error);  // double release
}

TEST(SlotArena, ReclaimIsOwnerCheckedAndCounted) {
  // The preemption path returns slots through reclaim(): an owner-
  // checked release that additionally counts the slot as reclaimed,
  // per tenant and in total. A plain release never bumps the counters.
  mem::Arena arena("l2.kv_pool", 4096);
  mem::SlotArena slots(arena, "kv_set", 2, 1024);
  const auto s0 = slots.acquire(/*tenant=*/0);
  const auto s1 = slots.acquire(/*tenant=*/1);
  ASSERT_TRUE(s0.has_value() && s1.has_value());

  EXPECT_THROW(slots.reclaim(*s0, /*tenant=*/1), Error);  // cross-tenant
  EXPECT_EQ(slots.total_reclaimed(), 0);  // failed reclaim left no trace
  EXPECT_EQ(slots.tenant_in_use(0), 1);

  slots.reclaim(*s0, /*tenant=*/0);
  EXPECT_EQ(slots.tenant_reclaimed(0), 1);
  EXPECT_EQ(slots.tenant_reclaimed(1), 0);
  EXPECT_EQ(slots.total_reclaimed(), 1);
  EXPECT_EQ(slots.free(), 1);  // the slot really freed

  slots.release(*s1, /*tenant=*/1);  // plain release: not a reclaim
  EXPECT_EQ(slots.tenant_reclaimed(1), 0);
  EXPECT_EQ(slots.total_reclaimed(), 1);
  // Unseen tenant ids read as zero, never UB.
  EXPECT_EQ(slots.tenant_reclaimed(7), 0);
}

TEST(SlotArena, PoolThatDoesNotFitThrowsPlanError) {
  mem::Arena arena("l2.kv_pool", 1024);
  EXPECT_THROW(mem::SlotArena(arena, "kv_set", 2, 1024), PlanError);
}

TEST(SlotArena, RejectsNonPositiveShapes) {
  mem::Arena arena("l2.kv_pool", 1024);
  EXPECT_THROW(mem::SlotArena(arena, "kv_set", -1, 64), Error);
  EXPECT_THROW(mem::SlotArena(arena, "kv_set", 0, 64), Error);
  EXPECT_THROW(mem::SlotArena(arena, "kv_set", 1, 0), Error);
}

TEST(BatchedEngine, PoolExceedingL2BudgetThrowsPlanError) {
  // Full-capacity KV sets for every slot must fit the worst-case chip's
  // L2 next to the single-request deployment plan; a batch that cannot
  // physically hold its caches is rejected at construction, not served
  // with fictitious memory.
  auto cfg = small_llama();
  cfg.ar_context = 24;
  cfg.validate();
  auto sys = runtime::SystemConfig::siracusa_system();
  sys.chip.l2_size = 80 * 1024ull;  // tight: fits a handful of KV sets
  const InferenceSession session(cfg, 4, sys);
  // A modest batch fits...
  BatchedEngine ok(session, {.max_batch = 2, .max_pending = 4});
  // ...but an absurd one must throw instead of overcommitting L2.
  EXPECT_THROW(BatchedEngine(session, {.max_batch = 10000, .max_pending = 4}),
               PlanError);
}

TEST(BatchedEngine, PromptModePlanGatesThePoolToo) {
  // Prefill activations scale with prompt_len, so a batch can fit the
  // decode-mode plan while prefill cannot hold its caches: the fit
  // check must gate on both modes.
  auto cfg = small_llama();
  cfg.prompt_len = 96;
  cfg.ar_context = 128;
  cfg.validate();
  auto sys = runtime::SystemConfig::siracusa_system();
  sys.chip.l2_size = 88 * 1024ull;  // 24 KiB usable
  const InferenceSession session(cfg, 4, sys);

  const auto ar_mp = session.run_block(model::Mode::autoregressive).memory;
  const auto pr_mp = session.run_block(model::Mode::prompt).memory;
  // Precondition: two KV sets fit next to the decode plan but not next
  // to the prefill plan.
  ASSERT_LE(ar_mp.need() + ar_mp.kv_cache_bytes, ar_mp.l2_usable);
  ASSERT_GT(pr_mp.need() + pr_mp.kv_cache_bytes, pr_mp.l2_usable);

  BatchedEngine ok(session, {.max_batch = 1, .max_pending = 4});
  EXPECT_THROW(BatchedEngine(session, {.max_batch = 2, .max_pending = 4}),
               PlanError);
}

TEST(KvCachePool, SlotsAreIndependentAndRecycled) {
  model::KvCachePool pool(2, [] {
    model::KvCachePool::CacheSet set(2);
    for (auto& per_chip : set) per_chip.emplace_back(4, 8);
    return set;
  });
  EXPECT_EQ(pool.capacity(), 2);
  // One full set: 2 chips x 1 layer x (2 * 4 positions * 8 dims) bytes.
  EXPECT_EQ(pool.set_capacity_bytes(1), 2u * 2u * 4u * 8u);

  const std::vector<float> row(8, 1.0f);
  pool.slot(0)[0][0].append(row, row);
  EXPECT_EQ(pool.slot(0)[0][0].length(), 1);
  EXPECT_EQ(pool.slot(1)[0][0].length(), 0);  // other slot untouched

  pool.reset_slot(0);
  EXPECT_EQ(pool.slot(0)[0][0].length(), 0);
  EXPECT_THROW((void)pool.slot(2), Error);
}

// --- rate-metric edge cases (regressions) ---------------------------------

TEST(GenerationResultEdgeCases, ZeroTokensAndZeroCyclesAreFinite) {
  GenerationResult empty;
  EXPECT_EQ(empty.tokens_per_s(kFreqHz), 0.0);
  EXPECT_EQ(empty.mj_per_token(), 0.0);

  GenerationResult no_cycles;
  no_cycles.generated = 5;
  EXPECT_EQ(no_cycles.tokens_per_s(kFreqHz), 0.0);  // guard, not inf

  GenerationResult no_tokens;
  no_tokens.total_cycles = 1000;
  no_tokens.total_energy_mj = 3.0;
  EXPECT_EQ(no_tokens.tokens_per_s(kFreqHz), 0.0);
  EXPECT_EQ(no_tokens.mj_per_token(), 0.0);  // guard, not inf
}

TEST(GenerationResultEdgeCases, ServingStatsZeroGuards) {
  runtime::ServingStats stats;
  EXPECT_EQ(stats.aggregate_tokens_per_s(kFreqHz), 0.0);
  EXPECT_EQ(stats.mj_per_token(), 0.0);
}

TEST(BlockResultEdgeCases, ZeroCyclesEdpIsZero) {
  runtime::BlockResult block;  // default: zero cycles, zero energy
  EXPECT_EQ(block.edp_mj_ms(kFreqHz), 0.0);
  EXPECT_EQ(block.latency_ms(kFreqHz), 0.0);
  block.energy.core = 1e9;  // 1 mJ with zero cycles: EDP stays zero
  EXPECT_EQ(block.edp_mj_ms(kFreqHz), 0.0);
}

TEST(BatchedEngine, GenerateWithZeroNewTokensStaysConsistent) {
  // Session-level regression for the same edge: generate(prompt, 0)
  // must report zero generated tokens and finite rate metrics.
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 2);
  const auto gen = session.generate({1, 2}, 0);
  EXPECT_EQ(gen.generated, 0);
  EXPECT_EQ(gen.tokens, (std::vector<int>{1, 2}));
  EXPECT_EQ(gen.mj_per_token(), 0.0);
  EXPECT_GT(gen.total_cycles, 0u);  // prefill cost
}

// --- overload safety: fail-fast, shedding, preemption ----------------------

TEST(BatchedEngine, SubmitRejectsOutOfRangeModelBeforeAnyCounter) {
  // Regression: the model-id guard must run before any per_model[...]
  // indexing on the reject path — a bad id throws and leaves the stats
  // and the queue exactly as they were.
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 2);
  BatchedEngine engine(session, {.max_batch = 1, .max_pending = 1});
  EXPECT_THROW((void)engine.submit(/*model=*/1, {1, 2}, 1), Error);
  EXPECT_THROW((void)engine.submit(/*model=*/-1, {1, 2}, 1), Error);
  EXPECT_THROW((void)engine.submit(/*model=*/1000, {1, 2}, 1), Error);
  EXPECT_EQ(engine.stats().rejected, 0);
  EXPECT_EQ(engine.stats().per_model[0].rejected, 0);
  EXPECT_EQ(engine.stats().per_model[0].submitted, 0);
  EXPECT_EQ(engine.pending_requests(), 0);
  EXPECT_EQ(engine.last_rejection(), runtime::Rejection::none);
}

TEST(BatchedEngine, SaturatingDeadlineNeverWrapsIntoAMiss) {
  // Regression: submitted_at + deadline_cycles used to wrap for huge
  // relative deadlines, turning "practically no deadline" into an
  // absolute deadline in the past — reported missed on every request.
  // The saturating resolve pins it to the timeline's end instead.
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 2);
  BatchedEngine engine(session, {.max_batch = 1, .max_pending = 4});
  const auto a = engine.submit(
      {1, 2}, 3,
      {.priority = 0,
       .deadline_cycles = std::numeric_limits<Cycles>::max()});
  ASSERT_TRUE(a.has_value());
  (void)engine.step();  // submitted_at now nonzero for the second request
  const auto b = engine.submit(
      {3, 4}, 3,
      {.priority = 0,
       .deadline_cycles = std::numeric_limits<Cycles>::max() - 1});
  ASSERT_TRUE(b.has_value());
  const auto results = engine.run_to_completion();
  EXPECT_EQ(result_for(results, *a).deadline_at,
            std::numeric_limits<Cycles>::max());
  EXPECT_EQ(result_for(results, *b).deadline_at,
            std::numeric_limits<Cycles>::max());  // saturated, not wrapped
  EXPECT_FALSE(result_for(results, *a).missed_deadline());
  EXPECT_FALSE(result_for(results, *b).missed_deadline());
  EXPECT_EQ(engine.stats().slo_requests, 2);
  EXPECT_EQ(engine.stats().deadline_misses, 0);
}

TEST(BatchedEngine, FailFastRejectsHopelessDeadlinesDistinctly) {
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 2);

  // Default engine: a hopeless deadline is accepted and becomes a miss.
  BatchedEngine lax(session, {.max_batch = 1, .max_pending = 4});
  ASSERT_TRUE(
      lax.submit({1, 2}, 2, {.priority = 0, .deadline_cycles = 1}).has_value());
  (void)lax.run_to_completion();
  EXPECT_EQ(lax.stats().deadline_misses, 1);

  // Fail-fast engine: the same submit is refused up front with its own
  // rejection reason, and never counts as an SLO miss.
  BatchedEngine strict(session, {.max_batch = 1,
                                 .max_pending = 4,
                                 .fail_fast_deadlines = true});
  EXPECT_FALSE(
      strict.submit({1, 2}, 2, {.priority = 0, .deadline_cycles = 1})
          .has_value());
  EXPECT_EQ(strict.last_rejection(), runtime::Rejection::hopeless_deadline);
  EXPECT_EQ(strict.stats().rejected, 1);
  EXPECT_EQ(strict.stats().rejected_hopeless_deadline, 1);
  EXPECT_EQ(strict.stats().rejected_queue_full, 0);
  EXPECT_EQ(strict.stats().deadline_misses, 0);
  EXPECT_EQ(strict.stats().slo_requests, 0);

  // A feasible deadline passes fail-fast; an accepted submit resets the
  // last-rejection readback. Queue-full rejects report their own reason.
  const auto ok = strict.submit(
      {1, 2}, 2, {.priority = 0, .deadline_cycles = 1'000'000'000});
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(strict.last_rejection(), runtime::Rejection::none);
  (void)strict.step();  // the accepted request takes the only KV slot
  ASSERT_TRUE(strict.submit({3}, 1).has_value());
  ASSERT_TRUE(strict.submit({4}, 1).has_value());
  ASSERT_TRUE(strict.submit({5}, 1).has_value());
  ASSERT_TRUE(strict.submit({6}, 1).has_value());  // backlog now at max_pending
  EXPECT_FALSE(strict.submit({7}, 1).has_value());
  EXPECT_EQ(strict.last_rejection(), runtime::Rejection::queue_full);
  EXPECT_EQ(strict.stats().rejected_queue_full, 1);
  // The reason split partitions the total.
  EXPECT_EQ(strict.stats().rejected, strict.stats().rejected_queue_full +
                                         strict.stats().rejected_hopeless_deadline);
}

TEST(BatchedEngine, SingleTenantSheddingRefusesTheNewcomer) {
  // Fair shedding drops the heaviest tenant's newest queued request —
  // and with one tenant the incoming request IS the heaviest tenant's
  // newest, so the submit is refused queue_full and nobody already
  // queued is shed (tail-drop semantics).
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 2);
  BatchedEngine engine(session, {.max_batch = 1,
                                 .max_pending = 1,
                                 .fair_shedding = true});
  ASSERT_TRUE(engine.submit({1, 2}, 2).has_value());
  (void)engine.step();
  ASSERT_TRUE(engine.submit({3, 4}, 2).has_value());
  EXPECT_FALSE(engine.submit({5, 6}, 2).has_value());
  EXPECT_EQ(engine.last_rejection(), runtime::Rejection::queue_full);
  EXPECT_EQ(engine.stats().shed, 0);
  EXPECT_TRUE(engine.shed_ids().empty());
  (void)engine.run_to_completion();
  EXPECT_EQ(engine.stats().completed, 2);
}

TEST(BatchedEngine, PreemptionEvictsAndResumesBitExact) {
  // The tentpole property in one deterministic scenario: a long
  // best-effort request is checkpointed out of the only KV slot when a
  // tight-deadline request would otherwise starve past its feasible
  // deadline; both token streams stay bit-identical to dedicated
  // generate() calls and the cycle/energy books still balance exactly.
  const auto cfg = streamed_llama();
  const InferenceSession session(cfg, 4);
  const auto layers = static_cast<Cycles>(cfg.num_layers);
  const auto ar = session.run_block(model::Mode::autoregressive);
  const Cycles per_req =
      (ar.report.block_cycles - ar.report.breakdown.dma_l3_l2) * layers;
  const Cycles prefill =
      session.run_block(model::Mode::prompt).report.block_cycles * layers;
  const Cycles est_b = prefill + per_req;  // prompt + (2-1) decode forwards

  BatchedEngine engine(
      session,
      {.max_batch = 1,
       .max_pending = 8,
       .scheduler = std::make_shared<runtime::EdfScheduler>(),
       .preemption = std::make_shared<runtime::DeadlineAwarePreemption>()});
  const auto a = engine.submit({1, 2}, 12);  // best-effort, long
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(engine.step());  // A admitted, one decode forward in
  // B's deadline is feasible started now but blown by waiting for A's
  // ten remaining decode forwards — the preemption trigger.
  const auto b = engine.submit(
      {3, 4}, 2, {.priority = 0, .deadline_cycles = est_b + 2 * per_req});
  ASSERT_TRUE(b.has_value());
  const auto results = engine.run_to_completion();
  ASSERT_EQ(results.size(), 2u);

  const auto& stats = engine.stats();
  EXPECT_EQ(stats.preemptions, 1);
  EXPECT_EQ(stats.resumes, 1);
  EXPECT_GT(stats.preemption_cycles, 0u);
  EXPECT_EQ(stats.per_model[0].preemptions, 1);
  EXPECT_EQ(stats.per_model[0].resumes, 1);
  EXPECT_EQ(stats.per_model[0].kv_slots_reclaimed, 1);

  // B overtook A through the eviction and finished first.
  EXPECT_EQ(results[0].id, *b);
  EXPECT_EQ(result_for(results, *a).times_evicted, 1);
  EXPECT_EQ(result_for(results, *b).times_evicted, 0);

  // Bit-exact streams despite the checkpoint/restore round trip.
  EXPECT_EQ(result_for(results, *a).gen.tokens,
            session.generate({1, 2}, 12).tokens);
  EXPECT_EQ(result_for(results, *b).gen.tokens,
            session.generate({3, 4}, 2).tokens);

  // Exact conservation: the eviction/resume traffic is charged to A,
  // and per-request cycles/energy still sum to the engine totals.
  Cycles cycle_sum = 0;
  double energy_sum = 0.0;
  for (const auto& r : results) {
    cycle_sum += r.gen.total_cycles;
    energy_sum += r.gen.total_energy_mj;
  }
  EXPECT_EQ(cycle_sum, stats.total_cycles);
  EXPECT_NEAR(energy_sum, stats.total_energy_mj,
              1e-9 * std::max(1.0, stats.total_energy_mj));
}

namespace {

/// Returns one past the end — the engine must reject it, not evict UB.
class OutOfRangePreemption final : public runtime::PreemptionPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "broken"; }
  [[nodiscard]] int pick_victim(const std::vector<Victim>& victims,
                                const runtime::Scheduler::Candidate&,
                                Cycles) const override {
    return static_cast<int>(victims.size());
  }
};

}  // namespace

TEST(BatchedEngine, OutOfRangeVictimPickIsRejected) {
  const auto cfg = streamed_llama();
  const InferenceSession session(cfg, 4);
  const auto layers = static_cast<Cycles>(cfg.num_layers);
  const auto ar = session.run_block(model::Mode::autoregressive);
  const Cycles per_req =
      (ar.report.block_cycles - ar.report.breakdown.dma_l3_l2) * layers;
  const Cycles prefill =
      session.run_block(model::Mode::prompt).report.block_cycles * layers;

  BatchedEngine engine(
      session, {.max_batch = 1,
                .max_pending = 8,
                .scheduler = std::make_shared<runtime::EdfScheduler>(),
                .preemption = std::make_shared<OutOfRangePreemption>()});
  ASSERT_TRUE(engine.submit({1, 2}, 12).has_value());
  EXPECT_TRUE(engine.step());
  ASSERT_TRUE(engine
                  .submit({3, 4}, 2,
                          {.priority = 0,
                           .deadline_cycles = prefill + 3 * per_req})
                  .has_value());
  EXPECT_THROW((void)engine.step(), Error);
}

// ---- paged KV serving (kv_page_tokens > 0) ---------------------------------

TEST(BatchedEngine, PagedTokensIdenticalToSlotEngine) {
  // The paged arena changes only the *budget* granularity — every
  // request's token stream must stay bit-identical to both the slot
  // engine and a dedicated generate() call, for serial and chunked
  // prefill and across page sizes (including one clamped to the whole
  // context, which makes a page a slot).
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  const auto workloads = mixed_workloads();
  for (const int chunk : {0, 2}) {
    for (const int page_tokens : {4, 6, 1000}) {
      BatchedEngine engine(session, {.max_batch = 16,
                                     .max_pending = 64,
                                     .prefill_chunk_tokens = chunk,
                                     .kv_page_tokens = page_tokens});
      ASSERT_TRUE(engine.paged());
      EXPECT_EQ(engine.page_tokens(0), std::min(page_tokens, cfg.ar_context));
      std::vector<RequestId> ids;
      for (const auto& w : workloads) ids.push_back(*engine.submit(w.prompt, w.new_tokens));
      const auto results = engine.run_to_completion();
      ASSERT_EQ(results.size(), workloads.size());
      for (std::size_t i = 0; i < workloads.size(); ++i) {
        const auto solo = session.generate(workloads[i].prompt, workloads[i].new_tokens);
        EXPECT_EQ(result_for(results, ids[i]).gen.tokens, solo.tokens)
            << "chunk " << chunk << " page_tokens " << page_tokens;
      }
      // Everything returned to the pool.
      EXPECT_EQ(engine.kv_pages().in_use(), 0);
      EXPECT_EQ(engine.kv_pages().total_refs(), 0);
    }
  }
}

TEST(BatchedEngine, PagedAdmitsMoreThanSlotsAtEqualKvBytes) {
  // The tentpole win: at the SAME total KV byte budget, page-granular
  // admission charges short requests only the pages their length needs,
  // so strictly more of them run concurrently than under whole-request
  // slots.
  const auto cfg = small_llama();  // ar_context = 24
  const InferenceSession session(cfg, 4);
  constexpr int kSlots = 2;
  constexpr int kPageTokens = 6;
  constexpr int kPages = kSlots * 24 / kPageTokens;  // equal bytes: 8 pages

  BatchedEngine slot_engine(session, {.max_batch = kSlots, .max_pending = 64});
  BatchedEngine paged_engine(session, {.max_batch = kPages,
                                       .max_pending = 64,
                                       .kv_page_tokens = kPageTokens});
  ASSERT_EQ(slot_engine.kv_slots().pool_bytes(),
            paged_engine.kv_pages().pool_bytes());

  // Six short requests: 2-token prompts decoding 3 tokens each peak at
  // 4 KV rows — one page — so all six fit the paged budget at once
  // while the slot engine can never run more than two.
  std::vector<RequestId> slot_ids;
  std::vector<RequestId> paged_ids;
  for (int i = 0; i < 6; ++i) {
    slot_ids.push_back(*slot_engine.submit({i + 1, i + 2}, 3));
    paged_ids.push_back(*paged_engine.submit({i + 1, i + 2}, 3));
  }
  const auto slot_results = slot_engine.run_to_completion();
  const auto paged_results = paged_engine.run_to_completion();
  EXPECT_EQ(slot_engine.stats().peak_batch, kSlots);
  EXPECT_GT(paged_engine.stats().peak_batch, slot_engine.stats().peak_batch);
  EXPECT_EQ(paged_engine.stats().peak_batch, 6);

  // Same streams on both engines (and both drain clean).
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(result_for(paged_results, paged_ids[i]).gen.tokens,
              result_for(slot_results, slot_ids[i]).gen.tokens);
  }
  EXPECT_EQ(paged_engine.kv_pages().in_use(), 0);
}

TEST(BatchedEngine, PagedSubmitRejectsSequenceBeyondPageCap) {
  // A request whose full sequence can never fit the tenant's page cap is
  // a contract violation at submit (admitting it would livelock decode
  // growth), distinct from the graceful queue-full nullopt.
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  BatchedEngine engine(session, {.max_batch = 2,  // 2 pages * 6 tokens
                                 .max_pending = 8,
                                 .kv_page_tokens = 6});
  // 4 + 20 - 1 = 23 rows > 12 the cap covers, though well under the
  // model context the slot engine checks against.
  EXPECT_THROW((void)engine.submit({1, 2, 3, 4}, 20), Error);
  // At the cap exactly: accepted.
  EXPECT_TRUE(engine.submit({1, 2, 3, 4}, 9).has_value());
  (void)engine.run_to_completion();
  EXPECT_EQ(engine.stats().completed, 1);
}

TEST(BatchedEngine, PagedPrefixSharingAdoptsBitExact) {
  // Prompts sharing a donated prefix adopt its read-only pages instead
  // of recomputing the shared prefill — streams stay bit-exact, the hit
  // counters fire, and a prefix ending mid-page forks copy-on-write.
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  BatchedEngine engine(session, {.max_batch = 24,
                                 .max_pending = 16,
                                 .prefill_chunk_tokens = 1,
                                 .kv_page_tokens = 2,
                                 .prefix_sharing = true});
  // Donor: its full prompt registers as a shareable prefix (2 pages).
  const auto donor = engine.submit({1, 2, 3, 4}, 3);
  ASSERT_TRUE(donor.has_value());
  auto results = engine.run_to_completion();
  EXPECT_EQ(engine.prefix_cache_entries(), 1);
  EXPECT_EQ(engine.prefix_cache_pages(), 2);
  // The registry's pins are the only occupancy surviving the drain.
  EXPECT_EQ(engine.kv_pages().in_use(), engine.prefix_cache_pages());
  EXPECT_EQ(engine.stats().prefix_hits, 0);

  // Adopter A shares 2 full prompt tokens = 1 full page; adopter B's
  // 3-token common prefix extends one row into its first private page —
  // a copy-on-write fork.
  const auto a = engine.submit({1, 2, 9, 10}, 3);
  const auto b = engine.submit({1, 2, 3, 11}, 3);
  ASSERT_TRUE(a.has_value() && b.has_value());
  const auto adopt_results = engine.run_to_completion();
  EXPECT_EQ(engine.stats().prefix_hits, 2);
  EXPECT_EQ(engine.stats().prefix_shared_tokens, 2 + 3);
  EXPECT_EQ(engine.stats().cow_forks, 1);
  // The adopters donated their own prompts on prefill completion, each
  // entry re-pinning the shared first page alongside one private page.
  EXPECT_EQ(engine.prefix_cache_entries(), 3);

  // Bit-exact despite the adoption (the donor too).
  EXPECT_EQ(result_for(results, *donor).gen.tokens,
            session.generate({1, 2, 3, 4}, 3).tokens);
  EXPECT_EQ(result_for(adopt_results, *a).gen.tokens,
            session.generate({1, 2, 9, 10}, 3).tokens);
  EXPECT_EQ(result_for(adopt_results, *b).gen.tokens,
            session.generate({1, 2, 3, 11}, 3).tokens);

  // Refcount conservation after the drain: only the registry holds
  // references (entries may share physical pages, so refs >= pages).
  EXPECT_EQ(engine.kv_pages().in_use(), engine.prefix_cache_pages());
  EXPECT_GE(engine.kv_pages().total_refs(),
            static_cast<long long>(engine.prefix_cache_pages()));
}

TEST(BatchedEngine, PagedPrefixSharingSavesPromptCycles) {
  // The adoption skip is a *cost* win: serving the same prompt twice
  // with sharing on charges the second request fewer prefill cycles
  // than with sharing off, with identical tokens.
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  const std::vector<int> prompt{1, 2, 3, 4};
  auto serve_twice = [&](bool sharing) {
    BatchedEngine engine(session, {.max_batch = 24,
                                   .max_pending = 16,
                                   .prefill_chunk_tokens = 1,
                                   .kv_page_tokens = 2,
                                   .prefix_sharing = sharing});
    const auto first = engine.submit(prompt, 2);
    (void)engine.run_to_completion();
    const auto second = engine.submit(prompt, 2);
    (void)first;
    const auto results = engine.run_to_completion();
    return result_for(results, *second);
  };
  const auto shared = serve_twice(true);
  const auto cold = serve_twice(false);
  EXPECT_EQ(shared.gen.tokens, cold.gen.tokens);
  EXPECT_LT(shared.gen.total_cycles, cold.gen.total_cycles);
}

TEST(BatchedEngine, PagedAccessorsAreModeChecked) {
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  BatchedEngine slot_engine(session, {.max_batch = 2});
  EXPECT_FALSE(slot_engine.paged());
  EXPECT_EQ(slot_engine.page_tokens(0), 0);
  EXPECT_THROW((void)slot_engine.kv_pages(), Error);
  EXPECT_EQ(slot_engine.prefix_cache_pages(), 0);
  BatchedEngine paged_engine(session, {.max_batch = 4, .kv_page_tokens = 8});
  EXPECT_TRUE(paged_engine.paged());
  EXPECT_THROW((void)paged_engine.kv_slots(), Error);
}
