#include "fleet/routing_policy.hpp"

#include "util/check.hpp"

namespace distmcu::fleet {

namespace {

/// The request's estimated fleet-level finish charge on one node: what
/// is already queued ahead of it, its own service demand there, and the
/// round-trip link. Saturating — backlogs are sums of estimates and must
/// never wrap into "cheap".
[[nodiscard]] Cycles total_charge(const RoutingPolicy::NodeView& v) {
  return util::sat_add(v.backlog_cycles, util::sat_add(v.est_cost,
                                                       v.link_cycles));
}

/// Index of the eligible node minimizing the cost-aware charge
/// (tie-break: queue depth, then node id). Requires >= 1 eligible node.
[[nodiscard]] std::size_t cost_aware_pick(
    const std::vector<RoutingPolicy::NodeView>& nodes) {
  std::size_t best = nodes.size();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!nodes[i].eligible) continue;
    if (best == nodes.size()) { best = i; continue; }
    const Cycles ci = total_charge(nodes[i]);
    const Cycles cb = total_charge(nodes[best]);
    if (ci < cb ||
        (ci == cb && nodes[i].queue_depth < nodes[best].queue_depth)) {
      best = i;
    }
  }
  DISTMCU_CHECK(best < nodes.size(),
                "RoutingPolicy: no eligible node in the snapshot");
  return best;
}

}  // namespace

std::size_t RoundRobinRouting::pick(const std::vector<NodeView>& nodes,
                                    std::uint64_t submit_seq) const {
  std::uint64_t eligible = 0;
  for (const NodeView& v : nodes) eligible += v.eligible ? 1 : 0;
  DISTMCU_CHECK(eligible > 0,
                "RoutingPolicy: no eligible node in the snapshot");
  std::uint64_t k = submit_seq % eligible;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!nodes[i].eligible) continue;
    if (k == 0) return i;
    --k;
  }
  return nodes.size();  // unreachable: eligible > 0
}

std::size_t JoinShortestQueueRouting::pick(const std::vector<NodeView>& nodes,
                                           std::uint64_t /*submit_seq*/) const {
  std::size_t best = nodes.size();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!nodes[i].eligible) continue;
    if (best == nodes.size()) { best = i; continue; }
    if (nodes[i].queue_depth < nodes[best].queue_depth ||
        (nodes[i].queue_depth == nodes[best].queue_depth &&
         nodes[i].backlog_cycles < nodes[best].backlog_cycles)) {
      best = i;
    }
  }
  DISTMCU_CHECK(best < nodes.size(),
                "RoutingPolicy: no eligible node in the snapshot");
  return best;
}

std::size_t CostEstimateAwareRouting::pick(
    const std::vector<NodeView>& nodes, std::uint64_t /*submit_seq*/) const {
  return cost_aware_pick(nodes);
}

std::size_t PrefixAffinityRouting::pick(const std::vector<NodeView>& nodes,
                                        std::uint64_t /*submit_seq*/) const {
  const std::size_t fallback = cost_aware_pick(nodes);
  int best_match = 0;
  for (const NodeView& v : nodes) {
    if (v.eligible && v.prefix_match_tokens > best_match) {
      best_match = v.prefix_match_tokens;
    }
  }
  if (best_match == 0) return fallback;

  // Cheapest node among those holding the deepest match.
  std::size_t affine = nodes.size();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!nodes[i].eligible || nodes[i].prefix_match_tokens != best_match) {
      continue;
    }
    if (affine == nodes.size() ||
        total_charge(nodes[i]) < total_charge(nodes[affine])) {
      affine = i;
    }
  }
  if (affine == fallback) return affine;

  // Honor the affinity only while the detour stays cheaper than what the
  // shared prefill saves (scaled by spill_factor); past that, locality
  // would just pile load onto a hot node.
  const Cycles detour = total_charge(nodes[affine]) >
                                total_charge(nodes[fallback])
                            ? total_charge(nodes[affine]) -
                                  total_charge(nodes[fallback])
                            : 0;
  const double allowance = opts_.spill_factor *
                           static_cast<double>(nodes[affine].prefix_saved_cycles);
  return static_cast<double>(detour) <= allowance ? affine : fallback;
}

const char* route_policy_name(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::round_robin: return "round_robin";
    case RoutePolicy::join_shortest_queue: return "join_shortest_queue";
    case RoutePolicy::cost_aware: return "cost_aware";
    case RoutePolicy::prefix_affinity: return "prefix_affinity";
  }
  return "?";
}

std::shared_ptr<const RoutingPolicy> make_routing_policy(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::round_robin:
      return std::make_shared<RoundRobinRouting>();
    case RoutePolicy::join_shortest_queue:
      return std::make_shared<JoinShortestQueueRouting>();
    case RoutePolicy::cost_aware:
      return std::make_shared<CostEstimateAwareRouting>();
    case RoutePolicy::prefix_affinity:
      return std::make_shared<PrefixAffinityRouting>();
  }
  DISTMCU_CHECK(false, "make_routing_policy: unknown policy");
  return nullptr;
}

}  // namespace distmcu::fleet
