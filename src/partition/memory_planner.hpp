#ifndef DISTMCU_PARTITION_MEMORY_PLANNER_HPP
#define DISTMCU_PARTITION_MEMORY_PLANNER_HPP

#include <string>

#include "chip/chip_config.hpp"
#include "model/config.hpp"
#include "partition/plan.hpp"
#include "util/units.hpp"

namespace distmcu::partition {

/// Storage widths of the deployment (see DESIGN.md "Calibration
/// decisions"): 2-byte weights and 1-byte activations/KV reproduce the
/// paper's residency crossovers; the precision ablation bench sweeps
/// them.
struct PrecisionConfig {
  Bytes weight_bytes = 2;
  Bytes act_bytes = 1;
  Bytes kv_bytes = 1;
  /// Operand width driving cluster MAC throughput.
  chip::Precision mac_precision = chip::Precision::int16;
};

/// Where a block's weights live during execution — the regime that
/// decides whether the paper's super-linear speedup appears:
///  * streamed:        the working set exceeds L2; weights are fetched
///                     from L3 synchronously during the block (1-4 chip
///                     TinyLlama, 1-2 chip MobileBERT);
///  * double_buffered: one block's shard fits in L2 twice, so the next
///                     block prefetches during the current one (8-16
///                     chips); L3 traffic costs energy but not latency;
///  * fully_resident:  the whole model shard fits on-chip (32-64 chips
///                     in the scaling study); no steady-state L3 traffic
///                     at all.
enum class Residency { streamed, double_buffered, fully_resident };

[[nodiscard]] const char* residency_name(Residency r);

/// Byte-exact L2 budget of the worst-case chip (chip 0 carries the
/// remainder heads/columns) and the selected regime.
struct MemoryPlan {
  Residency residency = Residency::streamed;

  int seq_len = 1;          // S used for activation sizing
  int attention_span = 1;   // KV positions attended in this mode
  bool uses_kv_cache = false;

  Bytes weight_shard_bytes = 0;   // one block's shard
  Bytes all_blocks_bytes = 0;     // whole model shard
  Bytes kv_cache_bytes = 0;       // all layers, full capacity
  Bytes activation_bytes = 0;     // persistent L2 activation buffers
  Bytes stream_buffer_bytes = 0;  // streaming tiles (streamed regime)
  Bytes l2_usable = 0;

  [[nodiscard]] Bytes need_fully_resident() const {
    return all_blocks_bytes + kv_cache_bytes + activation_bytes;
  }
  [[nodiscard]] Bytes need_double_buffered() const {
    return 2 * weight_shard_bytes + kv_cache_bytes + activation_bytes;
  }
  [[nodiscard]] Bytes need_streamed() const {
    return stream_buffer_bytes + kv_cache_bytes + activation_bytes;
  }

  /// Bytes the selected residency regime requires.
  [[nodiscard]] Bytes need() const {
    switch (residency) {
      case Residency::streamed: return need_streamed();
      case Residency::double_buffered: return need_double_buffered();
      case Residency::fully_resident: return need_fully_resident();
    }
    return need_streamed();
  }

  /// Multi-line fit report (used by the partition_inspector example).
  [[nodiscard]] std::string describe() const;
};

/// Decides the residency regime for a partition on a chip configuration.
///
/// Activation sizing (persistent L2 buffers per chip, documented so the
/// constants are auditable):
///   2*S*E   input + accumulation/normed buffer (partial output reuses it)
///   3*S*pw  Q/K/V slices of the owned heads
///   S*fw    FFN hidden slice
/// Attention score tiles stream through L1 and are not persistent.
/// KV caches reserve full capacity (ar_context positions) for every
/// layer whenever the model is causal — during autoregressive decoding
/// every layer's cache must persist across tokens.
class MemoryPlanner {
 public:
  MemoryPlanner(chip::ChipConfig chip_cfg, PrecisionConfig precision);

  /// Throws PlanError when even the streamed regime cannot fit (KV +
  /// activations alone exceed L2).
  [[nodiscard]] MemoryPlan plan(const PartitionPlan& partition, model::Mode mode) const;

  [[nodiscard]] const chip::ChipConfig& chip_config() const { return chip_; }
  [[nodiscard]] const PrecisionConfig& precision() const { return precision_; }

 private:
  chip::ChipConfig chip_;
  PrecisionConfig precision_;
};

}  // namespace distmcu::partition

#endif  // DISTMCU_PARTITION_MEMORY_PLANNER_HPP
