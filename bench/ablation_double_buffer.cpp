// Ablation A2 (DESIGN.md): latency accounting — the paper's single-block
// measurement (weights pre-staged, prefetch charged to energy only) vs
// the sustained steady state of a full forward pass, where a
// double-buffered block cannot outrun its successor's L3 prefetch.
// Event-driven multi-block simulation on sim::Engine.
#include <iostream>

#include "bench_common.hpp"
#include "runtime/steady_state.hpp"

using namespace distmcu;

int main() {
  const auto sys = runtime::SystemConfig::siracusa_system();
  const runtime::SteadyStateSimulation ss(sys);

  std::cout << "Ablation A2 — single-block vs steady-state latency accounting\n";
  util::Table table({"model", "mode", "chips", "residency", "isolated_cycles",
                     "sustained_cycles", "stall_per_block", "ratio"});
  struct Case {
    model::TransformerConfig cfg;
    model::Mode mode;
    int chips;
  };
  const std::vector<Case> cases{
      {model::TransformerConfig::tiny_llama_42m(), model::Mode::autoregressive, 4},
      {model::TransformerConfig::tiny_llama_42m(), model::Mode::autoregressive, 8},
      {model::TransformerConfig::tiny_llama_42m(), model::Mode::prompt, 8},
      {model::TransformerConfig::mobile_bert(), model::Mode::prompt, 4},
      {model::TransformerConfig::tiny_llama_scaled(64), model::Mode::autoregressive, 16},
      {model::TransformerConfig::tiny_llama_scaled(64), model::Mode::autoregressive, 32},
  };
  for (const auto& c : cases) {
    const auto plan = partition::PartitionPlan::create(c.cfg, c.chips);
    const auto rep = ss.run(plan, c.mode);
    table.row()
        .add(c.cfg.name)
        .add(model::mode_name(c.mode))
        .add(c.chips)
        .add(partition::residency_name(rep.residency))
        .add(rep.per_block_isolated)
        .add(rep.per_block_sustained)
        .add(rep.prefetch_stall_cycles / static_cast<Cycles>(rep.blocks))
        .add(static_cast<double>(rep.per_block_sustained) /
                 static_cast<double>(rep.per_block_isolated),
             2);
  }
  table.print(std::cout);
  std::cout
      << "\nreading: in the double-buffered regime the paper's reported per-block "
         "latency is the lower bound; sustained autoregressive decoding at 8 chips "
         "is L3-prefetch-bound (786 KiB @ 0.5 GB/s ~ 1.6 ms per block). Only the "
         "fully-resident regime (32+ chips on the scaled model) sustains the "
         "single-block latency — a deployment consideration the paper's energy "
         "numbers capture but its latency plots do not.\n";
  return 0;
}
