// Tests for the Table-I comparison baselines: weight duplication factors,
// residency penalties of replication and pipelining, and the latency
// relationships the paper's related-work argument rests on.
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "model/config.hpp"
#include "util/check.hpp"

using namespace distmcu;
using baselines::BaselineReport;
using baselines::PipelineParallel;
using baselines::ReplicatedSeqParallel;
using baselines::run_tensor_parallel;
using model::Mode;
using model::TransformerConfig;
using runtime::SystemConfig;

namespace {
SystemConfig sys() { return SystemConfig::siracusa_system(); }
}  // namespace

TEST(Baselines, TensorParallelHasNoDuplication) {
  const auto r = run_tensor_parallel(TransformerConfig::tiny_llama_42m(), 8,
                                     Mode::autoregressive, sys());
  EXPECT_DOUBLE_EQ(r.weight_duplication, 1.0);
  EXPECT_FALSE(r.needs_pipelining);
  EXPECT_EQ(r.residency, partition::Residency::double_buffered);
}

TEST(Baselines, ReplicationDuplicatesWeightsNTimes) {
  const ReplicatedSeqParallel rep(sys());
  const auto r = rep.run(TransformerConfig::tiny_llama_42m(), 8, Mode::prompt);
  EXPECT_DOUBLE_EQ(r.weight_duplication, 8.0);
  // Full weights per chip -> stuck in the streamed regime (the paper's
  // argument against [21]-style replication).
  EXPECT_EQ(r.residency, partition::Residency::streamed);
}

TEST(Baselines, ReplicationDegeneratesInArMode) {
  const ReplicatedSeqParallel rep(sys());
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const auto r1 = rep.run(cfg, 1, Mode::autoregressive);
  const auto r8 = rep.run(cfg, 8, Mode::autoregressive);
  // S = 1: nothing to split; more chips do not help a single token.
  EXPECT_EQ(r1.block_cycles, r8.block_cycles);
}

TEST(Baselines, TensorParallelBeatsReplicationAtEightChips) {
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const auto ours = run_tensor_parallel(cfg, 8, Mode::autoregressive, sys());
  const ReplicatedSeqParallel rep(sys());
  const auto theirs = rep.run(cfg, 8, Mode::autoregressive);
  EXPECT_LT(ours.block_cycles * 10, theirs.block_cycles);
}

TEST(Baselines, ReplicationPromptSplitsComputeButKeepsL3) {
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const ReplicatedSeqParallel rep(sys());
  const auto r1 = rep.run(cfg, 1, Mode::prompt);
  const auto r8 = rep.run(cfg, 8, Mode::prompt);
  // Some speedup from splitting rows, but the full weight stream from L3
  // per chip caps it well below the 8x of the paper's scheme.
  EXPECT_LT(r8.block_cycles, r1.block_cycles);
  const auto ours = run_tensor_parallel(cfg, 8, Mode::prompt, sys());
  EXPECT_LT(ours.block_cycles, r8.block_cycles);
}

TEST(Baselines, PipelineKeepsFullBlocksStreamed) {
  // TinyLlama's block (6 MiB at 2 B/weight) exceeds L2 regardless of the
  // number of pipeline stages: layer-granular partitioning cannot shrink
  // the per-chip working set below one block.
  const PipelineParallel pipe(sys());
  const auto cfg = TransformerConfig::tiny_llama_42m();
  for (int n : {1, 2, 4, 8}) {
    const auto r = pipe.run(cfg, n, Mode::autoregressive);
    EXPECT_EQ(r.residency, partition::Residency::streamed) << "n=" << n;
    EXPECT_TRUE(r.needs_pipelining);
  }
}

TEST(Baselines, PipelineSingleRequestLatencyDoesNotImprove) {
  const PipelineParallel pipe(sys());
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const auto r1 = pipe.run(cfg, 1, Mode::autoregressive);
  const auto r8 = pipe.run(cfg, 8, Mode::autoregressive);
  // Per-block latency only gains the inter-stage hops (paper Sec. III-B:
  // "unable to optimize the latency of an individual request").
  EXPECT_GE(r8.block_cycles, r1.block_cycles);
}

TEST(Baselines, PipelineThroughputImprovesWithStages) {
  const PipelineParallel pipe(sys());
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const Cycles p1 = pipe.pipelined_period_cycles(cfg, 1, Mode::prompt);
  const Cycles p8 = pipe.pipelined_period_cycles(cfg, 8, Mode::prompt);
  // With deep batches the pipeline period shrinks with stage count —
  // the regime the paper's wearable use case does not have.
  EXPECT_EQ(p8 * 8, p1);
}

TEST(Baselines, PipelineRejectsMoreChipsThanLayers) {
  const PipelineParallel pipe(sys());
  EXPECT_THROW((void)pipe.run(TransformerConfig::tiny_llama_42m(), 16,
                              Mode::autoregressive),
               Error);
}

TEST(Baselines, OursWinsOnEnergyAgainstReplication) {
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const auto ours = run_tensor_parallel(cfg, 8, Mode::prompt, sys());
  const ReplicatedSeqParallel rep(sys());
  const auto theirs = rep.run(cfg, 8, Mode::prompt);
  // N full weight streams from L3 vs one sharded stream: replication pays
  // ~N x the off-chip energy.
  EXPECT_LT(ours.energy_mj, theirs.energy_mj);
}
