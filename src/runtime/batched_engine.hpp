#ifndef DISTMCU_RUNTIME_BATCHED_ENGINE_HPP
#define DISTMCU_RUNTIME_BATCHED_ENGINE_HPP

#include <deque>
#include <optional>
#include <vector>

#include "mem/arena.hpp"
#include "model/kv_cache.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/prefetch_pipeline.hpp"
#include "sim/tracer.hpp"

namespace distmcu::runtime {

using RequestId = int;

/// Final outcome of one served request. `gen` carries the request's own
/// token stream (bit-identical to an independent
/// InferenceSession::generate call with the same prompt) plus the
/// cycles/energy attributed to this request by the serving cost model.
struct RequestResult {
  RequestId id = -1;
  GenerationResult gen;
  int admitted_step = -1;
  int finished_step = -1;
  /// Engine-timeline timestamps: residence in the batch, from the
  /// request's own admission point (after earlier same-step prefills) to
  /// the boundary at which its final token was committed — its own
  /// prefill end for new_tokens == 0, otherwise the end of its last
  /// decode phase. Other requests' work outside that span (later
  /// same-step prefills, the final step's decode) is never charged to
  /// it. Unlike the attributed cycles in `gen`, the span grows with
  /// batch contention.
  Cycles admitted_at = 0;
  Cycles finished_at = 0;

  [[nodiscard]] Cycles latency_cycles() const { return finished_at - admitted_at; }
};

/// Aggregate serving metrics across all requests the engine processed.
/// total_cycles is the engine's simulated wall-clock; per-request
/// attributed cycles sum to it exactly (the visible remainder of the
/// shared weight stream is distributed deterministically).
struct ServingStats {
  Cycles total_cycles = 0;
  double total_energy_mj = 0.0;
  int total_generated = 0;
  int steps = 0;
  /// Steps in which at least one request ran a decode forward (and the
  /// batch consumed one shared block-weight stream).
  int decode_steps = 0;
  int peak_batch = 0;
  int completed = 0;
  int rejected = 0;
  /// Decode cycles the batch spent waiting for the next step's weight
  /// prefetch to land — nonzero only when the batch's compute cannot
  /// cover the stream. Per step: max(0, stream - compute).
  Cycles prefetch_stall_cycles = 0;
  /// Serial stream cycles hidden behind compute by the prefetch overlap;
  /// `total_cycles + stream_cycles_hidden` is what the serial-charging
  /// cost model (compute + stream per step) would have reported.
  /// Invariant: prefetch_stall_cycles + stream_cycles_hidden ==
  /// decode_steps * per-step serial stream cycles.
  Cycles stream_cycles_hidden = 0;

  [[nodiscard]] double aggregate_tokens_per_s(double freq_hz) const {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(total_generated) /
                                   util::cycles_to_s(total_cycles, freq_hz);
  }
  [[nodiscard]] double mj_per_token() const {
    return total_generated == 0 ? 0.0 : total_energy_mj / total_generated;
  }
};

/// Batched serving runtime over one InferenceSession deployment:
/// accepts many concurrent generation requests and multiplexes them
/// over the shared partition::DistributedBlock executor with continuous
/// batching — requests join and leave the running batch at token
/// boundaries, never mid-block.
///
///   BatchedEngine engine(session, {.max_batch = 4});
///   auto id = engine.submit({1, 17, 42}, 16);
///   auto results = engine.run_to_completion();
///
/// Functional contract: every request decodes against its own pooled
/// KV-cache set, so its token stream is bit-identical to an independent
/// InferenceSession::generate call regardless of what else shares the
/// batch.
///
/// Cost model (per engine step, from TimedBlockSimulation block
/// reports): prefill is charged in full to the joining request; for the
/// B requests decoding in a step, block-weight streaming (the L3->L2
/// portion) is paid once and shared — the continuous-batching win on a
/// weight-streaming MCU deployment — while compute, L2<->L1 tile DMA,
/// and chip-to-chip synchronization are paid per request.
///
/// The shared stream is further overlapped with compute: each step's
/// weight stream is an asynchronous DMA on a runtime::PrefetchPipeline
/// L3 port, issued as the previous step's decode starts (the same
/// double-buffering race SteadyStateSimulation models for single-stream
/// passes). A step therefore costs max(compute, prefetch_ready) rather
/// than compute + stream; only the unhidden remainder — reported as
/// ServingStats::prefetch_stall_cycles — lands on the batch, split into
/// per-request shares exactly like the serial stream used to be. The
/// first stream of a serving window is staged ahead of time (the paper's
/// steady-state setup), and streaming *energy* is charged in full per
/// consumed step: overlap hides time, not DMA activity.
///
/// KV-cache sets come from a model::KvCachePool sized at construction;
/// the byte reservation is charged to a mem::Arena through a
/// mem::SlotArena, so admission beyond max_batch queues and submits
/// beyond the queue bound are rejected gracefully (nullopt, no UB).
/// Construction throws PlanError when max_batch KV sets do not fit the
/// deployment's L2 budget next to the single-request plan the memory
/// planner already validated.
class BatchedEngine {
 public:
  struct Options {
    int max_batch = 4;  ///< concurrent KV-cache pool slots
    /// Bound on the *queue* — the backlog beyond what the free KV slots
    /// can absorb at the next admission point. max_pending == 0 still
    /// accepts submits an idle engine can admit directly.
    int max_pending = 64;
  };

  /// `session` must outlive the engine. `tracer`, when non-null,
  /// receives one span per charge with the owning request id tagged
  /// (shared weight streaming is split into per-request shares).
  explicit BatchedEngine(const InferenceSession& session, Options opts,
                         sim::Tracer* tracer = nullptr);
  explicit BatchedEngine(const InferenceSession& session)
      : BatchedEngine(session, Options{}) {}

  /// Queue a generation request. Throws distmcu::Error on contract
  /// violations (empty prompt, context overflow, prompt longer than the
  /// deployment's static prefill shape `prompt_len`) exactly like
  /// InferenceSession::generate; returns nullopt when the queue backlog
  /// beyond the free KV slots reaches max_pending (graceful
  /// backpressure).
  [[nodiscard]] std::optional<RequestId> submit(std::vector<int> prompt,
                                                int new_tokens);

  /// Advance one token boundary: admit pending requests into free KV
  /// slots (running their prefill), then decode one token for every
  /// active request. Returns false when no work remains.
  bool step();

  /// Drain the engine and return all finished requests (admit order of
  /// completion).
  [[nodiscard]] std::vector<RequestResult> run_to_completion();

  [[nodiscard]] const ServingStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<RequestResult>& finished() const {
    return finished_;
  }
  [[nodiscard]] int active_requests() const { return static_cast<int>(active_.size()); }
  [[nodiscard]] int pending_requests() const { return static_cast<int>(pending_.size()); }
  [[nodiscard]] const mem::Arena& kv_arena() const { return kv_arena_; }
  [[nodiscard]] const mem::SlotArena& kv_slots() const { return kv_slots_; }

 private:
  struct Request {
    RequestId id = -1;
    std::vector<int> prompt;
    int new_tokens = 0;
    std::vector<int> tokens;
    int generated = 0;
    int pos = 0;        // absolute position of the next decoded token
    int next = -1;      // pending token, emitted at the next boundary
    int slot = -1;      // KV pool slot while active
    Cycles cycles = 0;  // attributed simulated cost
    double energy_mj = 0.0;
    int admitted_step = -1;
    /// Engine timeline at the request's own admission point — after the
    /// prefills of requests admitted earlier in the same step, so
    /// latency_cycles() never charges it their cycles.
    Cycles admitted_at = 0;
    /// Timeline at the request's last completed work (prefill end, then
    /// each decode phase end); finished_at is stamped from it so a
    /// request that merely commits its final token is not charged the
    /// rest of the step.
    Cycles work_done_at = 0;
  };

  void admit_pending(int step_idx, double& step_energy);
  void finish(Request& r, int step_idx);
  /// Charge `cycles`/`energy` to a request and, when tracing, lay a
  /// tagged span at [begin, begin + cycles] on the engine timeline —
  /// spans of different requests get their own trace lanes and may
  /// overlap within a step.
  void charge(Request& r, Cycles cycles, double energy_mj, sim::Category cat,
              const char* label, Cycles begin);

  const InferenceSession& session_;
  Options opts_;
  sim::Tracer* tracer_;

  // Block-level measurements of this deployment, simulated once;
  // declared ahead of the pool so the L2 fit check can gate pool
  // construction.
  BlockResult prompt_block_;
  BlockResult ar_block_;

  // Cost decomposition derived from the block reports.
  Cycles prompt_cycles_ = 0;      // full prefill cost, all layers
  double prompt_energy_mj_ = 0.0;
  Cycles prompt_stream_cycles_ = 0;  // prefill's own L3 port occupancy
  Cycles ar_shared_cycles_ = 0;   // weight streaming, shared across the batch
  double ar_shared_energy_mj_ = 0.0;
  Cycles ar_per_req_cycles_ = 0;  // compute + tile DMA + C2C, per request
  double ar_per_req_energy_mj_ = 0.0;

  model::KvCachePool kv_pool_;
  Bytes kv_set_bytes_ = 0;  // one pooled set at full capacity
  mem::Arena kv_arena_;
  mem::SlotArena kv_slots_;

  std::deque<Request> pending_;
  std::vector<Request> active_;
  std::vector<RequestResult> finished_;
  ServingStats stats_;
  RequestId next_id_ = 0;

  /// Step timeline: decode compute races the next step's weight-stream
  /// DMA. The port is normalized (1 byte == 1 cycle of the measured
  /// serial stream, no extra setup) because ar_shared_cycles_ already
  /// includes the per-tile DMA setup costs the timed simulation charged.
  PrefetchPipeline pipeline_{1.0, 0};
  Bytes stream_bytes_per_step_ = 0;  // real L3 bytes, for trace fidelity
  /// The in-flight stream DMA the next decode step will consume; traced
  /// at consumption time so speculative fetches never appear. Zero-width
  /// before the first decode step (weights staged).
  Cycles pending_fetch_issue_ = 0;
  Cycles pending_fetch_ready_ = 0;
};

}  // namespace distmcu::runtime

#endif  // DISTMCU_RUNTIME_BATCHED_ENGINE_HPP
