#include "baselines/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "energy/energy_model.hpp"
#include "partition/memory_planner.hpp"
#include "partition/plan.hpp"
#include "util/check.hpp"

namespace distmcu::baselines {

namespace {

/// Single-chip block report for a (possibly sequence-reduced) config.
runtime::RunReport single_chip_block(const model::TransformerConfig& cfg,
                                     model::Mode mode,
                                     const runtime::SystemConfig& sys) {
  const auto plan = partition::PartitionPlan::create(cfg, 1);
  return runtime::TimedBlockSimulation(sys).run(plan, mode);
}

}  // namespace

BaselineReport run_tensor_parallel(const model::TransformerConfig& cfg, int n_chips,
                                   model::Mode mode, const runtime::SystemConfig& sys) {
  const auto plan = partition::PartitionPlan::create(cfg, n_chips);
  const auto rep = runtime::TimedBlockSimulation(sys).run(plan, mode);
  const energy::EnergyModel em(sys.chip, sys.link);
  BaselineReport out;
  out.name = "tensor-parallel (ours)";
  out.num_chips = n_chips;
  out.mode = mode;
  out.block_cycles = rep.block_cycles;
  out.energy_mj = em.compute(rep).total_mj();
  out.weight_duplication = 1.0;
  out.needs_pipelining = false;
  out.residency = rep.residency;
  return out;
}

ReplicatedSeqParallel::ReplicatedSeqParallel(runtime::SystemConfig sys)
    : sys_(std::move(sys)) {}

BaselineReport ReplicatedSeqParallel::run(const model::TransformerConfig& cfg,
                                          int n_chips, model::Mode mode) const {
  DISTMCU_CHECK(n_chips >= 1, "ReplicatedSeqParallel: need at least one chip");
  BaselineReport out;
  out.name = "replicated seq-parallel [21]";
  out.num_chips = n_chips;
  out.mode = mode;
  out.weight_duplication = static_cast<double>(n_chips);
  out.needs_pipelining = false;

  const energy::EnergyModel em(sys_.chip, sys_.link);

  if (mode == model::Mode::autoregressive || n_chips == 1) {
    // A single token row cannot be split: all chips but one idle.
    const auto rep = single_chip_block(cfg, mode, sys_);
    out.block_cycles = rep.block_cycles;
    out.energy_mj = em.compute(rep).total_mj();
    out.residency = rep.residency;
    return out;
  }

  // Each chip runs the full block over ceil(S/N) sequence rows with the
  // FULL (unsharded) weights.
  model::TransformerConfig shard_cfg = cfg;
  shard_cfg.prompt_len = (cfg.prompt_len + n_chips - 1) / n_chips;
  const auto rep = single_chip_block(shard_cfg, mode, sys_);
  out.residency = rep.residency;

  // Attention needs the full K/V context: all-gather of each chip's K/V
  // row-slices ((N-1)/N of 2*S*PH bytes arriving at every chip, counted
  // once per link crossing), plus the output row-gather to chip 0.
  const auto s = static_cast<Bytes>(cfg.prompt_len);
  const auto e = static_cast<Bytes>(cfg.embed_dim);
  const auto ph = static_cast<Bytes>(cfg.proj_dim());
  const Bytes ab = sys_.precision.act_bytes;
  const Bytes kv_all_gather = 2 * s * ph * ab * static_cast<Bytes>(n_chips - 1);
  const Bytes out_gather = s * e * ab * static_cast<Bytes>(n_chips - 1) /
                           static_cast<Bytes>(n_chips);
  const Bytes c2c_bytes = kv_all_gather + out_gather;
  // Serialized on the gathering chip's ingress, the dominant term.
  const auto c2c_cycles = static_cast<Cycles>(
      std::ceil(static_cast<double>(c2c_bytes) / sys_.link.bandwidth_bytes_per_cycle)) +
      static_cast<Cycles>(2 * n_chips) * sys_.link.setup_cycles;

  out.block_cycles = rep.block_cycles + c2c_cycles;

  // Energy: every chip runs the reduced block; link traffic on top.
  auto eb = em.compute(rep);
  out.energy_mj = eb.total_mj() * static_cast<double>(n_chips) +
                  util::pj_to_mj(static_cast<double>(c2c_bytes) *
                                 sys_.link.energy_pj_per_byte);
  return out;
}

PipelineParallel::PipelineParallel(runtime::SystemConfig sys) : sys_(std::move(sys)) {}

BaselineReport PipelineParallel::run(const model::TransformerConfig& cfg, int n_chips,
                                     model::Mode mode) const {
  DISTMCU_CHECK(n_chips >= 1 && n_chips <= cfg.num_layers,
              "PipelineParallel: chips must not exceed layers");
  BaselineReport out;
  out.name = "pipeline-parallel [22,31]";
  out.num_chips = n_chips;
  out.mode = mode;
  out.weight_duplication = 1.0;
  out.needs_pipelining = true;

  // Each stage executes full (unsharded) blocks sequentially; for a
  // single request the stages chain, so per-block latency equals the
  // single-chip block latency plus the amortized inter-stage activation
  // hop.
  const auto rep = single_chip_block(cfg, mode, sys_);
  out.residency = rep.residency;

  const auto s = static_cast<Bytes>(mode == model::Mode::prompt ? cfg.prompt_len : 1);
  const Bytes act_hop = s * static_cast<Bytes>(cfg.embed_dim) * sys_.precision.act_bytes;
  const auto hop_cycles = sys_.link.setup_cycles + static_cast<Cycles>(std::ceil(
                              static_cast<double>(act_hop) /
                              sys_.link.bandwidth_bytes_per_cycle));
  const auto hops = static_cast<Cycles>(n_chips - 1);
  const auto layers = static_cast<Cycles>(cfg.num_layers);
  // Full model latency / layers -> per-block equivalent.
  out.block_cycles = rep.block_cycles + (hops * hop_cycles + layers - 1) / layers;

  const energy::EnergyModel em(sys_.chip, sys_.link);
  out.energy_mj = em.compute(rep).total_mj() +
                  util::pj_to_mj(static_cast<double>(hops * act_hop) *
                                 sys_.link.energy_pj_per_byte /
                                 static_cast<double>(layers));
  return out;
}

Cycles PipelineParallel::pipelined_period_cycles(const model::TransformerConfig& cfg,
                                                 int n_chips, model::Mode mode) const {
  // With an unbounded batch the pipeline period is the slowest stage:
  // ceil(L/N) blocks per stage.
  const auto rep = single_chip_block(cfg, mode, sys_);
  const auto blocks_per_stage =
      static_cast<Cycles>((cfg.num_layers + n_chips - 1) / n_chips);
  return rep.block_cycles * blocks_per_stage;
}

}  // namespace distmcu::baselines
