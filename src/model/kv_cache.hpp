#ifndef DISTMCU_MODEL_KV_CACHE_HPP
#define DISTMCU_MODEL_KV_CACHE_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "model/tensor.hpp"

namespace distmcu::model {

/// Bytes `elems` KV entries occupy packed at `elem_bits` bits each,
/// rounded up to whole bytes (int4 packs two entries per byte).
/// `elem_bits == 8 * elem_bytes` reproduces the byte-width accounting
/// exactly, which is what keeps native-layout deployments bit-identical.
[[nodiscard]] constexpr Bytes packed_kv_bytes(std::uint64_t elems,
                                              int elem_bits) {
  constexpr std::uint64_t kBitsPerByte = 8;  // lint-domain: allow
  return static_cast<Bytes>(
      (elems * static_cast<std::uint64_t>(elem_bits) + kBitsPerByte - 1) /
      kBitsPerByte);
}

/// Key/Value cache for one layer (paper Sec. II-A): stores the projected
/// K and V rows of all past positions so autoregressive decoding avoids
/// recomputation. `dim` is P*H for the reference model or the per-chip
/// slice P*H/N under the head partitioning — the cache itself is
/// partition-agnostic.
class KvCache {
 public:
  KvCache(int max_positions, int dim);

  /// Append one position's k and v rows (each of length dim).
  void append(std::span<const float> k, std::span<const float> v);

  [[nodiscard]] int length() const { return length_; }
  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] int capacity() const { return max_positions_; }

  /// Contiguous [length, dim] views of the filled prefix.
  [[nodiscard]] std::span<const float> k() const;
  [[nodiscard]] std::span<const float> v() const;

  /// Column-slice copies for one head (or head range) of the filled
  /// prefix: [length, c1-c0].
  [[nodiscard]] Tensor k_slice(int c0, int c1) const;
  [[nodiscard]] Tensor v_slice(int c0, int c1) const;

  void reset() { length_ = 0; }

  /// Overwrite this cache's state (filled rows + length) from a
  /// same-shape snapshot — the restore half of preemptive serving's
  /// checkpoint/resume. Rows past the snapshot's length are outside the
  /// filled prefix and never read, so they are left untouched.
  void copy_state_from(const KvCache& src);

  /// Overwrite only the first `positions` rows from a same-shape source
  /// and set length to `positions` — adopting a shared prompt prefix
  /// without disturbing (or paying for) the rest of the cache. Requires
  /// `positions <= src.length()`.
  void copy_prefix_from(const KvCache& src, int positions);

  /// Bytes this cache occupies at `elem_bytes` per element, for the full
  /// capacity (what the memory planner must reserve).
  [[nodiscard]] Bytes capacity_bytes(Bytes elem_bytes) const {
    return 2ull * static_cast<Bytes>(max_positions_) * static_cast<Bytes>(dim_) *
           elem_bytes;
  }

  /// Bytes of the filled prefix at `elem_bytes` per element — the KV
  /// traffic an eviction checkpoint (or its resume) must move off/on
  /// chip.
  [[nodiscard]] Bytes filled_bytes(Bytes elem_bytes) const {
    return 2ull * static_cast<Bytes>(length_) * static_cast<Bytes>(dim_) *
           elem_bytes;
  }

  /// Packed-layout variants: bytes at `elem_bits` bits per entry. These
  /// are what quantized-KV deployments charge the shared arena (and the
  /// checkpoint DMA) instead of the byte-width forms above.
  [[nodiscard]] Bytes capacity_packed_bytes(int elem_bits) const {
    return packed_kv_bytes(2ull * static_cast<std::uint64_t>(max_positions_) *
                               static_cast<std::uint64_t>(dim_),
                           elem_bits);
  }
  [[nodiscard]] Bytes filled_packed_bytes(int elem_bits) const {
    return packed_kv_bytes(2ull * static_cast<std::uint64_t>(length_) *
                               static_cast<std::uint64_t>(dim_),
                           elem_bits);
  }

 private:
  int max_positions_;
  int dim_;
  int length_ = 0;
  Tensor k_store_;
  Tensor v_store_;
};

/// Pre-built pool of per-request cache sets for multi-request serving.
/// One "set" is everything a single generation stream needs across the
/// whole deployment — indexed [chip][layer], the shape
/// partition::DistributedBlock::make_chip_caches produces. The pool
/// builds every set once at construction (no allocation during serving)
/// and recycles sets between requests via reset. In multi-model serving
/// each deployed model keys its own pool (cache shapes differ per
/// model); the pool tracks its free sets itself via acquire_set /
/// release_set (lowest-free-index, deterministic), while the shared
/// *byte budget* across all models' pools lives with the engine's
/// tenant-tagged mem::SlotArena so the accounting and the tensors
/// cannot drift apart.
class KvCachePool {
 public:
  using CacheSet = std::vector<std::vector<KvCache>>;

  KvCachePool(int n_slots, const std::function<CacheSet()>& build_set);

  [[nodiscard]] int capacity() const { return static_cast<int>(slots_.size()); }
  [[nodiscard]] CacheSet& slot(int i);

  /// Empty every cache in a set before handing it to a new request.
  void reset_slot(int i);

  /// Overwrite set `i` from a snapshot taken off a same-shape set
  /// (shape-checked cache by cache) — resuming a preempted request
  /// restores its KV contents bit-exactly before its next decode step.
  void restore_slot(int i, const CacheSet& snapshot);

  /// Overwrite only the first `positions` rows of every cache in set `i`
  /// from the snapshot and set each length to `positions` — the
  /// copy-on-write fork of paged prefix sharing: the adopted prefix is
  /// bit-identical to the donor's, everything past it belongs to the new
  /// request.
  void restore_prefix(int i, const CacheSet& snapshot, int positions);

  /// Bytes of set `i`'s filled prefixes (all chips, all layers) at
  /// `elem_bytes` per element — the eviction-checkpoint traffic of the
  /// request currently holding the set.
  [[nodiscard]] Bytes set_filled_bytes(int i, Bytes elem_bytes);

  /// Packed-layout variant of set_filled_bytes: the checkpoint traffic
  /// when the tenant stores KV entries at `elem_bits` bits each.
  [[nodiscard]] Bytes set_filled_packed_bytes(int i, int elem_bits);

  /// Lowest free set index, or nullopt when every set is handed out.
  [[nodiscard]] std::optional<int> acquire_set();

  /// Return a set obtained from acquire_set (throws on double release).
  void release_set(int i);

  [[nodiscard]] int sets_in_use() const { return sets_in_use_; }

  /// Bytes one set reserves at full capacity (all chips, all layers) —
  /// what the serving engine's arena charges per slot.
  [[nodiscard]] Bytes set_capacity_bytes(Bytes elem_bytes) const;

  /// Packed-layout variant of set_capacity_bytes: what one set costs the
  /// arena when KV entries are stored at `elem_bits` bits each.
  [[nodiscard]] Bytes set_capacity_packed_bytes(int elem_bits) const;

 private:
  std::vector<CacheSet> slots_;
  std::vector<bool> set_in_use_;
  int sets_in_use_ = 0;
};

}  // namespace distmcu::model

#endif  // DISTMCU_MODEL_KV_CACHE_HPP
