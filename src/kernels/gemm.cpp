#include "kernels/gemm.hpp"

#include "util/check.hpp"

namespace distmcu::kernels {

namespace {
void check_sizes(std::span<const float> a, std::span<const float> b,
                 std::span<float> c, int m, int n, int k, std::size_t b_expected) {
  DISTMCU_CHECK(m > 0 && n > 0 && k > 0, "gemm: dimensions must be positive");
  DISTMCU_CHECK(a.size() == static_cast<std::size_t>(m) * static_cast<std::size_t>(k),
              "gemm: A size mismatch");
  DISTMCU_CHECK(b.size() == b_expected, "gemm: B size mismatch");
  DISTMCU_CHECK(c.size() == static_cast<std::size_t>(m) * static_cast<std::size_t>(n),
              "gemm: C size mismatch");
}
}  // namespace

void gemm(std::span<const float> a, std::span<const float> b, std::span<float> c,
          int m, int n, int k, std::span<const float> bias) {
  check_sizes(a, b, c, m, n, k,
              static_cast<std::size_t>(k) * static_cast<std::size_t>(n));
  DISTMCU_CHECK(bias.empty() || bias.size() == static_cast<std::size_t>(n),
              "gemm: bias size mismatch");
  for (int i = 0; i < m; ++i) {
    float* crow = c.data() + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) crow[j] = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(j)];
    const float* arow = a.data() + static_cast<std::size_t>(i) * k;
    // k-outer loop keeps B accesses sequential (row-major [K,N]).
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.data() + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_nt(std::span<const float> a, std::span<const float> b, std::span<float> c,
             int m, int n, int k) {
  check_sizes(a, b, c, m, n, k,
              static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
  for (int i = 0; i < m; ++i) {
    const float* arow = a.data() + static_cast<std::size_t>(i) * k;
    float* crow = c.data() + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b.data() + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
}

void gemv(std::span<const float> x, std::span<const float> b, std::span<float> out,
          int n, int k, std::span<const float> bias) {
  gemm(x, b, out, 1, n, k, bias);
}

}  // namespace distmcu::kernels
