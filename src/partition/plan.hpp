#ifndef DISTMCU_PARTITION_PLAN_HPP
#define DISTMCU_PARTITION_PLAN_HPP

#include <cstdint>
#include <vector>

#include "model/config.hpp"
#include "util/units.hpp"

namespace distmcu::partition {

/// The slice of a Transformer block owned by one chip under the paper's
/// partitioning (Sec. IV):
///  * MHSA is split along the head dimension: the chip holds heads
///    [head_begin, head_end) — columns of WQ/WK/WV and rows of WO — plus
///    the corresponding Q/K/V activations and KV-cache slice.
///  * The FFN is split along the intermediate dimension F: columns
///    [f_begin, f_end) of W1 and the same rows of W2.
/// Head computations are fully independent, and each chip's WO / W2 rows
/// pair exactly with the columns it produced, so the only communication
/// is the all-reduce of the [S, E] partial outputs — once after the MHSA
/// and once after the FFN.
struct ChipSlice {
  int chip = 0;
  int head_begin = 0;
  int head_end = 0;
  int f_begin = 0;
  int f_end = 0;

  [[nodiscard]] int num_heads() const { return head_end - head_begin; }
  [[nodiscard]] int f_width() const { return f_end - f_begin; }
};

/// Zero-duplication tensor-parallel partition of a Transformer across N
/// chips (the paper's core contribution). Heads and FFN columns are
/// distributed as evenly as possible (remainders go to the lowest chip
/// ids, so chip 0 always carries the maximal slice — the planner and the
/// timing model treat chip 0 as the worst case).
class PartitionPlan {
 public:
  /// Requires 1 <= n_chips <= min(H, F): every chip must own at least
  /// one head and one FFN column, matching the paper's scaling study
  /// where the head count is raised to 64 before using 64 chips.
  [[nodiscard]] static PartitionPlan create(const model::TransformerConfig& cfg,
                                            int n_chips);

  [[nodiscard]] int num_chips() const { return static_cast<int>(slices_.size()); }
  [[nodiscard]] const ChipSlice& slice(int chip) const;
  [[nodiscard]] const std::vector<ChipSlice>& slices() const { return slices_; }
  [[nodiscard]] const model::TransformerConfig& config() const { return cfg_; }

  /// Projection width (P * heads owned) of one chip.
  [[nodiscard]] int proj_width(int chip) const;

  /// Matmul weight elements of one block held by `chip`:
  /// 3*E*pw (WQ/WK/WV columns) + pw*E (WO rows) + E*fw (W1 columns) +
  /// fw*E (W2 rows).
  [[nodiscard]] std::uint64_t chip_block_weight_elems(int chip) const;

  /// Maximum over chips (== chip 0) — the planner's sizing input.
  [[nodiscard]] std::uint64_t max_chip_block_weight_elems() const;

  /// Elements of one all-reduce payload per chip: the [S, E] partial
  /// output (S depends on mode; passed in by the caller).
  [[nodiscard]] std::uint64_t sync_payload_elems(int seq_len) const;

  /// The paper's headline structural property: exactly two
  /// synchronizations (all-reduces) per Transformer block.
  static constexpr int kSyncsPerBlock = 2;

  /// Internal consistency: slices tile [0,H) and [0,F) without overlap
  /// and per-chip weights sum exactly to the block total (the
  /// zero-duplication proof, also asserted by tests).
  void validate() const;

 private:
  PartitionPlan(model::TransformerConfig cfg, std::vector<ChipSlice> slices);

  model::TransformerConfig cfg_;
  std::vector<ChipSlice> slices_;
};

}  // namespace distmcu::partition

#endif  // DISTMCU_PARTITION_PLAN_HPP
