#include "runtime/prefetch_pipeline.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace distmcu::runtime {

PrefetchPipeline::PrefetchPipeline(double bandwidth_bytes_per_cycle,
                                   Cycles dma_setup, int channels)
    : port_("l3_prefetch", bandwidth_bytes_per_cycle, dma_setup) {
  DISTMCU_CHECK(channels > 0, "PrefetchPipeline: channels must be positive");
  // Channel 0's weights are staged before the window opens (the paper's
  // block-0 setup); later channels start the same way.
  weights_ready_.assign(static_cast<std::size_t>(channels), 0);
}

PrefetchPipeline::Span PrefetchPipeline::advance(Cycles compute,
                                                 Bytes next_bytes,
                                                 int channel) {
  const StepSpan sp =
      advance_step(/*prefill_compute=*/0,
                   /*prefill_stream_bytes=*/0,
                   /*consume_staged=*/true, compute, next_bytes, channel);
  Span span;
  span.begin = sp.begin;
  span.start = sp.decode_start;
  span.stall = sp.stall;
  span.end = sp.end;
  span.fetch_issue = sp.fetch_issue;
  span.fetch_ready = sp.fetch_ready;
  return span;
}

PrefetchPipeline::StepSpan PrefetchPipeline::advance_step(
    Cycles prefill_compute, Bytes prefill_stream_bytes, bool consume_staged,
    Cycles decode_compute, Bytes next_bytes, int channel) {
  DISTMCU_CHECK(channel >= 0 &&
                  channel < static_cast<int>(weights_ready_.size()),
              "PrefetchPipeline: channel out of range");
  Cycles& staged = weights_ready_[static_cast<std::size_t>(channel)];
  StepSpan sp;
  sp.begin = engine_.now();

  // This step's prompt-chunk streams go on the port at the step start;
  // the FIFO horizon serializes them behind any decode fetch still in
  // flight (issued during an earlier step, any channel).
  if (prefill_stream_bytes > 0) {
    sp.chunk_stream_start = port_.earliest_start(sp.begin);
    sp.chunk_ready = port_.transfer(sp.begin, prefill_stream_bytes);
    sp.prefill_window = sp.chunk_ready - sp.begin;
  } else {
    sp.chunk_stream_start = sp.begin;
    sp.chunk_ready = sp.begin;
  }

  // The decode phase follows the prompt work, so the chunk compute helps
  // cover whatever the staged fetch has not yet delivered.
  sp.decode_begin = sp.begin + prefill_compute;
  if (consume_staged) {
    sp.decode_start = std::max(sp.decode_begin, staged);
    sp.stall = sp.decode_start - sp.decode_begin;
    stall_total_ += sp.stall;
  } else {
    sp.decode_start = sp.decode_begin;
  }

  // The prefetch for the following decode step is programmed the moment
  // this step's decode phase starts; the FIFO port serializes it behind
  // the chunk streams issued above (and behind other channels' fetches
  // still in flight).
  sp.fetch_issue = sp.decode_start;
  if (next_bytes > 0) {
    sp.fetch_start = port_.earliest_start(sp.decode_start);
    sp.fetch_ready = port_.transfer(sp.decode_start, next_bytes);
    staged = sp.fetch_ready;
  } else {
    sp.fetch_start = sp.decode_start;
    sp.fetch_ready = sp.decode_start;
    // Staged weights remain resident for the next consuming step.
    if (consume_staged) staged = sp.decode_start;
  }

  const Cycles work_end = sp.decode_start + decode_compute;
  sp.end = std::max(work_end, sp.chunk_ready);
  sp.prefill_tail = sp.end - work_end;

  engine_.schedule_at(sp.end, [] {});
  engine_.run();
  return sp;
}

void PrefetchPipeline::advance_opaque(Cycles compute, Cycles port_cycles) {
  // The opaque span's own port traffic preempts every in-flight fetch
  // for exactly the cycles it occupies; with nothing in flight (or
  // weights already staged) the port is free and nothing moves.
  if (port_cycles > 0) {
    for (Cycles& staged : weights_ready_) {
      if (staged > engine_.now()) staged += port_cycles;
    }
  }
  engine_.schedule_at(engine_.now() + compute, [] {});
  engine_.run();
}

}  // namespace distmcu::runtime
