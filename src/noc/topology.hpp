#ifndef DISTMCU_NOC_TOPOLOGY_HPP
#define DISTMCU_NOC_TOPOLOGY_HPP

#include <vector>

#include "util/units.hpp"

namespace distmcu::noc {

/// MIPI chip-to-chip link parameters (paper Sec. II-B / V-A): 0.5 GB/s
/// (1 B per 500 MHz cycle), 100 pJ/B, plus a per-transfer setup cost for
/// link wake-up / packetization / handshake (~4 us; calibration
/// constant, swept by the all-reduce ablation bench).
struct LinkConfig {
  double bandwidth_bytes_per_cycle = 1.0;
  Cycles setup_cycles = 2000;
  double energy_pj_per_byte = 100.0;
};

/// One point-to-point hop in a collective stage.
struct Transfer {
  int src = 0;
  int dst = 0;
};

/// A stage is a set of transfers that are logically concurrent; hops
/// sharing a destination serialize on the destination's ingress port at
/// simulation time (Resource arbitration), not in the schedule itself.
using Stage = std::vector<Transfer>;

/// Hierarchical reduction topology in groups of `group_size` (paper
/// Fig. 1: groups of four for improved scalability). Chips are grouped
/// consecutively; the first chip of each group is the group leader; the
/// leaders recursively form the next level until a single root (chip 0)
/// remains.
///
/// `reduce_stages()` sends members toward leaders level by level;
/// `broadcast_stages()` is the exact mirror. An all-reduce is a reduce
/// followed by a broadcast — the paper's two synchronizations per
/// Transformer block are two such all-reduces.
class Topology {
 public:
  /// Builds the hierarchy for `n_chips` >= 1 (any count, not just powers
  /// of two; trailing partial groups are allowed). `group_size` >= 2.
  [[nodiscard]] static Topology hierarchical(int n_chips, int group_size = 4);

  /// Flat all-to-one topology (the non-scalable alternative the paper
  /// rejects; kept for the ablation bench).
  [[nodiscard]] static Topology flat(int n_chips);

  [[nodiscard]] int num_chips() const { return num_chips_; }
  [[nodiscard]] int group_size() const { return group_size_; }
  [[nodiscard]] int root() const { return 0; }

  [[nodiscard]] const std::vector<Stage>& reduce_stages() const { return reduce_stages_; }
  [[nodiscard]] std::vector<Stage> broadcast_stages() const;

  /// Total number of point-to-point hops in one reduce (== one
  /// broadcast). For a hierarchy this is n_chips - 1.
  [[nodiscard]] std::size_t hops_per_reduce() const;

 private:
  Topology(int n_chips, int group_size, std::vector<Stage> stages);

  int num_chips_;
  int group_size_;
  std::vector<Stage> reduce_stages_;
};

}  // namespace distmcu::noc

#endif  // DISTMCU_NOC_TOPOLOGY_HPP
