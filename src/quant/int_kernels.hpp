#ifndef DISTMCU_QUANT_INT_KERNELS_HPP
#define DISTMCU_QUANT_INT_KERNELS_HPP

#include <cstdint>
#include <span>

namespace distmcu::quant {

/// Integer GEMM with 32-bit accumulation — the arithmetic the Siracusa
/// cluster executes. C[M,N](i32) = A[M,K](i8/i16) * B[K,N](same).
///
/// Because accumulation is exact in int32 (no rounding), the result is
/// independent of summation order — the property that makes the
/// hierarchical all-reduce of quantized partial outputs bit-exact
/// regardless of tree shape (asserted by the partition property tests).
void gemm_i8_i32(std::span<const std::int8_t> a, std::span<const std::int8_t> b,
                 std::span<std::int32_t> c, int m, int n, int k);

/// int16 variant: products are 30-bit, so accumulation must widen to
/// int64 to stay exact for realistic K (int32 would overflow at K > 2).
void gemm_i16_i64(std::span<const std::int16_t> a, std::span<const std::int16_t> b,
                  std::span<std::int64_t> c, int m, int n, int k);

/// Requantize an int32 accumulator tensor to int8 with a fixed-point
/// multiplier: out = clamp(round(acc * mult / 2^shift)) — the Deeploy
/// requant node.
void requant_i32_i8(std::span<const std::int32_t> acc, std::int32_t mult, int shift,
                    std::span<std::int8_t> out);

}  // namespace distmcu::quant

#endif  // DISTMCU_QUANT_INT_KERNELS_HPP
