#ifndef DISTMCU_RUNTIME_BATCHED_ENGINE_HPP
#define DISTMCU_RUNTIME_BATCHED_ENGINE_HPP

#include <deque>
#include <optional>
#include <vector>

#include "mem/arena.hpp"
#include "model/kv_cache.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/prefetch_pipeline.hpp"
#include "runtime/scheduler.hpp"
#include "sim/tracer.hpp"

namespace distmcu::runtime {

/// Final outcome of one served request. `gen` carries the request's own
/// token stream (bit-identical to an independent
/// InferenceSession::generate call with the same prompt) plus the
/// cycles/energy attributed to this request by the serving cost model.
struct RequestResult {
  RequestId id = -1;
  GenerationResult gen;
  int admitted_step = -1;
  int finished_step = -1;
  /// Engine-timeline timestamps: residence in the batch, from the start
  /// of the request's own first prompt work (after earlier same-step
  /// prompt work of other requests) to the boundary at which its final
  /// token was committed — its own prefill end for new_tokens == 0,
  /// otherwise the end of its last decode phase. Other requests' work
  /// outside that span is never charged to it. Unlike the attributed
  /// cycles in `gen`, the span grows with batch contention.
  Cycles admitted_at = 0;
  Cycles finished_at = 0;
  /// SLO accounting: the spec the request was submitted with, its submit
  /// stamp, and its absolute deadline (kNoDeadline when none). The
  /// queueing delay is the admission wait — from submit to the start of
  /// the request's own first prompt work.
  SloSpec slo;
  Cycles submitted_at = 0;
  Cycles deadline_at = kNoDeadline;

  [[nodiscard]] Cycles latency_cycles() const { return finished_at - admitted_at; }
  [[nodiscard]] Cycles queue_delay_cycles() const {
    return admitted_at - submitted_at;
  }
  /// Attained latency vs the deadline: submit-to-finish, which includes
  /// the queueing delay the scheduler controls.
  [[nodiscard]] Cycles attained_cycles() const {
    return finished_at - submitted_at;
  }
  [[nodiscard]] bool missed_deadline() const {
    return deadline_at != kNoDeadline && finished_at > deadline_at;
  }
};

/// Aggregate serving metrics across all requests the engine processed.
/// total_cycles is the engine's simulated wall-clock; per-request
/// attributed cycles sum to it exactly (the visible remainder of the
/// shared weight stream is distributed deterministically).
struct ServingStats {
  Cycles total_cycles = 0;
  double total_energy_mj = 0.0;
  int total_generated = 0;
  int steps = 0;
  /// Steps in which at least one request ran a decode forward (and the
  /// batch consumed one shared block-weight stream).
  int decode_steps = 0;
  /// Steps in which at least one request ran prompt work (a chunk in the
  /// chunked model, a whole prompt in the serial compatibility mode).
  int prefill_steps = 0;
  int peak_batch = 0;
  int completed = 0;
  int rejected = 0;
  /// Decode cycles the batch spent waiting for the next step's weight
  /// prefetch to land — nonzero only when the step's compute (prompt
  /// chunks included) cannot cover the stream. Per decode step:
  /// max(0, stream - covering compute).
  Cycles prefetch_stall_cycles = 0;
  /// Serial stream cycles hidden behind compute by the prefetch overlap;
  /// `total_cycles + stream_cycles_hidden` is what the serial-charging
  /// cost model (compute + stream per step) would have reported.
  /// Invariant: prefetch_stall_cycles + stream_cycles_hidden ==
  /// decode_steps * per-step serial stream cycles.
  Cycles stream_cycles_hidden = 0;
  /// Prompt-phase cycles actually charged to requests: chunk compute
  /// plus the visible stream tails in the chunked model, whole prompts
  /// (compute + stream serially) in the compatibility mode. The chunked
  /// model's prompt-phase win over serial charging is
  /// (admissions * full prompt cost) - prefill_cycles.
  Cycles prefill_cycles = 0;
  /// Chunked model only: the prompt-chunk streams' port *windows* —
  /// from each step's start to the moment its chunk DMAs land, so FIFO
  /// queueing behind an in-flight decode fetch counts toward the window
  /// alongside the chunks' own service time. The window splits exactly
  /// into the part the step's compute covered (hidden) and the visible
  /// remainder that extended the step (stall, charged to the prefilling
  /// requests). Invariant:
  /// prefill_cycles_hidden + prefill_stall_cycles ==
  /// prefill_stream_cycles.
  Cycles prefill_stream_cycles = 0;
  Cycles prefill_cycles_hidden = 0;
  Cycles prefill_stall_cycles = 0;
  /// SLO accounting over *finished* requests: how many carried a
  /// deadline, how many finished past it, and the queueing-delay
  /// distribution (submit to the request's own first prompt work) by
  /// nearest-rank percentile over all finished requests. Refreshed at
  /// every completion, so mid-serving reads are consistent snapshots.
  int slo_requests = 0;
  int deadline_misses = 0;
  Cycles queue_delay_total = 0;
  Cycles queue_delay_p50 = 0;
  Cycles queue_delay_p95 = 0;
  Cycles queue_delay_p99 = 0;

  [[nodiscard]] double deadline_miss_rate() const {
    return slo_requests == 0
               ? 0.0
               : static_cast<double>(deadline_misses) /
                     static_cast<double>(slo_requests);
  }
  [[nodiscard]] double aggregate_tokens_per_s(double freq_hz) const {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(total_generated) /
                                   util::cycles_to_s(total_cycles, freq_hz);
  }
  [[nodiscard]] double mj_per_token() const {
    return total_generated == 0 ? 0.0 : total_energy_mj / total_generated;
  }
};

/// Batched serving runtime over one InferenceSession deployment:
/// accepts many concurrent generation requests and multiplexes them
/// over the shared partition::DistributedBlock executor with continuous
/// batching — requests join and leave the running batch at token
/// boundaries, never mid-block.
///
///   BatchedEngine engine(session, {.max_batch = 4});
///   auto id = engine.submit({1, 17, 42}, 16);
///   auto results = engine.run_to_completion();
///
/// Functional contract: every request decodes against its own pooled
/// KV-cache set, so its token stream is bit-identical to an independent
/// InferenceSession::generate call regardless of what else shares the
/// batch.
///
/// Cost model (per engine step, from TimedBlockSimulation block
/// reports): every step is a heterogeneous batch. With chunked prefill
/// enabled (prefill_chunk_tokens > 0), each prompt is split into
/// fixed-size chunks — the deployment's static prompt shape at chunk
/// granularity — and every prefilling request advances one chunk per
/// step, co-scheduled with the decoding requests:
///
///   [chunk_0 .. chunk_{P-1} | stall | decode_0 .. decode_{D-1} | tail]
///
/// The chunks' own L3 streaming (their dma_l3_l2 share) is issued as an
/// asynchronous DMA on the shared runtime::PrefetchPipeline port at the
/// step start and races the whole step's compute; only the part of the
/// stream window the compute cannot cover is visible, reported as
/// ServingStats::prefill_stall_cycles and charged to the prefilling
/// requests in exact integer shares (the hidden part is
/// prefill_cycles_hidden). For the D requests decoding in a step,
/// block-weight streaming is paid once and shared — prefetched during
/// the previous step and raced against compute exactly as before, with
/// the chunk compute of the same step helping to cover the stall. The
/// port is FIFO multi-consumer: an in-flight decode fetch, the chunk
/// streams behind it, and the next decode fetch behind those serialize
/// in issue order, so prompt/decode contention emerges from the port.
///
/// With chunking disabled (prefill_chunk_tokens == 0) the engine runs
/// the serial-prefill compatibility mode: a joining request's whole
/// prompt is charged in full (compute + its own streaming) at admission,
/// and only the decode phase races the weight prefetch. A single request
/// in this mode reproduces InferenceSession::generate cycle-for-cycle on
/// a fully resident deployment, and serial-minus-hidden on a streamed
/// one.
///
/// The first stream of a serving window is staged ahead of time (the
/// paper's steady-state setup), and streaming *energy* is charged in
/// full per consumed step: overlap hides time, not DMA activity.
///
/// Admission order is a pluggable runtime::Scheduler policy: whenever a
/// KV slot frees up, the policy picks the next pending request from a
/// queue snapshot carrying each request's SloSpec (priority class,
/// absolute deadline) and a cost-model service estimate. The default is
/// FIFO (bit-exact with the pre-scheduler engine); PriorityScheduler and
/// EdfScheduler reorder admission for latency SLOs, and ServingStats
/// reports deadline misses and the queueing-delay distribution under
/// every policy. Scheduling never preempts: once admitted, a request
/// keeps its slot to completion.
///
/// KV-cache sets come from a model::KvCachePool sized at construction;
/// the byte reservation is charged to a mem::Arena through a
/// mem::SlotArena, so admission beyond max_batch queues and submits
/// beyond the queue bound are rejected gracefully (nullopt, no UB).
/// Construction throws PlanError when max_batch KV sets do not fit the
/// deployment's L2 budget next to the single-request plan the memory
/// planner already validated — with chunking enabled, the prompt-phase
/// fit is checked at the chunk shape (chunked prefill shrinks prompt
/// activations, admitting larger batches under a tight L2).
class BatchedEngine {
 public:
  struct Options {
    int max_batch = 4;  ///< concurrent KV-cache pool slots
    /// Bound on the *queue* — the backlog beyond what the free KV slots
    /// can absorb at the next admission point. max_pending == 0 still
    /// accepts submits an idle engine can admit directly.
    int max_pending = 64;
    /// Prompt-chunk size of the chunked-prefill step model; 0 disables
    /// chunking (serial-prefill compatibility mode). Values beyond the
    /// deployment's prompt_len are clamped to one whole-prompt chunk.
    int prefill_chunk_tokens = 0;
    /// Admission-ordering policy; null selects the built-in FIFO
    /// scheduler (bit-exact with the pre-scheduler engine). Policies are
    /// stateless, so one instance may be shared across engines; see
    /// runtime::make_scheduler for the built-in set.
    std::shared_ptr<const Scheduler> scheduler = nullptr;
  };

  /// `session` must outlive the engine. `tracer`, when non-null,
  /// receives one span per charge with the owning request id tagged
  /// (shared weight streaming is split into per-request shares).
  explicit BatchedEngine(const InferenceSession& session, Options opts,
                         sim::Tracer* tracer = nullptr);
  explicit BatchedEngine(const InferenceSession& session)
      : BatchedEngine(session, Options{}) {}

  /// Queue a generation request. Throws distmcu::Error on contract
  /// violations (empty prompt, context overflow, prompt longer than the
  /// deployment's static prefill shape `prompt_len`) exactly like InferenceSession::generate; returns nullopt when
  /// the queue backlog beyond the free KV slots reaches max_pending
  /// (graceful backpressure — rejects are not SLO misses). `slo` attaches
  /// a priority class and a completion deadline relative to the
  /// submit-time engine timeline; the configured Scheduler orders
  /// admission on it, and ServingStats tracks attainment under every
  /// policy.
  [[nodiscard]] std::optional<RequestId> submit(std::vector<int> prompt,
                                                int new_tokens,
                                                SloSpec slo = {});

  /// The admission policy in effect (the built-in FIFO instance when
  /// Options::scheduler was null).
  [[nodiscard]] const Scheduler& scheduler() const { return *scheduler_; }

  /// Advance one token boundary: admit pending requests into free KV
  /// slots, advance every prefilling request by one prompt chunk (the
  /// whole prompt when chunking is disabled), then decode one token for
  /// every active request past its prefill. Returns false when no work
  /// remains.
  bool step();

  /// Drain the engine and return all finished requests (admit order of
  /// completion).
  [[nodiscard]] std::vector<RequestResult> run_to_completion();

  [[nodiscard]] const ServingStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<RequestResult>& finished() const {
    return finished_;
  }
  [[nodiscard]] int active_requests() const { return static_cast<int>(active_.size()); }
  [[nodiscard]] int pending_requests() const { return static_cast<int>(pending_.size()); }
  [[nodiscard]] const mem::Arena& kv_arena() const { return kv_arena_; }
  [[nodiscard]] const mem::SlotArena& kv_slots() const { return kv_slots_; }
  /// Effective prompt-chunk size (0 in serial-prefill mode).
  [[nodiscard]] int chunk_tokens() const { return chunk_tokens_; }

 private:
  struct Request {
    RequestId id = -1;
    std::vector<int> prompt;
    int new_tokens = 0;
    std::vector<int> tokens;
    int generated = 0;
    int prefill_pos = 0;  // prompt tokens already prefilled (chunked mode)
    int pos = 0;          // absolute position of the next decoded token
    int next = -1;        // pending token, emitted at the next boundary
    int slot = -1;        // KV pool slot while active
    Cycles cycles = 0;    // attributed simulated cost
    double energy_mj = 0.0;
    int admitted_step = -1;
    /// Engine timeline at the start of the request's own first prompt
    /// work — after earlier same-step work of other requests, so
    /// latency_cycles() never charges it their cycles.
    Cycles admitted_at = 0;
    /// SLO state: the submitted spec, the submit-time stamp the queueing
    /// delay is measured from, the spec's deadline resolved to the
    /// absolute engine timeline, and the cost-model service estimate the
    /// scheduler ranks on.
    SloSpec slo;
    Cycles submitted_at = 0;
    Cycles deadline_at = kNoDeadline;
    Cycles estimated_cost = 0;
    /// Timeline at the request's last completed work (its prefill
    /// chunks, then each decode phase end); finished_at is stamped from
    /// it so a request that merely commits its final token is not
    /// charged the rest of the step.
    Cycles work_done_at = 0;

    [[nodiscard]] bool prefill_done() const {
      return prefill_pos >= static_cast<int>(prompt.size());
    }
  };

  /// Per-chunk-index cost decomposition (all layers), derived from
  /// chunk-shaped block reports with the attention span of that chunk's
  /// end position.
  struct ChunkCost {
    Cycles compute = 0;  // block cycles minus the chunk's own L3 stream
    Cycles stream = 0;   // the chunk's dma_l3_l2 share (port occupancy)
    double energy_mj = 0.0;
    Bytes l3_bytes = 0;  // real traffic, for trace fidelity
  };

  bool step_serial();
  bool step_chunked();
  /// Returns the number of requests admitted (their prompts are charged
  /// in full here, serial mode).
  int admit_pending_serial(int step_idx, double& step_energy);
  void admit_pending_chunked(int step_idx);
  /// Pop the scheduler's choice out of the pending queue (the admission
  /// point both modes share). Pre: pending_ is non-empty.
  [[nodiscard]] Request take_scheduled_pending();
  /// Cost-model service estimate for the scheduler: prefill charge
  /// (chunk decomposition when chunking is on) plus new_tokens decode
  /// forwards, excluding batch-shared streaming and queueing.
  [[nodiscard]] Cycles estimate_request_cost(int prompt_tokens,
                                             int new_tokens) const;
  /// Trace the admission decision on the request's lane: its queue wait
  /// as a sched-category span ending at the (final) admitted_at stamp.
  void trace_admission(const Request& r);
  void finish(Request& r, int step_idx);
  /// Charge `cycles`/`energy` to a request and, when tracing, lay a
  /// tagged span at [begin, begin + cycles] on the engine timeline —
  /// spans of different requests get their own trace lanes and may
  /// overlap within a step.
  void charge(Request& r, Cycles cycles, double energy_mj, sim::Category cat,
              const char* label, Cycles begin);
  /// Embed `toks` and run them through every layer against the
  /// request's KV slot, `pos_offset` being the absolute position of the
  /// first row — the one functional forward path shared by prefills
  /// (whole prompts and chunks) and decode steps.
  [[nodiscard]] model::Tensor forward_tokens(const Request& r,
                                             const std::vector<int>& toks,
                                             int pos_offset);
  /// Run one prompt chunk functionally (embeds, all layers, KV append);
  /// returns the chunk index it advanced through and sets `next` when
  /// the prompt completes.
  int run_prefill_chunk(Request& r);

  const InferenceSession& session_;
  Options opts_;
  sim::Tracer* tracer_;

  // Block-level measurements of this deployment, simulated once;
  // declared ahead of the pool so the L2 fit check can gate pool
  // construction.
  /// Effective chunk size: min(opts.prefill_chunk_tokens, prompt_len),
  /// 0 when chunking is disabled. Declared first: it decides which
  /// prompt-shape blocks the constructor simulates.
  int chunk_tokens_ = 0;
  /// Full prompt-shape measurement — serial mode only. Chunked mode
  /// never plans the full prompt shape, so deployments whose full-prompt
  /// activations do not fit L2 can still serve chunked.
  std::optional<BlockResult> prompt_block_;
  BlockResult ar_block_;
  /// Chunk-shaped block measurements, indexed by chunk position within
  /// the padded static prompt (span grows with the index); empty when
  /// chunking is disabled, and released once chunk_costs_ and the pool
  /// fit check have consumed them.
  std::vector<BlockResult> chunk_blocks_;
  std::vector<ChunkCost> chunk_costs_;

  // Cost decomposition derived from the block reports.
  Cycles prompt_cycles_ = 0;      // full prefill cost, all layers
  double prompt_energy_mj_ = 0.0;
  Cycles prompt_stream_cycles_ = 0;  // prefill's own L3 port occupancy
  Cycles ar_shared_cycles_ = 0;   // weight streaming, shared across the batch
  double ar_shared_energy_mj_ = 0.0;
  Cycles ar_per_req_cycles_ = 0;  // compute + tile DMA + C2C, per request
  double ar_per_req_energy_mj_ = 0.0;

  model::KvCachePool kv_pool_;
  Bytes kv_set_bytes_ = 0;  // one pooled set at full capacity
  mem::Arena kv_arena_;
  mem::SlotArena kv_slots_;

  /// Effective admission policy: Options::scheduler, or the process-wide
  /// FIFO instance when none was configured (opts_ keeps the shared_ptr
  /// alive for the engine's lifetime).
  const Scheduler* scheduler_ = nullptr;

  std::deque<Request> pending_;
  std::vector<Request> active_;
  std::vector<RequestResult> finished_;
  ServingStats stats_;
  /// Queueing delays of finished requests, kept sorted so the percentile
  /// snapshot in ServingStats can be refreshed at every completion.
  std::vector<Cycles> queue_delays_;
  RequestId next_id_ = 0;

  /// Step timeline: decode compute races the next step's weight-stream
  /// DMA, and prompt-chunk streams race the whole step. The port is
  /// normalized (1 byte == 1 cycle of the measured serial stream, no
  /// extra setup) because the block reports already include the per-tile
  /// DMA setup costs the timed simulation charged.
  PrefetchPipeline pipeline_{1.0, 0};
  Bytes stream_bytes_per_step_ = 0;  // real L3 bytes, for trace fidelity
  /// The in-flight stream DMA the next decode step will consume; traced
  /// at consumption time so speculative fetches never appear. Zero-width
  /// before the first decode step (weights staged). `pending_fetch_start_`
  /// is the port service start — equal to the issue point in serial mode
  /// (sole port consumer), later when queued behind chunk streams —
  /// so DMA-lane spans never overlap.
  Cycles pending_fetch_start_ = 0;
  Cycles pending_fetch_ready_ = 0;
};

}  // namespace distmcu::runtime

#endif  // DISTMCU_RUNTIME_BATCHED_ENGINE_HPP
