#include "partition/distributed_block.hpp"

#include <span>

#include "kernels/attention.hpp"
#include "kernels/gemm.hpp"
#include "kernels/ops.hpp"
#include "kernels/rope.hpp"
#include "noc/collectives.hpp"
#include "util/check.hpp"

namespace distmcu::partition {

DistributedBlock::DistributedBlock(const model::TransformerConfig& cfg,
                                   const model::Weights& weights,
                                   const ShardedWeights& shards, const PartitionPlan& plan,
                                   const noc::Topology& topo)
    : cfg_(cfg), weights_(weights), shards_(shards), plan_(plan), topo_(topo) {
  DISTMCU_CHECK(topo.num_chips() == plan.num_chips(),
              "DistributedBlock: topology/plan chip count mismatch");
  DISTMCU_CHECK(shards.num_chips() == plan.num_chips(),
              "DistributedBlock: shards/plan chip count mismatch");
}

std::vector<std::vector<model::KvCache>> DistributedBlock::make_chip_caches(
    int capacity) const {
  std::vector<std::vector<model::KvCache>> caches;
  caches.reserve(static_cast<std::size_t>(plan_.num_chips()));
  for (int c = 0; c < plan_.num_chips(); ++c) {
    std::vector<model::KvCache> per_layer;
    per_layer.reserve(static_cast<std::size_t>(cfg_.num_layers));
    for (int l = 0; l < cfg_.num_layers; ++l) {
      per_layer.emplace_back(capacity, plan_.proj_width(c));
    }
    caches.push_back(std::move(per_layer));
  }
  return caches;
}

model::Tensor DistributedBlock::root_norm(const model::Tensor& x,
                                          const model::Tensor& gamma,
                                          const model::Tensor& beta) const {
  model::Tensor out(x.rows(), x.cols());
  if (cfg_.norm == model::NormKind::rmsnorm) {
    kernels::rmsnorm_rows(x.span(), gamma.span(), out.span(), x.rows(), x.cols(),
                          cfg_.norm_eps);
  } else {
    kernels::layernorm_rows(x.span(), gamma.span(), beta.span(), out.span(), x.rows(),
                            x.cols(), cfg_.norm_eps);
  }
  return out;
}

void DistributedBlock::apply_activation(model::Tensor& t) const {
  switch (cfg_.act) {
    case model::Activation::gelu: kernels::gelu(t.span()); break;
    case model::Activation::silu: kernels::silu(t.span()); break;
    case model::Activation::relu: kernels::relu(t.span()); break;
  }
}

model::Tensor DistributedBlock::mhsa_partial(
    const model::Tensor& x, int chip, int layer,
    std::vector<std::vector<model::KvCache>>* caches, int pos_offset) const {
  const WeightShard& w = shards_.shard(chip, layer);
  const int s = x.rows();
  const int e = cfg_.embed_dim;
  const int p = cfg_.head_dim;
  const int pw = plan_.proj_width(chip);
  const int local_heads = plan_.slice(chip).num_heads();

  model::Tensor q(s, pw), k(s, pw), v(s, pw);
  kernels::gemm(x.span(), w.wq.span(), q.span(), s, pw, e);
  kernels::gemm(x.span(), w.wk.span(), k.span(), s, pw, e);
  kernels::gemm(x.span(), w.wv.span(), v.span(), s, pw, e);

  if (cfg_.pos == model::PosEmbed::rope) {
    // RoPE depends only on the absolute position, never on the head
    // index, so each chip rotates its own slice with no communication.
    for (int h = 0; h < local_heads; ++h) {
      model::Tensor qh = q.slice_cols(h * p, (h + 1) * p);
      model::Tensor kh = k.slice_cols(h * p, (h + 1) * p);
      kernels::rope_apply(qh.span(), s, p, pos_offset, cfg_.rope_base);
      kernels::rope_apply(kh.span(), s, p, pos_offset, cfg_.rope_base);
      for (int r = 0; r < s; ++r) {
        for (int c = 0; c < p; ++c) {
          q.at(r, h * p + c) = qh.at(r, c);
          k.at(r, h * p + c) = kh.at(r, c);
        }
      }
    }
  }

  if (caches != nullptr) {
    auto& cache = (*caches)[static_cast<std::size_t>(chip)][static_cast<std::size_t>(layer)];
    for (int r = 0; r < s; ++r) cache.append(k.row(r), v.row(r));
  }

  model::Tensor ctx(s, pw);
  const bool causal = cfg_.mask == model::MaskKind::causal;
  for (int h = 0; h < local_heads; ++h) {
    const model::Tensor qh = q.slice_cols(h * p, (h + 1) * p);
    model::Tensor kh, vh;
    if (caches != nullptr) {
      const auto& cache =
          (*caches)[static_cast<std::size_t>(chip)][static_cast<std::size_t>(layer)];
      kh = cache.k_slice(h * p, (h + 1) * p);
      vh = cache.v_slice(h * p, (h + 1) * p);
    } else {
      kh = k.slice_cols(h * p, (h + 1) * p);
      vh = v.slice_cols(h * p, (h + 1) * p);
    }
    model::Tensor oh(s, p);
    kernels::attention_head(qh.span(), kh.span(), vh.span(), oh.span(), s, kh.rows(), p,
                            causal, pos_offset);
    for (int r = 0; r < s; ++r) {
      for (int c = 0; c < p; ++c) ctx.at(r, h * p + c) = oh.at(r, c);
    }
  }

  // Partial output: this chip's rows of WO applied to its context slice.
  model::Tensor partial(s, e);
  kernels::gemm(ctx.span(), w.wo.span(), partial.span(), s, e, pw);
  return partial;
}

model::Tensor DistributedBlock::ffn_partial(const model::Tensor& h, int chip,
                                            int layer) const {
  const WeightShard& w = shards_.shard(chip, layer);
  const int s = h.rows();
  const int fw = plan_.slice(chip).f_width();
  model::Tensor hidden(s, fw);
  kernels::gemm(h.span(), w.w1.span(), hidden.span(), s, fw, cfg_.embed_dim);
  apply_activation(hidden);
  if (cfg_.ffn == model::FfnKind::swiglu) {
    // The gate shards along F exactly like W1: chip-local, zero comm.
    model::Tensor gate(s, fw);
    kernels::gemm(h.span(), w.w3.span(), gate.span(), s, fw, cfg_.embed_dim);
    kernels::mul_inplace(hidden.span(), gate.span());
  }
  model::Tensor partial(s, cfg_.embed_dim);
  kernels::gemm(hidden.span(), w.w2.span(), partial.span(), s, cfg_.embed_dim, fw);
  return partial;
}

model::Tensor DistributedBlock::reduce_with_skip(std::vector<model::Tensor>& partials,
                                                 const model::Tensor& skip,
                                                 CommRecord* comm) const {
  // The skip connection is merged into the all-reduce (paper Sec. IV):
  // every chip holds the block input, so the root simply folds it in
  // after accumulating the partials.
  std::vector<std::span<float>> views;
  views.reserve(partials.size());
  for (auto& p : partials) views.emplace_back(p.span());
  noc::reduce_numeric(topo_, views);
  model::Tensor& root = partials[static_cast<std::size_t>(topo_.root())];
  kernels::add_inplace(root.span(), skip.span());
  if (comm != nullptr) {
    comm->reduces += 1;
    comm->payload_elems = root.size();
    comm->total_hop_elems += topo_.hops_per_reduce() * root.size();
  }
  return root;
}

void DistributedBlock::record_broadcast(std::uint64_t elems, CommRecord* comm) const {
  if (comm != nullptr) {
    comm->broadcasts += 1;
    comm->total_hop_elems += topo_.hops_per_reduce() * elems;
  }
}

model::Tensor DistributedBlock::forward(const model::Tensor& x, int layer,
                                        std::vector<std::vector<model::KvCache>>* chip_caches,
                                        int pos_offset, CommRecord* comm) const {
  DISTMCU_CHECK(x.cols() == cfg_.embed_dim, "DistributedBlock::forward: input width != E");
  const model::LayerWeights& lw = weights_.layer(layer);
  const int n = plan_.num_chips();

  // --- MHSA phase -------------------------------------------------------
  // Pre-norm models normalize the broadcast input locally on every chip
  // (replicated O(S*E) work, zero communication — Megatron-style);
  // post-norm (paper Fig. 3) feeds x directly.
  model::Tensor attn_in = cfg_.pre_norm
                              ? root_norm(x, lw.norm1_gamma, lw.norm1_beta)
                              : x;
  std::vector<model::Tensor> partials;
  partials.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    partials.push_back(mhsa_partial(attn_in, c, layer, chip_caches, pos_offset));
  }
  const model::Tensor a = reduce_with_skip(partials, x, comm);

  // Root normalizes (post-norm) and broadcasts; pre-norm broadcasts the
  // residual stream and normalizes locally in the FFN phase.
  model::Tensor h = cfg_.pre_norm ? a : root_norm(a, lw.norm1_gamma, lw.norm1_beta);
  {
    // Numerically execute the broadcast: non-root chips start from
    // zeroed buffers, so taking the last chip's copy afterwards proves
    // the data really travelled the tree.
    std::vector<model::Tensor> copies;
    copies.reserve(static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c) {
      copies.push_back(c == topo_.root() ? h : model::Tensor(h.rows(), h.cols()));
    }
    std::vector<std::span<float>> views;
    views.reserve(copies.size());
    for (auto& t : copies) views.emplace_back(t.span());
    noc::broadcast_numeric(topo_, views);
    record_broadcast(h.size(), comm);
    h = copies[static_cast<std::size_t>(n - 1)];  // any chip's copy
  }

  // --- FFN phase ---------------------------------------------------------
  const model::Tensor ffn_in =
      cfg_.pre_norm ? root_norm(h, lw.norm2_gamma, lw.norm2_beta) : h;
  std::vector<model::Tensor> partials2;
  partials2.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    partials2.push_back(ffn_partial(ffn_in, c, layer));
  }
  model::Tensor out = reduce_with_skip(partials2, h, comm);
  if (!cfg_.pre_norm) out = root_norm(out, lw.norm2_gamma, lw.norm2_beta);
  record_broadcast(out.size(), comm);
  return out;
}

}  // namespace distmcu::partition
