#ifndef DISTMCU_UTIL_CHECK_HPP
#define DISTMCU_UTIL_CHECK_HPP

#include <stdexcept>
#include <string>

namespace distmcu {

/// Base error type for all library failures (invalid configurations,
/// planner infeasibility, numeric misuse). Follows the Core Guidelines
/// preference for exceptions over error codes at construction/validation
/// boundaries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a requested configuration cannot be deployed (e.g. a tensor
/// does not fit in on-chip memory and no streaming fallback is allowed).
class PlanError : public Error {
 public:
  explicit PlanError(const std::string& what) : Error(what) {}
};

namespace util {

/// Precondition check: throws distmcu::Error with `msg` when `cond` is
/// false. Used for user-facing API contract violations (not for internal
/// logic bugs, which use assert).
inline void check(bool cond, const std::string& msg) {
  if (!cond) throw Error(msg);
}

/// Planner-specific check; throws PlanError.
inline void check_plan(bool cond, const std::string& msg) {
  if (!cond) throw PlanError(msg);
}

}  // namespace util
}  // namespace distmcu

#endif  // DISTMCU_UTIL_CHECK_HPP
