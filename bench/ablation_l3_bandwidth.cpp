// Ablation A3 (DESIGN.md): sensitivity of the super-linear crossover to
// the off-chip (L3) bandwidth — the one platform constant the paper
// does not publish. The crossover *position* (8 chips) is set by memory
// capacity, but its *magnitude* scales with how painful streaming is.
#include <iostream>

#include "bench_common.hpp"

using namespace distmcu;

int main() {
  const auto cfg = model::TransformerConfig::tiny_llama_42m();

  std::cout << "Ablation A3 — L3 bandwidth sweep, TinyLlama autoregressive\n";
  util::Table table({"l3_B_per_cycle", "GBps_at_500MHz", "1chip_cycles", "8chip_cycles",
                     "speedup_at_8"});
  for (const double bw : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    runtime::SystemConfig sys = runtime::SystemConfig::siracusa_system();
    sys.chip.bw_l3_l2 = bw;
    const auto pts = bench::sweep_chips(cfg, model::Mode::autoregressive, {1, 8}, sys);
    table.row()
        .add(bw, 2)
        .add(bw * 0.5, 2)
        .add(pts[0].report.block_cycles)
        .add(pts[1].report.block_cycles)
        .add(pts[1].speedup, 1);
  }
  table.print(std::cout);
  std::cout << "\nreading: the 8-chip configuration is L3-free, so its latency is "
               "bandwidth-independent while the single-chip baseline scales with "
               "1/BW — the super-linear factor is inversely proportional to the "
               "off-chip bandwidth. The paper's 26.1x is consistent with the "
               "0.5 GB/s HyperRAM-class interface we model (1 B/cycle).\n";
  return 0;
}
