#include "quant/quantized_block.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "kernels/attention.hpp"
#include "kernels/gemm.hpp"
#include "kernels/ops.hpp"
#include "kernels/rope.hpp"
#include "noc/collectives.hpp"
#include "quant/int_kernels.hpp"
#include "util/check.hpp"

namespace distmcu::quant {

namespace {

constexpr int kActivationBits = 8;  // lint-domain: allow

float absmax_of(std::span<const float> v) {
  float m = 0.0f;
  for (const float x : v) m = std::max(m, std::fabs(x));
  return m;
}

/// In-place fake quantization: round `v` to a symmetric `bits`-wide grid
/// scaled to `absmax`. Mirrors quantize_i8's round-to-nearest + saturate
/// but keeps float storage, so the existing KvCache / checkpoint / CoW
/// machinery is untouched while the stored values carry exactly the
/// packed layout's information content.
void fake_quant_span(std::span<float> v, float absmax, int bits) {
  if (absmax <= 0.0f) return;
  const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
  const float scale = absmax / qmax;
  for (float& x : v) {
    const float q = std::clamp(std::nearbyintf(x / scale), -qmax, qmax);
    x = q * scale;
  }
}

}  // namespace

QuantizedBlock::QuantizedBlock(const model::TransformerConfig& cfg,
                               const model::Weights& weights,
                               const partition::ShardedWeights& shards,
                               const partition::PartitionPlan& plan,
                               const noc::Topology& topo, int kv_bits)
    : cfg_(cfg),
      weights_(weights),
      shards_(shards),
      plan_(plan),
      topo_(topo),
      kv_bits_(kv_bits) {
  DISTMCU_CHECK(cfg.ffn == model::FfnKind::mlp,
              "QuantizedBlock: only the plain MLP FFN is supported");
  DISTMCU_CHECK(topo.num_chips() == plan.num_chips(),
              "QuantizedBlock: topology/plan chip count mismatch");
  DISTMCU_CHECK(shards.num_chips() == plan.num_chips(),
              "QuantizedBlock: shards/plan chip count mismatch");

  const int n = plan.num_chips();
  layers_.reserve(static_cast<std::size_t>(cfg.num_layers));
  for (int l = 0; l < cfg.num_layers; ++l) {
    // Static per-tensor scales computed over ALL shards of the layer —
    // exactly what a Deeploy calibration over the unsharded tensor
    // yields, and (because a global absmax is invariant to how the
    // tensor was cut) identical for every chip count.
    float wo_absmax = 0.0f;
    float w1_absmax = 0.0f;
    float w2_absmax = 0.0f;
    for (int c = 0; c < n; ++c) {
      const partition::WeightShard& s = shards.shard(c, l);
      wo_absmax = std::max(wo_absmax, absmax_of(s.wo.span()));
      w1_absmax = std::max(w1_absmax, absmax_of(s.w1.span()));
      w2_absmax = std::max(w2_absmax, absmax_of(s.w2.span()));
    }
    LayerQuant lq;
    lq.wo_params = QuantParams::from_absmax(wo_absmax, kActivationBits);
    lq.w1_params = QuantParams::from_absmax(w1_absmax, kActivationBits);
    lq.w2_params = QuantParams::from_absmax(w2_absmax, kActivationBits);
    lq.chips.reserve(static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c) {
      const partition::WeightShard& s = shards.shard(c, l);
      LayerChipShard chip;
      chip.pw = plan.proj_width(c);
      chip.fw = s.w1.cols();
      chip.wo = quantize_i8(s.wo.span(), lq.wo_params);
      chip.w1 = quantize_i8(s.w1.span(), lq.w1_params);
      chip.w2 = quantize_i8(s.w2.span(), lq.w2_params);
      lq.chips.push_back(std::move(chip));
    }
    layers_.push_back(std::move(lq));
  }
}

model::Tensor QuantizedBlock::root_norm(const model::Tensor& x,
                                        const model::Tensor& gamma,
                                        const model::Tensor& beta) const {
  model::Tensor out(x.rows(), x.cols());
  if (cfg_.norm == model::NormKind::rmsnorm) {
    kernels::rmsnorm_rows(x.span(), gamma.span(), out.span(), x.rows(), x.cols(),
                          cfg_.norm_eps);
  } else {
    kernels::layernorm_rows(x.span(), gamma.span(), beta.span(), out.span(), x.rows(),
                            x.cols(), cfg_.norm_eps);
  }
  return out;
}

void QuantizedBlock::apply_activation(std::vector<float>& t) const {
  switch (cfg_.act) {
    case model::Activation::gelu: kernels::gelu(t); break;
    case model::Activation::silu: kernels::silu(t); break;
    case model::Activation::relu: kernels::relu(t); break;
  }
}

model::Tensor QuantizedBlock::attn_context(
    const model::Tensor& x, int chip, int layer,
    std::vector<std::vector<model::KvCache>>* caches, int pos_offset) const {
  // Identical to the float block's MHSA front end: every value here is
  // computed per head from per-head weight columns, so regrouping heads
  // across chips cannot perturb a single bit.
  const partition::WeightShard& w = shards_.shard(chip, layer);
  const int s = x.rows();
  const int e = cfg_.embed_dim;
  const int p = cfg_.head_dim;
  const int pw = plan_.proj_width(chip);
  const int local_heads = plan_.slice(chip).num_heads();

  model::Tensor q(s, pw), k(s, pw), v(s, pw);
  kernels::gemm(x.span(), w.wq.span(), q.span(), s, pw, e);
  kernels::gemm(x.span(), w.wk.span(), k.span(), s, pw, e);
  kernels::gemm(x.span(), w.wv.span(), v.span(), s, pw, e);

  if (cfg_.pos == model::PosEmbed::rope) {
    for (int h = 0; h < local_heads; ++h) {
      model::Tensor qh = q.slice_cols(h * p, (h + 1) * p);
      model::Tensor kh = k.slice_cols(h * p, (h + 1) * p);
      kernels::rope_apply(qh.span(), s, p, pos_offset, cfg_.rope_base);
      kernels::rope_apply(kh.span(), s, p, pos_offset, cfg_.rope_base);
      for (int r = 0; r < s; ++r) {
        for (int c = 0; c < p; ++c) {
          q.at(r, h * p + c) = qh.at(r, c);
          k.at(r, h * p + c) = kh.at(r, c);
        }
      }
    }
  }

  if (kv_bits_ <= 8) {
    // Packed KV layout: fake-quantize each row's HEAD sub-slices before
    // they enter the cache. Per-head scales (not per-row!) keep the
    // stored values independent of which heads share a chip's row.
    for (int r = 0; r < s; ++r) {
      for (int h = 0; h < local_heads; ++h) {
        auto krow = k.row(r).subspan(static_cast<std::size_t>(h * p),
                                     static_cast<std::size_t>(p));
        auto vrow = v.row(r).subspan(static_cast<std::size_t>(h * p),
                                     static_cast<std::size_t>(p));
        fake_quant_span(krow, absmax_of(krow), kv_bits_);
        fake_quant_span(vrow, absmax_of(vrow), kv_bits_);
      }
    }
  }

  if (caches != nullptr) {
    auto& cache =
        (*caches)[static_cast<std::size_t>(chip)][static_cast<std::size_t>(layer)];
    for (int r = 0; r < s; ++r) cache.append(k.row(r), v.row(r));
  }

  model::Tensor ctx(s, pw);
  const bool causal = cfg_.mask == model::MaskKind::causal;
  for (int h = 0; h < local_heads; ++h) {
    const model::Tensor qh = q.slice_cols(h * p, (h + 1) * p);
    model::Tensor kh, vh;
    if (caches != nullptr) {
      const auto& cache =
          (*caches)[static_cast<std::size_t>(chip)][static_cast<std::size_t>(layer)];
      kh = cache.k_slice(h * p, (h + 1) * p);
      vh = cache.v_slice(h * p, (h + 1) * p);
    } else {
      kh = k.slice_cols(h * p, (h + 1) * p);
      vh = v.slice_cols(h * p, (h + 1) * p);
    }
    model::Tensor oh(s, p);
    kernels::attention_head(qh.span(), kh.span(), vh.span(), oh.span(), s, kh.rows(), p,
                            causal, pos_offset);
    for (int r = 0; r < s; ++r) {
      for (int c = 0; c < p; ++c) ctx.at(r, h * p + c) = oh.at(r, c);
    }
  }
  return ctx;
}

model::Tensor QuantizedBlock::reduce_dequant_skip(
    std::vector<std::vector<std::int32_t>>& partials, float scale, int rows,
    const model::Tensor& skip, partition::CommRecord* comm) const {
  std::vector<std::span<std::int32_t>> views;
  views.reserve(partials.size());
  for (auto& p : partials) views.emplace_back(p);
  noc::reduce_numeric(topo_, views);
  const auto& root = partials[static_cast<std::size_t>(topo_.root())];
  model::Tensor out(rows, cfg_.embed_dim);
  auto span = out.span();
  for (std::size_t i = 0; i < root.size(); ++i) {
    span[i] = static_cast<float>(root[i]) * scale;
  }
  kernels::add_inplace(out.span(), skip.span());
  if (comm != nullptr) {
    comm->reduces += 1;
    comm->payload_elems = root.size();
    comm->total_hop_elems += topo_.hops_per_reduce() * root.size();
  }
  return out;
}

void QuantizedBlock::broadcast(model::Tensor& t, partition::CommRecord* comm) const {
  const int n = topo_.num_chips();
  std::vector<model::Tensor> copies;
  copies.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    copies.push_back(c == topo_.root() ? t : model::Tensor(t.rows(), t.cols()));
  }
  std::vector<std::span<float>> views;
  views.reserve(copies.size());
  for (auto& c : copies) views.emplace_back(c.span());
  noc::broadcast_numeric(topo_, views);
  if (comm != nullptr) {
    comm->broadcasts += 1;
    comm->total_hop_elems += topo_.hops_per_reduce() * t.size();
  }
  t = copies[static_cast<std::size_t>(n - 1)];  // any chip's copy
}

model::Tensor QuantizedBlock::forward(
    const model::Tensor& x, int layer,
    std::vector<std::vector<model::KvCache>>* chip_caches, int pos_offset,
    partition::CommRecord* comm) const {
  DISTMCU_CHECK(x.cols() == cfg_.embed_dim, "QuantizedBlock::forward: input width != E");
  const model::LayerWeights& lw = weights_.layer(layer);
  const LayerQuant& lq = layers_[static_cast<std::size_t>(layer)];
  const int n = plan_.num_chips();
  const int s = x.rows();
  const int e = cfg_.embed_dim;

  // --- MHSA phase -------------------------------------------------------
  const model::Tensor attn_in =
      cfg_.pre_norm ? root_norm(x, lw.norm1_gamma, lw.norm1_beta) : x;

  // Float per-head contexts first (chip-count invariant by locality)...
  std::vector<model::Tensor> contexts;
  contexts.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    contexts.push_back(attn_context(attn_in, c, layer, chip_caches, pos_offset));
  }
  // ...then ONE shared dynamic scale over every chip's context (a global
  // absmax — invariant to head grouping), so the per-chip int32 WO
  // partials are commensurable and their tree-sum is exact.
  float ctx_absmax = 0.0f;
  for (const auto& c : contexts) ctx_absmax = std::max(ctx_absmax, absmax_of(c.span()));
  const QuantParams ctx_params = QuantParams::from_absmax(ctx_absmax, kActivationBits);

  std::vector<std::vector<std::int32_t>> partials(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    const LayerChipShard& chip = lq.chips[static_cast<std::size_t>(c)];
    const auto ctxq = quantize_i8(contexts[static_cast<std::size_t>(c)].span(),
                                  ctx_params);
    std::vector<std::int32_t> acc(static_cast<std::size_t>(s) *
                                  static_cast<std::size_t>(e));
    gemm_i8_i32(ctxq, chip.wo, acc, s, e, chip.pw);
    partials[static_cast<std::size_t>(c)] = std::move(acc);
  }
  const model::Tensor a = reduce_dequant_skip(
      partials, ctx_params.scale * lq.wo_params.scale, s, x, comm);

  model::Tensor h = cfg_.pre_norm ? a : root_norm(a, lw.norm1_gamma, lw.norm1_beta);
  broadcast(h, comm);

  // --- FFN phase --------------------------------------------------------
  const model::Tensor ffn_in =
      cfg_.pre_norm ? root_norm(h, lw.norm2_gamma, lw.norm2_beta) : h;
  // Broadcast input => every chip derives the same activation scale with
  // zero extra synchronization (same trick as QuantizedDistributedFfn).
  const QuantParams x_params = choose_params(ffn_in.span(), kActivationBits);
  const auto xq = quantize_i8(ffn_in.span(), x_params);
  // Shared requant scale for the hidden activations, from broadcast-known
  // quantities only: |hidden| <= |x|max * |w1|max_global * E.
  const float x_absmax = x_params.scale * 127.0f;
  const float w1_absmax_global = lq.w1_params.scale * 127.0f;
  const float hidden_bound = x_absmax * w1_absmax_global * static_cast<float>(e);
  const QuantParams h_params = QuantParams::from_absmax(hidden_bound, kActivationBits);

  std::vector<std::vector<std::int32_t>> partials2(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    const LayerChipShard& chip = lq.chips[static_cast<std::size_t>(c)];
    const int fw = chip.fw;
    std::vector<std::int32_t> acc1(static_cast<std::size_t>(s) *
                                   static_cast<std::size_t>(fw));
    gemm_i8_i32(xq, chip.w1, acc1, s, fw, e);
    std::vector<float> hidden(acc1.size());
    const float deq1 = x_params.scale * lq.w1_params.scale;
    for (std::size_t i = 0; i < acc1.size(); ++i) {
      hidden[i] = static_cast<float>(acc1[i]) * deq1;
    }
    apply_activation(hidden);
    const auto hq = quantize_i8(hidden, h_params);
    std::vector<std::int32_t> acc2(static_cast<std::size_t>(s) *
                                   static_cast<std::size_t>(e));
    gemm_i8_i32(hq, chip.w2, acc2, s, e, fw);
    partials2[static_cast<std::size_t>(c)] = std::move(acc2);
  }
  model::Tensor out = reduce_dequant_skip(
      partials2, h_params.scale * lq.w2_params.scale, s, h, comm);
  if (!cfg_.pre_norm) out = root_norm(out, lw.norm2_gamma, lw.norm2_beta);
  broadcast(out, comm);
  return out;
}

}  // namespace distmcu::quant
