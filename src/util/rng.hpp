#ifndef DISTMCU_UTIL_RNG_HPP
#define DISTMCU_UTIL_RNG_HPP

#include <cstdint>

namespace distmcu::util {

/// Deterministic xoshiro256** pseudo-random generator, seeded via
/// SplitMix64. Used for reproducible weight/activation initialization:
/// all experiments in this repository are data-independent, but tests
/// compare distributed numerics against a reference and therefore need
/// stable inputs across runs and platforms (no std::mt19937 distribution
/// portability caveats).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform in [0, 1).
  [[nodiscard]] double next_double();

  /// Uniform float in [lo, hi).
  [[nodiscard]] float uniform(float lo, float hi);

  /// Standard normal via Box-Muller (no cached second value; keeps the
  /// stream position deterministic per call).
  [[nodiscard]] float normal();

  /// Uniform integer in [0, n) for n > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t n);

 private:
  std::uint64_t state_[4];
};

}  // namespace distmcu::util

#endif  // DISTMCU_UTIL_RNG_HPP
