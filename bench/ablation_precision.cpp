// Ablation A4 (DESIGN.md): weight storage width moves the residency
// crossover — the deduction that pins the paper's deployment to 2-byte
// weights (int8 would already fit at 4 chips, contradicting Fig. 4a;
// fp32 would not fit even at 8).
#include <iostream>

#include "bench_common.hpp"
#include "partition/memory_planner.hpp"

using namespace distmcu;

int main() {
  const auto cfg = model::TransformerConfig::tiny_llama_42m();

  std::cout << "Ablation A4 — weight precision vs residency regime (TinyLlama AR)\n";
  util::Table table({"weight_bytes", "chips", "residency", "block_cycles", "speedup"});
  for (const Bytes wb : {Bytes{1}, Bytes{2}, Bytes{4}}) {
    runtime::SystemConfig sys = runtime::SystemConfig::siracusa_system();
    sys.precision.weight_bytes = wb;
    sys.precision.mac_precision =
        wb == 1 ? chip::Precision::int8
                : (wb == 2 ? chip::Precision::int16 : chip::Precision::fp32);
    const auto pts =
        bench::sweep_chips(cfg, model::Mode::autoregressive, {1, 2, 4, 8}, sys);
    for (const auto& p : pts) {
      table.row()
          .add(wb)
          .add(p.chips)
          .add(partition::residency_name(p.report.residency))
          .add(p.report.block_cycles)
          .add(p.speedup, 2);
    }
  }
  table.print(std::cout);
  std::cout << "\nreading: at 1 B/weight the double-buffered regime (and with it the "
               "super-linear jump) already appears at 4 chips; at 2 B it appears at "
               "8 chips exactly as the paper reports; at 4 B even 8 chips stream "
               "from L3. The paper's crossover pattern is only consistent with "
               "2-byte weights.\n";
  return 0;
}
