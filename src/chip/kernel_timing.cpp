#include "chip/kernel_timing.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace distmcu::chip {

namespace {
[[nodiscard]] std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}
}  // namespace

Cycles KernelTiming::ceil_div_work(double work, double rate) const {
  return static_cast<Cycles>(std::ceil(work / rate));
}

KernelCost KernelTiming::gemm(std::int64_t m, std::int64_t n, std::int64_t k,
                              Precision op_precision, Bytes weight_elem_bytes,
                              Bytes act_elem_bytes) const {
  DISTMCU_CHECK(m > 0 && n > 0 && k > 0, "gemm dimensions must be positive");
  const int cores = cfg_.cores;
  const double mpc = cfg_.macs_per_cycle(op_precision);
  const double per_out = static_cast<double>(k) / mpc + cfg_.out_elem_overhead;

  // Parallelize over the larger output dimension; the ceil captures the
  // imbalance when it is not a multiple of the core count.
  std::int64_t outs_per_core = 0;
  std::int64_t rows_per_core = 0;
  if (m >= n) {
    rows_per_core = ceil_div(m, cores);
    outs_per_core = rows_per_core * n;
  } else {
    const std::int64_t cols_per_core = ceil_div(n, cores);
    outs_per_core = cols_per_core * m;
    rows_per_core = m;
  }
  const auto core_cycles = static_cast<Cycles>(
      std::ceil(static_cast<double>(outs_per_core) * per_out)) +
      static_cast<Cycles>(rows_per_core) * cfg_.row_overhead;

  KernelCost cost;
  cost.compute_cycles = core_cycles;
  cost.overhead_cycles = cfg_.kernel_call_overhead + cfg_.barrier_overhead;
  // Stationary operand (weights / KV slice) streams L2->L1 once; the
  // activation input and output stream through L1 as well.
  cost.l1_in_bytes = static_cast<Bytes>(n * k) * weight_elem_bytes +
                     static_cast<Bytes>(m * k) * act_elem_bytes;
  cost.l1_out_bytes = static_cast<Bytes>(m * n) * act_elem_bytes;
  return cost;
}

KernelCost KernelTiming::softmax(std::int64_t rows, std::int64_t cols,
                                 Bytes act_elem_bytes) const {
  DISTMCU_CHECK(rows > 0 && cols > 0, "softmax dimensions must be positive");
  const std::int64_t rows_per_core = ceil_div(rows, cfg_.cores);
  KernelCost cost;
  cost.compute_cycles = static_cast<Cycles>(
      std::ceil(static_cast<double>(rows_per_core * cols) * cfg_.softmax_cycles_per_elem)) +
      static_cast<Cycles>(rows_per_core) * cfg_.row_overhead;
  cost.overhead_cycles = cfg_.kernel_call_overhead + cfg_.barrier_overhead;
  cost.l1_in_bytes = static_cast<Bytes>(rows * cols) * act_elem_bytes;
  cost.l1_out_bytes = static_cast<Bytes>(rows * cols) * act_elem_bytes;
  return cost;
}

KernelCost KernelTiming::norm(std::int64_t rows, std::int64_t cols,
                              Bytes act_elem_bytes) const {
  DISTMCU_CHECK(rows > 0 && cols > 0, "norm dimensions must be positive");
  const std::int64_t rows_per_core = ceil_div(rows, cfg_.cores);
  KernelCost cost;
  cost.compute_cycles = static_cast<Cycles>(
      std::ceil(static_cast<double>(rows_per_core * cols) * cfg_.norm_cycles_per_elem)) +
      static_cast<Cycles>(rows_per_core) * cfg_.row_overhead;
  cost.overhead_cycles = cfg_.kernel_call_overhead + cfg_.barrier_overhead;
  cost.l1_in_bytes = static_cast<Bytes>(rows * cols) * act_elem_bytes;
  cost.l1_out_bytes = static_cast<Bytes>(rows * cols) * act_elem_bytes;
  return cost;
}

KernelCost KernelTiming::elementwise(std::int64_t n, Bytes act_elem_bytes) const {
  DISTMCU_CHECK(n > 0, "elementwise size must be positive");
  const std::int64_t per_core = ceil_div(n, cfg_.cores);
  KernelCost cost;
  cost.compute_cycles =
      ceil_div_work(static_cast<double>(per_core), cfg_.elementwise_ops_per_cycle);
  cost.overhead_cycles = cfg_.kernel_call_overhead + cfg_.barrier_overhead;
  cost.l1_in_bytes = static_cast<Bytes>(n) * act_elem_bytes;
  cost.l1_out_bytes = static_cast<Bytes>(n) * act_elem_bytes;
  return cost;
}

KernelCost KernelTiming::rope(std::int64_t rows, std::int64_t dim,
                              Bytes act_elem_bytes) const {
  DISTMCU_CHECK(rows > 0 && dim > 0, "rope dimensions must be positive");
  const std::int64_t per_core = ceil_div(rows, cfg_.cores) * dim;
  KernelCost cost;
  cost.compute_cycles = static_cast<Cycles>(
      std::ceil(static_cast<double>(per_core) * cfg_.rope_cycles_per_elem));
  cost.overhead_cycles = cfg_.kernel_call_overhead + cfg_.barrier_overhead;
  cost.l1_in_bytes = static_cast<Bytes>(rows * dim) * act_elem_bytes;
  cost.l1_out_bytes = static_cast<Bytes>(rows * dim) * act_elem_bytes;
  return cost;
}

KernelCost KernelTiming::accumulate(std::int64_t n, Bytes act_elem_bytes) const {
  DISTMCU_CHECK(n > 0, "accumulate size must be positive");
  const std::int64_t per_core = ceil_div(n, cfg_.cores);
  KernelCost cost;
  cost.compute_cycles =
      ceil_div_work(static_cast<double>(per_core), cfg_.accumulate_elems_per_cycle);
  // Accumulation happens inside the collective; it does not pay a full
  // kernel-launch overhead (the cluster is already spinning on the
  // reduce), only a barrier.
  cost.overhead_cycles = cfg_.barrier_overhead;
  cost.l1_in_bytes = static_cast<Bytes>(2 * n) * act_elem_bytes;
  cost.l1_out_bytes = static_cast<Bytes>(n) * act_elem_bytes;
  return cost;
}

}  // namespace distmcu::chip
