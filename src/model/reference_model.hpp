#ifndef DISTMCU_MODEL_REFERENCE_MODEL_HPP
#define DISTMCU_MODEL_REFERENCE_MODEL_HPP

#include <vector>

#include "model/config.hpp"
#include "model/kv_cache.hpp"
#include "model/tensor.hpp"
#include "model/weights.hpp"

namespace distmcu::model {

/// Single-chip float reference implementation of the Transformer block
/// (paper Sec. II-A) — the golden model every distributed execution is
/// validated against. It supports both inference modes:
///
///  * prompt: the full [S, E] input is processed at once; attention is
///    causal or bidirectional per the config;
///  * autoregressive: one [1, E] token is processed against a KV cache.
///
/// The block structure follows the paper's Fig. 3 (post-norm: Norm is
/// applied to the all-reduced sublayer output); pre-norm is supported via
/// TransformerConfig::pre_norm.
class ReferenceModel {
 public:
  /// Keeps references to `cfg`/`weights`; both must outlive the model.
  ReferenceModel(const TransformerConfig& cfg, const Weights& weights);

  /// One block, prompt mode. When `caches` is non-null, the projected
  /// (post-RoPE) K/V rows are appended to (*caches)[layer] and attention
  /// runs against the cache (supporting a pre-existing prefix of
  /// `pos_offset` positions); otherwise attention runs against the local
  /// projections.
  [[nodiscard]] Tensor block_prompt(const Tensor& x, int layer,
                                    std::vector<KvCache>* caches = nullptr,
                                    int pos_offset = 0) const;

  /// One block, autoregressive mode: `x` is [1, E] at absolute position
  /// `pos`; K/V are appended to `caches[layer]` before attending.
  [[nodiscard]] Tensor block_ar(const Tensor& x, int layer,
                                std::vector<KvCache>& caches, int pos) const;

  /// All layers, prompt mode.
  [[nodiscard]] Tensor forward_prompt(const Tensor& x,
                                      std::vector<KvCache>* caches = nullptr,
                                      int pos_offset = 0) const;

  /// All layers, autoregressive mode.
  [[nodiscard]] Tensor forward_ar(const Tensor& x, std::vector<KvCache>& caches,
                                  int pos) const;

  /// One KV cache per layer with the given position capacity.
  [[nodiscard]] std::vector<KvCache> make_caches(int capacity) const;

  [[nodiscard]] const TransformerConfig& config() const { return cfg_; }
  [[nodiscard]] const Weights& weights() const { return weights_; }

 private:
  [[nodiscard]] Tensor mhsa(const Tensor& x, int layer, std::vector<KvCache>* caches,
                            int pos_offset) const;
  [[nodiscard]] Tensor ffn(const Tensor& x, int layer) const;
  [[nodiscard]] Tensor norm(const Tensor& x, const Tensor& gamma,
                            const Tensor& beta) const;
  void apply_activation(Tensor& x) const;

  const TransformerConfig& cfg_;
  const Weights& weights_;
};

}  // namespace distmcu::model

#endif  // DISTMCU_MODEL_REFERENCE_MODEL_HPP
