#include "partition/memory_planner.hpp"

#include <sstream>

#include "util/check.hpp"

namespace distmcu::partition {

const char* residency_name(Residency r) {
  switch (r) {
    case Residency::streamed: return "streamed";
    case Residency::double_buffered: return "double-buffered";
    case Residency::fully_resident: return "fully-resident";
  }
  return "?";
}

std::string MemoryPlan::describe() const {
  std::ostringstream os;
  os << "residency: " << residency_name(residency) << "\n"
     << "  S=" << seq_len << " attention span=" << attention_span
     << (uses_kv_cache ? " (KV cache)" : "") << "\n"
     << "  weight shard / block: " << util::format_bytes(weight_shard_bytes) << "\n"
     << "  whole model shard:    " << util::format_bytes(all_blocks_bytes) << "\n"
     << "  KV cache (all layers): " << util::format_bytes(kv_cache_bytes) << "\n"
     << "  activations:          " << util::format_bytes(activation_bytes) << "\n"
     << "  L2 usable:            " << util::format_bytes(l2_usable) << "\n"
     << "  need fully-resident:  " << util::format_bytes(need_fully_resident())
     << (need_fully_resident() <= l2_usable ? "  [fits]" : "  [exceeds]") << "\n"
     << "  need double-buffered: " << util::format_bytes(need_double_buffered())
     << (need_double_buffered() <= l2_usable ? "  [fits]" : "  [exceeds]") << "\n"
     << "  need streamed:        " << util::format_bytes(need_streamed())
     << (need_streamed() <= l2_usable ? "  [fits]" : "  [exceeds]") << "\n";
  return os.str();
}

MemoryPlanner::MemoryPlanner(chip::ChipConfig chip_cfg, PrecisionConfig precision)
    : chip_(std::move(chip_cfg)), precision_(precision) {
  DISTMCU_CHECK(precision_.weight_bytes > 0 && precision_.act_bytes > 0 &&
                  precision_.kv_bytes > 0,
              "MemoryPlanner: element sizes must be positive");
}

MemoryPlan MemoryPlanner::plan(const PartitionPlan& partition, model::Mode mode) const {
  const model::TransformerConfig& cfg = partition.config();
  MemoryPlan out;
  out.l2_usable = chip_.l2_usable();
  out.seq_len = mode == model::Mode::prompt ? cfg.prompt_len : 1;
  out.uses_kv_cache = cfg.mask == model::MaskKind::causal;
  out.attention_span = out.uses_kv_cache
                           ? (mode == model::Mode::prompt ? cfg.prompt_len : cfg.ar_context)
                           : out.seq_len;

  // Worst-case chip: chip 0 (largest slice by construction).
  const auto e = static_cast<Bytes>(cfg.embed_dim);
  const auto s = static_cast<Bytes>(out.seq_len);
  const auto pw = static_cast<Bytes>(partition.proj_width(0));
  const auto fw = static_cast<Bytes>(partition.slice(0).f_width());

  out.weight_shard_bytes =
      partition.chip_block_weight_elems(0) * precision_.weight_bytes;
  out.all_blocks_bytes = out.weight_shard_bytes * static_cast<Bytes>(cfg.num_layers);
  if (out.uses_kv_cache) {
    out.kv_cache_bytes = static_cast<Bytes>(cfg.num_layers) * 2 *
                         static_cast<Bytes>(cfg.ar_context) * pw * precision_.kv_bytes;
  }
  const Bytes hidden_bufs = cfg.ffn == model::FfnKind::swiglu ? 2 : 1;
  out.activation_bytes =
      (2 * s * e + 3 * s * pw + hidden_bufs * s * fw) * precision_.act_bytes;
  // Two double-buffered streaming tiles sized to half the L1 tile budget
  // each: the L2-side staging the streamed regime needs.
  out.stream_buffer_bytes = chip_.l1_tile_budget;

  if (out.need_fully_resident() <= out.l2_usable) {
    out.residency = Residency::fully_resident;
  } else if (out.need_double_buffered() <= out.l2_usable) {
    out.residency = Residency::double_buffered;
  } else {
    out.residency = Residency::streamed;
    DISTMCU_CHECK_PLAN(out.need_streamed() <= out.l2_usable,
                     "MemoryPlanner: KV cache + activations (" +
                         util::format_bytes(out.need_streamed()) +
                         ") exceed usable L2 (" + util::format_bytes(out.l2_usable) +
                         ") even in the streamed regime for model '" + cfg.name + "'");
  }
  return out;
}

}  // namespace distmcu::partition
