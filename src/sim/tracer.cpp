#include "sim/tracer.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace distmcu::sim {

const char* category_name(Category c) {
  switch (c) {
    case Category::compute: return "Computation";
    case Category::dma_l3_l2: return "DMA L3<->L2";
    case Category::dma_l2_l1: return "DMA L2<->L1";
    case Category::chip_to_chip: return "Chip-to-Chip";
    case Category::sched: return "Scheduler";
  }
  return "?";
}

void Tracer::accumulate(int chip, Category cat, Cycles duration, Bytes bytes,
                        Cycles end, int request, int model) {
  DISTMCU_CHECK(chip >= 0, "Tracer span on negative chip id " +
                               std::to_string(chip));
  const auto c = static_cast<std::size_t>(cat);
  if (static_cast<std::size_t>(chip) >= chip_totals_.size()) {
    chip_totals_.resize(static_cast<std::size_t>(chip) + 1);
  }
  chip_totals_[static_cast<std::size_t>(chip)][c] += duration;
  cat_totals_[c] += duration;
  cat_bytes_[c] += bytes;
  makespan_ = std::max(makespan_, end);
  request_totals_[request] += duration;
  model_totals_[model] += duration;
  ++recorded_;
}

void Tracer::record(const Span& span) {
  DISTMCU_CHECK(span.end >= span.begin, "Tracer span ends before it begins");
  const int request = span.request == kNoRequest ? request_ : span.request;
  const int model = span.model == kNoModel ? model_ : span.model;
  accumulate(span.chip, span.category, span.duration(), span.bytes, span.end,
             request, model);
  if (keep_spans_) {
    spans_.push_back(span);
    spans_.back().request = request;
    spans_.back().model = model;
  }
}

void Tracer::record(int chip, Category cat, Cycles begin, Cycles end,
                    Bytes bytes, std::string_view label) {
  DISTMCU_CHECK(end >= begin, "Tracer span ends before it begins");
  accumulate(chip, cat, end - begin, bytes, end, request_, model_);
  if (keep_spans_) {
    spans_.push_back(Span{chip, cat, begin, end, bytes, std::string(label),
                          request_, model_});
  }
}

Cycles Tracer::total(int chip, Category cat) const {
  if (chip < 0 || static_cast<std::size_t>(chip) >= chip_totals_.size()) {
    return 0;
  }
  return chip_totals_[static_cast<std::size_t>(chip)]
                     [static_cast<std::size_t>(cat)];
}

Cycles Tracer::total(Category cat) const {
  return cat_totals_[static_cast<std::size_t>(cat)];
}

Bytes Tracer::total_bytes(Category cat) const {
  return cat_bytes_[static_cast<std::size_t>(cat)];
}

Cycles Tracer::total_for_request(int request) const {
  const auto it = request_totals_.find(request);
  return it == request_totals_.end() ? 0 : it->second;
}

Cycles Tracer::total_for_model(int model) const {
  const auto it = model_totals_.find(model);
  return it == model_totals_.end() ? 0 : it->second;
}

void Tracer::clear() {
  spans_.clear();
  recorded_ = 0;
  request_ = kNoRequest;
  model_ = kNoModel;
  chip_totals_.clear();
  cat_totals_.fill(0);
  cat_bytes_.fill(0);
  makespan_ = 0;
  request_totals_.clear();
  model_totals_.clear();
}

}  // namespace distmcu::sim
