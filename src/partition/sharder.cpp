#include "partition/sharder.hpp"

#include "util/check.hpp"

namespace distmcu::partition {

ShardedWeights::ShardedWeights(const model::Weights& weights, const PartitionPlan& plan)
    : n_chips_(plan.num_chips()), n_layers_(weights.num_layers()) {
  const model::TransformerConfig& cfg = plan.config();
  DISTMCU_CHECK(weights.config().block_weight_elems() == cfg.block_weight_elems(),
              "ShardedWeights: weights/plan config mismatch");
  const int p = cfg.head_dim;
  shards_.reserve(static_cast<std::size_t>(n_chips_) * static_cast<std::size_t>(n_layers_));
  for (int c = 0; c < n_chips_; ++c) {
    const ChipSlice& s = plan.slice(c);
    const int c0 = s.head_begin * p;
    const int c1 = s.head_end * p;
    for (int l = 0; l < n_layers_; ++l) {
      const model::LayerWeights& w = weights.layer(l);
      WeightShard shard;
      shard.wq = w.wq.slice_cols(c0, c1);
      shard.wk = w.wk.slice_cols(c0, c1);
      shard.wv = w.wv.slice_cols(c0, c1);
      shard.wo = w.wo.slice_rows(c0, c1);
      shard.w1 = w.w1.slice_cols(s.f_begin, s.f_end);
      shard.w2 = w.w2.slice_rows(s.f_begin, s.f_end);
      if (cfg.ffn == model::FfnKind::swiglu) {
        shard.w3 = w.w3.slice_cols(s.f_begin, s.f_end);
      }
      shards_.push_back(std::move(shard));
    }
  }
}

const WeightShard& ShardedWeights::shard(int chip, int layer) const {
  DISTMCU_CHECK(chip >= 0 && chip < n_chips_, "ShardedWeights: chip out of range");
  DISTMCU_CHECK(layer >= 0 && layer < n_layers_, "ShardedWeights: layer out of range");
  return shards_[static_cast<std::size_t>(chip) * static_cast<std::size_t>(n_layers_) +
                 static_cast<std::size_t>(layer)];
}

std::uint64_t ShardedWeights::layer_elem_sum(int layer) const {
  std::uint64_t sum = 0;
  for (int c = 0; c < n_chips_; ++c) sum += shard(c, layer).num_elems();
  return sum;
}

}  // namespace distmcu::partition
