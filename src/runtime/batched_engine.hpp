#ifndef DISTMCU_RUNTIME_BATCHED_ENGINE_HPP
#define DISTMCU_RUNTIME_BATCHED_ENGINE_HPP

#include <deque>
#include <optional>
#include <vector>

#include "mem/arena.hpp"
#include "model/kv_cache.hpp"
#include "runtime/inference_session.hpp"
#include "sim/tracer.hpp"

namespace distmcu::runtime {

using RequestId = int;

/// Final outcome of one served request. `gen` carries the request's own
/// token stream (bit-identical to an independent
/// InferenceSession::generate call with the same prompt) plus the
/// cycles/energy attributed to this request by the serving cost model.
struct RequestResult {
  RequestId id = -1;
  GenerationResult gen;
  int admitted_step = -1;
  int finished_step = -1;
  /// Engine-timeline timestamps: residence in the batch. The span covers
  /// every step the request was in flight, so (unlike the attributed
  /// cycles in `gen`) it grows with batch contention.
  Cycles admitted_at = 0;
  Cycles finished_at = 0;

  [[nodiscard]] Cycles latency_cycles() const { return finished_at - admitted_at; }
};

/// Aggregate serving metrics across all requests the engine processed.
/// total_cycles is the engine's simulated wall-clock; per-request
/// attributed cycles sum to it exactly (the shared weight-streaming
/// remainder is distributed deterministically).
struct ServingStats {
  Cycles total_cycles = 0;
  double total_energy_mj = 0.0;
  int total_generated = 0;
  int steps = 0;
  int peak_batch = 0;
  int completed = 0;
  int rejected = 0;

  [[nodiscard]] double aggregate_tokens_per_s(double freq_hz) const {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(total_generated) /
                                   util::cycles_to_s(total_cycles, freq_hz);
  }
  [[nodiscard]] double mj_per_token() const {
    return total_generated == 0 ? 0.0 : total_energy_mj / total_generated;
  }
};

/// Batched serving runtime over one InferenceSession deployment:
/// accepts many concurrent generation requests and multiplexes them
/// over the shared partition::DistributedBlock executor with continuous
/// batching — requests join and leave the running batch at token
/// boundaries, never mid-block.
///
///   BatchedEngine engine(session, {.max_batch = 4});
///   auto id = engine.submit({1, 17, 42}, 16);
///   auto results = engine.run_to_completion();
///
/// Functional contract: every request decodes against its own pooled
/// KV-cache set, so its token stream is bit-identical to an independent
/// InferenceSession::generate call regardless of what else shares the
/// batch.
///
/// Cost model (per engine step, from TimedBlockSimulation block
/// reports): prefill is charged in full to the joining request; for the
/// B requests decoding in a step, block-weight streaming (the L3->L2
/// portion) is paid once and shared — the continuous-batching win on a
/// weight-streaming MCU deployment — while compute, L2<->L1 tile DMA,
/// and chip-to-chip synchronization are paid per request.
///
/// KV-cache sets come from a model::KvCachePool sized at construction;
/// the byte reservation is charged to a mem::Arena through a
/// mem::SlotArena, so admission beyond max_batch queues and submits
/// beyond max_pending are rejected gracefully (nullopt, no UB).
/// Construction throws PlanError when max_batch KV sets do not fit the
/// deployment's L2 budget next to the single-request plan the memory
/// planner already validated.
class BatchedEngine {
 public:
  struct Options {
    int max_batch = 4;    ///< concurrent KV-cache pool slots
    int max_pending = 64; ///< admission queue bound; beyond it submits reject
  };

  /// `session` must outlive the engine. `tracer`, when non-null,
  /// receives one span per charge with the owning request id tagged
  /// (shared weight streaming is split into per-request shares).
  explicit BatchedEngine(const InferenceSession& session, Options opts,
                         sim::Tracer* tracer = nullptr);
  explicit BatchedEngine(const InferenceSession& session)
      : BatchedEngine(session, Options{}) {}

  /// Queue a generation request. Throws distmcu::Error on contract
  /// violations (empty prompt, context overflow, prompt longer than the
  /// deployment's static prefill shape `prompt_len`) exactly like
  /// InferenceSession::generate; returns nullopt when the pending queue
  /// is full (graceful backpressure).
  [[nodiscard]] std::optional<RequestId> submit(std::vector<int> prompt,
                                                int new_tokens);

  /// Advance one token boundary: admit pending requests into free KV
  /// slots (running their prefill), then decode one token for every
  /// active request. Returns false when no work remains.
  bool step();

  /// Drain the engine and return all finished requests (admit order of
  /// completion).
  [[nodiscard]] std::vector<RequestResult> run_to_completion();

  [[nodiscard]] const ServingStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<RequestResult>& finished() const {
    return finished_;
  }
  [[nodiscard]] int active_requests() const { return static_cast<int>(active_.size()); }
  [[nodiscard]] int pending_requests() const { return static_cast<int>(pending_.size()); }
  [[nodiscard]] const mem::Arena& kv_arena() const { return kv_arena_; }
  [[nodiscard]] const mem::SlotArena& kv_slots() const { return kv_slots_; }

 private:
  struct Request {
    RequestId id = -1;
    std::vector<int> prompt;
    int new_tokens = 0;
    std::vector<int> tokens;
    int generated = 0;
    int pos = 0;        // absolute position of the next decoded token
    int next = -1;      // pending token, emitted at the next boundary
    int slot = -1;      // KV pool slot while active
    Cycles cycles = 0;  // attributed simulated cost
    double energy_mj = 0.0;
    int admitted_step = -1;
    Cycles admitted_at = 0;  // engine timeline at the admitting step's start
  };

  void admit_pending(int step_idx, Cycles& step_cycles, double& step_energy,
                     std::vector<std::size_t>& finished_now);
  void finish(Request& r, int step_idx, std::vector<std::size_t>& finished_now);
  /// Charge `cycles`/`energy` to a request and, when tracing, lay a
  /// tagged span on the engine's serialized timeline.
  void charge(Request& r, Cycles cycles, double energy_mj, sim::Category cat,
              const char* label);

  const InferenceSession& session_;
  Options opts_;
  sim::Tracer* tracer_;

  // Block-level measurements of this deployment, simulated once;
  // declared ahead of the pool so the L2 fit check can gate pool
  // construction.
  BlockResult prompt_block_;
  BlockResult ar_block_;

  // Cost decomposition derived from the block reports.
  Cycles prompt_cycles_ = 0;      // full prefill cost, all layers
  double prompt_energy_mj_ = 0.0;
  Cycles ar_shared_cycles_ = 0;   // weight streaming, shared across the batch
  double ar_shared_energy_mj_ = 0.0;
  Cycles ar_per_req_cycles_ = 0;  // compute + tile DMA + C2C, per request
  double ar_per_req_energy_mj_ = 0.0;

  model::KvCachePool kv_pool_;
  Bytes kv_set_bytes_ = 0;  // one pooled set at full capacity
  mem::Arena kv_arena_;
  mem::SlotArena kv_slots_;

  std::deque<Request> pending_;
  std::vector<Request> active_;
  std::vector<RequestResult> finished_;
  ServingStats stats_;
  RequestId next_id_ = 0;
  Cycles trace_cursor_ = 0;
};

}  // namespace distmcu::runtime

#endif  // DISTMCU_RUNTIME_BATCHED_ENGINE_HPP
