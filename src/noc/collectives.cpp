#include "noc/collectives.hpp"

#include <algorithm>

namespace distmcu::noc {

CollectiveTimer::CollectiveTimer(const Topology& topo, const LinkConfig& link,
                                 const chip::TimingConfig& timing)
    : topo_(topo), link_(link), timing_(timing) {
  in_ports_.reserve(static_cast<std::size_t>(topo.num_chips()));
  out_ports_.reserve(static_cast<std::size_t>(topo.num_chips()));
  for (int i = 0; i < topo.num_chips(); ++i) {
    in_ports_.emplace_back("c2c_in[" + std::to_string(i) + "]",
                           link.bandwidth_bytes_per_cycle, link.setup_cycles);
    out_ports_.emplace_back("c2c_out[" + std::to_string(i) + "]",
                            link.bandwidth_bytes_per_cycle, link.setup_cycles);
  }
}

CollectiveTiming CollectiveTimer::reduce(const std::vector<Cycles>& ready, Bytes bytes,
                                         sim::Tracer* tracer) {
  DISTMCU_CHECK(ready.size() == static_cast<std::size_t>(topo_.num_chips()),
              "CollectiveTimer::reduce: ready size != chip count");
  CollectiveTiming out;
  out.chip_ready = ready;
  out.accumulate_per_chip.assign(static_cast<std::size_t>(topo_.num_chips()), 0);

  // Elements to accumulate per hop: the partial buffers are activation
  // tensors; the accumulate cost model only needs the element count, and
  // collective payloads use the activation precision (1 B) so bytes ==
  // elements. Using bytes directly keeps the timer precision-agnostic.
  const auto acc = timing_.accumulate(static_cast<std::int64_t>(std::max<Bytes>(bytes, 1)), 1);

  for (const auto& stage : topo_.reduce_stages()) {
    for (const auto& hop : stage) {
      auto& src_out = out_ports_[static_cast<std::size_t>(hop.src)];
      auto& dst_in = in_ports_[static_cast<std::size_t>(hop.dst)];
      const Cycles src_ready = out.chip_ready[static_cast<std::size_t>(hop.src)];
      const Cycles start =
          std::max(src_out.earliest_start(src_ready), dst_in.earliest_start(src_ready));
      src_out.occupy(start, bytes);
      const Cycles arrived = dst_in.occupy(start, bytes);
      // The destination folds the incoming partial into its own buffer;
      // it must have produced its own partial first.
      const Cycles acc_start =
          std::max(arrived, out.chip_ready[static_cast<std::size_t>(hop.dst)]);
      const Cycles acc_done = acc_start + acc.compute_cycles + acc.overhead_cycles;
      out.chip_ready[static_cast<std::size_t>(hop.dst)] = acc_done;
      out.c2c_bytes += bytes;
      ++out.num_transfers;
      out.accumulate_compute += acc.compute_cycles;
      out.accumulate_per_chip[static_cast<std::size_t>(hop.dst)] += acc.compute_cycles;
      if (tracer != nullptr) {
        tracer->record(hop.dst, sim::Category::chip_to_chip, start, arrived, bytes,
                       "reduce hop");
        tracer->record(hop.dst, sim::Category::compute, acc_start, acc_done, 0,
                       "reduce accumulate");
      }
    }
  }
  out.finish = out.chip_ready[static_cast<std::size_t>(topo_.root())];
  return out;
}

CollectiveTiming CollectiveTimer::broadcast(Cycles root_ready, Bytes bytes,
                                            sim::Tracer* tracer) {
  CollectiveTiming out;
  out.chip_ready.assign(static_cast<std::size_t>(topo_.num_chips()), root_ready);
  out.accumulate_per_chip.assign(static_cast<std::size_t>(topo_.num_chips()), 0);

  for (const auto& stage : topo_.broadcast_stages()) {
    for (const auto& hop : stage) {
      auto& src_out = out_ports_[static_cast<std::size_t>(hop.src)];
      auto& dst_in = in_ports_[static_cast<std::size_t>(hop.dst)];
      const Cycles src_ready = out.chip_ready[static_cast<std::size_t>(hop.src)];
      const Cycles start =
          std::max(src_out.earliest_start(src_ready), dst_in.earliest_start(src_ready));
      src_out.occupy(start, bytes);
      const Cycles arrived = dst_in.occupy(start, bytes);
      out.chip_ready[static_cast<std::size_t>(hop.dst)] = arrived;
      out.c2c_bytes += bytes;
      ++out.num_transfers;
      if (tracer != nullptr) {
        tracer->record(hop.dst, sim::Category::chip_to_chip, start, arrived, bytes,
                       "broadcast hop");
      }
    }
  }
  out.finish = *std::max_element(out.chip_ready.begin(), out.chip_ready.end());
  return out;
}

void CollectiveTimer::reset() {
  for (auto& p : in_ports_) p.reset();
  for (auto& p : out_ports_) p.reset();
}

}  // namespace distmcu::noc
