// Multi-model serving walkthrough: deploy a TinyLlama-style generator
// and a MobileBERT-style classifier as two (model, chip-count) sessions
// in one ModelRegistry, serve a mixed request stream through a single
// BatchedEngine whose KV slots all come from one shared arena under the
// watermark-borrowing budget policy, and show that
//   * every generation stream is bit-identical to a dedicated
//     InferenceSession::generate call on its own model,
//   * per-model attribution partitions the engine totals exactly,
//   * the classifier's deadline rides EDF admission past the queued
//     generator work.
#include <iostream>
#include <vector>

#include "runtime/batched_engine.hpp"
#include "runtime/deployment_spec.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/kv_budget.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/scheduler.hpp"

using namespace distmcu;

namespace {

/// Generator: full-width TinyLlama blocks, cut to a quick demo shape;
/// at 4 chips the decode weights stream from L3 every step.
model::TransformerConfig gen_model() {
  auto cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.name = "tinyllama";
  cfg.num_layers = 2;
  cfg.vocab_size = 100;
  cfg.ar_context = 32;
  cfg.prompt_len = 6;
  cfg.validate();
  return cfg;
}

/// Classifier: MobileBERT-style encoder (layernorm, bidirectional, no
/// RoPE), served as prefill-only requests.
model::TransformerConfig cls_model() {
  model::TransformerConfig cfg;
  cfg.name = "mobilebert";
  cfg.embed_dim = 64;
  cfg.ffn_dim = 64;
  cfg.num_heads = 4;
  cfg.head_dim = 16;
  cfg.num_layers = 2;
  cfg.vocab_size = 100;
  cfg.ar_context = 12;
  cfg.prompt_len = 12;
  cfg.norm = model::NormKind::layernorm;
  cfg.pos = model::PosEmbed::none;
  cfg.mask = model::MaskKind::bidirectional;
  cfg.validate();
  return cfg;
}

}  // namespace

int main() {
  const double freq_hz = 500e6;

  // Two deployments declared through the DeploymentSpec surface, one
  // engine: 3 shared KV slots, quotas 2 + 1, the watermark policy
  // lending idle capacity across models, EDF admission ranking
  // deadlines across models. The registry owns the sessions it builds.
  runtime::DeploymentSpec llama_spec;
  llama_spec.model = gen_model();
  llama_spec.chips = 4;
  llama_spec.prefill_chunk_tokens = 2;
  llama_spec.kv_quota = 2;
  runtime::DeploymentSpec bert_spec;
  bert_spec.model = cls_model();
  bert_spec.chips = 2;
  bert_spec.prefill_chunk_tokens = 4;
  bert_spec.kv_quota = 1;

  const runtime::InferenceSession llama(llama_spec);
  runtime::ModelRegistry registry;
  const auto gen = registry.add(llama_spec);
  const auto cls = registry.add(bert_spec);
  runtime::BatchedEngine engine(
      registry,
      {.total_kv_slots = 3,
       .max_pending = 16,
       .scheduler = runtime::make_scheduler(runtime::SchedulePolicy::edf),
       .kv_budget = runtime::make_kv_budget(runtime::KvBudget::watermark)});

  // Three generations queued ahead of one deadline classification.
  struct Gen {
    runtime::RequestId id;
    std::vector<int> prompt;
    int new_tokens;
  };
  std::vector<Gen> gens;
  for (int i = 0; i < 3; ++i) {
    const std::vector<int> prompt{1 + i, 7, 3 + i};
    gens.push_back(
        {*engine.submit({.model = gen, .prompt = prompt, .new_tokens = 6}),
         prompt, 6});
  }
  const auto cls_id = *engine.submit(
      {.model = cls,
       .prompt = {5, 9, 2, 8, 4, 6, 1, 3},
       .new_tokens = 0,
       .slo = {.priority = 0, .deadline_cycles = 40'000'000}});

  const auto results = engine.run_to_completion();
  const auto& stats = engine.stats();

  std::cout << "served " << stats.completed << " requests in "
            << static_cast<double>(stats.total_cycles) / 1e6 << " Mcyc ("
            << stats.aggregate_tokens_per_s(freq_hz)
            << " generated tok/s aggregate)\n\n";

  std::cout << "per-model attribution (sums to the engine totals exactly):\n";
  for (const auto& pm : stats.per_model) {
    std::cout << "  " << pm.model << ": " << pm.completed << " done, "
              << pm.total_generated << " tokens, "
              << static_cast<double>(pm.attributed_cycles) / 1e6
              << " Mcyc attributed, KV high-water " << pm.kv_in_use_high_water
              << "/" << pm.kv_quota << " (quota)\n";
  }

  // Functional isolation: each stream equals its dedicated generate.
  bool all_match = true;
  for (const auto& g : gens) {
    const auto solo = llama.generate(g.prompt, g.new_tokens);
    for (const auto& r : results) {
      if (r.id != g.id) continue;
      all_match = all_match && r.gen.tokens == solo.tokens;
    }
  }
  std::cout << "\ngeneration streams match dedicated sessions: "
            << (all_match ? "yes" : "NO") << "\n";
  for (const auto& r : results) {
    if (r.id != cls_id) continue;
    std::cout << "classifier deadline "
              << (r.missed_deadline() ? "MISSED" : "met") << " (finished at "
              << static_cast<double>(r.finished_at) / 1e6 << " Mcyc, EDF "
              << "admitted it past " << gens.size()
              << " queued generations)\n";
  }
  return all_match ? 0 : 1;
}
