// Numeric tests for the functional kernels: hand-checked small cases plus
// algebraic properties (softmax normalization, norm invariances, RoPE
// isometry, attention limits).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "kernels/attention.hpp"
#include "kernels/gemm.hpp"
#include "kernels/ops.hpp"
#include "kernels/rope.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

using namespace distmcu;
namespace k = distmcu::kernels;

TEST(Gemm, HandComputed2x2) {
  // A = [[1,2],[3,4]], B = [[5,6],[7,8]] -> C = [[19,22],[43,50]]
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> b{5, 6, 7, 8};
  std::vector<float> c(4);
  k::gemm(a, b, c, 2, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 19);
  EXPECT_FLOAT_EQ(c[1], 22);
  EXPECT_FLOAT_EQ(c[2], 43);
  EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(Gemm, BiasBroadcastsOverRows) {
  const std::vector<float> a{1, 0, 0, 1};  // identity
  const std::vector<float> b{2, 3, 4, 5};
  const std::vector<float> bias{10, 20};
  std::vector<float> c(4);
  k::gemm(a, b, c, 2, 2, 2, bias);
  EXPECT_FLOAT_EQ(c[0], 12);
  EXPECT_FLOAT_EQ(c[1], 23);
  EXPECT_FLOAT_EQ(c[2], 14);
  EXPECT_FLOAT_EQ(c[3], 25);
}

TEST(Gemm, NtMatchesExplicitTranspose) {
  util::Rng rng(3);
  const int m = 5, n = 7, p = 9;
  std::vector<float> a(static_cast<std::size_t>(m * p));
  std::vector<float> bt(static_cast<std::size_t>(n * p));  // B^T stored [n,p]
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : bt) v = rng.uniform(-1, 1);
  // Build B [p,n] explicitly.
  std::vector<float> b(static_cast<std::size_t>(p * n));
  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < n; ++j) {
      b[static_cast<std::size_t>(i * n + j)] = bt[static_cast<std::size_t>(j * p + i)];
    }
  }
  std::vector<float> c1(static_cast<std::size_t>(m * n));
  std::vector<float> c2(static_cast<std::size_t>(m * n));
  k::gemm(a, b, c1, m, n, p);
  k::gemm_nt(a, bt, c2, m, n, p);
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-5);
}

TEST(Gemm, GemvEqualsSingleRowGemm) {
  util::Rng rng(5);
  const int n = 16, kk = 24;
  std::vector<float> x(static_cast<std::size_t>(kk)), b(static_cast<std::size_t>(kk * n));
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  std::vector<float> o1(static_cast<std::size_t>(n)), o2(static_cast<std::size_t>(n));
  k::gemv(x, b, o1, n, kk);
  k::gemm(x, b, o2, 1, n, kk);
  for (int i = 0; i < n; ++i) EXPECT_FLOAT_EQ(o1[static_cast<std::size_t>(i)], o2[static_cast<std::size_t>(i)]);
}

TEST(Gemm, SizeMismatchThrows) {
  std::vector<float> a(4), b(4), c(3);
  EXPECT_THROW(k::gemm(a, b, c, 2, 2, 2), Error);
}

TEST(Softmax, RowsSumToOne) {
  util::Rng rng(7);
  const int rows = 6, cols = 33;
  std::vector<float> x(static_cast<std::size_t>(rows * cols));
  for (auto& v : x) v = rng.uniform(-4, 4);
  k::softmax_rows(x, rows, cols);
  for (int r = 0; r < rows; ++r) {
    float sum = 0;
    for (int c = 0; c < cols; ++c) sum += x[static_cast<std::size_t>(r * cols + c)];
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(Softmax, StableForLargeInputs) {
  std::vector<float> x{1000.0f, 1000.0f, 1000.0f, 999.0f};
  k::softmax_rows(x, 1, 4);
  for (const float v : x) {
    EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_GT(x[0], x[3]);
}

TEST(Softmax, ShiftInvariance) {
  std::vector<float> a{0.5f, -1.0f, 2.0f};
  std::vector<float> b{10.5f, 9.0f, 12.0f};  // a + 10
  k::softmax_rows(a, 1, 3);
  k::softmax_rows(b, 1, 3);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-6);
}

TEST(RmsNorm, UnitGammaGivesUnitRms) {
  util::Rng rng(9);
  const int cols = 64;
  std::vector<float> x(cols), gamma(cols, 1.0f), out(cols);
  for (auto& v : x) v = rng.uniform(-3, 3);
  k::rmsnorm_rows(x, gamma, out, 1, cols, 1e-6f);
  float ss = 0;
  for (const float v : out) ss += v * v;
  EXPECT_NEAR(std::sqrt(ss / cols), 1.0f, 1e-3);
}

TEST(RmsNorm, ScaleInvariance) {
  const int cols = 8;
  std::vector<float> x{1, 2, 3, 4, -1, -2, -3, -4};
  std::vector<float> x2(x);
  for (auto& v : x2) v *= 7.0f;
  std::vector<float> gamma(cols, 1.0f), o1(cols), o2(cols);
  k::rmsnorm_rows(x, gamma, o1, 1, cols, 0.0f);
  k::rmsnorm_rows(x2, gamma, o2, 1, cols, 0.0f);
  for (int i = 0; i < cols; ++i) EXPECT_NEAR(o1[static_cast<std::size_t>(i)], o2[static_cast<std::size_t>(i)], 1e-5);
}

TEST(LayerNorm, ZeroMeanUnitVar) {
  util::Rng rng(11);
  const int cols = 128;
  std::vector<float> x(cols), gamma(cols, 1.0f), beta(cols, 0.0f), out(cols);
  for (auto& v : x) v = rng.uniform(0, 10);
  k::layernorm_rows(x, gamma, beta, out, 1, cols, 1e-6f);
  float mean = 0;
  for (const float v : out) mean += v;
  mean /= cols;
  float var = 0;
  for (const float v : out) var += (v - mean) * (v - mean);
  var /= cols;
  EXPECT_NEAR(mean, 0.0f, 1e-4);
  EXPECT_NEAR(var, 1.0f, 1e-3);
}

TEST(LayerNorm, BetaShifts) {
  const int cols = 4;
  std::vector<float> x{1, 2, 3, 4}, gamma(cols, 1.0f), beta(cols, 5.0f), out(cols);
  k::layernorm_rows(x, gamma, beta, out, 1, cols, 1e-6f);
  float mean = 0;
  for (const float v : out) mean += v;
  EXPECT_NEAR(mean / cols, 5.0f, 1e-4);
}

TEST(Activations, GeluKnownValues) {
  std::vector<float> x{0.0f, 100.0f, -100.0f, 1.0f};
  k::gelu(x);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
  EXPECT_NEAR(x[1], 100.0f, 1e-3);
  EXPECT_NEAR(x[2], 0.0f, 1e-3);
  EXPECT_NEAR(x[3], 0.8413447f, 1e-4);  // x * Phi(1)
}

TEST(Activations, SiluKnownValues) {
  std::vector<float> x{0.0f, 100.0f};
  k::silu(x);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
  EXPECT_NEAR(x[1], 100.0f, 1e-3);
}

TEST(Activations, ReluClampsNegatives) {
  std::vector<float> x{-1.0f, 0.0f, 2.5f};
  k::relu(x);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
  EXPECT_FLOAT_EQ(x[2], 2.5f);
}

TEST(Elementwise, AddAndMul) {
  std::vector<float> out{1, 2, 3};
  const std::vector<float> x{10, 20, 30};
  k::add_inplace(out, x);
  EXPECT_FLOAT_EQ(out[1], 22);
  k::mul_inplace(out, x);
  EXPECT_FLOAT_EQ(out[2], 990);
}

TEST(Rope, PositionZeroIsIdentity) {
  std::vector<float> x{1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<float> orig(x);
  k::rope_apply(x, 1, 4, 0, 10000.0f);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(x[static_cast<std::size_t>(i)], orig[static_cast<std::size_t>(i)], 1e-6);
}

TEST(Rope, PreservesPairNorms) {
  util::Rng rng(13);
  const int dim = 64;
  std::vector<float> x(dim);
  for (auto& v : x) v = rng.uniform(-2, 2);
  const std::vector<float> orig(x);
  k::rope_apply(x, 1, dim, 37, 10000.0f);
  for (int j = 0; j < dim; j += 2) {
    const float n0 = orig[static_cast<std::size_t>(j)] * orig[static_cast<std::size_t>(j)] +
                     orig[static_cast<std::size_t>(j + 1)] * orig[static_cast<std::size_t>(j + 1)];
    const float n1 = x[static_cast<std::size_t>(j)] * x[static_cast<std::size_t>(j)] +
                     x[static_cast<std::size_t>(j + 1)] * x[static_cast<std::size_t>(j + 1)];
    EXPECT_NEAR(n0, n1, 1e-4);
  }
}

TEST(Rope, RelativePhaseProperty) {
  // Rotating the same vector at positions p and p+d: the dot product
  // between the two depends only on d (relative encoding).
  const int dim = 8;
  std::vector<float> base(dim, 0.5f);
  auto rotated = [&](int pos) {
    std::vector<float> v(base);
    k::rope_apply(v, 1, dim, pos, 10000.0f);
    return v;
  };
  auto dot = [&](const std::vector<float>& a, const std::vector<float>& b) {
    float s = 0;
    for (int i = 0; i < dim; ++i) s += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
    return s;
  };
  const float d1 = dot(rotated(3), rotated(7));
  const float d2 = dot(rotated(20), rotated(24));
  EXPECT_NEAR(d1, d2, 1e-4);
}

TEST(Rope, OddHeadDimRejected) {
  std::vector<float> x(3);
  EXPECT_THROW(k::rope_apply(x, 1, 3, 0, 10000.0f), Error);
}

TEST(Attention, UniformScoresAverageValues) {
  // Q orthogonal to all keys -> uniform probabilities -> output is the
  // mean of V rows.
  const int p = 4, s_kv = 3;
  const std::vector<float> q(p, 0.0f);
  std::vector<float> kmat(static_cast<std::size_t>(s_kv * p));
  std::vector<float> vmat{1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3};
  util::Rng rng(17);
  for (auto& v : kmat) v = rng.uniform(-1, 1);
  std::vector<float> out(p);
  k::attention_head_ar(q, kmat, vmat, out, s_kv, p);
  for (const float v : out) EXPECT_NEAR(v, 2.0f, 1e-5);
}

TEST(Attention, SharpScoresSelectValue) {
  const int p = 2, s_kv = 2;
  const std::vector<float> q{100.0f, 0.0f};
  const std::vector<float> kmat{1.0f, 0.0f, -1.0f, 0.0f};  // key0 aligned, key1 anti
  const std::vector<float> vmat{7.0f, 8.0f, -5.0f, -6.0f};
  std::vector<float> out(p);
  k::attention_head_ar(q, kmat, vmat, out, s_kv, p);
  EXPECT_NEAR(out[0], 7.0f, 1e-3);
  EXPECT_NEAR(out[1], 8.0f, 1e-3);
}

TEST(Attention, CausalMaskBlocksFuture) {
  // Two queries, two keys; causal: row 0 may only see key 0.
  const int p = 2, s = 2;
  const std::vector<float> q{1.0f, 0.0f, 1.0f, 0.0f};
  const std::vector<float> kmat{1.0f, 0.0f, 100.0f, 0.0f};  // key1 would dominate
  const std::vector<float> vmat{1.0f, 1.0f, 9.0f, 9.0f};
  std::vector<float> out(static_cast<std::size_t>(s * p));
  k::attention_head(q, kmat, vmat, out, s, s, p, /*causal=*/true, /*pos_offset=*/0);
  // Row 0 can only attend to key 0 -> exactly v0.
  EXPECT_NEAR(out[0], 1.0f, 1e-5);
  EXPECT_NEAR(out[1], 1.0f, 1e-5);
  // Row 1 sees both; key1 dominates -> close to v1.
  EXPECT_GT(out[2], 5.0f);
}

TEST(Attention, BidirectionalSeesAll) {
  const int p = 2, s = 2;
  const std::vector<float> q{1.0f, 0.0f, 1.0f, 0.0f};
  const std::vector<float> kmat{1.0f, 0.0f, 100.0f, 0.0f};
  const std::vector<float> vmat{1.0f, 1.0f, 9.0f, 9.0f};
  std::vector<float> out(static_cast<std::size_t>(s * p));
  k::attention_head(q, kmat, vmat, out, s, s, p, /*causal=*/false, /*pos_offset=*/0);
  EXPECT_GT(out[0], 5.0f);  // row 0 now also dominated by key 1
}

TEST(Attention, PosOffsetExtendsVisibility) {
  // With pos_offset=1, query row 0 is absolute position 1 and may see
  // keys 0 and 1.
  const int p = 2;
  const std::vector<float> q{1.0f, 0.0f};
  const std::vector<float> kmat{1.0f, 0.0f, 100.0f, 0.0f};
  const std::vector<float> vmat{1.0f, 1.0f, 9.0f, 9.0f};
  std::vector<float> out(p);
  k::attention_head(q, kmat, vmat, out, 1, 2, p, /*causal=*/true, /*pos_offset=*/1);
  EXPECT_GT(out[0], 5.0f);
}
