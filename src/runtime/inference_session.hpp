#ifndef DISTMCU_RUNTIME_INFERENCE_SESSION_HPP
#define DISTMCU_RUNTIME_INFERENCE_SESSION_HPP

#include <memory>
#include <vector>

#include "energy/energy_model.hpp"
#include "model/config.hpp"
#include "model/embedding.hpp"
#include "model/reference_model.hpp"
#include "model/weights.hpp"
#include "noc/topology.hpp"
#include "partition/distributed_block.hpp"
#include "partition/memory_planner.hpp"
#include "partition/plan.hpp"
#include "partition/sharder.hpp"
#include "quant/quantized_block.hpp"
#include "runtime/deployment_spec.hpp"
#include "runtime/precision.hpp"
#include "runtime/timed_simulation.hpp"

namespace distmcu::runtime {

/// One block-level measurement in the paper's reporting unit (runtime and
/// energy for a single Transformer block, weights of the next block
/// double-buffered where applicable).
struct BlockResult {
  RunReport report;
  energy::EnergyBreakdown energy;
  partition::MemoryPlan memory;

  [[nodiscard]] double latency_ms(double freq_hz) const { return report.ms(freq_hz); }
  [[nodiscard]] double energy_mj() const { return energy.total_mj(); }
  [[nodiscard]] double edp_mj_ms(double freq_hz) const {
    return energy.total_mj() * util::cycles_to_ms(report.block_cycles, freq_hz);
  }
};

/// End-to-end generation outcome: the produced tokens plus aggregate
/// simulated cost (per-token block measurements scaled by layer count).
struct GenerationResult {
  std::vector<int> tokens;          // prompt + generated continuation
  Cycles total_cycles = 0;          // simulated wall-clock
  double total_energy_mj = 0.0;
  int generated = 0;

  [[nodiscard]] double tokens_per_s(double freq_hz) const {
    return total_cycles == 0
               ? 0.0
               : static_cast<double>(generated) /
                     util::cycles_to_s(total_cycles, freq_hz);
  }
  [[nodiscard]] double mj_per_token() const {
    return generated == 0 ? 0.0 : total_energy_mj / generated;
  }
};

/// The library's front door: owns the model, the partition, the
/// functional distributed executor, and the timed simulator for one
/// (model, chip-count) deployment.
///
///   InferenceSession session(model::TransformerConfig::tiny_llama_42m(), 8);
///   auto block = session.run_block(model::Mode::autoregressive);
///   auto gen   = session.generate({1, 17, 42}, 16);
///
/// Functional outputs are produced by the real distributed numerics (so
/// they are testably identical to a single-chip reference), while costs
/// come from the timed platform model.
class InferenceSession {
 public:
  InferenceSession(model::TransformerConfig cfg, int n_chips,
                   SystemConfig sys = SystemConfig::siracusa_system(),
                   std::uint64_t seed = 42);

  /// Build from a DeploymentSpec: validates the spec, applies its
  /// declared Precision to the platform numerics (an int8 spec prices
  /// the cost model at 1-byte-weight / int8-MAC rates), and — for int8
  /// specs — instantiates the quantized block executor the forward
  /// dispatch below routes through.
  explicit InferenceSession(const DeploymentSpec& spec);

  /// The paper's measurement: one Transformer block in `mode`.
  [[nodiscard]] BlockResult run_block(model::Mode mode) const;

  /// Block measurement for one prompt *chunk*: `chunk_tokens` rows whose
  /// attention runs over `attention_span` KV positions (the chunk itself
  /// plus the already-cached prefix). This is the cost unit of the
  /// serving engine's chunked prefill — the deployment's static prompt
  /// shape at chunk granularity. Requires
  /// 0 < chunk_tokens <= attention_span.
  [[nodiscard]] BlockResult run_prompt_chunk(int chunk_tokens,
                                             int attention_span) const;

  /// One measurement per span in `attention_spans`, sharing a single
  /// chunk-shaped partition and memory plan (the shape — and therefore
  /// both plans — depends only on chunk_tokens; only the timed
  /// simulation differs per span).
  [[nodiscard]] std::vector<BlockResult> run_prompt_chunks(
      int chunk_tokens, const std::vector<int>& attention_spans) const;

  /// Greedy end-to-end generation: embeds `prompt` (prefill through the
  /// distributed blocks), then decodes `new_tokens` autoregressively.
  /// Costs accumulate per block from the timed model.
  [[nodiscard]] GenerationResult generate(const std::vector<int>& prompt,
                                          int new_tokens) const;

  /// Encoder forward (MobileBERT-style): runs the full stack over a
  /// token sequence and returns the final hidden states [S, E].
  [[nodiscard]] model::Tensor encode(const std::vector<int>& tokens) const;

  [[nodiscard]] const partition::PartitionPlan& plan() const { return plan_; }
  [[nodiscard]] const model::TransformerConfig& config() const { return cfg_; }
  [[nodiscard]] const SystemConfig& system() const { return sys_; }
  [[nodiscard]] const model::Weights& weights() const { return weights_; }
  [[nodiscard]] const partition::DistributedBlock& block_executor() const {
    return *block_;
  }
  [[nodiscard]] const model::Embedding& embedding() const { return embedding_; }

  [[nodiscard]] Precision precision() const { return precision_; }
  [[nodiscard]] KvLayout kv_layout() const { return kv_layout_; }
  /// Bits one stored KV entry costs under this deployment's layout —
  /// THE number every byte-accounting site (engine, analyzer, pool)
  /// scales by.
  [[nodiscard]] int kv_elem_bits() const {
    return kv_layout_bits(kv_layout_,
                          static_cast<int>(sys_.precision.kv_bytes) * kBitsPerByte);
  }

  /// Precision-dispatched block execution: int8 deployments route
  /// through the quantized block, everything else through the float
  /// block. All serving-path forwards (engine, generate, encode) go
  /// through here so precision cannot be bypassed per call site.
  [[nodiscard]] model::Tensor forward(
      const model::Tensor& x, int layer,
      std::vector<std::vector<model::KvCache>>* chip_caches, int pos_offset) const {
    return qblock_ != nullptr ? qblock_->forward(x, layer, chip_caches, pos_offset)
                              : block_->forward(x, layer, chip_caches, pos_offset);
  }

  /// Cache layout is precision-independent (the quantized block stores
  /// fake-quantized rows in the same float caches), so both executors
  /// share the float block's geometry.
  [[nodiscard]] std::vector<std::vector<model::KvCache>> make_chip_caches(
      int capacity) const {
    return block_->make_chip_caches(capacity);
  }

 private:
  model::TransformerConfig cfg_;
  SystemConfig sys_;
  model::Weights weights_;
  model::Embedding embedding_;
  partition::PartitionPlan plan_;
  partition::ShardedWeights shards_;
  noc::Topology topo_;
  std::unique_ptr<partition::DistributedBlock> block_;
  std::unique_ptr<quant::QuantizedBlock> qblock_;  // int8 deployments only
  Precision precision_ = Precision::fp16;
  KvLayout kv_layout_ = KvLayout::native;
  TimedBlockSimulation sim_;
  energy::EnergyModel energy_;
};

}  // namespace distmcu::runtime

#endif  // DISTMCU_RUNTIME_INFERENCE_SESSION_HPP
