// Golden-trace regression tests for sim/trace_export.cpp: the emitted
// Chrome JSON must parse, every duration span must be well-formed,
// serving spans must land on the per-request lane matching their tagged
// request id, spans within one lane must never overlap (the FIFO L3
// port and the serialized step timeline guarantee this), and lane
// metadata must exist exactly for the lanes that carry spans.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <sstream>
#include <string>
#include <vector>

#include "model/config.hpp"
#include "partition/plan.hpp"
#include "runtime/batched_engine.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/timed_simulation.hpp"
#include "sim/trace_export.hpp"
#include "sim/tracer.hpp"

using namespace distmcu;

namespace {

/// 1 MHz makes cycles_to_us the identity, so timestamps in the JSON are
/// exact integers in double precision and lane-overlap checks need no
/// tolerance.
constexpr double kFreqHz = 1e6;

struct TraceEvent {
  std::string name;
  std::string ph;
  double ts = -1.0;
  double dur = -1.0;
  int pid = -1;
  int tid = -1;
  long long request = sim::kNoRequest;
  bool has_request = false;
};

/// Minimal parser for the exporter's machine-generated JSON: splits the
/// top-level traceEvents array into objects and extracts scalar fields
/// by key. Not a general JSON parser — tight enough that structural
/// regressions (unbalanced braces, missing quotes) fail the tests.
std::vector<TraceEvent> parse_trace(const std::string& json) {
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u)
      << "trace must open with the traceEvents array";
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  int depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0) << "unbalanced braces";

  std::vector<TraceEvent> events;
  std::size_t pos = json.find('[');
  while ((pos = json.find('{', pos + 1)) != std::string::npos) {
    // Find the matching close brace (args nest one level deep).
    int d = 0;
    std::size_t end = pos;
    for (; end < json.size(); ++end) {
      if (json[end] == '{') ++d;
      if (json[end] == '}' && --d == 0) break;
    }
    const std::string obj = json.substr(pos, end - pos + 1);
    pos = end;

    const auto field = [&obj](const std::string& key) -> std::string {
      const std::string tag = "\"" + key + "\":";
      const std::size_t at = obj.find(tag);
      if (at == std::string::npos) return {};
      std::size_t v = at + tag.size();
      std::size_t stop = v;
      if (obj[v] == '"') {
        stop = obj.find('"', v + 1) + 1;
      } else {
        while (stop < obj.size() && obj[stop] != ',' && obj[stop] != '}') {
          ++stop;
        }
      }
      std::string raw = obj.substr(v, stop - v);
      if (!raw.empty() && raw.front() == '"') raw = raw.substr(1, raw.size() - 2);
      return raw;
    };

    TraceEvent ev;
    ev.name = field("name");
    ev.ph = field("ph");
    if (const auto s = field("ts"); !s.empty()) ev.ts = std::stod(s);
    if (const auto s = field("dur"); !s.empty()) ev.dur = std::stod(s);
    if (const auto s = field("pid"); !s.empty()) ev.pid = std::stoi(s);
    if (const auto s = field("tid"); !s.empty()) ev.tid = std::stoi(s);
    if (const auto s = field("request"); !s.empty()) {
      ev.request = std::stoll(s);
      ev.has_request = true;
    }
    events.push_back(std::move(ev));
  }
  return events;
}

std::string export_trace(const sim::Tracer& tracer) {
  std::ostringstream os;
  sim::write_chrome_trace(tracer, kFreqHz, os);
  return os.str();
}

void check_serving_trace(const std::vector<TraceEvent>& events) {
  std::map<std::pair<int, int>, std::vector<const TraceEvent*>> lanes;
  std::map<std::pair<int, int>, std::string> lane_names;
  int x_events = 0;
  for (const auto& ev : events) {
    if (ev.ph == "M") {
      if (ev.name == "thread_name") {
        lane_names[{ev.pid, ev.tid}] = "named";
      }
      continue;
    }
    ASSERT_EQ(ev.ph, "X") << "only duration and metadata events expected";
    ++x_events;
    // Well-formed spans.
    EXPECT_GE(ev.ts, 0.0);
    EXPECT_GE(ev.dur, 0.0);
    EXPECT_GE(ev.pid, 0);
    EXPECT_GE(ev.tid, 0);
    ASSERT_TRUE(ev.has_request);
    // The lane IS the request: serving spans must sit on the per-request
    // track derived from their tagged id; untagged spans stay on the
    // category tracks.
    if (ev.request != sim::kNoRequest) {
      EXPECT_EQ(ev.tid,
                static_cast<int>(sim::kNumCategories) +
                    static_cast<int>(ev.request));
    } else {
      EXPECT_LT(ev.tid, static_cast<int>(sim::kNumCategories));
    }
    lanes[{ev.pid, ev.tid}].push_back(&ev);
  }
  EXPECT_GT(x_events, 0);

  // Per-lane spans never overlap: charges within one request serialize,
  // and DMA-lane spans are FIFO port service windows.
  for (auto& [lane, spans] : lanes) {
    std::sort(spans.begin(), spans.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                return a->ts < b->ts;
              });
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_LE(spans[i - 1]->ts + spans[i - 1]->dur, spans[i]->ts)
          << "overlap on lane pid=" << lane.first << " tid=" << lane.second
          << " between '" << spans[i - 1]->name << "' and '"
          << spans[i]->name << "'";
    }
    // Every populated lane has its metadata row (and request lanes only
    // exist where spans do).
    EXPECT_TRUE(lane_names.count(lane))
        << "no thread_name for pid=" << lane.first << " tid=" << lane.second;
  }
  // Request-lane metadata is emitted only for populated lanes.
  for (const auto& [lane, name] : lane_names) {
    if (lane.second >= static_cast<int>(sim::kNumCategories)) {
      EXPECT_TRUE(lanes.count(lane))
          << "phantom request lane pid=" << lane.first
          << " tid=" << lane.second;
    }
  }
}

model::TransformerConfig trace_cfg() {
  model::TransformerConfig cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.num_layers = 2;
  cfg.vocab_size = 200;
  cfg.ar_context = 32;
  cfg.prompt_len = 6;
  cfg.validate();
  return cfg;
}

}  // namespace

TEST(TraceExportGolden, ServingTraceSerialMode) {
  const auto cfg = trace_cfg();
  const runtime::InferenceSession session(cfg, 4);
  sim::Tracer tracer;
  runtime::BatchedEngine engine(session, {.max_batch = 2, .max_pending = 8},
                                &tracer);
  (void)*engine.submit({1, 2, 3}, 5);
  (void)*engine.submit({7}, 3);
  (void)*engine.submit({4, 5}, 2);
  (void)engine.run_to_completion();

  const auto events = parse_trace(export_trace(tracer));
  check_serving_trace(events);
}

TEST(TraceExportGolden, ServingTraceChunkedMode) {
  // The chunked step model adds prompt-chunk spans in the request lanes
  // and chunk-stream service windows on the DMA lane; all lane
  // guarantees must survive the heterogeneous steps.
  const auto cfg = trace_cfg();
  const runtime::InferenceSession session(cfg, 4);
  sim::Tracer tracer;
  runtime::BatchedEngine engine(
      session, {.max_batch = 2, .max_pending = 8, .prefill_chunk_tokens = 2},
      &tracer);
  (void)*engine.submit({1, 2, 3, 4, 5}, 4);
  (void)*engine.submit({7}, 5);
  (void)*engine.submit({4, 5, 6}, 0);
  (void)engine.run_to_completion();

  const auto events = parse_trace(export_trace(tracer));
  check_serving_trace(events);

  // The chunked model's signature spans are present: tagged prompt
  // chunks and the untagged chunk-stream DMA windows.
  int chunk_spans = 0;
  int stream_spans = 0;
  for (const auto& ev : events) {
    if (ev.name == "prefill.chunk") {
      ++chunk_spans;
      EXPECT_NE(ev.request, sim::kNoRequest);
    }
    if (ev.name == "prompt.stream") {
      ++stream_spans;
      EXPECT_EQ(ev.request, sim::kNoRequest);
    }
  }
  EXPECT_GT(chunk_spans, 3);  // 5-token prompt at C=2 alone takes 3 chunks
  EXPECT_GT(stream_spans, 0);
}

TEST(TraceExportGolden, ServingTraceCarriesSchedulerLaneSpans) {
  // Deadline-scheduled serving adds sched-category spans on the request
  // lanes: a queue-wait span per delayed admission and an instant
  // deadline-miss marker. All lane guarantees (per-request tids, no
  // overlap within a lane) must hold with the new category present.
  const auto cfg = trace_cfg();
  const runtime::InferenceSession session(cfg, 4);
  sim::Tracer tracer;
  runtime::BatchedEngine engine(
      session, {.max_batch = 1,
                .max_pending = 8,
                .prefill_chunk_tokens = 2,
                .scheduler = runtime::make_scheduler(runtime::SchedulePolicy::edf)},
      &tracer);
  // The long best-effort job is admitted... after the deadline job under
  // EDF; the hopeless 1-cycle deadline guarantees a miss marker.
  (void)*engine.submit({1, 2, 3}, 6,
                       {.priority = 1, .deadline_cycles = runtime::kNoDeadline});
  (void)*engine.submit({7}, 2, {.priority = 0, .deadline_cycles = 1});
  (void)engine.run_to_completion();
  ASSERT_GT(engine.stats().deadline_misses, 0);

  const auto events = parse_trace(export_trace(tracer));
  check_serving_trace(events);

  int queue_spans = 0;
  int miss_markers = 0;
  for (const auto& ev : events) {
    if (ev.name == "sched.queue") {
      ++queue_spans;
      EXPECT_NE(ev.request, sim::kNoRequest);
      EXPECT_GT(ev.dur, 0.0);
    }
    if (ev.name == "sched.deadline.miss") {
      ++miss_markers;
      EXPECT_NE(ev.request, sim::kNoRequest);
      EXPECT_EQ(ev.dur, 0.0);
    }
  }
  // One KV slot, two requests: whichever is admitted second waited.
  EXPECT_GE(queue_spans, 1);
  EXPECT_EQ(miss_markers, engine.stats().deadline_misses);
}

TEST(TraceExportGolden, BlockSimulationTraceIsWellFormed) {
  // The block-level timed simulation shares the exporter; its spans are
  // untagged and must stay on the category lanes of their chip.
  const auto cfg = trace_cfg();
  const auto plan = partition::PartitionPlan::create(cfg, 4);
  const auto sys = runtime::SystemConfig::siracusa_system();
  sim::Tracer tracer;
  (void)runtime::TimedBlockSimulation(sys).run(
      plan, model::Mode::autoregressive, &tracer);
  ASSERT_FALSE(tracer.spans().empty());

  const auto events = parse_trace(export_trace(tracer));
  int x_events = 0;
  for (const auto& ev : events) {
    if (ev.ph != "X") continue;
    ++x_events;
    EXPECT_GE(ev.ts, 0.0);
    EXPECT_GE(ev.dur, 0.0);
    EXPECT_EQ(ev.request, sim::kNoRequest);
    EXPECT_LT(ev.tid, static_cast<int>(sim::kNumCategories));
  }
  EXPECT_EQ(x_events, static_cast<int>(tracer.spans().size()));
}

TEST(TraceExportGolden, EmptyTracerProducesValidEmptyTrace) {
  sim::Tracer tracer;
  const std::string json = export_trace(tracer);
  EXPECT_EQ(json, "{\"traceEvents\":[]}");
}

TEST(TraceExportGolden, ServingTraceCarriesEvictResumeSpans) {
  // Preemptive serving adds checkpoint traffic to the request lanes:
  // a sched.evict span when the victim is checkpointed out of its KV
  // slot and a sched.resume span when it is restored, plus a second
  // sched.queue span covering the re-queue wait between them. Lane
  // guarantees (per-request tids, no overlap) must survive all three.
  const auto cfg = trace_cfg();
  const runtime::InferenceSession session(cfg, 4);
  const auto layers = static_cast<Cycles>(cfg.num_layers);
  const auto ar = session.run_block(model::Mode::autoregressive);
  const Cycles per_req =
      (ar.report.block_cycles - ar.report.breakdown.dma_l3_l2) * layers;
  const Cycles prefill =
      session.run_block(model::Mode::prompt).report.block_cycles * layers;

  sim::Tracer tracer;
  runtime::BatchedEngine engine(
      session,
      {.max_batch = 1,
       .max_pending = 8,
       .scheduler = runtime::make_scheduler(runtime::SchedulePolicy::edf),
       .preemption = std::make_shared<runtime::DeadlineAwarePreemption>()},
      &tracer);
  const auto a = *engine.submit({1, 2, 3}, 12);  // long, best-effort
  EXPECT_TRUE(engine.step());
  // Feasible if admitted promptly, lost if it waits out request A.
  (void)*engine.submit({7}, 2,
                       {.priority = 0,
                        .deadline_cycles = prefill + 3 * per_req});
  (void)engine.run_to_completion();
  ASSERT_EQ(engine.stats().preemptions, 1);
  ASSERT_EQ(engine.stats().resumes, 1);

  const auto events = parse_trace(export_trace(tracer));
  check_serving_trace(events);

  int evict_spans = 0;
  int resume_spans = 0;
  for (const auto& ev : events) {
    if (ev.name == "sched.evict") {
      ++evict_spans;
      EXPECT_EQ(ev.request, static_cast<long long>(a));
      EXPECT_GT(ev.dur, 0.0);  // checkpoint bytes cross the L3 port
      EXPECT_EQ(ev.pid, 0);    // single-model: sched spans stay on chip 0
    }
    if (ev.name == "sched.resume") {
      ++resume_spans;
      EXPECT_EQ(ev.request, static_cast<long long>(a));
      EXPECT_GT(ev.dur, 0.0);
      EXPECT_EQ(ev.pid, 0);
    }
  }
  EXPECT_EQ(evict_spans, 1);
  EXPECT_EQ(resume_spans, 1);
}

TEST(TraceExportGolden, MultiModelMissMarkersLandOnTheModelsLane) {
  // Regression: sched.deadline.miss markers used to hard-code chip 0,
  // so in a multi-model trace every model's misses piled onto model 0's
  // process row. They must land on the finishing request's own model
  // lane (pid == model id) like every other sched-category span.
  const auto cfg = trace_cfg();
  const runtime::InferenceSession session(cfg, 4);
  runtime::ModelRegistry reg;
  (void)reg.add(session, "a");
  (void)reg.add(session, "b");
  sim::Tracer tracer;
  runtime::BatchedEngine engine(reg, {.total_kv_slots = 2, .max_pending = 8},
                                &tracer);
  (void)*engine.submit(0, {1, 2, 3}, 2);  // best-effort on model 0
  // Hopeless deadline on model 1 guarantees exactly one miss there.
  (void)*engine.submit(1, {7}, 2, {.priority = 0, .deadline_cycles = 1});
  (void)engine.run_to_completion();
  ASSERT_EQ(engine.stats().deadline_misses, 1);
  ASSERT_EQ(engine.stats().per_model[1].deadline_misses, 1);

  const auto events = parse_trace(export_trace(tracer));
  check_serving_trace(events);

  int miss_markers = 0;
  for (const auto& ev : events) {
    if (ev.name != "sched.deadline.miss") continue;
    ++miss_markers;
    EXPECT_EQ(ev.pid, 1) << "miss marker must ride its model's lane";
    EXPECT_NE(ev.request, sim::kNoRequest);
  }
  EXPECT_EQ(miss_markers, 1);
}
