// Quickstart: deploy the paper's TinyLlama-42M on a network of 8
// Siracusa chips, measure one Transformer block in both inference modes,
// and print the paper-style latency / energy / breakdown numbers.
//
//   ./examples/quickstart [num_chips]
#include <cstdlib>
#include <iostream>

#include "model/config.hpp"
#include "runtime/inference_session.hpp"
#include "util/table.hpp"

using namespace distmcu;

int main(int argc, char** argv) {
  const int n_chips = argc > 1 ? std::atoi(argv[1]) : 8;

  // 1. Pick a model and a chip count; the session builds the partition
  //    plan (head-split MHSA, F-split FFN), shards the weights with zero
  //    duplication, and sets up the hierarchical group-of-4 topology.
  const auto cfg = model::TransformerConfig::tiny_llama_42m();
  const runtime::InferenceSession session(cfg, n_chips);

  std::cout << "model: " << cfg.name << "  (E=" << cfg.embed_dim
            << ", F=" << cfg.ffn_dim << ", H=" << cfg.num_heads
            << ", layers=" << cfg.num_layers << ")\n"
            << "chips: " << n_chips << "\n\n";

  // 2. Run one Transformer block per mode — the paper's measurement.
  const double freq = session.system().chip.freq_hz;
  util::Table table({"mode", "residency", "cycles", "latency_ms", "energy_mJ",
                     "EDP_mJms", "L3_KiB", "C2C_KiB"});
  for (const auto mode : {model::Mode::autoregressive, model::Mode::prompt}) {
    const auto block = session.run_block(mode);
    table.row()
        .add(model::mode_name(mode))
        .add(partition::residency_name(block.report.residency))
        .add(block.report.block_cycles)
        .add(block.latency_ms(freq), 3)
        .add(block.energy_mj(), 3)
        .add(block.edp_mj_ms(freq), 4)
        .add(static_cast<double>(block.report.traffic.l3_l2) / 1024.0, 1)
        .add(static_cast<double>(block.report.traffic.c2c) / 1024.0, 1);
  }
  table.print(std::cout);

  // 3. The memory plan explains WHY the latency looks the way it does.
  std::cout << "\nMemory plan (autoregressive):\n"
            << session.run_block(model::Mode::autoregressive).memory.describe();
  return 0;
}
