#ifndef DISTMCU_SIM_RESOURCE_HPP
#define DISTMCU_SIM_RESOURCE_HPP

#include <string>

#include "util/units.hpp"

namespace distmcu::sim {

/// A bandwidth-limited, FIFO-arbitrated shared resource: a DMA port, an
/// off-chip memory interface, or a chip-to-chip link lane.
///
/// A transfer of B bytes requested at cycle `ready` starts when the
/// resource frees up, pays a fixed `setup_cycles` (transaction/protocol
/// overhead, e.g. MIPI packetization), then occupies the resource for
/// ceil(B / bandwidth) cycles. Serialization of competing requesters —
/// e.g. three group members reducing into one leader's ingress port —
/// emerges from the shared `busy_until_` state rather than from any
/// scheduling logic in the callers, mirroring how interconnect contention
/// arises in GVSoC.
class Resource {
 public:
  /// `bandwidth_bytes_per_cycle` must be > 0.
  Resource(std::string name, double bandwidth_bytes_per_cycle, Cycles setup_cycles);

  /// Reserve the resource for a transfer of `bytes` that is ready to
  /// start at `ready`. Returns the completion cycle and advances the
  /// internal busy horizon. `bytes == 0` still pays the setup cost.
  Cycles transfer(Cycles ready, Bytes bytes);

  /// Completion time a transfer WOULD have, without reserving.
  [[nodiscard]] Cycles peek_completion(Cycles ready, Bytes bytes) const;

  /// Earliest cycle a transfer ready at `ready` could start.
  [[nodiscard]] Cycles earliest_start(Cycles ready) const {
    return ready > busy_until_ ? ready : busy_until_;
  }

  /// Occupy the resource for a transfer with an externally chosen start
  /// (used when a hop must reserve two ports — sender egress and receiver
  /// ingress — atomically). `start` must be >= busy_until().
  Cycles occupy(Cycles start, Bytes bytes);

  /// Pure service time (setup + serialization) excluding queueing.
  [[nodiscard]] Cycles service_cycles(Bytes bytes) const;

  [[nodiscard]] Cycles busy_until() const { return busy_until_; }
  [[nodiscard]] Bytes total_bytes() const { return total_bytes_; }
  [[nodiscard]] Cycles busy_cycles() const { return busy_cycles_; }
  [[nodiscard]] std::uint64_t num_transfers() const { return num_transfers_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double bandwidth() const { return bandwidth_; }

  /// Reset occupancy and counters (new measurement window).
  void reset();

 private:
  std::string name_;
  double bandwidth_;
  Cycles setup_cycles_;
  Cycles busy_until_ = 0;
  Bytes total_bytes_ = 0;
  Cycles busy_cycles_ = 0;
  std::uint64_t num_transfers_ = 0;
};

}  // namespace distmcu::sim

#endif  // DISTMCU_SIM_RESOURCE_HPP
