// Reproduces paper Fig. 4(a): TinyLlama autoregressive mode on 1-8
// Siracusa chips — runtime breakdown (computation / DMA L3<->L2 /
// DMA L2<->L1 / chip-to-chip) and speedup vs a single chip.
//
// Paper's headline for this panel: 26.1x super-linear speedup at 8
// chips; L3 DMA dominates the 1-4 chip (streamed) configurations.
#include <iostream>

#include "bench_common.hpp"

using namespace distmcu;

int main() {
  const auto cfg = model::TransformerConfig::tiny_llama_42m();
  const auto points = bench::sweep_chips(cfg, model::Mode::autoregressive, {1, 2, 4, 8});
  bench::print_fig4_panel(
      "Fig. 4(a) — TinyLlama autoregressive mode (S=1, KV context 128), one block",
      points);

  const auto& p8 = points.back();
  std::cout << "paper reports: 26.1x at 8 chips (super-linear)\n"
            << "measured:      " << p8.speedup << "x at 8 chips ("
            << (p8.speedup > 8.0 ? "super-linear" : "sub-linear") << ")\n"
            << "shape check:   "
            << (p8.speedup > 8.0 && points[1].speedup < 4.0 ? "PASS" : "FAIL")
            << " (super-linear only once the block turns L2-resident)\n";
  return 0;
}
