// Unit tests for the memory substrate: arena fit accounting (the basis of
// the residency planner), alignment, high-water marks, traffic counters.
#include <gtest/gtest.h>

#include <limits>

#include "mem/arena.hpp"
#include "mem/memory_level.hpp"
#include "mem/traffic.hpp"
#include "util/check.hpp"

using namespace distmcu;
using mem::Arena;
using mem::TrafficCounter;

TEST(Arena, AllocatesAndTracksUsage) {
  Arena a("L2", 2_MiB);
  const auto alloc = a.allocate("weights", 786432);
  EXPECT_EQ(alloc.offset, 0u);
  EXPECT_EQ(alloc.size, 786432u);
  EXPECT_EQ(a.used(), 786432u);
  EXPECT_EQ(a.remaining(), 2_MiB - 786432u);
}

TEST(Arena, AlignsAllocations) {
  Arena a("L1", 1024, 16);
  a.allocate("x", 5);
  const auto second = a.allocate("y", 5);
  EXPECT_EQ(second.offset, 16u);
}

TEST(Arena, TryAllocateFailsWithoutSideEffects) {
  Arena a("L2", 100);
  EXPECT_TRUE(a.try_allocate("a", 60));
  const Bytes used_before = a.used();
  EXPECT_FALSE(a.try_allocate("b", 60));
  EXPECT_EQ(a.used(), used_before);
  EXPECT_EQ(a.allocations().size(), 1u);
}

TEST(Arena, AllocateThrowsPlanErrorWhenFull) {
  Arena a("L2", 100);
  a.allocate("a", 90);
  EXPECT_THROW(a.allocate("b", 90), PlanError);
}

TEST(Arena, HighWaterSurvivesReset) {
  Arena a("L2", 1000);
  a.allocate("a", 800);
  a.reset();
  EXPECT_EQ(a.used(), 0u);
  EXPECT_EQ(a.high_water(), 800u);
  a.allocate("b", 100);
  EXPECT_EQ(a.high_water(), 800u);
}

TEST(Arena, ExactFitSucceeds) {
  Arena a("L2", 256, 8);
  EXPECT_TRUE(a.try_allocate("exact", 256));
  EXPECT_EQ(a.remaining(), 0u);
}

TEST(Arena, MemoryMapListsAllocations) {
  Arena a("L2", 1_MiB);
  a.allocate("wq_shard", 128_KiB);
  a.allocate("kv_cache", 32_KiB);
  const std::string map = a.memory_map();
  EXPECT_NE(map.find("wq_shard"), std::string::npos);
  EXPECT_NE(map.find("kv_cache"), std::string::npos);
  EXPECT_NE(map.find("L2"), std::string::npos);
}

TEST(Arena, NonPowerOfTwoAlignmentRejected) {
  EXPECT_THROW(Arena("bad", 100, 24), Error);
}

TEST(Arena, AlignUpSaturatesNearBytesMax) {
  // Regression: sizes within alignment-1 of the Bytes max used to wrap
  // to a tiny padded size that then "fit" in any arena. align_up must
  // saturate at the largest aligned value instead.
  constexpr Bytes kMax = std::numeric_limits<Bytes>::max();
  EXPECT_EQ(Arena::align_up(kMax, 8), kMax & ~Bytes{7});
  EXPECT_EQ(Arena::align_up(kMax - 1, 8), kMax & ~Bytes{7});
  EXPECT_EQ(Arena::align_up(kMax - 7, 8), kMax & ~Bytes{7});
  // Unaffected away from the boundary.
  EXPECT_EQ(Arena::align_up(kMax - 16, 8), kMax - 15);
  EXPECT_EQ(Arena::align_up(0, 8), 0u);
  EXPECT_EQ(Arena::align_up(1, 8), 8u);
  // And the allocation path rejects a near-max request instead of
  // wrapping it into an accept.
  Arena a("L2", 1024);
  EXPECT_FALSE(a.try_allocate("huge", kMax - 3));
  EXPECT_EQ(a.used(), 0u);
}

TEST(MemoryLevel, TierNames) {
  EXPECT_STREQ(mem::tier_name(mem::Tier::l1), "L1");
  EXPECT_STREQ(mem::tier_name(mem::Tier::l2), "L2");
  EXPECT_STREQ(mem::tier_name(mem::Tier::l3), "L3");
}

TEST(MemoryLevel, HoldsPaperEnergyConstants) {
  const mem::MemoryLevel l3{mem::Tier::l3, 0, 100.0};
  const mem::MemoryLevel l2{mem::Tier::l2, 2_MiB, 2.0};
  EXPECT_DOUBLE_EQ(l3.energy_pj_per_byte, 100.0);
  EXPECT_DOUBLE_EQ(l2.energy_pj_per_byte, 2.0);
  EXPECT_EQ(l2.name(), "L2");
}

TEST(Traffic, AccumulatesComponentwise) {
  TrafficCounter a{100, 200, 300};
  const TrafficCounter b{1, 2, 3};
  a += b;
  EXPECT_EQ(a.l3_l2, 101u);
  EXPECT_EQ(a.l2_l1, 202u);
  EXPECT_EQ(a.c2c, 303u);
  const TrafficCounter c = a + b;
  EXPECT_EQ(c.l3_l2, 102u);
}

TEST(Traffic, EqualityComparison) {
  const TrafficCounter a{1, 2, 3};
  const TrafficCounter b{1, 2, 3};
  EXPECT_EQ(a, b);
  const TrafficCounter c{1, 2, 4};
  EXPECT_FALSE(a == c);
}
