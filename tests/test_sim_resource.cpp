// Unit tests for the bandwidth-arbitrated Resource: service times, FIFO
// serialization (the mechanism behind C2C ingress contention in the
// hierarchical all-reduce), counters, and the tracer.
#include <gtest/gtest.h>

#include "sim/resource.hpp"
#include "sim/tracer.hpp"
#include "util/check.hpp"

using distmcu::Bytes;
using distmcu::Cycles;
using distmcu::sim::Category;
using distmcu::sim::Resource;
using distmcu::sim::Tracer;

TEST(Resource, ServiceTimeIsSetupPlusSerialization) {
  Resource r("link", 1.0, 500);  // MIPI-like: 1 B/cycle + 500-cycle setup
  EXPECT_EQ(r.service_cycles(1024), 1524u);
  EXPECT_EQ(r.service_cycles(0), 500u);
}

TEST(Resource, FractionalBandwidthRoundsUp) {
  Resource r("slow", 0.4, 0);
  // ceil(10 / 0.4) = 25 cycles.
  EXPECT_EQ(r.service_cycles(10), 25u);
}

TEST(Resource, WideBandwidth) {
  Resource r("dma", 8.0, 16);
  EXPECT_EQ(r.service_cycles(4096), 16u + 512u);
}

TEST(Resource, ZeroBandwidthRejected) {
  EXPECT_THROW(Resource("bad", 0.0, 0), distmcu::Error);
}

TEST(Resource, BackToBackTransfersSerialize) {
  Resource r("ingress", 1.0, 100);
  // Three senders into one ingress port, all ready at cycle 0 — the
  // group-of-4 reduce pattern.
  const Cycles c1 = r.transfer(0, 1000);
  const Cycles c2 = r.transfer(0, 1000);
  const Cycles c3 = r.transfer(0, 1000);
  EXPECT_EQ(c1, 1100u);
  EXPECT_EQ(c2, 2200u);
  EXPECT_EQ(c3, 3300u);
  EXPECT_EQ(r.total_bytes(), 3000u);
  EXPECT_EQ(r.num_transfers(), 3u);
}

TEST(Resource, LateArrivalStartsWhenReady) {
  Resource r("link", 2.0, 10);
  r.transfer(0, 100);  // busy until 60
  const Cycles done = r.transfer(200, 100);
  EXPECT_EQ(done, 260u);
}

TEST(Resource, PeekDoesNotReserve) {
  Resource r("link", 1.0, 0);
  EXPECT_EQ(r.peek_completion(0, 50), 50u);
  EXPECT_EQ(r.peek_completion(0, 50), 50u);
  EXPECT_EQ(r.busy_until(), 0u);
}

TEST(Resource, BusyCyclesAccumulateServiceTime) {
  Resource r("link", 1.0, 5);
  r.transfer(0, 10);
  r.transfer(100, 10);
  EXPECT_EQ(r.busy_cycles(), 30u);
}

TEST(Resource, ResetClearsState) {
  Resource r("link", 1.0, 5);
  r.transfer(0, 10);
  r.reset();
  EXPECT_EQ(r.busy_until(), 0u);
  EXPECT_EQ(r.total_bytes(), 0u);
  EXPECT_EQ(r.num_transfers(), 0u);
  EXPECT_EQ(r.busy_cycles(), 0u);
}

TEST(Tracer, AggregatesPerChipAndCategory) {
  Tracer t;
  t.record(0, Category::compute, 0, 100, 0, "gemv");
  t.record(0, Category::dma_l2_l1, 50, 250, 800, "tile");
  t.record(1, Category::compute, 0, 70, 0, "gemv");
  t.record(0, Category::chip_to_chip, 250, 300, 64, "reduce");
  EXPECT_EQ(t.total(0, Category::compute), 100u);
  EXPECT_EQ(t.total(1, Category::compute), 70u);
  EXPECT_EQ(t.total(Category::compute), 170u);
  EXPECT_EQ(t.total(Category::dma_l2_l1), 200u);
  EXPECT_EQ(t.total_bytes(Category::dma_l2_l1), 800u);
  EXPECT_EQ(t.total_bytes(Category::chip_to_chip), 64u);
  EXPECT_EQ(t.makespan(), 300u);
}

TEST(Tracer, RejectsNegativeSpan) {
  Tracer t;
  EXPECT_THROW(t.record(0, Category::compute, 10, 5, 0), distmcu::Error);
}

TEST(Tracer, ClearEmptiesEverything) {
  Tracer t;
  t.record(0, Category::compute, 0, 10, 0);
  t.clear();
  EXPECT_TRUE(t.spans().empty());
  EXPECT_EQ(t.makespan(), 0u);
}

TEST(Tracer, CategoryNamesMatchPaperLegend) {
  EXPECT_STREQ(category_name(Category::compute), "Computation");
  EXPECT_STREQ(category_name(Category::dma_l3_l2), "DMA L3<->L2");
  EXPECT_STREQ(category_name(Category::dma_l2_l1), "DMA L2<->L1");
  EXPECT_STREQ(category_name(Category::chip_to_chip), "Chip-to-Chip");
}
