#ifndef DISTMCU_CHIP_CHIP_CONFIG_HPP
#define DISTMCU_CHIP_CHIP_CONFIG_HPP

#include <string>

#include "util/units.hpp"

namespace distmcu::chip {

/// Element width of an operand class. The paper deploys via Deeploy with
/// integer kernels; the residency crossovers it reports (see DESIGN.md
/// §1) pin weights to 2 B elements, activations/KV-cache to 1 B.
enum class Precision : int { int8 = 1, int16 = 2, fp32 = 4 };

[[nodiscard]] constexpr Bytes precision_bytes(Precision p) {
  return static_cast<Bytes>(static_cast<int>(p));
}

[[nodiscard]] const char* precision_name(Precision p);

/// Cluster kernel-timing parameters. These encode the analytic
/// cycle model that substitutes for GVSoC's instruction-level simulation:
/// per-MAC SIMD throughput plus the fixed overheads (kernel call, row
/// setup, requant/store, cluster barrier) that make small kernels lose
/// utilization — the effect behind MobileBERT's sub-linear kernel scaling
/// in the paper (Sec. V-B).
struct TimingConfig {
  int cores = 8;

  // Effective sustained MAC throughput per core per cycle by operand
  // width. SIMD peak (XpulpNN-class) is 4x int8 / 2x int16, but real
  // kernels are load/store-bound (one weight load + pointer bookkeeping
  // per MAC bundle, L1 banking conflicts): the sustained rate is ~25% of
  // peak, calibrated so the three workloads land on the paper's reported
  // speedup factors (see EXPERIMENTS.md "Calibration").
  double macs_per_cycle_int8 = 1.0;
  double macs_per_cycle_int16 = 0.5;
  double macs_per_cycle_fp32 = 0.125;

  // Fixed cost of launching one kernel on the cluster: Deeploy node
  // prologue, L1 tile allocation, DMA programming, cluster wake-up.
  Cycles kernel_call_overhead = 1500;
  // Cluster barrier / epilogue at kernel end.
  Cycles barrier_overhead = 100;
  // Per output-row loop setup (pointer arithmetic, tile bookkeeping).
  Cycles row_overhead = 16;
  // Per output element epilogue: requantization, clamping, store.
  double out_elem_overhead = 4.0;

  // Element-wise op throughput per core (add/mul/residual).
  double elementwise_ops_per_cycle = 2.0;
  // Softmax per element (max-subtract, exp LUT, normalize), per core.
  double softmax_cycles_per_elem = 8.0;
  // Normalization (RMSNorm/LayerNorm) per element, per core.
  double norm_cycles_per_elem = 6.0;
  // RoPE rotation per element (two fused multiply-adds + trig LUT).
  double rope_cycles_per_elem = 4.0;
  // Accumulation rate for collective partial sums (elements/cycle/core).
  double accumulate_elems_per_cycle = 2.0;

  [[nodiscard]] double macs_per_cycle(Precision p) const {
    switch (p) {
      case Precision::int8: return macs_per_cycle_int8;
      case Precision::int16: return macs_per_cycle_int16;
      case Precision::fp32: return macs_per_cycle_fp32;
    }
    return 1.0;
  }
};

/// Full description of one Siracusa-like chip (paper Sec. II-B and V-A):
/// an octa-core RISC-V cluster at 500 MHz with 256 KiB L1 TCDM and 2 MiB
/// L2, an I/O DMA to off-chip L3 memory, and a cluster DMA between L2 and
/// L1. Energy constants follow the paper's analytical model.
struct ChipConfig {
  std::string name = "siracusa";
  double freq_hz = 500e6;

  Bytes l1_size = 256 * 1024ull;
  Bytes l2_size = 2 * 1024 * 1024ull;
  // L2 held back for code, stacks and I/O buffers; the remainder is the
  // deployment budget used by the memory planner.
  Bytes l2_runtime_reserve = 64 * 1024ull;
  // L1 share usable for double-buffered kernel tiles.
  Bytes l1_tile_budget = 192 * 1024ull;

  // Average active power of one core (paper: 13 mW) — applied to compute
  // time only, exactly as the paper's P * T_comp term.
  double core_power_mw = 13.0;

  // Memory system bandwidths (bytes per cluster cycle).
  double bw_l3_l2 = 1.0;  // 0.5 GB/s @ 500 MHz, HyperRAM-class off-chip
  double bw_l2_l1 = 2.5;  // cluster DMA sustained rate (64-bit AXI port
                          // shared with cores, ~30% of the 8 B/cy peak)
  Cycles dma_setup_l3 = 64;
  Cycles dma_setup_l1 = 16;

  // Access energies (paper Sec. V-A).
  double e_l3_pj_per_byte = 100.0;
  double e_l2_pj_per_byte = 2.0;

  TimingConfig timing;

  [[nodiscard]] double active_power_mw() const {
    return core_power_mw * static_cast<double>(timing.cores);
  }
  [[nodiscard]] Bytes l2_usable() const { return l2_size - l2_runtime_reserve; }

  /// Cycles one L3<->L2 DMA transfer of `bytes` takes: fixed setup plus
  /// the transfer at the configured port bandwidth. The single source of
  /// truth for every off-chip movement the runtime charges (weight
  /// streaming, KV checkpoints, resume restores).
  [[nodiscard]] Cycles l3_dma_cycles(Bytes bytes) const;

  /// The default platform of the paper.
  [[nodiscard]] static ChipConfig siracusa();
};

}  // namespace distmcu::chip

#endif  // DISTMCU_CHIP_CHIP_CONFIG_HPP
