#ifndef DISTMCU_UTIL_LOGGING_HPP
#define DISTMCU_UTIL_LOGGING_HPP

#include <sstream>
#include <string>

namespace distmcu::util {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Minimal thread-unsafe logger. Simulation code is single-threaded by
/// design (the event engine owns all ordering), so a global level and a
/// stderr sink are sufficient. Verbosity defaults to `warn` so tests and
/// benches stay quiet unless explicitly raised.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::warn;
};

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  append_all(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < Logger::instance().level()) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  Logger::instance().write(level, os.str());
}

template <typename... Args>
void log_debug(const Args&... args) { log(LogLevel::debug, args...); }
template <typename... Args>
void log_info(const Args&... args) { log(LogLevel::info, args...); }
template <typename... Args>
void log_warn(const Args&... args) { log(LogLevel::warn, args...); }
template <typename... Args>
void log_error(const Args&... args) { log(LogLevel::error, args...); }

}  // namespace distmcu::util

#endif  // DISTMCU_UTIL_LOGGING_HPP
