// Tests for the timed simulation layer: block-program lowering, timing
// invariants, breakdown accounting, traffic cross-checks against the
// functional executor, and the energy model identity.
#include <gtest/gtest.h>

#include "energy/energy_model.hpp"
#include "model/config.hpp"
#include "model/weights.hpp"
#include "noc/topology.hpp"
#include "partition/distributed_block.hpp"
#include "partition/plan.hpp"
#include "partition/sharder.hpp"
#include "runtime/block_program.hpp"
#include "runtime/timed_simulation.hpp"
#include "sim/tracer.hpp"
#include "util/rng.hpp"

using namespace distmcu;
using model::Mode;
using model::TransformerConfig;
using partition::PartitionPlan;
using partition::PrecisionConfig;
using partition::Residency;
using runtime::BlockProgram;
using runtime::LatencyAccounting;
using runtime::RunReport;
using runtime::SystemConfig;
using runtime::TimedBlockSimulation;

namespace {
SystemConfig default_sys() { return SystemConfig::siracusa_system(); }

RunReport run_default(const TransformerConfig& cfg, int chips, Mode mode) {
  const auto plan = PartitionPlan::create(cfg, chips);
  return TimedBlockSimulation(default_sys()).run(plan, mode);
}
}  // namespace

TEST(BlockProgram, WeightBytesMatchPlannerShard) {
  const auto cfg = TransformerConfig::tiny_llama_42m();
  for (int n : {1, 2, 4, 8}) {
    const auto plan = PartitionPlan::create(cfg, n);
    const auto prog = runtime::build_block_program(plan, PrecisionConfig{}, Mode::prompt);
    for (int c = 0; c < n; ++c) {
      EXPECT_EQ(prog.chip_weight_bytes(c), plan.chip_block_weight_elems(c) * 2)
          << "n=" << n << " chip=" << c;
    }
  }
}

TEST(BlockProgram, ArUsesSingleRowAndFullContext) {
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const auto plan = PartitionPlan::create(cfg, 8);
  const auto prog =
      runtime::build_block_program(plan, PrecisionConfig{}, Mode::autoregressive);
  EXPECT_EQ(prog.seq_len, 1);
  EXPECT_EQ(prog.attention_span, 128);
  // Payload: 1 x 512 x 1 B.
  EXPECT_EQ(prog.sync_payload_bytes, 512u);
}

TEST(BlockProgram, PromptUsesSequence) {
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const auto plan = PartitionPlan::create(cfg, 8);
  const auto prog = runtime::build_block_program(plan, PrecisionConfig{}, Mode::prompt);
  EXPECT_EQ(prog.seq_len, 16);
  EXPECT_EQ(prog.attention_span, 16);
  EXPECT_EQ(prog.sync_payload_bytes, 16u * 512u);
}

TEST(BlockProgram, PerHeadAttentionKernels) {
  const auto cfg = TransformerConfig::tiny_llama_42m();
  // 1 chip: 8 heads -> 3 ops each, plus 3 projections + 2 rope + 1 out
  // proj = 30 MHSA ops; FFN adds 3.
  const auto plan1 = PartitionPlan::create(cfg, 1);
  const auto prog1 = runtime::build_block_program(plan1, PrecisionConfig{}, Mode::prompt);
  EXPECT_EQ(prog1.chip_num_ops(0), 33u);
  // 8 chips: 1 head each -> 3+2+3+1 + 3 = 12 ops.
  const auto plan8 = PartitionPlan::create(cfg, 8);
  const auto prog8 = runtime::build_block_program(plan8, PrecisionConfig{}, Mode::prompt);
  EXPECT_EQ(prog8.chip_num_ops(0), 12u);
}

TEST(BlockProgram, BertSkipsRope) {
  const auto cfg = TransformerConfig::mobile_bert();
  const auto plan = PartitionPlan::create(cfg, 4);
  const auto prog = runtime::build_block_program(plan, PrecisionConfig{}, Mode::prompt);
  // 3 proj + 1 head * 3 + 1 out = 7 MHSA ops (no rope), + 3 FFN.
  EXPECT_EQ(prog.chip_num_ops(0), 10u);
  EXPECT_EQ(prog.attention_span, 268);
}

TEST(BlockProgram, KvBytesScaleWithContext) {
  auto cfg = TransformerConfig::tiny_llama_42m();
  const auto plan = PartitionPlan::create(cfg, 8);
  const auto prog =
      runtime::build_block_program(plan, PrecisionConfig{}, Mode::autoregressive);
  // Per chip: one head, scores+context each read T*P*1B = 128*64.
  EXPECT_EQ(prog.chip_kv_bytes(0), 2u * 128u * 64u);
}

// --- timed simulation ----------------------------------------------------

TEST(TimedSim, BreakdownSumsToLatency) {
  for (int n : {1, 2, 4, 8}) {
    const auto rep = run_default(TransformerConfig::tiny_llama_42m(), n,
                                 Mode::autoregressive);
    EXPECT_EQ(rep.breakdown.total(), rep.block_cycles) << "n=" << n;
  }
}

TEST(TimedSim, MoreChipsNeverSlower) {
  Cycles prev = ~0ull;
  for (int n : {1, 2, 4, 8}) {
    const auto rep = run_default(TransformerConfig::tiny_llama_42m(), n, Mode::prompt);
    EXPECT_LT(rep.block_cycles, prev) << "n=" << n;
    prev = rep.block_cycles;
  }
}

TEST(TimedSim, SuperLinearSpeedupAtResidencyCrossover) {
  // The paper's headline: the jump from streamed (4 chips) to
  // double-buffered (8 chips) yields more than 2x.
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const auto r4 = run_default(cfg, 4, Mode::autoregressive);
  const auto r8 = run_default(cfg, 8, Mode::autoregressive);
  EXPECT_EQ(r4.residency, Residency::streamed);
  EXPECT_EQ(r8.residency, Residency::double_buffered);
  const double jump = static_cast<double>(r4.block_cycles) /
                      static_cast<double>(r8.block_cycles);
  EXPECT_GT(jump, 4.0);
}

TEST(TimedSim, ArIsMemoryBoundSingleChip) {
  // Paper Fig. 4a: "in autoregressive mode, accessing memory is the main
  // contributor to overall runtime".
  const auto rep = run_default(TransformerConfig::tiny_llama_42m(), 1,
                               Mode::autoregressive);
  EXPECT_GT(rep.breakdown.dma_l3_l2, rep.breakdown.compute * 10);
}

TEST(TimedSim, PromptIsComputeBoundAtEightChips) {
  // Paper Fig. 4b: "in prompt mode, computation is the largest
  // contributor".
  const auto rep = run_default(TransformerConfig::tiny_llama_42m(), 8, Mode::prompt);
  EXPECT_GT(rep.breakdown.compute, rep.breakdown.dma_l2_l1);
  EXPECT_GT(rep.breakdown.compute, rep.breakdown.c2c);
  EXPECT_EQ(rep.breakdown.dma_l3_l2, 0u);
}

TEST(TimedSim, NoSteadyStateL3TrafficWhenResident) {
  const auto cfg = TransformerConfig::tiny_llama_scaled(64);
  const auto rep = run_default(cfg, 32, Mode::autoregressive);
  EXPECT_EQ(rep.residency, Residency::fully_resident);
  EXPECT_EQ(rep.traffic.l3_l2, 0u);
  EXPECT_EQ(rep.prefetch_bytes, 0u);
}

TEST(TimedSim, DoubleBufferedChargesPrefetchToEnergyNotLatency) {
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const auto plan = PartitionPlan::create(cfg, 8);

  SystemConfig paper_sys = default_sys();
  paper_sys.accounting = LatencyAccounting::single_block_resident;
  const auto paper_rep = TimedBlockSimulation(paper_sys).run(plan, Mode::autoregressive);
  // Prefetch traffic equals one full block of weights (2 B each).
  EXPECT_EQ(paper_rep.prefetch_bytes, cfg.block_weight_elems() * 2);
  EXPECT_EQ(paper_rep.traffic.l3_l2, paper_rep.prefetch_bytes);
  EXPECT_EQ(paper_rep.breakdown.dma_l3_l2, 0u);

  SystemConfig ss_sys = default_sys();
  ss_sys.accounting = LatencyAccounting::steady_state;
  const auto ss_rep = TimedBlockSimulation(ss_sys).run(plan, Mode::autoregressive);
  // Steady state: the block cannot outrun its successor's prefetch
  // (786 KiB at 1 B/cycle ~ 800 kcycles > block compute).
  EXPECT_GT(ss_rep.block_cycles, paper_rep.block_cycles);
  EXPECT_GT(ss_rep.breakdown.dma_l3_l2, 0u);
}

TEST(TimedSim, TrafficMatchesFunctionalCommRecord) {
  // The timed simulation and the functional executor must derive the
  // same C2C traffic from the same plan.
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const int n = 8;
  const auto plan = PartitionPlan::create(cfg, n);
  const auto rep = run_default(cfg, n, Mode::prompt);

  const model::Weights w(cfg, 3);
  const partition::ShardedWeights shards(w, plan);
  const auto topo = noc::Topology::hierarchical(n, 4);
  const partition::DistributedBlock block(cfg, w, shards, plan, topo);
  util::Rng rng(1);
  model::Tensor x(cfg.prompt_len, cfg.embed_dim);
  x.random_init(rng, 1.0f);
  partition::CommRecord comm;
  (void)block.forward(x, 0, nullptr, 0, &comm);

  // CommRecord counts elements; the timed report counts bytes at
  // act_bytes = 1 B per element.
  EXPECT_EQ(rep.traffic.c2c, comm.total_hop_elems);
}

TEST(TimedSim, TracerTimelineCoversAllCategories) {
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const auto plan = PartitionPlan::create(cfg, 8);
  sim::Tracer tracer;
  (void)TimedBlockSimulation(default_sys()).run(plan, Mode::prompt, &tracer);
  EXPECT_GT(tracer.total(sim::Category::compute), 0u);
  EXPECT_GT(tracer.total_bytes(sim::Category::chip_to_chip), 0u);
  EXPECT_GT(tracer.total_bytes(sim::Category::dma_l3_l2), 0u);  // prefetch spans
  EXPECT_GT(tracer.spans().size(), 50u);
}

TEST(TimedSim, FlatTopologySlowerAtScale) {
  const auto cfg = TransformerConfig::tiny_llama_scaled(64);
  const auto plan = PartitionPlan::create(cfg, 64);
  SystemConfig flat = default_sys();
  flat.flat_topology = true;
  const auto r_flat = TimedBlockSimulation(flat).run(plan, Mode::prompt);
  const auto r_hier = TimedBlockSimulation(default_sys()).run(plan, Mode::prompt);
  EXPECT_GT(r_flat.block_cycles, r_hier.block_cycles);
  EXPECT_GT(r_flat.breakdown.c2c, r_hier.breakdown.c2c);
}

TEST(TimedSim, TCompPerChipPositiveAndBounded) {
  const auto rep = run_default(TransformerConfig::tiny_llama_42m(), 8, Mode::prompt);
  ASSERT_EQ(rep.t_comp.size(), 8u);
  for (const Cycles t : rep.t_comp) {
    EXPECT_GT(t, 0u);
    EXPECT_LE(t, rep.block_cycles);
  }
}

// --- energy model --------------------------------------------------------

TEST(Energy, EquationIdentity) {
  // E = N_C2C*E_C2C + sum_j [P*T_comp + N_L3*E_L3 + N_L2*E_L2] — verify
  // against a hand-computed report.
  RunReport rep;
  rep.t_comp = {500000, 250000};  // cycles at 500 MHz -> 1 ms, 0.5 ms
  rep.traffic.l3_l2 = 1000000;
  rep.traffic.l2_l1 = 2000000;
  rep.traffic.c2c = 3000;
  const energy::EnergyModel em(chip::ChipConfig::siracusa(), noc::LinkConfig{});
  const auto e = em.compute(rep);
  // Core: 104 mW * 1.5 ms = 0.156 mJ = 1.56e8 pJ.
  EXPECT_NEAR(e.core, 1.56e8, 1e3);
  EXPECT_DOUBLE_EQ(e.l3, 1e8);   // 1e6 B * 100 pJ
  EXPECT_DOUBLE_EQ(e.l2, 4e6);   // 2e6 B * 2 pJ
  EXPECT_DOUBLE_EQ(e.c2c, 3e5);  // 3e3 B * 100 pJ
  EXPECT_NEAR(e.total(), 1.56e8 + 1e8 + 4e6 + 3e5, 1e3);
}

TEST(Energy, EdpIsEnergyTimesDelay) {
  const energy::EnergyModel em(chip::ChipConfig::siracusa(), noc::LinkConfig{});
  energy::EnergyBreakdown e;
  e.core = 1e9;  // 1 mJ
  // 500k cycles = 1 ms -> EDP = 1 mJ*ms.
  EXPECT_DOUBLE_EQ(em.edp_mj_ms(e, 500000), 1.0);
}

TEST(Energy, EightChipArSimilarEnergyToSingleChip) {
  // Paper abstract: similar energy per inference at 8 chips, EDP
  // improvement ~ speedup.
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const energy::EnergyModel em(chip::ChipConfig::siracusa(), noc::LinkConfig{});
  const auto r1 = run_default(cfg, 1, Mode::autoregressive);
  const auto r8 = run_default(cfg, 8, Mode::autoregressive);
  const double e1 = em.compute(r1).total_mj();
  const double e8 = em.compute(r8).total_mj();
  EXPECT_NEAR(e8 / e1, 1.0, 0.1);      // "similar energy"
  EXPECT_LT(e8, e1);                   // slightly lower (Fig. 5a)
}

TEST(Energy, FullyResidentCutsEnergy) {
  // Paper Sec. V-C: at 32+ chips double-buffering is no longer required,
  // "resulting in a further energy reduction" (Fig. 5a).
  const auto cfg = TransformerConfig::tiny_llama_scaled(64);
  const energy::EnergyModel em(chip::ChipConfig::siracusa(), noc::LinkConfig{});
  const auto r16 = run_default(cfg, 16, Mode::autoregressive);
  const auto r32 = run_default(cfg, 32, Mode::autoregressive);
  EXPECT_LT(em.compute(r32).total_mj(), em.compute(r16).total_mj());
}

TEST(Energy, MobileBertFourChipsSlightlyMoreEnergy)
{
  // Paper Fig. 5c: "using 4 chips results in a slight increase in
  // inference energy" from kernel-utilization loss.
  const auto cfg = TransformerConfig::mobile_bert();
  const energy::EnergyModel em(chip::ChipConfig::siracusa(), noc::LinkConfig{});
  const double e1 = em.compute(run_default(cfg, 1, Mode::prompt)).total_mj();
  const double e4 = em.compute(run_default(cfg, 4, Mode::prompt)).total_mj();
  EXPECT_GT(e4, e1);
  EXPECT_LT(e4 / e1, 1.10);  // "slight"
}
