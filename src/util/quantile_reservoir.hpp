#ifndef DISTMCU_UTIL_QUANTILE_RESERVOIR_HPP
#define DISTMCU_UTIL_QUANTILE_RESERVOIR_HPP

#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace distmcu::util {

/// Bounded-memory percentile tracker for the serving engine's
/// queue-delay statistics: exact nearest-rank percentiles while the
/// sample count fits the fixed capacity, then an Algorithm-R uniform
/// reservoir beyond it — O(capacity) memory and O(log capacity +
/// capacity) per insert forever, where the old unbounded sorted vector
/// paid O(n) per insert and O(n) memory over a long serving run.
///
/// Deterministic by construction: replacement indices come from an
/// internal xorshift64* stream seeded by a constant, so the same insert
/// sequence always yields the same percentile snapshots (the engine's
/// replay-stability invariant extends to the SLO stats).
class QuantileReservoir {
 public:
  static constexpr std::size_t kDefaultCapacity = 2048;

  explicit QuantileReservoir(std::size_t capacity = kDefaultCapacity);

  /// Record one sample.
  void insert(Cycles value);

  /// Nearest-rank percentile over the retained sample (exact while
  /// inserted() <= capacity()); `p` in [0, 100]. Returns 0 when empty.
  [[nodiscard]] Cycles percentile(double p) const;

  /// Samples currently retained (= min(inserted, capacity)).
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  /// Samples ever inserted.
  [[nodiscard]] std::uint64_t inserted() const { return inserted_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  [[nodiscard]] std::uint64_t next_random();

  std::size_t capacity_;
  std::uint64_t inserted_ = 0;
  std::uint64_t rng_state_;
  std::vector<Cycles> sorted_;  // retained sample, kept sorted
};

}  // namespace distmcu::util

#endif  // DISTMCU_UTIL_QUANTILE_RESERVOIR_HPP
