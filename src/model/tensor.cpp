#include "model/tensor.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace distmcu::model {

Tensor::Tensor(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0f) {
  DISTMCU_CHECK(rows > 0 && cols > 0, "Tensor dimensions must be positive");
}

float& Tensor::at(int r, int c) {
  return data_[static_cast<std::size_t>(r) * cols_ + static_cast<std::size_t>(c)];
}

float Tensor::at(int r, int c) const {
  return data_[static_cast<std::size_t>(r) * cols_ + static_cast<std::size_t>(c)];
}

std::span<float> Tensor::row(int r) {
  return std::span<float>(data_).subspan(static_cast<std::size_t>(r) * cols_,
                                         static_cast<std::size_t>(cols_));
}

std::span<const float> Tensor::row(int r) const {
  return std::span<const float>(data_).subspan(static_cast<std::size_t>(r) * cols_,
                                               static_cast<std::size_t>(cols_));
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Tensor::random_init(util::Rng& rng, float scale) {
  for (float& v : data_) v = rng.uniform(-scale, scale);
}

Tensor Tensor::slice_cols(int c0, int c1) const {
  DISTMCU_CHECK(0 <= c0 && c0 < c1 && c1 <= cols_, "Tensor::slice_cols: bad range");
  Tensor out(rows_, c1 - c0);
  for (int r = 0; r < rows_; ++r) {
    for (int c = c0; c < c1; ++c) out.at(r, c - c0) = at(r, c);
  }
  return out;
}

Tensor Tensor::slice_rows(int r0, int r1) const {
  DISTMCU_CHECK(0 <= r0 && r0 < r1 && r1 <= rows_, "Tensor::slice_rows: bad range");
  Tensor out(r1 - r0, cols_);
  for (int r = r0; r < r1; ++r) {
    for (int c = 0; c < cols_; ++c) out.at(r - r0, c) = at(r, c);
  }
  return out;
}

float Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  DISTMCU_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "max_abs_diff: shape mismatch");
  float mx = 0.0f;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    mx = std::max(mx, std::fabs(a.data_[i] - b.data_[i]));
  }
  return mx;
}

}  // namespace distmcu::model
