// Unit tests for the runtime::Scheduler policies: pure ranking checks
// on synthetic queue snapshots (FIFO order, priority classes with
// starvation aging, EDF bands with the feasibility split), the factory,
// and the engine-side pluggability contract (a custom policy reorders
// admission; an out-of-range pick is rejected, not followed).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "runtime/batched_engine.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/scheduler.hpp"
#include "util/check.hpp"

using namespace distmcu;
using runtime::EdfScheduler;
using runtime::FifoScheduler;
using runtime::kNoDeadline;
using runtime::PriorityScheduler;
using runtime::Scheduler;

namespace {

/// Shorthand: candidates listed out of submit order on purpose, so the
/// policies must rank rather than trust positions.
Scheduler::Candidate cand(int seq, int priority = 0,
                          Cycles deadline_at = kNoDeadline,
                          Cycles submitted_at = 0, Cycles estimated_cost = 0) {
  Scheduler::Candidate c;
  c.id = seq;
  c.submit_seq = seq;
  c.priority = priority;
  c.deadline_at = deadline_at;
  c.submitted_at = submitted_at;
  c.estimated_cost = estimated_cost;
  return c;
}

}  // namespace

TEST(FifoSchedulerTest, PicksLowestSubmitSeqWhateverTheQueueOrder) {
  const FifoScheduler fifo;
  const std::vector<Scheduler::Candidate> queue{cand(7), cand(2), cand(5)};
  EXPECT_EQ(fifo.pick(queue, 0), 1u);
  EXPECT_EQ(fifo.pick({cand(3)}, 123), 0u);
  EXPECT_STREQ(fifo.name(), "fifo");
}

TEST(PrioritySchedulerTest, PicksMostUrgentClassAndTiesFifo) {
  const PriorityScheduler prio;
  // Class 0 beats class 2 regardless of submit order; within a class the
  // earliest submit wins.
  EXPECT_EQ(prio.pick({cand(0, 2), cand(1, 0), cand(2, 0)}, 0), 1u);
  EXPECT_EQ(prio.pick({cand(5, 1), cand(3, 1), cand(4, 1)}, 0), 1u);
  // Negative classes are allowed (more urgent than 0).
  EXPECT_EQ(prio.pick({cand(0, 0), cand(1, -1)}, 0), 1u);
  EXPECT_STREQ(prio.name(), "priority");
}

TEST(PrioritySchedulerTest, AgingPromotesStarvedRequests) {
  const PriorityScheduler prio(PriorityScheduler::Options{.aging_cycles = 100});
  // The class-3 request submitted at 0 has waited 350 cycles at now=350:
  // three full aging periods drop it to effective class 0, where the
  // FIFO tie-break (earlier submit) beats the fresh class-0 arrival.
  const auto old_low = cand(0, 3, kNoDeadline, /*submitted_at=*/0);
  const auto fresh_high = cand(9, 0, kNoDeadline, /*submitted_at=*/350);
  EXPECT_EQ(prio.pick({fresh_high, old_low}, 350), 1u);
  // Two periods in, it is still effective class 1 and loses.
  EXPECT_EQ(prio.pick({fresh_high, old_low}, 250), 0u);
}

TEST(PrioritySchedulerTest, AgingDisabledKeepsStaticClasses) {
  const PriorityScheduler prio(PriorityScheduler::Options{.aging_cycles = 0});
  const auto old_low = cand(0, 3, kNoDeadline, 0);
  const auto fresh_high = cand(9, 0, kNoDeadline, 1'000'000);
  // However long the class-3 request waits, the static class wins.
  EXPECT_EQ(prio.pick({old_low, fresh_high}, 1'000'000'000), 1u);
}

TEST(EdfSchedulerTest, PicksEarliestFeasibleDeadline) {
  const EdfScheduler edf;
  EXPECT_EQ(edf.pick({cand(0, 0, 900), cand(1, 0, 500), cand(2, 0, 700)}, 0),
            1u);
  // Deadline ties resolve in submit order.
  EXPECT_EQ(edf.pick({cand(4, 0, 500), cand(2, 0, 500)}, 0), 1u);
  EXPECT_STREQ(edf.name(), "edf");
}

TEST(EdfSchedulerTest, BestEffortGoesLastAndStaysFifo) {
  const EdfScheduler edf;
  // A no-deadline request never displaces a deadline request, however
  // late it was submitted.
  EXPECT_EQ(edf.pick({cand(0), cand(1, 0, 10'000)}, 0), 1u);
  // All best-effort: plain FIFO.
  EXPECT_EQ(edf.pick({cand(3), cand(1), cand(2)}, 0), 1u);
}

TEST(EdfSchedulerTest, InfeasibleDeadlineDemotedBehindFeasible) {
  const EdfScheduler edf;
  // The earlier deadline (100) cannot be met any more (now + cost > 100),
  // so the later-but-feasible deadline is admitted first: spending the
  // slot on a lost cause would convert a second request into a miss.
  const auto lost = cand(0, 0, /*deadline_at=*/100, 0, /*cost=*/60);
  const auto feasible = cand(1, 0, /*deadline_at=*/900, 0, /*cost=*/500);
  EXPECT_EQ(edf.pick({lost, feasible}, /*now=*/50), 1u);
  // Both feasible: the earlier deadline wins again.
  EXPECT_EQ(edf.pick({lost, feasible}, /*now=*/0), 0u);
  // Lost causes still outrank best-effort.
  EXPECT_EQ(edf.pick({cand(2), lost}, /*now=*/50), 1u);
}

TEST(SchedulerFactory, BuildsEveryPolicyWithMatchingName) {
  for (const auto policy :
       {runtime::SchedulePolicy::fifo, runtime::SchedulePolicy::priority,
        runtime::SchedulePolicy::edf}) {
    const auto sched = runtime::make_scheduler(policy);
    ASSERT_NE(sched, nullptr);
    EXPECT_STREQ(sched->name(), runtime::policy_name(policy));
  }
}

// --- engine-side pluggability ---------------------------------------------

namespace {

model::TransformerConfig sched_cfg() {
  model::TransformerConfig cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.embed_dim = 32;
  cfg.ffn_dim = 64;
  cfg.num_heads = 4;
  cfg.head_dim = 8;
  cfg.num_layers = 2;
  cfg.vocab_size = 100;
  cfg.ar_context = 24;
  cfg.prompt_len = 6;
  cfg.validate();
  return cfg;
}

/// Admits the NEWEST submit first — nonsensical for serving, perfect for
/// proving the engine honors an arbitrary user policy.
class LifoScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "lifo"; }
  [[nodiscard]] std::size_t pick(const std::vector<Candidate>& queue,
                                 Cycles /*now*/) const override {
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue.size(); ++i) {
      if (queue[i].submit_seq > queue[best].submit_seq) best = i;
    }
    return best;
  }
};

class OutOfRangeScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "broken"; }
  [[nodiscard]] std::size_t pick(const std::vector<Candidate>& queue,
                                 Cycles /*now*/) const override {
    return queue.size();  // one past the end
  }
};

}  // namespace

TEST(SchedulerPluggability, CustomPolicyControlsAdmissionOrder) {
  const runtime::InferenceSession session(sched_cfg(), 2);
  runtime::BatchedEngine engine(
      session, {.max_batch = 1,
                .max_pending = 8,
                .scheduler = std::make_shared<LifoScheduler>()});
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(engine.submit({1 + i, 2}, 2));
  const auto results = engine.run_to_completion();
  ASSERT_EQ(results.size(), 3u);
  // Single slot: completion order IS admission order, and LIFO admits
  // the newest queued submit whenever the slot frees.
  EXPECT_EQ(results[0].id, 2);
  EXPECT_EQ(results[1].id, 1);
  EXPECT_EQ(results[2].id, 0);
  EXPECT_STREQ(engine.scheduler().name(), "lifo");
}

TEST(SchedulerPluggability, OutOfRangePickIsRejected) {
  const runtime::InferenceSession session(sched_cfg(), 2);
  runtime::BatchedEngine engine(
      session, {.max_batch = 1,
                .max_pending = 8,
                .scheduler = std::make_shared<OutOfRangeScheduler>()});
  ASSERT_TRUE(engine.submit({1, 2}, 1));
  EXPECT_THROW((void)engine.step(), Error);
}

TEST(SchedulerPluggability, NullSchedulerOptionMeansFifo) {
  const runtime::InferenceSession session(sched_cfg(), 2);
  runtime::BatchedEngine engine(session, {.max_batch = 1, .max_pending = 8});
  EXPECT_STREQ(engine.scheduler().name(), "fifo");
}

// --- preemption policy ------------------------------------------------------

namespace {

runtime::PreemptionPolicy::Victim victim(int id, Cycles deadline_at,
                                         Cycles remaining_cost,
                                         int generated = 0,
                                         bool borrowed = false,
                                         int times_evicted = 0) {
  runtime::PreemptionPolicy::Victim v;
  v.id = id;
  v.deadline_at = deadline_at;
  v.remaining_cost = remaining_cost;
  v.generated = generated;
  v.new_tokens = 16;
  v.borrowed = borrowed;
  v.times_evicted = times_evicted;
  return v;
}

}  // namespace

TEST(DeadlineAwarePreemption, BorrowedSlotsGoFirstThenBestEffort) {
  const runtime::DeadlineAwarePreemption pol;
  const auto starved = cand(9, 0, /*deadline_at=*/1'000, 0, /*cost=*/500);
  // Band order: a watermark-borrowed slot repays another tenant's
  // reserve, so it goes first; best-effort next; a lost deadline last
  // among the unprotected.
  EXPECT_EQ(pol.pick_victim({victim(0, kNoDeadline, 100),
                             victim(1, kNoDeadline, 100, 0, /*borrowed=*/true),
                             victim(2, /*deadline_at=*/10, 100)},
                            starved, /*now=*/100),
            1);
  EXPECT_EQ(pol.pick_victim(
                {victim(0, kNoDeadline, 100), victim(2, /*deadline_at=*/10, 100)},
                starved, 100),
            0);
  EXPECT_STREQ(pol.name(), "deadline_aware");
}

TEST(DeadlineAwarePreemption, FeasibleEarlierDeadlineIsProtected) {
  const runtime::DeadlineAwarePreemption pol;
  const auto starved = cand(9, 0, 1'000, 0, 500);
  // Still-feasible (100 + 100 <= 800) and no later than the starved
  // deadline: evicting it would trade one attainable deadline for an
  // equal-or-worse one — the policy declines outright.
  EXPECT_EQ(pol.pick_victim({victim(0, 800, 100)}, starved, /*now=*/100), -1);
  // Feasible but LATER than the starved deadline: evictable (most slack
  // sacrificed).
  EXPECT_EQ(pol.pick_victim({victim(0, 2'000, 100)}, starved, 100), 0);
  // Infeasible (100 + 900 > 800): already lost, evictable.
  EXPECT_EQ(pol.pick_victim({victim(0, 800, 900)}, starved, 100), 0);
}

TEST(DeadlineAwarePreemption, LatestFeasibleDeadlineSacrificedFirst) {
  const runtime::DeadlineAwarePreemption pol;
  const auto starved = cand(9, 0, 1'000, 0, 500);
  EXPECT_EQ(pol.pick_victim({victim(0, 2'000, 100), victim(1, 3'000, 100)},
                            starved, 100),
            1);
  // Same band and deadline: least decode progress (smallest checkpoint)
  // first, then lowest id.
  EXPECT_EQ(pol.pick_victim({victim(0, 2'000, 100, /*generated=*/5),
                             victim(1, 2'000, 100, /*generated=*/2)},
                            starved, 100),
            1);
  EXPECT_EQ(pol.pick_victim(
                {victim(1, kNoDeadline, 100), victim(0, kNoDeadline, 100)},
                starved, 100),
            1);
}

TEST(DeadlineAwarePreemption, MaxEvictionsBoundsThrash) {
  const runtime::DeadlineAwarePreemption pol(
      runtime::DeadlineAwarePreemption::Options{.max_evictions = 1});
  const auto starved = cand(9, 0, 1'000, 0, 500);
  EXPECT_EQ(pol.pick_victim(
                {victim(0, kNoDeadline, 100, 0, false, /*times_evicted=*/1)},
                starved, 100),
            -1);
  EXPECT_EQ(pol.pick_victim({victim(0, kNoDeadline, 100, 0, false, 1),
                             victim(1, kNoDeadline, 100)},
                            starved, 100),
            1);
}
