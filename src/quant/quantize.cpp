#include "quant/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace distmcu::quant {

QuantParams QuantParams::from_absmax(float absmax, int bits) {
  DISTMCU_CHECK(bits == 8 || bits == 16, "QuantParams: bits must be 8 or 16");
  const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
  QuantParams p;
  p.scale = absmax > 0.0f ? absmax / qmax : 1.0f;
  return p;
}

QuantParams choose_params(std::span<const float> data, int bits) {
  float absmax = 0.0f;
  for (const float v : data) absmax = std::max(absmax, std::fabs(v));
  return QuantParams::from_absmax(absmax, bits);
}

namespace {
template <typename Int>
Int saturate_round(float v, float scale) {
  const float scaled = v / scale;
  const auto lo = static_cast<float>(std::numeric_limits<Int>::min());
  const auto hi = static_cast<float>(std::numeric_limits<Int>::max());
  return static_cast<Int>(std::lrintf(std::clamp(scaled, lo, hi)));
}
}  // namespace

std::vector<std::int8_t> quantize_i8(std::span<const float> data, const QuantParams& p) {
  std::vector<std::int8_t> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = saturate_round<std::int8_t>(data[i], p.scale);
  }
  return out;
}

std::vector<std::int16_t> quantize_i16(std::span<const float> data,
                                       const QuantParams& p) {
  std::vector<std::int16_t> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = saturate_round<std::int16_t>(data[i], p.scale);
  }
  return out;
}

void dequantize(std::span<const std::int8_t> q, const QuantParams& p,
                std::span<float> out) {
  DISTMCU_CHECK(q.size() == out.size(), "dequantize: size mismatch");
  for (std::size_t i = 0; i < q.size(); ++i) {
    out[i] = static_cast<float>(q[i]) * p.scale;
  }
}

void dequantize(std::span<const std::int16_t> q, const QuantParams& p,
                std::span<float> out) {
  DISTMCU_CHECK(q.size() == out.size(), "dequantize: size mismatch");
  for (std::size_t i = 0; i < q.size(); ++i) {
    out[i] = static_cast<float>(q[i]) * p.scale;
  }
}

float max_quant_error(const QuantParams& p) { return 0.5f * p.scale; }

}  // namespace distmcu::quant
