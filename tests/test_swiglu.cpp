// Tests for the SwiGLU FFN extension: the gated three-matrix FFN of the
// real Llama family must shard along F exactly like the plain MLP —
// numerically equivalent to the reference, with the extra gate matrix
// accounted in every byte count.
#include <gtest/gtest.h>

#include "model/reference_model.hpp"
#include "noc/topology.hpp"
#include "partition/distributed_block.hpp"
#include "partition/memory_planner.hpp"
#include "partition/plan.hpp"
#include "partition/sharder.hpp"
#include "runtime/block_program.hpp"
#include "runtime/timed_simulation.hpp"
#include "util/rng.hpp"

using namespace distmcu;
using model::FfnKind;
using model::Tensor;
using model::TransformerConfig;
using model::Weights;

namespace {
TransformerConfig swiglu_config() {
  TransformerConfig cfg = TransformerConfig::tiny_llama_42m();
  cfg.name = "tinyllama-swiglu-test";
  cfg.embed_dim = 48;
  cfg.ffn_dim = 96;
  cfg.num_heads = 4;
  cfg.head_dim = 12;
  cfg.num_layers = 2;
  cfg.ar_context = 16;
  cfg.prompt_len = 5;
  cfg.ffn = FfnKind::swiglu;
  cfg.act = model::Activation::silu;
  cfg.pre_norm = true;  // the authentic Llama block
  cfg.validate();
  return cfg;
}
}  // namespace

TEST(Swiglu, BlockWeightElemsCountGate) {
  auto cfg = TransformerConfig::tiny_llama_42m();
  const auto mlp_elems = cfg.block_weight_elems();
  cfg.ffn = FfnKind::swiglu;
  // + one E x F matrix.
  EXPECT_EQ(cfg.block_weight_elems(), mlp_elems + 512u * 2048u);
}

TEST(Swiglu, WeightsAllocateGateOnlyWhenEnabled) {
  const auto cfg = swiglu_config();
  const Weights w(cfg, 3);
  EXPECT_EQ(w.layer(0).w3.size(),
            static_cast<std::size_t>(cfg.embed_dim * cfg.ffn_dim));
  auto mlp_cfg = cfg;
  mlp_cfg.ffn = FfnKind::mlp;
  const Weights wm(mlp_cfg, 3);
  EXPECT_EQ(wm.layer(0).w3.size(), 0u);
}

TEST(Swiglu, GateChangesTheOutput) {
  const auto cfg = swiglu_config();
  auto mlp_cfg = cfg;
  mlp_cfg.ffn = FfnKind::mlp;
  const Weights w(cfg, 5);
  const Weights wm(mlp_cfg, 5);
  const model::ReferenceModel ref(cfg, w);
  const model::ReferenceModel ref_m(mlp_cfg, wm);
  util::Rng rng(9);
  Tensor x(cfg.prompt_len, cfg.embed_dim);
  x.random_init(rng, 1.0f);
  EXPECT_GT(Tensor::max_abs_diff(ref.block_prompt(x, 0), ref_m.block_prompt(x, 0)),
            1e-4f);
}

class SwigluDistributed : public ::testing::TestWithParam<int> {};

TEST_P(SwigluDistributed, MatchesReferenceAcrossChips) {
  const int n = GetParam();
  const auto cfg = swiglu_config();
  const Weights w(cfg, 11);
  const model::ReferenceModel ref(cfg, w);
  const auto plan = partition::PartitionPlan::create(cfg, n);
  const partition::ShardedWeights shards(w, plan);
  const auto topo = noc::Topology::hierarchical(n, 4);
  const partition::DistributedBlock block(cfg, w, shards, plan, topo);

  util::Rng rng(13);
  Tensor x(cfg.prompt_len, cfg.embed_dim);
  x.random_init(rng, 1.0f);
  const Tensor y_ref = ref.block_prompt(x, 0);
  const Tensor y = block.forward(x, 0, nullptr, 0);
  EXPECT_LE(Tensor::max_abs_diff(y_ref, y), 5e-4f) << "chips=" << n;
}

INSTANTIATE_TEST_SUITE_P(ChipCounts, SwigluDistributed, ::testing::Values(1, 2, 3, 4));

TEST(Swiglu, ShardsSumExactlyWithGate) {
  const auto cfg = swiglu_config();
  const Weights w(cfg, 17);
  for (int n : {1, 2, 4}) {
    const auto plan = partition::PartitionPlan::create(cfg, n);
    const partition::ShardedWeights shards(w, plan);
    EXPECT_EQ(shards.layer_elem_sum(0), cfg.block_weight_elems()) << "n=" << n;
  }
}

TEST(Swiglu, BlockProgramEmitsGateOps) {
  const auto cfg = swiglu_config();
  const auto plan = partition::PartitionPlan::create(cfg, 2);
  const auto prog = runtime::build_block_program(plan, partition::PrecisionConfig{},
                                                 model::Mode::prompt);
  bool saw_w3 = false, saw_mul = false;
  for (const auto& op : prog.ffn_phase[0]) {
    if (op.label == "ffn_w3") saw_w3 = true;
    if (op.label == "ffn_gate_mul") saw_mul = true;
  }
  EXPECT_TRUE(saw_w3);
  EXPECT_TRUE(saw_mul);
  // The op weight bytes must still match the plan exactly (the builder
  // asserts this internally; double-check from outside).
  EXPECT_EQ(prog.chip_weight_bytes(0), plan.chip_block_weight_elems(0) * 2);
}

TEST(Swiglu, ResidencyShiftsWithTheExtraMatrix) {
  // TinyLlama with SwiGLU at F=2048 adds 2 MiB per block: at 8 chips the
  // double-buffered regime no longer fits and the deployment streams —
  // the planner must notice.
  auto cfg = TransformerConfig::tiny_llama_42m();
  cfg.ffn = FfnKind::swiglu;
  const auto plan = partition::PartitionPlan::create(cfg, 8);
  const partition::MemoryPlanner planner(chip::ChipConfig::siracusa(),
                                         partition::PrecisionConfig{});
  const auto mp = planner.plan(plan, model::Mode::autoregressive);
  EXPECT_EQ(mp.residency, partition::Residency::streamed);
  // 16 chips restore the double-buffered regime.
  const auto plan16 = partition::PartitionPlan::create(
      TransformerConfig::tiny_llama_scaled(16), 16);
  auto cfg16 = TransformerConfig::tiny_llama_scaled(16);
  cfg16.ffn = FfnKind::swiglu;
  const auto mp16 = planner.plan(partition::PartitionPlan::create(cfg16, 16),
                                 model::Mode::autoregressive);
  EXPECT_EQ(mp16.residency, partition::Residency::double_buffered);
}

TEST(Swiglu, TimedSimulationRuns) {
  auto cfg = TransformerConfig::tiny_llama_42m();
  cfg.ffn = FfnKind::swiglu;
  const auto plan = partition::PartitionPlan::create(cfg, 8);
  const runtime::TimedBlockSimulation sim(runtime::SystemConfig::siracusa_system());
  const auto rep = sim.run(plan, model::Mode::autoregressive);
  EXPECT_EQ(rep.breakdown.total(), rep.block_cycles);
  // The gate adds compute and traffic relative to the plain MLP.
  const auto rep_mlp =
      sim.run(partition::PartitionPlan::create(TransformerConfig::tiny_llama_42m(), 8),
              model::Mode::autoregressive);
  EXPECT_GT(rep.block_cycles, rep_mlp.block_cycles);
}
