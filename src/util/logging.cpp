#include "util/logging.hpp"

#include <array>
#include <iostream>

namespace distmcu::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  static constexpr std::array<const char*, 4> names{"DEBUG", "INFO", "WARN", "ERROR"};
  const auto idx = static_cast<std::size_t>(level);
  if (idx >= names.size()) return;
  std::cerr << "[distmcu:" << names[idx] << "] " << message << '\n';
}

}  // namespace distmcu::util
