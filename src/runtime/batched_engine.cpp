#include "runtime/batched_engine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace distmcu::runtime {

namespace {

/// Re-check one mode's memory plan with max_batch KV sets resident: the
/// memory planner validated a single request's KV against the
/// worst-case chip's L2, so scale its KV term by max_batch.
void check_pool_fits(const partition::MemoryPlan& mp, int max_batch,
                     const char* mode) {
  const Bytes extra_kv = mp.kv_cache_bytes * static_cast<Bytes>(max_batch - 1);
  util::check_plan(
      mp.need() + extra_kv <= mp.l2_usable,
      "BatchedEngine: " + std::to_string(max_batch) +
          " pooled KV-cache sets need " +
          util::format_bytes(mp.need() + extra_kv) + " of L2 in " + mode +
          " mode but only " + util::format_bytes(mp.l2_usable) +
          " is usable; lower max_batch or ar_context");
}

/// Validate the options and the pooled-KV fit for both serving phases
/// BEFORE any cache tensors are allocated; returns max_batch so it can
/// run in the constructor's init list ahead of the pool member.
int checked_pool_slots(const BatchedEngine::Options& opts,
                       const BlockResult& prompt_block,
                       const BlockResult& ar_block) {
  util::check(opts.max_batch > 0, "BatchedEngine: max_batch must be positive");
  util::check(opts.max_pending >= 0, "BatchedEngine: max_pending must be >= 0");
  check_pool_fits(prompt_block.memory, opts.max_batch, "prompt");
  check_pool_fits(ar_block.memory, opts.max_batch, "autoregressive");
  return opts.max_batch;
}

}  // namespace

BatchedEngine::BatchedEngine(const InferenceSession& session, Options opts,
                             sim::Tracer* tracer)
    : session_(session),
      opts_(opts),
      tracer_(tracer),
      prompt_block_(session.run_block(model::Mode::prompt)),
      ar_block_(session.run_block(model::Mode::autoregressive)),
      kv_pool_(checked_pool_slots(opts, prompt_block_, ar_block_),
               [&session] {
                 return session.block_executor().make_chip_caches(
                     session.config().ar_context);
               }),
      kv_set_bytes_(
          kv_pool_.set_capacity_bytes(session.system().precision.kv_bytes)),
      // Size the arena for max_batch aligned slot reservations exactly.
      kv_arena_("l2.kv_pool",
                static_cast<Bytes>(opts.max_batch) *
                    mem::Arena::align_up(kv_set_bytes_,
                                         mem::Arena::kDefaultAlignment)),
      kv_slots_(kv_arena_, "kv_set", opts.max_batch, kv_set_bytes_) {
  const auto layers = static_cast<Cycles>(session_.config().num_layers);

  prompt_cycles_ = prompt_block_.report.block_cycles * layers;
  prompt_energy_mj_ = prompt_block_.energy_mj() * static_cast<double>(layers);

  // Decode-step decomposition: the L3->L2 portion is block-weight
  // streaming, fetched once per layer no matter how many requests are in
  // the batch; everything else scales with the batch.
  ar_shared_cycles_ = ar_block_.report.breakdown.dma_l3_l2 * layers;
  ar_per_req_cycles_ =
      (ar_block_.report.block_cycles - ar_block_.report.breakdown.dma_l3_l2) *
      layers;
  ar_shared_energy_mj_ =
      util::pj_to_mj(ar_block_.energy.l3) * static_cast<double>(layers);
  ar_per_req_energy_mj_ =
      util::pj_to_mj(ar_block_.energy.core + ar_block_.energy.l2 +
                     ar_block_.energy.c2c) *
      static_cast<double>(layers);
}

std::optional<RequestId> BatchedEngine::submit(std::vector<int> prompt,
                                               int new_tokens) {
  util::check(!prompt.empty(), "submit: prompt must not be empty");
  util::check(new_tokens >= 0, "submit: new_tokens must be >= 0");
  util::check(static_cast<int>(prompt.size()) + new_tokens <=
                  session_.config().ar_context,
              "submit: sequence exceeds the model's context length");
  // Prefill cost and the construction-time L2 fit were both derived from
  // the deployment's static prompt shape, so longer prompts would be
  // silently under-charged and under-validated.
  util::check(static_cast<int>(prompt.size()) <= session_.config().prompt_len,
              "submit: prompt exceeds the deployment's prefill length (" +
                  std::to_string(session_.config().prompt_len) + ")");

  if (static_cast<int>(pending_.size()) >= opts_.max_pending) {
    ++stats_.rejected;
    return std::nullopt;
  }
  Request r;
  r.id = next_id_++;
  r.prompt = std::move(prompt);
  r.new_tokens = new_tokens;
  const RequestId id = r.id;
  pending_.push_back(std::move(r));
  return id;
}

void BatchedEngine::charge(Request& r, Cycles cycles, double energy_mj,
                           sim::Category cat, const char* label) {
  r.cycles += cycles;
  r.energy_mj += energy_mj;
  if (tracer_ != nullptr) {
    tracer_->set_request(r.id);
    tracer_->record(0, cat, trace_cursor_, trace_cursor_ + cycles, 0, label);
    tracer_->set_request(sim::kNoRequest);
    trace_cursor_ += cycles;
  }
}

void BatchedEngine::finish(Request& r, int step_idx,
                           std::vector<std::size_t>& finished_now) {
  kv_slots_.release(r.slot);
  r.slot = -1;
  RequestResult out;
  out.id = r.id;
  out.admitted_step = r.admitted_step;
  out.finished_step = step_idx;
  out.admitted_at = r.admitted_at;
  // finished_at is stamped at the end of the step, once the step's full
  // duration is known.
  out.gen.tokens = std::move(r.tokens);
  out.gen.generated = r.generated;
  out.gen.total_cycles = r.cycles;
  out.gen.total_energy_mj = r.energy_mj;
  finished_now.push_back(finished_.size());
  finished_.push_back(std::move(out));
  ++stats_.completed;
}

void BatchedEngine::admit_pending(int step_idx, Cycles& step_cycles,
                                  double& step_energy,
                                  std::vector<std::size_t>& finished_now) {
  const auto& emb = session_.embedding();
  const auto& block = session_.block_executor();
  const int layers = session_.config().num_layers;

  while (!pending_.empty()) {
    const auto slot = kv_slots_.acquire();
    if (!slot.has_value()) break;
    Request r = std::move(pending_.front());
    pending_.pop_front();
    r.slot = *slot;
    r.admitted_step = step_idx;
    r.admitted_at = stats_.total_cycles;  // engine timeline at step start
    kv_pool_.reset_slot(r.slot);

    model::Tensor h = emb.lookup(r.prompt);
    for (int l = 0; l < layers; ++l) {
      h = block.forward(h, l, &kv_pool_.slot(r.slot), 0);
    }
    r.tokens = r.prompt;
    r.pos = static_cast<int>(r.prompt.size());
    charge(r, prompt_cycles_, prompt_energy_mj_, sim::Category::compute,
           "prefill");
    step_cycles += prompt_cycles_;
    step_energy += prompt_energy_mj_;

    if (r.new_tokens == 0) {
      finish(r, step_idx, finished_now);
    } else {
      r.next = emb.greedy_next(h);
      active_.push_back(std::move(r));
    }
  }
}

bool BatchedEngine::step() {
  if (pending_.empty() && active_.empty()) return false;
  const int step_idx = stats_.steps;
  Cycles step_cycles = 0;
  double step_energy = 0.0;
  std::vector<std::size_t> finished_now;

  admit_pending(step_idx, step_cycles, step_energy, finished_now);
  stats_.peak_batch =
      std::max(stats_.peak_batch, static_cast<int>(active_.size()));

  const auto& emb = session_.embedding();
  const auto& block = session_.block_executor();
  const int layers = session_.config().num_layers;

  // Emit one token per active request; a request that emits its final
  // token leaves without running another forward, mirroring
  // InferenceSession::generate exactly.
  std::vector<Request> still_active;
  still_active.reserve(active_.size());
  for (auto& r : active_) {
    r.tokens.push_back(r.next);
    ++r.generated;
    ++stats_.total_generated;
    if (r.generated == r.new_tokens) {
      finish(r, step_idx, finished_now);
      continue;
    }
    model::Tensor x = emb.lookup({r.next});
    for (int l = 0; l < layers; ++l) {
      x = block.forward(x, l, &kv_pool_.slot(r.slot), r.pos);
    }
    r.next = emb.greedy_next(x);
    ++r.pos;
    charge(r, ar_per_req_cycles_, ar_per_req_energy_mj_, sim::Category::compute,
           "decode");
    step_cycles += ar_per_req_cycles_;
    step_energy += ar_per_req_energy_mj_;
    still_active.push_back(std::move(r));
  }
  active_ = std::move(still_active);

  // Shared weight streaming: one pass over the layer weights feeds every
  // request that ran a forward this step. Attribute equal integer shares
  // (remainder cycles to the earliest admitted) so per-request cycles
  // sum to the aggregate exactly.
  if (!active_.empty()) {
    const auto b = static_cast<Cycles>(active_.size());
    const Cycles share = ar_shared_cycles_ / b;
    const Cycles rem = ar_shared_cycles_ % b;
    const double e_share =
        ar_shared_energy_mj_ / static_cast<double>(active_.size());
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const Cycles c = share + (static_cast<Cycles>(i) < rem ? 1 : 0);
      charge(active_[i], c, e_share, sim::Category::dma_l3_l2,
             "weights.shared");
    }
    step_cycles += ar_shared_cycles_;
    step_energy += ar_shared_energy_mj_;
  }

  stats_.total_cycles += step_cycles;
  stats_.total_energy_mj += step_energy;
  ++stats_.steps;
  for (const std::size_t idx : finished_now) {
    finished_[idx].finished_at = stats_.total_cycles;
  }
  return !(pending_.empty() && active_.empty());
}

std::vector<RequestResult> BatchedEngine::run_to_completion() {
  while (step()) {
  }
  return finished_;
}

}  // namespace distmcu::runtime
