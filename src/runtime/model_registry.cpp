#include "runtime/model_registry.hpp"

#include "util/check.hpp"

namespace distmcu::runtime {

ModelId ModelRegistry::add(const DeploymentSpec& spec) {
  spec.validate();
  auto session = std::make_shared<const InferenceSession>(spec);
  const ModelId id = add(*session, spec.deployment_name(), spec.prefill_chunk_tokens,
                         spec.kv_quota, spec.max_resident);
  entries_.back().owned_session = std::move(session);
  return id;
}

ModelId ModelRegistry::add(const InferenceSession& session, std::string name,
                           int prefill_chunk_tokens, int kv_quota,
                           int max_resident) {
  DISTMCU_CHECK(!name.empty(), "ModelRegistry: deployment name must not be empty");
  DISTMCU_CHECK(prefill_chunk_tokens >= 0,
              "ModelRegistry: prefill_chunk_tokens must be >= 0");
  DISTMCU_CHECK(kv_quota >= 0, "ModelRegistry: kv_quota must be >= 0");
  DISTMCU_CHECK(max_resident >= 0, "ModelRegistry: max_resident must be >= 0");
  for (const auto& e : entries_) {
    DISTMCU_CHECK(e.name != name,
                "ModelRegistry: duplicate deployment name '" + name + "'");
  }
  ModelDeployment d;
  d.session = &session;
  d.name = std::move(name);
  d.prefill_chunk_tokens = prefill_chunk_tokens;
  d.kv_quota = kv_quota;
  d.max_resident = max_resident;
  entries_.push_back(std::move(d));
  return static_cast<ModelId>(entries_.size()) - 1;
}

const ModelDeployment& ModelRegistry::entry(ModelId id) const {
  DISTMCU_CHECK(id >= 0 && id < count(), "ModelRegistry: ModelId out of range");
  return entries_[static_cast<std::size_t>(id)];
}

ModelId ModelRegistry::find(const std::string& name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return static_cast<ModelId>(i);
  }
  throw Error("ModelRegistry: no deployment named '" + name + "'");
}

}  // namespace distmcu::runtime
