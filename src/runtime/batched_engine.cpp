#include "runtime/batched_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "analysis/deployment_analyzer.hpp"
#include "util/check.hpp"

namespace distmcu::runtime {

namespace {

/// Re-check one deployment's memory plan with `cap` KV sets resident:
/// the memory planner validated a single request's KV against the
/// worst-case chip's L2 at the platform-native entry width, so swap the
/// plan's single-set KV term for `cap` sets at the deployment's packed
/// width. Native layouts reduce to the historical
/// need() + kv * (cap - 1) check exactly.
void check_pool_fits(const partition::MemoryPlan& mp, int cap, int elem_bits,
                     int native_bits, const char* mode,
                     const std::string& model) {
  const Bytes set_kv = scale_kv_bytes(mp.kv_cache_bytes, elem_bits, native_bits);
  const Bytes resident = mp.need() - mp.kv_cache_bytes +
                         set_kv * static_cast<Bytes>(cap);
  DISTMCU_CHECK_PLAN(
      resident <= mp.l2_usable,
      "BatchedEngine['" + model + "']: " + std::to_string(cap) +
          " pooled KV-cache sets need " + util::format_bytes(resident) +
          " of L2 in " + mode + " mode but only " +
          util::format_bytes(mp.l2_usable) +
          " is usable; lower max_batch or ar_context");
}

/// Page-granular variant: resident KV is bounded by the tenant's cap of
/// pages, not cap whole-context sets, so swap the plan's single-set KV
/// term for the worst page residency.
void check_paged_pool_fits(const partition::MemoryPlan& mp, int cap_pages,
                           Bytes chip_page_bytes, const char* mode,
                           const std::string& model) {
  const Bytes resident = static_cast<Bytes>(cap_pages) * chip_page_bytes;
  DISTMCU_CHECK_PLAN(
      mp.need() - mp.kv_cache_bytes + resident <= mp.l2_usable,
      "BatchedEngine['" + model + "']: " + std::to_string(cap_pages) +
          " resident KV pages need " +
          util::format_bytes(mp.need() - mp.kv_cache_bytes + resident) +
          " of L2 in " + mode + " mode but only " +
          util::format_bytes(mp.l2_usable) +
          " is usable; lower max_batch, kv_page_tokens, or ar_context");
}

/// Effective chunk size: clamped to the deployment's static prompt
/// shape, 0 when chunking is disabled.
int effective_chunk_tokens(int chunk_tokens, int prompt_len) {
  DISTMCU_CHECK(chunk_tokens >= 0,
              "BatchedEngine: prefill_chunk_tokens must be >= 0");
  if (chunk_tokens == 0) return 0;
  return std::min(chunk_tokens, prompt_len);
}

/// One chunk-shaped block measurement per chunk position of the padded
/// static prompt: chunk i processes C rows attending to (i+1)*C cached
/// positions (capped at the full prompt shape).
std::vector<BlockResult> build_chunk_blocks(const InferenceSession& session,
                                            int chunk_tokens) {
  if (chunk_tokens <= 0) return {};
  const int prompt_len = session.config().prompt_len;
  const int n = (prompt_len + chunk_tokens - 1) / chunk_tokens;
  std::vector<int> spans;
  spans.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    spans.push_back(std::min((i + 1) * chunk_tokens, prompt_len));
  }
  return session.run_prompt_chunks(chunk_tokens, spans);
}

/// The effective budget policy: the configured one, or the process-wide
/// static split (policies are stateless, so sharing it is safe).
const KvBudgetPolicy* resolve_budget(const BatchedEngine::MultiOptions& opts) {
  static const StaticSplitPolicy kDefaultBudget;
  return opts.kv_budget != nullptr ? opts.kv_budget.get() : &kDefaultBudget;
}

/// Single-deployment registry backing the legacy (session, Options)
/// constructor: one tenant owning the whole arena.
ModelRegistry single_model_registry(const InferenceSession& session,
                                    const BatchedEngine::Options& opts) {
  ModelRegistry reg;
  const std::string& cfg_name = session.config().name;
  (void)reg.add(session, cfg_name.empty() ? "model" : cfg_name,
                opts.prefill_chunk_tokens, /*kv_quota=*/opts.max_batch,
                /*max_resident=*/opts.max_batch);
  return reg;
}

}  // namespace

BatchedEngine::Tenant BatchedEngine::build_tenant(const ModelDeployment& dep,
                                                  int quota, int cap,
                                                  int page_tokens) {
  DISTMCU_CHECK(dep.session != nullptr,
              "BatchedEngine: registry entry '" + dep.name +
                  "' carries no session");
  const InferenceSession& session = *dep.session;
  Tenant t;
  t.session = dep.session;
  t.owned_session = dep.owned_session;
  t.name = dep.name;
  t.quota = quota;
  t.cap = cap;
  // Per-precision byte accounting: every KV byte count below (sets,
  // pages, fit checks) is scaled from the planner's native width to the
  // deployment's packed entry width.
  t.kv_elem_bits = session.kv_elem_bits();
  const int native_kv_bits =
      static_cast<int>(session.system().precision.kv_bytes) * kBitsPerByte;
  t.chunk_tokens =
      effective_chunk_tokens(dep.prefill_chunk_tokens,
                             session.config().prompt_len);

  // The full prompt shape is only planned and measured in serial mode:
  // chunked serving must stay constructible on deployments whose
  // full-prompt activations cannot fit L2 at all.
  std::optional<BlockResult> prompt_block;
  std::vector<BlockResult> chunk_blocks;
  if (t.chunk_tokens > 0) {
    chunk_blocks = build_chunk_blocks(session, t.chunk_tokens);
  } else {
    prompt_block = session.run_block(model::Mode::prompt);
  }
  const BlockResult ar_block = session.run_block(model::Mode::autoregressive);
  t.chip_kv_bytes = scale_kv_bytes(ar_block.memory.kv_cache_bytes,
                                   t.kv_elem_bits, native_kv_bits);

  const int ctx = session.config().ar_context;
  if (page_tokens > 0) {
    // Paged mode: the per-chip unit of the fit checks becomes one page's
    // share of the full-context KV footprint (rounded up per chip so the
    // check never under-reserves).
    t.page_tokens = std::min(page_tokens, ctx);
    t.chip_page_bytes =
        (t.chip_kv_bytes * static_cast<Bytes>(t.page_tokens) +
         static_cast<Bytes>(ctx) - 1) /
        static_cast<Bytes>(ctx);
  }

  // Validate the pooled-KV fit for both serving phases BEFORE any cache
  // tensors are allocated. With chunking enabled the prompt phase
  // materializes chunk-shaped activations only, so its fit is checked at
  // the chunk shape.
  const auto check_fit = [&](const partition::MemoryPlan& mp,
                             const char* mode) {
    if (page_tokens > 0) {
      check_paged_pool_fits(mp, cap, t.chip_page_bytes, mode, t.name);
    } else {
      check_pool_fits(mp, cap, t.kv_elem_bits, native_kv_bits, mode, t.name);
    }
  };
  if (chunk_blocks.empty()) {
    check_fit(prompt_block->memory, "prompt");
    t.fit_plans.push_back({"prompt", prompt_block->memory});
  } else {
    check_fit(chunk_blocks.front().memory, "chunked-prompt");
    t.fit_plans.push_back({"chunked-prompt", chunk_blocks.front().memory});
  }
  check_fit(ar_block.memory, "autoregressive");
  t.fit_plans.push_back({"autoregressive", ar_block.memory});

  const auto layers = static_cast<Cycles>(session.config().num_layers);

  if (prompt_block.has_value()) {
    t.prompt_cycles = prompt_block->report.block_cycles * layers;
    t.prompt_energy_mj =
        prompt_block->energy_mj() * static_cast<double>(layers);
    t.prompt_stream_cycles =
        prompt_block->report.breakdown.dma_l3_l2 * layers;
  }

  // Decode-step decomposition: the L3->L2 portion is block-weight
  // streaming, fetched once per layer no matter how many requests are in
  // the batch; everything else scales with the batch.
  t.ar_shared_cycles = ar_block.report.breakdown.dma_l3_l2 * layers;
  t.ar_per_req_cycles =
      (ar_block.report.block_cycles - ar_block.report.breakdown.dma_l3_l2) *
      layers;
  t.ar_shared_energy_mj =
      util::pj_to_mj(ar_block.energy.l3) * static_cast<double>(layers);
  t.ar_per_req_energy_mj =
      util::pj_to_mj(ar_block.energy.core + ar_block.energy.l2 +
                     ar_block.energy.c2c) *
      static_cast<double>(layers);
  t.stream_bytes_per_step = ar_block.report.traffic.l3_l2 * layers;

  // Chunk decomposition mirrors the decode one: the chunk's own L3 share
  // becomes asynchronous port occupancy racing the step, the rest is
  // serialized compute.
  t.chunk_costs.reserve(chunk_blocks.size());
  for (const auto& cb : chunk_blocks) {
    ChunkCost cc;
    cc.stream = cb.report.breakdown.dma_l3_l2 * layers;
    cc.compute =
        (cb.report.block_cycles - cb.report.breakdown.dma_l3_l2) * layers;
    cc.energy_mj = cb.energy_mj() * static_cast<double>(layers);
    cc.l3_bytes = cb.report.traffic.l3_l2 * layers;
    t.chunk_costs.push_back(cc);
  }

  // Physical cache sets, one pool per model (functional isolation); the
  // shared byte budget is charged by the engine's tenant-tagged arena.
  t.pool.emplace(cap, [&session] {
    return session.make_chip_caches(session.config().ar_context);
  });
  t.kv_set_bytes = t.pool->set_capacity_packed_bytes(t.kv_elem_bits);
  if (t.page_tokens > 0) {
    // Exact: a set's capacity is 2 * ctx * dim * elem summed over caches,
    // so the per-context division has no remainder.
    t.page_bytes = t.kv_set_bytes / static_cast<Bytes>(ctx) *
                   static_cast<Bytes>(t.page_tokens);
  }
  return t;
}

BatchedEngine::BatchedEngine(const ModelRegistry& registry, MultiOptions opts,
                             sim::Tracer* tracer)
    : opts_(std::move(opts)),
      tracer_(tracer),
      tenants_([&] {
        // Strict mode gates construction on the static analyzer BEFORE
        // any of the ad-hoc checks below, so an unsound deployment is
        // refused with structured diagnostics (stable codes, entities,
        // hints) rather than whichever unstructured throw fires first.
        if (opts_.strict) {
          analysis::AnalysisReport rep =
              analysis::DeploymentAnalyzer::analyze(registry, opts_);
          if (!rep.ok()) {
            // Render before the move: function arguments are unsequenced,
            // so to_text() inside the call could see a moved-from report.
            std::string text =
                "BatchedEngine(strict): deployment is unsound\n" +
                rep.to_text();
            throw analysis::AnalysisError(text, std::move(rep));
          }
        }
        DISTMCU_CHECK(registry.count() > 0,
                    "BatchedEngine: registry holds no deployments");
        DISTMCU_CHECK(opts_.total_kv_slots > 0,
                    "BatchedEngine: max_batch must be positive");
        DISTMCU_CHECK(opts_.max_pending >= 0,
                    "BatchedEngine: max_pending must be >= 0");
        DISTMCU_CHECK(opts_.kv_page_tokens >= 0,
                    "BatchedEngine: kv_page_tokens must be >= 0");
        // Quota derivation: explicit quotas are kept, unset (0) quotas
        // share the remaining slots equally (remainder to the earliest
        // deployments), and every deployment must end up with at least
        // one reserved slot so the static split can always drain it.
        int explicit_sum = 0;
        int unset = 0;
        for (const auto& e : registry.entries()) {
          if (e.kv_quota > 0) {
            explicit_sum += e.kv_quota;
          } else {
            ++unset;
          }
        }
        DISTMCU_CHECK(explicit_sum <= opts_.total_kv_slots,
                    "BatchedEngine: deployment quotas (" +
                        std::to_string(explicit_sum) +
                        ") exceed total_kv_slots (" +
                        std::to_string(opts_.total_kv_slots) + ")");
        const int rem = opts_.total_kv_slots - explicit_sum;
        DISTMCU_CHECK(unset == 0 || rem >= unset,
                    "BatchedEngine: total_kv_slots leaves no KV slot for "
                    "some deployment; raise total_kv_slots or lower quotas");
        const bool borrowing = resolve_budget(opts_)->allows_borrowing();
        std::vector<Tenant> out;
        out.reserve(static_cast<std::size_t>(registry.count()));
        int unset_seen = 0;
        for (const auto& e : registry.entries()) {
          int quota = e.kv_quota;
          if (quota == 0) {
            quota = rem / unset + (unset_seen < rem % unset ? 1 : 0);
            ++unset_seen;
          }
          DISTMCU_CHECK(quota >= 1, "BatchedEngine: deployment '" + e.name +
                                      "' derived a zero KV quota");
          int cap = e.max_resident > 0
                        ? std::min(e.max_resident, opts_.total_kv_slots)
                        : (borrowing ? opts_.total_kv_slots : quota);
          cap = std::max(cap, 1);
          out.push_back(build_tenant(e, quota, cap, opts_.kv_page_tokens));
        }
        return out;
      }()),
      trace_models_(tenants_.size() > 1),
      slab_bytes_([&] {
        // Uniform budget units across tenants: the largest set in slot
        // mode, the largest page in paged mode — so unit indices stay
        // interchangeable across models.
        Bytes slab = 0;
        for (const Tenant& t : tenants_) {
          slab = std::max(slab, opts_.kv_page_tokens > 0 ? t.page_bytes
                                                         : t.kv_set_bytes);
        }
        return slab;
      }()),
      // Size the arena for total_kv_slots aligned slab reservations
      // exactly (total pages in paged mode).
      kv_arena_("l2.kv_pool",
                static_cast<Bytes>(opts_.total_kv_slots) *
                    mem::Arena::align_up(slab_bytes_,
                                         mem::Arena::kDefaultAlignment)),
      kv_slots_([&]() -> std::optional<mem::SlotArena> {
        if (opts_.kv_page_tokens > 0) return std::nullopt;
        return std::make_optional<mem::SlotArena>(
            kv_arena_, "kv_set", opts_.total_kv_slots, slab_bytes_);
      }()),
      kv_pages_([&]() -> std::optional<mem::PagedKvArena> {
        if (opts_.kv_page_tokens <= 0) return std::nullopt;
        return std::make_optional<mem::PagedKvArena>(
            kv_arena_, "kv_page", opts_.total_kv_slots, slab_bytes_);
      }()),
      pipeline_(1.0, 0, static_cast<int>(tenants_.size())) {
  // Admission policy: the configured scheduler, or the process-wide FIFO
  // instance (policies are stateless, so sharing it is safe).
  static const FifoScheduler kDefaultFifo;
  scheduler_ =
      opts_.scheduler != nullptr ? opts_.scheduler.get() : &kDefaultFifo;
  budget_ = resolve_budget(opts_);

  // Cross-tenant L2 fit: the per-tenant checks above validated each
  // model next to its OWN cap of KV sets; with several tenants the
  // shared arena can hold other models' KV at the same time, so every
  // deployment must also fit its working set next to the worst-case
  // co-resident KV the budget can produce — the arena's slots filled
  // greedily with the largest per-chip KV footprints, each tenant
  // bounded by its cap. (Per-chip units throughout, matching the
  // planner's l2_usable; the single-model engine keeps the historical
  // check bit-exactly.)
  if (tenants_.size() > 1) {
    // Per budget unit: a whole set's per-chip KV in slot mode, one
    // page's share in paged mode (caps are in the same unit).
    std::vector<std::pair<Bytes, int>> kv_loads;  // (per-chip KV, cap)
    for (const Tenant& t : tenants_) {
      kv_loads.emplace_back(paged() ? t.chip_page_bytes : t.chip_kv_bytes,
                            t.cap);
    }
    std::sort(kv_loads.begin(), kv_loads.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    Bytes worst_kv = 0;
    int slots_left = opts_.total_kv_slots;
    for (const auto& [chip_kv, cap] : kv_loads) {
      if (slots_left <= 0) break;
      const int take = std::min(cap, slots_left);
      worst_kv += static_cast<Bytes>(take) * chip_kv;
      slots_left -= take;
    }
    for (const Tenant& t : tenants_) {
      for (const Tenant::FitPlan& fp : t.fit_plans) {
        // need() already counts one of this tenant's own sets; the
        // worst-case fill covers every resident set, so swap the
        // single-set term out.
        const Bytes need_beside =
            fp.plan.need() - fp.plan.kv_cache_bytes + worst_kv;
        DISTMCU_CHECK_PLAN(
            need_beside <= fp.plan.l2_usable,
            "BatchedEngine['" + t.name +
                "']: worst-case co-resident KV of all tenants (" +
                util::format_bytes(worst_kv) + "/chip) plus the " + fp.mode +
                "-mode working set needs " + util::format_bytes(need_beside) +
                " of L2 but only " + util::format_bytes(fp.plan.l2_usable) +
                " is usable; lower total_kv_slots, tenant caps, or "
                "ar_context");
      }
    }
  }

  stats_.per_model.resize(tenants_.size());
  for (std::size_t m = 0; m < tenants_.size(); ++m) {
    stats_.per_model[m].model = tenants_[m].name;
    stats_.per_model[m].kv_quota = tenants_[m].quota;
    stats_.per_model[m].kv_cap = tenants_[m].cap;
    // The fit plans only serve the construction-time checks above.
    tenants_[m].fit_plans.clear();
    tenants_[m].fit_plans.shrink_to_fit();
  }
}

BatchedEngine::BatchedEngine(const InferenceSession& session, Options opts,
                             sim::Tracer* tracer)
    : BatchedEngine(single_model_registry(session, opts),
                    MultiOptions{.total_kv_slots = opts.max_batch,
                                 .max_pending = opts.max_pending,
                                 .scheduler = opts.scheduler,
                                 .kv_budget = nullptr,
                                 .fail_fast_deadlines = opts.fail_fast_deadlines,
                                 .fair_shedding = opts.fair_shedding,
                                 .preemption = opts.preemption,
                                 .strict = opts.strict,
                                 .kv_page_tokens = opts.kv_page_tokens,
                                 .prefix_sharing = opts.prefix_sharing},
                    tracer) {}

const mem::SlotArena& BatchedEngine::kv_slots() const {
  DISTMCU_CHECK(kv_slots_.has_value(),
              "BatchedEngine: kv_slots() on a paged engine; use kv_pages()");
  return *kv_slots_;
}

const mem::PagedKvArena& BatchedEngine::kv_pages() const {
  DISTMCU_CHECK(kv_pages_.has_value(),
              "BatchedEngine: kv_pages() on a slot engine; use kv_slots()");
  return *kv_pages_;
}

int BatchedEngine::page_tokens(ModelId m) const { return tenant(m).page_tokens; }

int BatchedEngine::prefix_cache_pages() const {
  // Distinct physical pages: entries of one tenant may share leading
  // pages (an adopter re-donating a longer prompt re-references them).
  std::vector<int> pages;
  for (const Tenant& t : tenants_) {
    for (const Tenant::PrefixEntry& e : t.prefix_cache) {
      pages.insert(pages.end(), e.pages.begin(), e.pages.end());
    }
  }
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  return static_cast<int>(pages.size());
}

int BatchedEngine::prefix_cache_entries() const {
  int n = 0;
  for (const Tenant& t : tenants_) {
    n += static_cast<int>(t.prefix_cache.size());
  }
  return n;
}

Cycles BatchedEngine::estimate_cost(ModelId m, int prompt_tokens,
                                    int new_tokens) const {
  const Tenant& t = tenant(m);
  DISTMCU_CHECK(prompt_tokens >= 1 &&
                    prompt_tokens <= t.session->config().prompt_len,
                "estimate_cost: prompt_tokens outside the deployment's "
                "prefill shape");
  DISTMCU_CHECK(new_tokens >= 0, "estimate_cost: new_tokens must be >= 0");
  return estimate_request_cost(t, prompt_tokens, new_tokens);
}

const model::TransformerConfig& BatchedEngine::model_config(ModelId m) const {
  return tenant(m).session->config();
}

int BatchedEngine::prefix_match_tokens(ModelId m,
                                       const std::vector<int>& prompt) const {
  // Empty (prefix sharing off, or nothing donated yet) naturally reports
  // no affinity.
  int best = 0;
  for (const Tenant::PrefixEntry& e : tenant(m).prefix_cache) {
    best = std::max(best, common_prefix(e.tokens, prompt));
  }
  return best;
}

int BatchedEngine::kv_free() const {
  return paged() ? kv_pages_->free() : kv_slots_->free();
}
int BatchedEngine::kv_capacity_units() const {
  return paged() ? kv_pages_->capacity() : kv_slots_->capacity();
}
int BatchedEngine::kv_tenant_in_use(ModelId m) const {
  return paged() ? kv_pages_->tenant_in_use(m) : kv_slots_->tenant_in_use(m);
}
int BatchedEngine::kv_tenant_high_water(ModelId m) const {
  return paged() ? kv_pages_->tenant_high_water(m)
                 : kv_slots_->tenant_high_water(m);
}
int BatchedEngine::kv_tenant_reclaimed(ModelId m) const {
  return paged() ? kv_pages_->tenant_reclaimed(m)
                 : kv_slots_->tenant_reclaimed(m);
}

int BatchedEngine::pages_for_tokens(ModelId m, int n) const {
  const int pt = tenant(m).page_tokens;
  DISTMCU_CHECK(pt > 0, "BatchedEngine: pages_for_tokens on a slot engine");
  return (n + pt - 1) / pt;
}

int BatchedEngine::common_prefix(const std::vector<int>& a,
                                 const std::vector<int>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return static_cast<int>(i);
}

int BatchedEngine::tokens_after_step(const Inflight& r) const {
  const Tenant& t = tenants_[static_cast<std::size_t>(r.model)];
  const int len = static_cast<int>(r.prompt.size());
  // The same-step first decode appends a KV row only when another
  // forward is needed: the committed token itself comes from the prefill
  // output without a row, and the final token of a stream is committed
  // without a forward (generate's composition).
  const int first_decode_row = r.new_tokens >= 2 ? 1 : 0;
  if (!r.prefill_done()) {
    if (t.chunk_tokens <= 0) return len + first_decode_row;
    const int after = std::min(r.prefill_pos + t.chunk_tokens, len);
    return after >= len ? len + first_decode_row : after;
  }
  return r.pos + (r.generated + 1 < r.new_tokens ? 1 : 0);
}

BatchedEngine::PagedAdmitPlan BatchedEngine::plan_paged_admission(
    const Inflight& p) const {
  const Tenant& t = tenants_[static_cast<std::size_t>(p.model)];
  const int pt = t.page_tokens;
  PagedAdmitPlan plan;

  if (p.checkpoint.has_value()) {
    // Resume: the leading shared_resident_tokens rows (page-aligned by
    // construction at eviction) can be re-referenced from any registry
    // entry whose prompt still matches; otherwise they are refetched
    // from the L3 backing store into private pages.
    const int sp = p.shared_resident_tokens / pt;
    plan.shared_tokens = p.shared_resident_tokens;
    if (sp > 0) {
      for (std::size_t i = 0; i < t.prefix_cache.size(); ++i) {
        const Tenant::PrefixEntry& e = t.prefix_cache[i];
        if (static_cast<int>(e.pages.size()) >= sp &&
            common_prefix(e.tokens, p.prompt) >= p.shared_resident_tokens) {
          plan.entry = static_cast<int>(i);
          plan.shared_pages = sp;
          break;
        }
      }
    }
    plan.need_pages = pages_for_tokens(p.model, tokens_after_step(p));
    return plan;
  }

  // Fresh admission: adopt the registered prefix with the longest common
  // prompt prefix, rounded DOWN to a chunk boundary (the last chunk is
  // always recomputed so the prefill output feeding the first decode
  // exists) — and capped at len-1 for the same reason.
  int adopted = 0;
  if (opts_.prefix_sharing && t.chunk_tokens > 0) {
    const int len = static_cast<int>(p.prompt.size());
    int best = 0;
    int entry = -1;
    for (std::size_t i = 0; i < t.prefix_cache.size(); ++i) {
      const int l =
          std::min(common_prefix(t.prefix_cache[i].tokens, p.prompt), len - 1);
      if (l > best) {
        best = l;
        entry = static_cast<int>(i);
      }
    }
    adopted = (best / t.chunk_tokens) * t.chunk_tokens;
    if (adopted > 0 && entry >= 0) {
      plan.entry = entry;
      plan.shared_tokens = adopted;
      // Full pages only: a prefix ending mid-page forks copy-on-write —
      // the partial page's rows are copied into the request's first
      // private page rather than shared.
      plan.shared_pages = std::min(
          adopted / pt,
          static_cast<int>(
              t.prefix_cache[static_cast<std::size_t>(entry)].pages.size()));
    } else {
      adopted = 0;
    }
  }

  // Page requirement of the request's first step, prefill_pos advanced
  // to the adopted prefix.
  const int len = static_cast<int>(p.prompt.size());
  const int first_decode_row = p.new_tokens >= 2 ? 1 : 0;
  int after = 0;
  if (t.chunk_tokens > 0) {
    const int a = std::min(adopted + t.chunk_tokens, len);
    after = a >= len ? len + first_decode_row : a;
  } else {
    after = len + first_decode_row;
  }
  plan.need_pages = pages_for_tokens(p.model, after);
  return plan;
}

bool BatchedEngine::can_grant_pages(
    ModelId m, std::vector<KvBudgetPolicy::TenantView> views, int free_pages,
    int n) const {
  // Simulate n sequential grants exactly the way admission acquires
  // them: each grant advances the tenant's occupancy and re-asks the
  // policy, so a policy that would cut the tenant off mid-way refuses
  // the whole admission (a half-admitted request would deadlock).
  const Tenant& t = tenants_[static_cast<std::size_t>(m)];
  auto& v = views[static_cast<std::size_t>(m)];
  for (int i = 0; i < n; ++i) {
    if (free_pages <= 0 || v.in_use >= t.cap) return false;
    if (!budget_->may_acquire(m, views, kv_capacity_units(), free_pages)) {
      return false;
    }
    ++v.in_use;
    --free_pages;
  }
  return true;
}

const BatchedEngine::Tenant& BatchedEngine::tenant(ModelId m) const {
  DISTMCU_CHECK(m >= 0 && m < model_count(),
              "BatchedEngine: ModelId out of range");
  return tenants_[static_cast<std::size_t>(m)];
}

const std::string& BatchedEngine::model_name(ModelId m) const {
  return tenant(m).name;
}
int BatchedEngine::model_kv_quota(ModelId m) const { return tenant(m).quota; }
int BatchedEngine::model_kv_cap(ModelId m) const { return tenant(m).cap; }
int BatchedEngine::chunk_tokens(ModelId m) const {
  return tenant(m).chunk_tokens;
}

Precision BatchedEngine::model_precision(ModelId m) const {
  return tenant(m).session->precision();
}
KvLayout BatchedEngine::model_kv_layout(ModelId m) const {
  return tenant(m).session->kv_layout();
}
int BatchedEngine::model_kv_elem_bits(ModelId m) const {
  return tenant(m).kv_elem_bits;
}

Cycles BatchedEngine::estimate_request_cost(const Tenant& t, int prompt_tokens,
                                            int new_tokens) const {
  // Prefill charge from the same block-program decomposition the steps
  // use, then one per-request decode forward per generated token past
  // the prefill output (generate's composition: prompt + (n-1) decodes).
  // Batch-shared weight streaming and queueing are excluded — this is
  // the request's own service demand, not a latency prediction.
  Cycles est = 0;
  if (t.chunk_tokens > 0) {
    const int n_chunks =
        (prompt_tokens + t.chunk_tokens - 1) / t.chunk_tokens;
    for (int i = 0; i < n_chunks; ++i) {
      const auto& cc = t.chunk_costs[static_cast<std::size_t>(i)];
      est += cc.compute + cc.stream;
    }
  } else {
    est = t.prompt_cycles;
  }
  if (new_tokens > 1) {
    est += static_cast<Cycles>(new_tokens - 1) * t.ar_per_req_cycles;
  }
  return est;
}

std::optional<RequestId> BatchedEngine::submit(Request req) {
  // The model guard must stay ahead of every per_model[...] index below:
  // an unknown id must throw, not corrupt another deployment's counters.
  DISTMCU_CHECK(req.model >= 0 && req.model < model_count(),
              "submit: unknown model id " + std::to_string(req.model));
  const Tenant& t = tenants_[static_cast<std::size_t>(req.model)];
  DISTMCU_CHECK(!req.prompt.empty(), "submit: prompt must not be empty");
  DISTMCU_CHECK(req.new_tokens >= 0, "submit: new_tokens must be >= 0");
  DISTMCU_CHECK(static_cast<int>(req.prompt.size()) + req.new_tokens <=
                  t.session->config().ar_context,
              "submit: sequence exceeds the model's context length");
  // Prefill cost and the construction-time L2 fit were both derived from
  // the deployment's static prompt shape, so longer prompts would be
  // silently under-charged and under-validated.
  DISTMCU_CHECK(
      static_cast<int>(req.prompt.size()) <= t.session->config().prompt_len,
      "submit: prompt exceeds the deployment's prefill length (" +
          std::to_string(t.session->config().prompt_len) + ")");
  if (paged()) {
    // Livelock guard: a sequence whose full KV can never fit the
    // tenant's page cap would be admitted, grown until the cap, and
    // evicted forever. Refuse it up front like the context checks above.
    const int max_rows = static_cast<int>(req.prompt.size()) +
                         std::max(0, req.new_tokens - 1);
    DISTMCU_CHECK(pages_for_tokens(req.model, max_rows) <= t.cap,
                "submit: sequence needs " +
                    std::to_string(pages_for_tokens(req.model, max_rows)) +
                    " KV pages but model '" + t.name + "' is capped at " +
                    std::to_string(t.cap));
  }

  last_rejection_ = Rejection::none;
  auto& pm = stats_.per_model[static_cast<std::size_t>(req.model)];
  const Cycles submitted_at = pipeline_.now();
  // Saturating resolve: a near-max relative deadline must pin to the
  // timeline's end (never missed), not wrap into the past (always
  // "missed" and, under fail-fast, always refused).
  const Cycles deadline_at =
      req.slo.deadline_cycles != kNoDeadline
          ? util::sat_add(submitted_at, req.slo.deadline_cycles)
          : kNoDeadline;
  const Cycles est = estimate_request_cost(
      t, static_cast<int>(req.prompt.size()), req.new_tokens);

  // Fail-fast: refuse a deadline the request's own service demand
  // already blows on an idle engine — queueing and batching only add to
  // it, so accepting would just burn slots on a guaranteed miss.
  if (opts_.fail_fast_deadlines && deadline_at != kNoDeadline &&
      util::sat_add(submitted_at, est) > deadline_at) {
    last_rejection_ = Rejection::hopeless_deadline;
    ++stats_.rejected;
    ++stats_.rejected_hopeless_deadline;
    ++pm.rejected;
    return std::nullopt;
  }

  // max_pending bounds the *queue*: only the backlog beyond what the
  // free KV slots can absorb at the next admission point counts against
  // it, so an idle engine with a free slot admits even at
  // max_pending == 0. On a full queue fair shedding (when enabled) may
  // drop a heavier tenant's newest queued request to make room.
  const int backlog = static_cast<int>(pending_.size()) - kv_free();
  if (backlog >= opts_.max_pending &&
      !(opts_.fair_shedding && shed_for_model(req.model))) {
    last_rejection_ = Rejection::queue_full;
    ++stats_.rejected;
    ++stats_.rejected_queue_full;
    ++pm.rejected;
    return std::nullopt;
  }
  Inflight r;
  r.id = next_id_++;
  r.model = req.model;
  r.prompt = std::move(req.prompt);
  r.new_tokens = req.new_tokens;
  r.slo = req.slo;
  r.submitted_at = submitted_at;
  r.deadline_at = deadline_at;
  r.estimated_cost = est;
  const RequestId id = r.id;
  pending_.push_back(std::move(r));
  ++pm.submitted;
  stats_.queue_depth_peak =
      std::max(stats_.queue_depth_peak, static_cast<int>(pending_.size()));
  return id;
}

std::vector<KvBudgetPolicy::TenantView> BatchedEngine::budget_views() const {
  std::vector<KvBudgetPolicy::TenantView> views(tenants_.size());
  for (std::size_t m = 0; m < tenants_.size(); ++m) {
    views[m].model = static_cast<ModelId>(m);
    views[m].in_use = kv_tenant_in_use(static_cast<ModelId>(m));
    views[m].quota = tenants_[m].quota;
    views[m].cap = tenants_[m].cap;
  }
  for (const Inflight& p : pending_) {
    ++views[static_cast<std::size_t>(p.model)].pending;
  }
  return views;
}

bool BatchedEngine::admissible_now(
    const Inflight& p, const std::vector<KvBudgetPolicy::TenantView>& views,
    int free_slots) const {
  if (free_slots <= 0) return false;
  const auto m = static_cast<std::size_t>(p.model);
  if (!paged()) {
    if (views[m].in_use >= tenants_[m].cap) return false;
    return budget_->may_acquire(p.model, views, kv_capacity_units(),
                                free_slots);
  }
  // Paged: the whole first-step page requirement (net of adoptable
  // shared pages) must be grantable at once, and the tenant's functional
  // pool must have a cache set left — page occupancy no longer tracks
  // set occupancy one-to-one (a request holding only shared references
  // charges zero pages).
  if (tenants_[m].pool->sets_in_use() >= tenants_[m].pool->capacity()) {
    return false;
  }
  const PagedAdmitPlan plan = plan_paged_admission(p);
  return can_grant_pages(p.model, views, free_slots,
                         plan.need_pages - plan.shared_pages);
}

bool BatchedEngine::admits_after_evicting(const Inflight& starved,
                                          const Inflight& victim) const {
  // Post-eviction snapshot: the victim's budget units free and it
  // rejoins the queue; then ask whether the budget would grant the
  // starved request admission (a watermark-borrowed victim unit repays
  // the reserve cross-model, which is exactly what makes this reclaim
  // useful).
  auto views = budget_views();
  auto& vv = views[static_cast<std::size_t>(victim.model)];
  int freed = 1;
  if (paged()) {
    // Only the victim's sole-referenced pages return to the pool; pages
    // shared with the prefix registry or other requests stay resident.
    freed = 0;
    for (const int pg : victim.pages) {
      if (kv_pages_->refcount(pg) == 1) ++freed;
    }
  }
  vv.in_use -= freed;
  ++vv.pending;
  return admissible_now(starved, views, kv_free() + freed);
}

Cycles BatchedEngine::remaining_cost(const Inflight& r) const {
  const Tenant& t = tenants_[static_cast<std::size_t>(r.model)];
  Cycles est = 0;
  if (!r.prefill_done()) {
    if (t.chunk_tokens > 0) {
      const int len = static_cast<int>(r.prompt.size());
      const int n_chunks = (len + t.chunk_tokens - 1) / t.chunk_tokens;
      for (int ci = r.prefill_pos / t.chunk_tokens; ci < n_chunks; ++ci) {
        const ChunkCost& cc = t.chunk_costs[static_cast<std::size_t>(ci)];
        est += cc.compute + cc.stream;
      }
    } else {
      est = t.prompt_cycles;
    }
    if (r.new_tokens > 1) {
      est += static_cast<Cycles>(r.new_tokens - 1) * t.ar_per_req_cycles;
    }
    return est;
  }
  // Mid-decode: generate's composition leaves new_tokens - 1 - generated
  // forwards ahead of a request whose next token is already pending.
  const int decode_left = std::max(0, r.new_tokens - r.generated - 1);
  return static_cast<Cycles>(decode_left) * t.ar_per_req_cycles;
}

void BatchedEngine::maybe_preempt(int step_idx, double& step_energy) {
  if (opts_.preemption == nullptr) return;
  // Bound the evictions per step by the step's initial batch size so a
  // pathological policy cannot loop the step forever.
  int evict_budget = static_cast<int>(active_.size());
  while (evict_budget-- > 0 && !pending_.empty() && !active_.empty()) {
    if (!attempt_preemption(step_idx, step_energy)) break;
  }
}

bool BatchedEngine::attempt_preemption(int step_idx, double& step_energy) {
  const Cycles now = pipeline_.now();
  const auto views = budget_views();
  const int free_slots = kv_free();

  // Starved = pending with a deadline the cost estimator says is
  // feasible started now, but that the budget will not admit right now.
  // Earliest such deadline first (lowest id on ties).
  int starved_idx = -1;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const Inflight& p = pending_[i];
    if (p.deadline_at == kNoDeadline) continue;
    if (util::sat_add(now, p.estimated_cost) > p.deadline_at) continue;
    if (admissible_now(p, views, free_slots)) continue;
    const auto si = static_cast<std::size_t>(starved_idx);
    if (starved_idx < 0 || p.deadline_at < pending_[si].deadline_at ||
        (p.deadline_at == pending_[si].deadline_at &&
         p.id < pending_[si].id)) {
      starved_idx = static_cast<int>(i);
    }
  }
  if (starved_idx < 0) return false;
  const Inflight& s = pending_[static_cast<std::size_t>(starved_idx)];

  // Victims: mid-decode running requests whose eviction actually
  // unblocks the starved request under the budget.
  std::vector<std::size_t> victim_idx;
  std::vector<PreemptionPolicy::Victim> victims;
  Cycles min_rem = std::numeric_limits<Cycles>::max();
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const Inflight& v = active_[i];
    if (!v.prefill_done() || v.new_tokens == 0 || v.generated >= v.new_tokens) {
      continue;
    }
    if (!admits_after_evicting(s, v)) continue;
    PreemptionPolicy::Victim pv;
    pv.id = v.id;
    pv.model = v.model;
    pv.priority = v.slo.priority;
    pv.deadline_at = v.deadline_at;
    pv.remaining_cost = remaining_cost(v);
    pv.generated = v.generated;
    pv.new_tokens = v.new_tokens;
    pv.borrowed = kv_tenant_in_use(v.model) >
                  tenants_[static_cast<std::size_t>(v.model)].quota;
    pv.times_evicted = v.times_evicted;
    min_rem = std::min(min_rem, pv.remaining_cost);
    victims.push_back(pv);
    victim_idx.push_back(i);
  }
  if (victims.empty()) return false;

  // The trigger proper: preempt only when waiting for the earliest
  // natural release among the helpful victims would blow the starved
  // deadline that is attainable today.
  if (util::sat_add(util::sat_add(now, min_rem), s.estimated_cost) <=
      s.deadline_at) {
    return false;
  }

  Scheduler::Candidate c;
  c.id = s.id;
  c.model = s.model;
  c.priority = s.slo.priority;
  c.deadline_at = s.deadline_at;
  c.submitted_at = s.submitted_at;
  c.submit_seq = s.id;
  c.estimated_cost = s.estimated_cost;
  const int pick = opts_.preemption->pick_victim(victims, c, now);
  if (pick < 0) return false;
  DISTMCU_CHECK(pick < static_cast<int>(victims.size()),
              std::string("BatchedEngine: preemption policy '") +
                  opts_.preemption->name() +
                  "' returned an out-of-range victim index");
  evict_active(victim_idx[static_cast<std::size_t>(pick)], step_idx,
               step_energy);
  return true;
}

void BatchedEngine::evict_active(std::size_t idx, int /*step_idx*/,
                                 double& step_energy) {
  Inflight r = std::move(active_[idx]);
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(idx));
  Tenant& t = tenants_[static_cast<std::size_t>(r.model)];
  r.checkpoint_bytes = t.pool->set_filled_packed_bytes(r.set, t.kv_elem_bits);
  if (paged()) {
    // Rows resident in shared pages are not checkpoint traffic: the
    // pages stay mapped under the prefix registry (or other sharers)
    // and a resume re-references them. Only whole leading shared pages
    // count — a partial private page's rows must move either way — and
    // the shared span is kept page-aligned so the resume bookkeeping
    // stays exact.
    const int written = r.prefill_done() ? r.pos : r.prefill_pos;
    int lead = 0;
    while (lead < static_cast<int>(r.pages.size()) &&
           kv_pages_->refcount(r.pages[static_cast<std::size_t>(lead)]) >= 2) {
      ++lead;
    }
    const int pt = t.page_tokens;
    const int shared_tok = std::min((written / pt) * pt, lead * pt);
    const Bytes per_token =
        t.kv_set_bytes /
        static_cast<Bytes>(t.session->config().ar_context);
    r.checkpoint_bytes -= static_cast<Bytes>(shared_tok) * per_token;
    r.shared_resident_tokens = shared_tok;
  }
  r.checkpoint = t.pool->slot(r.set);  // deep copy of the functional KV
  // Checkpoint traffic: the filled KV moves out through the chip's L3
  // DMA model (setup + bytes at the L3<->L2 bandwidth), charged to the
  // evicted request itself; in-flight staged fetches are pushed back by
  // exactly the advance, so the one-stream stall bound of every later
  // decode phase holds.
  const Cycles c =
      r.checkpoint_bytes > 0
          ? t.session->system().chip.l3_dma_cycles(r.checkpoint_bytes)
          : Cycles{0};
  const double e = util::pj_to_mj(static_cast<double>(r.checkpoint_bytes) *
                                  t.session->system().chip.e_l3_pj_per_byte);
  charge(r, c, e, sim::Category::sched, "sched.evict", pipeline_.now(),
         sched_chip(r.model));
  if (c > 0) pipeline_.advance_opaque(c, c);
  step_energy += e;
  stats_.preemption_cycles += c;
  r.work_done_at = pipeline_.now();

  auto& pm = stats_.per_model[static_cast<std::size_t>(r.model)];
  if (paged()) {
    for (const int pg : r.pages) kv_pages_->reclaim(pg, r.model);
    r.pages.clear();
    r.shared_pages = 0;
  } else {
    kv_slots_->reclaim(r.slot, r.model);
  }
  pm.kv_slots_reclaimed = kv_tenant_reclaimed(r.model);
  t.pool->release_set(r.set);
  r.slot = -1;
  r.set = -1;
  ++r.times_evicted;
  ++stats_.preemptions;
  ++pm.preemptions;
  // Future admission ranks on what is left of it — the remaining decode
  // demand plus the resume restore it now owes.
  r.estimated_cost = util::sat_add(remaining_cost(r), c);
  pending_.push_back(std::move(r));
  stats_.queue_depth_peak =
      std::max(stats_.queue_depth_peak, static_cast<int>(pending_.size()));
}

bool BatchedEngine::shed_for_model(ModelId incoming) {
  // Per-tenant fairness: the deepest backlog (counting the incoming
  // request toward its own tenant) gives up its newest queued request.
  // When the incoming tenant is itself among the heaviest, shedding
  // somebody else for it would be churn, not fairness — refuse and let
  // the caller reject queue_full. Checkpointed (evicted) requests are
  // never shed: their already-charged service would be orphaned.
  std::vector<int> depth(tenants_.size(), 0);
  for (const Inflight& p : pending_) ++depth[static_cast<std::size_t>(p.model)];
  ++depth[static_cast<std::size_t>(incoming)];
  int max_depth = 0;
  for (const int d : depth) max_depth = std::max(max_depth, d);
  if (depth[static_cast<std::size_t>(incoming)] == max_depth) return false;
  int victim = -1;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const Inflight& p = pending_[i];
    if (depth[static_cast<std::size_t>(p.model)] != max_depth) continue;
    if (p.checkpoint.has_value()) continue;
    if (victim < 0 || p.id > pending_[static_cast<std::size_t>(victim)].id) {
      victim = static_cast<int>(i);
    }
  }
  if (victim < 0) return false;
  const Inflight shed = std::move(pending_[static_cast<std::size_t>(victim)]);
  pending_.erase(pending_.begin() + victim);
  ++stats_.shed;
  ++stats_.per_model[static_cast<std::size_t>(shed.model)].shed;
  shed_ids_.push_back(shed.id);
  return true;
}

int BatchedEngine::pick_admissible_pending() const {
  // Budget snapshot: everybody's occupancy and queued demand.
  const std::vector<KvBudgetPolicy::TenantView> views = budget_views();
  const int free_units = kv_free();

  // The scheduler ranks exactly the requests the budget would grant
  // admission to right now — so a deadline on one model can preempt
  // admission of another model's request, but never overdraw that
  // model's share. (Paged mode grants the whole first-step page set or
  // nothing; admissible_now holds both mode's rules.)
  std::vector<Scheduler::Candidate> queue;
  std::vector<int> pending_index;
  queue.reserve(pending_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const Inflight& p = pending_[i];
    if (!admissible_now(p, views, free_units)) continue;
    Scheduler::Candidate c;
    c.id = p.id;
    c.model = p.model;
    c.priority = p.slo.priority;
    c.deadline_at = p.deadline_at;
    c.submitted_at = p.submitted_at;
    // Ids are issued monotonically at submit, so they double as the
    // policies' FIFO tie-break sequence.
    c.submit_seq = p.id;
    c.estimated_cost = p.estimated_cost;
    queue.push_back(c);
    pending_index.push_back(static_cast<int>(i));
  }
  if (queue.empty()) return -1;
  const std::size_t idx = scheduler_->pick(queue, pipeline_.now());
  DISTMCU_CHECK(idx < queue.size(),
              std::string("BatchedEngine: scheduler '") + scheduler_->name() +
                  "' returned an out-of-range queue index");
  return pending_index[idx];
}

void BatchedEngine::trace_admission(const Inflight& r) {
  if (tracer_ == nullptr || r.admitted_at <= r.submitted_at) return;
  tracer_->set_request(r.id);
  if (trace_models_) tracer_->set_model(r.model);
  tracer_->record(sched_chip(r.model), sim::Category::sched, r.submitted_at,
                  r.admitted_at, 0, "sched.queue");
  tracer_->set_request(sim::kNoRequest);
  if (trace_models_) tracer_->set_model(sim::kNoModel);
}

void BatchedEngine::charge(Inflight& r, Cycles cycles, double energy_mj,
                           sim::Category cat, const char* label, Cycles begin,
                           int chip) {
  r.cycles += cycles;
  r.energy_mj += energy_mj;
  auto& pm = stats_.per_model[static_cast<std::size_t>(r.model)];
  pm.attributed_cycles += cycles;
  pm.attributed_energy_mj += energy_mj;
  if (tracer_ != nullptr && cycles > 0) {
    tracer_->set_request(r.id);
    if (trace_models_) tracer_->set_model(r.model);
    tracer_->record(chip, cat, begin, begin + cycles, 0, label);
    tracer_->set_request(sim::kNoRequest);
    if (trace_models_) tracer_->set_model(sim::kNoModel);
  }
}

void BatchedEngine::finish(Inflight& r, int step_idx) {
  if (paged()) {
    // Owner-checked page release; shared prefix pages just drop one
    // reference and stay resident for the registry / other sharers.
    for (const int pg : r.pages) kv_pages_->release(pg, r.model);
    r.pages.clear();
    r.shared_pages = 0;
  } else {
    kv_slots_->release(r.slot, r.model);
  }
  tenants_[static_cast<std::size_t>(r.model)].pool->release_set(r.set);
  r.slot = -1;
  r.set = -1;
  RequestResult out;
  out.id = r.id;
  out.model = r.model;
  out.admitted_step = r.admitted_step;
  out.finished_step = step_idx;
  out.admitted_at = r.admitted_at;
  // The boundary at which the final token was committed: the request's
  // own last completed work, not the end of a step other requests are
  // still filling.
  out.finished_at = r.work_done_at;
  out.slo = r.slo;
  out.submitted_at = r.submitted_at;
  out.deadline_at = r.deadline_at;
  out.times_evicted = r.times_evicted;
  out.gen.tokens = std::move(r.tokens);
  out.gen.generated = r.generated;
  out.gen.total_cycles = r.cycles;
  out.gen.total_energy_mj = r.energy_mj;

  auto& pm = stats_.per_model[static_cast<std::size_t>(r.model)];

  // SLO accounting: attained-vs-deadline and the queueing-delay
  // distribution, refreshed so stats() is a consistent snapshot at every
  // completion.
  const Cycles queue_delay = out.queue_delay_cycles();
  stats_.queue_delay_total += queue_delay;
  queue_delays_.insert(queue_delay);
  stats_.queue_delay_p50 = queue_delays_.percentile(50.0);
  stats_.queue_delay_p95 = queue_delays_.percentile(95.0);
  stats_.queue_delay_p99 = queue_delays_.percentile(99.0);
  if (out.deadline_at != kNoDeadline) {
    ++stats_.slo_requests;
    ++pm.slo_requests;
    if (out.missed_deadline()) {
      ++stats_.deadline_misses;
      ++pm.deadline_misses;
      // Instant marker on the request's own lane — routed to its
      // model's scheduler lane in multi-model traces rather than pinned
      // to chip 0 — at the moment the deadline was finally blown (its
      // own finish boundary).
      if (tracer_ != nullptr) {
        tracer_->set_request(out.id);
        if (trace_models_) tracer_->set_model(out.model);
        tracer_->record(sched_chip(out.model), sim::Category::sched,
                        out.finished_at, out.finished_at, 0,
                        "sched.deadline.miss");
        tracer_->set_request(sim::kNoRequest);
        if (trace_models_) tracer_->set_model(sim::kNoModel);
      }
    }
  }

  finished_.push_back(std::move(out));
  ++stats_.completed;
  ++pm.completed;
}

model::Tensor BatchedEngine::forward_tokens(const Inflight& r,
                                            const std::vector<int>& toks,
                                            int pos_offset) {
  Tenant& t = tenants_[static_cast<std::size_t>(r.model)];
  model::Tensor h = t.session->embedding().lookup(toks);
  for (int l = 0; l < t.session->config().num_layers; ++l) {
    h = t.session->forward(h, l, &t.pool->slot(r.set), pos_offset);
  }
  return h;
}

void BatchedEngine::admit_pending(int step_idx, double& step_energy,
                                  std::vector<char>& serial_admitted) {
  // A prefix registry pinning EVERY page would stall admission forever on
  // an otherwise idle engine: the loop below never runs at kv_free() == 0,
  // so its deadlock guard never fires. Small pools (few pages, long
  // whole-page prompts) reach this; evict pins until a page frees up.
  while (paged() && active_.empty() && !pending_.empty() && kv_free() == 0 &&
         drop_lru_prefix_entry()) {
  }
  while (!pending_.empty() && kv_free() > 0) {
    const int pi = pick_admissible_pending();
    if (pi < 0) {
      // Paged deadlock guard: with nothing running, the only occupancy
      // free admission could be waiting on is the prefix registry's page
      // pins — drop the least-recently-used entry and retry; registered
      // prefixes must never starve live work. When the registry is
      // already empty, a pending request with an empty engine can never
      // be admitted at all: that is a configuration error (its page
      // demand exceeds what the policy will ever grant its tenant), not
      // a transient.
      if (paged() && active_.empty()) {
        if (drop_lru_prefix_entry()) continue;
        DISTMCU_CHECK(pending_.empty(),
                    "BatchedEngine: pending request can never be admitted "
                    "(first-step page demand exceeds what the budget policy "
                    "grants its tenant); raise the tenant's quota or lower "
                    "kv_page_tokens");
      }
      break;
    }
    Inflight r = std::move(pending_[static_cast<std::size_t>(pi)]);
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(pi));
    Tenant& t = tenants_[static_cast<std::size_t>(r.model)];
    // Re-plan after the pick: nothing changed since admissible_now saw
    // the request (no registry drops happen mid-loop), so the plan the
    // budget approved is the plan acquired below.
    PagedAdmitPlan plan;
    if (paged()) {
      plan = plan_paged_admission(r);
    } else {
      const auto slot = kv_slots_->acquire(r.model);
      DISTMCU_CHECK(slot.has_value(),
                  "BatchedEngine: admission without a free slot");
      r.slot = *slot;
    }
    const auto set = t.pool->acquire_set();
    DISTMCU_CHECK(set.has_value(),
                "BatchedEngine['" + t.name + "']: budget granted a slot "
                "beyond the model's cache-set cap");
    r.set = *set;
    const bool resuming = r.checkpoint.has_value();
    if (!resuming) {
      r.admitted_step = step_idx;
      // The request's own position on the step timeline: prefills of
      // requests admitted earlier this step have already advanced the
      // pipeline, so their cycles never leak into this request's
      // residence latency. (Chunked models refine the stamp to the start
      // of the request's own first chunk. A resumed request keeps its
      // first-admission stamps — queue delay and residence latency span
      // the whole life of the request, evictions included.)
      r.admitted_at = pipeline_.now();
    }
    t.pool->reset_slot(r.set);
    auto& pm = stats_.per_model[static_cast<std::size_t>(r.model)];

    Bytes restore_bytes = r.checkpoint_bytes;
    if (paged()) {
      if (plan.entry >= 0 && plan.shared_pages > 0) {
        // Shared prefix pages first (token order), one new reference
        // each; the physical pages stay charged to this same tenant.
        Tenant::PrefixEntry& e =
            t.prefix_cache[static_cast<std::size_t>(plan.entry)];
        for (int k = 0; k < plan.shared_pages; ++k) {
          const int pg = e.pages[static_cast<std::size_t>(k)];
          kv_pages_->add_ref(pg);
          r.pages.push_back(pg);
        }
        r.shared_pages = plan.shared_pages;
        e.last_use = ++prefix_clock_;
        if (!resuming) {
          // Copy-on-write fork: adopt the donor's rows bit-exactly and
          // skip their prefill chunks entirely — that skip IS the
          // prefix-sharing win, so no cycles are charged here.
          t.pool->restore_prefix(r.set, e.kv, plan.shared_tokens);
          r.prefill_pos = plan.shared_tokens;
          ++stats_.prefix_hits;
          stats_.prefix_shared_tokens += plan.shared_tokens;
          if (plan.shared_tokens > plan.shared_pages * t.page_tokens) {
            ++stats_.cow_forks;
          }
        }
      } else if (resuming && r.shared_resident_tokens > 0) {
        // The registry dropped the prefix while this request was out:
        // its shared rows now come back from the L3 backing store (which
        // holds every checkpointed block) into private pages, alongside
        // the checkpoint itself.
        const Bytes per_token =
            t.kv_set_bytes /
            static_cast<Bytes>(t.session->config().ar_context);
        restore_bytes +=
            static_cast<Bytes>(r.shared_resident_tokens) * per_token;
      }
      if (resuming) r.shared_resident_tokens = 0;
      // Private pages up to the first step's requirement; growth takes
      // over page-by-page from the next step on.
      const int need = pages_for_tokens(r.model, tokens_after_step(r));
      while (static_cast<int>(r.pages.size()) < need) {
        const auto pg = kv_pages_->acquire(r.model);
        DISTMCU_CHECK(pg.has_value(),
                    "BatchedEngine: admission without a free page");
        r.pages.push_back(*pg);
      }
    }
    pm.kv_in_use_high_water = kv_tenant_high_water(r.model);

    if (resuming) {
      // Resume: restore the checkpointed KV into the fresh set and
      // charge the restore traffic symmetrically to the eviction; the
      // request then rejoins decode at the next boundary with its
      // pending token intact, so its stream is bit-exact.
      const Cycles resume_begin = pipeline_.now();
      t.pool->restore_slot(r.set, *r.checkpoint);
      const Cycles c =
          restore_bytes > 0
              ? t.session->system().chip.l3_dma_cycles(restore_bytes)
              : Cycles{0};
      const double e =
          util::pj_to_mj(static_cast<double>(restore_bytes) *
                         t.session->system().chip.e_l3_pj_per_byte);
      // The re-queue wait, as a second sched.queue span on the
      // request's lane: eviction end to re-admission (never overlapping
      // the first — the eviction span sits between them).
      if (tracer_ != nullptr && resume_begin > r.work_done_at) {
        tracer_->set_request(r.id);
        if (trace_models_) tracer_->set_model(r.model);
        tracer_->record(sched_chip(r.model), sim::Category::sched,
                        r.work_done_at, resume_begin, 0, "sched.queue");
        tracer_->set_request(sim::kNoRequest);
        if (trace_models_) tracer_->set_model(sim::kNoModel);
      }
      charge(r, c, e, sim::Category::sched, "sched.resume", resume_begin,
             sched_chip(r.model));
      if (c > 0) pipeline_.advance_opaque(c, c);
      step_energy += e;
      stats_.preemption_cycles += c;
      r.work_done_at = pipeline_.now();
      r.checkpoint.reset();
      r.checkpoint_bytes = 0;
      ++stats_.resumes;
      ++pm.resumes;
      active_.push_back(std::move(r));
      continue;
    }

    if (t.chunk_tokens > 0) {
      active_.push_back(std::move(r));
      continue;
    }

    // Serial-prefill compatibility mode: the whole prompt is charged in
    // full at admission. Prefill advances the timeline without touching
    // the staged decode weights; an in-flight stream prefetch keeps
    // draining underneath, except while the prefill's own L3 streaming
    // occupies the port.
    r.started = true;
    trace_admission(r);
    const model::Tensor h = forward_tokens(r, r.prompt, 0);
    r.tokens = r.prompt;
    r.prefill_pos = static_cast<int>(r.prompt.size());
    r.pos = static_cast<int>(r.prompt.size());
    charge(r, t.prompt_cycles, t.prompt_energy_mj, sim::Category::compute,
           "prefill", r.admitted_at);
    stats_.prefill_cycles += t.prompt_cycles;
    pipeline_.advance_opaque(t.prompt_cycles, t.prompt_stream_cycles);
    r.work_done_at = pipeline_.now();
    step_energy += t.prompt_energy_mj;
    serial_admitted[static_cast<std::size_t>(r.model)] = 1;

    if (r.new_tokens == 0) {
      finish(r, step_idx);
    } else {
      r.next = t.session->embedding().greedy_next(h);
      active_.push_back(std::move(r));
    }
  }
}

bool BatchedEngine::drop_lru_prefix_entry(ModelId only) {
  int best_m = -1;
  int best_e = -1;
  std::uint64_t best_use = 0;
  for (std::size_t m = 0; m < tenants_.size(); ++m) {
    if (only >= 0 && static_cast<ModelId>(m) != only) continue;
    const auto& cache = tenants_[m].prefix_cache;
    for (std::size_t e = 0; e < cache.size(); ++e) {
      if (best_m < 0 || cache[e].last_use < best_use) {
        best_m = static_cast<int>(m);
        best_e = static_cast<int>(e);
        best_use = cache[e].last_use;
      }
    }
  }
  if (best_m < 0) return false;
  Tenant& t = tenants_[static_cast<std::size_t>(best_m)];
  Tenant::PrefixEntry entry =
      std::move(t.prefix_cache[static_cast<std::size_t>(best_e)]);
  t.prefix_cache.erase(t.prefix_cache.begin() + best_e);
  // Registry pins release through the owning tenant; a page still
  // referenced by an active adopter (or a sibling entry) stays resident.
  for (const int pg : entry.pages) {
    kv_pages_->release(pg, static_cast<ModelId>(best_m));
  }
  return true;
}

std::optional<int> BatchedEngine::acquire_page_for(ModelId m) {
  const Tenant& t = tenants_[static_cast<std::size_t>(m)];
  for (;;) {
    const auto views = budget_views();
    if (kv_free() > 0 &&
        views[static_cast<std::size_t>(m)].in_use < t.cap &&
        budget_->may_acquire(m, views, kv_capacity_units(), kv_free())) {
      return kv_pages_->acquire(m);
    }
    // Denied. With no free page, any tenant's registry pin can return
    // one to the pool; with free pages but a budget refusal, only this
    // tenant's own pins repay its occupancy. Each round drops one entry
    // (or gives up), so the loop terminates.
    const bool dropped =
        kv_free() <= 0 ? drop_lru_prefix_entry() : drop_lru_prefix_entry(m);
    if (!dropped) return std::nullopt;
  }
}

void BatchedEngine::grow_active_paged(int step_idx, double& step_energy) {
  // Decode-time (and chunk-time) page growth, budget-gated exactly like
  // admission so the per-tenant invariants stay page-granular: a request
  // whose next step needs a page the policy will not grant is
  // checkpointed out (to resume once pages free up) rather than served
  // out of budget.
  std::size_t i = 0;
  while (i < active_.size()) {
    Inflight& r = active_[i];
    const int need = pages_for_tokens(r.model, tokens_after_step(r));
    bool grown = true;
    while (static_cast<int>(r.pages.size()) < need) {
      const auto pg = acquire_page_for(r.model);
      if (!pg.has_value()) {
        grown = false;
        break;
      }
      r.pages.push_back(*pg);
      stats_.per_model[static_cast<std::size_t>(r.model)]
          .kv_in_use_high_water = kv_tenant_high_water(r.model);
    }
    if (grown) {
      ++i;
    } else {
      evict_active(i, step_idx, step_energy);  // index now names the next
    }
  }
}

void BatchedEngine::donate_prefix(const Inflight& r) {
  Tenant& t = tenants_[static_cast<std::size_t>(r.model)];
  const int len = static_cast<int>(r.prompt.size());
  const int k = len / t.page_tokens;  // whole pages only
  if (k <= 0) return;
  // An exact-duplicate prompt refreshes the existing entry instead of
  // pinning a second copy of the same pages.
  for (Tenant::PrefixEntry& e : t.prefix_cache) {
    if (e.tokens == r.prompt) {
      e.last_use = ++prefix_clock_;
      return;
    }
  }
  if (static_cast<int>(t.prefix_cache.size()) >= kPrefixCacheCap) {
    (void)drop_lru_prefix_entry(r.model);
  }
  Tenant::PrefixEntry e;
  e.tokens = r.prompt;
  e.pages.assign(r.pages.begin(), r.pages.begin() + k);
  for (const int pg : e.pages) kv_pages_->add_ref(pg);
  // Deep copy of the donor's KV rows for later functional forks. The
  // donor never rewrites rows below its prompt length (KV is append-
  // only), so the shared pages stay read-only by construction; donation
  // itself costs nothing — the pages simply stay resident.
  e.kv = t.pool->slot(r.set);
  e.last_use = ++prefix_clock_;
  t.prefix_cache.push_back(std::move(e));
}

// --------------------------------------------------------------------------
// Serial-prefill sub-phase (this model's prompts were charged at
// admission): one token commit + decode forward per active request.
// --------------------------------------------------------------------------

void BatchedEngine::subphase_serial(ModelId m, int step_idx,
                                    double& step_energy, bool& step_decode) {
  Tenant& t = tenants_[static_cast<std::size_t>(m)];
  const auto& emb = t.session->embedding();
  auto& pm = stats_.per_model[static_cast<std::size_t>(m)];

  // Emit one token per active request of this model; a request that
  // emits its final token leaves without running another forward,
  // mirroring InferenceSession::generate exactly.
  std::vector<Inflight> still_active;
  still_active.reserve(active_.size());
  std::vector<std::size_t> decoders;  // indices into the rebuilt active_
  for (auto& r : active_) {
    if (r.model != m) {
      still_active.push_back(std::move(r));
      continue;
    }
    r.tokens.push_back(r.next);
    ++r.generated;
    ++stats_.total_generated;
    ++pm.total_generated;
    if (r.generated == r.new_tokens) {
      finish(r, step_idx);
      continue;
    }
    r.next = emb.greedy_next(forward_tokens(r, {r.next}, r.pos));
    ++r.pos;
    decoders.push_back(still_active.size());
    still_active.push_back(std::move(r));
  }
  active_ = std::move(still_active);
  if (decoders.empty()) return;

  // Decode phase: this model's serialized forwards race the weight
  // stream its previous decode step prefetched on its own channel, and
  // the prefetch for its NEXT step is issued the moment this phase
  // starts. Only the unhidden stall lands on the step; it is attributed
  // in equal integer shares (remainder cycles to the earliest admitted)
  // so per-request cycles still sum to the aggregate exactly. Streaming
  // energy is charged in full regardless of overlap — the DMA runs
  // either way.
  const auto b = static_cast<Cycles>(decoders.size());
  const Cycles compute = b * t.ar_per_req_cycles;
  // Skip the speculative fetch when this is provably the model's last
  // decode step.
  bool work_remains = false;
  for (const Inflight& p : pending_) {
    if (p.model == m) {
      work_remains = true;
      break;
    }
  }
  for (std::size_t j = 0; j < decoders.size() && !work_remains; ++j) {
    const Inflight& r = active_[decoders[j]];
    work_remains = r.generated + 1 < r.new_tokens;
  }
  const Bytes next_stream =
      work_remains ? static_cast<Bytes>(t.ar_shared_cycles) : Bytes{0};
  const auto sp =
      pipeline_.advance_step(/*prefill_compute=*/0, /*prefill_stream_bytes=*/0,
                             /*consume_staged=*/true, compute, next_stream, m);

  // Trace the stream DMA this phase consumed (issued during an earlier
  // step, so it overlaps whatever ran since) and remember the one just
  // issued for the step that will consume it.
  if (tracer_ != nullptr && t.pending_fetch_ready > t.pending_fetch_start) {
    if (trace_models_) tracer_->set_model(m);
    tracer_->record(0, sim::Category::dma_l3_l2, t.pending_fetch_start,
                    t.pending_fetch_ready, t.stream_bytes_per_step,
                    "weights.prefetch");
    if (trace_models_) tracer_->set_model(sim::kNoModel);
  }
  const Cycles consumed_margin = t.pending_fetch_margin;
  t.pending_fetch_start = sp.fetch_start;
  t.pending_fetch_ready = sp.fetch_ready;
  t.pending_fetch_margin =
      sp.fetch_ready > sp.end ? sp.fetch_ready - sp.end : Cycles{0};

  charge_decode_phase(m, decoders, sp, consumed_margin, step_energy,
                      step_decode);
}

void BatchedEngine::charge_decode_phase(
    ModelId m, const std::vector<std::size_t>& decoders,
    const PrefetchPipeline::StepSpan& sp, Cycles stall_bound,
    double& step_energy, bool& step_decode) {
  Tenant& t = tenants_[static_cast<std::size_t>(m)];
  auto& pm = stats_.per_model[static_cast<std::size_t>(m)];

  // Per-request decode compute at its serialized slot on the phase
  // timeline; the stall shares all sit in the wait window at the start
  // of the phase (the step start in serial mode, past the prompt chunks
  // in chunked mode), overlapping across the requests' trace lanes.
  const auto d = static_cast<Cycles>(decoders.size());
  const Cycles share = sp.stall / d;
  const Cycles rem = sp.stall % d;
  const double e_share =
      t.ar_shared_energy_mj / static_cast<double>(decoders.size());
  const Cycles decode_end = sp.decode_start + d * t.ar_per_req_cycles;
  for (std::size_t j = 0; j < decoders.size(); ++j) {
    Inflight& r = active_[decoders[j]];
    charge(r, t.ar_per_req_cycles, t.ar_per_req_energy_mj,
           sim::Category::compute, "decode",
           sp.decode_start + static_cast<Cycles>(j) * t.ar_per_req_cycles);
    const Cycles c = share + (static_cast<Cycles>(j) < rem ? 1 : 0);
    charge(r, c, e_share, sim::Category::dma_l3_l2, "weights.stall",
           sp.decode_begin);
    // Tokens commit at the decode phase boundary, whichever serialized
    // slot the request ran in; work already extended past it (a
    // chunk-stream tail share in this very step) is kept.
    r.work_done_at = std::max(r.work_done_at, decode_end);
  }
  step_energy += static_cast<double>(d) * t.ar_per_req_energy_mj +
                 t.ar_shared_energy_mj;
  step_decode = true;
  ++pm.decode_steps;
  // With the port to itself a model never stalls longer than its own
  // serial stream (double buffering); behind other tenants' traffic the
  // honest bound is the consumed fetch's issue-time margin, which only
  // shrinks between issue and consume.
  DISTMCU_CHECK(sp.stall <= std::max(t.ar_shared_cycles, stall_bound),
              "BatchedEngine: decode stall exceeded the consumed fetch's "
              "port latency");
  const Cycles hidden =
      sp.stall < t.ar_shared_cycles ? t.ar_shared_cycles - sp.stall : Cycles{0};
  stats_.prefetch_stall_cycles += sp.stall;
  stats_.stream_cycles_hidden += hidden;
  pm.prefetch_stall_cycles += sp.stall;
  pm.stream_cycles_hidden += hidden;
}

// --------------------------------------------------------------------------
// Chunked-prefill sub-phase (this model's prompts advance one chunk per
// step, co-scheduled with its decodes in heterogeneous steps).
// --------------------------------------------------------------------------

int BatchedEngine::run_prefill_chunk(Inflight& r) {
  Tenant& t = tenants_[static_cast<std::size_t>(r.model)];
  const int len = static_cast<int>(r.prompt.size());
  const int begin = r.prefill_pos;
  const int chunk_idx = begin / t.chunk_tokens;
  const int end = std::min(begin + t.chunk_tokens, len);

  const std::vector<int> chunk(r.prompt.begin() + begin,
                               r.prompt.begin() + end);
  const model::Tensor h = forward_tokens(r, chunk, begin);
  r.prefill_pos = end;
  if (r.prefill_done()) {
    r.tokens = r.prompt;
    r.pos = len;
    if (r.new_tokens > 0) r.next = t.session->embedding().greedy_next(h);
  }
  return chunk_idx;
}

void BatchedEngine::subphase_chunked(ModelId m, int step_idx,
                                     double& step_energy, bool& step_prefill,
                                     bool& step_decode) {
  Tenant& t = tenants_[static_cast<std::size_t>(m)];
  auto& pm = stats_.per_model[static_cast<std::size_t>(m)];

  // ---- functional work -------------------------------------------------
  // Every prefilling request of this model advances one chunk; a request
  // completing its final chunk joins this step's token commit (its
  // prefill output IS its first forward, mirroring the serial mode and
  // generate()).
  struct ChunkRun {
    std::size_t req;  // index into active_
    int chunk;        // chunk position (indexes chunk_costs)
    bool first;       // the request's first chunk (admission point)
  };
  std::vector<ChunkRun> chunk_runs;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    Inflight& r = active_[i];
    if (r.model != m || r.prefill_done()) continue;
    // First own work, not first chunk position: an adopted prefix starts
    // the request past prefill_pos 0, but its admission stamp still
    // belongs at its own first chunk.
    const bool first = !r.started;
    r.started = true;
    const int ci = run_prefill_chunk(r);
    if (r.prefill_done() && paged() && opts_.prefix_sharing) {
      donate_prefix(r);
    }
    chunk_runs.push_back({i, ci, first});
  }

  std::vector<std::size_t> decode_runs;  // ran a decode forward this step
  std::vector<std::size_t> finishers;    // leave at this boundary
  for (std::size_t i = 0; i < active_.size(); ++i) {
    Inflight& r = active_[i];
    if (r.model != m || !r.prefill_done()) continue;
    if (r.new_tokens == 0) {
      // Prefill-only request (encoder classification): done at its own
      // last chunk.
      finishers.push_back(i);
      continue;
    }
    r.tokens.push_back(r.next);
    ++r.generated;
    ++stats_.total_generated;
    ++pm.total_generated;
    if (r.generated == r.new_tokens) {
      finishers.push_back(i);
      continue;
    }
    r.next =
        t.session->embedding().greedy_next(forward_tokens(r, {r.next}, r.pos));
    ++r.pos;
    decode_runs.push_back(i);
  }

  // ---- step cost through the multi-consumer pipeline -------------------
  Cycles prefill_compute = 0;
  Cycles prefill_stream = 0;
  Bytes prefill_l3_bytes = 0;
  for (const auto& cr : chunk_runs) {
    const ChunkCost& cc = t.chunk_costs[static_cast<std::size_t>(cr.chunk)];
    prefill_compute += cc.compute;
    prefill_stream += cc.stream;
    prefill_l3_bytes += cc.l3_bytes;
  }
  const auto d = static_cast<Cycles>(decode_runs.size());
  const bool any_decode = !decode_runs.empty();

  if (!chunk_runs.empty() || any_decode) {
    // Speculative fetch for this model's next decode step, issued only
    // from steps that consume a stream themselves (a pure-prefill step
    // leaves the staged weights untouched). Decode work remains while
    // anything of this model in the queue or the batch will still run a
    // decode forward.
    bool decode_work_remains = false;
    for (const Inflight& p : pending_) {
      if (p.model == m) {
        decode_work_remains = true;
        break;
      }
    }
    for (std::size_t i = 0; i < active_.size() && !decode_work_remains; ++i) {
      if (active_[i].model != m) continue;
      if (std::find(finishers.begin(), finishers.end(), i) !=
          finishers.end()) {
        continue;
      }
      const Inflight& r = active_[i];
      decode_work_remains = r.prefill_done() ? r.generated + 1 < r.new_tokens
                                             : r.new_tokens > 1;
    }
    const Bytes next_stream = any_decode && decode_work_remains
                                  ? static_cast<Bytes>(t.ar_shared_cycles)
                                  : Bytes{0};

    const auto sp = pipeline_.advance_step(
        prefill_compute, static_cast<Bytes>(prefill_stream), any_decode,
        d * t.ar_per_req_cycles, next_stream, m);

    // Trace the chunk streams' port service window (untagged by request:
    // the DMA is a shared-port activity; the visible tail is charged per
    // request below) and the consumed decode prefetch.
    if (tracer_ != nullptr && prefill_stream > 0) {
      if (trace_models_) tracer_->set_model(m);
      tracer_->record(0, sim::Category::dma_l3_l2, sp.chunk_stream_start,
                      sp.chunk_ready, prefill_l3_bytes, "prompt.stream");
      if (trace_models_) tracer_->set_model(sim::kNoModel);
    }
    Cycles consumed_margin = 0;
    if (any_decode) {
      if (tracer_ != nullptr && t.pending_fetch_ready > t.pending_fetch_start) {
        if (trace_models_) tracer_->set_model(m);
        tracer_->record(0, sim::Category::dma_l3_l2, t.pending_fetch_start,
                        t.pending_fetch_ready, t.stream_bytes_per_step,
                        "weights.prefetch");
        if (trace_models_) tracer_->set_model(sim::kNoModel);
      }
      consumed_margin = t.pending_fetch_margin;
      t.pending_fetch_start = sp.fetch_start;
      t.pending_fetch_ready = sp.fetch_ready;
      t.pending_fetch_margin =
          sp.fetch_ready > sp.end ? sp.fetch_ready - sp.end : Cycles{0};
    }

    // ---- exact attribution --------------------------------------------
    // Prompt chunks at their serialized slots from the sub-phase start.
    Cycles cum = sp.begin;
    for (const auto& cr : chunk_runs) {
      Inflight& r = active_[cr.req];
      const ChunkCost& cc = t.chunk_costs[static_cast<std::size_t>(cr.chunk)];
      if (cr.first) {
        r.admitted_at = cum;
        trace_admission(r);
      }
      charge(r, cc.compute, cc.energy_mj, sim::Category::compute,
             "prefill.chunk", cum);
      cum += cc.compute;
      r.work_done_at = cum;
      step_energy += cc.energy_mj;
    }
    // The visible chunk-stream tail lands on the prefilling requests in
    // equal integer shares (remainder to the earliest admitted), all in
    // the tail window past the compute.
    if (sp.prefill_tail > 0) {
      const auto pn = static_cast<Cycles>(chunk_runs.size());
      const Cycles share = sp.prefill_tail / pn;
      const Cycles rem = sp.prefill_tail % pn;
      const Cycles tail_begin = sp.end - sp.prefill_tail;
      for (std::size_t j = 0; j < chunk_runs.size(); ++j) {
        Inflight& r = active_[chunk_runs[j].req];
        const Cycles c = share + (static_cast<Cycles>(j) < rem ? 1 : 0);
        charge(r, c, 0.0, sim::Category::dma_l3_l2, "prompt.stall",
               tail_begin);
        r.work_done_at = sp.end;
      }
    }
    // Decode forwards after the stall window, as in the serial mode;
    // the chunk-stream tail belongs to the prefilling requests, not the
    // decoders.
    if (any_decode) {
      charge_decode_phase(m, decode_runs, sp, consumed_margin, step_energy,
                          step_decode);
    }
    if (!chunk_runs.empty()) {
      step_prefill = true;
      ++pm.prefill_steps;
      stats_.prefill_cycles += prefill_compute + sp.prefill_tail;
      stats_.prefill_stream_cycles += sp.prefill_window;
      stats_.prefill_stall_cycles += sp.prefill_tail;
      stats_.prefill_cycles_hidden += sp.prefill_window - sp.prefill_tail;
    }
  }

  // ---- retire finished requests at the boundary ------------------------
  if (!finishers.empty()) {
    std::vector<Inflight> still_active;
    still_active.reserve(active_.size() - finishers.size());
    std::size_t f = 0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (f < finishers.size() && finishers[f] == i) {
        finish(active_[i], step_idx);
        ++f;
      } else {
        still_active.push_back(std::move(active_[i]));
      }
    }
    active_ = std::move(still_active);
  }
}

void BatchedEngine::run_subphase(ModelId m, int step_idx, double& step_energy,
                                 bool& step_prefill, bool& step_decode) {
  if (tenants_[static_cast<std::size_t>(m)].chunk_tokens > 0) {
    subphase_chunked(m, step_idx, step_energy, step_prefill, step_decode);
  } else {
    subphase_serial(m, step_idx, step_energy, step_decode);
  }
}

bool BatchedEngine::step() {
  if (pending_.empty() && active_.empty()) return false;
  const int step_idx = stats_.steps;
  double step_energy = 0.0;

  maybe_preempt(step_idx, step_energy);
  // Paged serving grows running requests to this step's page needs
  // before admission, so admission never out-competes work already in
  // flight for the pages its next token requires.
  if (paged()) grow_active_paged(step_idx, step_energy);
  std::vector<char> serial_admitted(tenants_.size(), 0);
  admit_pending(step_idx, step_energy, serial_admitted);
  bool step_prefill = false;
  bool step_decode = false;
  for (std::size_t m = 0; m < tenants_.size(); ++m) {
    if (serial_admitted[m] != 0) {
      step_prefill = true;
      ++stats_.per_model[m].prefill_steps;
    }
  }
  stats_.peak_batch =
      std::max(stats_.peak_batch, static_cast<int>(active_.size()));

  // Fixed-order model sub-phases: the grid is time-multiplexed between
  // the deployments within a step, while their weight streams race each
  // other's compute on the shared L3 port.
  for (ModelId m = 0; m < model_count(); ++m) {
    run_subphase(m, step_idx, step_energy, step_prefill, step_decode);
  }
  if (step_prefill) ++stats_.prefill_steps;
  if (step_decode) ++stats_.decode_steps;

  stats_.total_cycles = pipeline_.now();
  stats_.total_energy_mj += step_energy;
  ++stats_.steps;
  return !(pending_.empty() && active_.empty());
}

std::vector<RequestResult> BatchedEngine::run_to_completion() {
  while (step()) {
  }
  return finished_;
}

}  // namespace distmcu::runtime
