// Tests for the quantized execution path: round-trip error bounds,
// integer GEMM vs float reference, requantization, and the key
// distributed-systems property — int32 accumulation makes the
// hierarchical all-reduce bit-exact regardless of tree shape.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "kernels/gemm.hpp"
#include "noc/collectives.hpp"
#include "noc/topology.hpp"
#include "quant/int_kernels.hpp"
#include "quant/quantize.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

using namespace distmcu;
namespace q = distmcu::quant;

namespace {
std::vector<float> random_vec(std::size_t n, float scale, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform(-scale, scale);
  return v;
}
}  // namespace

TEST(Quantize, RoundTripWithinHalfLsb) {
  const auto data = random_vec(1000, 3.0f, 1);
  for (int bits : {8, 16}) {
    const auto p = q::choose_params(data, bits);
    std::vector<float> restored(data.size());
    if (bits == 8) {
      const auto qd = q::quantize_i8(data, p);
      q::dequantize(qd, p, restored);
    } else {
      const auto qd = q::quantize_i16(data, p);
      q::dequantize(qd, p, restored);
    }
    const float bound = q::max_quant_error(p) * 1.001f;
    for (std::size_t i = 0; i < data.size(); ++i) {
      ASSERT_LE(std::fabs(restored[i] - data[i]), bound) << "bits=" << bits;
    }
  }
}

TEST(Quantize, SixteenBitsMuchTighterThanEight) {
  const auto data = random_vec(100, 1.0f, 2);
  const auto p8 = q::choose_params(data, 8);
  const auto p16 = q::choose_params(data, 16);
  EXPECT_GT(q::max_quant_error(p8), 100.0f * q::max_quant_error(p16));
}

TEST(Quantize, SaturatesOutOfRange) {
  const q::QuantParams p{0.1f};  // representable range: +-12.7 at int8
  const std::vector<float> data{100.0f, -100.0f};
  const auto qd = q::quantize_i8(data, p);
  EXPECT_EQ(qd[0], 127);
  EXPECT_EQ(qd[1], -128);
}

TEST(Quantize, ZeroTensorGetsUnitScale) {
  const std::vector<float> zeros(16, 0.0f);
  const auto p = q::choose_params(zeros, 8);
  EXPECT_FLOAT_EQ(p.scale, 1.0f);
}

TEST(Quantize, RejectsBadBits) {
  EXPECT_THROW((void)q::QuantParams::from_absmax(1.0f, 12), Error);
}

TEST(IntGemm, MatchesFloatReferenceWithinQuantError) {
  const int m = 6, n = 10, k = 32;
  const auto a = random_vec(static_cast<std::size_t>(m * k), 1.0f, 3);
  const auto b = random_vec(static_cast<std::size_t>(k * n), 0.2f, 4);
  const auto pa = q::choose_params(a, 8);
  const auto pb = q::choose_params(b, 8);
  const auto qa = q::quantize_i8(a, pa);
  const auto qb = q::quantize_i8(b, pb);
  std::vector<std::int32_t> acc(static_cast<std::size_t>(m * n));
  q::gemm_i8_i32(qa, qb, acc, m, n, k);
  std::vector<float> c_ref(static_cast<std::size_t>(m * n));
  kernels::gemm(a, b, c_ref, m, n, k);
  // Error bound: k * (|a|max * eb + |b|max * ea) ~ loose analytic bound.
  const float bound = static_cast<float>(k) *
                      (1.0f * q::max_quant_error(pb) + 0.2f * q::max_quant_error(pa)) *
                      2.0f;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    const float deq = static_cast<float>(acc[i]) * pa.scale * pb.scale;
    ASSERT_NEAR(deq, c_ref[i], bound);
  }
}

TEST(IntGemm, I16MoreAccurateThanI8) {
  const int m = 4, n = 4, k = 64;
  const auto a = random_vec(static_cast<std::size_t>(m * k), 1.0f, 5);
  const auto b = random_vec(static_cast<std::size_t>(k * n), 1.0f, 6);
  std::vector<float> c_ref(static_cast<std::size_t>(m * n));
  kernels::gemm(a, b, c_ref, m, n, k);

  auto max_err = [&](int bits) {
    const auto pa = q::choose_params(a, bits);
    const auto pb = q::choose_params(b, bits);
    std::vector<double> deq(static_cast<std::size_t>(m * n));
    if (bits == 8) {
      std::vector<std::int32_t> acc(deq.size());
      q::gemm_i8_i32(q::quantize_i8(a, pa), q::quantize_i8(b, pb), acc, m, n, k);
      for (std::size_t i = 0; i < acc.size(); ++i) deq[i] = static_cast<double>(acc[i]);
    } else {
      std::vector<std::int64_t> acc(deq.size());
      q::gemm_i16_i64(q::quantize_i16(a, pa), q::quantize_i16(b, pb), acc, m, n, k);
      for (std::size_t i = 0; i < acc.size(); ++i) deq[i] = static_cast<double>(acc[i]);
    }
    float err = 0.0f;
    for (std::size_t i = 0; i < deq.size(); ++i) {
      err = std::max(err, std::fabs(static_cast<float>(deq[i] * pa.scale * pb.scale) -
                                    c_ref[i]));
    }
    return err;
  };
  EXPECT_LT(max_err(16) * 50.0f, max_err(8));
}

TEST(Requant, RoundsAndClamps) {
  const std::vector<std::int32_t> acc{1000, -1000, 1000000, -1000000, 3};
  std::vector<std::int8_t> out(acc.size());
  // mult/2^shift = 1/16.
  q::requant_i32_i8(acc, 1, 4, out);
  EXPECT_EQ(out[0], 63);    // 1000/16 = 62.5 -> 63 (round half up)
  EXPECT_EQ(out[1], -62);   // -1000/16 = -62.5 -> -62 (arithmetic shift w/ rounding)
  EXPECT_EQ(out[2], 127);   // clamped
  EXPECT_EQ(out[3], -128);  // clamped
  EXPECT_EQ(out[4], 0);
}

// The distributed-inference property: integer partial sums reduce to the
// SAME result for any topology (float would drift with tree shape).
class IntReduceOrderInvariance : public ::testing::TestWithParam<int> {};

TEST_P(IntReduceOrderInvariance, AnyTopologySameBits) {
  const int n_chips = GetParam();
  const std::size_t len = 128;
  auto make_buffers = [&] {
    std::vector<std::vector<std::int32_t>> bufs(static_cast<std::size_t>(n_chips));
    util::Rng rng(77);
    for (auto& b : bufs) {
      b.resize(len);
      for (auto& v : b) {
        v = static_cast<std::int32_t>(rng.next_below(200000)) - 100000;
      }
    }
    return bufs;
  };
  auto reduce_with = [&](const noc::Topology& topo) {
    auto bufs = make_buffers();
    std::vector<std::span<std::int32_t>> views;
    for (auto& b : bufs) views.emplace_back(b);
    noc::reduce_numeric(topo, views);
    return bufs[0];
  };
  const auto hier4 = reduce_with(noc::Topology::hierarchical(n_chips, 4));
  const auto hier2 = reduce_with(noc::Topology::hierarchical(n_chips, 2));
  const auto flat = reduce_with(noc::Topology::flat(n_chips));
  EXPECT_EQ(hier4, hier2);
  EXPECT_EQ(hier4, flat);
}

INSTANTIATE_TEST_SUITE_P(ChipCounts, IntReduceOrderInvariance,
                         ::testing::Values(2, 3, 4, 8, 16, 64));
