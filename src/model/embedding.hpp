#ifndef DISTMCU_MODEL_EMBEDDING_HPP
#define DISTMCU_MODEL_EMBEDDING_HPP

#include <vector>

#include "model/config.hpp"
#include "model/tensor.hpp"

namespace distmcu::model {

/// Token embedding table with a tied LM head (logits = x * table^T), the
/// minimal vocabulary machinery the end-to-end generation examples need.
/// Embeddings never live in MCU on-chip memory (they stream row-wise from
/// L3 at lookup), so they are excluded from the block-level memory
/// planning, matching the paper's per-block scope.
class Embedding {
 public:
  Embedding(const TransformerConfig& cfg, std::uint64_t seed);

  /// [ids.size(), E] matrix of embedding rows.
  [[nodiscard]] Tensor lookup(const std::vector<int>& ids) const;

  /// Logits [x.rows, vocab] with the tied head.
  [[nodiscard]] Tensor logits(const Tensor& x) const;

  /// argmax over the last row's logits — greedy decoding.
  [[nodiscard]] int greedy_next(const Tensor& x) const;

  [[nodiscard]] int vocab_size() const { return table_.rows(); }
  [[nodiscard]] int embed_dim() const { return table_.cols(); }

 private:
  Tensor table_;  // [vocab, E]
};

}  // namespace distmcu::model

#endif  // DISTMCU_MODEL_EMBEDDING_HPP
