// Static deployment verifier CLI: runs analysis::DeploymentAnalyzer
// over every shipped bench/example deployment configuration (or one
// selected with --config) and prints the structured diagnostics. Exits
// nonzero when any configuration carries an error-severity diagnostic,
// so CI can gate merges on "every shipped config analyzes clean".
//
// --json <path> additionally writes the machine-readable report used by
// the CI key-check gate (tools/check_bench_regression.py compares it
// against bench/baselines/analysis_baseline.json). Stable schema:
//
//   {
//     "schema": "distmcu.analysis.v1",
//     "configs": [
//       {"config": "<name>", "errors": n, "warnings": n, "ok": b,
//        "codes": ["DMCU-...-..."],       // distinct, sorted
//        "diagnostics": [
//          {"code": "...", "severity": "note|warning|error",
//           "entity": "...", "message": "...", "hint": "..."}]}],
//     "total_errors": n, "total_warnings": n, "all_ok": b
//   }
//
// Additive fields may appear in later versions; consumers must key on
// "schema" and ignore unknown keys.
#include <functional>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/deployment_analyzer.hpp"
#include "model/config.hpp"
#include "runtime/batched_engine.hpp"
#include "runtime/deployment_spec.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/kv_budget.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/scheduler.hpp"

using namespace distmcu;

namespace {

/// bench/serving_throughput.cpp's deployment: full-width TinyLlama
/// blocks, layer count and vocabulary cut, streamed regime at 4 chips.
model::TransformerConfig serving_model() {
  auto cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.num_layers = 4;
  cfg.vocab_size = 512;
  cfg.ar_context = 64;
  cfg.prompt_len = 8;
  cfg.validate();
  return cfg;
}

/// bench/multimodel_serving.cpp's second tenant: a MobileBERT encoder
/// deployment sharing the arena with the generator.
model::TransformerConfig encoder_model() {
  auto cfg = model::TransformerConfig::mobile_bert();
  cfg.num_layers = 4;
  cfg.vocab_size = 512;
  cfg.ar_context = 16;
  cfg.prompt_len = 16;
  cfg.validate();
  return cfg;
}

/// examples/batched_serving.cpp's quick-run deployment.
model::TransformerConfig example_model() {
  auto cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.num_layers = 2;
  cfg.vocab_size = 100;
  cfg.ar_context = 32;
  cfg.prompt_len = 4;
  cfg.validate();
  return cfg;
}

struct NamedConfig {
  std::string name;
  std::function<analysis::AnalysisReport()> run;
};

/// One analyzed configuration per shipped bench/example engine setup.
/// Sessions are constructed once and shared across the configs that
/// reuse the same deployment (exactly like the benches do).
std::vector<NamedConfig> shipped_configs() {
  auto serving = std::make_shared<runtime::InferenceSession>(serving_model(), 4);
  auto encoder = std::make_shared<runtime::InferenceSession>(encoder_model(), 4);
  auto example = std::make_shared<runtime::InferenceSession>(example_model(), 4);

  std::vector<NamedConfig> configs;

  // bench/serving_throughput.cpp batch sweep (B in {1, 2, 4, 8}).
  for (const int batch : {1, 2, 4, 8}) {
    configs.push_back({"serving_batch" + std::to_string(batch),
                       [serving, batch] {
                         runtime::ModelRegistry reg;
                         (void)reg.add(*serving, "tinyllama",
                                       /*prefill_chunk_tokens=*/0,
                                       /*kv_quota=*/batch,
                                       /*max_resident=*/batch);
                         return analysis::DeploymentAnalyzer::analyze(
                             reg, {.total_kv_slots = batch,
                                   .max_pending = 64});
                       }});
  }

  // bench/serving_throughput.cpp SLO scenario: chunked prefill, two KV
  // slots, deadline-mixed workload (the bench's EDF-meets-deadlines
  // setup — four long best-effort backgrounds, six tight interactives).
  configs.push_back(
      {"serving_slo_chunked", [serving] {
         runtime::ModelRegistry reg;
         (void)reg.add(*serving, "tinyllama", /*prefill_chunk_tokens=*/2,
                       /*kv_quota=*/2, /*max_resident=*/2);
         analysis::Workload wl;
         wl.requests.push_back({.model = 0,
                                .prompt_tokens = 8,
                                .new_tokens = 16,
                                .deadline_cycles = runtime::kNoDeadline,
                                .count = 4});
         wl.requests.push_back({.model = 0,
                                .prompt_tokens = 2,
                                .new_tokens = 3,
                                .deadline_cycles = 160'000'000,
                                .count = 6});
         return analysis::DeploymentAnalyzer::analyze(
             reg, {.total_kv_slots = 2, .max_pending = 64}, &wl);
       }});

  // bench/serving_throughput.cpp overload scenario: two tenants over
  // one deployment, watermark borrowing, EDF. The workload carries the
  // *intended-feasible* classes (the bench additionally offers
  // deliberately-hopeless deadlines to exercise fail-fast; those are
  // rejected traffic, not deployment intent).
  configs.push_back(
      {"serving_overload", [serving] {
         runtime::ModelRegistry reg;
         (void)reg.add(*serving, "background");
         (void)reg.add(*serving, "interactive");
         runtime::BatchedEngine::MultiOptions opts;
         opts.total_kv_slots = 2;
         opts.max_pending = 12;
         opts.kv_budget = runtime::make_kv_budget(runtime::KvBudget::watermark);
         opts.fail_fast_deadlines = true;
         opts.fair_shedding = true;
         analysis::Workload wl;
         wl.requests.push_back({.model = 0,
                                .prompt_tokens = 8,
                                .new_tokens = 16,
                                .deadline_cycles = runtime::kNoDeadline,
                                .count = 16});
         wl.requests.push_back({.model = 1,
                                .prompt_tokens = 2,
                                .new_tokens = 3,
                                .deadline_cycles = 160'000'000,
                                .count = 7});
         return analysis::DeploymentAnalyzer::analyze(reg, opts, &wl);
       }});

  // bench/multimodel_serving.cpp mixed engine: TinyLlama generator +
  // MobileBERT encoder sharing 4 KV slots, static split and watermark.
  const auto multimodel = [serving, encoder](
                              std::shared_ptr<const runtime::KvBudgetPolicy>
                                  budget) {
    runtime::ModelRegistry reg;
    (void)reg.add(*serving, "tinyllama", /*prefill_chunk_tokens=*/4,
                  /*kv_quota=*/2);
    (void)reg.add(*encoder, "mobilebert", /*prefill_chunk_tokens=*/8,
                  /*kv_quota=*/2);
    analysis::Workload wl;
    wl.requests.push_back({.model = 0,
                           .prompt_tokens = 8,
                           .new_tokens = 8,
                           .deadline_cycles = runtime::kNoDeadline,
                           .count = 6});
    wl.requests.push_back({.model = 1,
                           .prompt_tokens = 16,
                           .new_tokens = 0,
                           .deadline_cycles = runtime::kNoDeadline,
                           .count = 6});
    return analysis::DeploymentAnalyzer::analyze(
        reg, {.total_kv_slots = 4, .kv_budget = std::move(budget)}, &wl);
  };
  configs.push_back({"multimodel_static", [multimodel] {
                       return multimodel(nullptr);
                     }});
  configs.push_back(
      {"multimodel_watermark", [multimodel] {
         return multimodel(
             runtime::make_kv_budget(runtime::KvBudget::watermark));
       }});

  // examples/batched_serving.cpp: fully L2-resident quick-run config.
  configs.push_back(
      {"example_batched", [example] {
         runtime::ModelRegistry reg;
         (void)reg.add(*example, "tinyllama", /*prefill_chunk_tokens=*/2,
                       /*kv_quota=*/2, /*max_resident=*/2);
         analysis::Workload wl;
         wl.requests.push_back({.model = 0,
                                .prompt_tokens = 4,
                                .new_tokens = 6,
                                .deadline_cycles = runtime::kNoDeadline,
                                .count = 4});
         return analysis::DeploymentAnalyzer::analyze(
             reg, {.total_kv_slots = 2, .max_pending = 8}, &wl);
       }});

  // bench/quant_serving.cpp mixed registry: an fp16 TinyLlama decoder
  // next to an int8 MobileBERT encoder in one arena, registered through
  // DeploymentSpec so the analyzer prices each tenant's KV bytes at its
  // declared packed width.
  configs.push_back(
      {"quant_mixed", [] {
         runtime::DeploymentSpec llama;
         llama.model = serving_model();
         llama.model.name = "tinyllama";
         llama.chips = 2;
         llama.kv_layout = runtime::KvLayout::fp16;
         llama.prefill_chunk_tokens = 4;
         runtime::DeploymentSpec bert;
         bert.model = encoder_model();
         bert.model.name = "mobilebert";
         bert.model.num_layers = 2;
         bert.chips = 2;
         bert.precision = runtime::Precision::int8;
         bert.kv_layout = runtime::KvLayout::int8;
         runtime::ModelRegistry reg;
         (void)reg.add(llama);
         (void)reg.add(bert);
         analysis::Workload wl;
         wl.requests.push_back({.model = 0,
                                .prompt_tokens = 8,
                                .new_tokens = 8,
                                .deadline_cycles = runtime::kNoDeadline,
                                .count = 4});
         wl.requests.push_back({.model = 1,
                                .prompt_tokens = 16,
                                .new_tokens = 0,
                                .deadline_cycles = runtime::kNoDeadline,
                                .count = 4});
         return analysis::DeploymentAnalyzer::analyze(
             reg, {.total_kv_slots = 2, .max_pending = 16}, &wl);
       }});

  return configs;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

void write_json(const std::string& path,
                const std::vector<std::string>& names,
                const std::vector<analysis::AnalysisReport>& reports) {
  std::ofstream os(path);
  int total_errors = 0;
  int total_warnings = 0;
  os << "{\n  \"schema\": \"distmcu.analysis.v1\",\n  \"configs\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& rep = reports[i];
    total_errors += rep.errors();
    total_warnings += rep.warnings();
    os << "    {\"config\": \"" << json_escape(names[i]) << "\", \"errors\": "
       << rep.errors() << ", \"warnings\": " << rep.warnings()
       << ", \"ok\": " << (rep.ok() ? "true" : "false") << ",\n"
       << "     \"codes\": [";
    const auto codes = rep.codes();
    for (std::size_t c = 0; c < codes.size(); ++c) {
      os << (c > 0 ? ", " : "") << "\"" << json_escape(codes[c]) << "\"";
    }
    os << "],\n     \"diagnostics\": [";
    for (std::size_t d = 0; d < rep.diagnostics.size(); ++d) {
      const auto& diag = rep.diagnostics[d];
      os << (d > 0 ? ",\n       " : "\n       ") << "{\"code\": \""
         << json_escape(diag.code) << "\", \"severity\": \""
         << analysis::severity_name(diag.severity) << "\", \"entity\": \""
         << json_escape(diag.entity) << "\",\n        \"message\": \""
         << json_escape(diag.message) << "\", \"hint\": \""
         << json_escape(diag.hint) << "\"}";
    }
    os << (rep.diagnostics.empty() ? "]}" : "\n     ]}")
       << (i + 1 < reports.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"total_errors\": " << total_errors
     << ",\n  \"total_warnings\": " << total_warnings << ",\n  \"all_ok\": "
     << (total_errors == 0 ? "true" : "false") << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string only;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      only = argv[++i];
    } else {
      std::cerr << "usage: analyze [--json <path>] [--config <name>]\n";
      return 2;
    }
  }

  auto configs = shipped_configs();
  std::vector<std::string> names;
  std::vector<analysis::AnalysisReport> reports;
  bool matched = false;
  for (const auto& cfg : configs) {
    if (!only.empty() && cfg.name != only) continue;
    matched = true;
    std::cout << "== " << cfg.name << " ==\n";
    analysis::AnalysisReport rep = cfg.run();
    std::cout << rep.to_text() << "\n";
    names.push_back(cfg.name);
    reports.push_back(std::move(rep));
  }
  if (!only.empty() && !matched) {
    std::cerr << "analyze: no config named '" << only << "'\n";
    return 2;
  }

  if (!json_path.empty()) {
    write_json(json_path, names, reports);
    std::cout << "wrote " << json_path << "\n";
  }

  int total_errors = 0;
  for (const auto& rep : reports) total_errors += rep.errors();
  if (total_errors > 0) {
    std::cerr << "analyze: " << total_errors
              << " error-severity diagnostic(s) across shipped configs\n";
    return 1;
  }
  return 0;
}
