#include "sim/trace_export.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <utility>

namespace distmcu::sim {

namespace {
/// Minimal JSON string escaping for span labels (quotes and backslashes
/// only — labels are library-generated identifiers).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

int lane_tid(const Span& span) {
  // Block-level spans keep one track per activity category; serving
  // spans tagged with a request id get their own lane above those, so
  // concurrent batch members render as overlapping rows instead of one
  // serialized track.
  if (span.request == kNoRequest) return static_cast<int>(span.category);
  return static_cast<int>(kNumCategories) + span.request;
}
}  // namespace

void write_chrome_trace(const Tracer& tracer, double freq_hz, std::ostream& os) {
  const double cycles_to_us = 1e6 / freq_hz;
  // Default ostream precision (6 significant digits) rounds timestamps
  // past ~1M cycles, visibly shifting and overlapping spans in Perfetto;
  // max_digits10 keeps the microsecond positions round-trip exact.
  const auto saved_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& span : tracer.spans()) {
    if (!first) os << ",";
    first = false;
    const double ts = static_cast<double>(span.begin) * cycles_to_us;
    const double dur = static_cast<double>(span.duration()) * cycles_to_us;
    os << "{\"name\":\"" << escape(span.label.empty() ? category_name(span.category)
                                                      : span.label)
       << "\",\"cat\":\"" << category_name(span.category) << "\",\"ph\":\"X\""
       << ",\"ts\":" << ts << ",\"dur\":" << dur << ",\"pid\":" << span.chip
       << ",\"tid\":" << lane_tid(span)
       << ",\"args\":{\"bytes\":" << span.bytes << ",\"request\":" << span.request;
    // Model tags exist only in multi-model serving traces; single-model
    // and block-level traces stay byte-identical to the historical form.
    if (span.model != kNoModel) os << ",\"model\":" << span.model;
    os << "}}";
  }
  // Process/thread names so Perfetto shows "chip N" / category labels /
  // "request N" serving lanes. Request-lane metadata is emitted only for
  // (chip, request) pairs that actually carry spans, so serving traces —
  // where charges land on the engine's reporting chip — do not grow
  // phantom empty lanes on every other chip.
  int max_chip = -1;
  std::set<std::pair<int, int>> request_lanes;
  // Model of each request lane (kNoModel outside multi-model serving):
  // lane names grow a "model N:" prefix so Perfetto groups each
  // deployment's requests visually.
  std::map<std::pair<int, int>, int> lane_model;
  for (const auto& span : tracer.spans()) {
    max_chip = std::max(max_chip, span.chip);
    if (span.request != kNoRequest) {
      request_lanes.emplace(span.chip, span.request);
      if (span.model != kNoModel) {
        lane_model[{span.chip, span.request}] = span.model;
      }
    }
  }
  for (int chip = 0; chip <= max_chip; ++chip) {
    os << ",{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << chip
       << ",\"args\":{\"name\":\"chip " << chip << "\"}}";
    for (int cat = 0; cat < static_cast<int>(kNumCategories); ++cat) {
      os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << chip
         << ",\"tid\":" << cat << ",\"args\":{\"name\":\""
         << category_name(static_cast<Category>(cat)) << "\"}}";
    }
  }
  for (const auto& [chip, req] : request_lanes) {
    os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << chip
       << ",\"tid\":" << static_cast<int>(kNumCategories) + req
       << ",\"args\":{\"name\":\"";
    const auto model_it = lane_model.find({chip, req});
    if (model_it != lane_model.end()) {
      os << "model " << model_it->second << ": ";
    }
    os << "request " << req << "\"}}";
  }
  os << "]}";
  os.precision(saved_precision);
}

}  // namespace distmcu::sim
