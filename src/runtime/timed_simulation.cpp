#include "runtime/timed_simulation.hpp"

#include <algorithm>
#include <cmath>

#include "chip/kernel_timing.hpp"
#include "noc/collectives.hpp"
#include "util/check.hpp"

namespace distmcu::runtime {

SystemConfig SystemConfig::siracusa_system() { return SystemConfig{}; }

Cycles RunReport::t_comp_total() const {
  Cycles sum = 0;
  for (const Cycles t : t_comp) sum += t;
  return sum;
}

namespace {

/// Cost of one op on one chip, split into the parts the breakdown needs.
/// Model (DESIGN.md §3):
///   duration = [L3 fetch, streamed regime only] + launch overhead
///              + max(compute, L2->L1 tile DMA)
/// The L3 fetch is synchronous because the streamed regime by definition
/// lacks the L2 space to double-buffer it; the tile DMA overlaps with
/// compute via L1 double-buffering.
struct OpCost {
  Cycles duration = 0;
  Cycles l3_part = 0;       // -> Fig.4 "DMA L3<->L2"
  Cycles l2l1_part = 0;     // -> "DMA L2<->L1"
  Cycles compute_part = 0;  // -> "Computation"
  Cycles active = 0;        // cluster-active cycles (energy T_comp)
  Bytes l1_bytes = 0;
  Bytes l3_bytes = 0;
};

OpCost cost_op(const KernelOp& op, const chip::KernelTiming& timing,
               const chip::ChipConfig& cc, const partition::PrecisionConfig& prec,
               bool streamed) {
  chip::KernelCost kc;
  const Bytes ab = prec.act_bytes;
  Bytes act_bytes = 0;
  switch (op.kind) {
    case OpKind::gemm: {
      kc = timing.gemm(op.m, op.n, op.k, prec.mac_precision, 1, 1);
      act_bytes = static_cast<Bytes>(op.m * op.k + op.m * op.n) * ab;
      break;
    }
    case OpKind::softmax:
      kc = timing.softmax(op.m, op.n, 1);
      act_bytes = static_cast<Bytes>(2 * op.m * op.n) * ab;
      break;
    case OpKind::norm:
      kc = timing.norm(op.m, op.n, 1);
      act_bytes = static_cast<Bytes>(2 * op.m * op.n) * ab;
      break;
    case OpKind::elementwise:
      kc = timing.elementwise(op.n, 1);
      act_bytes = static_cast<Bytes>(2 * op.n) * ab;
      break;
    case OpKind::rope:
      kc = timing.rope(op.m, op.n, 1);
      act_bytes = static_cast<Bytes>(2 * op.m * op.n) * ab;
      break;
  }

  OpCost out;
  // Stationary operands (weights, KV slices) plus streaming activations
  // all flow through L1 via the cluster DMA.
  out.l1_bytes = op.weight_bytes + op.kv_bytes + act_bytes;
  const auto l1_dma = cc.dma_setup_l1 + static_cast<Cycles>(std::ceil(
                          static_cast<double>(out.l1_bytes) / cc.bw_l2_l1));
  if (streamed) {
    // Streamed regime: L2 cannot hold the block, so weights, the KV
    // cache AND activation intermediates live off-chip ("off-chip memory
    // is required to hold model weights and intermediate tensors of the
    // current block", paper Sec. V-B) — every operand byte crosses the
    // L3 interface synchronously.
    out.l3_bytes = op.weight_bytes + op.kv_bytes + act_bytes;
    out.l3_part = cc.l3_dma_cycles(out.l3_bytes);
  }
  const Cycles body = std::max(kc.compute_cycles, l1_dma);
  out.duration = out.l3_part + kc.overhead_cycles + body;
  // Winner-takes-the-max attribution keeps the stacked bars readable:
  // an op shows up as DMA-bound or compute-bound, matching how GVSoC
  // traces read.
  if (kc.compute_cycles >= l1_dma) {
    out.compute_part = kc.overhead_cycles + body;
  } else {
    out.compute_part = kc.overhead_cycles;
    out.l2l1_part = body;
  }
  // Active cluster time is pure compute: kernel prologues (DMA
  // programming, tile setup) run on Siracusa's fabric controller while
  // the cluster cores are clock-gated, so they are not charged to the
  // P*T_comp energy term.
  out.active = kc.compute_cycles;
  return out;
}

struct PhaseResult {
  std::vector<Cycles> end;
  std::vector<Breakdown> contrib;
};

}  // namespace

TimedBlockSimulation::TimedBlockSimulation(SystemConfig sys) : sys_(std::move(sys)) {
  DISTMCU_CHECK(sys_.group_size >= 2, "SystemConfig: group_size must be >= 2");
}

RunReport TimedBlockSimulation::run(const partition::PartitionPlan& plan,
                                    model::Mode mode, sim::Tracer* tracer,
                                    int attention_span_override) const {
  const partition::MemoryPlanner planner(sys_.chip, sys_.precision);
  const partition::MemoryPlan mp = planner.plan(plan, mode);
  const bool streamed = mp.residency == partition::Residency::streamed;
  const BlockProgram prog =
      build_block_program(plan, sys_.precision, mode, attention_span_override);
  const int n = plan.num_chips();
  const noc::Topology topo = sys_.flat_topology
                                 ? noc::Topology::flat(n)
                                 : noc::Topology::hierarchical(n, sys_.group_size);
  const chip::KernelTiming timing(sys_.chip.timing);
  noc::CollectiveTimer ctimer(topo, sys_.link, sys_.chip.timing);

  RunReport rep;
  rep.num_chips = n;
  rep.mode = mode;
  rep.residency = mp.residency;
  rep.t_comp.assign(static_cast<std::size_t>(n), 0);

  auto run_phase = [&](const std::vector<Cycles>& start,
                       const std::vector<std::vector<KernelOp>>& per_chip) {
    PhaseResult res;
    res.end.resize(static_cast<std::size_t>(n));
    res.contrib.resize(static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c) {
      Cycles t = start[static_cast<std::size_t>(c)];
      Breakdown bd;
      for (const KernelOp& op : per_chip[static_cast<std::size_t>(c)]) {
        const OpCost oc = cost_op(op, timing, sys_.chip, sys_.precision, streamed);
        if (tracer != nullptr) {
          if (oc.l3_part > 0) {
            tracer->record(c, sim::Category::dma_l3_l2, t, t + oc.l3_part, oc.l3_bytes,
                           op.label + ":l3");
          }
          tracer->record(c, sim::Category::compute, t + oc.l3_part, t + oc.duration,
                         0, op.label);
        }
        rep.traffic.l2_l1 += oc.l1_bytes;
        rep.traffic.l3_l2 += oc.l3_bytes;
        rep.t_comp[static_cast<std::size_t>(c)] += oc.active;
        bd.compute += oc.compute_part;
        bd.dma_l3_l2 += oc.l3_part;
        bd.dma_l2_l1 += oc.l2l1_part;
        t += oc.duration;
      }
      res.end[static_cast<std::size_t>(c)] = t;
      res.contrib[static_cast<std::size_t>(c)] = bd;
    }
    return res;
  };

  auto run_root_ops = [&](Cycles start, const std::vector<KernelOp>& ops) {
    Cycles t = start;
    for (const KernelOp& op : ops) {
      const OpCost oc = cost_op(op, timing, sys_.chip, sys_.precision, /*streamed=*/false);
      rep.traffic.l2_l1 += oc.l1_bytes;
      rep.t_comp[static_cast<std::size_t>(topo.root())] += oc.active;
      if (tracer != nullptr) {
        tracer->record(topo.root(), sim::Category::compute, t, t + oc.duration, 0,
                       op.label);
      }
      t += oc.duration;
    }
    return t;
  };

  auto fold_accumulates = [&](const noc::CollectiveTiming& ct) {
    for (int c = 0; c < n; ++c) {
      rep.t_comp[static_cast<std::size_t>(c)] +=
          ct.accumulate_per_chip[static_cast<std::size_t>(c)];
    }
  };

  // ---- timeline -------------------------------------------------------
  const std::vector<Cycles> zeros(static_cast<std::size_t>(n), 0);
  const PhaseResult ph_a = run_phase(zeros, prog.mhsa_phase);
  const Cycles a_end = *std::max_element(ph_a.end.begin(), ph_a.end.end());

  const auto red1 = ctimer.reduce(ph_a.end, prog.sync_payload_bytes, tracer);
  fold_accumulates(red1);
  rep.traffic.c2c += red1.c2c_bytes;

  const Cycles mid_end = run_root_ops(red1.finish, prog.root_mid);

  const auto bc1 = ctimer.broadcast(mid_end, prog.sync_payload_bytes, tracer);
  rep.traffic.c2c += bc1.c2c_bytes;

  const PhaseResult ph_b = run_phase(bc1.chip_ready, prog.ffn_phase);
  const Cycles b_end = *std::max_element(ph_b.end.begin(), ph_b.end.end());

  const auto red2 = ctimer.reduce(ph_b.end, prog.sync_payload_bytes, tracer);
  fold_accumulates(red2);
  rep.traffic.c2c += red2.c2c_bytes;

  const Cycles end_end = run_root_ops(red2.finish, prog.root_end);

  const auto bc2 = ctimer.broadcast(end_end, prog.sync_payload_bytes, tracer);
  rep.traffic.c2c += bc2.c2c_bytes;
  Cycles block_end = bc2.finish;

  // ---- next-block prefetch (double-buffered regime) --------------------
  Cycles prefetch_end = 0;
  if (mp.residency == partition::Residency::double_buffered) {
    for (int c = 0; c < n; ++c) {
      const Bytes shard =
          plan.chip_block_weight_elems(c) * sys_.precision.weight_bytes;
      rep.prefetch_bytes += shard;
      const auto dur = sys_.chip.l3_dma_cycles(shard);
      prefetch_end = std::max(prefetch_end, dur);
      if (tracer != nullptr) {
        tracer->record(c, sim::Category::dma_l3_l2, 0, dur, shard, "prefetch_next_block");
      }
    }
    rep.traffic.l3_l2 += rep.prefetch_bytes;
  }
  if (sys_.accounting == LatencyAccounting::steady_state) {
    block_end = std::max(block_end, prefetch_end);
  }
  rep.block_cycles = block_end;

  // ---- breakdown attribution (segment walk) ----------------------------
  // Each wall-clock segment of the block is attributed to the categories
  // of the chip on its critical path, scaled so segments sum exactly to
  // the block latency (Fig. 4 stacked bars).
  Breakdown bd;
  auto attribute_phase = [&](const PhaseResult& ph, Cycles seg_duration) {
    const auto critical = static_cast<std::size_t>(
        std::max_element(ph.end.begin(), ph.end.end()) - ph.end.begin());
    const Breakdown& cb = ph.contrib[critical];
    const Cycles cb_total = cb.total();
    if (cb_total == 0 || seg_duration == 0) {
      bd.compute += seg_duration;
      return;
    }
    const double scale = static_cast<double>(seg_duration) / static_cast<double>(cb_total);
    const auto l3 = static_cast<Cycles>(static_cast<double>(cb.dma_l3_l2) * scale);
    const auto l2 = static_cast<Cycles>(static_cast<double>(cb.dma_l2_l1) * scale);
    const auto cc = static_cast<Cycles>(static_cast<double>(cb.c2c) * scale);
    bd.dma_l3_l2 += l3;
    bd.dma_l2_l1 += l2;
    bd.c2c += cc;
    bd.compute += seg_duration - l3 - l2 - cc;  // remainder keeps the sum exact
  };

  attribute_phase(ph_a, a_end);
  bd.c2c += red1.finish - a_end;
  bd.compute += mid_end - red1.finish;
  bd.c2c += bc1.finish - mid_end;
  attribute_phase(ph_b, b_end - bc1.finish);
  bd.c2c += red2.finish - b_end;
  bd.compute += end_end - red2.finish;
  bd.c2c += bc2.finish - end_end;
  if (block_end > bc2.finish) bd.dma_l3_l2 += block_end - bc2.finish;  // prefetch stall
  rep.breakdown = bd;
  DISTMCU_CHECK(rep.breakdown.total() == rep.block_cycles,
              "TimedBlockSimulation: breakdown does not sum to block latency");
  return rep;
}

}  // namespace distmcu::runtime
