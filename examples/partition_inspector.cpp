// Deployment-planning tool: prints the partition plan, per-chip shard
// shapes, the L2 memory plan with the residency decision, and the
// communication schedule for a model/chip-count pair — the "why does my
// deployment behave like this" debugging view.
//
//   ./examples/partition_inspector [model] [num_chips]
//     model: tinyllama | mobilebert | scaled64
#include <cstdlib>
#include <iostream>
#include <string>

#include "model/config.hpp"
#include "partition/memory_planner.hpp"
#include "partition/plan.hpp"
#include "runtime/block_program.hpp"
#include "util/table.hpp"

using namespace distmcu;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "tinyllama";
  const int n_chips = argc > 2 ? std::atoi(argv[2]) : 8;

  model::TransformerConfig cfg;
  if (which == "mobilebert") {
    cfg = model::TransformerConfig::mobile_bert();
  } else if (which == "scaled64") {
    cfg = model::TransformerConfig::tiny_llama_scaled(64);
  } else {
    cfg = model::TransformerConfig::tiny_llama_42m();
  }

  const auto plan = partition::PartitionPlan::create(cfg, n_chips);
  std::cout << "=== partition plan: " << cfg.name << " on " << n_chips
            << " chips ===\n";
  util::Table slices({"chip", "heads", "proj width", "FFN cols", "shard KiB/block"});
  for (int c = 0; c < n_chips; ++c) {
    const auto& s = plan.slice(c);
    slices.row()
        .add(c)
        .add("[" + std::to_string(s.head_begin) + "," + std::to_string(s.head_end) + ")")
        .add(plan.proj_width(c))
        .add("[" + std::to_string(s.f_begin) + "," + std::to_string(s.f_end) + ")")
        .add(static_cast<double>(plan.chip_block_weight_elems(c) * 2) / 1024.0, 1);
  }
  slices.print(std::cout);
  std::cout << "zero-duplication check: shards sum to "
            << plan.config().block_weight_elems() << " elements (exact)\n\n";

  const partition::MemoryPlanner planner(chip::ChipConfig::siracusa(),
                                         partition::PrecisionConfig{});
  for (const auto mode : {model::Mode::autoregressive, model::Mode::prompt}) {
    std::cout << "=== memory plan (" << model::mode_name(mode) << ") ===\n"
              << planner.plan(plan, mode).describe() << "\n";
  }

  const auto prog = runtime::build_block_program(plan, partition::PrecisionConfig{},
                                                 model::Mode::autoregressive);
  std::cout << "=== block program (chip 0, autoregressive) ===\n";
  util::Table ops({"phase", "op", "m", "n", "k", "weight KiB", "kv KiB"});
  for (const auto& op : prog.mhsa_phase[0]) {
    ops.row().add("mhsa").add(op.label).add(op.m).add(op.n).add(op.k)
        .add(static_cast<double>(op.weight_bytes) / 1024.0, 1)
        .add(static_cast<double>(op.kv_bytes) / 1024.0, 1);
  }
  for (const auto& op : prog.ffn_phase[0]) {
    ops.row().add("ffn").add(op.label).add(op.m).add(op.n).add(op.k)
        .add(static_cast<double>(op.weight_bytes) / 1024.0, 1)
        .add(static_cast<double>(op.kv_bytes) / 1024.0, 1);
  }
  ops.print(std::cout);
  std::cout << "\nsynchronizations per block: " << partition::PartitionPlan::kSyncsPerBlock
            << " (reduce+broadcast each), payload " << prog.sync_payload_bytes
            << " B\n";
  return 0;
}
