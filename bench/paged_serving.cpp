// Paged-KV serving bench: the same prefix-heavy workload through three
// engines at IDENTICAL total KV bytes — whole-request slots (the
// historical engine), page-granular KV (admission charges only the
// pages a request's current length needs, decode grows page by page),
// and paged KV with copy-on-write prefix sharing (requests repeating
// the registered system prompt adopt its read-only pages instead of
// recomputing the shared prefill).
//
// The point of paging is concurrency at equal silicon: a slot engine
// must reserve one full-context KV set per admitted request, so two
// sets admit two requests — while the paged engine carves the same two
// sets into pages and admits every request whose *current* footprint
// fits. The bench gates peak_batch strictly higher under paging, every
// stream bit-exact against the dedicated single-request engine, and
// zero pages leaked after the drain. The prefix run must additionally
// register hits and finish in fewer cycles than cold paging (the
// adopted chunks are prefill work never executed).
//
// --json <path> writes the machine-readable result used by the CI
// perf-regression gate (tools/check_bench_regression.py compares it
// against bench/baselines/paging_baseline.json). Stable schema:
//
//   {
//     "schema": "distmcu.paging.v1",
//     "freq_hz": F,
//     "model": {"name": "...", "chips": n, "ar_context": n,
//               "prompt_len": n, "chunk": n},
//     "jobs": n, "page_tokens": n,
//     "kv_pool_bytes": N,          // identical across all three configs
//     "configs": [
//       {"config": "slot" | "paged" | "paged+prefix",
//        "kv_units": n,            // slots, or pages
//        "peak_batch": n, "completed": n, "total_cycles": n,
//        "tokens_per_s": x, "bit_exact": true, "pages_leaked": 0,
//        "prefix_hits": n, "prefix_shared_tokens": n, "cow_forks": n}],
//     "peak_batch_gain_vs_slot": x,      // > 1.0 gated in CI
//     "prefix_prompt_cycles_saved": n    // paged - paged+prefix cycles
//   }
//
// Integer fields are exact simulated cycles/counts; doubles are emitted
// with enough digits to round-trip. Additive fields may appear in later
// versions; consumers must key on "schema" and ignore unknown keys.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runtime/batched_engine.hpp"
#include "runtime/inference_session.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

using namespace distmcu;

namespace {

constexpr int kSlots = 2;        // full-context KV sets in the shared arena
constexpr int kPageTokens = 4;   // page size in token positions
constexpr int kChunk = 4;        // prefill chunk (adoption floors to this)
constexpr int kJobs = 12;

/// Full-width TinyLlama blocks (layer count and vocabulary cut so the
/// functional numerics stay quick) on 4 chips; 64-token context so one
/// KV set is 16 four-token pages.
model::TransformerConfig llama_model() {
  auto cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.name = "tinyllama";
  cfg.num_layers = 4;
  cfg.vocab_size = 512;
  cfg.ar_context = 64;
  cfg.prompt_len = 8;
  cfg.validate();
  return cfg;
}

/// Every job opens with the same 8-token system prompt — the
/// prefix-sharing registry's bread and butter — and decodes a
/// job-specific number of tokens.
std::vector<int> job_prompt() { return {11, 7, 3, 9, 2, 5, 13, 4}; }
int job_new_tokens(int i) { return 6 + (i * 3) % 7; }

struct ConfigResult {
  std::string config;
  int kv_units = 0;
  Bytes pool_bytes = 0;
  runtime::ServingStats stats;
  double tokens_per_s = 0.0;
  bool bit_exact = true;
  int pages_leaked = 0;
};

ConfigResult run_config(const runtime::InferenceSession& session,
                        const std::string& name, int page_tokens,
                        bool prefix_sharing, double freq_hz,
                        const std::vector<runtime::GenerationResult>& solo) {
  ConfigResult out;
  out.config = name;
  const bool paged = page_tokens > 0;
  out.kv_units = paged
                     ? kSlots * (session.config().ar_context / page_tokens)
                     : kSlots;
  runtime::BatchedEngine engine(session,
                                {.max_batch = out.kv_units,
                                 .max_pending = 64,
                                 .prefill_chunk_tokens = kChunk,
                                 .kv_page_tokens = page_tokens,
                                 .prefix_sharing = prefix_sharing});
  out.pool_bytes = paged ? engine.kv_pages().pool_bytes()
                         : engine.kv_slots().pool_bytes();
  // One warm-up request first (its completed prefill registers the
  // system prompt in the prefix cache), then the burst: every burst
  // request can adopt the registered pages instead of recomputing them.
  std::vector<runtime::RequestId> ids;
  ids.push_back(*engine.submit(job_prompt(), job_new_tokens(0)));
  (void)engine.run_to_completion();
  for (int i = 1; i < kJobs; ++i) {
    ids.push_back(*engine.submit(job_prompt(), job_new_tokens(i)));
  }
  // run_to_completion returns the engine-lifetime finished list, so the
  // second call's return value covers the warm-up request too.
  const auto results = engine.run_to_completion();
  util::check(results.size() == static_cast<std::size_t>(kJobs),
              "not every job completed");
  for (int i = 0; i < kJobs; ++i) {
    for (const auto& r : results) {
      if (r.id != ids[static_cast<std::size_t>(i)]) continue;
      if (r.gen.tokens != solo[static_cast<std::size_t>(i)].tokens) {
        out.bit_exact = false;
      }
    }
  }
  out.stats = engine.stats();
  out.tokens_per_s = out.stats.aggregate_tokens_per_s(freq_hz);
  out.pages_leaked = paged
                         ? engine.kv_pages().in_use() - engine.prefix_cache_pages()
                         : engine.kv_slots().in_use();
  return out;
}

void write_json(const std::string& path, double freq_hz, Bytes pool_bytes,
                const std::vector<ConfigResult>& configs,
                double peak_gain, Cycles prefix_saved) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot open --json path " << path << "\n";
    std::exit(2);
  }
  os.precision(17);
  os << "{\n  \"schema\": \"distmcu.paging.v1\",\n"
     << "  \"freq_hz\": " << freq_hz << ",\n"
     << "  \"model\": {\"name\": \"tinyllama\", \"chips\": 4, "
        "\"ar_context\": 64, \"prompt_len\": 8, \"chunk\": "
     << kChunk << "},\n"
     << "  \"jobs\": " << kJobs << ",\n"
     << "  \"page_tokens\": " << kPageTokens << ",\n"
     << "  \"kv_pool_bytes\": " << pool_bytes << ",\n  \"configs\": [";
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const ConfigResult& r = configs[i];
    os << (i == 0 ? "" : ",") << "\n    {\"config\": \""
       << bench::json_escape(r.config) << "\""
       << ", \"kv_units\": " << r.kv_units
       << ", \"peak_batch\": " << r.stats.peak_batch
       << ", \"completed\": " << r.stats.completed
       << ", \"total_cycles\": " << r.stats.total_cycles
       << ", \"tokens_per_s\": " << r.tokens_per_s
       << ",\n     \"bit_exact\": " << (r.bit_exact ? "true" : "false")
       << ", \"pages_leaked\": " << r.pages_leaked
       << ", \"prefix_hits\": " << r.stats.prefix_hits
       << ", \"prefix_shared_tokens\": " << r.stats.prefix_shared_tokens
       << ", \"cow_forks\": " << r.stats.cow_forks << "}";
  }
  os << "\n  ],\n  \"peak_batch_gain_vs_slot\": " << peak_gain
     << ",\n  \"prefix_prompt_cycles_saved\": " << prefix_saved << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  const double freq_hz = 500e6;

  const runtime::InferenceSession session(llama_model(), 4);

  std::cout << "Paged-KV serving — 1 warm-up + " << kJobs - 1
            << "-request burst repeating one system prompt through "
            << kSlots << " full-context KV sets (= " << kSlots * 16
            << " pages of " << kPageTokens << " tokens)\n\n";

  // Dedicated single-request references: every engine's streams must
  // match these bit-exactly regardless of paging or sharing.
  std::vector<runtime::GenerationResult> solo;
  for (int i = 0; i < kJobs; ++i) {
    solo.push_back(session.generate(job_prompt(), job_new_tokens(i)));
  }

  const std::vector<ConfigResult> configs = {
      run_config(session, "slot", 0, false, freq_hz, solo),
      run_config(session, "paged", kPageTokens, false, freq_hz, solo),
      run_config(session, "paged+prefix", kPageTokens, true, freq_hz, solo),
  };
  const ConfigResult& slot = configs[0];
  const ConfigResult& paged = configs[1];
  const ConfigResult& shared = configs[2];

  // The whole comparison is at equal silicon: identical pool bytes.
  util::check(slot.pool_bytes == paged.pool_bytes &&
                  paged.pool_bytes == shared.pool_bytes,
              "KV pools differ across configs; the comparison is void");

  util::Table table({"config", "kv_units", "peak_batch", "total_mcyc",
                     "tokens_per_s", "prefix_hits", "bit_exact"});
  for (const ConfigResult& r : configs) {
    table.row()
        .add(r.config)
        .add(r.kv_units)
        .add(r.stats.peak_batch)
        .add(static_cast<double>(r.stats.total_cycles) / 1e6, 2)
        .add(r.tokens_per_s, 1)
        .add(r.stats.prefix_hits)
        .add(r.bit_exact ? "yes" : "NO");
  }
  table.print(std::cout);

  const double peak_gain = static_cast<double>(paged.stats.peak_batch) /
                           static_cast<double>(slot.stats.peak_batch);
  const Cycles prefix_saved =
      paged.stats.total_cycles - shared.stats.total_cycles;
  std::cout << "\nsame " << kSlots
            << "-set KV arena: paging admits " << paged.stats.peak_batch
            << " concurrent requests where slots admit "
            << slot.stats.peak_batch << " (" << peak_gain
            << "x), because admission charges only the pages the current "
               "length needs.\nprefix sharing adopts the system prompt's "
               "pages on "
            << shared.stats.prefix_hits << " request(s) ("
            << shared.stats.prefix_shared_tokens
            << " tokens adopted, " << shared.stats.cow_forks
            << " CoW fork(s)) and saves " << prefix_saved
            << " cycles of repeated prefill.\n";

  // --- self-gate ---------------------------------------------------------
  bool ok = true;
  for (const ConfigResult& r : configs) {
    if (!r.bit_exact) {
      std::cout << "FAIL: " << r.config
                << " streams diverged from the dedicated engine\n";
      ok = false;
    }
    if (r.pages_leaked != 0) {
      std::cout << "FAIL: " << r.config << " leaked " << r.pages_leaked
                << " KV unit(s) after the drain\n";
      ok = false;
    }
    if (r.stats.completed != kJobs) {
      std::cout << "FAIL: " << r.config << " completed " << r.stats.completed
                << "/" << kJobs << "\n";
      ok = false;
    }
  }
  if (paged.stats.peak_batch <= slot.stats.peak_batch) {
    std::cout << "FAIL: paged peak batch " << paged.stats.peak_batch
              << " not above the slot engine's " << slot.stats.peak_batch
              << " at equal KV bytes\n";
    ok = false;
  }
  if (shared.stats.prefix_hits < 1) {
    std::cout << "FAIL: prefix sharing never hit on the repeated prompt\n";
    ok = false;
  }
  if (shared.stats.total_cycles >= paged.stats.total_cycles) {
    std::cout << "FAIL: prefix sharing saved no cycles ("
              << shared.stats.total_cycles << " vs cold "
              << paged.stats.total_cycles << ")\n";
    ok = false;
  }

  std::cout << "\nCSV:\n";
  table.write_csv(std::cout);

  if (!json_path.empty()) {
    write_json(json_path, freq_hz, slot.pool_bytes, configs, peak_gain,
               prefix_saved);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return ok ? 0 : 1;
}
