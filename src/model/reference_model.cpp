#include "model/reference_model.hpp"

#include <algorithm>

#include "kernels/attention.hpp"
#include "kernels/gemm.hpp"
#include "kernels/ops.hpp"
#include "kernels/rope.hpp"
#include "util/check.hpp"

namespace distmcu::model {

ReferenceModel::ReferenceModel(const TransformerConfig& cfg, const Weights& weights)
    : cfg_(cfg), weights_(weights) {
  cfg_.validate();
  DISTMCU_CHECK(weights.num_layers() == cfg.num_layers,
              "ReferenceModel: weights/config layer mismatch");
}

std::vector<KvCache> ReferenceModel::make_caches(int capacity) const {
  std::vector<KvCache> caches;
  caches.reserve(static_cast<std::size_t>(cfg_.num_layers));
  for (int l = 0; l < cfg_.num_layers; ++l) caches.emplace_back(capacity, cfg_.proj_dim());
  return caches;
}

Tensor ReferenceModel::norm(const Tensor& x, const Tensor& gamma,
                            const Tensor& beta) const {
  Tensor out(x.rows(), x.cols());
  if (cfg_.norm == NormKind::rmsnorm) {
    kernels::rmsnorm_rows(x.span(), gamma.span(), out.span(), x.rows(), x.cols(),
                          cfg_.norm_eps);
  } else {
    kernels::layernorm_rows(x.span(), gamma.span(), beta.span(), out.span(), x.rows(),
                            x.cols(), cfg_.norm_eps);
  }
  return out;
}

void ReferenceModel::apply_activation(Tensor& x) const {
  switch (cfg_.act) {
    case Activation::gelu: kernels::gelu(x.span()); break;
    case Activation::silu: kernels::silu(x.span()); break;
    case Activation::relu: kernels::relu(x.span()); break;
  }
}

Tensor ReferenceModel::mhsa(const Tensor& x, int layer, std::vector<KvCache>* caches,
                            int pos_offset) const {
  const LayerWeights& w = weights_.layer(layer);
  const int s = x.rows();
  const int e = cfg_.embed_dim;
  const int ph = cfg_.proj_dim();
  const int p = cfg_.head_dim;

  Tensor q(s, ph), k(s, ph), v(s, ph);
  kernels::gemm(x.span(), w.wq.span(), q.span(), s, ph, e);
  kernels::gemm(x.span(), w.wk.span(), k.span(), s, ph, e);
  kernels::gemm(x.span(), w.wv.span(), v.span(), s, ph, e);

  if (cfg_.pos == PosEmbed::rope) {
    // RoPE per head on Q and K (cached K is post-rotation).
    for (int h = 0; h < cfg_.num_heads; ++h) {
      Tensor qh = q.slice_cols(h * p, (h + 1) * p);
      Tensor kh = k.slice_cols(h * p, (h + 1) * p);
      kernels::rope_apply(qh.span(), s, p, pos_offset, cfg_.rope_base);
      kernels::rope_apply(kh.span(), s, p, pos_offset, cfg_.rope_base);
      for (int r = 0; r < s; ++r) {
        for (int c = 0; c < p; ++c) {
          q.at(r, h * p + c) = qh.at(r, c);
          k.at(r, h * p + c) = kh.at(r, c);
        }
      }
    }
  }

  if (caches != nullptr) {
    auto& cache = (*caches)[static_cast<std::size_t>(layer)];
    for (int r = 0; r < s; ++r) cache.append(k.row(r), v.row(r));
  }

  // Per-head attention into the concatenated context tensor.
  Tensor ctx(s, ph);
  const bool causal = cfg_.mask == MaskKind::causal;
  for (int h = 0; h < cfg_.num_heads; ++h) {
    const Tensor qh = q.slice_cols(h * p, (h + 1) * p);
    Tensor kh, vh;
    if (caches != nullptr) {
      const auto& cache = (*caches)[static_cast<std::size_t>(layer)];
      kh = cache.k_slice(h * p, (h + 1) * p);
      vh = cache.v_slice(h * p, (h + 1) * p);
    } else {
      kh = k.slice_cols(h * p, (h + 1) * p);
      vh = v.slice_cols(h * p, (h + 1) * p);
    }
    Tensor oh(s, p);
    kernels::attention_head(qh.span(), kh.span(), vh.span(), oh.span(), s, kh.rows(),
                            p, causal, pos_offset);
    for (int r = 0; r < s; ++r) {
      for (int c = 0; c < p; ++c) ctx.at(r, h * p + c) = oh.at(r, c);
    }
  }

  Tensor out(s, e);
  kernels::gemm(ctx.span(), w.wo.span(), out.span(), s, e, ph);
  return out;
}

Tensor ReferenceModel::ffn(const Tensor& x, int layer) const {
  const LayerWeights& w = weights_.layer(layer);
  const int s = x.rows();
  Tensor hidden(s, cfg_.ffn_dim);
  kernels::gemm(x.span(), w.w1.span(), hidden.span(), s, cfg_.ffn_dim, cfg_.embed_dim);
  apply_activation(hidden);
  if (cfg_.ffn == FfnKind::swiglu) {
    // hidden = act(x*W1) elementwise* (x*W3) — the gated Llama FFN.
    Tensor gate(s, cfg_.ffn_dim);
    kernels::gemm(x.span(), w.w3.span(), gate.span(), s, cfg_.ffn_dim, cfg_.embed_dim);
    kernels::mul_inplace(hidden.span(), gate.span());
  }
  Tensor out(s, cfg_.embed_dim);
  kernels::gemm(hidden.span(), w.w2.span(), out.span(), s, cfg_.embed_dim, cfg_.ffn_dim);
  return out;
}

Tensor ReferenceModel::block_prompt(const Tensor& x, int layer,
                                    std::vector<KvCache>* caches, int pos_offset) const {
  DISTMCU_CHECK(x.cols() == cfg_.embed_dim, "block_prompt: input width != E");
  const LayerWeights& w = weights_.layer(layer);

  if (cfg_.pre_norm) {
    // a = x + MHSA(Norm1(x)); out = a + FFN(Norm2(a))
    Tensor h1 = norm(x, w.norm1_gamma, w.norm1_beta);
    Tensor a = mhsa(h1, layer, caches, pos_offset);
    kernels::add_inplace(a.span(), x.span());
    Tensor h2 = norm(a, w.norm2_gamma, w.norm2_beta);
    Tensor f = ffn(h2, layer);
    kernels::add_inplace(f.span(), a.span());
    return f;
  }
  // Post-norm (paper Fig. 3): h = Norm1(x + MHSA(x)); out = Norm2(h + FFN(h))
  Tensor a = mhsa(x, layer, caches, pos_offset);
  kernels::add_inplace(a.span(), x.span());
  Tensor h = norm(a, w.norm1_gamma, w.norm1_beta);
  Tensor f = ffn(h, layer);
  kernels::add_inplace(f.span(), h.span());
  return norm(f, w.norm2_gamma, w.norm2_beta);
}

Tensor ReferenceModel::block_ar(const Tensor& x, int layer, std::vector<KvCache>& caches,
                                int pos) const {
  DISTMCU_CHECK(x.rows() == 1, "block_ar: autoregressive input must be a single row");
  DISTMCU_CHECK(caches[static_cast<std::size_t>(layer)].length() == pos,
              "block_ar: cache length inconsistent with position");
  return block_prompt(x, layer, &caches, pos);
}

Tensor ReferenceModel::forward_prompt(const Tensor& x, std::vector<KvCache>* caches,
                                      int pos_offset) const {
  Tensor cur = x;
  for (int l = 0; l < cfg_.num_layers; ++l) {
    cur = block_prompt(cur, l, caches, pos_offset);
  }
  return cur;
}

Tensor ReferenceModel::forward_ar(const Tensor& x, std::vector<KvCache>& caches,
                                  int pos) const {
  Tensor cur = x;
  for (int l = 0; l < cfg_.num_layers; ++l) {
    cur = block_ar(cur, l, caches, pos);
  }
  return cur;
}

}  // namespace distmcu::model
