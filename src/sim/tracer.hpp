#ifndef DISTMCU_SIM_TRACER_HPP
#define DISTMCU_SIM_TRACER_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace distmcu::sim {

/// Activity categories matching the runtime-breakdown legend of the
/// paper's Fig. 4 — computation, off-chip DMA (L3<->L2), on-chip tile
/// DMA (L2<->L1), and the chip-to-chip link — plus a serving-side
/// scheduling lane (queue waits and deadline decisions of the batched
/// engine; never emitted by the block-level timed simulation).
enum class Category : std::uint8_t {
  compute = 0,
  dma_l3_l2 = 1,
  dma_l2_l1 = 2,
  chip_to_chip = 3,
  sched = 4,
};

inline constexpr std::size_t kNumCategories = 5;

[[nodiscard]] const char* category_name(Category c);

/// Request id attached to spans recorded while no serving request is
/// active (block-level simulation, shared work such as weight
/// prefetch for a whole batch).
inline constexpr int kNoRequest = -1;

/// Model id attached to spans recorded outside multi-model serving —
/// single-model engines and the block-level simulation leave every span
/// untagged, so their traces are unchanged.
inline constexpr int kNoModel = -1;

/// One traced activity interval on one chip.
struct Span {
  int chip = 0;
  Category category = Category::compute;
  Cycles begin = 0;
  Cycles end = 0;
  Bytes bytes = 0;
  std::string label;
  /// Serving request this span is attributed to (kNoRequest outside the
  /// batched engine). Stamped by the tracer's active tag at record time.
  int request = kNoRequest;
  /// Deployed model this span belongs to (kNoModel outside multi-model
  /// serving). Stamped by the tracer's active model tag at record time;
  /// drives the per-model lane grouping of the Chrome-trace export.
  int model = kNoModel;

  [[nodiscard]] Cycles duration() const { return end - begin; }
};

/// Records spans emitted by the timed simulation and aggregates them into
/// per-chip / per-category totals. Totals are *occupancy* sums; the
/// runtime report separately derives critical-path attribution (where
/// overlapped compute/DMA count once) — both views are kept because the
/// paper's stacked bars show attributed time while energy needs raw
/// occupancy and byte counts.
class Tracer {
 public:
  void record(const Span& span);
  void record(int chip, Category cat, Cycles begin, Cycles end, Bytes bytes,
              std::string label = {});

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }

  /// Sum of span durations for one chip/category.
  [[nodiscard]] Cycles total(int chip, Category cat) const;

  /// Sum of span durations for a category over all chips.
  [[nodiscard]] Cycles total(Category cat) const;

  /// Sum of bytes moved for a category over all chips.
  [[nodiscard]] Bytes total_bytes(Category cat) const;

  /// Latest end time over all spans (0 when empty).
  [[nodiscard]] Cycles makespan() const;

  /// Tag every subsequently recorded span with a serving request id, so
  /// block-level spans emitted deep inside the timed simulation can be
  /// attributed to the request the batched engine ran them for. Reset
  /// with set_request(kNoRequest).
  void set_request(int request) { request_ = request; }
  [[nodiscard]] int current_request() const { return request_; }

  /// Tag every subsequently recorded span with a deployed-model id (the
  /// multi-model serving engine's per-model trace lanes). Reset with
  /// set_model(kNoModel).
  void set_model(int model) { model_ = model; }
  [[nodiscard]] int current_model() const { return model_; }

  /// Sum of span durations attributed to one request, over all chips
  /// and categories.
  [[nodiscard]] Cycles total_for_request(int request) const;

  /// Sum of span durations attributed to one model, over all chips and
  /// categories.
  [[nodiscard]] Cycles total_for_model(int model) const;

  void clear();

 private:
  std::vector<Span> spans_;
  int request_ = kNoRequest;
  int model_ = kNoModel;
};

}  // namespace distmcu::sim

#endif  // DISTMCU_SIM_TRACER_HPP
