#ifndef DISTMCU_PARTITION_DISTRIBUTED_BLOCK_HPP
#define DISTMCU_PARTITION_DISTRIBUTED_BLOCK_HPP

#include <cstdint>
#include <vector>

#include "model/config.hpp"
#include "model/kv_cache.hpp"
#include "model/tensor.hpp"
#include "model/weights.hpp"
#include "noc/topology.hpp"
#include "partition/plan.hpp"
#include "partition/sharder.hpp"

namespace distmcu::partition {

/// Communication accounting of one distributed block execution —
/// cross-checked by tests against the timed simulation's C2C byte
/// counters (both must derive the same traffic from the same plan).
struct CommRecord {
  int reduces = 0;
  int broadcasts = 0;
  std::uint64_t payload_elems = 0;    // elements per [S, E] partial buffer
  std::uint64_t total_hop_elems = 0;  // sum over all hops of payload elems

  [[nodiscard]] int synchronizations() const { return reduces; }
};

/// Functional (numerically real) execution of one Transformer block under
/// the paper's partitioning, following Fig. 3 exactly:
///
///   1. the input X [S, E] is present on every chip (broadcast);
///   2. each chip projects Q/K/V for its own heads, applies RoPE
///      locally, appends its KV-cache slice, runs attention per owned
///      head and applies its rows of WO -> a partial output [S, E];
///   3. hierarchical reduce of partials to the root; the skip connection
///      is merged into the reduction (the root holds the full input);
///      the root normalizes and broadcasts;
///   4. the FFN repeats the pattern along the F dimension.
///
/// Exactly two reduce+broadcast synchronizations per block; no weight is
/// present on more than one chip. Every test of the partitioning scheme
/// validates this class against the single-chip ReferenceModel.
class DistributedBlock {
 public:
  /// `weights` provides the (root-resident) norm parameters; the matmul
  /// weights come exclusively from `shards`. All references must outlive
  /// the block.
  DistributedBlock(const model::TransformerConfig& cfg, const model::Weights& weights,
                   const ShardedWeights& shards, const PartitionPlan& plan,
                   const noc::Topology& topo);

  /// Execute one block. `x` is the block input (logically broadcast to
  /// all chips). `chip_caches`, when non-null, is indexed
  /// [chip][layer] and holds each chip's KV slice (dim = proj_width).
  /// `pos_offset` is the absolute position of x's first row.
  [[nodiscard]] model::Tensor forward(const model::Tensor& x, int layer,
                                      std::vector<std::vector<model::KvCache>>* chip_caches,
                                      int pos_offset, CommRecord* comm = nullptr) const;

  /// Per-chip, per-layer KV caches sized for each chip's head slice.
  [[nodiscard]] std::vector<std::vector<model::KvCache>> make_chip_caches(
      int capacity) const;

  [[nodiscard]] const PartitionPlan& plan() const { return plan_; }
  [[nodiscard]] const noc::Topology& topology() const { return topo_; }

 private:
  /// Per-chip partial MHSA output [S, E] for chip `c`.
  [[nodiscard]] model::Tensor mhsa_partial(const model::Tensor& x, int chip, int layer,
                                           std::vector<std::vector<model::KvCache>>* caches,
                                           int pos_offset) const;
  /// Per-chip partial FFN output [S, E].
  [[nodiscard]] model::Tensor ffn_partial(const model::Tensor& h, int chip,
                                          int layer) const;
  [[nodiscard]] model::Tensor root_norm(const model::Tensor& x, const model::Tensor& gamma,
                                        const model::Tensor& beta) const;
  void apply_activation(model::Tensor& t) const;

  /// Reduce per-chip partials (tree order), merge the skip tensor, and
  /// return the root's result; records comm stats.
  [[nodiscard]] model::Tensor reduce_with_skip(std::vector<model::Tensor>& partials,
                                               const model::Tensor& skip,
                                               CommRecord* comm) const;
  void record_broadcast(std::uint64_t elems, CommRecord* comm) const;

  const model::TransformerConfig& cfg_;
  const model::Weights& weights_;
  const ShardedWeights& shards_;
  const PartitionPlan& plan_;
  const noc::Topology& topo_;
};

}  // namespace distmcu::partition

#endif  // DISTMCU_PARTITION_DISTRIBUTED_BLOCK_HPP
