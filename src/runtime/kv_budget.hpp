#ifndef DISTMCU_RUNTIME_KV_BUDGET_HPP
#define DISTMCU_RUNTIME_KV_BUDGET_HPP

#include <memory>
#include <vector>

namespace distmcu::runtime {

/// Deployed-model index within one multi-model serving engine (order of
/// ModelRegistry::add).
using ModelId = int;

/// Partitioning policy for the shared KV slot arena of a multi-model
/// serving engine — the MCUBERT-style shared-pool discipline made
/// pluggable. The engine owns the slots (a tenant-tagged mem::SlotArena)
/// and asks the policy, at every admission point, whether a given model
/// may take ONE more slot given everybody's occupancy and queued demand.
/// Policies are stateless rankers, so one instance can be shared across
/// engines and replay is deterministic by construction.
///
/// The engine independently enforces the hard invariants — a grant never
/// exceeds the global free-slot count or the tenant's `cap` — so a
/// policy only shapes *partitioning*, never correctness.
class KvBudgetPolicy {
 public:
  /// Snapshot of one tenant (deployed model) at the admission point.
  struct TenantView {
    ModelId model = 0;
    int in_use = 0;   ///< slots the model currently holds
    int pending = 0;  ///< its queued (not yet admitted) requests
    int quota = 0;    ///< static-split reserve, in slots (>= 1)
    int cap = 0;      ///< hard ceiling on concurrently held slots
  };

  virtual ~KvBudgetPolicy() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Whether the policy can ever grant a tenant more slots than its
  /// static quota. The engine uses this to derive each tenant's default
  /// cap (and so its KvCachePool size and L2 fit check): quota-bound
  /// policies pin the cap to the quota, borrowing policies to the whole
  /// arena.
  [[nodiscard]] virtual bool allows_borrowing() const { return true; }

  /// May `tenant` take one more slot right now? `tenants` is indexed by
  /// ModelId; `free_slots` counts unheld slots of the shared arena
  /// (>= 1 whenever the engine asks).
  [[nodiscard]] virtual bool may_acquire(ModelId tenant,
                                         const std::vector<TenantView>& tenants,
                                         int total_slots,
                                         int free_slots) const = 0;
};

/// Hard static partition: every model owns exactly its quota, idle or
/// not. Slots of one model are never handed to another — the
/// zero-leakage baseline (and the single-model engine's behavior, where
/// the sole tenant's quota is the whole arena).
class StaticSplitPolicy final : public KvBudgetPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "static_split"; }
  [[nodiscard]] bool allows_borrowing() const override { return false; }
  [[nodiscard]] bool may_acquire(ModelId tenant,
                                 const std::vector<TenantView>& tenants,
                                 int total_slots,
                                 int free_slots) const override;
};

/// Demand-proportional shares: each admission point recomputes every
/// model's allowance as ceil(total * demand_m / total_demand) with
/// demand = in_use + pending, floored at one slot so a model with any
/// demand always makes progress. A model whose workload drains returns
/// its share to the others automatically at the next admission point.
class ProportionalSharePolicy final : public KvBudgetPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "proportional"; }
  [[nodiscard]] bool may_acquire(ModelId tenant,
                                 const std::vector<TenantView>& tenants,
                                 int total_slots,
                                 int free_slots) const override;
};

/// Reserved quotas with watermark-gated borrowing: under its quota a
/// model is always granted; beyond it, the grant is a *borrow* allowed
/// only while the arena keeps enough free slots to cover (a) the unmet
/// reserves of every other model that has queued demand and (b) a
/// configurable extra headroom. Borrowed slots return to the pool at
/// request completion, so a burst tenant can soak up idle capacity
/// without ever starving another tenant's guaranteed share.
class WatermarkBorrowPolicy final : public KvBudgetPolicy {
 public:
  struct Options {
    /// Free slots that must remain after a borrow is granted, on top of
    /// the unmet reserves of demanding tenants. 0 lends every idle slot.
    int headroom = 0;
  };

  WatermarkBorrowPolicy() : opts_{} {}
  explicit WatermarkBorrowPolicy(Options opts) : opts_(opts) {}

  [[nodiscard]] const char* name() const override { return "watermark"; }
  [[nodiscard]] bool may_acquire(ModelId tenant,
                                 const std::vector<TenantView>& tenants,
                                 int total_slots,
                                 int free_slots) const override;
  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  Options opts_;
};

/// Built-in policy set, for benches and CLI surfaces.
enum class KvBudget { static_split, proportional, watermark };

[[nodiscard]] const char* kv_budget_name(KvBudget policy);
[[nodiscard]] std::shared_ptr<const KvBudgetPolicy> make_kv_budget(
    KvBudget policy);

}  // namespace distmcu::runtime

#endif  // DISTMCU_RUNTIME_KV_BUDGET_HPP
