#ifndef DISTMCU_MEM_TRAFFIC_HPP
#define DISTMCU_MEM_TRAFFIC_HPP

#include "util/units.hpp"

namespace distmcu::mem {

/// Byte counters for every data-movement class that appears in the
/// paper's energy equation: N_L3<->L2, N_L2<->L1 (per chip) and N_C2C
/// (system-wide). The timed simulation fills one counter per chip plus a
/// system counter; the energy model consumes them directly.
struct TrafficCounter {
  Bytes l3_l2 = 0;   // off-chip <-> L2 (both directions summed)
  Bytes l2_l1 = 0;   // L2 <-> L1 tile traffic
  Bytes c2c = 0;     // chip-to-chip link traffic

  TrafficCounter& operator+=(const TrafficCounter& other) {
    l3_l2 += other.l3_l2;
    l2_l1 += other.l2_l1;
    c2c += other.c2c;
    return *this;
  }

  [[nodiscard]] friend TrafficCounter operator+(TrafficCounter a, const TrafficCounter& b) {
    a += b;
    return a;
  }

  [[nodiscard]] bool operator==(const TrafficCounter&) const = default;
};

}  // namespace distmcu::mem

#endif  // DISTMCU_MEM_TRAFFIC_HPP
