#include "chip/chip_config.hpp"

#include <cmath>

namespace distmcu::chip {

Cycles ChipConfig::l3_dma_cycles(Bytes bytes) const {
  return dma_setup_l3 +
         static_cast<Cycles>(
             std::ceil(static_cast<double>(bytes) / bw_l3_l2));
}

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::int8: return "int8";
    case Precision::int16: return "int16";
    case Precision::fp32: return "fp32";
  }
  return "?";
}

ChipConfig ChipConfig::siracusa() { return ChipConfig{}; }

}  // namespace distmcu::chip
