#ifndef DISTMCU_FLEET_ROUTING_POLICY_HPP
#define DISTMCU_FLEET_ROUTING_POLICY_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/precision.hpp"
#include "util/units.hpp"

namespace distmcu::fleet {

/// Placement policy of the fleet router. Mirrors the engine's
/// runtime::Scheduler contract: policies are stateless rankers — a pure
/// function of the per-node snapshot the router hands them — so one
/// instance can be shared across routers and replay is deterministic by
/// construction. The router builds one NodeView per fleet node for each
/// request, asks the policy for the node to try first, and on a node
/// rejection masks that node out and asks again (each retry counts as a
/// misroute in FleetStats).
class RoutingPolicy {
 public:
  /// Router-built snapshot of one node, specialized to the request being
  /// placed (est_cost / prefix_match_tokens / link_cycles are per-request
  /// quantities).
  struct NodeView {
    int node = 0;  ///< index into the fleet, stable across requests
    /// Whether the node may serve this request: it deploys the target
    /// model and has not already rejected this request. Policies must
    /// only pick eligible nodes; the router rejects anything else.
    bool eligible = false;
    int queue_depth = 0;  ///< pending + active requests on the node
    int active = 0;       ///< requests currently holding KV in the batch
    /// Router-tracked service demand of the node's outstanding placed
    /// requests (estimates added at placement, removed at completion) —
    /// the fleet-level analogue of queue depth in cycles, comparable
    /// across heterogeneous nodes where a count is not.
    Cycles backlog_cycles = 0;
    /// Idle-node service estimate for THIS request on THIS node's
    /// deployment (the engine cost model, so a 4-chip node shows a
    /// larger number than an 8-chip node for the same prompt).
    Cycles est_cost = 0;
    /// Deepest CoW prompt-prefix match (tokens) the node's prefix cache
    /// holds for THIS prompt; 0 without prefix sharing.
    int prefix_match_tokens = 0;
    /// Prefill cycles that match would skip on this node (the engine's
    /// estimate for prefilling just the matched tokens); 0 when no match.
    Cycles prefix_saved_cycles = 0;
    /// Round-trip link charge for THIS request on the node's link:
    /// request bytes in plus response bytes back, latency both ways.
    Cycles link_cycles = 0;
    /// Precision capability of the node's deployment of this model:
    /// declared arithmetic precision and the packed bits one stored KV
    /// entry costs its arena. Policies can steer precision-sensitive
    /// traffic (e.g. prefer int8 nodes for throughput, fp16 for
    /// fidelity) without reaching into the engine. Defaults describe the
    /// float path; only meaningful when `eligible`.
    runtime::Precision precision = runtime::Precision::fp16;
    int kv_elem_bits = 0;
  };

  virtual ~RoutingPolicy() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Index into `nodes` of the node to try; at least one entry is
  /// eligible. `submit_seq` is the request's monotone fleet submit
  /// order — stateless round-robin derives its rotation from it. The
  /// router rejects out-of-range or ineligible picks.
  [[nodiscard]] virtual std::size_t pick(const std::vector<NodeView>& nodes,
                                         std::uint64_t submit_seq) const = 0;
};

/// Rotate over the eligible nodes by fleet submit order, blind to load,
/// cost, and locality — the baseline every other policy is benched
/// against.
class RoundRobinRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "round_robin"; }
  [[nodiscard]] std::size_t pick(const std::vector<NodeView>& nodes,
                                 std::uint64_t submit_seq) const override;
};

/// Join-shortest-queue on queue_depth (pending + active), tie-broken by
/// backlog cycles then node id. Counts requests, so it equalizes
/// occupancy but not service time across heterogeneous nodes.
class JoinShortestQueueRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] const char* name() const override {
    return "join_shortest_queue";
  }
  [[nodiscard]] std::size_t pick(const std::vector<NodeView>& nodes,
                                 std::uint64_t submit_seq) const override;
};

/// Minimize the request's estimated fleet-level finish charge:
/// backlog_cycles + est_cost + link_cycles per node. Reuses the engine's
/// block-program cost estimator (via est_cost/backlog), so a fast node
/// with a deep queue and a slow idle node are compared in the same
/// currency. Ties resolve by queue depth then node id.
class CostEstimateAwareRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "cost_aware"; }
  [[nodiscard]] std::size_t pick(const std::vector<NodeView>& nodes,
                                 std::uint64_t submit_seq) const override;
};

/// Steer shared-prompt requests to the node whose CoW prefix cache
/// already holds the deepest match for this prompt (the prefill it can
/// skip), provided that node is not overloaded relative to the
/// cost-aware choice; requests with no match anywhere fall back to the
/// cost-aware ranking.
class PrefixAffinityRouting final : public RoutingPolicy {
 public:
  struct Options {
    /// A match is only honored while the affine node's excess total
    /// charge (backlog + cost + link, vs the cost-aware minimum) stays
    /// under `spill_factor` times the cycles the match saves; beyond
    /// that the router spills to the cost-aware pick rather than pile
    /// onto a hot node for locality's sake.
    double spill_factor = 4.0;
  };

  PrefixAffinityRouting() : opts_{} {}
  explicit PrefixAffinityRouting(Options opts) : opts_(opts) {}

  [[nodiscard]] const char* name() const override { return "prefix_affinity"; }
  [[nodiscard]] std::size_t pick(const std::vector<NodeView>& nodes,
                                 std::uint64_t submit_seq) const override;
  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  Options opts_;
};

/// Built-in policy set, for benches and CLI surfaces.
enum class RoutePolicy { round_robin, join_shortest_queue, cost_aware,
                         prefix_affinity };

[[nodiscard]] const char* route_policy_name(RoutePolicy policy);
[[nodiscard]] std::shared_ptr<const RoutingPolicy> make_routing_policy(
    RoutePolicy policy);

}  // namespace distmcu::fleet

#endif  // DISTMCU_FLEET_ROUTING_POLICY_HPP
