// Internal calibration probe (not a paper figure): prints raw runtime /
// breakdown / energy numbers for the three workloads so the timing
// constants can be tuned against the paper's reported shapes. Kept in the
// bench set because it doubles as a compact "everything at once" smoke
// run.
#include <iostream>

#include "energy/energy_model.hpp"
#include "model/config.hpp"
#include "partition/plan.hpp"
#include "runtime/timed_simulation.hpp"
#include "util/table.hpp"

using namespace distmcu;

namespace {

void sweep(const model::TransformerConfig& cfg, model::Mode mode,
           const std::vector<int>& chip_counts) {
  const runtime::SystemConfig sys = runtime::SystemConfig::siracusa_system();
  const runtime::TimedBlockSimulation sim(sys);
  const energy::EnergyModel em(sys.chip, sys.link);

  util::Table table({"chips", "residency", "cycles", "speedup", "compute", "l3", "l2l1",
                     "c2c", "E_mJ", "E_core", "E_l3", "E_l2", "E_c2c", "t_comp_tot"});
  double base = 0.0;
  for (const int n : chip_counts) {
    const auto plan = partition::PartitionPlan::create(cfg, n);
    const auto rep = sim.run(plan, mode);
    const auto e = em.compute(rep);
    if (n == 1) base = static_cast<double>(rep.block_cycles);
    table.row()
        .add(n)
        .add(partition::residency_name(rep.residency))
        .add(rep.block_cycles)
        .add(base / static_cast<double>(rep.block_cycles), 2)
        .add(rep.breakdown.compute)
        .add(rep.breakdown.dma_l3_l2)
        .add(rep.breakdown.dma_l2_l1)
        .add(rep.breakdown.c2c)
        .add(e.total_mj(), 4)
        .add(util::pj_to_mj(e.core), 4)
        .add(util::pj_to_mj(e.l3), 4)
        .add(util::pj_to_mj(e.l2), 4)
        .add(util::pj_to_mj(e.c2c), 4)
        .add(rep.t_comp_total());
  }
  std::cout << cfg.name << " / " << model::mode_name(mode) << "\n";
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  sweep(model::TransformerConfig::tiny_llama_42m(), model::Mode::autoregressive,
        {1, 2, 4, 8});
  sweep(model::TransformerConfig::tiny_llama_42m(), model::Mode::prompt, {1, 2, 4, 8});
  sweep(model::TransformerConfig::mobile_bert(), model::Mode::prompt, {1, 2, 4});
  sweep(model::TransformerConfig::tiny_llama_scaled(64), model::Mode::autoregressive,
        {1, 2, 4, 8, 16, 32, 64});
  sweep(model::TransformerConfig::tiny_llama_scaled(64), model::Mode::prompt,
        {1, 2, 4, 8, 16, 32, 64});
  return 0;
}
