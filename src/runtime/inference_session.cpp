#include "runtime/inference_session.hpp"

#include "util/check.hpp"

namespace distmcu::runtime {

InferenceSession::InferenceSession(model::TransformerConfig cfg, int n_chips,
                                   SystemConfig sys, std::uint64_t seed)
    : cfg_(std::move(cfg)),
      sys_(std::move(sys)),
      weights_(cfg_, seed),
      embedding_(cfg_, seed),
      plan_(partition::PartitionPlan::create(cfg_, n_chips)),
      shards_(weights_, plan_),
      topo_(sys_.flat_topology ? noc::Topology::flat(n_chips)
                               : noc::Topology::hierarchical(n_chips, sys_.group_size)),
      sim_(sys_),
      energy_(sys_.chip, sys_.link) {
  block_ = std::make_unique<partition::DistributedBlock>(cfg_, weights_, shards_, plan_,
                                                         topo_);
}

BlockResult InferenceSession::run_block(model::Mode mode) const {
  BlockResult out;
  out.report = sim_.run(plan_, mode);
  out.energy = energy_.compute(out.report);
  const partition::MemoryPlanner planner(sys_.chip, sys_.precision);
  out.memory = planner.plan(plan_, mode);
  return out;
}

GenerationResult InferenceSession::generate(const std::vector<int>& prompt,
                                            int new_tokens) const {
  util::check(!prompt.empty(), "generate: prompt must not be empty");
  util::check(new_tokens >= 0, "generate: new_tokens must be >= 0");
  util::check(static_cast<int>(prompt.size()) + new_tokens <= cfg_.ar_context,
              "generate: sequence exceeds the model's context length");

  GenerationResult out;
  out.tokens = prompt;

  // Per-block costs from the timed model, reused for every layer/token.
  const BlockResult prompt_cost = run_block(model::Mode::prompt);
  const BlockResult ar_cost = run_block(model::Mode::autoregressive);
  const auto layers = static_cast<Cycles>(cfg_.num_layers);

  auto caches = block_->make_chip_caches(cfg_.ar_context);

  // --- prefill: run the prompt through all layers (prompt mode) -------
  model::Tensor h = embedding_.lookup(prompt);
  for (int l = 0; l < cfg_.num_layers; ++l) {
    h = block_->forward(h, l, &caches, 0);
  }
  out.total_cycles += prompt_cost.report.block_cycles * layers;
  out.total_energy_mj += prompt_cost.energy_mj() * static_cast<double>(layers);

  // --- decode: one token at a time against the KV caches --------------
  int pos = static_cast<int>(prompt.size());
  int next = embedding_.greedy_next(h);
  for (int t = 0; t < new_tokens; ++t) {
    out.tokens.push_back(next);
    ++out.generated;
    if (t + 1 == new_tokens) break;
    model::Tensor x = embedding_.lookup({next});
    for (int l = 0; l < cfg_.num_layers; ++l) {
      x = block_->forward(x, l, &caches, pos);
    }
    out.total_cycles += ar_cost.report.block_cycles * layers;
    out.total_energy_mj += ar_cost.energy_mj() * static_cast<double>(layers);
    next = embedding_.greedy_next(x);
    ++pos;
  }
  return out;
}

model::Tensor InferenceSession::encode(const std::vector<int>& tokens) const {
  util::check(static_cast<int>(tokens.size()) == cfg_.prompt_len,
              "encode: token count must equal the configured sequence length (" +
                  std::to_string(cfg_.prompt_len) + ")");
  model::Tensor h = embedding_.lookup(tokens);
  for (int l = 0; l < cfg_.num_layers; ++l) {
    h = block_->forward(h, l, nullptr, 0);
  }
  return h;
}

}  // namespace distmcu::runtime
