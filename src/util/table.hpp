#ifndef DISTMCU_UTIL_TABLE_HPP
#define DISTMCU_UTIL_TABLE_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace distmcu::util {

/// Column-aligned ASCII table used by the benchmark harnesses to print
/// paper-style result rows, plus a CSV emitter so series can be replotted.
/// Cells are stored as strings; numeric helpers format with fixed
/// precision so bench output is diff-stable.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; subsequent `add*` calls fill it left to right.
  Table& row();

  Table& add(std::string cell);
  Table& add(const char* cell);
  Table& add(double value, int precision = 3);
  Table& add(std::uint64_t value);
  Table& add(std::int64_t value);
  Table& add(int value);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  /// Render with a header rule and 2-space column gaps.
  void print(std::ostream& os) const;

  /// Emit RFC-4180-ish CSV (no quoting needed for our cell contents).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace distmcu::util

#endif  // DISTMCU_UTIL_TABLE_HPP
