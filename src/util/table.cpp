#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.hpp"

namespace distmcu::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  check(!headers_.empty(), "Table requires at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(std::string cell) {
  check(!rows_.empty(), "Table::add called before Table::row");
  check(rows_.back().size() < headers_.size(), "Table row has more cells than headers");
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return add(std::string(buf));
}

Table& Table::add(std::uint64_t value) { return add(std::to_string(value)); }
Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << cell;
      if (c + 1 < headers_.size()) {
        os << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace distmcu::util
