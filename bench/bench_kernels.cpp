// Ablation A6: google-benchmark microbenchmarks of the functional
// kernels (host execution speed) and of the simulator itself (cost of
// one timed block simulation) — keeps the library honest about its own
// overheads and provides a regression baseline for the numeric kernels.
#include <benchmark/benchmark.h>

#include <vector>

#include "kernels/attention.hpp"
#include "kernels/gemm.hpp"
#include "kernels/ops.hpp"
#include "model/config.hpp"
#include "partition/plan.hpp"
#include "quant/int_kernels.hpp"
#include "runtime/timed_simulation.hpp"
#include "util/rng.hpp"

using namespace distmcu;

namespace {
std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform(-1.0f, 1.0f);
  return v;
}
}  // namespace

static void BM_GemmFloat(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const auto a = random_vec(static_cast<std::size_t>(d * d), 1);
  const auto b = random_vec(static_cast<std::size_t>(d * d), 2);
  std::vector<float> c(static_cast<std::size_t>(d * d));
  for (auto _ : state) {
    kernels::gemm(a, b, c, d, d, d);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(d) * d * d);
}
BENCHMARK(BM_GemmFloat)->Arg(64)->Arg(128)->Arg(256);

static void BM_GemmInt8(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  std::vector<std::int8_t> a(static_cast<std::size_t>(d * d), 3);
  std::vector<std::int8_t> b(static_cast<std::size_t>(d * d), -5);
  std::vector<std::int32_t> c(static_cast<std::size_t>(d * d));
  for (auto _ : state) {
    quant::gemm_i8_i32(a, b, c, d, d, d);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(d) * d * d);
}
BENCHMARK(BM_GemmInt8)->Arg(64)->Arg(128)->Arg(256);

static void BM_Softmax(benchmark::State& state) {
  const int rows = 128, cols = static_cast<int>(state.range(0));
  auto x = random_vec(static_cast<std::size_t>(rows * cols), 3);
  for (auto _ : state) {
    auto copy = x;
    kernels::softmax_rows(copy, rows, cols);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_Softmax)->Arg(128)->Arg(512);

static void BM_AttentionHead(benchmark::State& state) {
  const int s = static_cast<int>(state.range(0)), p = 64;
  const auto q = random_vec(static_cast<std::size_t>(s * p), 4);
  const auto k = random_vec(static_cast<std::size_t>(s * p), 5);
  const auto v = random_vec(static_cast<std::size_t>(s * p), 6);
  std::vector<float> out(static_cast<std::size_t>(s * p));
  for (auto _ : state) {
    kernels::attention_head(q, k, v, out, s, s, p, true, 0);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_AttentionHead)->Arg(16)->Arg(128);

static void BM_TimedBlockSimulation(benchmark::State& state) {
  const int chips = static_cast<int>(state.range(0));
  const auto cfg = chips > 8 ? model::TransformerConfig::tiny_llama_scaled(64)
                             : model::TransformerConfig::tiny_llama_42m();
  const auto plan = partition::PartitionPlan::create(cfg, chips);
  const runtime::TimedBlockSimulation sim(runtime::SystemConfig::siracusa_system());
  for (auto _ : state) {
    auto rep = sim.run(plan, model::Mode::autoregressive);
    benchmark::DoNotOptimize(&rep);
  }
}
BENCHMARK(BM_TimedBlockSimulation)->Arg(1)->Arg(8)->Arg(64);

BENCHMARK_MAIN();
