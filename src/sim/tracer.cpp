#include "sim/tracer.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace distmcu::sim {

const char* category_name(Category c) {
  switch (c) {
    case Category::compute: return "Computation";
    case Category::dma_l3_l2: return "DMA L3<->L2";
    case Category::dma_l2_l1: return "DMA L2<->L1";
    case Category::chip_to_chip: return "Chip-to-Chip";
    case Category::sched: return "Scheduler";
  }
  return "?";
}

void Tracer::record(const Span& span) {
  DISTMCU_CHECK(span.end >= span.begin, "Tracer span ends before it begins");
  spans_.push_back(span);
  if (spans_.back().request == kNoRequest) spans_.back().request = request_;
  if (spans_.back().model == kNoModel) spans_.back().model = model_;
}

void Tracer::record(int chip, Category cat, Cycles begin, Cycles end, Bytes bytes,
                    std::string label) {
  record(Span{chip, cat, begin, end, bytes, std::move(label), kNoRequest,
              kNoModel});
}

Cycles Tracer::total(int chip, Category cat) const {
  Cycles sum = 0;
  for (const auto& s : spans_) {
    if (s.chip == chip && s.category == cat) sum += s.duration();
  }
  return sum;
}

Cycles Tracer::total(Category cat) const {
  Cycles sum = 0;
  for (const auto& s : spans_) {
    if (s.category == cat) sum += s.duration();
  }
  return sum;
}

Bytes Tracer::total_bytes(Category cat) const {
  Bytes sum = 0;
  for (const auto& s : spans_) {
    if (s.category == cat) sum += s.bytes;
  }
  return sum;
}

Cycles Tracer::makespan() const {
  Cycles m = 0;
  for (const auto& s : spans_) m = std::max(m, s.end);
  return m;
}

Cycles Tracer::total_for_request(int request) const {
  Cycles sum = 0;
  for (const auto& s : spans_) {
    if (s.request == request) sum += s.duration();
  }
  return sum;
}

Cycles Tracer::total_for_model(int model) const {
  Cycles sum = 0;
  for (const auto& s : spans_) {
    if (s.model == model) sum += s.duration();
  }
  return sum;
}

void Tracer::clear() {
  spans_.clear();
  request_ = kNoRequest;
  model_ = kNoModel;
}

}  // namespace distmcu::sim
