#include "noc/topology.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace distmcu::noc {

Topology::Topology(int n_chips, int group_size, std::vector<Stage> stages)
    : num_chips_(n_chips), group_size_(group_size), reduce_stages_(std::move(stages)) {}

Topology Topology::hierarchical(int n_chips, int group_size) {
  DISTMCU_CHECK(n_chips >= 1, "Topology requires at least one chip");
  DISTMCU_CHECK(group_size >= 2, "Topology group size must be >= 2");

  std::vector<Stage> stages;
  std::vector<int> level;
  level.reserve(static_cast<std::size_t>(n_chips));
  for (int i = 0; i < n_chips; ++i) level.push_back(i);

  while (level.size() > 1) {
    Stage stage;
    std::vector<int> next;
    for (std::size_t g = 0; g < level.size(); g += static_cast<std::size_t>(group_size)) {
      const int leader = level[g];
      next.push_back(leader);
      const std::size_t end =
          std::min(level.size(), g + static_cast<std::size_t>(group_size));
      for (std::size_t m = g + 1; m < end; ++m) {
        stage.push_back(Transfer{level[m], leader});
      }
    }
    if (!stage.empty()) stages.push_back(std::move(stage));
    level = std::move(next);
  }
  return Topology(n_chips, group_size, std::move(stages));
}

Topology Topology::flat(int n_chips) {
  DISTMCU_CHECK(n_chips >= 1, "Topology requires at least one chip");
  std::vector<Stage> stages;
  if (n_chips > 1) {
    Stage stage;
    for (int i = 1; i < n_chips; ++i) stage.push_back(Transfer{i, 0});
    stages.push_back(std::move(stage));
  }
  return Topology(n_chips, n_chips, std::move(stages));
}

std::vector<Stage> Topology::broadcast_stages() const {
  std::vector<Stage> out(reduce_stages_.rbegin(), reduce_stages_.rend());
  for (auto& stage : out) {
    for (auto& t : stage) std::swap(t.src, t.dst);
  }
  return out;
}

std::size_t Topology::hops_per_reduce() const {
  std::size_t hops = 0;
  for (const auto& stage : reduce_stages_) hops += stage.size();
  return hops;
}

}  // namespace distmcu::noc
