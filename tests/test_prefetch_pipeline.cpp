// Unit tests for the shared double-buffering race: the chain of compute
// spans gated on asynchronous weight-shard DMAs over one FIFO L3 port,
// reused by SteadyStateSimulation (per-block) and BatchedEngine
// (per-decode-step).
#include <gtest/gtest.h>

#include "runtime/prefetch_pipeline.hpp"

using namespace distmcu;
using runtime::PrefetchPipeline;

TEST(PrefetchPipeline, FirstSpanIsStagedAndStallFree) {
  PrefetchPipeline pipe(1.0, 0);
  const auto span = pipe.advance(100, 40);
  EXPECT_EQ(span.begin, 0u);
  EXPECT_EQ(span.start, 0u);
  EXPECT_EQ(span.stall, 0u);
  EXPECT_EQ(span.end, 100u);
  EXPECT_EQ(span.fetch_issue, 0u);
  EXPECT_EQ(span.fetch_ready, 40u);
  EXPECT_EQ(pipe.now(), 100u);
  EXPECT_EQ(pipe.stall_total(), 0u);
}

TEST(PrefetchPipeline, ComputeCoversStreamNoStalls) {
  PrefetchPipeline pipe(1.0, 0);
  for (int i = 0; i < 5; ++i) {
    const auto span = pipe.advance(100, 40);
    EXPECT_EQ(span.stall, 0u);
  }
  EXPECT_EQ(pipe.now(), 500u);
  EXPECT_EQ(pipe.stall_total(), 0u);
}

TEST(PrefetchPipeline, StreamBoundSpansStallForUncoveredRemainder) {
  // compute 10, stream 25: after the staged first span every span waits
  // stream - compute = 15 cycles, so the chain advances at stream rate.
  PrefetchPipeline pipe(1.0, 0);
  const auto s0 = pipe.advance(10, 25);
  EXPECT_EQ(s0.stall, 0u);
  const auto s1 = pipe.advance(10, 25);
  EXPECT_EQ(s1.begin, 10u);
  EXPECT_EQ(s1.start, 25u);  // waits for the fetch issued at cycle 0
  EXPECT_EQ(s1.stall, 15u);
  EXPECT_EQ(s1.end, 35u);
  const auto s2 = pipe.advance(10, 0);
  EXPECT_EQ(s2.stall, 15u);  // fetch issued at 25 lands at 50
  EXPECT_EQ(pipe.now(), 60u);
  EXPECT_EQ(pipe.stall_total(), 30u);
}

TEST(PrefetchPipeline, PortSetupAndBandwidthShapeTheFetch) {
  PrefetchPipeline pipe(2.0, 10);  // service(20 B) = 10 + 10 cycles
  const auto s0 = pipe.advance(5, 20);
  EXPECT_EQ(s0.fetch_ready, 20u);
  const auto s1 = pipe.advance(5, 0);
  EXPECT_EQ(s1.stall, 15u);  // 20 - 5
  EXPECT_EQ(pipe.port().num_transfers(), 1u);
  EXPECT_EQ(pipe.port().total_bytes(), 20u);
}

TEST(PrefetchPipeline, NothingIssuedKeepsStagedWeightsResident) {
  PrefetchPipeline pipe(1.0, 0);
  (void)pipe.advance(10, 0);
  const auto span = pipe.advance(10, 0);
  EXPECT_EQ(span.stall, 0u);
  EXPECT_EQ(span.fetch_issue, span.fetch_ready);
  EXPECT_EQ(pipe.now(), 20u);
}

TEST(PrefetchPipeline, OpaqueSpansDrainInFlightFetches) {
  // A prefill-style span does not consume weights but wall-clock still
  // passes, so a long opaque span absorbs the fetch latency entirely.
  PrefetchPipeline pipe(1.0, 0);
  (void)pipe.advance(1, 25);  // fetch issued at 0, lands at 25
  pipe.advance_opaque(40);
  EXPECT_EQ(pipe.now(), 41u);
  const auto span = pipe.advance(10, 0);
  EXPECT_EQ(span.stall, 0u);  // fetch long since landed
  EXPECT_EQ(pipe.stall_total(), 0u);
}

TEST(PrefetchPipeline, OpaquePortOccupancyDelaysInFlightFetch) {
  // A prefill that streams its own weights occupies the shared port, so
  // an in-flight decode fetch cannot drain at full rate underneath it.
  PrefetchPipeline pipe(1.0, 0);
  (void)pipe.advance(10, 100);  // fetch issued at 0, would land at 100
  pipe.advance_opaque(50, 30);  // 30 of the 50 opaque cycles hold the port
  EXPECT_EQ(pipe.now(), 60u);
  const auto span = pipe.advance(10, 0);
  EXPECT_EQ(span.stall, 70u);  // fetch pushed from 100 to 130

  // With the port idle (nothing in flight), occupancy moves nothing.
  PrefetchPipeline idle(1.0, 0);
  idle.advance_opaque(50, 30);
  const auto staged = idle.advance(10, 0);
  EXPECT_EQ(staged.stall, 0u);
}

// --- heterogeneous steps (chunked prefill) --------------------------------

TEST(PrefetchPipeline, AdvanceStepWithEmptyPromptPhaseMatchesAdvance) {
  // advance() is the degenerate advance_step: same chain, field for field.
  PrefetchPipeline a(1.5, 7);
  PrefetchPipeline b(1.5, 7);
  for (int i = 0; i < 6; ++i) {
    const auto s = a.advance(13, 31);
    const auto m = b.advance_step(0, 0, /*consume_staged=*/true, 13, 31);
    EXPECT_EQ(s.begin, m.begin);
    EXPECT_EQ(s.start, m.decode_start);
    EXPECT_EQ(s.stall, m.stall);
    EXPECT_EQ(s.end, m.end);
    EXPECT_EQ(s.fetch_issue, m.fetch_issue);
    EXPECT_EQ(s.fetch_ready, m.fetch_ready);
    EXPECT_EQ(m.prefill_window, 0u);
    EXPECT_EQ(m.prefill_tail, 0u);
  }
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.stall_total(), b.stall_total());
}

TEST(PrefetchPipeline, ChunkStreamHiddenBehindStepCompute) {
  // Chunk stream (20) shorter than the step's compute (30 + 10): the
  // stream drains underneath, no tail, window == service time.
  PrefetchPipeline pipe(1.0, 0);
  const auto sp = pipe.advance_step(30, 20, /*consume_staged=*/true, 10, 0);
  EXPECT_EQ(sp.begin, 0u);
  EXPECT_EQ(sp.chunk_stream_start, 0u);
  EXPECT_EQ(sp.chunk_ready, 20u);
  EXPECT_EQ(sp.prefill_window, 20u);
  EXPECT_EQ(sp.decode_begin, 30u);
  EXPECT_EQ(sp.stall, 0u);  // first stream staged
  EXPECT_EQ(sp.end, 40u);
  EXPECT_EQ(sp.prefill_tail, 0u);
}

TEST(PrefetchPipeline, ChunkStreamTailExtendsTheStep) {
  // Chunk stream (100) longer than all compute (10 + 10): the step ends
  // when the stream lands; the overshoot is the visible tail.
  PrefetchPipeline pipe(1.0, 0);
  const auto sp = pipe.advance_step(10, 100, /*consume_staged=*/false, 10, 0);
  EXPECT_EQ(sp.chunk_ready, 100u);
  EXPECT_EQ(sp.end, 100u);
  EXPECT_EQ(sp.prefill_tail, 80u);   // 100 - (10 + 10)
  EXPECT_EQ(sp.prefill_window, 100u);
  EXPECT_EQ(pipe.now(), 100u);
}

TEST(PrefetchPipeline, PromptComputeCoversTheDecodeStall) {
  // The decode phase follows the prompt chunks, so chunk compute absorbs
  // part of a pending fetch's latency: with a 25-cycle fetch in flight
  // and 20 cycles of chunk work, the decode phase stalls only 5.
  PrefetchPipeline pipe(1.0, 0);
  (void)pipe.advance(0, 25);  // fetch issued at 0, lands at 25
  const auto sp = pipe.advance_step(20, 0, /*consume_staged=*/true, 10, 0);
  EXPECT_EQ(sp.decode_begin, 20u);
  EXPECT_EQ(sp.stall, 5u);
  EXPECT_EQ(sp.decode_start, 25u);
  EXPECT_EQ(sp.end, 35u);
}

TEST(PrefetchPipeline, MultiConsumerPortSerializesInIssueOrder) {
  // In-flight decode fetch, then this step's chunk streams, then the
  // next decode fetch: FIFO on one port.
  PrefetchPipeline pipe(1.0, 0);
  (void)pipe.advance(10, 40);  // decode fetch in flight: [10, 50]... issued at 0, lands 40
  // Step at t=10: chunk stream of 30 queues behind the in-flight fetch
  // (busy until 40), so it is served [40, 70] — window includes queueing.
  const auto sp = pipe.advance_step(5, 30, /*consume_staged=*/true, 10, 25);
  EXPECT_EQ(sp.begin, 10u);
  EXPECT_EQ(sp.chunk_stream_start, 40u);
  EXPECT_EQ(sp.chunk_ready, 70u);
  EXPECT_EQ(sp.prefill_window, 60u);
  // Decode waits for the staged fetch (40) after 5 chunk-compute cycles.
  EXPECT_EQ(sp.decode_begin, 15u);
  EXPECT_EQ(sp.decode_start, 40u);
  EXPECT_EQ(sp.stall, 25u);
  // Next fetch issued at decode start but served behind the chunk DMA.
  EXPECT_EQ(sp.fetch_issue, 40u);
  EXPECT_EQ(sp.fetch_start, 70u);
  EXPECT_EQ(sp.fetch_ready, 95u);
  // Step ends when the chunk stream lands (decode work ended at 50).
  EXPECT_EQ(sp.end, 70u);
  EXPECT_EQ(sp.prefill_tail, 20u);
}

TEST(PrefetchPipeline, PureChunkStepLeavesStagedWeightsUntouched) {
  // A prefill-only step (consume_staged == false) neither stalls nor
  // consumes: the staged weights serve the next decode step stall-free.
  PrefetchPipeline pipe(1.0, 0);
  const auto sp = pipe.advance_step(15, 10, /*consume_staged=*/false, 0, 0);
  EXPECT_EQ(sp.stall, 0u);
  EXPECT_EQ(sp.end, 15u);
  const auto next = pipe.advance(10, 0);
  EXPECT_EQ(next.stall, 0u);
  EXPECT_EQ(pipe.stall_total(), 0u);
}

TEST(PrefetchPipeline, TimelineIsDeterministicallyEventDriven) {
  // Same inputs, same chain — the sim::Engine event order is stable.
  auto run = [] {
    PrefetchPipeline pipe(1.5, 7);
    Cycles sum = 0;
    for (int i = 0; i < 8; ++i) sum += pipe.advance(13, 31).end;
    return sum;
  };
  EXPECT_EQ(run(), run());
  PrefetchPipeline pipe(1.0, 0);
  (void)pipe.advance(3, 9);
  EXPECT_GT(pipe.engine().events_executed(), 0u);
}
