#ifndef DISTMCU_UTIL_UNITS_HPP
#define DISTMCU_UTIL_UNITS_HPP

#include <cstdint>
#include <limits>
#include <string>

/// Common strong-ish unit aliases and conversion helpers used across the
/// library. All simulated time is kept in integer clock cycles of the
/// cluster clock; energy is kept in picojoules (double) to avoid rounding
/// of the per-byte energy constants from the paper.
namespace distmcu {

using Cycles = std::uint64_t;
using Bytes = std::uint64_t;
using PicoJoules = double;

inline constexpr Bytes operator""_KiB(unsigned long long v) { return v * 1024ull; }
inline constexpr Bytes operator""_MiB(unsigned long long v) { return v * 1024ull * 1024ull; }

namespace util {

/// Convert cycles at a given clock frequency to milliseconds.
[[nodiscard]] constexpr double cycles_to_ms(Cycles cycles, double freq_hz) {
  return static_cast<double>(cycles) / freq_hz * 1e3;
}

/// Convert cycles at a given clock frequency to seconds.
[[nodiscard]] constexpr double cycles_to_s(Cycles cycles, double freq_hz) {
  return static_cast<double>(cycles) / freq_hz;
}

/// Saturating add on the cycle timeline. Absolute deadlines are
/// submit-stamp + relative deadline; a huge relative deadline late in a
/// run must clamp to the latest representable instant instead of
/// wrapping (a wrapped deadline would read as already missed).
[[nodiscard]] constexpr Cycles sat_add(Cycles a, Cycles b) {
  return a > std::numeric_limits<Cycles>::max() - b
             ? std::numeric_limits<Cycles>::max()
             : a + b;
}

/// Convert picojoules to millijoules.
[[nodiscard]] constexpr double pj_to_mj(PicoJoules pj) { return pj * 1e-9; }

/// Convert picojoules to microjoules.
[[nodiscard]] constexpr double pj_to_uj(PicoJoules pj) { return pj * 1e-6; }

/// Human-readable byte count, e.g. "768.0 KiB".
[[nodiscard]] std::string format_bytes(Bytes bytes);

/// Human-readable cycle count with SI suffix, e.g. "6.9M".
[[nodiscard]] std::string format_si(double value, int precision = 2);

}  // namespace util
}  // namespace distmcu

#endif  // DISTMCU_UTIL_UNITS_HPP
