#include "runtime/steady_state.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "partition/memory_planner.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "util/check.hpp"

namespace distmcu::runtime {

SteadyStateSimulation::SteadyStateSimulation(SystemConfig sys) : sys_(std::move(sys)) {}

SteadyStateReport SteadyStateSimulation::run(const partition::PartitionPlan& plan,
                                             model::Mode mode) const {
  // Per-block latency with weights staged (the paper's number).
  SystemConfig isolated = sys_;
  isolated.accounting = LatencyAccounting::single_block_resident;
  const RunReport block = TimedBlockSimulation(isolated).run(plan, mode);

  SteadyStateReport out;
  out.blocks = plan.config().num_layers;
  out.per_block_isolated = block.block_cycles;
  out.residency = block.residency;

  if (block.residency != partition::Residency::double_buffered) {
    // Streamed: L3 already serialized inside the block; fully resident:
    // nothing to fetch. Blocks chain back-to-back either way.
    out.total_cycles = block.block_cycles * static_cast<Cycles>(out.blocks);
    out.per_block_sustained = block.block_cycles;
    return out;
  }

  // Double-buffered: every chip prefetches its next-block shard on its
  // own L3 DMA concurrently with compute. Worst-case chip 0 gates the
  // system (largest shard); all chips advance in lock-step through the
  // block's two synchronizations, so one event chain per block suffices.
  const Bytes shard =
      plan.max_chip_block_weight_elems() * sys_.precision.weight_bytes;

  sim::Engine engine;
  sim::Resource l3_port("l3_dma[chip0]", sys_.chip.bw_l3_l2, sys_.chip.dma_setup_l3);

  std::vector<Cycles> weights_ready(static_cast<std::size_t>(out.blocks), 0);
  // Block 0 is staged before the pass begins (the paper's setup);
  // block 1..L-1 arrive by DMA issued when the previous block starts.
  Cycles stall_total = 0;
  Cycles finish = 0;
  int next_block = 0;

  // Issue the first prefetch at t=0 (block 1 loads while block 0 runs).
  std::function<void()> start_next_block = [&]() {
    const int b = next_block++;
    if (b >= out.blocks) return;
    const Cycles now = engine.now();
    // Prefetch for the following block is programmed as this block
    // starts.
    if (b + 1 < out.blocks) {
      weights_ready[static_cast<std::size_t>(b + 1)] = l3_port.transfer(now, shard);
    }
    const Cycles ready = weights_ready[static_cast<std::size_t>(b)];
    const Cycles start = std::max(now, ready);
    stall_total += start - now;
    engine.schedule_at(start + block.block_cycles, [&]() {
      finish = engine.now();
      start_next_block();
    });
  };
  engine.schedule_at(0, start_next_block);
  engine.run();

  out.total_cycles = finish;
  out.prefetch_stall_cycles = stall_total;
  out.per_block_sustained = finish / static_cast<Cycles>(out.blocks);
  return out;
}

}  // namespace distmcu::runtime
