// End-to-end autoregressive generation on the distributed system: embeds
// a prompt, prefills the partitioned KV caches, and greedily decodes new
// tokens while accounting simulated latency and energy per token. The
// distributed numerics are real — the same tokens come out of a
// single-chip reference (asserted here as a self-check).
//
//   ./examples/tinyllama_generate [num_chips] [new_tokens]
#include <cstdlib>
#include <iostream>

#include "model/config.hpp"
#include "model/embedding.hpp"
#include "model/reference_model.hpp"
#include "runtime/inference_session.hpp"

using namespace distmcu;

int main(int argc, char** argv) {
  const int n_chips = argc > 1 ? std::atoi(argv[1]) : 8;
  const int new_tokens = argc > 2 ? std::atoi(argv[2]) : 12;

  // A reduced-vocabulary TinyLlama keeps this demo fast on the host while
  // exercising the identical distributed code path.
  auto cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.vocab_size = 512;

  const std::uint64_t seed = 2025;
  const runtime::InferenceSession session(cfg, n_chips,
                                          runtime::SystemConfig::siracusa_system(), seed);

  const std::vector<int> prompt{11, 42, 7, 99};
  std::cout << "generating " << new_tokens << " tokens on " << n_chips
            << " chips...\n";
  const auto gen = session.generate(prompt, new_tokens);

  std::cout << "tokens:";
  for (const int t : gen.tokens) std::cout << ' ' << t;
  std::cout << '\n';

  const double freq = session.system().chip.freq_hz;
  std::cout << "simulated decode latency: "
            << util::cycles_to_ms(gen.total_cycles, freq) << " ms total, "
            << gen.tokens_per_s(freq) << " tok/s\n"
            << "simulated energy: " << gen.total_energy_mj << " mJ total, "
            << gen.mj_per_token() << " mJ/token\n";

  // Self-check: the distributed pipeline must reproduce the single-chip
  // reference tokens exactly (greedy decoding, identical seeds).
  const model::Weights w(cfg, seed);
  const model::Embedding emb(cfg, seed);
  const model::ReferenceModel ref(cfg, w);
  auto caches = ref.make_caches(cfg.ar_context);
  model::Tensor h = ref.forward_prompt(emb.lookup(prompt), &caches, 0);
  int next = emb.greedy_next(h);
  std::vector<int> ref_tokens = prompt;
  int pos = static_cast<int>(prompt.size());
  for (int t = 0; t < new_tokens; ++t) {
    ref_tokens.push_back(next);
    if (t + 1 == new_tokens) break;
    model::Tensor x = ref.forward_ar(emb.lookup({next}), caches, pos++);
    next = emb.greedy_next(x);
  }
  std::cout << (gen.tokens == ref_tokens
                    ? "self-check PASS: distributed tokens == single-chip reference\n"
                    : "self-check FAIL: token mismatch vs reference!\n");
  return gen.tokens == ref_tokens ? 0 : 1;
}
