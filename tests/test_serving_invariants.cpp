// Randomized serving-invariant suite: seeded workloads with varying
// arrival patterns, prompt/new-token lengths, chunk sizes, and KV
// capacities, asserting the conservation invariants of the batched
// serving cost model —
//   * per-request compute + stall shares sum exactly to the aggregate
//     cycles (and energy sums match),
//   * the shared decode stream splits exactly into stall + hidden,
//   * the chunk-stream windows split exactly into tails + hidden,
//   * admission stamps are monotone in admission order and no request is
//     charged for steps past its final token,
// plus the deterministic cross-check that a single request through
// BatchedEngine with chunking disabled is cycle-for-cycle identical to
// InferenceSession::generate / SteadyStateSimulation on the same
// deployment.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "invariant_env.hpp"
#include "runtime/batched_engine.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/steady_state.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

using namespace distmcu;
using runtime::BatchedEngine;
using runtime::InferenceSession;
using runtime::kNoDeadline;
using runtime::RequestId;
using runtime::RequestResult;
using runtime::SchedulePolicy;
using runtime::ServingStats;
using runtime::SloSpec;

namespace {

using distmcu::testing::invariant_seed_count;
using distmcu::testing::SeedReproLog;

/// One shared deployment the randomized scenarios draw from, with its
/// per-step serial decode stream precomputed for the conservation
/// checks. Sessions are expensive (weights + plan + sharding), so each
/// variant is built once for the whole suite.
struct Deployment {
  std::unique_ptr<InferenceSession> session;
  Cycles ar_stream = 0;  // serial decode weight stream, all layers
  bool cheap_numerics = false;  // token cross-checks affordable

  explicit Deployment(model::TransformerConfig cfg, int n_chips,
                      bool cheap = true)
      : session(std::make_unique<InferenceSession>(cfg, n_chips)),
        cheap_numerics(cheap) {
    const auto ar = session->run_block(model::Mode::autoregressive);
    ar_stream = ar.report.breakdown.dma_l3_l2 *
                static_cast<Cycles>(cfg.num_layers);
  }
};

model::TransformerConfig tiny_cfg(int ar_context, int prompt_len) {
  model::TransformerConfig cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.embed_dim = 32;
  cfg.ffn_dim = 64;
  cfg.num_heads = 4;
  cfg.head_dim = 8;
  cfg.num_layers = 2;
  cfg.vocab_size = 100;
  cfg.ar_context = ar_context;
  cfg.prompt_len = prompt_len;
  cfg.validate();
  return cfg;
}

/// Full-width blocks on 4 chips: the streamed regime, where decode
/// weights cross L3 every step and the overlap machinery is live.
model::TransformerConfig streamed_cfg() {
  model::TransformerConfig cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.num_layers = 2;
  cfg.vocab_size = 200;
  cfg.ar_context = 32;
  cfg.prompt_len = 6;
  cfg.validate();
  return cfg;
}

/// The suite's deployment pool, covering chip counts and KV capacities
/// (ar_context bounds both the caches and the admissible workloads).
const std::vector<Deployment>& deployments() {
  static const auto* pool = [] {
    auto* v = new std::vector<Deployment>();
    v->emplace_back(tiny_cfg(/*ar_context=*/24, /*prompt_len=*/6), 4);
    v->emplace_back(tiny_cfg(/*ar_context=*/12, /*prompt_len=*/4), 2);
    v->emplace_back(tiny_cfg(/*ar_context=*/48, /*prompt_len=*/8), 4);
    v->emplace_back(streamed_cfg(), 4, /*cheap=*/false);
    return v;
  }();
  return *pool;
}

struct Scenario {
  int deployment = 0;
  BatchedEngine::Options opts;
  struct Job {
    std::vector<int> prompt;
    int new_tokens = 0;
    int submit_after_step = 0;  // arrival pattern: 0 = before serving
    bool attempted = false;     // submitted exactly once at its arrival
    SloSpec slo;                // zero by default (best-effort, class 0)
    std::optional<RequestId> id;
  };
  std::vector<Job> jobs;
};

Scenario make_scenario(std::uint64_t seed) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
  Scenario sc;
  sc.deployment = static_cast<int>(rng.next_below(deployments().size()));
  const auto& dep = deployments()[static_cast<std::size_t>(sc.deployment)];
  const auto& cfg = dep.session->config();

  sc.opts.max_batch = 1 + static_cast<int>(rng.next_below(4));
  sc.opts.max_pending = static_cast<int>(rng.next_below(10));
  // Chunk sizes sweep disabled (0), tiny, mid, and whole-prompt.
  const int chunk_choices[] = {0, 1, 2, 3, cfg.prompt_len, cfg.prompt_len + 7};
  sc.opts.prefill_chunk_tokens =
      chunk_choices[rng.next_below(std::size(chunk_choices))];

  const int n_jobs =
      (dep.cheap_numerics ? 3 : 2) + static_cast<int>(rng.next_below(5));
  for (int j = 0; j < n_jobs; ++j) {
    Scenario::Job job;
    const int plen = 1 + static_cast<int>(rng.next_below(
                             static_cast<std::uint64_t>(cfg.prompt_len)));
    for (int t = 0; t < plen; ++t) {
      job.prompt.push_back(static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(cfg.vocab_size))));
    }
    const int room = cfg.ar_context - plen;
    job.new_tokens = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(std::min(room, 6)) + 1));
    job.submit_after_step = static_cast<int>(rng.next_below(6));
    sc.jobs.push_back(std::move(job));
  }
  return sc;
}

/// Decorate a scenario's jobs with randomized SLOs: priority classes
/// 0..3 and, for two thirds of the jobs, deadlines spanning "hopeless"
/// through "trivially met" — the conservation invariants must hold
/// whatever the mix, under every admission policy.
void decorate_slo(Scenario& sc, std::uint64_t seed) {
  util::Rng rng(seed * 0x2545f4914f6cdd1dull + 3);
  for (auto& job : sc.jobs) {
    job.slo.priority = static_cast<int>(rng.next_below(4));
    if (rng.next_below(3) != 0) {
      job.slo.deadline_cycles = (1 + rng.next_below(64)) * 1'000'000;
    }
  }
}

/// Run one scenario (mid-serving arrivals included) and return the
/// completed results; rejected submits simply drop their job id.
std::vector<RequestResult> run_scenario(Scenario& sc, BatchedEngine& engine) {
  int step_idx = 0;
  bool work = true;
  for (;;) {
    bool submitted_any = false;
    for (auto& job : sc.jobs) {
      if (job.attempted || job.submit_after_step > step_idx) continue;
      job.id = engine.submit(job.prompt, job.new_tokens, job.slo);
      job.attempted = true;
      submitted_any = true;
    }
    const bool pending_arrivals =
        std::any_of(sc.jobs.begin(), sc.jobs.end(),
                    [](const auto& j) { return !j.attempted; });
    work = engine.step();
    ++step_idx;
    if (!work && !pending_arrivals && !submitted_any) break;
    if (step_idx > 500) {
      ADD_FAILURE() << "scenario did not drain";
      break;
    }
  }
  return engine.finished();
}

const RequestResult& result_for(const std::vector<RequestResult>& results,
                                RequestId id) {
  for (const auto& r : results) {
    if (r.id == id) return r;
  }
  throw Error("result_for: no such request id");
}

void check_invariants(const Scenario& sc, const BatchedEngine& engine,
                      const std::vector<RequestResult>& results,
                      std::uint64_t seed, bool fifo_admission = true) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  const auto& dep = deployments()[static_cast<std::size_t>(sc.deployment)];
  const ServingStats& stats = engine.stats();

  // Everything accepted completed; nothing is still resident.
  int accepted = 0;
  for (const auto& job : sc.jobs) accepted += job.id.has_value() ? 1 : 0;
  EXPECT_EQ(static_cast<int>(results.size()), accepted);
  EXPECT_EQ(stats.completed, accepted);
  EXPECT_EQ(stats.rejected, static_cast<int>(sc.jobs.size()) - accepted);
  EXPECT_EQ(engine.active_requests(), 0);
  EXPECT_EQ(engine.pending_requests(), 0);
  EXPECT_LE(stats.peak_batch, sc.opts.max_batch);

  // Conservation: per-request compute + stall shares sum EXACTLY to the
  // aggregate cycles; energy sums match; token counts match.
  Cycles cycle_sum = 0;
  double energy_sum = 0.0;
  int generated_sum = 0;
  for (const auto& r : results) {
    cycle_sum += r.gen.total_cycles;
    energy_sum += r.gen.total_energy_mj;
    generated_sum += r.gen.generated;
  }
  EXPECT_EQ(cycle_sum, stats.total_cycles);
  EXPECT_NEAR(energy_sum, stats.total_energy_mj,
              1e-9 * std::max(1.0, energy_sum));
  EXPECT_EQ(generated_sum, stats.total_generated);

  // Decode-stream conservation: stall + hidden == one serial stream per
  // decode step.
  EXPECT_EQ(stats.prefetch_stall_cycles + stats.stream_cycles_hidden,
            static_cast<Cycles>(stats.decode_steps) * dep.ar_stream);
  // Chunk-stream conservation (chunked mode; all three stay zero in the
  // serial mode).
  EXPECT_EQ(stats.prefill_stall_cycles + stats.prefill_cycles_hidden,
            stats.prefill_stream_cycles);
  if (engine.chunk_tokens() == 0) {
    EXPECT_EQ(stats.prefill_stream_cycles, 0u);
  }

  // Admission stamps are monotone in admission order. Under FIFO ids are
  // issued in submit order and admitted in that order; other policies
  // reorder admission, so the FIFO-only check is skipped for them.
  if (fifo_admission) {
    std::vector<const RequestResult*> by_id;
    by_id.reserve(results.size());
    for (const auto& r : results) by_id.push_back(&r);
    std::sort(by_id.begin(), by_id.end(),
              [](const auto* a, const auto* b) { return a->id < b->id; });
    for (std::size_t i = 1; i < by_id.size(); ++i) {
      EXPECT_LE(by_id[i - 1]->admitted_step, by_id[i]->admitted_step);
      EXPECT_LE(by_id[i - 1]->admitted_at, by_id[i]->admitted_at);
    }
  }

  // Per-request sanity: residence covers the attributed charge (no
  // request is charged for steps outside its own span), spans sit inside
  // the engine timeline, and a request never outlives the drain.
  for (const auto& r : results) {
    EXPECT_GE(r.finished_at, r.admitted_at);
    EXPECT_GE(r.latency_cycles(), r.gen.total_cycles);
    EXPECT_LE(r.finished_at, stats.total_cycles);
    EXPECT_GE(r.finished_step, r.admitted_step);
    EXPECT_GT(r.gen.total_cycles, 0u);  // prefill is always charged
  }

  // SLO bookkeeping reconciles with the per-request results under every
  // policy: queue delays are the submit-to-admission spans, the deadline
  // counters match the individual verdicts, and the percentile snapshot
  // brackets the observed delays.
  int slo_requests = 0;
  int deadline_misses = 0;
  Cycles qd_total = 0;
  Cycles qd_max = 0;
  for (const auto& r : results) {
    EXPECT_GE(r.admitted_at, r.submitted_at);
    EXPECT_EQ(r.queue_delay_cycles(), r.admitted_at - r.submitted_at);
    EXPECT_GE(r.attained_cycles(), r.latency_cycles());
    qd_total += r.queue_delay_cycles();
    qd_max = std::max(qd_max, r.queue_delay_cycles());
    if (r.deadline_at != kNoDeadline) {
      // Saturating resolve: a near-max relative deadline pins to the end
      // of the timeline instead of wrapping into the past.
      EXPECT_EQ(r.deadline_at,
                util::sat_add(r.submitted_at, r.slo.deadline_cycles));
      ++slo_requests;
      if (r.missed_deadline()) ++deadline_misses;
    } else {
      EXPECT_FALSE(r.missed_deadline());
    }
  }
  EXPECT_EQ(stats.slo_requests, slo_requests);
  EXPECT_EQ(stats.deadline_misses, deadline_misses);
  EXPECT_EQ(stats.queue_delay_total, qd_total);
  EXPECT_LE(stats.queue_delay_p50, stats.queue_delay_p95);
  EXPECT_LE(stats.queue_delay_p95, stats.queue_delay_p99);
  EXPECT_LE(stats.queue_delay_p99, qd_max);
}

}  // namespace

TEST(ServingInvariants, RandomizedScenariosHoldConservation) {
  // >= 100 seeded scenarios across deployments, chunk sizes, batch
  // shapes, and arrival patterns (default 120; the nightly job raises
  // it via DISTMCU_INVARIANT_SEEDS).
  const std::uint64_t kSeeds = invariant_seed_count(120);
  SeedReproLog repro("./test_serving_invariants",
                     "ServingInvariants.RandomizedScenariosHoldConservation");
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    repro.begin();
    Scenario sc = make_scenario(seed);
    const auto& dep = deployments()[static_cast<std::size_t>(sc.deployment)];
    BatchedEngine engine(*dep.session, sc.opts);
    const auto results = run_scenario(sc, engine);
    check_invariants(sc, engine, results, seed);
    repro.end(seed);
  }
}

TEST(ServingInvariants, RandomizedTokenStreamsMatchDedicatedGenerate) {
  // Functional spot-check on the cheap deployments: every accepted
  // request's stream equals a dedicated generate call, whatever the
  // chunking and arrival pattern.
  for (std::uint64_t seed = 1000; seed < 1024; ++seed) {
    Scenario sc = make_scenario(seed);
    const auto& dep = deployments()[static_cast<std::size_t>(sc.deployment)];
    if (!dep.cheap_numerics) continue;
    BatchedEngine engine(*dep.session, sc.opts);
    const auto results = run_scenario(sc, engine);
    for (const auto& job : sc.jobs) {
      if (!job.id.has_value()) continue;
      const auto solo = dep.session->generate(job.prompt, job.new_tokens);
      EXPECT_EQ(result_for(results, *job.id).gen.tokens, solo.tokens)
          << "seed " << seed;
    }
  }
}

TEST(ServingInvariants, ScenariosAreDeterministic) {
  // The whole pipeline — admission, chunk scheduling, attribution — is
  // replay-stable: the same seed produces identical stats and stamps.
  for (const std::uint64_t seed : {3u, 57u, 91u}) {
    Scenario a = make_scenario(seed);
    Scenario b = make_scenario(seed);
    const auto& dep = deployments()[static_cast<std::size_t>(a.deployment)];
    BatchedEngine ea(*dep.session, a.opts);
    BatchedEngine eb(*dep.session, b.opts);
    const auto ra = run_scenario(a, ea);
    const auto rb = run_scenario(b, eb);
    ASSERT_EQ(ra.size(), rb.size());
    EXPECT_EQ(ea.stats().total_cycles, eb.stats().total_cycles);
    EXPECT_EQ(ea.stats().prefill_stream_cycles, eb.stats().prefill_stream_cycles);
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].id, rb[i].id);
      EXPECT_EQ(ra[i].gen.total_cycles, rb[i].gen.total_cycles);
      EXPECT_EQ(ra[i].admitted_at, rb[i].admitted_at);
      EXPECT_EQ(ra[i].finished_at, rb[i].finished_at);
      EXPECT_EQ(ra[i].gen.tokens, rb[i].gen.tokens);
    }
  }
}

// --- scheduling policies ---------------------------------------------------

TEST(ServingInvariants, RandomizedSloScenariosHoldConservationUnderEveryPolicy) {
  // The conservation and SLO-bookkeeping invariants are policy-blind:
  // schedulers only permute admission, never the cost model. Every
  // scenario runs under all three built-in policies with randomized
  // priorities and deadlines.
  const std::uint64_t kSeeds = invariant_seed_count(25);
  SeedReproLog repro(
      "./test_serving_invariants",
      "ServingInvariants.RandomizedSloScenariosHoldConservationUnderEveryPolicy");
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    repro.begin();
    for (const auto policy : {SchedulePolicy::fifo, SchedulePolicy::priority,
                              SchedulePolicy::edf}) {
      Scenario sc = make_scenario(seed);
      decorate_slo(sc, seed);
      sc.opts.scheduler = runtime::make_scheduler(policy);
      const auto& dep = deployments()[static_cast<std::size_t>(sc.deployment)];
      BatchedEngine engine(*dep.session, sc.opts);
      const auto results = run_scenario(sc, engine);
      SCOPED_TRACE(std::string("policy ") + runtime::policy_name(policy));
      check_invariants(sc, engine, results, seed,
                       /*fifo_admission=*/policy == SchedulePolicy::fifo);
    }
    repro.end(seed);
  }
}

TEST(ServingInvariants, FifoSchedulerBitExactWithDefaultEngine) {
  // The refactor's null hypothesis: an explicit FifoScheduler and the
  // default (no scheduler configured) produce identical serving — same
  // stats, same stamps, same streams — across randomized scenarios.
  for (std::uint64_t seed = 200; seed < 216; ++seed) {
    Scenario sa = make_scenario(seed);
    Scenario sb = make_scenario(seed);
    decorate_slo(sa, seed);
    decorate_slo(sb, seed);
    sb.opts.scheduler = std::make_shared<runtime::FifoScheduler>();
    const auto& dep = deployments()[static_cast<std::size_t>(sa.deployment)];
    BatchedEngine ea(*dep.session, sa.opts);
    BatchedEngine eb(*dep.session, sb.opts);
    const auto ra = run_scenario(sa, ea);
    const auto rb = run_scenario(sb, eb);
    SCOPED_TRACE("seed " + std::to_string(seed));
    ASSERT_EQ(ra.size(), rb.size());
    EXPECT_EQ(ea.stats().total_cycles, eb.stats().total_cycles);
    EXPECT_EQ(ea.stats().deadline_misses, eb.stats().deadline_misses);
    EXPECT_EQ(ea.stats().queue_delay_p99, eb.stats().queue_delay_p99);
    EXPECT_NEAR(ea.stats().total_energy_mj, eb.stats().total_energy_mj, 1e-12);
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].id, rb[i].id);
      EXPECT_EQ(ra[i].gen.tokens, rb[i].gen.tokens);
      EXPECT_EQ(ra[i].gen.total_cycles, rb[i].gen.total_cycles);
      EXPECT_EQ(ra[i].admitted_at, rb[i].admitted_at);
      EXPECT_EQ(ra[i].finished_at, rb[i].finished_at);
      EXPECT_EQ(ra[i].submitted_at, rb[i].submitted_at);
    }
  }
}

TEST(ServingInvariants, PriorityAgingPreventsStarvation) {
  // One low-priority request against a continuous stream of high-priority
  // arrivals through a single KV slot. With aggressive aging the starved
  // request outranks fresh arrivals after one admission round; with aging
  // disabled it is admitted dead last.
  const auto& dep = deployments()[0];
  constexpr int kHighPrioJobs = 8;

  const auto run = [&](Cycles aging_cycles) {
    BatchedEngine engine(
        *dep.session,
        {.max_batch = 1,
         .max_pending = 64,
         .scheduler = std::make_shared<runtime::PriorityScheduler>(
             runtime::PriorityScheduler::Options{.aging_cycles = aging_cycles})});
    // Submitted first, least urgent class.
    const auto low = *engine.submit({5, 3}, 2, {.priority = 5});
    std::vector<RequestId> high;
    (void)*engine.submit({1, 2}, 2, {.priority = 0});
    int arrivals = 1;
    bool work = true;
    while (work || arrivals < kHighPrioJobs) {
      if (arrivals < kHighPrioJobs) {
        high.push_back(*engine.submit({1 + arrivals, 2}, 2, {.priority = 0}));
        ++arrivals;
      }
      work = engine.step();
    }
    return std::pair{low, engine.finished()};
  };

  // Aggressive aging (every waited cycle promotes a class): the starved
  // request wins the second admission, so most high-priority jobs are
  // admitted after it.
  {
    const auto [low, results] = run(/*aging_cycles=*/1);
    const RequestResult& lr = result_for(results, low);
    int admitted_after_low = 0;
    for (const auto& r : results) {
      if (r.id != low && r.admitted_at > lr.admitted_at) ++admitted_after_low;
    }
    EXPECT_GE(admitted_after_low, kHighPrioJobs - 2);
  }
  // Aging disabled: static classes starve it to the very end.
  {
    const auto [low, results] = run(/*aging_cycles=*/0);
    const RequestResult& lr = result_for(results, low);
    for (const auto& r : results) {
      if (r.id != low) {
        EXPECT_LT(r.admitted_at, lr.admitted_at);
      }
    }
  }
}

TEST(ServingInvariants, EdfMeetsFeasibleDeadlinesAndNeverExceedsFifoMisses) {
  // Deadline-feasible workloads by construction: a probe run serves the
  // jobs sequentially (single slot, serial prefill) in a random
  // permutation and each job's deadline is set 10% above its probe
  // finish time, so that service order provably meets every deadline.
  // Jackson's rule: with equal release times and one non-preemptive
  // server, earliest-deadline-first is optimal for max lateness — EDF
  // must meet ALL deadlines, whatever (adversarial) order the jobs were
  // submitted in, while FIFO in submit order generally misses some.
  int fifo_misses_total = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    util::Rng rng(seed * 0x9e3779b97f4a7c15ull + 77);
    const auto& dep = deployments()[seed % 2];
    const auto& cfg = dep.session->config();

    struct Job {
      std::vector<int> prompt;
      int new_tokens = 0;
      Cycles deadline = kNoDeadline;
    };
    const int n_jobs = 3 + static_cast<int>(rng.next_below(4));
    std::vector<Job> jobs;
    for (int j = 0; j < n_jobs; ++j) {
      Job job;
      const int plen = 1 + static_cast<int>(rng.next_below(
                               static_cast<std::uint64_t>(cfg.prompt_len)));
      for (int t = 0; t < plen; ++t) {
        job.prompt.push_back(static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(cfg.vocab_size))));
      }
      job.new_tokens = 1 + static_cast<int>(rng.next_below(5));
      jobs.push_back(std::move(job));
    }
    // Random service permutation for the probe.
    std::vector<std::size_t> perm(jobs.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.next_below(i)]);
    }

    const BatchedEngine::Options opts{.max_batch = 1, .max_pending = 64};
    {
      BatchedEngine probe(*dep.session, opts);
      std::vector<RequestId> ids;
      for (const std::size_t j : perm) {
        ids.push_back(*probe.submit(jobs[j].prompt, jobs[j].new_tokens));
      }
      const auto finished = probe.run_to_completion();
      for (std::size_t k = 0; k < perm.size(); ++k) {
        const Cycles finish = result_for(finished, ids[k]).finished_at;
        jobs[perm[k]].deadline = finish + finish / 10;
      }
    }

    const auto run_policy = [&](SchedulePolicy policy) {
      auto o = opts;
      o.scheduler = runtime::make_scheduler(policy);
      BatchedEngine engine(*dep.session, o);
      for (const auto& job : jobs) {
        (void)*engine.submit(job.prompt, job.new_tokens,
                             {.priority = 0, .deadline_cycles = job.deadline});
      }
      (void)engine.run_to_completion();
      return engine.stats().deadline_misses;
    };
    const int fifo_misses = run_policy(SchedulePolicy::fifo);
    const int edf_misses = run_policy(SchedulePolicy::edf);
    EXPECT_EQ(edf_misses, 0);
    EXPECT_LE(edf_misses, fifo_misses);
    fifo_misses_total += fifo_misses;
  }
  // The adversarial submit orders must have cost FIFO something, or the
  // comparison is vacuous.
  EXPECT_GT(fifo_misses_total, 0);
}

// --- overload safety -------------------------------------------------------

TEST(ServingInvariants, OverloadScenariosConserveEveryRequest) {
  // Under sustained overload with bounded queues, fail-fast rejection,
  // and fair shedding, every offered request is accounted for exactly
  // once: offered == accepted + rejected, accepted == completed + shed,
  // and the rejection reasons partition the rejects. The cycle/energy
  // books must balance over the completions alone (shed requests were
  // never admitted, so they carry no charge).
  const std::uint64_t kSeeds = invariant_seed_count(40);
  SeedReproLog repro("./test_serving_invariants",
                     "ServingInvariants.OverloadScenariosConserveEveryRequest");
  const int pending_bounds[] = {0, 1, 64};
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    repro.begin();
    for (const int max_pending : pending_bounds) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " max_pending " +
                   std::to_string(max_pending));
      Scenario sc = make_scenario(seed);
      decorate_slo(sc, seed);
      sc.opts.max_pending = max_pending;
      sc.opts.fair_shedding = true;
      sc.opts.fail_fast_deadlines = (seed % 2) == 0;
      const auto& dep = deployments()[static_cast<std::size_t>(sc.deployment)];
      BatchedEngine engine(*dep.session, sc.opts);
      const auto results = run_scenario(sc, engine);
      const ServingStats& stats = engine.stats();

      const int offered = static_cast<int>(sc.jobs.size());
      int accepted = 0;
      for (const auto& job : sc.jobs) accepted += job.id.has_value() ? 1 : 0;
      EXPECT_EQ(stats.rejected, offered - accepted);
      EXPECT_EQ(stats.rejected,
                stats.rejected_queue_full + stats.rejected_hopeless_deadline);
      if (!sc.opts.fail_fast_deadlines) {
        EXPECT_EQ(stats.rejected_hopeless_deadline, 0);
      }
      EXPECT_EQ(stats.completed, accepted - stats.shed);
      EXPECT_EQ(static_cast<int>(results.size()), stats.completed);
      EXPECT_EQ(static_cast<int>(engine.shed_ids().size()), stats.shed);
      EXPECT_EQ(engine.active_requests(), 0);
      EXPECT_EQ(engine.pending_requests(), 0);

      // Shed ids were accepted, and never finish.
      for (const RequestId shed : engine.shed_ids()) {
        EXPECT_TRUE(std::any_of(
            sc.jobs.begin(), sc.jobs.end(),
            [&](const auto& j) { return j.id && *j.id == shed; }));
        EXPECT_FALSE(std::any_of(
            results.begin(), results.end(),
            [&](const RequestResult& r) { return r.id == shed; }));
      }

      Cycles cycle_sum = 0;
      double energy_sum = 0.0;
      for (const auto& r : results) {
        cycle_sum += r.gen.total_cycles;
        energy_sum += r.gen.total_energy_mj;
      }
      EXPECT_EQ(cycle_sum, stats.total_cycles);
      EXPECT_NEAR(energy_sum, stats.total_energy_mj,
                  1e-9 * std::max(1.0, energy_sum));
    }
    repro.end(seed);
  }
}

TEST(ServingInvariants, PreemptionKeepsEveryInvariantUnderEveryPolicy) {
  // Preemption-safety property: with deadline-aware eviction live,
  // every serving invariant — exact cycle/energy conservation, SLO
  // bookkeeping, drain completeness — still holds under all three
  // admission policies, and on the cheap deployments every completed
  // stream stays bit-identical to a dedicated generate() call however
  // many checkpoint round trips it took.
  const std::uint64_t kSeeds = invariant_seed_count(15);
  SeedReproLog repro(
      "./test_serving_invariants",
      "ServingInvariants.PreemptionKeepsEveryInvariantUnderEveryPolicy");
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    repro.begin();
    for (const auto policy : {SchedulePolicy::fifo, SchedulePolicy::priority,
                              SchedulePolicy::edf}) {
      Scenario sc = make_scenario(seed);
      decorate_slo(sc, seed);
      sc.opts.scheduler = runtime::make_scheduler(policy);
      sc.opts.preemption = std::make_shared<runtime::DeadlineAwarePreemption>();
      const auto& dep = deployments()[static_cast<std::size_t>(sc.deployment)];
      BatchedEngine engine(*dep.session, sc.opts);
      const auto results = run_scenario(sc, engine);
      SCOPED_TRACE(std::string("policy ") + runtime::policy_name(policy));
      check_invariants(sc, engine, results, seed, /*fifo_admission=*/false);
      EXPECT_EQ(engine.stats().preemptions, engine.stats().resumes);
      if (dep.cheap_numerics) {
        for (const auto& job : sc.jobs) {
          if (!job.id.has_value()) continue;
          EXPECT_EQ(result_for(results, *job.id).gen.tokens,
                    dep.session->generate(job.prompt, job.new_tokens).tokens)
              << "seed " << seed;
        }
      }
    }
    repro.end(seed);
  }
}

// --- deterministic cross-checks against the single-stream runtimes --------

TEST(ServingCrossCheck, SerialModeSingleRequestMatchesSessionAndSteadyState) {
  // Chunking disabled, one request, fully resident deployment: the
  // engine must reproduce InferenceSession::generate cycle-for-cycle,
  // and generate itself must compose from SteadyStateSimulation's
  // full-pass totals (prefill pass + (n-1) decode passes).
  const auto cfg = tiny_cfg(/*ar_context=*/24, /*prompt_len=*/6);
  const InferenceSession session(cfg, 4);
  const auto ar = session.run_block(model::Mode::autoregressive);
  ASSERT_NE(ar.report.residency, partition::Residency::double_buffered);

  const std::vector<int> prompt{3, 1, 4, 1};
  const int steps = 5;
  BatchedEngine engine(session, {.max_batch = 1, .max_pending = 4});
  ASSERT_TRUE(engine.submit(prompt, steps).has_value());
  const auto results = engine.run_to_completion();
  const auto solo = session.generate(prompt, steps);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].gen.tokens, solo.tokens);
  EXPECT_EQ(results[0].gen.total_cycles, solo.total_cycles);
  EXPECT_EQ(results[0].latency_cycles(), solo.total_cycles);

  const runtime::SteadyStateSimulation steady(session.system());
  const auto ss_prompt = steady.run(session.plan(), model::Mode::prompt);
  const auto ss_ar = steady.run(session.plan(), model::Mode::autoregressive);
  ASSERT_NE(ss_prompt.residency, partition::Residency::double_buffered);
  const Cycles composed =
      ss_prompt.total_cycles +
      static_cast<Cycles>(steps - 1) * ss_ar.total_cycles;
  EXPECT_EQ(solo.total_cycles, composed);
  EXPECT_EQ(results[0].gen.total_cycles, composed);
}

TEST(ServingCrossCheck, SerialModeStreamedDeploymentReconstructsSerialModel) {
  // Streamed deployment: the engine's overlap hides stream time, but the
  // serial-charging model is exactly reconstructible as
  // total + stream_cycles_hidden — and equals both generate() and the
  // SteadyStateSimulation composition.
  const auto cfg = streamed_cfg();
  const InferenceSession session(cfg, 4);
  const auto ar = session.run_block(model::Mode::autoregressive);
  ASSERT_EQ(ar.report.residency, partition::Residency::streamed);

  const std::vector<int> prompt{2, 4, 6};
  const int steps = 6;
  BatchedEngine engine(session, {.max_batch = 1, .max_pending = 4});
  ASSERT_TRUE(engine.submit(prompt, steps).has_value());
  (void)engine.run_to_completion();
  const auto solo = session.generate(prompt, steps);
  EXPECT_EQ(engine.stats().total_cycles + engine.stats().stream_cycles_hidden,
            solo.total_cycles);

  const runtime::SteadyStateSimulation steady(session.system());
  const auto ss_prompt = steady.run(session.plan(), model::Mode::prompt);
  const auto ss_ar = steady.run(session.plan(), model::Mode::autoregressive);
  ASSERT_EQ(ss_prompt.residency, partition::Residency::streamed);
  EXPECT_EQ(solo.total_cycles,
            ss_prompt.total_cycles +
                static_cast<Cycles>(steps - 1) * ss_ar.total_cycles);
}

// --- paged KV serving ------------------------------------------------------

namespace {

/// Page sizes that divide every deployment's context evenly, so a
/// paged scenario occupies exactly the KV bytes its slot twin would
/// (cap pages * page bytes == cap slots * set bytes).
int pick_page_tokens(int ar_context, std::uint64_t pick) {
  const int choices[] = {2, 4, ar_context / 2, ar_context};
  return choices[pick % std::size(choices)];
}

/// Rewrite a slot scenario as its equal-KV-bytes paged twin: max_batch
/// switches from whole-request slots to the same bytes' worth of pages.
void make_paged(Scenario& sc, std::uint64_t seed, bool sharing) {
  const auto& dep = deployments()[static_cast<std::size_t>(sc.deployment)];
  const int ctx = dep.session->config().ar_context;
  const int pt = pick_page_tokens(ctx, seed);
  sc.opts.kv_page_tokens = pt;
  sc.opts.max_batch = sc.opts.max_batch * (ctx / pt);
  sc.opts.prefix_sharing = sharing;
}

}  // namespace

TEST(ServingInvariants, PagedRandomizedScenariosConservePages) {
  // The paged twin of the core conservation sweep: every serving
  // invariant holds page-granular, the arena's reference accounting
  // stays consistent at every step boundary (refs >= physical pages in
  // use >= the registry's pins), and a drained engine holds exactly the
  // registry's pinned pages — zero page leakage from served requests.
  const std::uint64_t kSeeds = invariant_seed_count(60);
  SeedReproLog repro("./test_serving_invariants",
                     "ServingInvariants.PagedRandomizedScenariosConservePages");
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    repro.begin();
    const bool sharing = (seed % 2) == 1;
    Scenario sc = make_scenario(seed);
    make_paged(sc, seed, sharing);
    const auto& dep = deployments()[static_cast<std::size_t>(sc.deployment)];
    BatchedEngine engine(*dep.session, sc.opts);
    ASSERT_TRUE(engine.paged());
    const auto& pages = engine.kv_pages();

    // Stepped run with per-boundary arena checks (run_scenario's loop,
    // instrumented).
    int step_idx = 0;
    bool work = true;
    for (;;) {
      bool submitted_any = false;
      for (auto& job : sc.jobs) {
        if (job.attempted || job.submit_after_step > step_idx) continue;
        job.id = engine.submit(job.prompt, job.new_tokens, job.slo);
        job.attempted = true;
        submitted_any = true;
      }
      const bool pending_arrivals =
          std::any_of(sc.jobs.begin(), sc.jobs.end(),
                      [](const auto& j) { return !j.attempted; });
      work = engine.step();
      ++step_idx;
      ASSERT_LE(pages.in_use(), pages.capacity());
      ASSERT_GE(pages.total_refs(), static_cast<long long>(pages.in_use()));
      ASSERT_LE(engine.prefix_cache_pages(), pages.in_use());
      ASSERT_EQ(pages.shared_pages() == 0,
                pages.total_refs() == static_cast<long long>(pages.in_use()));
      if (!work && !pending_arrivals && !submitted_any) break;
      ASSERT_LT(step_idx, 500) << "scenario did not drain";
    }
    const auto results = engine.finished();
    // fifo_admission=false: page-granular admission is need-aware, so a
    // later short request can legitimately be admitted while an earlier
    // long one waits for enough free pages.
    check_invariants(sc, engine, results, seed, /*fifo_admission=*/false);

    // Drained: the registry's pins are the only surviving occupancy.
    EXPECT_EQ(pages.in_use(), engine.prefix_cache_pages());
    if (!sharing) {
      EXPECT_EQ(pages.in_use(), 0);
      EXPECT_EQ(pages.total_refs(), 0);
      EXPECT_EQ(engine.prefix_cache_entries(), 0);
    }
    repro.end(seed);
  }
}

TEST(ServingInvariants, PagedStreamsIdenticalAcrossSharingAndSlotMode) {
  // Functional equivalence sweep: the same randomized workload served
  // by the slot engine, the paged engine, and the paged engine with
  // prefix sharing produces bit-identical token streams for every
  // accepted request (each checked against a dedicated generate call).
  for (std::uint64_t seed = 2000; seed < 2024; ++seed) {
    Scenario base = make_scenario(seed);
    const auto& dep = deployments()[static_cast<std::size_t>(base.deployment)];
    if (!dep.cheap_numerics) continue;
    SCOPED_TRACE("seed " + std::to_string(seed));
    for (const int variant : {0, 1, 2}) {
      Scenario sc = make_scenario(seed);
      if (variant > 0) make_paged(sc, seed, /*sharing=*/variant == 2);
      BatchedEngine engine(*dep.session, sc.opts);
      const auto results = run_scenario(sc, engine);
      for (const auto& job : sc.jobs) {
        if (!job.id.has_value()) continue;
        EXPECT_EQ(result_for(results, *job.id).gen.tokens,
                  dep.session->generate(job.prompt, job.new_tokens).tokens)
            << "variant " << variant;
      }
    }
  }
}

TEST(ServingInvariants, PagedPreemptionConservesPagesUnderEveryPolicy) {
  // Preemption + paging: checkpointed requests give back every page
  // (shared pages only when theirs was the last reference), resume
  // bit-exactly, and the books still balance — under all three
  // admission policies, prefix sharing on and off.
  const std::uint64_t kSeeds = invariant_seed_count(15);
  SeedReproLog repro(
      "./test_serving_invariants",
      "ServingInvariants.PagedPreemptionConservesPagesUnderEveryPolicy");
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    repro.begin();
    for (const auto policy : {SchedulePolicy::fifo, SchedulePolicy::priority,
                              SchedulePolicy::edf}) {
      Scenario sc = make_scenario(seed);
      decorate_slo(sc, seed);
      make_paged(sc, seed, /*sharing=*/(seed % 2) == 0);
      sc.opts.scheduler = runtime::make_scheduler(policy);
      sc.opts.preemption = std::make_shared<runtime::DeadlineAwarePreemption>();
      const auto& dep = deployments()[static_cast<std::size_t>(sc.deployment)];
      BatchedEngine engine(*dep.session, sc.opts);
      const auto results = run_scenario(sc, engine);
      SCOPED_TRACE(std::string("policy ") + runtime::policy_name(policy));
      check_invariants(sc, engine, results, seed, /*fifo_admission=*/false);
      EXPECT_EQ(engine.stats().preemptions, engine.stats().resumes);
      EXPECT_EQ(engine.kv_pages().in_use(), engine.prefix_cache_pages());
      EXPECT_EQ(engine.kv_pages().total_reclaimed(),
                engine.stats().per_model[0].kv_slots_reclaimed);
      if (dep.cheap_numerics) {
        for (const auto& job : sc.jobs) {
          if (!job.id.has_value()) continue;
          EXPECT_EQ(result_for(results, *job.id).gen.tokens,
                    dep.session->generate(job.prompt, job.new_tokens).tokens)
              << "seed " << seed;
        }
      }
    }
    repro.end(seed);
  }
}
