// Quantized serving envelope: the SAME burst workload through three
// single-tenant deployments at IDENTICAL total KV pool bytes —
//   fp16     : float block, 16-bit KV entries (the fidelity baseline),
//   int8     : A8W8 quantized block, packed 8-bit KV entries,
//   int8+kv4 : A8W8 block with packed 4-bit KV entries —
// plus a mixed registry (fp16 TinyLlama next to an int8 MobileBERT
// encoder) sharing one arena. Every tenant is registered through the
// unified DeploymentSpec surface; precision is a property of the
// deployment, not of the call sites.
//
// What the bench demonstrates (and self-gates):
//   * capacity: at equal KV pool bytes the int8 layout admits >= 2x the
//     fp16 layout's concurrent requests (peak_batch) and int4 >= 4x —
//     pages/slots cost proportionally fewer bytes, so the same silicon
//     holds more resident requests;
//   * envelope: tokens/s and mJ/token per config from the per-precision
//     cost model (1-byte weights and int8-rate MACs for int8 tenants);
//   * bit-exactness: every served stream matches the dedicated
//     single-request InferenceSession::generate of the same spec;
//   * invariance: the int8 token streams are bit-identical on 2 and 4
//     chips and across reduction tree shapes (flat vs hierarchical) —
//     the int32 all-reduce carries exact partials, so the deployment
//     can be re-sharded without changing a single token;
//   * conservation: the mixed registry's per-model stats partition the
//     engine totals exactly (tokens, cycles, energy) and no KV unit
//     leaks after the drain.
//
// --json <path> writes the machine-readable result used by the CI
// perf-regression gate (tools/check_bench_regression.py compares it
// against bench/baselines/quant_baseline.json). Stable schema:
//
//   {
//     "schema": "distmcu.quant.v1",
//     "freq_hz": F,
//     "model": {"name": "...", "chips": n, "ar_context": n,
//               "prompt_len": n, "chunk": n},
//     "jobs": n,
//     "kv_pool_bytes": N,          // identical across the three configs
//     "configs": [
//       {"config": "fp16" | "int8" | "int8+kv4",
//        "precision": "fp16" | "int8", "kv_layout": "...",
//        "kv_elem_bits": n, "kv_units": n,
//        "peak_batch": n, "completed": n, "total_cycles": n,
//        "tokens_per_s": x, "mj_per_token": x,
//        "bit_exact": true, "units_leaked": 0}],
//     "int8_capacity_gain_vs_fp16": x,   // >= 2.0 gated in CI
//     "int4_capacity_gain_vs_fp16": x,   // >= 4.0 gated in CI
//     "chip_invariant": true,        // int8 streams, 2 vs 4 chips
//     "reduction_invariant": true,   // int8 streams, tree vs flat
//     "mixed": {"models": n, "completed": n, "total_cycles": n,
//               "conserved": true, "units_leaked": 0}
//   }
//
// Integer fields are exact simulated cycles/counts; doubles are emitted
// with enough digits to round-trip. Additive fields may appear in later
// versions; consumers must key on "schema" and ignore unknown keys.
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runtime/batched_engine.hpp"
#include "runtime/deployment_spec.hpp"
#include "runtime/inference_session.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

using namespace distmcu;

namespace {

constexpr int kChips = 2;      // main comparison; invariance re-runs on 4
constexpr int kFp16Slots = 1;  // fp16 KV sets the shared pool is sized for
constexpr int kChunk = 4;      // prefill chunk tokens
constexpr int kJobs = 10;

/// Full-width TinyLlama blocks (layer count and vocabulary cut so the
/// functional numerics stay quick); 64-token context, 8-token prompts.
model::TransformerConfig llama_model() {
  auto cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.name = "tinyllama";
  cfg.num_layers = 4;
  cfg.vocab_size = 512;
  cfg.ar_context = 64;
  cfg.prompt_len = 8;
  cfg.validate();
  return cfg;
}

/// MobileBERT-style encoder (bidirectional, LayerNorm, no positional
/// rotation), cut to two layers; requests are prefill-only.
model::TransformerConfig bert_model() {
  auto cfg = model::TransformerConfig::mobile_bert();
  cfg.name = "mobilebert";
  cfg.num_layers = 2;
  cfg.ar_context = 64;
  cfg.prompt_len = 8;
  cfg.validate();
  return cfg;
}

std::vector<int> job_prompt() { return {11, 7, 3, 9, 2, 5, 13, 4}; }
int job_new_tokens(int i) { return 6 + (i * 3) % 7; }

runtime::DeploymentSpec llama_spec(runtime::Precision p, runtime::KvLayout l,
                                   int chips, bool flat_topology) {
  runtime::DeploymentSpec spec;
  spec.model = llama_model();
  spec.chips = chips;
  spec.precision = p;
  spec.kv_layout = l;
  spec.prefill_chunk_tokens = kChunk;
  spec.system.flat_topology = flat_topology;
  return spec;
}

struct ConfigResult {
  std::string config;
  runtime::Precision precision = runtime::Precision::fp16;
  runtime::KvLayout layout = runtime::KvLayout::native;
  int kv_elem_bits = 0;
  int kv_units = 0;
  Bytes pool_bytes = 0;
  runtime::ServingStats stats;
  double tokens_per_s = 0.0;
  double mj_per_token = 0.0;
  bool bit_exact = true;
  int units_leaked = 0;
  /// Token streams in job order, for the cross-config invariance checks.
  std::vector<std::vector<int>> streams;
};

/// Serve the burst on one single-tenant deployment registered through
/// DeploymentSpec; the registry is a local temporary, so the engine's
/// shared session ownership is exercised on every run.
ConfigResult run_config(const std::string& name, runtime::Precision p,
                        runtime::KvLayout l, int chips, int slots,
                        bool flat_topology, double freq_hz) {
  ConfigResult out;
  out.config = name;
  out.precision = p;
  out.layout = l;
  out.kv_units = slots;

  const runtime::DeploymentSpec spec = llama_spec(p, l, chips, flat_topology);
  // Dedicated single-request references: the served streams must match
  // these bit-exactly no matter how the batch interleaves.
  const runtime::InferenceSession solo(spec);
  std::vector<runtime::GenerationResult> refs;
  refs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    refs.push_back(solo.generate(job_prompt(), job_new_tokens(i)));
  }

  runtime::ModelRegistry reg;
  const runtime::ModelId m = reg.add(spec);
  runtime::BatchedEngine engine(reg, {.total_kv_slots = slots});
  out.kv_elem_bits = engine.model_kv_elem_bits(m);
  out.pool_bytes = engine.kv_slots().pool_bytes();

  std::vector<runtime::RequestId> ids;
  ids.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    ids.push_back(*engine.submit(
        {.model = m, .prompt = job_prompt(), .new_tokens = job_new_tokens(i)}));
  }
  const auto results = engine.run_to_completion();
  util::check(results.size() == static_cast<std::size_t>(kJobs),
              "not every job completed");
  out.streams.resize(static_cast<std::size_t>(kJobs));
  for (int i = 0; i < kJobs; ++i) {
    for (const auto& r : results) {
      if (r.id != ids[static_cast<std::size_t>(i)]) continue;
      out.streams[static_cast<std::size_t>(i)] = r.gen.tokens;
      if (r.gen.tokens != refs[static_cast<std::size_t>(i)].tokens) {
        out.bit_exact = false;
      }
    }
  }
  out.stats = engine.stats();
  out.tokens_per_s = out.stats.aggregate_tokens_per_s(freq_hz);
  out.mj_per_token = out.stats.mj_per_token();
  out.units_leaked = engine.kv_slots().in_use();
  return out;
}

struct MixedResult {
  runtime::ServingStats stats;
  bool conserved = true;
  bool bit_exact = true;
  int units_leaked = 0;
  int models = 0;
};

/// Mixed-precision registry: fp16 TinyLlama decoding next to an int8
/// MobileBERT encoder in ONE shared arena. The gate is exact
/// attribution — per-model tokens/cycles/energy partition the engine
/// totals — plus per-stream bit-exactness and a leak-free drain.
MixedResult run_mixed(double freq_hz) {
  (void)freq_hz;
  MixedResult out;
  runtime::DeploymentSpec llama =
      llama_spec(runtime::Precision::fp16, runtime::KvLayout::fp16, kChips,
                 /*flat_topology=*/false);
  runtime::DeploymentSpec bert;
  bert.model = bert_model();
  bert.chips = kChips;
  bert.precision = runtime::Precision::int8;
  bert.kv_layout = runtime::KvLayout::int8;

  const runtime::InferenceSession llama_solo(llama);
  const runtime::InferenceSession bert_solo(bert);

  runtime::ModelRegistry reg;
  const runtime::ModelId lm = reg.add(llama);
  const runtime::ModelId bm = reg.add(bert);
  // One resident set per tenant: the fp16 TinyLlama set alone costs 4x
  // the int8 MobileBERT set, and both must co-reside under the L2 roof.
  runtime::BatchedEngine engine(reg, {.total_kv_slots = 2});
  out.models = engine.model_count();

  constexpr int kEach = 4;
  std::vector<std::pair<runtime::RequestId, std::vector<int>>> expected;
  for (int i = 0; i < kEach; ++i) {
    const auto lid = *engine.submit({.model = lm,
                                     .prompt = job_prompt(),
                                     .new_tokens = job_new_tokens(i)});
    expected.emplace_back(
        lid, llama_solo.generate(job_prompt(), job_new_tokens(i)).tokens);
    const auto bid =
        *engine.submit({.model = bm, .prompt = job_prompt(), .new_tokens = 0});
    expected.emplace_back(bid,
                          bert_solo.generate(job_prompt(), 0).tokens);
  }
  const auto results = engine.run_to_completion();
  util::check(results.size() == expected.size(), "mixed burst did not drain");
  for (const auto& [id, toks] : expected) {
    for (const auto& r : results) {
      if (r.id == id && r.gen.tokens != toks) out.bit_exact = false;
    }
  }

  out.stats = engine.stats();
  int generated = 0;
  int completed = 0;
  Cycles cycles = 0;
  double energy = 0.0;
  for (const auto& pm : out.stats.per_model) {
    generated += pm.total_generated;
    completed += pm.completed;
    cycles += pm.attributed_cycles;
    energy += pm.attributed_energy_mj;
  }
  if (generated != out.stats.total_generated ||
      completed != out.stats.completed || cycles != out.stats.total_cycles) {
    out.conserved = false;
  }
  // Energy sums in doubles; attribution is exact up to summation order.
  if (std::fabs(energy - out.stats.total_energy_mj) >
      1e-9 * std::max(1.0, std::fabs(out.stats.total_energy_mj))) {
    out.conserved = false;
  }
  out.units_leaked = engine.kv_slots().in_use();
  return out;
}

void write_json(const std::string& path, double freq_hz,
                const std::vector<ConfigResult>& configs, double gain8,
                double gain4, bool chip_invariant, bool reduction_invariant,
                const MixedResult& mixed) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot open --json path " << path << "\n";
    std::exit(2);
  }
  os.precision(17);
  os << "{\n  \"schema\": \"distmcu.quant.v1\",\n"
     << "  \"freq_hz\": " << freq_hz << ",\n"
     << "  \"model\": {\"name\": \"tinyllama\", \"chips\": " << kChips
     << ", \"ar_context\": 64, \"prompt_len\": 8, \"chunk\": " << kChunk
     << "},\n"
     << "  \"jobs\": " << kJobs << ",\n"
     << "  \"kv_pool_bytes\": " << configs.front().pool_bytes
     << ",\n  \"configs\": [";
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const ConfigResult& r = configs[i];
    os << (i == 0 ? "" : ",") << "\n    {\"config\": \""
       << bench::json_escape(r.config) << "\""
       << ", \"precision\": \"" << runtime::precision_name(r.precision)
       << "\", \"kv_layout\": \"" << runtime::kv_layout_name(r.layout)
       << "\", \"kv_elem_bits\": " << r.kv_elem_bits
       << ", \"kv_units\": " << r.kv_units
       << ",\n     \"peak_batch\": " << r.stats.peak_batch
       << ", \"completed\": " << r.stats.completed
       << ", \"total_cycles\": " << r.stats.total_cycles
       << ", \"tokens_per_s\": " << r.tokens_per_s
       << ", \"mj_per_token\": " << r.mj_per_token
       << ",\n     \"bit_exact\": " << (r.bit_exact ? "true" : "false")
       << ", \"units_leaked\": " << r.units_leaked << "}";
  }
  os << "\n  ],\n  \"int8_capacity_gain_vs_fp16\": " << gain8
     << ",\n  \"int4_capacity_gain_vs_fp16\": " << gain4
     << ",\n  \"chip_invariant\": " << (chip_invariant ? "true" : "false")
     << ",\n  \"reduction_invariant\": "
     << (reduction_invariant ? "true" : "false") << ",\n  \"mixed\": {"
     << "\"models\": " << mixed.models
     << ", \"completed\": " << mixed.stats.completed
     << ", \"total_cycles\": " << mixed.stats.total_cycles
     << ", \"conserved\": " << (mixed.conserved ? "true" : "false")
     << ", \"units_leaked\": " << mixed.units_leaked << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  const double freq_hz = 500e6;

  std::cout << "Quantized serving envelope — " << kJobs
            << "-request burst through one KV pool sized for " << kFp16Slots
            << " fp16 full-context set(s), re-declared per precision via "
               "DeploymentSpec\n\n";

  // The capacity ladder: the SAME pool bytes hold 1 fp16 set, 2 int8
  // sets, or 4 int4 sets — precision multiplies concurrency.
  const std::vector<ConfigResult> configs = {
      run_config("fp16", runtime::Precision::fp16, runtime::KvLayout::fp16,
                 kChips, kFp16Slots, false, freq_hz),
      run_config("int8", runtime::Precision::int8, runtime::KvLayout::int8,
                 kChips, 2 * kFp16Slots, false, freq_hz),
      run_config("int8+kv4", runtime::Precision::int8, runtime::KvLayout::int4,
                 kChips, 4 * kFp16Slots, false, freq_hz),
  };
  const ConfigResult& fp16 = configs[0];
  const ConfigResult& int8 = configs[1];
  const ConfigResult& int4 = configs[2];

  // The whole comparison is at equal silicon: identical pool bytes.
  util::check(fp16.pool_bytes == int8.pool_bytes &&
                  int8.pool_bytes == int4.pool_bytes,
              "KV pools differ across configs; the comparison is void");

  // Re-shard the int8 deployment: 4 chips (deeper reduce tree) and a
  // flat 4-chip topology (different reduction order). The int32
  // all-reduce is exact, so the token streams must not move by one bit.
  const ConfigResult int8_c4 =
      run_config("int8@4chips", runtime::Precision::int8,
                 runtime::KvLayout::int8, 4, 2 * kFp16Slots, false, freq_hz);
  const ConfigResult int8_c4_flat =
      run_config("int8@4chips/flat", runtime::Precision::int8,
                 runtime::KvLayout::int8, 4, 2 * kFp16Slots, true, freq_hz);
  const bool chip_invariant = int8.streams == int8_c4.streams;
  const bool reduction_invariant = int8_c4.streams == int8_c4_flat.streams;

  const MixedResult mixed = run_mixed(freq_hz);

  util::Table table({"config", "kv_bits", "kv_units", "peak_batch",
                     "total_mcyc", "tokens_per_s", "mj_per_token",
                     "bit_exact"});
  for (const ConfigResult& r : configs) {
    table.row()
        .add(r.config)
        .add(r.kv_elem_bits)
        .add(r.kv_units)
        .add(r.stats.peak_batch)
        .add(static_cast<double>(r.stats.total_cycles) / 1e6, 2)
        .add(r.tokens_per_s, 1)
        .add(r.mj_per_token, 4)
        .add(r.bit_exact ? "yes" : "NO");
  }
  table.print(std::cout);

  const double gain8 = static_cast<double>(int8.stats.peak_batch) /
                       static_cast<double>(fp16.stats.peak_batch);
  const double gain4 = static_cast<double>(int4.stats.peak_batch) /
                       static_cast<double>(fp16.stats.peak_batch);
  std::cout << "\nsame " << fp16.pool_bytes
            << "-byte KV pool: int8 admits " << int8.stats.peak_batch
            << " concurrent requests where fp16 admits "
            << fp16.stats.peak_batch << " (" << gain8 << "x), int4 "
            << int4.stats.peak_batch << " (" << gain4
            << "x).\nint8 streams bit-identical across 2 vs 4 chips: "
            << (chip_invariant ? "yes" : "NO")
            << "; across reduction tree shapes: "
            << (reduction_invariant ? "yes" : "NO")
            << ".\nmixed fp16+int8 registry: " << mixed.stats.completed
            << " completed, attribution conserved: "
            << (mixed.conserved ? "yes" : "NO") << ".\n";

  // --- self-gate ---------------------------------------------------------
  bool ok = true;
  for (const ConfigResult& r : configs) {
    if (!r.bit_exact) {
      std::cout << "FAIL: " << r.config
                << " streams diverged from the dedicated engine\n";
      ok = false;
    }
    if (r.units_leaked != 0) {
      std::cout << "FAIL: " << r.config << " leaked " << r.units_leaked
                << " KV unit(s) after the drain\n";
      ok = false;
    }
    if (r.stats.completed != kJobs) {
      std::cout << "FAIL: " << r.config << " completed " << r.stats.completed
                << "/" << kJobs << "\n";
      ok = false;
    }
  }
  if (gain8 < 2.0) {
    std::cout << "FAIL: int8 capacity gain " << gain8
              << "x below 2x at equal KV bytes\n";
    ok = false;
  }
  if (gain4 < 4.0) {
    std::cout << "FAIL: int4 capacity gain " << gain4
              << "x below 4x at equal KV bytes\n";
    ok = false;
  }
  if (!chip_invariant) {
    std::cout << "FAIL: int8 streams changed with the chip count\n";
    ok = false;
  }
  if (!reduction_invariant) {
    std::cout << "FAIL: int8 streams changed with the reduction tree\n";
    ok = false;
  }
  if (!mixed.conserved || !mixed.bit_exact || mixed.units_leaked != 0) {
    std::cout << "FAIL: mixed-precision registry broke conservation "
                 "(conserved="
              << mixed.conserved << ", bit_exact=" << mixed.bit_exact
              << ", leaked=" << mixed.units_leaked << ")\n";
    ok = false;
  }

  std::cout << "\nCSV:\n";
  table.write_csv(std::cout);

  if (!json_path.empty()) {
    write_json(json_path, freq_hz, configs, gain8, gain4, chip_invariant,
               reduction_invariant, mixed);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return ok ? 0 : 1;
}
