#ifndef DISTMCU_TESTS_INVARIANT_ENV_HPP
#define DISTMCU_TESTS_INVARIANT_ENV_HPP

// Shared plumbing of the randomized invariant suites: the
// DISTMCU_INVARIANT_SEEDS seed-count override (the nightly CI job runs
// 1000) and the DISTMCU_REPRO_FILE failing-seed logger whose lines the
// nightly job uploads as an artifact.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>

namespace distmcu::testing {

/// Seed count of one randomized suite, overridable via the
/// DISTMCU_INVARIANT_SEEDS environment variable. The env value scales
/// the *reference* suite (120 seeds); every suite passes its own
/// default so the cheaper sweeps keep their relative weight —
/// DISTMCU_INVARIANT_SEEDS=1000 grows a 120-seed suite to 1000 and a
/// 12-seed suite to 100.
inline std::uint64_t invariant_seed_count(std::uint64_t fallback,
                                          std::uint64_t reference = 120) {
  const char* env = std::getenv("DISTMCU_INVARIANT_SEEDS");
  if (env == nullptr) return fallback;
  const unsigned long long v = std::strtoull(env, nullptr, 10);
  if (v == 0) return fallback;
  return std::max<std::uint64_t>(fallback, fallback * v / reference);
}

/// Per-seed failure logger: when a seeded scenario fails, append an
/// actionable repro line (environment assignments FIRST, then the
/// command, so it can be pasted into a shell verbatim) to the file
/// named by DISTMCU_REPRO_FILE. Detection compares the test's
/// failure-part count around each seed, so one bad seed in a thousand
/// is pinpointed without aborting the sweep.
class SeedReproLog {
 public:
  /// `binary` / `suite` name the repro command, e.g.
  /// ("./test_serving_invariants", "ServingInvariants.Randomized...").
  SeedReproLog(const char* binary, const char* suite)
      : binary_(binary), suite_(suite) {}

  /// Call before running a seed.
  void begin() { parts_before_ = failure_parts(); }

  /// Call after running a seed; logs when the seed added failures.
  void end(std::uint64_t seed) {
    if (failure_parts() == parts_before_) return;
    const char* path = std::getenv("DISTMCU_REPRO_FILE");
    if (path == nullptr) return;
    const char* seeds = std::getenv("DISTMCU_INVARIANT_SEEDS");
    std::ofstream os(path, std::ios::app);
    os << suite_ << ": failing seed " << seed << " — repro: ";
    if (seeds != nullptr) os << "DISTMCU_INVARIANT_SEEDS=" << seeds << " ";
    os << binary_ << " --gtest_filter=" << suite_ << "\n";
  }

 private:
  static int failure_parts() {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return info == nullptr ? 0 : info->result()->total_part_count();
  }

  const char* binary_;
  const char* suite_;
  int parts_before_ = 0;
};

}  // namespace distmcu::testing

#endif  // DISTMCU_TESTS_INVARIANT_ENV_HPP
