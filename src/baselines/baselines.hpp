#ifndef DISTMCU_BASELINES_BASELINES_HPP
#define DISTMCU_BASELINES_BASELINES_HPP

#include <string>

#include "model/config.hpp"
#include "runtime/timed_simulation.hpp"

namespace distmcu::baselines {

/// Common report for the comparison baselines of the paper's Table I.
struct BaselineReport {
  std::string name;
  int num_chips = 1;
  model::Mode mode = model::Mode::prompt;

  /// Latency of one Transformer block for a single request (the paper's
  /// unit). For the pipeline baseline this is the full-model latency
  /// divided by the layer count (stages do not help a single request).
  Cycles block_cycles = 0;
  double energy_mj = 0.0;

  /// How many copies of each weight exist across the system (1 = none).
  double weight_duplication = 1.0;
  /// Whether the scheme needs batch pipelining to reach its throughput.
  bool needs_pipelining = false;
  partition::Residency residency = partition::Residency::streamed;
};

/// Weight-replicated sequence parallelism in the style of "When the Edge
/// Meets Transformers" [21]: every chip holds the FULL block weights
/// (duplication factor = N) and processes a row-slice of the sequence.
/// Attention needs the full K/V context, so the chips all-gather their
/// K/V slices each block. In autoregressive mode (S = 1) there is
/// nothing to split: the scheme degenerates to single-chip execution.
///
/// Because weights are replicated, the per-chip working set never
/// shrinks: the residency regime is stuck at `streamed` for models that
/// exceed one chip's L2 — the paper's core argument against replication.
class ReplicatedSeqParallel {
 public:
  explicit ReplicatedSeqParallel(runtime::SystemConfig sys);

  [[nodiscard]] BaselineReport run(const model::TransformerConfig& cfg, int n_chips,
                                   model::Mode mode) const;

 private:
  runtime::SystemConfig sys_;
};

/// Pipeline parallelism in the style of PipeEdge [31] / Hermes [22]:
/// contiguous layer ranges per chip. Each stage holds FULL blocks, so a
/// block that exceeds L2 (TinyLlama: 6 MiB vs 2 MiB) is streamed no
/// matter how many chips are added — intra-block sharding is what the
/// paper's scheme adds. Single-request latency gains nothing from the
/// pipeline (stages are sequential for one token); throughput does, but
/// only with batch sizes wearables do not have (paper Sec. III-B).
class PipelineParallel {
 public:
  explicit PipelineParallel(runtime::SystemConfig sys);

  [[nodiscard]] BaselineReport run(const model::TransformerConfig& cfg, int n_chips,
                                   model::Mode mode) const;

  /// Steady-state pipelined throughput (blocks/s-equivalent period, in
  /// cycles per block) with an unbounded request batch — the regime
  /// PipeEdge/Hermes target.
  [[nodiscard]] Cycles pipelined_period_cycles(const model::TransformerConfig& cfg,
                                               int n_chips, model::Mode mode) const;

 private:
  runtime::SystemConfig sys_;
};

/// The paper's scheme, wrapped in the same report shape for the Table I
/// bench.
[[nodiscard]] BaselineReport run_tensor_parallel(const model::TransformerConfig& cfg,
                                                 int n_chips, model::Mode mode,
                                                 const runtime::SystemConfig& sys);

}  // namespace distmcu::baselines

#endif  // DISTMCU_BASELINES_BASELINES_HPP
