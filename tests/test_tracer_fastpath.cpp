// Tracer fast-path regression suite: a counters_only() tracer must
// aggregate at O(1) per record with ZERO Span materialization — no
// buffer ever allocates (capacity stays 0, not merely size) — while
// every totals query (per-chip/category occupancy, bytes, makespan,
// per-request and per-model attribution) stays exactly equal to a
// default buffered tracer fed the identical span stream. An engine-level
// cross-check runs the same serving workload under both modes and pins
// the aggregate equality end to end.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/batched_engine.hpp"
#include "runtime/inference_session.hpp"
#include "sim/tracer.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

using namespace distmcu;
using sim::Category;
using sim::Tracer;

namespace {

/// Feed both tracers one identical randomized span stream: mixed chips,
/// categories, request/model tags, and labels (the labels are what the
/// fast path must NOT copy).
void feed(Tracer& a, Tracer& b, std::uint64_t seed, int n_spans) {
  util::Rng rng(seed);
  Cycles t = 0;
  for (int i = 0; i < n_spans; ++i) {
    const int chip = static_cast<int>(rng.next_below(4));
    const auto cat = static_cast<Category>(rng.next_below(sim::kNumCategories));
    const Cycles begin = t + rng.next_below(50);
    const Cycles end = begin + 1 + rng.next_below(1000);
    const Bytes bytes = rng.next_below(4096);
    t = begin;
    const int request = static_cast<int>(rng.next_below(5)) - 1;  // -1..3
    const int model = static_cast<int>(rng.next_below(3)) - 1;    // -1..1
    const std::string label = "span-" + std::to_string(i);
    for (Tracer* tr : {&a, &b}) {
      tr->set_request(request);
      tr->set_model(model);
      tr->record(chip, cat, begin, end, bytes, label);
    }
  }
}

}  // namespace

TEST(TracerFastPath, CountersOnlyAllocatesNoSpans) {
  Tracer t = Tracer::counters_only();
  EXPECT_FALSE(t.buffering_spans());
  Tracer buffered;
  feed(t, buffered, /*seed=*/11, /*n_spans=*/500);
  // Zero allocations, not merely zero size: the span buffer never grew.
  EXPECT_TRUE(t.spans().empty());
  EXPECT_EQ(t.spans().capacity(), 0u);
  // Every record was still counted.
  EXPECT_EQ(t.recorded_spans(), 500u);
  EXPECT_EQ(buffered.spans().size(), 500u);
  EXPECT_EQ(buffered.recorded_spans(), 500u);
}

TEST(TracerFastPath, AggregatesMatchBufferedTracerExactly) {
  for (const std::uint64_t seed : {3u, 17u, 99u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Tracer fast = Tracer::counters_only();
    Tracer buffered;
    feed(fast, buffered, seed, /*n_spans=*/400);
    for (std::size_t c = 0; c < sim::kNumCategories; ++c) {
      const auto cat = static_cast<Category>(c);
      EXPECT_EQ(fast.total(cat), buffered.total(cat));
      EXPECT_EQ(fast.total_bytes(cat), buffered.total_bytes(cat));
      for (int chip = 0; chip < 4; ++chip) {
        EXPECT_EQ(fast.total(chip, cat), buffered.total(chip, cat));
      }
    }
    EXPECT_EQ(fast.makespan(), buffered.makespan());
    for (int request = -1; request < 4; ++request) {
      EXPECT_EQ(fast.total_for_request(request),
                buffered.total_for_request(request));
    }
    for (int model = -1; model < 2; ++model) {
      EXPECT_EQ(fast.total_for_model(model), buffered.total_for_model(model));
    }
  }
}

TEST(TracerFastPath, ClearResetsBothModes) {
  Tracer fast = Tracer::counters_only();
  Tracer buffered;
  feed(fast, buffered, /*seed=*/5, /*n_spans=*/50);
  fast.clear();
  buffered.clear();
  for (Tracer* t : {&fast, &buffered}) {
    EXPECT_EQ(t->recorded_spans(), 0u);
    EXPECT_EQ(t->makespan(), 0u);
    EXPECT_EQ(t->total(Category::compute), 0u);
    EXPECT_EQ(t->total_for_request(sim::kNoRequest), 0u);
    EXPECT_TRUE(t->spans().empty());
  }
  // Mode survives clear().
  EXPECT_FALSE(fast.buffering_spans());
  EXPECT_TRUE(buffered.buffering_spans());
}

TEST(TracerFastPath, ServedWorkloadAggregatesIdenticalAcrossModes) {
  // End-to-end: the batched engine drives both tracer modes through the
  // same deterministic workload; the fast path must reproduce every
  // occupancy aggregate the buffered tracer derives from its spans.
  auto cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.embed_dim = 32;
  cfg.ffn_dim = 64;
  cfg.num_heads = 4;
  cfg.head_dim = 8;
  cfg.num_layers = 2;
  cfg.vocab_size = 64;
  cfg.ar_context = 24;
  cfg.prompt_len = 6;
  cfg.validate();
  const runtime::InferenceSession session(cfg, 4);

  const auto run = [&](Tracer& tracer) {
    runtime::BatchedEngine engine(session,
                                  {.max_batch = 2, .max_pending = 8},
                                  &tracer);
    (void)*engine.submit({1, 2, 3}, 3, {.priority = 0});
    (void)*engine.submit({4, 5}, 2, {.priority = 1});
    (void)*engine.submit({6, 1, 2, 5}, 4,
                         {.priority = 0, .deadline_cycles = 2'000'000});
    (void)engine.run_to_completion();
    return engine.stats().total_cycles;
  };

  Tracer fast = Tracer::counters_only();
  Tracer buffered;
  EXPECT_EQ(run(fast), run(buffered));

  EXPECT_GT(buffered.spans().size(), 0u);
  EXPECT_EQ(fast.spans().capacity(), 0u);
  EXPECT_EQ(fast.recorded_spans(), buffered.spans().size());
  for (std::size_t c = 0; c < sim::kNumCategories; ++c) {
    const auto cat = static_cast<Category>(c);
    EXPECT_EQ(fast.total(cat), buffered.total(cat));
    EXPECT_EQ(fast.total_bytes(cat), buffered.total_bytes(cat));
  }
  EXPECT_EQ(fast.makespan(), buffered.makespan());
  for (int request = 0; request < 3; ++request) {
    EXPECT_EQ(fast.total_for_request(request),
              buffered.total_for_request(request));
  }
}
