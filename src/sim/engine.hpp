#ifndef DISTMCU_SIM_ENGINE_HPP
#define DISTMCU_SIM_ENGINE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/units.hpp"

namespace distmcu::sim {

/// Discrete-event simulation engine in the spirit of GVSoC: a single
/// monotonically advancing cycle counter plus an ordered event queue.
/// Events scheduled for the same cycle fire in scheduling order (FIFO via
/// a sequence number), which makes every simulation bit-reproducible.
///
/// The engine is deliberately minimal: higher layers (DMA engines, links,
/// chip clusters) are built from `Resource` objects and chained callbacks
/// rather than full processes/coroutines. One event per kernel / DMA
/// transfer / collective hop keeps 64-chip simulations instantaneous
/// while preserving the latency interleavings the paper measures.
class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time in cycles.
  [[nodiscard]] Cycles now() const { return now_; }

  /// Schedule `cb` to run at absolute cycle `at` (>= now()).
  void schedule_at(Cycles at, Callback cb);

  /// Schedule `cb` to run `delay` cycles from now.
  void schedule_in(Cycles delay, Callback cb) { schedule_at(now_ + delay, std::move(cb)); }

  /// Run until the event queue drains. Returns the final time.
  Cycles run();

  /// Run until simulated time reaches `deadline` (events at `deadline`
  /// still fire) or the queue drains, whichever comes first.
  Cycles run_until(Cycles deadline);

  /// Number of events executed since construction (for tests/stats).
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }

  /// True when no events are pending.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

 private:
  struct Event {
    Cycles at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void step();

  Cycles now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace distmcu::sim

#endif  // DISTMCU_SIM_ENGINE_HPP
