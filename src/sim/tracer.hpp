#ifndef DISTMCU_SIM_TRACER_HPP
#define DISTMCU_SIM_TRACER_HPP

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace distmcu::sim {

/// Activity categories matching the runtime-breakdown legend of the
/// paper's Fig. 4 — computation, off-chip DMA (L3<->L2), on-chip tile
/// DMA (L2<->L1), and the chip-to-chip link — plus a serving-side
/// scheduling lane (queue waits and deadline decisions of the batched
/// engine; never emitted by the block-level timed simulation).
enum class Category : std::uint8_t {
  compute = 0,
  dma_l3_l2 = 1,
  dma_l2_l1 = 2,
  chip_to_chip = 3,
  sched = 4,
};

inline constexpr std::size_t kNumCategories = 5;

[[nodiscard]] const char* category_name(Category c);

/// Request id attached to spans recorded while no serving request is
/// active (block-level simulation, shared work such as weight
/// prefetch for a whole batch).
inline constexpr int kNoRequest = -1;

/// Model id attached to spans recorded outside multi-model serving —
/// single-model engines and the block-level simulation leave every span
/// untagged, so their traces are unchanged.
inline constexpr int kNoModel = -1;

/// One traced activity interval on one chip.
struct Span {
  int chip = 0;
  Category category = Category::compute;
  Cycles begin = 0;
  Cycles end = 0;
  Bytes bytes = 0;
  std::string label;
  /// Serving request this span is attributed to (kNoRequest outside the
  /// batched engine). Stamped by the tracer's active tag at record time.
  int request = kNoRequest;
  /// Deployed model this span belongs to (kNoModel outside multi-model
  /// serving). Stamped by the tracer's active model tag at record time;
  /// drives the per-model lane grouping of the Chrome-trace export.
  int model = kNoModel;

  [[nodiscard]] Cycles duration() const { return end - begin; }
};

/// Records spans emitted by the timed simulation and aggregates them into
/// per-chip / per-category totals. Totals are *occupancy* sums; the
/// runtime report separately derives critical-path attribution (where
/// overlapped compute/DMA count once) — both views are kept because the
/// paper's stacked bars show attributed time while energy needs raw
/// occupancy and byte counts.
///
/// Aggregates are maintained incrementally at record time, so every
/// total()/makespan() query is O(1) regardless of span count. A
/// default-constructed tracer also buffers every Span (the "sink" the
/// Chrome-trace export and span-level tests consume); a counters_only()
/// tracer has no sink attached — record() keeps only the running
/// aggregates, materializes no Span (and so copies no label), and
/// spans() stays empty. Fleet-scale benches attach counters-only tracers
/// to thousands-of-requests runs at negligible cost.
class Tracer {
 public:
  Tracer() = default;

  /// A tracer with span buffering disabled: aggregates only, zero Span
  /// allocations. total(), total_bytes(), makespan(), total_for_request()
  /// and total_for_model() all stay exact.
  [[nodiscard]] static Tracer counters_only() {
    Tracer t;
    t.keep_spans_ = false;
    return t;
  }

  /// Whether a span sink is attached (false for counters_only()).
  [[nodiscard]] bool buffering_spans() const { return keep_spans_; }

  void record(const Span& span);
  void record(int chip, Category cat, Cycles begin, Cycles end, Bytes bytes,
              std::string_view label = {});

  /// Buffered spans; permanently empty on a counters-only tracer.
  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }

  /// Count of record() calls accepted (== spans().size() when buffering;
  /// still advances on a counters-only tracer, which is what the
  /// zero-allocation regression test pins).
  [[nodiscard]] std::size_t recorded_spans() const { return recorded_; }

  /// Sum of span durations for one chip/category.
  [[nodiscard]] Cycles total(int chip, Category cat) const;

  /// Sum of span durations for a category over all chips.
  [[nodiscard]] Cycles total(Category cat) const;

  /// Sum of bytes moved for a category over all chips.
  [[nodiscard]] Bytes total_bytes(Category cat) const;

  /// Latest end time over all spans (0 when empty).
  [[nodiscard]] Cycles makespan() const { return makespan_; }

  /// Tag every subsequently recorded span with a serving request id, so
  /// block-level spans emitted deep inside the timed simulation can be
  /// attributed to the request the batched engine ran them for. Reset
  /// with set_request(kNoRequest).
  void set_request(int request) { request_ = request; }
  [[nodiscard]] int current_request() const { return request_; }

  /// Tag every subsequently recorded span with a deployed-model id (the
  /// multi-model serving engine's per-model trace lanes). Reset with
  /// set_model(kNoModel).
  void set_model(int model) { model_ = model; }
  [[nodiscard]] int current_model() const { return model_; }

  /// Sum of span durations attributed to one request, over all chips
  /// and categories.
  [[nodiscard]] Cycles total_for_request(int request) const;

  /// Sum of span durations attributed to one model, over all chips and
  /// categories.
  [[nodiscard]] Cycles total_for_model(int model) const;

  void clear();

 private:
  void accumulate(int chip, Category cat, Cycles duration, Bytes bytes,
                  Cycles end, int request, int model);

  std::vector<Span> spans_;
  bool keep_spans_ = true;
  std::size_t recorded_ = 0;
  int request_ = kNoRequest;
  int model_ = kNoModel;
  /// Incremental aggregates: per-chip/category occupancy (indexed by
  /// chip id), per-category occupancy and bytes, latest span end, and
  /// per-request / per-model occupancy (kNoRequest / kNoModel key the
  /// untagged spans, matching the historical full-scan semantics).
  std::vector<std::array<Cycles, kNumCategories>> chip_totals_;
  std::array<Cycles, kNumCategories> cat_totals_{};
  std::array<Bytes, kNumCategories> cat_bytes_{};
  Cycles makespan_ = 0;
  std::unordered_map<int, Cycles> request_totals_;
  std::unordered_map<int, Cycles> model_totals_;
};

}  // namespace distmcu::sim

#endif  // DISTMCU_SIM_TRACER_HPP
