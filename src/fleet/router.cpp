#include "fleet/router.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace distmcu::fleet {

Cycles LinkModel::transfer_cycles(Bytes payload) const {
  DISTMCU_CHECK(cycles_per_byte >= 0.0,
                "LinkModel: cycles_per_byte must be >= 0");
  const auto serialize = static_cast<Cycles>(
      std::ceil(cycles_per_byte * static_cast<double>(payload)));
  return util::sat_add(latency_cycles, serialize);
}

Bytes LinkModel::request_bytes(int prompt_tokens) const {
  return util::sat_add(header_bytes,
                       bytes_per_token * static_cast<Bytes>(prompt_tokens));
}

Bytes LinkModel::response_bytes(int generated_tokens) const {
  return util::sat_add(header_bytes,
                       bytes_per_token * static_cast<Bytes>(generated_tokens));
}

Router::Router(std::shared_ptr<const RoutingPolicy> policy)
    : policy_(policy != nullptr
                  ? std::move(policy)
                  : make_routing_policy(RoutePolicy::round_robin)) {}

int Router::add_node(runtime::BatchedEngine& engine, LinkModel link,
                     std::string name) {
  const int index = static_cast<int>(nodes_.size());
  Node n;
  n.engine = &engine;
  n.link = link;
  n.name = name.empty() ? "node" + std::to_string(index) : std::move(name);
  for (runtime::ModelId m = 0; m < engine.model_count(); ++m) {
    const auto [it, inserted] = n.models.emplace(engine.model_name(m), m);
    DISTMCU_CHECK(inserted, "Router: node '" + n.name +
                                "' deploys model '" + it->first + "' twice");
  }
  nodes_.push_back(std::move(n));
  return index;
}

const std::string& Router::node_name(int node) const {
  DISTMCU_CHECK(node >= 0 && node < node_count(),
                "Router: unknown node index " + std::to_string(node));
  return nodes_[static_cast<std::size_t>(node)].name;
}

Cycles Router::node_now(const Node& n) const {
  return util::sat_add(n.offset, n.engine->stats().total_cycles);
}

void Router::advance(Node& n, Cycles target) {
  while (node_now(n) < target) {
    if (n.engine->active_requests() + n.engine->pending_requests() == 0) {
      // Idle gap: the engine clock only moves with work, so the offset
      // absorbs the wait until the next arrival.
      n.offset = target - n.engine->stats().total_cycles;
      break;
    }
    (void)n.engine->step();
    drain_completions(n);
    drain_shed(n);
  }
}

void Router::drain_completions(Node& n) {
  const auto& done = n.engine->finished();
  while (n.consumed_finished < done.size()) {
    const runtime::RequestResult& r = done[n.consumed_finished++];
    const auto it = n.in_flight.find(r.id);
    DISTMCU_CHECK(it != n.in_flight.end(),
                  "Router: node '" + n.name +
                      "' finished a request the router never placed");
    const InFlight f = it->second;
    n.in_flight.erase(it);

    // Completion processing happens after the very step that finished
    // the request, before any idle gap can bump the offset — so the
    // offset still holds the value it had while the request was in
    // flight.
    const Cycles node_finish = util::sat_add(n.offset, r.finished_at);
    const Cycles fleet_finish =
        util::sat_add(node_finish, f.response_link_cycles);

    n.outstanding_est = n.outstanding_est >= f.est_cost
                            ? n.outstanding_est - f.est_cost
                            : 0;
    ++n.completed;
    ++completed_;
    n.transfer_cycles =
        util::sat_add(n.transfer_cycles, f.response_link_cycles);
    response_transfer_cycles_ =
        util::sat_add(response_transfer_cycles_, f.response_link_cycles);
    transfer_bytes_ = util::sat_add(transfer_bytes_, f.response_bytes);
    if (f.deadline_at != runtime::kNoDeadline) {
      ++slo_requests_;
      if (fleet_finish > f.deadline_at) ++deadline_misses_;
    }
    makespan_ = std::max(makespan_, fleet_finish);

    FleetResult out;
    out.id = f.id;
    out.node = static_cast<int>(&n - nodes_.data());
    out.node_request = r.id;
    out.result = r;
    out.submitted_at = f.submitted_at;
    out.deadline_at = f.deadline_at;
    out.finished_at = fleet_finish;
    finished_.push_back(std::move(out));
  }
}

void Router::drain_shed(Node& n) {
  const auto& shed = n.engine->shed_ids();
  while (n.consumed_shed < shed.size()) {
    const runtime::RequestId id = shed[n.consumed_shed++];
    const auto it = n.in_flight.find(id);
    DISTMCU_CHECK(it != n.in_flight.end(),
                  "Router: node '" + n.name +
                      "' shed a request the router never placed");
    n.outstanding_est = n.outstanding_est >= it->second.est_cost
                            ? n.outstanding_est - it->second.est_cost
                            : 0;
    n.in_flight.erase(it);
    ++shed_;
  }
}

RoutingPolicy::NodeView Router::view_for(const Node& n, int index,
                                         const std::string& model,
                                         const std::vector<int>& prompt,
                                         int new_tokens) const {
  RoutingPolicy::NodeView v;
  v.node = index;
  v.queue_depth = n.engine->pending_requests() + n.engine->active_requests();
  v.active = n.engine->active_requests();
  v.backlog_cycles = n.outstanding_est;

  const auto it = n.models.find(model);
  if (it == n.models.end()) return v;  // ineligible: model not deployed
  const runtime::ModelId m = it->second;
  // Shape eligibility: a deployment whose static prefill shape or
  // context cannot take this request would throw at submit (a contract
  // violation, not a reject), so the router filters it out up front.
  const auto& cfg = n.engine->model_config(m);
  const int prompt_tokens = static_cast<int>(prompt.size());
  if (prompt_tokens < 1 || prompt_tokens > cfg.prompt_len ||
      prompt_tokens + new_tokens > cfg.ar_context) {
    return v;
  }
  if (n.engine->paged()) {
    // Same livelock guard as submit: the full sequence must fit the
    // tenant's page cap or admission would throw.
    const int pt = n.engine->page_tokens(m);
    const int max_rows = prompt_tokens + std::max(0, new_tokens - 1);
    const int pages = max_rows == 0 ? 0 : 1 + (max_rows - 1) / pt;
    if (pages > n.engine->model_kv_cap(m)) return v;
  }

  v.eligible = true;
  v.precision = n.engine->model_precision(m);
  v.kv_elem_bits = n.engine->model_kv_elem_bits(m);
  v.est_cost = n.engine->estimate_cost(m, prompt_tokens, new_tokens);
  v.prefix_match_tokens = n.engine->prefix_match_tokens(m, prompt);
  if (v.prefix_match_tokens > 0) {
    v.prefix_saved_cycles =
        n.engine->estimate_cost(m, v.prefix_match_tokens, 0);
  }
  v.link_cycles =
      util::sat_add(n.link.transfer_cycles(n.link.request_bytes(prompt_tokens)),
                    n.link.transfer_cycles(n.link.response_bytes(new_tokens)));
  return v;
}

std::optional<FleetRequestId> Router::submit(const std::string& model,
                                             const std::vector<int>& prompt,
                                             int new_tokens,
                                             runtime::SloSpec slo, Cycles at) {
  DISTMCU_CHECK(at >= last_submit_at_,
                "Router: submit times must be non-decreasing (got " +
                    std::to_string(at) + " after " +
                    std::to_string(last_submit_at_) + ")");
  DISTMCU_CHECK(!nodes_.empty(), "Router: no nodes registered");
  last_submit_at_ = at;
  ++offered_;
  const std::uint64_t seq = static_cast<std::uint64_t>(next_id_);

  // Advance the whole fleet to the arrival so the policy ranks a
  // coherent snapshot (same-time arrivals advance nothing — the batch
  // path of the event loop).
  for (Node& n : nodes_) advance(n, at);

  std::vector<RoutingPolicy::NodeView> views;
  views.reserve(nodes_.size());
  int eligible = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    views.push_back(view_for(nodes_[i], static_cast<int>(i), model, prompt,
                             new_tokens));
    eligible += views.back().eligible ? 1 : 0;
  }
  if (eligible == 0) {
    ++rejected_;
    ++rejected_no_model_;
    return std::nullopt;
  }

  const Cycles deadline_at =
      slo.deadline_cycles != runtime::kNoDeadline
          ? util::sat_add(at, slo.deadline_cycles)
          : runtime::kNoDeadline;

  while (eligible > 0) {
    const std::size_t pick = policy_->pick(views, seq);
    DISTMCU_CHECK(pick < views.size() && views[pick].eligible,
                  "Router: policy '" + std::string(policy_->name()) +
                      "' picked an ineligible node");
    Node& n = nodes_[pick];
    const runtime::ModelId m = n.models.at(model);

    ++routed_;
    ++n.attempts;

    // The request rides the node's link; dispatch charges the request
    // transfer whether or not the node accepts (a refusal still moved
    // the bytes).
    const Bytes req_bytes =
        n.link.request_bytes(static_cast<int>(prompt.size()));
    const Cycles req_link = n.link.transfer_cycles(req_bytes);
    n.transfer_cycles = util::sat_add(n.transfer_cycles, req_link);
    request_transfer_cycles_ =
        util::sat_add(request_transfer_cycles_, req_link);
    transfer_bytes_ = util::sat_add(transfer_bytes_, req_bytes);

    const Cycles arrival = util::sat_add(at, req_link);
    advance(n, arrival);
    const Cycles now = node_now(n);

    const Bytes resp_bytes = n.link.response_bytes(new_tokens);
    const Cycles resp_link = n.link.transfer_cycles(resp_bytes);

    // The node must finish early enough for the response transfer to
    // still make the fleet deadline; shrink the node-side deadline by
    // the return trip. A budget the link alone exhausts is refused
    // here, before the engine sees it.
    runtime::SloSpec node_slo{slo.priority, runtime::kNoDeadline};
    bool link_infeasible = false;
    if (deadline_at != runtime::kNoDeadline) {
      const Cycles reply_by =
          deadline_at > resp_link ? deadline_at - resp_link : 0;
      if (reply_by <= now) {
        link_infeasible = true;
      } else {
        node_slo.deadline_cycles = reply_by - now;
      }
    }

    std::optional<runtime::RequestId> placed;
    if (!link_infeasible) {
      placed = n.engine->submit({.model = m,
                                 .prompt = prompt,
                                 .new_tokens = new_tokens,
                                 .slo = node_slo});
    }
    if (!placed.has_value()) {
      ++misrouted_;
      if (link_infeasible) ++n.link_rejected;
      views[pick].eligible = false;
      --eligible;
      continue;
    }

    InFlight f;
    f.id = next_id_;
    f.submitted_at = at;
    f.deadline_at = deadline_at;
    f.est_cost = views[pick].est_cost;
    f.response_link_cycles = resp_link;
    f.response_bytes = resp_bytes;
    n.in_flight.emplace(*placed, f);
    n.outstanding_est = util::sat_add(n.outstanding_est, f.est_cost);
    ++n.placed;
    ++placed_;
    return next_id_++;
  }

  ++rejected_;
  ++rejected_all_nodes_;
  ++next_id_;  // a rejected request still consumed its fleet sequence
  return std::nullopt;
}

const std::vector<FleetResult>& Router::run_to_completion() {
  bool any = true;
  while (any) {
    any = false;
    for (Node& n : nodes_) {
      if (n.engine->active_requests() + n.engine->pending_requests() == 0) {
        continue;
      }
      any = true;
      (void)n.engine->step();
      drain_completions(n);
      drain_shed(n);
    }
  }
  return finished_;
}

FleetStats Router::stats() const {
  FleetStats s;
  s.offered = offered_;
  s.placed = placed_;
  s.rejected = rejected_;
  s.rejected_no_model = rejected_no_model_;
  s.rejected_all_nodes = rejected_all_nodes_;
  s.routed = routed_;
  s.misrouted = misrouted_;
  s.completed = completed_;
  s.shed = shed_;
  s.slo_requests = slo_requests_;
  s.deadline_misses = deadline_misses_;
  s.request_transfer_cycles = request_transfer_cycles_;
  s.response_transfer_cycles = response_transfer_cycles_;
  s.transfer_bytes = transfer_bytes_;
  s.makespan = makespan_;
  s.per_node.reserve(nodes_.size());
  for (const Node& n : nodes_) {
    FleetStats::Node out;
    out.name = n.name;
    out.attempts = n.attempts;
    out.placed = n.placed;
    out.link_rejected = n.link_rejected;
    out.completed = n.completed;
    out.transfer_cycles = n.transfer_cycles;
    out.serving = n.engine->stats();
    s.per_node.push_back(std::move(out));
  }
  return s;
}

}  // namespace distmcu::fleet
