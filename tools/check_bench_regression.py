#!/usr/bin/env python3
"""CI perf-regression gate for the serving bench.

Compares a fresh ``serving_throughput --json`` run against the
checked-in baseline (``bench/baselines/serving_baseline.json``,
schema ``distmcu.serving.v1``) and exits nonzero on regression:

* batch_sweep rows (matched by batch size): tokens_per_s must not drop
  more than ``--tolerance`` below baseline; total_cycles and
  mj_per_token must not grow more than ``--tolerance`` above it.
* chunk_sweep rows (matched by chunk size): total_cycles bound as above.
* slo_policies rows (matched by policy): deadline_misses must not
  exceed the baseline count (the workload is deterministic, so any
  increase is a scheduling regression), tokens_per_s and
  queue_delay_p95 are tolerance-bounded.
* cross-policy invariants of the mixed deadline workload: EDF must keep
  strictly fewer misses than FIFO at equal-or-better throughput.

The simulator is an analytic, integer-cycle model seeded
deterministically, so current and baseline numbers agree exactly when
the code is unchanged; the tolerance only absorbs intentional small
drifts (retuned constants) without letting real regressions through.
Regenerate the baseline with:

    ./build/serving_throughput --json bench/baselines/serving_baseline.json

Uses only the Python standard library.
"""

import argparse
import json
import sys

SCHEMA = "distmcu.serving.v1"


def fail(errors, msg):
    errors.append(msg)


def index_rows(rows, key):
    return {row[key]: row for row in rows}


def check_rows(errors, section, current, baseline, key, lower_is_better,
               higher_is_better, tol):
    cur = index_rows(current, key)
    base = index_rows(baseline, key)
    if set(cur) != set(base):
        fail(errors, f"{section}: row keys differ "
                     f"(current {sorted(cur)} vs baseline {sorted(base)})")
        return
    for k, brow in base.items():
        crow = cur[k]
        for field in higher_is_better:
            if crow[field] < brow[field] * (1.0 - tol):
                fail(errors,
                     f"{section}[{key}={k}].{field}: {crow[field]:.6g} fell "
                     f"more than {tol:.0%} below baseline {brow[field]:.6g}")
        for field in lower_is_better:
            if crow[field] > brow[field] * (1.0 + tol):
                fail(errors,
                     f"{section}[{key}={k}].{field}: {crow[field]:.6g} grew "
                     f"more than {tol:.0%} above baseline {brow[field]:.6g}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="BENCH_serving.json from this build")
    ap.add_argument("baseline", help="checked-in serving_baseline.json")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="relative drift allowed on cycle/throughput fields "
                         "(default 0.05)")
    args = ap.parse_args()

    with open(args.current) as f:
        current = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    errors = []
    for name, doc in (("current", current), ("baseline", baseline)):
        if doc.get("schema") != SCHEMA:
            fail(errors, f"{name}: schema {doc.get('schema')!r} != {SCHEMA!r}")
    if errors:
        print("\n".join(errors))
        return 1

    tol = args.tolerance
    check_rows(errors, "batch_sweep", current["batch_sweep"],
               baseline["batch_sweep"], "batch",
               lower_is_better=("total_cycles", "mj_per_token"),
               higher_is_better=("tokens_per_s",), tol=tol)
    check_rows(errors, "chunk_sweep", current["chunk_sweep"],
               baseline["chunk_sweep"], "chunk",
               lower_is_better=("total_cycles",),
               higher_is_better=("tokens_per_s",), tol=tol)
    check_rows(errors, "slo_policies", current["slo_policies"],
               baseline["slo_policies"], "policy",
               lower_is_better=("total_cycles", "queue_delay_p95"),
               higher_is_better=("tokens_per_s",), tol=tol)

    policies = index_rows(current["slo_policies"], "policy")
    base_policies = index_rows(baseline["slo_policies"], "policy")
    for name, row in policies.items():
        brow = base_policies.get(name)
        if brow is not None and row["deadline_misses"] > brow["deadline_misses"]:
            fail(errors,
                 f"slo_policies[{name}]: deadline_misses rose "
                 f"{brow['deadline_misses']} -> {row['deadline_misses']} on the "
                 f"deterministic workload")
    fifo, edf = policies.get("fifo"), policies.get("edf")
    if fifo is None or edf is None:
        fail(errors, "slo_policies: fifo/edf rows missing")
    else:
        if edf["deadline_misses"] >= fifo["deadline_misses"]:
            fail(errors,
                 f"invariant: EDF misses ({edf['deadline_misses']}) not below "
                 f"FIFO ({fifo['deadline_misses']})")
        if edf["tokens_per_s"] < fifo["tokens_per_s"] * (1.0 - 1e-9):
            fail(errors,
                 f"invariant: EDF throughput {edf['tokens_per_s']:.6g} below "
                 f"FIFO {fifo['tokens_per_s']:.6g}")

    if errors:
        print("PERF REGRESSION GATE FAILED:")
        print("\n".join(f"  - {e}" for e in errors))
        return 1
    print(f"perf gate OK: {args.current} within {tol:.0%} of {args.baseline} "
          f"(EDF {edf['deadline_misses']} vs FIFO {fifo['deadline_misses']} "
          f"misses)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
