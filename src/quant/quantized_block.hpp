#ifndef DISTMCU_QUANT_QUANTIZED_BLOCK_HPP
#define DISTMCU_QUANT_QUANTIZED_BLOCK_HPP

#include <cstdint>
#include <vector>

#include "model/config.hpp"
#include "model/kv_cache.hpp"
#include "model/tensor.hpp"
#include "model/weights.hpp"
#include "noc/topology.hpp"
#include "partition/distributed_block.hpp"
#include "partition/plan.hpp"
#include "partition/sharder.hpp"
#include "quant/quantize.hpp"

namespace distmcu::quant {

/// Whole-layer integer execution of the transformer block — the A8W8
/// deployment path the paper actually ships, generalized from the
/// FFN-only `QuantizedDistributedFfn` to the full serving block so an
/// int8 deployment can run end to end behind `runtime::BatchedEngine`.
///
/// Numerics are chosen so the per-request token stream is **bit-exact
/// for any chip count and any reduce-tree shape** (the property the
/// serving invariants pin):
///
///  * QKV projections, RoPE and per-head attention stay float. Each
///    head's computation touches only that head's weight columns and KV
///    slice, so regrouping heads onto different chips cannot change a
///    single value.
///  * The attention-output (WO) and both FFN GEMMs are real A8W8:
///    activations quantize with one *shared* dynamic scale derived from
///    a global absmax (grouping-invariant), weights carry one static
///    per-layer per-tensor scale over ALL shards, and the int32 partial
///    outputs all-reduce over the topology — int32 addition is exact,
///    so any tree shape and any chip partitioning sum to the same bits.
///  * The root dequantizes once, folds the skip connection in, and
///    normalizes in float (root values are chip-count invariant by
///    induction).
///
/// When constructed with `kv_bits` <= 8, appended K/V rows are
/// fake-quantized **per head sub-slice** before entering the cache
/// (scale = that head slice's absmax). Per-head scales are essential: a
/// chip's cache row concatenates its local heads, so a per-row scale
/// would mix heads and silently break chip-count invariance.
class QuantizedBlock {
 public:
  /// `kv_bits`: stored KV entry width; <= 8 enables the packed
  /// fake-quant append path (8 = int8 KV, 4 = int4 KV), larger widths
  /// store rows verbatim. Weights and plan/topo must agree on chips.
  QuantizedBlock(const model::TransformerConfig& cfg, const model::Weights& weights,
                 const partition::ShardedWeights& shards,
                 const partition::PartitionPlan& plan, const noc::Topology& topo,
                 int kv_bits);

  /// Drop-in replacement for `partition::DistributedBlock::forward`:
  /// run block `layer` over x [S, E], appending K/V into
  /// `chip_caches[chip][layer]` when non-null.
  [[nodiscard]] model::Tensor forward(
      const model::Tensor& x, int layer,
      std::vector<std::vector<model::KvCache>>* chip_caches, int pos_offset,
      partition::CommRecord* comm = nullptr) const;

  [[nodiscard]] int kv_bits() const { return kv_bits_; }

 private:
  struct LayerChipShard {
    std::vector<std::int8_t> wo;  // [pw, E] row slice
    std::vector<std::int8_t> w1;  // [E, fw] column slice
    std::vector<std::int8_t> w2;  // [fw, E] row slice
    int pw = 0;
    int fw = 0;
  };
  struct LayerQuant {
    // One static scale per tensor per layer, shared by every chip's
    // shard — what keeps int32 partials commensurable on the reduce
    // tree and the sums identical for every chip grouping.
    QuantParams wo_params;
    QuantParams w1_params;
    QuantParams w2_params;
    std::vector<LayerChipShard> chips;
  };

  [[nodiscard]] model::Tensor root_norm(const model::Tensor& x,
                                        const model::Tensor& gamma,
                                        const model::Tensor& beta) const;
  void apply_activation(std::vector<float>& t) const;
  /// Float Q/K/V + RoPE + per-head attention for one chip; returns the
  /// chip's context slice [S, pw]. Fake-quantizes appended KV rows.
  [[nodiscard]] model::Tensor attn_context(
      const model::Tensor& x, int chip, int layer,
      std::vector<std::vector<model::KvCache>>* caches, int pos_offset) const;
  [[nodiscard]] model::Tensor reduce_dequant_skip(
      std::vector<std::vector<std::int32_t>>& partials, float scale, int rows,
      const model::Tensor& skip, partition::CommRecord* comm) const;
  void broadcast(model::Tensor& t, partition::CommRecord* comm) const;

  // cfg/plan/topo owned by value (cheap; avoids the dangling-reference
  // trap the FFN path had). The weights and shards stay references:
  // they are the heavy float tensors owned by the enclosing
  // InferenceSession (norm gammas/betas and the float Q/K/V shards are
  // read from them on every forward), same lifetime discipline as
  // partition::DistributedBlock.
  model::TransformerConfig cfg_;
  const model::Weights& weights_;
  const partition::ShardedWeights& shards_;
  partition::PartitionPlan plan_;
  noc::Topology topo_;
  int kv_bits_ = 0;
  std::vector<LayerQuant> layers_;
};

}  // namespace distmcu::quant

#endif  // DISTMCU_QUANT_QUANTIZED_BLOCK_HPP
