#ifndef DISTMCU_RUNTIME_STEADY_STATE_HPP
#define DISTMCU_RUNTIME_STEADY_STATE_HPP

#include "partition/plan.hpp"
#include "runtime/timed_simulation.hpp"

namespace distmcu::runtime {

/// Result of simulating a full multi-block pass (all layers, one mode).
struct SteadyStateReport {
  int blocks = 0;
  Cycles total_cycles = 0;
  /// total / blocks — the sustained per-block latency.
  Cycles per_block_sustained = 0;
  /// The paper's reported single-block latency for comparison.
  Cycles per_block_isolated = 0;
  /// Cycles blocks spent waiting for their weights to arrive from L3.
  Cycles prefetch_stall_cycles = 0;
  partition::Residency residency = partition::Residency::streamed;
};

/// Event-driven simulation of all `num_layers` blocks back-to-back: in
/// the double-buffered regime each block's weight shard prefetch is an
/// asynchronous DMA racing the previous block's compute (the shared
/// runtime::PrefetchPipeline chain, which BatchedEngine reuses per
/// decode step) — exposing the gap between the paper's isolated
/// single-block latency and the sustained latency of a full forward
/// pass (ablation A2 in DESIGN.md).
class SteadyStateSimulation {
 public:
  explicit SteadyStateSimulation(SystemConfig sys);

  [[nodiscard]] SteadyStateReport run(const partition::PartitionPlan& plan,
                                      model::Mode mode) const;

 private:
  SystemConfig sys_;
};

}  // namespace distmcu::runtime

#endif  // DISTMCU_RUNTIME_STEADY_STATE_HPP
