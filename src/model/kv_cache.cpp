#include "model/kv_cache.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace distmcu::model {

KvCache::KvCache(int max_positions, int dim)
    : max_positions_(max_positions), dim_(dim), k_store_(max_positions, dim),
      v_store_(max_positions, dim) {
  DISTMCU_CHECK(max_positions > 0 && dim > 0, "KvCache: dimensions must be positive");
}

void KvCache::append(std::span<const float> k, std::span<const float> v) {
  DISTMCU_CHECK(length_ < max_positions_, "KvCache: capacity exceeded");
  DISTMCU_CHECK(k.size() == static_cast<std::size_t>(dim_) &&
                  v.size() == static_cast<std::size_t>(dim_),
              "KvCache: row size mismatch");
  std::copy(k.begin(), k.end(), k_store_.row(length_).begin());
  std::copy(v.begin(), v.end(), v_store_.row(length_).begin());
  ++length_;
}

std::span<const float> KvCache::k() const {
  return k_store_.span().subspan(0, static_cast<std::size_t>(length_) *
                                        static_cast<std::size_t>(dim_));
}

std::span<const float> KvCache::v() const {
  return v_store_.span().subspan(0, static_cast<std::size_t>(length_) *
                                        static_cast<std::size_t>(dim_));
}

Tensor KvCache::k_slice(int c0, int c1) const {
  DISTMCU_CHECK(length_ > 0, "KvCache::k_slice: cache is empty");
  return k_store_.slice_rows(0, length_).slice_cols(c0, c1);
}

Tensor KvCache::v_slice(int c0, int c1) const {
  DISTMCU_CHECK(length_ > 0, "KvCache::v_slice: cache is empty");
  return v_store_.slice_rows(0, length_).slice_cols(c0, c1);
}

void KvCache::copy_state_from(const KvCache& src) {
  DISTMCU_CHECK(src.max_positions_ == max_positions_ && src.dim_ == dim_,
              "KvCache::copy_state_from: shape mismatch");
  for (int p = 0; p < src.length_; ++p) {
    const auto k = src.k_store_.row(p);
    const auto v = src.v_store_.row(p);
    std::copy(k.begin(), k.end(), k_store_.row(p).begin());
    std::copy(v.begin(), v.end(), v_store_.row(p).begin());
  }
  length_ = src.length_;
}

void KvCache::copy_prefix_from(const KvCache& src, int positions) {
  DISTMCU_CHECK(src.max_positions_ == max_positions_ && src.dim_ == dim_,
              "KvCache::copy_prefix_from: shape mismatch");
  DISTMCU_CHECK(positions >= 0 && positions <= src.length_,
              "KvCache::copy_prefix_from: prefix exceeds source length");
  for (int p = 0; p < positions; ++p) {
    const auto k = src.k_store_.row(p);
    const auto v = src.v_store_.row(p);
    std::copy(k.begin(), k.end(), k_store_.row(p).begin());
    std::copy(v.begin(), v.end(), v_store_.row(p).begin());
  }
  length_ = positions;
}

KvCachePool::KvCachePool(int n_slots, const std::function<CacheSet()>& build_set) {
  DISTMCU_CHECK(n_slots > 0, "KvCachePool: slot count must be positive");
  slots_.reserve(static_cast<std::size_t>(n_slots));
  for (int i = 0; i < n_slots; ++i) slots_.push_back(build_set());
  DISTMCU_CHECK(!slots_.front().empty() && !slots_.front().front().empty(),
              "KvCachePool: builder produced an empty cache set");
  set_in_use_.assign(static_cast<std::size_t>(n_slots), false);
}

KvCachePool::CacheSet& KvCachePool::slot(int i) {
  DISTMCU_CHECK(i >= 0 && i < capacity(), "KvCachePool: slot index out of range");
  return slots_[static_cast<std::size_t>(i)];
}

void KvCachePool::reset_slot(int i) {
  for (auto& per_chip : slot(i)) {
    for (auto& cache : per_chip) cache.reset();
  }
}

void KvCachePool::restore_slot(int i, const CacheSet& snapshot) {
  CacheSet& dst = slot(i);
  DISTMCU_CHECK(snapshot.size() == dst.size(),
              "KvCachePool::restore_slot: chip-count mismatch");
  for (std::size_t chip = 0; chip < dst.size(); ++chip) {
    DISTMCU_CHECK(snapshot[chip].size() == dst[chip].size(),
                "KvCachePool::restore_slot: layer-count mismatch");
    for (std::size_t l = 0; l < dst[chip].size(); ++l) {
      dst[chip][l].copy_state_from(snapshot[chip][l]);
    }
  }
}

void KvCachePool::restore_prefix(int i, const CacheSet& snapshot,
                                 int positions) {
  CacheSet& dst = slot(i);
  DISTMCU_CHECK(snapshot.size() == dst.size(),
              "KvCachePool::restore_prefix: chip-count mismatch");
  for (std::size_t chip = 0; chip < dst.size(); ++chip) {
    DISTMCU_CHECK(snapshot[chip].size() == dst[chip].size(),
                "KvCachePool::restore_prefix: layer-count mismatch");
    for (std::size_t l = 0; l < dst[chip].size(); ++l) {
      dst[chip][l].copy_prefix_from(snapshot[chip][l], positions);
    }
  }
}

Bytes KvCachePool::set_filled_bytes(int i, Bytes elem_bytes) {
  Bytes sum = 0;
  for (const auto& per_chip : slot(i)) {
    for (const auto& cache : per_chip) sum += cache.filled_bytes(elem_bytes);
  }
  return sum;
}

Bytes KvCachePool::set_filled_packed_bytes(int i, int elem_bits) {
  Bytes sum = 0;
  for (const auto& per_chip : slot(i)) {
    for (const auto& cache : per_chip) {
      sum += cache.filled_packed_bytes(elem_bits);
    }
  }
  return sum;
}

std::optional<int> KvCachePool::acquire_set() {
  for (std::size_t i = 0; i < set_in_use_.size(); ++i) {
    if (!set_in_use_[i]) {
      set_in_use_[i] = true;
      ++sets_in_use_;
      return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

void KvCachePool::release_set(int i) {
  DISTMCU_CHECK(i >= 0 && i < capacity(),
              "KvCachePool: release of out-of-range set");
  DISTMCU_CHECK(set_in_use_[static_cast<std::size_t>(i)],
              "KvCachePool: double release of set " + std::to_string(i));
  set_in_use_[static_cast<std::size_t>(i)] = false;
  --sets_in_use_;
}

Bytes KvCachePool::set_capacity_bytes(Bytes elem_bytes) const {
  Bytes sum = 0;
  for (const auto& per_chip : slots_.front()) {
    for (const auto& cache : per_chip) sum += cache.capacity_bytes(elem_bytes);
  }
  return sum;
}

Bytes KvCachePool::set_capacity_packed_bytes(int elem_bits) const {
  Bytes sum = 0;
  for (const auto& per_chip : slots_.front()) {
    for (const auto& cache : per_chip) {
      sum += cache.capacity_packed_bytes(elem_bits);
    }
  }
  return sum;
}

}  // namespace distmcu::model
