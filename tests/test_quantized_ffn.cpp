// Tests for the int8 distributed FFN: accuracy against the float
// reference, and the deployment-critical property that int32 partial-sum
// reduction is bit-exact for every topology and chip count (float
// reductions drift with tree shape; integers do not).
#include <gtest/gtest.h>

#include <cmath>

#include "kernels/gemm.hpp"
#include "kernels/ops.hpp"
#include "model/weights.hpp"
#include "noc/topology.hpp"
#include "partition/plan.hpp"
#include "partition/sharder.hpp"
#include "quant/quantized_ffn.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

using namespace distmcu;
using model::Tensor;
using model::TransformerConfig;
using model::Weights;
using quant::QuantizedDistributedFfn;

namespace {

TransformerConfig ffn_config() {
  TransformerConfig cfg = TransformerConfig::tiny_llama_42m();
  cfg.embed_dim = 64;
  cfg.ffn_dim = 128;
  cfg.num_heads = 8;
  cfg.head_dim = 8;
  cfg.num_layers = 1;
  cfg.prompt_len = 4;
  cfg.act = model::Activation::relu;  // quantization-friendly
  cfg.validate();
  return cfg;
}

/// Float reference of the FFN sublayer (no skip/norm).
Tensor float_ffn(const TransformerConfig& cfg, const Weights& w, const Tensor& x) {
  Tensor hidden(x.rows(), cfg.ffn_dim);
  kernels::gemm(x.span(), w.layer(0).w1.span(), hidden.span(), x.rows(), cfg.ffn_dim,
                cfg.embed_dim);
  kernels::relu(hidden.span());
  Tensor out(x.rows(), cfg.embed_dim);
  kernels::gemm(hidden.span(), w.layer(0).w2.span(), out.span(), x.rows(),
                cfg.embed_dim, cfg.ffn_dim);
  return out;
}

Tensor random_input(const TransformerConfig& cfg, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor x(cfg.prompt_len, cfg.embed_dim);
  x.random_init(rng, 1.0f);
  return x;
}

}  // namespace

class QuantFfnAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(QuantFfnAccuracy, CloseToFloatReference) {
  const int n = GetParam();
  const auto cfg = ffn_config();
  const Weights w(cfg, 42);
  const auto plan = partition::PartitionPlan::create(cfg, n);
  const partition::ShardedWeights shards(w, plan);
  const auto topo = noc::Topology::hierarchical(n, 4);
  const QuantizedDistributedFfn qffn(cfg, shards, plan, topo);

  const Tensor x = random_input(cfg, 5);
  const Tensor y_q = qffn.forward(x);
  const Tensor y_f = float_ffn(cfg, w, x);

  // Relative accuracy: int8 with dynamic activation scales should stay
  // within a few percent of the float output range.
  float range = 0.0f;
  for (const float v : y_f.span()) range = std::max(range, std::fabs(v));
  EXPECT_LE(Tensor::max_abs_diff(y_q, y_f), 0.05f * range) << "chips=" << n;
}

INSTANTIATE_TEST_SUITE_P(ChipCounts, QuantFfnAccuracy, ::testing::Values(1, 2, 4, 8));

TEST(QuantFfn, BitExactAcrossTopologies) {
  // The int32 reduce makes the distributed result independent of tree
  // shape AND chip count-induced reduction order, bit for bit — the
  // property float partials cannot offer.
  const auto cfg = ffn_config();
  const Weights w(cfg, 7);
  const Tensor x = random_input(cfg, 9);

  const auto plan = partition::PartitionPlan::create(cfg, 8);
  const partition::ShardedWeights shards(w, plan);

  std::vector<std::vector<std::int32_t>> raws;
  for (const auto& topo : {noc::Topology::hierarchical(8, 4),
                           noc::Topology::hierarchical(8, 2), noc::Topology::flat(8)}) {
    const QuantizedDistributedFfn qffn(cfg, shards, plan, topo);
    float scale = 0.0f;
    raws.push_back(qffn.forward_raw(x, &scale));
    EXPECT_GT(scale, 0.0f);
  }
  EXPECT_EQ(raws[0], raws[1]);
  EXPECT_EQ(raws[0], raws[2]);
}

TEST(QuantFfn, SingleChipMatchesMultiChipBits) {
  // Zero-duplication sharding + int32 accumulation: the 8-chip partial
  // sums must reproduce the 1-chip accumulator exactly (same products,
  // different order only).
  const auto cfg = ffn_config();
  const Weights w(cfg, 11);
  const Tensor x = random_input(cfg, 13);

  auto run = [&](int n) {
    const auto plan = partition::PartitionPlan::create(cfg, n);
    const partition::ShardedWeights shards(w, plan);
    const auto topo = noc::Topology::hierarchical(n, 4);
    const QuantizedDistributedFfn qffn(cfg, shards, plan, topo);
    float scale = 0.0f;
    return qffn.forward_raw(x, &scale);
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(QuantFfn, RejectsSwiglu) {
  auto cfg = ffn_config();
  cfg.ffn = model::FfnKind::swiglu;
  const Weights w(cfg, 1);
  const auto plan = partition::PartitionPlan::create(cfg, 2);
  const partition::ShardedWeights shards(w, plan);
  const auto topo = noc::Topology::hierarchical(2, 4);
  EXPECT_THROW(QuantizedDistributedFfn(cfg, shards, plan, topo), Error);
}
