#ifndef DISTMCU_MODEL_TENSOR_HPP
#define DISTMCU_MODEL_TENSOR_HPP

#include <span>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace distmcu::model {

/// Owning row-major 2-D float tensor. Deliberately minimal: the library
/// only needs matrices (and vectors as 1-row matrices); head dimensions
/// are expressed as column slices, matching how the partitioner splits
/// weights. Element type is float on the host — quantized execution is a
/// separate code path in distmcu::quant.
class Tensor {
 public:
  Tensor() = default;
  Tensor(int rows, int cols);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] Bytes bytes(Bytes elem_bytes = 4) const { return size() * elem_bytes; }

  [[nodiscard]] float& at(int r, int c);
  [[nodiscard]] float at(int r, int c) const;

  [[nodiscard]] std::span<float> span() { return data_; }
  [[nodiscard]] std::span<const float> span() const { return data_; }
  [[nodiscard]] std::span<float> row(int r);
  [[nodiscard]] std::span<const float> row(int r) const;

  void fill(float value);

  /// Deterministic init: uniform in [-scale, scale).
  void random_init(util::Rng& rng, float scale);

  /// Copy of columns [c0, c1) — how weight shards are materialized.
  [[nodiscard]] Tensor slice_cols(int c0, int c1) const;

  /// Copy of rows [r0, r1).
  [[nodiscard]] Tensor slice_rows(int r0, int r1) const;

  /// max_i |a_i - b_i| over two same-shaped tensors.
  [[nodiscard]] static float max_abs_diff(const Tensor& a, const Tensor& b);

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

}  // namespace distmcu::model

#endif  // DISTMCU_MODEL_TENSOR_HPP
