// MobileBERT-style encoder inference on 4 chips (the paper's Fig. 4c /
// 5c configuration): runs the full 24-layer encoder over a 268-token
// sequence, prints per-block and whole-model latency/energy, and
// validates the distributed hidden states against the single-chip
// reference.
//
//   ./examples/mobilebert_encoder [num_chips]
#include <cstdlib>
#include <iostream>

#include "model/embedding.hpp"
#include "model/reference_model.hpp"
#include "runtime/inference_session.hpp"

using namespace distmcu;

int main(int argc, char** argv) {
  const int n_chips = argc > 1 ? std::atoi(argv[1]) : 4;

  auto cfg = model::TransformerConfig::mobile_bert();
  // Keep the host-side functional check quick: 4 encoder layers exercise
  // the same per-block behaviour; the timed model below still reports
  // the paper's per-block numbers (independent of layer count).
  cfg.num_layers = 4;

  const std::uint64_t seed = 7;
  const runtime::InferenceSession session(cfg, n_chips,
                                          runtime::SystemConfig::siracusa_system(), seed);

  // Synthetic token ids standing in for a tokenized input window.
  std::vector<int> tokens(static_cast<std::size_t>(cfg.prompt_len));
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    tokens[i] = static_cast<int>((i * 37 + 11) % static_cast<std::size_t>(cfg.vocab_size));
  }

  const auto block = session.run_block(model::Mode::prompt);
  const double freq = session.system().chip.freq_hz;
  std::cout << "MobileBERT block on " << n_chips << " chips ("
            << partition::residency_name(block.report.residency) << ")\n"
            << "  block latency: " << block.latency_ms(freq) << " ms, energy "
            << block.energy_mj() << " mJ\n"
            << "  full 24-layer encoder: " << 24.0 * block.latency_ms(freq)
            << " ms, " << 24.0 * block.energy_mj() << " mJ\n";

  std::cout << "running functional encoder forward (" << cfg.num_layers
            << " layers, S=" << cfg.prompt_len << ")...\n";
  const model::Tensor h = session.encode(tokens);

  // Mean-pooled sentence embedding — what a classification head would eat.
  double pooled = 0.0;
  for (int c = 0; c < h.cols(); ++c) pooled += h.at(0, c);
  std::cout << "  [CLS]-row checksum: " << pooled << "\n";

  const model::Weights w(cfg, seed);
  const model::Embedding emb(cfg, seed);
  const model::ReferenceModel ref(cfg, w);
  const model::Tensor h_ref = ref.forward_prompt(emb.lookup(tokens));
  const float diff = model::Tensor::max_abs_diff(h, h_ref);
  std::cout << "  max |distributed - reference| = " << diff << '\n'
            << (diff < 5e-3f ? "self-check PASS\n" : "self-check FAIL\n");
  return diff < 5e-3f ? 0 : 1;
}
