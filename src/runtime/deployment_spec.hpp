#ifndef DISTMCU_RUNTIME_DEPLOYMENT_SPEC_HPP
#define DISTMCU_RUNTIME_DEPLOYMENT_SPEC_HPP

// DeploymentSpec: the single way to declare a servable tenant. One
// aggregate replaces the growing positional (model, chip-count, chunk,
// quota, ...) tuple that ModelRegistry::add used to take, and carries
// the two per-deployment precision knobs end to end — the arithmetic
// Precision the block program runs at and the packed KvLayout its KV
// pages are accounted (and, for int8 blocks, actually stored) in.

#include <cstdint>
#include <string>

#include "model/config.hpp"
#include "runtime/precision.hpp"
#include "runtime/timed_simulation.hpp"
#include "util/check.hpp"

namespace distmcu::runtime {

/// Everything needed to stand up one deployed tenant. Designated
/// initializers are the intended surface:
///
///   registry.add({.model = model::TransformerConfig::tiny_llama_42m(),
///                 .chips = 4,
///                 .precision = runtime::Precision::int8,
///                 .kv_layout = runtime::KvLayout::int8,
///                 .prefill_chunk_tokens = 4});
///
/// The registry builds and OWNS the InferenceSession a spec describes
/// (shared_ptr lifetime — no dangling session references), so callers
/// never juggle session objects next to registration arguments.
struct DeploymentSpec {
  model::TransformerConfig model;
  int chips = 1;
  /// Arithmetic precision of the block program; int8 routes the FFN and
  /// attention-output GEMMs through quant::int_kernels with int32
  /// all-reduce partials and prices the cost model at int8 rates.
  Precision precision = Precision::fp16;
  /// KV-entry storage layout; packed int8/int4 require an int8 block
  /// (the float block has no quantized append path to honor them).
  KvLayout kv_layout = KvLayout::native;
  /// Prefill mode: 0 = serial whole-prompt at admission; > 0 = chunked
  /// prefill co-scheduled with decode in chunks of this many tokens.
  int prefill_chunk_tokens = 0;
  /// Registry name; empty uses model.name.
  std::string name;
  /// Shared-KV-arena knobs (same semantics as the legacy add()).
  int kv_quota = 0;
  int max_resident = 0;
  /// Platform the deployment runs on, and the weight-init seed (specs
  /// with equal model/chips/system/seed build bit-identical sessions).
  SystemConfig system = SystemConfig::siracusa_system();
  std::uint64_t seed = 42;

  /// Effective registry name.
  [[nodiscard]] const std::string& deployment_name() const {
    return name.empty() ? model.name : name;
  }

  /// Throws distmcu::Error on an inconsistent spec. The precision rules
  /// mirror what the quantized block can actually honor: packed KV
  /// layouts need the int8 append path, and the int8 FFN decomposition
  /// is defined for the classic two-matrix MLP only.
  void validate() const {
    model.validate();
    DISTMCU_CHECK(chips >= 1, "DeploymentSpec: chips must be >= 1");
    DISTMCU_CHECK(prefill_chunk_tokens >= 0,
                  "DeploymentSpec: prefill_chunk_tokens must be >= 0");
    DISTMCU_CHECK(kv_quota >= 0 && max_resident >= 0,
                  "DeploymentSpec: kv_quota/max_resident must be >= 0");
    if (precision == Precision::fp16) {
      DISTMCU_CHECK(
          kv_layout != KvLayout::int8 && kv_layout != KvLayout::int4,
          "DeploymentSpec: packed int8/int4 KV layouts require an int8 "
          "deployment (the float block stores float KV rows)");
    } else {
      DISTMCU_CHECK(model.ffn == model::FfnKind::mlp,
                    "DeploymentSpec: int8 precision supports the classic "
                    "MLP FFN only (SwiGLU has no quantized decomposition)");
    }
  }
};

}  // namespace distmcu::runtime

#endif  // DISTMCU_RUNTIME_DEPLOYMENT_SPEC_HPP
