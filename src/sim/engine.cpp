#include "sim/engine.hpp"

#include "util/check.hpp"

namespace distmcu::sim {

void Engine::schedule_at(Cycles at, Callback cb) {
  DISTMCU_CHECK(at >= now_, "Engine::schedule_at in the past");
  queue_.push(Event{at, next_seq_++, std::move(cb)});
}

void Engine::step() {
  // Move the event out before firing: the callback may schedule new
  // events, which mutates the queue.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ++events_executed_;
  ev.cb();
}

Cycles Engine::run() {
  while (!queue_.empty()) step();
  return now_;
}

Cycles Engine::run_until(Cycles deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) step();
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace distmcu::sim
