#ifndef DISTMCU_MEM_ARENA_HPP
#define DISTMCU_MEM_ARENA_HPP

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "mem/memory_level.hpp"
#include "util/units.hpp"

namespace distmcu::mem {

/// One named allocation inside an arena. Offsets are byte offsets from
/// the arena base; the planner uses them only for fit accounting and
/// human-readable memory maps, never for host pointers.
struct Allocation {
  std::string name;
  Bytes offset = 0;
  Bytes size = 0;
};

/// Bump allocator over a fixed-capacity memory tier, in the style of the
/// static memory planners used by TinyML deployment flows (Deeploy/TVM):
/// allocations are named, aligned, never freed individually, and the high
/// -water mark decides whether a deployment plan fits. `try_allocate`
/// reports failure instead of throwing so the memory planner can probe
/// residency regimes cheaply.
class Arena {
 public:
  static constexpr Bytes kDefaultAlignment = 8;

  /// Round `size` up to a multiple of `alignment` (power of two) — the
  /// padding every allocation in an arena with that alignment consumes,
  /// exposed so callers can size an arena to fit N allocations exactly.
  /// Saturates at the largest aligned Bytes value: a `size` within
  /// `alignment - 1` of the Bytes max must not wrap to a tiny request
  /// that then "fits" anywhere.
  [[nodiscard]] static constexpr Bytes align_up(Bytes size, Bytes alignment) {
    const Bytes mask = alignment - 1;
    if (size > std::numeric_limits<Bytes>::max() - mask) {
      return std::numeric_limits<Bytes>::max() & ~mask;
    }
    return (size + mask) & ~mask;  // guarded above; lint-domain: allow
  }

  Arena(std::string name, Bytes capacity, Bytes alignment = kDefaultAlignment);

  /// Attempt an allocation; returns false (and leaves the arena
  /// unchanged) when it would exceed capacity.
  [[nodiscard]] bool try_allocate(const std::string& name, Bytes size);

  /// Allocation that throws PlanError on failure.
  Allocation allocate(const std::string& name, Bytes size);

  /// Release everything (new block / new plan probe).
  void reset();

  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] Bytes used() const { return used_; }
  [[nodiscard]] Bytes remaining() const { return capacity_ - used_; }
  [[nodiscard]] Bytes high_water() const { return high_water_; }
  [[nodiscard]] const std::vector<Allocation>& allocations() const { return allocations_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Multi-line human-readable memory map (used by partition_inspector).
  [[nodiscard]] std::string memory_map() const;

 private:
  [[nodiscard]] Bytes aligned(Bytes size) const;

  std::string name_;
  Bytes capacity_;
  Bytes alignment_;
  Bytes used_ = 0;
  Bytes high_water_ = 0;
  std::vector<Allocation> allocations_;
};

/// Fixed-count, fixed-size slot pool carved out of an Arena — the shape
/// multi-request serving needs: the bump arena reserves the whole pool
/// up front (so the fit accounting stays a single high-water number),
/// while slots are acquired and released per request. Acquisition is
/// lowest-free-index, so slot assignment is deterministic and
/// independent of release order history length.
///
/// Slots carry a *tenant* tag for multi-model serving: every acquisition
/// names the tenant (model) the slot is charged to, the arena keeps
/// per-tenant occupancy and high-water counters, and a release checks the
/// slot back against its recorded owner — a slot charged to one tenant
/// can never be silently returned by (or migrated to) another. The
/// single-tenant default (tenant 0) preserves the historical behavior.
class SlotArena {
 public:
  /// Reserves `n_slots * slot_bytes` from `arena` immediately (throws
  /// PlanError via the arena when the pool does not fit).
  SlotArena(Arena& arena, const std::string& name, int n_slots, Bytes slot_bytes);

  /// Lowest free slot index charged to `tenant`, or nullopt when the
  /// pool is exhausted — callers reject or queue, never overrun.
  [[nodiscard]] std::optional<int> acquire(int tenant = 0);

  /// Return a previously acquired slot to the pool. Throws on a slot the
  /// caller does not hold.
  void release(int slot);

  /// Like release, but additionally checks the slot is owned by
  /// `tenant` — the serving engine's cross-tenant leak guard.
  void release(int slot, int tenant);

  /// Owner-checked release that additionally counts the slot as
  /// *reclaimed* from `tenant` — the preemptive-eviction path, where a
  /// slot is taken back mid-request rather than returned at completion.
  /// Watermark borrows reclaim against the borrowing tenant (the slot's
  /// recorded owner), so cross-model repayments are visible per tenant.
  void reclaim(int slot, int tenant);

  [[nodiscard]] int capacity() const { return static_cast<int>(owner_.size()); }
  [[nodiscard]] int in_use() const { return n_in_use_; }
  [[nodiscard]] int free() const { return capacity() - n_in_use_; }
  [[nodiscard]] Bytes slot_bytes() const { return slot_bytes_; }
  [[nodiscard]] Bytes pool_bytes() const {
    return static_cast<Bytes>(capacity()) * slot_bytes_;
  }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Tenant currently holding `slot` (kFreeSlot when unheld).
  static constexpr int kFreeSlot = -1;
  [[nodiscard]] int owner(int slot) const;
  /// Slots currently charged to `tenant` (0 for tenants never seen).
  [[nodiscard]] int tenant_in_use(int tenant) const;
  /// Most slots `tenant` ever held at once.
  [[nodiscard]] int tenant_high_water(int tenant) const;
  /// Slots reclaimed (preemptively released) from `tenant` so far.
  [[nodiscard]] int tenant_reclaimed(int tenant) const;
  /// Reclaimed slots across all tenants.
  [[nodiscard]] int total_reclaimed() const { return total_reclaimed_; }

 private:
  std::string name_;
  Bytes slot_bytes_;
  std::vector<int> owner_;  // kFreeSlot, or the holding tenant
  int n_in_use_ = 0;
  std::vector<int> tenant_in_use_;     // indexed by tenant, grown on demand
  std::vector<int> tenant_high_water_;
  std::vector<int> tenant_reclaimed_;
  int total_reclaimed_ = 0;
};

}  // namespace distmcu::mem

#endif  // DISTMCU_MEM_ARENA_HPP
