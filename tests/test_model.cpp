// Tests for the model layer: config presets (paper Sec. V-A), weight
// accounting, KV cache, and the reference Transformer — including the
// strongest functional invariant: autoregressive decoding with a KV
// cache must reproduce prompt-mode outputs row by row.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "model/config.hpp"
#include "model/kv_cache.hpp"
#include "model/reference_model.hpp"
#include "model/tensor.hpp"
#include "model/weights.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

using namespace distmcu;
using model::KvCache;
using model::ReferenceModel;
using model::Tensor;
using model::TransformerConfig;
using model::Weights;

namespace {

/// A reduced configuration so reference-model tests run in milliseconds.
TransformerConfig small_llama() {
  TransformerConfig cfg = TransformerConfig::tiny_llama_42m();
  cfg.name = "tinyllama-test";
  cfg.embed_dim = 32;
  cfg.ffn_dim = 64;
  cfg.num_heads = 4;
  cfg.head_dim = 8;
  cfg.num_layers = 2;
  cfg.ar_context = 16;
  cfg.prompt_len = 6;
  cfg.validate();
  return cfg;
}

TransformerConfig small_bert() {
  TransformerConfig cfg = TransformerConfig::mobile_bert();
  cfg.name = "mobilebert-test";
  cfg.embed_dim = 32;
  cfg.ffn_dim = 32;
  cfg.num_heads = 4;
  cfg.head_dim = 8;
  cfg.num_layers = 2;
  cfg.ar_context = 12;
  cfg.prompt_len = 12;
  cfg.validate();
  return cfg;
}

Tensor random_input(int rows, int cols, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor x(rows, cols);
  x.random_init(rng, 1.0f);
  return x;
}

}  // namespace

TEST(Config, TinyLlamaPresetMatchesPaper) {
  const auto cfg = TransformerConfig::tiny_llama_42m();
  EXPECT_EQ(cfg.embed_dim, 512);
  EXPECT_EQ(cfg.ffn_dim, 2048);
  EXPECT_EQ(cfg.num_heads, 8);
  EXPECT_EQ(cfg.num_layers, 8);
  EXPECT_EQ(cfg.proj_dim(), 512);
  EXPECT_EQ(cfg.ar_context, 128);
  EXPECT_EQ(cfg.prompt_len, 16);
  // One block: 4*E*PH + 2*E*F = 3,145,728 weight elements.
  EXPECT_EQ(cfg.block_weight_elems(), 3145728u);
}

TEST(Config, MobileBertPresetMatchesPaper) {
  const auto cfg = TransformerConfig::mobile_bert();
  EXPECT_EQ(cfg.embed_dim, 512);
  EXPECT_EQ(cfg.ffn_dim, 512);
  EXPECT_EQ(cfg.num_heads, 4);
  EXPECT_EQ(cfg.prompt_len, 268);
  EXPECT_EQ(cfg.proj_dim(), 512);
  EXPECT_EQ(cfg.block_weight_elems(), 1572864u);
  EXPECT_EQ(cfg.norm, model::NormKind::layernorm);
  EXPECT_EQ(cfg.mask, model::MaskKind::bidirectional);
}

TEST(Config, ScaledModelKeepsProjWidth) {
  const auto cfg = TransformerConfig::tiny_llama_scaled(64);
  EXPECT_EQ(cfg.num_heads, 64);
  EXPECT_EQ(cfg.head_dim, 8);
  EXPECT_EQ(cfg.proj_dim(), 512);
  // Paper Sec. V-C: all other parameters unchanged -> same weight bytes.
  EXPECT_EQ(cfg.block_weight_elems(),
            TransformerConfig::tiny_llama_42m().block_weight_elems());
}

TEST(Config, ValidateCatchesBadConfigs) {
  auto cfg = TransformerConfig::tiny_llama_42m();
  cfg.embed_dim = 0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = TransformerConfig::tiny_llama_42m();
  cfg.head_dim = 63;  // odd + rope
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(Config, ScaledModelRejectsNonDivisorHeads) {
  EXPECT_THROW(TransformerConfig::tiny_llama_scaled(33), Error);
}

TEST(Tensor, SliceColsExtractsHeads) {
  Tensor t(2, 6);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 6; ++c) t.at(r, c) = static_cast<float>(10 * r + c);
  }
  const Tensor s = t.slice_cols(2, 4);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.cols(), 2);
  EXPECT_FLOAT_EQ(s.at(0, 0), 2);
  EXPECT_FLOAT_EQ(s.at(1, 1), 13);
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a(1, 3), b(1, 3);
  a.at(0, 2) = 1.0f;
  b.at(0, 2) = -0.5f;
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(a, b), 1.5f);
  Tensor c(2, 3);
  EXPECT_THROW((void)Tensor::max_abs_diff(a, c), Error);
}

TEST(Weights, DeterministicForSameSeed) {
  const auto cfg = small_llama();
  const Weights w1(cfg, 99), w2(cfg, 99);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(w1.layer(0).wq, w2.layer(0).wq), 0.0f);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(w1.layer(1).w2, w2.layer(1).w2), 0.0f);
}

TEST(Weights, DifferentSeedsDiffer) {
  const auto cfg = small_llama();
  const Weights w1(cfg, 1), w2(cfg, 2);
  EXPECT_GT(Tensor::max_abs_diff(w1.layer(0).wq, w2.layer(0).wq), 0.0f);
}

TEST(Weights, ByteAccountingMatchesPaperFootprint) {
  // TinyLlama at 2 B/weight: one block = 6 MiB, full model = 48 MiB —
  // the numbers behind the paper's residency crossovers.
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const Weights w(cfg, 0);
  EXPECT_EQ(w.block_weight_bytes(2), 6291456u);
  EXPECT_EQ(w.total_weight_bytes(2), 50331648u);
}

TEST(KvCacheTest, AppendAndViews) {
  KvCache cache(4, 6);
  std::vector<float> k(6, 1.0f), v(6, 2.0f);
  cache.append(k, v);
  k.assign(6, 3.0f);
  v.assign(6, 4.0f);
  cache.append(k, v);
  EXPECT_EQ(cache.length(), 2);
  EXPECT_EQ(cache.k().size(), 12u);
  EXPECT_FLOAT_EQ(cache.k()[0], 1.0f);
  EXPECT_FLOAT_EQ(cache.v()[6], 4.0f);
  const Tensor ks = cache.k_slice(2, 4);
  EXPECT_EQ(ks.rows(), 2);
  EXPECT_EQ(ks.cols(), 2);
  EXPECT_FLOAT_EQ(ks.at(1, 0), 3.0f);
}

TEST(KvCacheTest, CapacityEnforced) {
  KvCache cache(1, 2);
  const std::vector<float> r(2, 0.0f);
  cache.append(r, r);
  EXPECT_THROW(cache.append(r, r), Error);
}

TEST(KvCacheTest, CapacityBytes) {
  KvCache cache(128, 512);
  // 2 * 128 * 512 * 1B = 128 KiB — one TinyLlama layer's cache at int8.
  EXPECT_EQ(cache.capacity_bytes(1), 131072u);
}

TEST(ReferenceModel, PromptOutputShape) {
  const auto cfg = small_llama();
  const Weights w(cfg, 7);
  const ReferenceModel ref(cfg, w);
  const Tensor x = random_input(cfg.prompt_len, cfg.embed_dim, 21);
  const Tensor y = ref.forward_prompt(x);
  EXPECT_EQ(y.rows(), cfg.prompt_len);
  EXPECT_EQ(y.cols(), cfg.embed_dim);
}

TEST(ReferenceModel, OutputsAreFiniteAndNonTrivial) {
  const auto cfg = small_llama();
  const Weights w(cfg, 7);
  const ReferenceModel ref(cfg, w);
  const Tensor x = random_input(4, cfg.embed_dim, 22);
  const Tensor y = ref.forward_prompt(x);
  float max_abs = 0.0f;
  for (const float v : y.span()) {
    ASSERT_TRUE(std::isfinite(v));
    max_abs = std::max(max_abs, std::abs(v));
  }
  EXPECT_GT(max_abs, 1e-3f);
}

// The paper's two modes must agree: decoding a sequence token-by-token
// through the KV cache reproduces the prompt-mode block outputs.
class ArPromptEquivalence : public ::testing::TestWithParam<bool> {};

TEST_P(ArPromptEquivalence, TokenByTokenMatchesPrompt) {
  const bool pre_norm = GetParam();
  auto cfg = small_llama();
  cfg.pre_norm = pre_norm;
  const Weights w(cfg, 31);
  const ReferenceModel ref(cfg, w);
  const int s = cfg.prompt_len;
  const Tensor x = random_input(s, cfg.embed_dim, 77);

  // Prompt mode over the full sequence (fresh caches so attention uses
  // the cache path, identical to AR).
  auto prompt_caches = ref.make_caches(cfg.ar_context);
  const Tensor y_prompt = ref.forward_prompt(x, &prompt_caches, 0);

  // AR mode: one token at a time.
  auto ar_caches = ref.make_caches(cfg.ar_context);
  for (int t = 0; t < s; ++t) {
    const Tensor xt = x.slice_rows(t, t + 1);
    const Tensor yt = ref.forward_ar(xt, ar_caches, t);
    for (int c = 0; c < cfg.embed_dim; ++c) {
      ASSERT_NEAR(yt.at(0, c), y_prompt.at(t, c), 2e-3f)
          << "pre_norm=" << pre_norm << " token " << t << " col " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(NormPlacements, ArPromptEquivalence, ::testing::Bool());

TEST(ReferenceModel, CausalMaskingBlocksFutureInfluence) {
  const auto cfg = small_llama();
  const Weights w(cfg, 13);
  const ReferenceModel ref(cfg, w);
  Tensor x = random_input(5, cfg.embed_dim, 41);
  const Tensor y1 = ref.forward_prompt(x);
  // Perturb the last row: earlier outputs must not change.
  for (int c = 0; c < cfg.embed_dim; ++c) x.at(4, c) += 1.0f;
  const Tensor y2 = ref.forward_prompt(x);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < cfg.embed_dim; ++c) {
      ASSERT_FLOAT_EQ(y1.at(r, c), y2.at(r, c)) << "row " << r;
    }
  }
  // The perturbed row itself must change.
  EXPECT_GT(Tensor::max_abs_diff(y1, y2), 1e-4f);
}

TEST(ReferenceModel, BidirectionalSeesFuture) {
  const auto cfg = small_bert();
  const Weights w(cfg, 13);
  const ReferenceModel ref(cfg, w);
  Tensor x = random_input(5, cfg.embed_dim, 43);
  const Tensor y1 = ref.forward_prompt(x);
  for (int c = 0; c < cfg.embed_dim; ++c) x.at(4, c) += 1.0f;
  const Tensor y2 = ref.forward_prompt(x);
  // In an encoder, earlier rows DO change when a later token changes.
  float diff_row0 = 0.0f;
  for (int c = 0; c < cfg.embed_dim; ++c) {
    diff_row0 = std::max(diff_row0, std::abs(y1.at(0, c) - y2.at(0, c)));
  }
  EXPECT_GT(diff_row0, 1e-5f);
}

TEST(ReferenceModel, LayerCountMismatchThrows) {
  const auto cfg_small = small_llama();
  auto cfg_other = cfg_small;
  cfg_other.num_layers = 3;
  const Weights w(cfg_small, 1);
  EXPECT_THROW(ReferenceModel(cfg_other, w), Error);
}

TEST(ReferenceModel, ArRequiresConsistentCachePosition) {
  const auto cfg = small_llama();
  const Weights w(cfg, 7);
  const ReferenceModel ref(cfg, w);
  auto caches = ref.make_caches(cfg.ar_context);
  const Tensor x = random_input(1, cfg.embed_dim, 3);
  EXPECT_THROW((void)ref.forward_ar(x, caches, 5), Error);
}

TEST(ReferenceModel, RopeMakesOutputPositionDependent) {
  const auto cfg = small_llama();
  const Weights w(cfg, 7);
  const ReferenceModel ref(cfg, w);
  const Tensor x = random_input(1, cfg.embed_dim, 3);
  auto c0 = ref.make_caches(cfg.ar_context);
  const Tensor y0 = ref.block_ar(x, 0, c0, 0);
  // Same token content at a later position (prefix of one other token).
  auto c1 = ref.make_caches(cfg.ar_context);
  const Tensor filler = random_input(1, cfg.embed_dim, 5);
  (void)ref.block_ar(filler, 0, c1, 0);
  const Tensor y1 = ref.block_ar(x, 0, c1, 1);
  EXPECT_GT(Tensor::max_abs_diff(y0, y1), 1e-5f);
}
