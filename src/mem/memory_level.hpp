#ifndef DISTMCU_MEM_MEMORY_LEVEL_HPP
#define DISTMCU_MEM_MEMORY_LEVEL_HPP

#include <string>

#include "util/units.hpp"

namespace distmcu::mem {

/// Identifier for the three memory tiers of the Siracusa platform
/// (paper Sec. II-B): L1 TCDM inside the cluster, L2 on-chip SRAM, and L3
/// off-chip memory behind the chip I/O.
enum class Tier : int { l1 = 1, l2 = 2, l3 = 3 };

[[nodiscard]] const char* tier_name(Tier t);

/// Static description of one memory tier on one chip: capacity and the
/// per-byte access energy used by the paper's analytical energy model
/// (100 pJ/B for L3, 2 pJ/B for L2; L1 access energy is folded into the
/// cluster's active power, matching the paper's equation which has no L1
/// term).
struct MemoryLevel {
  Tier tier = Tier::l2;
  Bytes size = 0;                    // capacity (L3: effectively unbounded)
  double energy_pj_per_byte = 0.0;   // per-byte access energy

  [[nodiscard]] std::string name() const { return tier_name(tier); }
};

}  // namespace distmcu::mem

#endif  // DISTMCU_MEM_MEMORY_LEVEL_HPP
