#include "chip/chip_config.hpp"

namespace distmcu::chip {

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::int8: return "int8";
    case Precision::int16: return "int16";
    case Precision::fp32: return "fp32";
  }
  return "?";
}

ChipConfig ChipConfig::siracusa() { return ChipConfig{}; }

}  // namespace distmcu::chip
