#include "mem/arena.hpp"

#include <sstream>

#include "util/check.hpp"

namespace distmcu::mem {

Arena::Arena(std::string name, Bytes capacity, Bytes alignment)
    : name_(std::move(name)), capacity_(capacity), alignment_(alignment) {
  util::check(alignment_ > 0 && (alignment_ & (alignment_ - 1)) == 0,
              "Arena alignment must be a power of two");
}

Bytes Arena::aligned(Bytes size) const {
  return (size + alignment_ - 1) & ~(alignment_ - 1);
}

bool Arena::try_allocate(const std::string& name, Bytes size) {
  const Bytes padded = aligned(size);
  if (used_ + padded > capacity_) return false;
  allocations_.push_back(Allocation{name, used_, size});
  used_ += padded;
  if (used_ > high_water_) high_water_ = used_;
  return true;
}

Allocation Arena::allocate(const std::string& name, Bytes size) {
  util::check_plan(try_allocate(name, size),
                   "Arena '" + name_ + "': allocation '" + name + "' of " +
                       util::format_bytes(size) + " exceeds capacity (" +
                       util::format_bytes(remaining()) + " free of " +
                       util::format_bytes(capacity_) + ")");
  return allocations_.back();
}

void Arena::reset() {
  used_ = 0;
  allocations_.clear();
}

std::string Arena::memory_map() const {
  std::ostringstream os;
  os << name_ << ": " << util::format_bytes(used_) << " / "
     << util::format_bytes(capacity_) << " used\n";
  for (const auto& a : allocations_) {
    os << "  [0x" << std::hex << a.offset << std::dec << "] " << a.name << " ("
       << util::format_bytes(a.size) << ")\n";
  }
  return os.str();
}

}  // namespace distmcu::mem
