#ifndef DISTMCU_QUANT_QUANTIZE_HPP
#define DISTMCU_QUANT_QUANTIZE_HPP

#include <cstdint>
#include <span>
#include <vector>

namespace distmcu::quant {

/// Symmetric per-tensor quantization parameters (zero point fixed at 0,
/// the Deeploy-style scheme the paper deploys with).
struct QuantParams {
  float scale = 1.0f;  // real = q * scale

  [[nodiscard]] static QuantParams from_absmax(float absmax, int bits);
};

/// Pick parameters covering the tensor's range at `bits` precision.
[[nodiscard]] QuantParams choose_params(std::span<const float> data, int bits);

/// Quantize to int8 / int16 with round-to-nearest and saturation.
[[nodiscard]] std::vector<std::int8_t> quantize_i8(std::span<const float> data,
                                                   const QuantParams& p);
[[nodiscard]] std::vector<std::int16_t> quantize_i16(std::span<const float> data,
                                                     const QuantParams& p);

void dequantize(std::span<const std::int8_t> q, const QuantParams& p,
                std::span<float> out);
void dequantize(std::span<const std::int16_t> q, const QuantParams& p,
                std::span<float> out);

/// Worst-case absolute reconstruction error of the scheme (half an LSB).
[[nodiscard]] float max_quant_error(const QuantParams& p);

}  // namespace distmcu::quant

#endif  // DISTMCU_QUANT_QUANTIZE_HPP
