#ifndef DISTMCU_KERNELS_ATTENTION_HPP
#define DISTMCU_KERNELS_ATTENTION_HPP

#include <span>

namespace distmcu::kernels {

/// Single-head scaled dot-product attention for prompt mode (paper
/// Eq. 2): Q [s_q, p], K/V [s_kv, p], output [s_q, p].
///
/// When `causal` is true, query row i may attend to key positions
/// 0 .. (pos_offset + i); `pos_offset` is the absolute position of the
/// first query row (non-zero when a prompt is processed with an existing
/// KV cache prefix).
void attention_head(std::span<const float> q, std::span<const float> k,
                    std::span<const float> v, std::span<float> out, int s_q,
                    int s_kv, int p, bool causal, int pos_offset);

/// Single-head single-query attention for autoregressive mode: q [p],
/// K/V hold `s_kv` cached positions, output [p]. This is the GEMV-shaped
/// kernel that dominates the paper's autoregressive workload.
void attention_head_ar(std::span<const float> q, std::span<const float> k,
                       std::span<const float> v, std::span<float> out, int s_kv,
                       int p);

}  // namespace distmcu::kernels

#endif  // DISTMCU_KERNELS_ATTENTION_HPP
