#include "mem/paged_arena.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace distmcu::mem {

PagedKvArena::PagedKvArena(Arena& arena, const std::string& name, int n_pages,
                           Bytes page_bytes)
    : name_(name), page_bytes_(page_bytes) {
  DISTMCU_CHECK(n_pages > 0, "PagedKvArena: page count must be positive");
  DISTMCU_CHECK(page_bytes > 0, "PagedKvArena: page size must be positive");
  owner_.assign(static_cast<std::size_t>(n_pages), kFreePage);
  refcount_.assign(static_cast<std::size_t>(n_pages), 0);
  for (int i = 0; i < n_pages; ++i) {
    (void)arena.allocate(name + "." + std::to_string(i), page_bytes);
  }
}

std::optional<int> PagedKvArena::acquire(int tenant) {
  DISTMCU_CHECK(tenant >= 0, "PagedKvArena '" + name_ + "': negative tenant");
  for (std::size_t i = 0; i < owner_.size(); ++i) {
    if (owner_[i] == kFreePage) {
      owner_[i] = tenant;
      refcount_[i] = 1;
      ++n_in_use_;
      ++total_refs_;
      const auto t = static_cast<std::size_t>(tenant);
      if (t >= tenant_in_use_.size()) {
        tenant_in_use_.resize(t + 1, 0);
        tenant_high_water_.resize(t + 1, 0);
      }
      ++tenant_in_use_[t];
      tenant_high_water_[t] = std::max(tenant_high_water_[t], tenant_in_use_[t]);
      return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

void PagedKvArena::add_ref(int page) {
  DISTMCU_CHECK(page >= 0 && page < capacity(),
              "PagedKvArena '" + name_ + "': add_ref of out-of-range page");
  DISTMCU_CHECK(owner_[static_cast<std::size_t>(page)] != kFreePage,
              "PagedKvArena '" + name_ + "': add_ref of free page " +
                  std::to_string(page));
  ++refcount_[static_cast<std::size_t>(page)];
  ++total_refs_;
}

void PagedKvArena::free_page(int page, int tenant) {
  owner_[static_cast<std::size_t>(page)] = kFreePage;
  --n_in_use_;
  --tenant_in_use_[static_cast<std::size_t>(tenant)];
}

void PagedKvArena::release(int page, int tenant) {
  DISTMCU_CHECK(page >= 0 && page < capacity(),
              "PagedKvArena '" + name_ + "': release of out-of-range page");
  const int owner = owner_[static_cast<std::size_t>(page)];
  DISTMCU_CHECK(owner != kFreePage,
              "PagedKvArena '" + name_ + "': release of free page " +
                  std::to_string(page));
  DISTMCU_CHECK(owner == tenant,
              "PagedKvArena '" + name_ + "': tenant " + std::to_string(tenant) +
                  " released page " + std::to_string(page) + " owned by " +
                  std::to_string(owner) + " (cross-tenant KV leak)");
  --refcount_[static_cast<std::size_t>(page)];
  --total_refs_;
  if (refcount_[static_cast<std::size_t>(page)] == 0) free_page(page, tenant);
}

void PagedKvArena::reclaim(int page, int tenant) {
  const bool last = refcount(page) == 1;
  release(page, tenant);
  if (!last) return;
  const auto t = static_cast<std::size_t>(tenant);
  if (t >= tenant_reclaimed_.size()) tenant_reclaimed_.resize(t + 1, 0);
  ++tenant_reclaimed_[t];
  ++total_reclaimed_;
}

int PagedKvArena::owner(int page) const {
  DISTMCU_CHECK(page >= 0 && page < capacity(),
              "PagedKvArena '" + name_ + "': owner of out-of-range page");
  return owner_[static_cast<std::size_t>(page)];
}

int PagedKvArena::refcount(int page) const {
  DISTMCU_CHECK(page >= 0 && page < capacity(),
              "PagedKvArena '" + name_ + "': refcount of out-of-range page");
  return refcount_[static_cast<std::size_t>(page)];
}

int PagedKvArena::shared_pages() const {
  int n = 0;
  for (const int rc : refcount_) n += rc >= 2 ? 1 : 0;
  return n;
}

int PagedKvArena::tenant_in_use(int tenant) const {
  const auto t = static_cast<std::size_t>(tenant);
  return t < tenant_in_use_.size() ? tenant_in_use_[t] : 0;
}

int PagedKvArena::tenant_high_water(int tenant) const {
  const auto t = static_cast<std::size_t>(tenant);
  return t < tenant_high_water_.size() ? tenant_high_water_[t] : 0;
}

int PagedKvArena::tenant_reclaimed(int tenant) const {
  const auto t = static_cast<std::size_t>(tenant);
  return t < tenant_reclaimed_.size() ? tenant_reclaimed_[t] : 0;
}

}  // namespace distmcu::mem
