#include "model/weights.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace distmcu::model {

Weights::Weights(const TransformerConfig& cfg, std::uint64_t seed) : cfg_(cfg) {
  cfg_.validate();
  util::Rng rng(seed);
  const int e = cfg_.embed_dim;
  const int f = cfg_.ffn_dim;
  const int ph = cfg_.proj_dim();
  // 1/sqrt(fan-in) keeps activations O(1) through deep stacks, which in
  // turn keeps the quantized path's scales healthy.
  const float proj_scale = 1.0f / std::sqrt(static_cast<float>(e));
  const float w2_scale = 1.0f / std::sqrt(static_cast<float>(f));

  layers_.reserve(static_cast<std::size_t>(cfg_.num_layers));
  for (int l = 0; l < cfg_.num_layers; ++l) {
    LayerWeights w;
    w.wq = Tensor(e, ph);
    w.wk = Tensor(e, ph);
    w.wv = Tensor(e, ph);
    w.wo = Tensor(ph, e);
    w.w1 = Tensor(e, f);
    w.w2 = Tensor(f, e);
    w.wq.random_init(rng, proj_scale);
    w.wk.random_init(rng, proj_scale);
    w.wv.random_init(rng, proj_scale);
    w.wo.random_init(rng, proj_scale);
    w.w1.random_init(rng, proj_scale);
    w.w2.random_init(rng, w2_scale);
    if (cfg_.ffn == FfnKind::swiglu) {
      w.w3 = Tensor(e, f);
      w.w3.random_init(rng, proj_scale);
    }
    w.norm1_gamma = Tensor(1, e);
    w.norm1_beta = Tensor(1, e);
    w.norm2_gamma = Tensor(1, e);
    w.norm2_beta = Tensor(1, e);
    w.norm1_gamma.fill(1.0f);
    w.norm2_gamma.fill(1.0f);
    // Small random beta exercises the layernorm shift path in tests.
    for (int c = 0; c < e; ++c) {
      w.norm1_beta.at(0, c) = rng.uniform(-0.05f, 0.05f);
      w.norm2_beta.at(0, c) = rng.uniform(-0.05f, 0.05f);
    }
    layers_.push_back(std::move(w));
  }
}

const LayerWeights& Weights::layer(int i) const {
  DISTMCU_CHECK(i >= 0 && i < num_layers(), "Weights::layer: index out of range");
  return layers_[static_cast<std::size_t>(i)];
}

}  // namespace distmcu::model
