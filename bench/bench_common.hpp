#ifndef DISTMCU_BENCH_COMMON_HPP
#define DISTMCU_BENCH_COMMON_HPP

// Shared harness pieces for the per-figure benches: the Fig. 4-style
// runtime-breakdown sweep and small formatting helpers. Each bench
// prints the same rows/series the paper reports; EXPERIMENTS.md records
// the measured values next to the paper's.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "energy/energy_model.hpp"
#include "model/config.hpp"
#include "partition/plan.hpp"
#include "runtime/timed_simulation.hpp"
#include "util/table.hpp"

namespace distmcu::bench {

/// Minimal JSON string escaping for the benches' emitters (quotes and
/// backslashes; emitted strings are config names and metric labels).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// The benches' only CLI surface: `--json <path>` selects the
/// machine-readable output file. Returns the empty string when the flag
/// is absent; exits with a usage message on anything unrecognized.
inline std::string parse_json_flag(int argc, char** argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--json <path>]\n";
      std::exit(2);
    }
  }
  return path;
}

struct SweepPoint {
  int chips = 1;
  runtime::RunReport report;
  energy::EnergyBreakdown energy;
  double speedup = 1.0;
};

/// Run the Fig. 4 sweep: one Transformer block per chip count.
inline std::vector<SweepPoint> sweep_chips(const model::TransformerConfig& cfg,
                                           model::Mode mode,
                                           const std::vector<int>& chip_counts,
                                           const runtime::SystemConfig& sys =
                                               runtime::SystemConfig::siracusa_system()) {
  const runtime::TimedBlockSimulation sim(sys);
  const energy::EnergyModel em(sys.chip, sys.link);
  std::vector<SweepPoint> out;
  double base = 0.0;
  for (const int n : chip_counts) {
    SweepPoint p;
    p.chips = n;
    p.report = sim.run(partition::PartitionPlan::create(cfg, n), mode);
    p.energy = em.compute(p.report);
    if (out.empty()) base = static_cast<double>(p.report.block_cycles);
    p.speedup = base / static_cast<double>(p.report.block_cycles);
    out.push_back(std::move(p));
  }
  return out;
}

/// Print the Fig. 4 panel: stacked runtime breakdown (cycles) per chip
/// count plus the speedup series against linear scaling.
inline void print_fig4_panel(const std::string& title,
                             const std::vector<SweepPoint>& points,
                             std::ostream& os = std::cout) {
  os << title << "\n";
  util::Table table({"chips", "residency", "runtime_cycles", "computation",
                     "dma_l3_l2", "dma_l2_l1", "chip_to_chip", "speedup",
                     "linear_scaling"});
  for (const auto& p : points) {
    table.row()
        .add(p.chips)
        .add(partition::residency_name(p.report.residency))
        .add(p.report.block_cycles)
        .add(p.report.breakdown.compute)
        .add(p.report.breakdown.dma_l3_l2)
        .add(p.report.breakdown.dma_l2_l1)
        .add(p.report.breakdown.c2c)
        .add(p.speedup, 2)
        .add(p.chips);
  }
  table.print(os);
  os << "\nCSV:\n";
  table.write_csv(os);
  os << "\n";
}

}  // namespace distmcu::bench

#endif  // DISTMCU_BENCH_COMMON_HPP
