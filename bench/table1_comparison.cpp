// Reproduces paper Table I — comparison of model-partitioning schemes —
// and extends it quantitatively: the paper's table is qualitative
// (pipelining? weight duplication?), so in addition to those columns we
// MEASURE the implemented baselines on the same simulated platform:
// weight-replicated sequence parallelism ([21]-style) and pipeline
// parallelism (PipeEdge [31] / Hermes [22]-style) against this work's
// tensor-parallel scheme.
#include <iostream>

#include "baselines/baselines.hpp"
#include "model/config.hpp"
#include "util/table.hpp"

using namespace distmcu;

int main() {
  // --- the paper's qualitative table ------------------------------------
  std::cout << "Table I — SotA model-partitioning comparison (paper, qualitative)\n";
  util::Table t1({"work", "model", "scale", "platform", "pipelining",
                  "weight_duplication"});
  t1.row().add("DeepThings [20]").add("CNN").add("Low-Power").add("Raspberry Pi")
      .add("No").add("Yes");
  t1.row().add("Efficiently Scaling Transformer Inference [13]").add("Transformer")
      .add("Datacenter").add("TPU").add("No").add("No");
  t1.row().add("DeepSpeed Inference [12]").add("Transformer").add("Datacenter")
      .add("GPU").add("Yes").add("No");
  t1.row().add("When the Edge Meets Transformers [21]").add("Transformer")
      .add("Low-Power").add("CPU").add("No").add("Yes");
  t1.row().add("Hermes [22]").add("Transformer").add("Low-Power").add("CPU")
      .add("Yes").add("No");
  t1.row().add("Ours").add("Transformer").add("Extreme Edge").add("Siracusa (MCU)")
      .add("No").add("No");
  t1.print(std::cout);

  // --- quantitative extension on the simulated platform -----------------
  const auto sys = runtime::SystemConfig::siracusa_system();
  const auto cfg = model::TransformerConfig::tiny_llama_42m();
  const baselines::ReplicatedSeqParallel replicated(sys);
  const baselines::PipelineParallel pipeline(sys);

  for (const auto mode : {model::Mode::autoregressive, model::Mode::prompt}) {
    std::cout << "\nMeasured on TinyLlama-42M, 8 Siracusa chips, "
              << model::mode_name(mode) << " mode (one block):\n";
    util::Table t2({"scheme", "duplication", "needs_pipelining", "residency",
                    "block_cycles", "energy_mJ", "speedup_vs_1chip"});
    const auto single = baselines::run_tensor_parallel(cfg, 1, mode, sys);
    auto add = [&](const baselines::BaselineReport& r) {
      t2.row()
          .add(r.name)
          .add(r.weight_duplication, 0)
          .add(r.needs_pipelining ? "yes" : "no")
          .add(partition::residency_name(r.residency))
          .add(r.block_cycles)
          .add(r.energy_mj, 3)
          .add(static_cast<double>(single.block_cycles) /
                   static_cast<double>(r.block_cycles),
               2);
    };
    add(baselines::run_tensor_parallel(cfg, 8, mode, sys));
    add(replicated.run(cfg, 8, mode));
    add(pipeline.run(cfg, 8, mode));
    t2.print(std::cout);
    std::cout << "  (pipeline throughput with deep batches: "
              << pipeline.pipelined_period_cycles(cfg, 8, mode)
              << " cycles/block period — unusable for single-user real-time "
                 "inference, paper Sec. III-B)\n";
  }

  std::cout << "\nshape check: only the tensor-parallel scheme reaches an on-chip "
               "residency regime at 8 chips with zero duplication: PASS criteria "
               "asserted in tests/test_baselines.cpp\n";
  return 0;
}
