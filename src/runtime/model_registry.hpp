#ifndef DISTMCU_RUNTIME_MODEL_REGISTRY_HPP
#define DISTMCU_RUNTIME_MODEL_REGISTRY_HPP

#include <memory>
#include <string>
#include <vector>

#include "runtime/deployment_spec.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/kv_budget.hpp"

namespace distmcu::runtime {

/// One deployed (model::Config, chip-count, block program) tuple plus
/// its serving shape. The session owns the model, the partition, and
/// the timed block program; the registry entry adds the per-tenant
/// serving knobs the multi-model engine needs.
struct ModelDeployment {
  const InferenceSession* session = nullptr;
  /// Set when the registry built the session from a DeploymentSpec;
  /// shared so engines copying the entries keep the session alive even
  /// if the registry goes away first.
  std::shared_ptr<const InferenceSession> owned_session;
  std::string name;
  /// Prompt-chunk size of the chunked-prefill step model for this
  /// tenant; 0 = serial-prefill compatibility mode (per-model, so a
  /// chunked generator can share the engine with a serial encoder).
  int prefill_chunk_tokens = 0;
  /// Static-split reserve in shared KV slots. 0 = filled in by the
  /// engine with an equal split of the arena (remainder to the earliest
  /// deployments).
  int kv_quota = 0;
  /// Hard ceiling on concurrently held slots (bounds this tenant's
  /// KvCachePool and its L2 fit check). 0 = derived: the quota under
  /// the static-split policy, the whole arena under borrowing policies.
  int max_resident = 0;
};

/// The deployments one multi-model engine multiplexes: N sessions keyed
/// by a dense ModelId (the add() order).
///
/// `add(DeploymentSpec)` is the intended registration surface: the
/// registry builds and owns the InferenceSession the spec describes
/// (shared_ptr, copied into every engine), so there is no session
/// lifetime for callers to get wrong. The legacy borrowed-session
/// `add()` remains as a shim for callers that pre-built a session —
/// those sessions must outlive every engine built from the registry.
class ModelRegistry {
 public:
  /// Register a deployment described by `spec`; the registry builds and
  /// owns its session. Returns its ModelId (dense, starting at 0).
  ModelId add(const DeploymentSpec& spec);

  /// DEPRECATED shim over the spec form: registers a caller-owned
  /// session with the legacy positional knobs. Prefer
  /// add(DeploymentSpec) — this survives only for callers that need to
  /// share one pre-built session across registries.
  ModelId add(const InferenceSession& session, std::string name,
              int prefill_chunk_tokens = 0, int kv_quota = 0,
              int max_resident = 0);

  [[nodiscard]] int count() const { return static_cast<int>(entries_.size()); }
  [[nodiscard]] const ModelDeployment& entry(ModelId id) const;
  [[nodiscard]] const std::vector<ModelDeployment>& entries() const {
    return entries_;
  }

  /// ModelId of the deployment named `name`; throws when absent.
  [[nodiscard]] ModelId find(const std::string& name) const;

 private:
  std::vector<ModelDeployment> entries_;
};

}  // namespace distmcu::runtime

#endif  // DISTMCU_RUNTIME_MODEL_REGISTRY_HPP
