// Export the simulated execution timeline of one distributed Transformer
// block as Chrome-tracing JSON (open in https://ui.perfetto.dev): one
// process per chip, tracks for computation / L3 DMA / L2<->L1 DMA /
// chip-to-chip — the visual counterpart of the paper's Fig. 4 bars,
// showing the two-synchronization structure and the prefetch racing the
// block.
//
//   ./examples/export_trace [num_chips] [out.json]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "model/config.hpp"
#include "partition/plan.hpp"
#include "runtime/timed_simulation.hpp"
#include "sim/trace_export.hpp"
#include "sim/tracer.hpp"

using namespace distmcu;

int main(int argc, char** argv) {
  const int n_chips = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::string path = argc > 2 ? argv[2] : "block_trace.json";

  const auto cfg = model::TransformerConfig::tiny_llama_42m();
  const auto plan = partition::PartitionPlan::create(cfg, n_chips);
  const auto sys = runtime::SystemConfig::siracusa_system();

  sim::Tracer tracer;
  const auto rep = runtime::TimedBlockSimulation(sys).run(
      plan, model::Mode::autoregressive, &tracer);

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return 1;
  }
  sim::write_chrome_trace(tracer, sys.chip.freq_hz, out);

  std::cout << "wrote " << tracer.spans().size() << " spans ("
            << rep.block_cycles << " cycles, "
            << util::cycles_to_ms(rep.block_cycles, sys.chip.freq_hz)
            << " ms) to " << path << "\n"
            << "open in https://ui.perfetto.dev or chrome://tracing\n";
  return 0;
}
