#ifndef DISTMCU_PARTITION_SHARDER_HPP
#define DISTMCU_PARTITION_SHARDER_HPP

#include <vector>

#include "model/tensor.hpp"
#include "model/weights.hpp"
#include "partition/plan.hpp"

namespace distmcu::partition {

/// One chip's slice of one block's weights, materialized as tensors the
/// functional distributed executor feeds straight into the kernels
/// (paper Fig. 3 colouring):
///   wq/wk/wv : [E, pw]  — columns of the head range
///   wo       : [pw, E]  — the matching rows of WO
///   w1       : [E, fw]  — columns of the FFN range
///   w2       : [fw, E]  — the matching rows of W2
struct WeightShard {
  model::Tensor wq;
  model::Tensor wk;
  model::Tensor wv;
  model::Tensor wo;
  model::Tensor w1;
  model::Tensor w2;
  model::Tensor w3;  // SwiGLU gate slice (empty for the plain MLP)

  [[nodiscard]] std::uint64_t num_elems() const {
    return wq.size() + wk.size() + wv.size() + wo.size() + w1.size() + w2.size() +
           w3.size();
  }
};

/// Splits full model weights according to a PartitionPlan. Norm
/// parameters are NOT sharded: the paper normalizes on a single chip
/// between the reduce and the broadcast, so they live on the root only.
class ShardedWeights {
 public:
  ShardedWeights(const model::Weights& weights, const PartitionPlan& plan);

  [[nodiscard]] const WeightShard& shard(int chip, int layer) const;
  [[nodiscard]] int num_chips() const { return n_chips_; }
  [[nodiscard]] int num_layers() const { return n_layers_; }

  /// Sum of shard elements across chips for `layer` — tests assert this
  /// equals the unsharded block exactly (zero duplication, full
  /// coverage).
  [[nodiscard]] std::uint64_t layer_elem_sum(int layer) const;

 private:
  int n_chips_;
  int n_layers_;
  std::vector<WeightShard> shards_;  // [chip * n_layers + layer]
};

}  // namespace distmcu::partition

#endif  // DISTMCU_PARTITION_SHARDER_HPP
