// Compile-and-run guard for the examples in docs/extending.md: every
// ```cpp fence of that document appears below VERBATIM (the
// docs-snippet-sync rule of tools/lint_domain.py enforces the byte
// equality, modulo a uniform indent), and each custom policy is driven
// through a real engine or router — so a documented example that stops
// compiling, or stops doing what the prose claims, fails CI instead of
// rotting quietly.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "fleet/router.hpp"
#include "fleet/routing_policy.hpp"
#include "model/config.hpp"
#include "runtime/batched_engine.hpp"
#include "runtime/deployment_spec.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/kv_budget.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/precision.hpp"
#include "runtime/scheduler.hpp"

using namespace distmcu;

namespace {

/// Cut-down decoder so the examples run in milliseconds; the policies
/// under test never see the model size.
model::TransformerConfig doc_cfg() {
  auto cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.embed_dim = 32;
  cfg.ffn_dim = 64;
  cfg.num_heads = 4;
  cfg.head_dim = 8;
  cfg.num_layers = 2;
  cfg.vocab_size = 100;
  cfg.ar_context = 32;
  cfg.prompt_len = 8;
  cfg.validate();
  return cfg;
}

/// Cut-down bidirectional encoder for the DeploymentSpec example.
model::TransformerConfig doc_bert_cfg() {
  auto cfg = model::TransformerConfig::mobile_bert();
  cfg.embed_dim = 32;
  cfg.ffn_dim = 64;
  cfg.num_heads = 4;
  cfg.head_dim = 8;
  cfg.num_layers = 2;
  cfg.vocab_size = 100;
  cfg.ar_context = 32;
  cfg.prompt_len = 8;
  cfg.validate();
  return cfg;
}

// --- docs/extending.md: "Custom Scheduler" ---

/// Admit the cheapest queued request first; ties fall back to submit
/// order (the queue is listed in submit order, so the first minimum
/// wins).
class ShortestJobFirst final : public runtime::Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "sjf"; }
  [[nodiscard]] std::size_t pick(const std::vector<Candidate>& queue,
                                 Cycles /*now*/) const override {
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue.size(); ++i) {
      if (queue[i].estimated_cost < queue[best].estimated_cost) best = i;
    }
    return best;
  }
};

// --- docs/extending.md: "Custom KvBudgetPolicy" ---

/// Hand any free slot to whoever asks: maximum utilization, zero
/// isolation — the opposite extreme from StaticSplitPolicy.
class GreedyPoolPolicy final : public runtime::KvBudgetPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "greedy_pool"; }
  [[nodiscard]] bool may_acquire(runtime::ModelId /*tenant*/,
                                 const std::vector<TenantView>& /*tenants*/,
                                 int /*total_slots*/,
                                 int free_slots) const override {
    return free_slots > 0;
  }
};

// --- docs/extending.md: "Custom PreemptionPolicy" ---

/// Only ever evict best-effort work, preferring the smallest KV
/// checkpoint (least decode progress); decline rather than touch any
/// deadline-carrying request.
class BestEffortOnlyPreemption final : public runtime::PreemptionPolicy {
 public:
  [[nodiscard]] const char* name() const override {
    return "best_effort_only";
  }
  [[nodiscard]] int pick_victim(
      const std::vector<Victim>& victims,
      const runtime::Scheduler::Candidate& /*starved*/,
      Cycles /*now*/) const override {
    std::size_t best = victims.size();
    for (std::size_t i = 0; i < victims.size(); ++i) {
      if (victims[i].deadline_at != runtime::kNoDeadline) continue;
      if (best == victims.size() ||
          victims[i].generated < victims[best].generated) {
        best = i;
      }
    }
    return best == victims.size() ? -1 : static_cast<int>(best);
  }
};

// --- docs/extending.md: "Custom RoutingPolicy" ---

/// Send every request to the eligible node with the least outstanding
/// estimated work, ignoring this request's own cost and the link.
class LeastBacklogRouting final : public fleet::RoutingPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "least_backlog"; }
  [[nodiscard]] std::size_t pick(const std::vector<NodeView>& nodes,
                                 std::uint64_t /*submit_seq*/) const override {
    std::size_t best = nodes.size();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (!nodes[i].eligible) continue;
      if (best == nodes.size() ||
          nodes[i].backlog_cycles < nodes[best].backlog_cycles) {
        best = i;
      }
    }
    return best;
  }
};

}  // namespace

// --- docs/extending.md: "Declaring a deployment: DeploymentSpec" ---

TEST(DocSnippets, DeploymentSpecDeclaresPrecisionPerTenant) {
  const model::TransformerConfig llama_cfg = doc_cfg();
  const model::TransformerConfig bert_cfg = doc_bert_cfg();

  runtime::DeploymentSpec llama;
  llama.model = llama_cfg;  // any validated TransformerConfig
  llama.chips = 4;
  llama.kv_layout = runtime::KvLayout::fp16;  // 16-bit KV entries

  runtime::DeploymentSpec bert;
  bert.model = bert_cfg;
  bert.chips = 2;
  bert.precision = runtime::Precision::int8;  // A8W8 compute + cost model
  bert.kv_layout = runtime::KvLayout::int8;   // packed 8-bit KV entries

  runtime::ModelRegistry registry;
  const runtime::ModelId lm = registry.add(llama);
  const runtime::ModelId bm = registry.add(bert);
  runtime::BatchedEngine engine(registry, {.total_kv_slots = 2});

  // The declared widths are visible per tenant through the engine.
  EXPECT_EQ(engine.model_precision(lm), runtime::Precision::fp16);
  EXPECT_EQ(engine.model_precision(bm), runtime::Precision::int8);
  EXPECT_EQ(engine.model_kv_elem_bits(lm),
            runtime::kv_layout_bits(runtime::KvLayout::fp16, 8));
  EXPECT_EQ(engine.model_kv_elem_bits(bm),
            runtime::kv_layout_bits(runtime::KvLayout::int8, 8));

  const auto gen = engine.submit(
      {.model = lm, .prompt = {1, 17, 42}, .new_tokens = 4});
  const auto enc = engine.submit(
      {.model = bm, .prompt = {7, 9, 11}, .new_tokens = 0});
  const auto results = engine.run_to_completion();

  ASSERT_TRUE(gen && enc);
  ASSERT_EQ(results.size(), 2u);
  // Precision never changes the content contract: each tenant's stream
  // is bit-exact with a dedicated session built from the same spec.
  const runtime::InferenceSession llama_solo(llama);
  const runtime::InferenceSession bert_solo(bert);
  for (const auto& r : results) {
    if (r.id == *gen) {
      EXPECT_EQ(r.gen.tokens, llama_solo.generate({1, 17, 42}, 4).tokens);
    }
    if (r.id == *enc) {
      EXPECT_EQ(r.gen.tokens, bert_solo.generate({7, 9, 11}, 0).tokens);
    }
  }
}

TEST(DocSnippets, ShortestJobFirstAdmitsCheapestFirst) {
  const runtime::InferenceSession session(doc_cfg(), 4);
  runtime::BatchedEngine engine(session, {
      .max_batch = 1,
      .scheduler = std::make_shared<const ShortestJobFirst>()});
  EXPECT_STREQ(engine.scheduler().name(), "sjf");

  // One slot, three queued jobs: SJF must serve them cheapest-first
  // (c, b, a) regardless of submit order.
  const auto a = engine.submit({1, 2, 3}, 6, {});
  const auto b = engine.submit({4, 5, 6}, 5, {});
  const auto c = engine.submit({7, 8}, 1, {});
  ASSERT_TRUE(a && b && c);
  const auto results = engine.run_to_completion();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].id, *c);
  EXPECT_EQ(results[1].id, *b);
  EXPECT_EQ(results[2].id, *a);
}

TEST(DocSnippets, GreedyPoolLendsEveryIdleSlot) {
  const runtime::InferenceSession llama(doc_cfg(), 4);
  const runtime::InferenceSession other(doc_cfg(), 2);
  runtime::ModelRegistry registry;
  const auto gen = registry.add(llama, "tinyllama", /*prefill_chunk_tokens=*/0,
                                /*kv_quota=*/1);
  (void)registry.add(other, "idle_tenant", /*prefill_chunk_tokens=*/0,
                     /*kv_quota=*/1);
  runtime::BatchedEngine engine(registry, {
      .total_kv_slots = 3,
      .kv_budget = std::make_shared<const GreedyPoolPolicy>()});

  // Three concurrent requests from a quota-1 tenant: a greedy pool must
  // lend both idle slots, so the high-water mark clears the quota.
  ASSERT_TRUE(engine.submit(gen, {1, 2, 3}, 4, {}));
  ASSERT_TRUE(engine.submit(gen, {4, 5}, 4, {}));
  ASSERT_TRUE(engine.submit(gen, {6, 7, 8}, 4, {}));
  const auto results = engine.run_to_completion();
  EXPECT_EQ(results.size(), 3u);
  const auto stats = engine.stats();
  ASSERT_GT(stats.per_model.size(), static_cast<std::size_t>(gen));
  EXPECT_EQ(stats.per_model[gen].kv_quota, 1);
  EXPECT_GE(stats.per_model[gen].kv_in_use_high_water, 2);
  EXPECT_EQ(stats.peak_batch, 3);
}

TEST(DocSnippets, BestEffortOnlyPreemptionRescuesTheDeadline) {
  const runtime::InferenceSession session(doc_cfg(), 4);

  // Probe the dedicated-service cost of each job on an idle engine.
  const auto solo_cycles = [&](int prompt0, int new_tokens) {
    runtime::BatchedEngine probe(session, {.max_batch = 1});
    (void)*probe.submit({prompt0, 2, 3}, new_tokens, {});
    (void)probe.run_to_completion();
    return probe.stats().total_cycles;
  };
  const Cycles long_cost = solo_cycles(1, 12);
  const Cycles short_cost = solo_cycles(5, 2);
  ASSERT_LT(short_cost, long_cost);

  runtime::BatchedEngine engine(session, {
      .max_batch = 1,
      .scheduler = runtime::make_scheduler(runtime::SchedulePolicy::edf),
      .preemption = std::make_shared<const BestEffortOnlyPreemption>()});
  // The best-effort long job takes the only slot and decodes to about a
  // quarter of its run; the deadline job then arrives feasible if
  // started now but infeasible after the victim's natural release.
  const auto victim = engine.submit({1, 2, 3}, 12, {});
  ASSERT_TRUE(victim);
  while (engine.stats().total_cycles < long_cost / 4) {
    ASSERT_TRUE(engine.step());
  }
  const auto urgent =
      engine.submit({5, 2, 3}, 2, {.deadline_cycles = 2 * short_cost});
  ASSERT_TRUE(urgent);
  const auto results = engine.run_to_completion();
  ASSERT_EQ(results.size(), 2u);

  const auto stats = engine.stats();
  EXPECT_GE(stats.preemptions, 1);
  EXPECT_GE(stats.resumes, 1);
  for (const auto& r : results) {
    if (r.id == *urgent) {
      EXPECT_FALSE(r.missed_deadline());
    }
    if (r.id == *victim) {
      // Eviction costs cycles, never tokens: the resumed stream is
      // bit-exact with a dedicated generate call.
      EXPECT_GE(r.times_evicted, 1);
      EXPECT_EQ(r.gen.tokens, session.generate({1, 2, 3}, 12).tokens);
    }
  }
}

TEST(DocSnippets, LeastBacklogRoutingPlacesOnTheIdleNode) {
  const runtime::InferenceSession big(doc_cfg(), 4);
  const runtime::InferenceSession small(doc_cfg(), 2);
  runtime::ModelRegistry reg_near;
  runtime::ModelRegistry reg_far;
  (void)reg_near.add(big, "tinyllama");
  (void)reg_far.add(small, "tinyllama");
  runtime::BatchedEngine fast_engine(reg_near, {.total_kv_slots = 2});
  runtime::BatchedEngine slow_engine(reg_far, {.total_kv_slots = 2});

  fleet::Router router(std::make_shared<const LeastBacklogRouting>());
  router.add_node(fast_engine, {.latency_cycles = 1'000}, "near");
  router.add_node(slow_engine, {.latency_cycles = 50'000}, "far");
  auto id = router.submit("tinyllama", {1, 17, 42}, 4,
                          {.deadline_cycles = 50'000'000}, /*at=*/0);
  const auto& results = router.run_to_completion();

  ASSERT_TRUE(id.has_value());
  ASSERT_EQ(results.size(), 1u);
  // Both nodes idle: least-backlog picks the first eligible node.
  EXPECT_EQ(results[0].node, 0);
  EXPECT_FALSE(results[0].missed_deadline());

  const auto s = router.stats();
  EXPECT_EQ(s.offered, 1);
  EXPECT_EQ(s.placed, 1);
  EXPECT_EQ(s.rejected, 0);
  EXPECT_EQ(s.completed, 1);
  EXPECT_EQ(s.routed, 1u);
  EXPECT_EQ(s.misrouted, 0u);
}
