// The partitioning scheme's functional correctness: distributed execution
// across N chips must reproduce the single-chip reference bit-for-bit up
// to float reduction-order tolerance, for every chip count, both modes,
// both norm placements, and across multi-layer stacks with KV caches.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "model/reference_model.hpp"
#include "noc/topology.hpp"
#include "partition/distributed_block.hpp"
#include "partition/plan.hpp"
#include "partition/sharder.hpp"
#include "util/rng.hpp"

using namespace distmcu;
using model::KvCache;
using model::ReferenceModel;
using model::Tensor;
using model::TransformerConfig;
using model::Weights;
using partition::CommRecord;
using partition::DistributedBlock;
using partition::PartitionPlan;
using partition::ShardedWeights;

namespace {

TransformerConfig test_config(bool bert, bool pre_norm, int heads = 8) {
  TransformerConfig cfg =
      bert ? TransformerConfig::mobile_bert() : TransformerConfig::tiny_llama_42m();
  cfg.embed_dim = 64;
  cfg.ffn_dim = bert ? 64 : 128;
  cfg.num_heads = heads;
  cfg.head_dim = 8;
  cfg.num_layers = 2;
  cfg.ar_context = 24;
  cfg.prompt_len = 6;
  cfg.pre_norm = pre_norm;
  cfg.validate();
  return cfg;
}

Tensor random_input(int rows, int cols, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor x(rows, cols);
  x.random_init(rng, 1.0f);
  return x;
}

constexpr float kTol = 5e-4f;  // float reduction-order tolerance

}  // namespace

// Sweep: (chips, bert?, pre_norm?) — prompt mode, single block.
class DistributedEquivalence
    : public ::testing::TestWithParam<std::tuple<int, bool, bool>> {};

TEST_P(DistributedEquivalence, PromptBlockMatchesReference) {
  const auto [n_chips, bert, pre_norm] = GetParam();
  const auto cfg = test_config(bert, pre_norm);
  const Weights w(cfg, 101);
  const ReferenceModel ref(cfg, w);
  const auto plan = PartitionPlan::create(cfg, n_chips);
  const ShardedWeights shards(w, plan);
  const auto topo = noc::Topology::hierarchical(n_chips, 4);
  const DistributedBlock block(cfg, w, shards, plan, topo);

  const Tensor x = random_input(cfg.prompt_len, cfg.embed_dim, 55);
  const Tensor y_ref = ref.block_prompt(x, 0);
  const Tensor y_dist = block.forward(x, 0, nullptr, 0);
  EXPECT_LE(Tensor::max_abs_diff(y_ref, y_dist), kTol)
      << "chips=" << n_chips << " bert=" << bert << " pre_norm=" << pre_norm;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributedEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8), ::testing::Bool(),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, bool, bool>>& info) {
      return "chips" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_bert" : "_llama") +
             (std::get<2>(info.param) ? "_prenorm" : "_postnorm");
    });

TEST(DistributedBlockTest, MultiLayerStackMatchesReference) {
  const auto cfg = test_config(false, false);
  const Weights w(cfg, 7);
  const ReferenceModel ref(cfg, w);
  const auto plan = PartitionPlan::create(cfg, 4);
  const ShardedWeights shards(w, plan);
  const auto topo = noc::Topology::hierarchical(4, 4);
  const DistributedBlock block(cfg, w, shards, plan, topo);

  const Tensor x = random_input(cfg.prompt_len, cfg.embed_dim, 9);
  const Tensor y_ref = ref.forward_prompt(x);
  Tensor y = x;
  for (int l = 0; l < cfg.num_layers; ++l) y = block.forward(y, l, nullptr, 0);
  EXPECT_LE(Tensor::max_abs_diff(y_ref, y), 4 * kTol);
}

// Autoregressive decoding with per-chip KV cache slices must agree with
// the reference's full cache — the partitioned cache is the paper's
// mechanism for keeping attention entirely chip-local.
class DistributedArEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DistributedArEquivalence, TokenByTokenWithPartitionedKvCache) {
  const int n_chips = GetParam();
  const auto cfg = test_config(false, false);
  const Weights w(cfg, 31);
  const ReferenceModel ref(cfg, w);
  const auto plan = PartitionPlan::create(cfg, n_chips);
  const ShardedWeights shards(w, plan);
  const auto topo = noc::Topology::hierarchical(n_chips, 4);
  const DistributedBlock block(cfg, w, shards, plan, topo);

  auto ref_caches = ref.make_caches(cfg.ar_context);
  auto chip_caches = block.make_chip_caches(cfg.ar_context);

  const int steps = 5;
  for (int t = 0; t < steps; ++t) {
    const Tensor xt = random_input(1, cfg.embed_dim, 1000 + static_cast<std::uint64_t>(t));
    Tensor y_ref = xt, y_dist = xt;
    for (int l = 0; l < cfg.num_layers; ++l) {
      y_ref = ref.block_ar(y_ref, l, ref_caches, t);
      y_dist = block.forward(y_dist, l, &chip_caches, t);
    }
    ASSERT_LE(Tensor::max_abs_diff(y_ref, y_dist), 4 * kTol)
        << "chips=" << n_chips << " token=" << t;
  }
  // Per-chip caches hold disjoint slices summing to the full cache width.
  int total_dim = 0;
  for (int c = 0; c < n_chips; ++c) total_dim += chip_caches[static_cast<std::size_t>(c)][0].dim();
  EXPECT_EQ(total_dim, cfg.proj_dim());
}

INSTANTIATE_TEST_SUITE_P(ChipCounts, DistributedArEquivalence,
                         ::testing::Values(1, 2, 4, 8));

TEST(DistributedBlockTest, CommRecordCountsTwoSyncsPerBlock) {
  const auto cfg = test_config(false, false);
  const Weights w(cfg, 3);
  const auto plan = PartitionPlan::create(cfg, 8);
  const ShardedWeights shards(w, plan);
  const auto topo = noc::Topology::hierarchical(8, 4);
  const DistributedBlock block(cfg, w, shards, plan, topo);

  CommRecord comm;
  const Tensor x = random_input(cfg.prompt_len, cfg.embed_dim, 5);
  (void)block.forward(x, 0, nullptr, 0, &comm);
  EXPECT_EQ(comm.reduces, 2);
  EXPECT_EQ(comm.broadcasts, 2);
  EXPECT_EQ(comm.synchronizations(), PartitionPlan::kSyncsPerBlock);
  const std::uint64_t payload =
      static_cast<std::uint64_t>(cfg.prompt_len) * static_cast<std::uint64_t>(cfg.embed_dim);
  EXPECT_EQ(comm.payload_elems, payload);
  // 7 hops per reduce/broadcast for 8 chips; 4 collective phases total.
  EXPECT_EQ(comm.total_hop_elems, 7u * payload * 4u);
}

TEST(DistributedBlockTest, SingleChipHasNoCommunication) {
  const auto cfg = test_config(false, false);
  const Weights w(cfg, 3);
  const auto plan = PartitionPlan::create(cfg, 1);
  const ShardedWeights shards(w, plan);
  const auto topo = noc::Topology::hierarchical(1, 4);
  const DistributedBlock block(cfg, w, shards, plan, topo);
  CommRecord comm;
  const Tensor x = random_input(cfg.prompt_len, cfg.embed_dim, 5);
  (void)block.forward(x, 0, nullptr, 0, &comm);
  EXPECT_EQ(comm.total_hop_elems, 0u);
}

TEST(DistributedBlockTest, GroupSizeDoesNotChangeNumerics) {
  const auto cfg = test_config(false, false);
  const Weights w(cfg, 3);
  const auto plan = PartitionPlan::create(cfg, 8);
  const ShardedWeights shards(w, plan);
  const Tensor x = random_input(cfg.prompt_len, cfg.embed_dim, 5);

  const auto topo4 = noc::Topology::hierarchical(8, 4);
  const auto topo2 = noc::Topology::hierarchical(8, 2);
  const auto flat = noc::Topology::flat(8);
  const DistributedBlock b4(cfg, w, shards, plan, topo4);
  const DistributedBlock b2(cfg, w, shards, plan, topo2);
  const DistributedBlock bf(cfg, w, shards, plan, flat);
  const Tensor y4 = b4.forward(x, 0, nullptr, 0);
  const Tensor y2 = b2.forward(x, 0, nullptr, 0);
  const Tensor yf = bf.forward(x, 0, nullptr, 0);
  EXPECT_LE(Tensor::max_abs_diff(y4, y2), kTol);
  EXPECT_LE(Tensor::max_abs_diff(y4, yf), kTol);
}

TEST(DistributedBlockTest, UnevenHeadDistributionStillCorrect) {
  // 8 heads on 3 chips: 3+3+2 — remainder handling must not corrupt
  // results.
  const auto cfg = test_config(false, false);
  const Weights w(cfg, 77);
  const ReferenceModel ref(cfg, w);
  const auto plan = PartitionPlan::create(cfg, 3);
  const ShardedWeights shards(w, plan);
  const auto topo = noc::Topology::hierarchical(3, 4);
  const DistributedBlock block(cfg, w, shards, plan, topo);
  const Tensor x = random_input(cfg.prompt_len, cfg.embed_dim, 13);
  EXPECT_LE(Tensor::max_abs_diff(ref.block_prompt(x, 0), block.forward(x, 0, nullptr, 0)),
            kTol);
}

TEST(DistributedBlockTest, SixtyFourChipScaledModel) {
  // The scaling-study configuration: 64 heads on 64 chips, one head each.
  auto cfg = test_config(false, false, /*heads=*/64);
  const Weights w(cfg, 19);
  const ReferenceModel ref(cfg, w);
  const auto plan = PartitionPlan::create(cfg, 64);
  const ShardedWeights shards(w, plan);
  const auto topo = noc::Topology::hierarchical(64, 4);
  const DistributedBlock block(cfg, w, shards, plan, topo);
  const Tensor x = random_input(cfg.prompt_len, cfg.embed_dim, 23);
  EXPECT_LE(Tensor::max_abs_diff(ref.block_prompt(x, 0), block.forward(x, 0, nullptr, 0)),
            2 * kTol);
}
