#ifndef DISTMCU_ANALYSIS_DEPLOYMENT_ANALYZER_HPP
#define DISTMCU_ANALYSIS_DEPLOYMENT_ANALYZER_HPP

#include <string>
#include <string_view>
#include <vector>

#include "runtime/batched_engine.hpp"
#include "runtime/model_registry.hpp"
#include "util/check.hpp"

namespace distmcu::analysis {

/// Diagnostic severity. Only `error` makes a deployment unsound: strict
/// engine construction and the CI gate refuse on errors, while warnings
/// flag configurations that run but waste capacity (a permanently
/// stall-bound port, a quota a tenant can never occupy).
enum class Severity { note, warning, error };

[[nodiscard]] const char* severity_name(Severity s);

/// Stable diagnostic codes. Never renumber — tests, CI baselines, and
/// downstream tooling key on these strings.
inline constexpr const char* kCfgMalformed = "DMCU-CFG-000";
inline constexpr const char* kMemOverflow = "DMCU-MEM-001";
inline constexpr const char* kKvBudget = "DMCU-KV-002";
inline constexpr const char* kPortOversub = "DMCU-PORT-003";
inline constexpr const char* kSloInfeasible = "DMCU-SLO-004";
inline constexpr const char* kTraceCollision = "DMCU-TRC-005";
inline constexpr const char* kRequestShape = "DMCU-REQ-006";
inline constexpr const char* kPagedConfig = "DMCU-PAGE-007";

/// One structured finding: a stable code, the offending entity (a
/// deployment, an option field, a workload request), what is wrong, and
/// how to fix it.
struct Diagnostic {
  std::string code;
  Severity severity = Severity::error;
  std::string entity;
  std::string message;
  std::string hint;
};

/// One class of requests an operator intends to serve: shape, optional
/// relative deadline, and multiplicity. The analyzer checks each class
/// against the same admission guards and cost estimator the engine
/// applies at submit() — statically, before any step executes.
struct SloRequest {
  runtime::ModelId model = 0;
  int prompt_tokens = 0;
  int new_tokens = 0;
  /// Relative completion deadline (submit-to-finish), kNoDeadline for
  /// best-effort traffic.
  Cycles deadline_cycles = runtime::kNoDeadline;
  /// How many such requests the workload carries (reporting only; the
  /// static checks are per-class).
  int count = 1;
};

/// Optional workload description accompanying a deployment config.
struct Workload {
  std::vector<SloRequest> requests;
};

/// The analyzer's verdict: every diagnostic found, in a stable order
/// (config, trace, KV budget, memory, port, then per-request checks).
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] int errors() const;
  [[nodiscard]] int warnings() const;
  /// Sound deployment: no error-severity diagnostics (warnings allowed).
  [[nodiscard]] bool ok() const { return errors() == 0; }
  [[nodiscard]] bool has(std::string_view code) const;
  /// Distinct codes present, sorted (test + JSON surface).
  [[nodiscard]] std::vector<std::string> codes() const;
  /// Human-readable listing, one line per diagnostic:
  ///   error[DMCU-MEM-001] deployment 'x': <message> (hint: <hint>)
  [[nodiscard]] std::string to_text() const;
};

/// Thrown by BatchedEngine strict mode when the analyzer finds an
/// error-severity diagnostic: the structured report rides along so
/// callers can key on codes instead of parsing what().
class AnalysisError : public Error {
 public:
  AnalysisError(const std::string& what, AnalysisReport report)
      : Error(what), report_(std::move(report)) {}
  [[nodiscard]] const AnalysisReport& report() const { return report_; }

 private:
  AnalysisReport report_;
};

/// Static verifier for a full engine configuration: proves a
/// (ModelRegistry, MultiOptions[, Workload]) deployment sound — or
/// explains precisely why not — before a single engine step executes.
///
/// Checks, in order:
///  - DMCU-CFG-000  malformed registry/options (empty registry, null
///    session, non-positive arena, negative knobs)
///  - DMCU-TRC-005  deployment-name collisions (trace lanes, per-model
///    stats rows, and JSON keys are keyed by name)
///  - DMCU-KV-002   the budget policy cannot conserve slots: quota
///    oversubscription, a deployment with no derivable reserve, or a
///    cap below the quota (a phantom unmet-reserve that watermark
///    borrowing throttles on but no occupancy can ever repay — warning)
///  - DMCU-MEM-001  L2 overflow: a single-request plan the memory
///    planner rejects, a pooled-KV fit failure at the tenant's cap, or
///    the cross-tenant worst-case co-resident KV fill
///  - DMCU-PORT-003 steady-state L3 port over-subscription at full
///    occupancy (decode permanently stall-bound — warning)
///  - DMCU-SLO-004  a workload deadline below the request's own service
///    demand per the engine's cost estimator (fail-fast at analysis
///    time instead of submit time)
///  - DMCU-REQ-006  workload request shapes submit() would throw on
///    (unknown model, empty prompt, context/prefill overflow)
///  - DMCU-PAGE-007 paged-KV configuration faults: a negative page
///    size, prefix_sharing without paging (ignored flag — warning), or
///    a workload sequence whose full KV needs more pages than its
///    tenant's cap (the engine's submit-time livelock guard)
///
/// The memory, quota, and cap derivations mirror BatchedEngine
/// construction exactly: a report free of CFG/KV/MEM errors constructs,
/// and one carrying any of them throws — the equivalence the randomized
/// cross-check test pins.
class DeploymentAnalyzer {
 public:
  [[nodiscard]] static AnalysisReport analyze(
      const runtime::ModelRegistry& registry,
      const runtime::BatchedEngine::MultiOptions& opts,
      const Workload* workload = nullptr);
};

}  // namespace distmcu::analysis

#endif  // DISTMCU_ANALYSIS_DEPLOYMENT_ANALYZER_HPP
