#include "runtime/prefetch_pipeline.hpp"

#include <algorithm>

namespace distmcu::runtime {

PrefetchPipeline::PrefetchPipeline(double bandwidth_bytes_per_cycle,
                                   Cycles dma_setup)
    : port_("l3_prefetch", bandwidth_bytes_per_cycle, dma_setup) {}

PrefetchPipeline::Span PrefetchPipeline::advance(Cycles compute,
                                                 Bytes next_bytes) {
  Span span;
  span.begin = engine_.now();
  span.start = std::max(span.begin, weights_ready_);
  span.stall = span.start - span.begin;
  stall_total_ += span.stall;

  // The prefetch for the following span is programmed the moment this
  // span's compute starts; the FIFO port serializes it behind any DMA
  // still in flight.
  span.fetch_issue = span.start;
  if (next_bytes > 0) {
    span.fetch_ready = port_.transfer(span.start, next_bytes);
    weights_ready_ = span.fetch_ready;
  } else {
    span.fetch_ready = span.start;
    weights_ready_ = span.start;  // staged weights remain resident
  }

  span.end = span.start + compute;
  engine_.schedule_at(span.end, [] {});
  engine_.run();
  return span;
}

void PrefetchPipeline::advance_opaque(Cycles compute, Cycles port_cycles) {
  // The opaque span's own port traffic preempts an in-flight fetch for
  // exactly the cycles it occupies; with nothing in flight (or weights
  // already staged) the port is free and nothing moves.
  if (port_cycles > 0 && weights_ready_ > engine_.now()) {
    weights_ready_ += port_cycles;
  }
  engine_.schedule_at(engine_.now() + compute, [] {});
  engine_.run();
}

}  // namespace distmcu::runtime
