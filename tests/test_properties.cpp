// Cross-cutting property sweeps over the full pipeline: invariants that
// must hold for EVERY (model, mode, chip count) combination — breakdown
// accounting, traffic conservation, energy positivity, residency
// monotonicity, latency monotonicity, plan coverage — plus randomized
// configuration fuzzing of the planner.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>

#include "energy/energy_model.hpp"
#include "model/config.hpp"
#include "partition/memory_planner.hpp"
#include "partition/plan.hpp"
#include "runtime/timed_simulation.hpp"
#include "sim/trace_export.hpp"
#include "util/check.hpp"
#include "sim/tracer.hpp"
#include "util/rng.hpp"

using namespace distmcu;
using model::Mode;
using model::TransformerConfig;
using partition::PartitionPlan;
using partition::Residency;
using runtime::SystemConfig;
using runtime::TimedBlockSimulation;

namespace {

TransformerConfig config_by_name(const std::string& name) {
  if (name == "mobilebert") return TransformerConfig::mobile_bert();
  if (name == "scaled64") return TransformerConfig::tiny_llama_scaled(64);
  return TransformerConfig::tiny_llama_42m();
}

using FullSweepParam = std::tuple<std::string, int, int>;  // model, chips, mode

std::string sweep_name(const ::testing::TestParamInfo<FullSweepParam>& info) {
  return std::get<0>(info.param) + "_c" + std::to_string(std::get<1>(info.param)) +
         (std::get<2>(info.param) == 0 ? "_ar" : "_prompt");
}

}  // namespace

class FullPipelineSweep : public ::testing::TestWithParam<FullSweepParam> {
 protected:
  void SetUp() override {
    cfg_ = config_by_name(std::get<0>(GetParam()));
    chips_ = std::get<1>(GetParam());
    mode_ = std::get<2>(GetParam()) == 0 ? Mode::autoregressive : Mode::prompt;
    if (chips_ > cfg_.num_heads) GTEST_SKIP() << "more chips than heads";
  }
  TransformerConfig cfg_;
  int chips_ = 1;
  Mode mode_ = Mode::autoregressive;
};

TEST_P(FullPipelineSweep, BreakdownSumsToLatency) {
  const auto rep = TimedBlockSimulation(SystemConfig::siracusa_system())
                       .run(PartitionPlan::create(cfg_, chips_), mode_);
  EXPECT_EQ(rep.breakdown.total(), rep.block_cycles);
}

TEST_P(FullPipelineSweep, TrafficConservation) {
  const auto plan = PartitionPlan::create(cfg_, chips_);
  const auto rep = TimedBlockSimulation(SystemConfig::siracusa_system())
                       .run(plan, mode_);
  // C2C traffic = 4 collective phases x (N-1) hops x payload.
  const Bytes payload = plan.sync_payload_elems(rep.mode == Mode::prompt
                                                    ? cfg_.prompt_len
                                                    : 1);
  EXPECT_EQ(rep.traffic.c2c, 4u * static_cast<Bytes>(chips_ - 1) * payload);
  // L3 traffic: streamed -> at least all weight bytes; double-buffered ->
  // exactly the prefetch; fully resident -> zero.
  const Bytes block_weights = cfg_.block_weight_elems() * 2;
  switch (rep.residency) {
    case Residency::streamed:
      EXPECT_GE(rep.traffic.l3_l2, block_weights);
      EXPECT_EQ(rep.prefetch_bytes, 0u);
      break;
    case Residency::double_buffered:
      EXPECT_EQ(rep.traffic.l3_l2, rep.prefetch_bytes);
      EXPECT_EQ(rep.prefetch_bytes, block_weights);
      break;
    case Residency::fully_resident:
      EXPECT_EQ(rep.traffic.l3_l2, 0u);
      break;
  }
  // Every weight byte of the block flows L2->L1 at least once.
  EXPECT_GE(rep.traffic.l2_l1, block_weights);
}

TEST_P(FullPipelineSweep, EnergyComponentsPositiveAndSumExactly) {
  const auto rep = TimedBlockSimulation(SystemConfig::siracusa_system())
                       .run(PartitionPlan::create(cfg_, chips_), mode_);
  const energy::EnergyModel em(chip::ChipConfig::siracusa(), noc::LinkConfig{});
  const auto e = em.compute(rep);
  EXPECT_GT(e.core, 0.0);
  EXPECT_GE(e.l3, 0.0);
  EXPECT_GT(e.l2, 0.0);
  EXPECT_GE(e.c2c, 0.0);
  EXPECT_DOUBLE_EQ(e.total(), e.core + e.l3 + e.l2 + e.c2c);
}

TEST_P(FullPipelineSweep, TCompBoundedByLatency) {
  const auto rep = TimedBlockSimulation(SystemConfig::siracusa_system())
                       .run(PartitionPlan::create(cfg_, chips_), mode_);
  for (const Cycles t : rep.t_comp) EXPECT_LE(t, rep.block_cycles);
}

TEST_P(FullPipelineSweep, TraceExportIsValidAndCoversMakespan) {
  sim::Tracer tracer;
  const auto rep = TimedBlockSimulation(SystemConfig::siracusa_system())
                       .run(PartitionPlan::create(cfg_, chips_), mode_, &tracer);
  EXPECT_GE(tracer.makespan(), rep.breakdown.compute);
  std::ostringstream os;
  sim::write_chrome_trace(tracer, 500e6, os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("chip 0"), std::string::npos);
  // Balanced braces — cheap structural sanity without a JSON parser.
  long depth = 0;
  for (const char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, FullPipelineSweep,
    ::testing::Combine(::testing::Values("tinyllama", "mobilebert", "scaled64"),
                       ::testing::Values(1, 2, 4, 8, 16, 32, 64),
                       ::testing::Values(0, 1)),
    sweep_name);

// --- latency monotonicity across chip counts ------------------------------

class LatencyMonotone : public ::testing::TestWithParam<int> {};

TEST_P(LatencyMonotone, ScaledModelNeverSlowsDownWithMoreChips) {
  const int mode_i = GetParam();
  const auto cfg = TransformerConfig::tiny_llama_scaled(64);
  const TimedBlockSimulation sim(SystemConfig::siracusa_system());
  Cycles prev = ~0ull;
  for (int n : {1, 2, 4, 8, 16, 32}) {
    const auto rep = sim.run(PartitionPlan::create(cfg, n),
                             mode_i == 0 ? Mode::autoregressive : Mode::prompt);
    EXPECT_LT(rep.block_cycles, prev) << "n=" << n;
    prev = rep.block_cycles;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, LatencyMonotone, ::testing::Values(0, 1));

// --- residency monotonicity ------------------------------------------------

TEST(ResidencyMonotone, NeverDowngradesWithMoreChips) {
  // More chips -> smaller shards -> the residency regime can only improve.
  const partition::MemoryPlanner planner(chip::ChipConfig::siracusa(),
                                         partition::PrecisionConfig{});
  for (const char* name : {"tinyllama", "mobilebert", "scaled64"}) {
    const auto cfg = config_by_name(name);
    int best = 0;  // 0 streamed, 1 db, 2 resident
    for (int n = 1; n <= cfg.num_heads; n *= 2) {
      const auto mp = planner.plan(PartitionPlan::create(cfg, n), Mode::autoregressive);
      const int level = static_cast<int>(mp.residency);
      EXPECT_GE(level, best) << name << " n=" << n;
      best = std::max(best, level);
    }
  }
}

// --- randomized configuration fuzzing --------------------------------------

TEST(PlannerFuzz, RandomConfigsAlwaysSatisfyInvariants) {
  util::Rng rng(20250610);
  const partition::MemoryPlanner planner(chip::ChipConfig::siracusa(),
                                         partition::PrecisionConfig{});
  int planned = 0;
  for (int trial = 0; trial < 200; ++trial) {
    TransformerConfig cfg = TransformerConfig::tiny_llama_42m();
    cfg.name = "fuzz" + std::to_string(trial);
    cfg.num_heads = static_cast<int>(1 + rng.next_below(16));
    cfg.head_dim = static_cast<int>(2 + 2 * rng.next_below(32));
    cfg.embed_dim = static_cast<int>(16 * (1 + rng.next_below(32)));
    cfg.ffn_dim = static_cast<int>(16 * (1 + rng.next_below(128)));
    cfg.num_layers = static_cast<int>(1 + rng.next_below(12));
    cfg.ar_context = static_cast<int>(8 * (1 + rng.next_below(32)));
    cfg.prompt_len = static_cast<int>(1 + rng.next_below(64));
    cfg.ffn = rng.next_below(2) == 0 ? model::FfnKind::mlp : model::FfnKind::swiglu;
    cfg.validate();
    const int max_chips = std::min(cfg.num_heads, cfg.ffn_dim);
    const int chips = static_cast<int>(1 + rng.next_below(static_cast<std::uint64_t>(max_chips)));
    const auto plan = PartitionPlan::create(cfg, chips);  // validates internally

    // Shards tile the weights exactly.
    std::uint64_t sum = 0;
    for (int c = 0; c < chips; ++c) sum += plan.chip_block_weight_elems(c);
    ASSERT_EQ(sum, cfg.block_weight_elems()) << cfg.name;

    // The planner either decides a regime or reports a clean PlanError.
    try {
      const auto mp = planner.plan(plan, Mode::autoregressive);
      ASSERT_LE(mp.need_streamed(), mp.l2_usable) << cfg.name;
      if (mp.residency == Residency::fully_resident) {
        ASSERT_LE(mp.need_fully_resident(), mp.l2_usable);
      }
      ++planned;
    } catch (const PlanError&) {
      // Acceptable: KV/activations alone exceed L2 for this config.
    }
  }
  // The space must not be degenerate: most configs should plan fine.
  EXPECT_GT(planned, 150);
}

TEST(PlannerFuzz, TimedSimulationSurvivesRandomSmallConfigs) {
  util::Rng rng(777);
  const TimedBlockSimulation sim(SystemConfig::siracusa_system());
  for (int trial = 0; trial < 50; ++trial) {
    TransformerConfig cfg = TransformerConfig::tiny_llama_42m();
    cfg.num_heads = static_cast<int>(1 + rng.next_below(8));
    cfg.head_dim = static_cast<int>(2 + 2 * rng.next_below(16));
    cfg.embed_dim = static_cast<int>(16 * (1 + rng.next_below(16)));
    cfg.ffn_dim = static_cast<int>(16 * (1 + rng.next_below(32)));
    cfg.prompt_len = static_cast<int>(1 + rng.next_below(32));
    cfg.validate();
    const int chips = static_cast<int>(1 + rng.next_below(static_cast<std::uint64_t>(cfg.num_heads)));
    const auto rep = sim.run(PartitionPlan::create(cfg, chips), Mode::prompt);
    ASSERT_EQ(rep.breakdown.total(), rep.block_cycles) << "trial " << trial;
    ASSERT_GT(rep.block_cycles, 0u);
  }
}
