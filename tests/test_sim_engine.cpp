// Unit tests for the event-driven engine: ordering, determinism,
// same-cycle FIFO semantics, and run_until behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "util/check.hpp"

using distmcu::Cycles;
using distmcu::sim::Engine;

TEST(Engine, StartsAtCycleZeroAndIdle) {
  Engine e;
  EXPECT_EQ(e.now(), 0u);
  EXPECT_TRUE(e.idle());
  EXPECT_EQ(e.run(), 0u);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, SameCycleEventsFireFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, CallbackMaySchedule) {
  Engine e;
  Cycles fired_at = 0;
  e.schedule_at(10, [&] {
    e.schedule_in(15, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_EQ(fired_at, 25u);
}

TEST(Engine, ChainOfEventsAdvancesTime) {
  Engine e;
  int count = 0;
  std::function<void()> step = [&] {
    if (++count < 100) e.schedule_in(7, step);
  };
  e.schedule_at(0, step);
  e.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(e.now(), 99u * 7u);
  EXPECT_EQ(e.events_executed(), 100u);
}

TEST(Engine, SchedulingInPastThrows) {
  Engine e;
  e.schedule_at(50, [] {});
  e.run();
  EXPECT_EQ(e.now(), 50u);
  EXPECT_THROW(e.schedule_at(10, [] {}), distmcu::Error);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_at(10, [&] { ++fired; });
  e.schedule_at(20, [&] { ++fired; });
  e.schedule_at(30, [&] { ++fired; });
  e.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), 20u);
  EXPECT_FALSE(e.idle());
  e.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RunUntilAdvancesTimeWhenQueueDrains) {
  Engine e;
  e.run_until(1000);
  EXPECT_EQ(e.now(), 1000u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto simulate = [] {
    Engine e;
    std::vector<Cycles> log;
    for (Cycles t : {40u, 10u, 10u, 25u}) {
      e.schedule_at(t, [&log, &e] { log.push_back(e.now()); });
    }
    e.run();
    return log;
  };
  EXPECT_EQ(simulate(), simulate());
}
