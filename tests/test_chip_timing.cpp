// Unit and property tests for the cluster kernel-timing model: scaling
// behaviour, overhead-driven utilization loss (the paper's sub-linear
// kernel scaling), and traffic accounting.
#include <gtest/gtest.h>

#include "chip/chip_config.hpp"
#include "chip/kernel_timing.hpp"
#include "util/check.hpp"

using namespace distmcu;
using chip::ChipConfig;
using chip::KernelCost;
using chip::KernelTiming;
using chip::Precision;
using chip::TimingConfig;

namespace {
KernelTiming default_timing() { return KernelTiming(ChipConfig::siracusa().timing); }
}  // namespace

TEST(ChipConfig, SiracusaMatchesPaperConstants) {
  const ChipConfig c = ChipConfig::siracusa();
  EXPECT_EQ(c.timing.cores, 8);
  EXPECT_DOUBLE_EQ(c.freq_hz, 500e6);
  EXPECT_EQ(c.l1_size, 256u * 1024);
  EXPECT_EQ(c.l2_size, 2u * 1024 * 1024);
  EXPECT_DOUBLE_EQ(c.core_power_mw, 13.0);
  EXPECT_DOUBLE_EQ(c.active_power_mw(), 104.0);
  EXPECT_DOUBLE_EQ(c.e_l3_pj_per_byte, 100.0);
  EXPECT_DOUBLE_EQ(c.e_l2_pj_per_byte, 2.0);
  EXPECT_LT(c.l2_usable(), c.l2_size);
}

TEST(ChipConfig, L3DmaCyclesChargesSetupPlusBandwidth) {
  // The single source of truth for off-chip transfer cost: fixed DMA
  // setup plus the transfer at the port bandwidth, rounded up. KV
  // checkpoints and resume restores must route through this (a bare
  // bytes->cycles cast silently dropped the setup and the bandwidth).
  ChipConfig c = ChipConfig::siracusa();
  ASSERT_DOUBLE_EQ(c.bw_l3_l2, 1.0);
  ASSERT_EQ(c.dma_setup_l3, 64u);
  EXPECT_EQ(c.l3_dma_cycles(1), 64u + 1u);
  EXPECT_EQ(c.l3_dma_cycles(1000), 64u + 1000u);
  c.bw_l3_l2 = 2.0;
  EXPECT_EQ(c.l3_dma_cycles(1000), 64u + 500u);
  EXPECT_EQ(c.l3_dma_cycles(999), 64u + 500u);  // partial beat rounds up
  c.dma_setup_l3 = 0;
  EXPECT_EQ(c.l3_dma_cycles(10), 5u);
}

TEST(ChipConfig, PrecisionBytes) {
  EXPECT_EQ(chip::precision_bytes(Precision::int8), 1u);
  EXPECT_EQ(chip::precision_bytes(Precision::int16), 2u);
  EXPECT_EQ(chip::precision_bytes(Precision::fp32), 4u);
  EXPECT_STREQ(chip::precision_name(Precision::int16), "int16");
}

TEST(KernelTiming, GemmComputeScalesWithMacs) {
  const auto t = default_timing();
  const auto small = t.gemm(64, 64, 64, Precision::int16, 2, 1);
  const auto big = t.gemm(64, 64, 512, Precision::int16, 2, 1);
  // 8x the MACs (K scaled 8x) -> compute should grow close to 8x (same
  // row overheads).
  const double ratio = static_cast<double>(big.compute_cycles) /
                       static_cast<double>(small.compute_cycles);
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 8.5);
}

TEST(KernelTiming, Int8TwiceAsFastAsInt16) {
  const auto t = default_timing();
  const auto i8 = t.gemm(128, 512, 512, Precision::int8, 1, 1);
  const auto i16 = t.gemm(128, 512, 512, Precision::int16, 2, 1);
  const double ratio = static_cast<double>(i16.compute_cycles) /
                       static_cast<double>(i8.compute_cycles);
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.1);
}

TEST(KernelTiming, GemvParallelizesOverOutputChannels) {
  // M=1: work must spread across cores via the N dimension, so an
  // 8-core cluster should run the same GEMV ~8x faster than 1 core.
  TimingConfig one_core = ChipConfig::siracusa().timing;
  one_core.cores = 1;
  const auto single = KernelTiming(one_core).gemm(1, 512, 512, Precision::int16, 2, 1);
  const auto octa = default_timing().gemm(1, 512, 512, Precision::int16, 2, 1);
  const double speedup = static_cast<double>(single.compute_cycles) /
                         static_cast<double>(octa.compute_cycles);
  EXPECT_GT(speedup, 7.0);
  EXPECT_LE(speedup, 8.5);
}

TEST(KernelTiming, SmallKernelsLoseUtilization) {
  const auto t = default_timing();
  // The paper: "the runtime of a GEMM kernel does not scale down
  // linearly as the overall kernel size is reduced". Halving N eight
  // times must yield less than 8x speedup once overheads dominate.
  const auto full = t.gemm(16, 512, 512, Precision::int16, 2, 1);
  const auto eighth = t.gemm(16, 64, 512, Precision::int16, 2, 1);
  const double speedup =
      static_cast<double>(full.compute_cycles + full.overhead_cycles) /
      static_cast<double>(eighth.compute_cycles + eighth.overhead_cycles);
  EXPECT_LT(speedup, 8.0);
  EXPECT_GT(speedup, 2.0);
}

TEST(KernelTiming, TrafficCountsOperands) {
  const auto t = default_timing();
  const auto c = t.gemm(4, 16, 32, Precision::int16, 2, 1);
  // weights: 16*32*2 = 1024, input: 4*32*1 = 128, output: 4*16*1 = 64.
  EXPECT_EQ(c.l1_in_bytes, 1024u + 128u);
  EXPECT_EQ(c.l1_out_bytes, 64u);
  EXPECT_EQ(c.l1_bytes(), 1216u);
}

TEST(KernelTiming, RejectsNonPositiveDims) {
  const auto t = default_timing();
  EXPECT_THROW((void)t.gemm(0, 1, 1, Precision::int8, 1, 1), Error);
  EXPECT_THROW((void)t.softmax(1, 0, 1), Error);
  EXPECT_THROW((void)t.norm(-1, 4, 1), Error);
  EXPECT_THROW((void)t.elementwise(0, 1), Error);
}

TEST(KernelTiming, SoftmaxScalesWithRows) {
  const auto t = default_timing();
  const auto one = t.softmax(8, 128, 1);
  const auto four = t.softmax(32, 128, 1);
  const double ratio =
      static_cast<double>(four.compute_cycles) / static_cast<double>(one.compute_cycles);
  EXPECT_NEAR(ratio, 4.0, 0.5);
}

TEST(KernelTiming, NormAndElementwiseHaveOverheads) {
  const auto t = default_timing();
  const auto n = t.norm(1, 64, 1);
  const auto e = t.elementwise(512, 1);
  EXPECT_GT(n.overhead_cycles, 0u);
  EXPECT_GT(e.overhead_cycles, 0u);
  // For tiny workloads the fixed overhead dominates compute.
  EXPECT_GT(n.overhead_cycles, n.compute_cycles);
  EXPECT_GT(e.overhead_cycles, e.compute_cycles);
}

TEST(KernelTiming, AccumulateCheaperThanKernelLaunch) {
  const auto t = default_timing();
  const auto acc = t.accumulate(512, 1);
  EXPECT_LT(acc.overhead_cycles, t.config().kernel_call_overhead);
}

TEST(KernelTiming, RopeScalesWithElements) {
  const auto t = default_timing();
  const auto small = t.rope(8, 64, 1);
  const auto large = t.rope(8, 512, 1);
  EXPECT_GT(large.compute_cycles, small.compute_cycles * 6);
}

// Property sweep: compute cycles are monotone in each GEMM dimension.
class GemmMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(GemmMonotoneTest, MonotoneInEachDimension) {
  const auto t = default_timing();
  const int d = GetParam();
  const auto base = t.gemm(d, d, d, Precision::int16, 2, 1);
  const auto more_m = t.gemm(2 * d, d, d, Precision::int16, 2, 1);
  const auto more_n = t.gemm(d, 2 * d, d, Precision::int16, 2, 1);
  const auto more_k = t.gemm(d, d, 2 * d, Precision::int16, 2, 1);
  EXPECT_GE(more_m.compute_cycles, base.compute_cycles);
  EXPECT_GE(more_n.compute_cycles, base.compute_cycles);
  EXPECT_GE(more_k.compute_cycles, base.compute_cycles);
  EXPECT_GT(more_k.l1_in_bytes, base.l1_in_bytes);
}

INSTANTIATE_TEST_SUITE_P(Dims, GemmMonotoneTest, ::testing::Values(8, 16, 64, 128, 256));
