#include "util/check.hpp"

namespace distmcu::util::detail {

void throw_check_failure(const std::string& msg) { throw Error(msg); }

void throw_check_plan_failure(const std::string& msg) {
  throw PlanError(msg);
}

}  // namespace distmcu::util::detail
