#include "mem/arena.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace distmcu::mem {

Arena::Arena(std::string name, Bytes capacity, Bytes alignment)
    : name_(std::move(name)), capacity_(capacity), alignment_(alignment) {
  DISTMCU_CHECK(alignment_ > 0 && (alignment_ & (alignment_ - 1)) == 0,
              "Arena alignment must be a power of two");
}

Bytes Arena::aligned(Bytes size) const { return align_up(size, alignment_); }

bool Arena::try_allocate(const std::string& name, Bytes size) {
  const Bytes padded = aligned(size);
  // Compared against the remaining headroom (not `used_ + padded`) so a
  // near-max `size` cannot wrap the sum and sneak past the capacity check.
  if (padded > capacity_ - used_) return false;
  allocations_.push_back(Allocation{name, used_, size});
  used_ += padded;
  if (used_ > high_water_) high_water_ = used_;
  return true;
}

Allocation Arena::allocate(const std::string& name, Bytes size) {
  DISTMCU_CHECK_PLAN(try_allocate(name, size),
                   "Arena '" + name_ + "': allocation '" + name + "' of " +
                       util::format_bytes(size) + " exceeds capacity (" +
                       util::format_bytes(remaining()) + " free of " +
                       util::format_bytes(capacity_) + ")");
  return allocations_.back();
}

void Arena::reset() {
  used_ = 0;
  allocations_.clear();
}

std::string Arena::memory_map() const {
  std::ostringstream os;
  os << name_ << ": " << util::format_bytes(used_) << " / "
     << util::format_bytes(capacity_) << " used\n";
  for (const auto& a : allocations_) {
    os << "  [0x" << std::hex << a.offset << std::dec << "] " << a.name << " ("
       << util::format_bytes(a.size) << ")\n";
  }
  return os.str();
}

SlotArena::SlotArena(Arena& arena, const std::string& name, int n_slots,
                     Bytes slot_bytes)
    : name_(name), slot_bytes_(slot_bytes) {
  DISTMCU_CHECK(n_slots > 0, "SlotArena: slot count must be positive");
  DISTMCU_CHECK(slot_bytes > 0, "SlotArena: slot size must be positive");
  owner_.assign(static_cast<std::size_t>(n_slots), kFreeSlot);
  for (int i = 0; i < n_slots; ++i) {
    (void)arena.allocate(name + "." + std::to_string(i), slot_bytes);
  }
}

std::optional<int> SlotArena::acquire(int tenant) {
  DISTMCU_CHECK(tenant >= 0, "SlotArena '" + name_ + "': negative tenant");
  for (std::size_t i = 0; i < owner_.size(); ++i) {
    if (owner_[i] == kFreeSlot) {
      owner_[i] = tenant;
      ++n_in_use_;
      const auto t = static_cast<std::size_t>(tenant);
      if (t >= tenant_in_use_.size()) {
        tenant_in_use_.resize(t + 1, 0);
        tenant_high_water_.resize(t + 1, 0);
      }
      ++tenant_in_use_[t];
      tenant_high_water_[t] = std::max(tenant_high_water_[t], tenant_in_use_[t]);
      return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

void SlotArena::release(int slot) {
  DISTMCU_CHECK(slot >= 0 && slot < capacity(),
              "SlotArena '" + name_ + "': release of out-of-range slot");
  const int tenant = owner_[static_cast<std::size_t>(slot)];
  DISTMCU_CHECK(tenant != kFreeSlot,
              "SlotArena '" + name_ + "': double release of slot " +
                  std::to_string(slot));
  owner_[static_cast<std::size_t>(slot)] = kFreeSlot;
  --n_in_use_;
  --tenant_in_use_[static_cast<std::size_t>(tenant)];
}

void SlotArena::release(int slot, int tenant) {
  DISTMCU_CHECK(slot >= 0 && slot < capacity(),
              "SlotArena '" + name_ + "': release of out-of-range slot");
  DISTMCU_CHECK(owner_[static_cast<std::size_t>(slot)] == tenant,
              "SlotArena '" + name_ + "': tenant " + std::to_string(tenant) +
                  " released slot " + std::to_string(slot) + " owned by " +
                  std::to_string(owner_[static_cast<std::size_t>(slot)]) +
                  " (cross-tenant KV leak)");
  release(slot);
}

void SlotArena::reclaim(int slot, int tenant) {
  release(slot, tenant);
  const auto t = static_cast<std::size_t>(tenant);
  if (t >= tenant_reclaimed_.size()) tenant_reclaimed_.resize(t + 1, 0);
  ++tenant_reclaimed_[t];
  ++total_reclaimed_;
}

int SlotArena::owner(int slot) const {
  DISTMCU_CHECK(slot >= 0 && slot < capacity(),
              "SlotArena '" + name_ + "': owner of out-of-range slot");
  return owner_[static_cast<std::size_t>(slot)];
}

int SlotArena::tenant_in_use(int tenant) const {
  const auto t = static_cast<std::size_t>(tenant);
  return t < tenant_in_use_.size() ? tenant_in_use_[t] : 0;
}

int SlotArena::tenant_high_water(int tenant) const {
  const auto t = static_cast<std::size_t>(tenant);
  return t < tenant_high_water_.size() ? tenant_high_water_[t] : 0;
}

int SlotArena::tenant_reclaimed(int tenant) const {
  const auto t = static_cast<std::size_t>(tenant);
  return t < tenant_reclaimed_.size() ? tenant_reclaimed_[t] : 0;
}

}  // namespace distmcu::mem
