#ifndef DISTMCU_UTIL_CHECK_HPP
#define DISTMCU_UTIL_CHECK_HPP

#include <stdexcept>
#include <string>

namespace distmcu {

/// Base error type for all library failures (invalid configurations,
/// planner infeasibility, numeric misuse). Follows the Core Guidelines
/// preference for exceptions over error codes at construction/validation
/// boundaries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a requested configuration cannot be deployed (e.g. a tensor
/// does not fit in on-chip memory and no streaming fallback is allowed).
class PlanError : public Error {
 public:
  explicit PlanError(const std::string& what) : Error(what) {}
};

namespace util {

/// Precondition check: throws distmcu::Error with `msg` when `cond` is
/// false. Used for user-facing API contract violations (not for internal
/// logic bugs, which use DISTMCU_CHECK with an invariant message).
///
/// Prefer the DISTMCU_CHECK macro below on hot paths: this function form
/// evaluates (and allocates) the message expression even when the
/// condition holds.
inline void check(bool cond, const std::string& msg) {
  if (!cond) throw Error(msg);
}

/// Planner-specific check; throws PlanError. Same caveat as check() —
/// hot paths should use DISTMCU_CHECK_PLAN.
inline void check_plan(bool cond, const std::string& msg) {
  if (!cond) throw PlanError(msg);
}

namespace detail {
/// Out-of-line cold paths: keep the throw (and the message
/// construction, which happens in the caller only on the failing
/// branch) off the hot instruction stream.
[[noreturn]] void throw_check_failure(const std::string& msg);
[[noreturn]] void throw_check_plan_failure(const std::string& msg);
}  // namespace detail

}  // namespace util
}  // namespace distmcu

/// Lazy precondition check: the message expression after the condition
/// is evaluated ONLY when the condition fails, so admission/step paths
/// pay no string concatenation on success. Throws distmcu::Error.
/// Variadic so message expressions with top-level commas still work.
#define DISTMCU_CHECK(cond, ...)                               \
  do {                                                         \
    if (!(cond)) [[unlikely]] {                                \
      ::distmcu::util::detail::throw_check_failure(__VA_ARGS__); \
    }                                                          \
  } while (false)

/// Lazy planner check; throws distmcu::PlanError.
#define DISTMCU_CHECK_PLAN(cond, ...)                               \
  do {                                                              \
    if (!(cond)) [[unlikely]] {                                     \
      ::distmcu::util::detail::throw_check_plan_failure(__VA_ARGS__); \
    }                                                               \
  } while (false)

#endif  // DISTMCU_UTIL_CHECK_HPP
