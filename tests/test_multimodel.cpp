// Multi-model serving invariants: one BatchedEngine multiplexing
// several deployed (model, chip-count) sessions over a shared KV arena
// must (a) keep per-model attribution EXACT — summed over models,
// attributed cycles/energy/tokens equal the engine totals, and each
// model's counters equal the sum over its own finished requests —
// (b) never leak a KV slot across models under the static-split budget
// policy, whatever the admission scheduler, (c) keep every request's
// token stream bit-identical to a dedicated InferenceSession::generate
// call on its own model, and (d) reduce exactly to the single-model
// engine when the registry holds one deployment.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "invariant_env.hpp"
#include "runtime/batched_engine.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/kv_budget.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/scheduler.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

using namespace distmcu;
using runtime::BatchedEngine;
using runtime::InferenceSession;
using runtime::KvBudget;
using runtime::kNoDeadline;
using runtime::ModelId;
using runtime::ModelRegistry;
using runtime::RequestId;
using runtime::RequestResult;
using runtime::SchedulePolicy;
using runtime::ServingStats;
using runtime::SloSpec;

namespace {

/// Decoder-style generator (TinyLlama shape, cut down) — full-width on
/// 4 chips so decode weights stream from L3 and the per-model prefetch
/// channels carry real traffic.
model::TransformerConfig gen_cfg() {
  model::TransformerConfig cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.name = "gen";
  cfg.embed_dim = 32;
  cfg.ffn_dim = 64;
  cfg.num_heads = 4;
  cfg.head_dim = 8;
  cfg.num_layers = 2;
  cfg.vocab_size = 100;
  cfg.ar_context = 24;
  cfg.prompt_len = 6;
  cfg.validate();
  return cfg;
}

/// Encoder-style classifier (MobileBERT shape, cut down): layernorm,
/// bidirectional mask, no RoPE — served as prefill-only requests.
model::TransformerConfig enc_cfg() {
  model::TransformerConfig cfg;
  cfg.name = "enc";
  cfg.embed_dim = 32;
  cfg.ffn_dim = 32;
  cfg.num_heads = 4;
  cfg.head_dim = 8;
  cfg.num_layers = 2;
  cfg.vocab_size = 80;
  cfg.ar_context = 12;
  cfg.prompt_len = 8;
  cfg.norm = model::NormKind::layernorm;
  cfg.pos = model::PosEmbed::none;
  cfg.mask = model::MaskKind::bidirectional;
  cfg.validate();
  return cfg;
}

struct Sessions {
  InferenceSession gen{gen_cfg(), 4};
  InferenceSession enc{enc_cfg(), 2};
  Cycles gen_ar_stream = 0;
  Cycles enc_ar_stream = 0;

  Sessions() {
    gen_ar_stream = gen.run_block(model::Mode::autoregressive)
                        .report.breakdown.dma_l3_l2 *
                    static_cast<Cycles>(gen.config().num_layers);
    enc_ar_stream = enc.run_block(model::Mode::autoregressive)
                        .report.breakdown.dma_l3_l2 *
                    static_cast<Cycles>(enc.config().num_layers);
  }
};

Sessions& sessions() {
  static auto* s = new Sessions();
  return *s;
}

struct Job {
  ModelId model = 0;
  std::vector<int> prompt;
  int new_tokens = 0;
  int submit_after_step = 0;
  SloSpec slo;
  bool attempted = false;
  std::optional<RequestId> id;
};

/// Randomized mixed workload: generator jobs decode a few tokens,
/// encoder jobs are prefill-only (new_tokens == 0) half of the time.
std::vector<Job> make_jobs(std::uint64_t seed) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ull + 11);
  const auto& s = sessions();
  std::vector<Job> jobs;
  const int n_jobs = 4 + static_cast<int>(rng.next_below(5));
  for (int j = 0; j < n_jobs; ++j) {
    Job job;
    job.model = static_cast<ModelId>(rng.next_below(2));
    const auto& cfg =
        job.model == 0 ? s.gen.config() : s.enc.config();
    const int plen = 1 + static_cast<int>(rng.next_below(
                             static_cast<std::uint64_t>(cfg.prompt_len)));
    for (int t = 0; t < plen; ++t) {
      job.prompt.push_back(static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(cfg.vocab_size))));
    }
    const int room = cfg.ar_context - plen;
    if (job.model == 1 && rng.next_below(2) == 0) {
      job.new_tokens = 0;  // encoder classification
    } else {
      job.new_tokens = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(std::min(room, 5)) + 1));
    }
    job.submit_after_step = static_cast<int>(rng.next_below(5));
    job.slo.priority = static_cast<int>(rng.next_below(3));
    if (rng.next_below(3) != 0) {
      job.slo.deadline_cycles = (1 + rng.next_below(48)) * 1'000'000;
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

ModelRegistry make_registry(int gen_chunk, int enc_chunk, int gen_quota = 0,
                            int enc_quota = 0) {
  ModelRegistry reg;
  (void)reg.add(sessions().gen, "gen", gen_chunk, gen_quota);
  (void)reg.add(sessions().enc, "enc", enc_chunk, enc_quota);
  return reg;
}

/// Drive a workload with mid-serving arrivals; optionally probe a
/// per-step invariant between boundaries.
template <typename StepProbe>
std::vector<RequestResult> run_jobs(std::vector<Job>& jobs,
                                    BatchedEngine& engine,
                                    const StepProbe& probe) {
  int step_idx = 0;
  for (;;) {
    bool submitted_any = false;
    for (auto& job : jobs) {
      if (job.attempted || job.submit_after_step > step_idx) continue;
      job.id = engine.submit(job.model, job.prompt, job.new_tokens, job.slo);
      job.attempted = true;
      submitted_any = true;
    }
    const bool pending_arrivals = std::any_of(
        jobs.begin(), jobs.end(), [](const Job& j) { return !j.attempted; });
    const bool work = engine.step();
    probe(engine);
    ++step_idx;
    if (!work && !pending_arrivals && !submitted_any) break;
    if (step_idx > 500) {
      ADD_FAILURE() << "workload did not drain";
      break;
    }
  }
  return engine.finished();
}

std::vector<RequestResult> run_jobs(std::vector<Job>& jobs,
                                    BatchedEngine& engine) {
  return run_jobs(jobs, engine, [](const BatchedEngine&) {});
}

/// The per-model exact-attribution invariants, checked after a drain.
void check_per_model_attribution(const BatchedEngine& engine,
                                 const std::vector<RequestResult>& results) {
  const ServingStats& stats = engine.stats();
  ASSERT_EQ(static_cast<int>(stats.per_model.size()), engine.model_count());

  Cycles cycles_sum = 0;
  double energy_sum = 0.0;
  int generated_sum = 0;
  int completed_sum = 0;
  for (const auto& pm : stats.per_model) {
    cycles_sum += pm.attributed_cycles;
    energy_sum += pm.attributed_energy_mj;
    generated_sum += pm.total_generated;
    completed_sum += pm.completed;
  }
  // Sum of per-model cycles/energy equals the engine totals, exactly
  // for the integer cycles.
  EXPECT_EQ(cycles_sum, stats.total_cycles);
  EXPECT_NEAR(energy_sum, stats.total_energy_mj,
              1e-9 * std::max(1.0, energy_sum));
  EXPECT_EQ(generated_sum, stats.total_generated);
  EXPECT_EQ(completed_sum, stats.completed);

  // Each model's counters equal the sums over its own requests.
  for (ModelId m = 0; m < engine.model_count(); ++m) {
    const auto& pm = stats.per_model[static_cast<std::size_t>(m)];
    Cycles req_cycles = 0;
    double req_energy = 0.0;
    int req_generated = 0;
    int req_completed = 0;
    int req_slo = 0;
    int req_misses = 0;
    for (const auto& r : results) {
      if (r.model != m) continue;
      req_cycles += r.gen.total_cycles;
      req_energy += r.gen.total_energy_mj;
      req_generated += r.gen.generated;
      ++req_completed;
      if (r.deadline_at != kNoDeadline) {
        ++req_slo;
        if (r.missed_deadline()) ++req_misses;
      }
    }
    EXPECT_EQ(pm.attributed_cycles, req_cycles) << "model " << m;
    EXPECT_NEAR(pm.attributed_energy_mj, req_energy,
                1e-9 * std::max(1.0, req_energy));
    EXPECT_EQ(pm.total_generated, req_generated);
    EXPECT_EQ(pm.completed, req_completed);
    EXPECT_EQ(pm.slo_requests, req_slo);
    EXPECT_EQ(pm.deadline_misses, req_misses);
  }

  // Per-model decode-stream conservation: each model's stall + hidden
  // equals its decode phases times its own serial stream.
  const auto& s = sessions();
  const Cycles streams[] = {s.gen_ar_stream, s.enc_ar_stream};
  for (ModelId m = 0; m < engine.model_count(); ++m) {
    const auto& pm = stats.per_model[static_cast<std::size_t>(m)];
    EXPECT_EQ(pm.prefetch_stall_cycles + pm.stream_cycles_hidden,
              static_cast<Cycles>(pm.decode_steps) *
                  streams[static_cast<std::size_t>(m)])
        << "model " << m;
  }
}

}  // namespace

TEST(MultiModel, SingleDeploymentRegistryBitExactWithLegacyEngine) {
  // The multi-model engine with one registry entry is the single-model
  // engine: identical stats, stamps, and token streams.
  const auto& s = sessions();
  for (const int chunk : {0, 2}) {
    ModelRegistry reg;
    (void)reg.add(s.gen, "gen", chunk, /*kv_quota=*/2, /*max_resident=*/2);
    BatchedEngine multi(reg, {.total_kv_slots = 2, .max_pending = 8});
    BatchedEngine legacy(s.gen, {.max_batch = 2,
                                 .max_pending = 8,
                                 .prefill_chunk_tokens = chunk});
    for (auto* engine : {&multi, &legacy}) {
      for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(
            engine->submit({1 + i, 7, 3 + i}, 4 + i).has_value());
      }
    }
    const auto rm = multi.run_to_completion();
    const auto rl = legacy.run_to_completion();
    ASSERT_EQ(rm.size(), rl.size());
    EXPECT_EQ(multi.stats().total_cycles, legacy.stats().total_cycles);
    EXPECT_EQ(multi.stats().prefetch_stall_cycles,
              legacy.stats().prefetch_stall_cycles);
    EXPECT_EQ(multi.stats().prefill_stream_cycles,
              legacy.stats().prefill_stream_cycles);
    for (std::size_t i = 0; i < rm.size(); ++i) {
      EXPECT_EQ(rm[i].gen.tokens, rl[i].gen.tokens);
      EXPECT_EQ(rm[i].gen.total_cycles, rl[i].gen.total_cycles);
      EXPECT_EQ(rm[i].admitted_at, rl[i].admitted_at);
      EXPECT_EQ(rm[i].finished_at, rl[i].finished_at);
      EXPECT_EQ(rm[i].model, 0);
    }
  }
}

TEST(MultiModel, PerModelAttributionExactUnderEveryScheduler) {
  // Randomized mixed workloads across chunked/serial modes and all
  // three admission policies: attribution partitions exactly. Seed
  // count scales with DISTMCU_INVARIANT_SEEDS (nightly sweep).
  const std::uint64_t kSeeds = distmcu::testing::invariant_seed_count(12);
  distmcu::testing::SeedReproLog repro(
      "./test_multimodel", "MultiModel.PerModelAttributionExactUnderEveryScheduler");
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    repro.begin();
    for (const auto policy : {SchedulePolicy::fifo, SchedulePolicy::priority,
                              SchedulePolicy::edf}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " policy " +
                   runtime::policy_name(policy));
      const int gen_chunk = seed % 2 == 0 ? 2 : 0;
      const int enc_chunk = seed % 3 == 0 ? 4 : 0;
      auto reg = make_registry(gen_chunk, enc_chunk);
      BatchedEngine engine(reg, {.total_kv_slots = 4,
                                 .max_pending = 16,
                                 .scheduler = runtime::make_scheduler(policy)});
      auto jobs = make_jobs(seed);
      const auto results = run_jobs(jobs, engine);
      int accepted = 0;
      for (const auto& j : jobs) accepted += j.id.has_value() ? 1 : 0;
      EXPECT_EQ(static_cast<int>(results.size()), accepted);
      EXPECT_EQ(engine.active_requests(), 0);
      EXPECT_EQ(engine.pending_requests(), 0);
      check_per_model_attribution(engine, results);
    }
    repro.end(seed);
  }
}

TEST(MultiModel, StaticSplitNeverHandsSlotsAcrossModels) {
  // Zero cross-model KV leakage: under the static split, at every step
  // boundary and at the end, no model ever held more slots than its
  // quota — under all three admission schedulers. Seed count scales
  // with DISTMCU_INVARIANT_SEEDS (nightly sweep).
  const std::uint64_t kSeeds = distmcu::testing::invariant_seed_count(10);
  distmcu::testing::SeedReproLog repro(
      "./test_multimodel", "MultiModel.StaticSplitNeverHandsSlotsAcrossModels");
  for (std::uint64_t seed = 100; seed < 100 + kSeeds; ++seed) {
    repro.begin();
    for (const auto policy : {SchedulePolicy::fifo, SchedulePolicy::priority,
                              SchedulePolicy::edf}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " policy " +
                   runtime::policy_name(policy));
      auto reg = make_registry(/*gen_chunk=*/2, /*enc_chunk=*/0,
                               /*gen_quota=*/2, /*enc_quota=*/1);
      BatchedEngine engine(reg, {.total_kv_slots = 3,
                                 .max_pending = 16,
                                 .scheduler = runtime::make_scheduler(policy)});
      EXPECT_STREQ(engine.kv_budget().name(), "static_split");
      auto jobs = make_jobs(seed);
      const auto probe = [](const BatchedEngine& e) {
        EXPECT_LE(e.kv_slots().tenant_in_use(0), e.model_kv_quota(0));
        EXPECT_LE(e.kv_slots().tenant_in_use(1), e.model_kv_quota(1));
      };
      (void)run_jobs(jobs, engine, probe);
      EXPECT_LE(engine.kv_slots().tenant_high_water(0), 2);
      EXPECT_LE(engine.kv_slots().tenant_high_water(1), 1);
      EXPECT_LE(engine.stats().per_model[0].kv_in_use_high_water, 2);
      EXPECT_LE(engine.stats().per_model[1].kv_in_use_high_water, 1);
      EXPECT_EQ(engine.kv_slots().in_use(), 0);
    }
    repro.end(seed);
  }
}

TEST(MultiModel, TokenStreamsMatchDedicatedGeneratePerModel) {
  // Functional isolation: whatever shares the batch, every request's
  // stream equals a dedicated generate call on its own model.
  const auto& s = sessions();
  for (std::uint64_t seed = 40; seed < 46; ++seed) {
    auto reg = make_registry(/*gen_chunk=*/3, /*enc_chunk=*/2);
    BatchedEngine engine(reg, {.total_kv_slots = 3, .max_pending = 16});
    auto jobs = make_jobs(seed);
    const auto results = run_jobs(jobs, engine);
    for (const auto& job : jobs) {
      if (!job.id.has_value()) continue;
      const auto it =
          std::find_if(results.begin(), results.end(),
                       [&](const RequestResult& r) { return r.id == *job.id; });
      ASSERT_NE(it, results.end());
      EXPECT_EQ(it->model, job.model);
      const auto solo = (job.model == 0 ? s.gen : s.enc)
                            .generate(job.prompt, job.new_tokens);
      EXPECT_EQ(it->gen.tokens, solo.tokens) << "seed " << seed;
    }
  }
}

TEST(MultiModel, DeterministicReplay) {
  for (const std::uint64_t seed : {7u, 21u}) {
    auto ra = make_registry(2, 0);
    auto rb = make_registry(2, 0);
    BatchedEngine ea(ra, {.total_kv_slots = 3, .max_pending = 16});
    BatchedEngine eb(rb, {.total_kv_slots = 3, .max_pending = 16});
    auto ja = make_jobs(seed);
    auto jb = make_jobs(seed);
    const auto out_a = run_jobs(ja, ea);
    const auto out_b = run_jobs(jb, eb);
    ASSERT_EQ(out_a.size(), out_b.size());
    EXPECT_EQ(ea.stats().total_cycles, eb.stats().total_cycles);
    for (std::size_t i = 0; i < out_a.size(); ++i) {
      EXPECT_EQ(out_a[i].id, out_b[i].id);
      EXPECT_EQ(out_a[i].model, out_b[i].model);
      EXPECT_EQ(out_a[i].gen.tokens, out_b[i].gen.tokens);
      EXPECT_EQ(out_a[i].gen.total_cycles, out_b[i].gen.total_cycles);
      EXPECT_EQ(out_a[i].finished_at, out_b[i].finished_at);
    }
  }
}

TEST(MultiModel, WatermarkPolicyBorrowsIdleSlotsWithinReserves) {
  // Model 0 floods the engine while model 1 is idle: under the
  // watermark policy model 0 borrows past its quota (the static split
  // would cap it), and the whole arena still drains cleanly.
  auto reg = make_registry(/*gen_chunk=*/2, /*enc_chunk=*/0,
                           /*gen_quota=*/2, /*enc_quota=*/2);
  BatchedEngine engine(reg, {.total_kv_slots = 4,
                             .max_pending = 32,
                             .kv_budget = runtime::make_kv_budget(
                                 KvBudget::watermark)});
  EXPECT_STREQ(engine.kv_budget().name(), "watermark");
  EXPECT_EQ(engine.model_kv_cap(0), 4);  // borrowing policies cap at the arena
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine.submit(0, {1 + i, 2, 3}, 4).has_value());
  }
  (void)engine.run_to_completion();
  EXPECT_GT(engine.kv_slots().tenant_high_water(0), engine.model_kv_quota(0));
  EXPECT_EQ(engine.kv_slots().in_use(), 0);
  EXPECT_EQ(engine.stats().completed, 6);
}

TEST(MultiModel, ProportionalPolicyServesBothTenantsByDemand) {
  auto reg = make_registry(/*gen_chunk=*/2, /*enc_chunk=*/2);
  BatchedEngine engine(reg, {.total_kv_slots = 4,
                             .max_pending = 32,
                             .kv_budget = runtime::make_kv_budget(
                                 KvBudget::proportional)});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine.submit(0, {1 + i, 2}, 3).has_value());
    ASSERT_TRUE(engine.submit(1, {3 + i, 4}, 0).has_value());
  }
  const auto results = engine.run_to_completion();
  EXPECT_EQ(static_cast<int>(results.size()), 10);
  check_per_model_attribution(engine, results);
  EXPECT_GE(engine.kv_slots().tenant_high_water(0), 1);
  EXPECT_GE(engine.kv_slots().tenant_high_water(1), 1);
}

TEST(MultiModel, EdfDeadlineOnOneModelPreemptsAdmissionOfAnother) {
  // Four long generator jobs queued ahead of one tight-deadline encoder
  // job, two shared slots under the proportional budget (both models'
  // candidates stay admissible, so the SCHEDULER decides the order):
  // FIFO admits the generators first and the encoder blows its deadline
  // in the queue; EDF admits the encoder at the first free slot and
  // meets it, at identical total work.
  const auto run = [&](SchedulePolicy policy) {
    auto reg = make_registry(/*gen_chunk=*/2, /*enc_chunk=*/0,
                             /*gen_quota=*/1, /*enc_quota=*/1);
    BatchedEngine engine(reg, {.total_kv_slots = 2,
                               .max_pending = 16,
                               .scheduler = runtime::make_scheduler(policy),
                               .kv_budget = runtime::make_kv_budget(
                                   KvBudget::proportional)});
    for (int i = 0; i < 4; ++i) {
      (void)*engine.submit(0, {1 + i, 5, 2, 8, 3, 9}, 12,
                           {.priority = 2, .deadline_cycles = kNoDeadline});
    }
    (void)*engine.submit(1, {7, 4, 2}, 0,
                         {.priority = 0, .deadline_cycles = 2'000'000});
    (void)engine.run_to_completion();
    return engine.stats();
  };
  const ServingStats fifo = run(SchedulePolicy::fifo);
  const ServingStats edf = run(SchedulePolicy::edf);
  EXPECT_EQ(fifo.per_model[1].deadline_misses, 1);
  EXPECT_EQ(edf.per_model[1].deadline_misses, 0);
  EXPECT_EQ(fifo.total_generated, edf.total_generated);
}

TEST(MultiModel, SubmitValidatesPerModelShapes) {
  auto reg = make_registry(0, 0);
  BatchedEngine engine(reg, {.total_kv_slots = 2, .max_pending = 4});
  // Model 1's prompt_len is 8; model 0's is 6 — the longer prompt is
  // valid only against model 1.
  const std::vector<int> long_prompt{1, 2, 3, 4, 5, 6, 7};
  EXPECT_THROW((void)engine.submit(0, long_prompt, 1), Error);
  EXPECT_TRUE(engine.submit(1, long_prompt, 1).has_value());
  EXPECT_THROW((void)engine.submit(2, {1}, 1), Error);
  EXPECT_THROW((void)engine.submit(-1, {1}, 1), Error);
}

TEST(MultiModel, RegistryValidation) {
  const auto& s = sessions();
  ModelRegistry reg;
  (void)reg.add(s.gen, "gen");
  EXPECT_THROW((void)reg.add(s.enc, "gen"), Error);  // duplicate name
  EXPECT_THROW((void)reg.add(s.enc, ""), Error);
  (void)reg.add(s.enc, "enc");
  EXPECT_EQ(reg.count(), 2);
  EXPECT_EQ(reg.find("enc"), 1);
  EXPECT_THROW((void)reg.find("absent"), Error);
  // Quotas exceeding the arena, or an arena too small to reserve one
  // slot per deployment, are construction errors.
  ModelRegistry over;
  (void)over.add(s.gen, "gen", 0, /*kv_quota=*/3);
  (void)over.add(s.enc, "enc", 0, /*kv_quota=*/2);
  EXPECT_THROW(BatchedEngine(over, {.total_kv_slots = 4}), Error);
  EXPECT_THROW(BatchedEngine(reg, {.total_kv_slots = 1}), Error);
}

// --- budget-policy unit tests ----------------------------------------------

namespace {

std::vector<runtime::KvBudgetPolicy::TenantView> views2(int in0, int pend0,
                                                        int q0, int in1,
                                                        int pend1, int q1,
                                                        int cap) {
  return {{0, in0, pend0, q0, cap}, {1, in1, pend1, q1, cap}};
}

}  // namespace

TEST(KvBudgetPolicy, StaticSplitGrantsOnlyWithinQuota) {
  runtime::StaticSplitPolicy p;
  EXPECT_FALSE(p.allows_borrowing());
  const auto v = views2(2, 5, 2, 0, 0, 2, 4);
  EXPECT_FALSE(p.may_acquire(0, v, 4, 2));  // at quota, slots free elsewhere
  EXPECT_TRUE(p.may_acquire(1, v, 4, 2));
}

TEST(KvBudgetPolicy, ProportionalAllowanceFollowsDemand) {
  runtime::ProportionalSharePolicy p;
  // Tenant 0 carries all the demand: its allowance covers the arena.
  EXPECT_TRUE(p.may_acquire(0, views2(3, 4, 2, 0, 0, 2, 4), 4, 1));
  // No demand at all -> no grant.
  EXPECT_FALSE(p.may_acquire(0, views2(0, 0, 2, 0, 0, 2, 4), 4, 4));
  // Equal demand -> equal allowances: tenant 0 at half the arena is
  // capped while tenant 1 below its share is granted.
  EXPECT_FALSE(p.may_acquire(0, views2(2, 2, 2, 0, 4, 2, 4), 4, 2));
  EXPECT_TRUE(p.may_acquire(1, views2(2, 2, 2, 0, 4, 2, 4), 4, 2));
}

TEST(KvBudgetPolicy, WatermarkProtectsUnmetReservesOfDemandingTenants) {
  runtime::WatermarkBorrowPolicy p;
  // Under quota: always granted.
  EXPECT_TRUE(p.may_acquire(0, views2(1, 3, 2, 0, 0, 2, 4), 4, 1));
  // Borrow with the other tenant idle: granted down to the last slot.
  EXPECT_TRUE(p.may_acquire(0, views2(3, 3, 2, 0, 0, 2, 4), 4, 1));
  // Borrow while the other tenant has pending demand and 2 unmet
  // reserve slots: refused unless enough stays free.
  EXPECT_FALSE(p.may_acquire(0, views2(2, 3, 2, 0, 2, 2, 4), 4, 2));
  EXPECT_TRUE(p.may_acquire(0, views2(2, 3, 2, 0, 2, 2, 6), 6, 4));
  // Headroom raises the bar.
  runtime::WatermarkBorrowPolicy strict({.headroom = 2});
  EXPECT_FALSE(strict.may_acquire(0, views2(2, 3, 2, 0, 2, 2, 6), 6, 4));
}

// --- overload controls across tenants --------------------------------------

namespace {

const RequestResult& result_for(const std::vector<RequestResult>& results,
                                RequestId id) {
  for (const auto& r : results) {
    if (r.id == id) return r;
  }
  throw Error("result_for: no such request id");
}

}  // namespace

TEST(MultiModelServing, FairSheddingDropsTheHeaviestTenantsNewest) {
  auto reg = make_registry(0, 0);
  BatchedEngine engine(reg, {.total_kv_slots = 2,
                             .max_pending = 2,
                             .fair_shedding = true});

  // Four generator submits: two absorbable by the free slots, two of
  // backlog — the queue bound is now exactly reached.
  std::vector<RequestId> gen_ids;
  for (int i = 0; i < 4; ++i) {
    const auto id = engine.submit(0, {1, 2, 3}, 2);
    ASSERT_TRUE(id.has_value());
    gen_ids.push_back(*id);
  }

  // An encoder submit on the full queue sheds the generator tenant's
  // newest queued request instead of bouncing the newcomer.
  const auto enc_id = engine.submit(1, {4, 5, 6, 7}, 0);
  ASSERT_TRUE(enc_id.has_value());
  EXPECT_EQ(engine.last_rejection(), runtime::Rejection::none);
  ASSERT_EQ(engine.shed_ids().size(), 1u);
  EXPECT_EQ(engine.shed_ids()[0], gen_ids.back());
  EXPECT_EQ(engine.stats().shed, 1);
  EXPECT_EQ(engine.stats().per_model[0].shed, 1);
  EXPECT_EQ(engine.stats().per_model[1].shed, 0);

  // The reverse direction: the generator tenant is itself the heaviest,
  // so its next submit is refused queue_full — fairness never churns
  // another tenant out for the aggressor.
  EXPECT_FALSE(engine.submit(0, {9}, 1).has_value());
  EXPECT_EQ(engine.last_rejection(), runtime::Rejection::queue_full);
  EXPECT_EQ(engine.stats().shed, 1);
  EXPECT_EQ(engine.stats().rejected_queue_full, 1);

  while (engine.step()) {}
  const auto results = engine.finished();
  // Conservation: accepted == completed + shed; the shed id never
  // reaches the finished list.
  int accepted = 0;
  for (const auto& pm : engine.stats().per_model) accepted += pm.submitted;
  EXPECT_EQ(accepted, engine.stats().completed + engine.stats().shed);
  for (const auto& r : results) EXPECT_NE(r.id, engine.shed_ids()[0]);
  check_per_model_attribution(engine, results);
}

TEST(MultiModelServing, PreemptionReclaimsBorrowedSlotAcrossModels) {
  // Watermark borrowing lets the generator take the whole arena while
  // the encoder is idle; when an encoder deadline then arrives, the
  // preemption policy checkpoints a generator request out of the
  // borrowed slot, the arena reclaims it cross-model, and every token
  // stream still matches a dedicated generate() run bit-exactly.
  const auto& s = sessions();
  auto reg = make_registry(0, 0, /*gen_quota=*/1, /*enc_quota=*/1);
  BatchedEngine engine(
      reg,
      {.total_kv_slots = 2,
       .max_pending = 8,
       .scheduler = std::make_shared<runtime::EdfScheduler>(),
       .kv_budget = runtime::make_kv_budget(KvBudget::watermark),
       .preemption = std::make_shared<runtime::DeadlineAwarePreemption>()});

  const auto a = engine.submit(0, {1, 2, 3}, 10);
  const auto b = engine.submit(0, {4, 5, 6}, 10);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_TRUE(engine.step());  // both admitted: quota slot + borrowed slot

  const auto gen_layers = static_cast<Cycles>(s.gen.config().num_layers);
  const auto gen_ar = s.gen.run_block(model::Mode::autoregressive);
  const Cycles gen_per_req =
      (gen_ar.report.block_cycles - gen_ar.report.breakdown.dma_l3_l2) *
      gen_layers;
  const Cycles enc_prefill =
      s.enc.run_block(model::Mode::prompt).report.block_cycles *
      static_cast<Cycles>(s.enc.config().num_layers);

  // Feasible if admitted promptly, lost if it waits out a generator.
  const auto c = engine.submit(
      1, {7, 8, 9, 10}, 0,
      {.priority = 0, .deadline_cycles = enc_prefill + gen_per_req});
  ASSERT_TRUE(c.has_value());

  while (engine.step()) {}
  const auto results = engine.finished();
  ASSERT_EQ(results.size(), 3u);

  const auto& stats = engine.stats();
  EXPECT_EQ(stats.preemptions, 1);
  EXPECT_EQ(stats.resumes, 1);
  EXPECT_EQ(stats.per_model[0].preemptions, 1);
  EXPECT_EQ(stats.per_model[0].kv_slots_reclaimed, 1);
  EXPECT_EQ(stats.per_model[1].preemptions, 0);
  EXPECT_EQ(stats.per_model[1].kv_slots_reclaimed, 0);

  // One generator took the checkpoint round trip; streams unharmed.
  const auto& ra = result_for(results, *a);
  const auto& rb = result_for(results, *b);
  EXPECT_EQ(ra.times_evicted + rb.times_evicted, 1);
  EXPECT_EQ(ra.gen.tokens, s.gen.generate({1, 2, 3}, 10).tokens);
  EXPECT_EQ(rb.gen.tokens, s.gen.generate({4, 5, 6}, 10).tokens);
  EXPECT_EQ(result_for(results, *c).gen.tokens,
            s.enc.generate({7, 8, 9, 10}, 0).tokens);
  check_per_model_attribution(engine, results);
}

TEST(MultiModel, PagedStaticSplitNeverHandsPagesAcrossModels) {
  // Paged tentpole, multi-model: with the shared arena in pages and
  // per-tenant page quotas, the static split must keep zero cross-model
  // page leakage at every step boundary under all three schedulers —
  // and the engine must drain to zero pages in use (no sharing here, so
  // no registry pins). Seed count scales with DISTMCU_INVARIANT_SEEDS.
  const std::uint64_t kSeeds = distmcu::testing::invariant_seed_count(8);
  distmcu::testing::SeedReproLog repro(
      "./test_multimodel", "MultiModel.PagedStaticSplitNeverHandsPagesAcrossModels");
  for (std::uint64_t seed = 300; seed < 300 + kSeeds; ++seed) {
    repro.begin();
    for (const auto policy : {SchedulePolicy::fifo, SchedulePolicy::priority,
                              SchedulePolicy::edf}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " policy " +
                   runtime::policy_name(policy));
      // Page size 4: a gen set is 6 pages, an enc set 3. Quotas cover
      // one full-context request each, in pages.
      auto reg = make_registry(/*gen_chunk=*/2, /*enc_chunk=*/0,
                               /*gen_quota=*/6, /*enc_quota=*/3);
      BatchedEngine engine(reg, {.total_kv_slots = 9,
                                 .max_pending = 16,
                                 .scheduler = runtime::make_scheduler(policy),
                                 .kv_page_tokens = 4});
      ASSERT_TRUE(engine.paged());
      EXPECT_EQ(engine.page_tokens(0), 4);
      EXPECT_EQ(engine.page_tokens(1), 4);
      auto jobs = make_jobs(seed);
      const auto probe = [](const BatchedEngine& e) {
        EXPECT_LE(e.kv_pages().tenant_in_use(0), e.model_kv_quota(0));
        EXPECT_LE(e.kv_pages().tenant_in_use(1), e.model_kv_quota(1));
        EXPECT_GE(e.kv_pages().total_refs(),
                  static_cast<long long>(e.kv_pages().in_use()));
      };
      const auto results = run_jobs(jobs, engine, probe);
      EXPECT_LE(engine.kv_pages().tenant_high_water(0), 6);
      EXPECT_LE(engine.kv_pages().tenant_high_water(1), 3);
      EXPECT_EQ(engine.kv_pages().in_use(), 0);
      EXPECT_EQ(engine.kv_pages().total_refs(), 0);
      check_per_model_attribution(engine, results);

      // Streams stay per-model bit-exact through the paged budget.
      const auto& s = sessions();
      for (const auto& job : jobs) {
        if (!job.id.has_value()) continue;
        const auto& session = job.model == 0 ? s.gen : s.enc;
        EXPECT_EQ(result_for(results, *job.id).gen.tokens,
                  session.generate(job.prompt, job.new_tokens).tokens);
      }
    }
    repro.end(seed);
  }
}
