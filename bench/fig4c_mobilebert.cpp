// Reproduces paper Fig. 4(c): MobileBERT encoder (S=268) on 1-4 chips.
//
// Paper's headline for this panel: 4.7x speedup at 4 chips from the
// suppression of off-chip transfers to L3. Our platform model lands at
// ~4x (see EXPERIMENTS.md for the gap analysis: the serialized MIPI
// ingress of the 134-KiB partial-output payloads costs more here than in
// the paper's measurement).
#include <iostream>

#include "bench_common.hpp"

using namespace distmcu;

int main() {
  const auto cfg = model::TransformerConfig::mobile_bert();
  const auto points = bench::sweep_chips(cfg, model::Mode::prompt, {1, 2, 4});
  bench::print_fig4_panel("Fig. 4(c) — MobileBERT encoder (S=268), one block", points);

  const auto& p4 = points.back();
  std::cout << "paper reports: 4.7x at 4 chips (super-linear)\n"
            << "measured:      " << p4.speedup << "x at 4 chips\n"
            << "shape check:   "
            << (p4.speedup > 3.8 && points[1].speedup < 2.0 ? "PASS" : "FAIL")
            << " (crossover at 4 chips; 1-2 chips L3-streamed)\n";
  return 0;
}
