// Tests for the hierarchical topology, numeric collectives, and the timed
// collective executor (port serialization = the group-of-4 contention
// behaviour the paper's Fig. 1 is designed around).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "chip/chip_config.hpp"
#include "noc/collectives.hpp"
#include "noc/topology.hpp"
#include "sim/tracer.hpp"

using namespace distmcu;
using noc::CollectiveTimer;
using noc::LinkConfig;
using noc::Topology;

TEST(Topology, SingleChipHasNoStages) {
  const auto t = Topology::hierarchical(1, 4);
  EXPECT_TRUE(t.reduce_stages().empty());
  EXPECT_EQ(t.hops_per_reduce(), 0u);
}

TEST(Topology, EightChipsTwoStages) {
  const auto t = Topology::hierarchical(8, 4);
  ASSERT_EQ(t.reduce_stages().size(), 2u);
  // Stage 0: members -> leaders {0,4}; stage 1: leader 4 -> root 0.
  EXPECT_EQ(t.reduce_stages()[0].size(), 6u);
  EXPECT_EQ(t.reduce_stages()[1].size(), 1u);
  EXPECT_EQ(t.reduce_stages()[1][0].src, 4);
  EXPECT_EQ(t.reduce_stages()[1][0].dst, 0);
  EXPECT_EQ(t.root(), 0);
}

TEST(Topology, SixtyFourChipsThreeStages) {
  const auto t = Topology::hierarchical(64, 4);
  ASSERT_EQ(t.reduce_stages().size(), 3u);
  EXPECT_EQ(t.reduce_stages()[0].size(), 48u);
  EXPECT_EQ(t.reduce_stages()[1].size(), 12u);
  EXPECT_EQ(t.reduce_stages()[2].size(), 3u);
  EXPECT_EQ(t.hops_per_reduce(), 63u);
}

TEST(Topology, NonPowerOfTwoCounts) {
  for (int n : {2, 3, 5, 6, 7, 12, 17}) {
    const auto t = Topology::hierarchical(n, 4);
    EXPECT_EQ(t.hops_per_reduce(), static_cast<std::size_t>(n - 1)) << "n=" << n;
  }
}

TEST(Topology, BroadcastMirrorsReduce) {
  const auto t = Topology::hierarchical(8, 4);
  const auto bc = t.broadcast_stages();
  ASSERT_EQ(bc.size(), 2u);
  EXPECT_EQ(bc[0].size(), 1u);
  EXPECT_EQ(bc[0][0].src, 0);
  EXPECT_EQ(bc[0][0].dst, 4);
  EXPECT_EQ(bc[1].size(), 6u);
}

TEST(Topology, FlatIsSingleStage) {
  const auto t = Topology::flat(8);
  ASSERT_EQ(t.reduce_stages().size(), 1u);
  EXPECT_EQ(t.reduce_stages()[0].size(), 7u);
}

TEST(Topology, RejectsBadArguments) {
  EXPECT_THROW(Topology::hierarchical(0, 4), Error);
  EXPECT_THROW(Topology::hierarchical(4, 1), Error);
}

// --- numeric collectives -------------------------------------------------

class NumericCollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(NumericCollectiveTest, AllReduceSumsEveryChip) {
  const int n = GetParam();
  const auto topo = Topology::hierarchical(n, 4);
  const std::size_t len = 64;
  std::vector<std::vector<int>> storage(static_cast<std::size_t>(n));
  std::vector<std::span<int>> views;
  int expected = 0;
  for (int c = 0; c < n; ++c) {
    storage[static_cast<std::size_t>(c)].assign(len, c + 1);
    expected += c + 1;
    views.emplace_back(storage[static_cast<std::size_t>(c)]);
  }
  noc::all_reduce_numeric(topo, views);
  for (int c = 0; c < n; ++c) {
    for (const int v : storage[static_cast<std::size_t>(c)]) {
      ASSERT_EQ(v, expected) << "chip " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ChipCounts, NumericCollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16, 32, 64));

TEST(NumericCollective, FlatAndHierarchicalAgree) {
  const std::size_t len = 16;
  auto run = [&](const Topology& topo) {
    std::vector<std::vector<int>> storage(8);
    std::vector<std::span<int>> views;
    for (int c = 0; c < 8; ++c) {
      storage[static_cast<std::size_t>(c)].assign(len, 3 * c + 7);
      views.emplace_back(storage[static_cast<std::size_t>(c)]);
    }
    noc::all_reduce_numeric(topo, views);
    return storage[0];
  };
  EXPECT_EQ(run(Topology::hierarchical(8, 4)), run(Topology::flat(8)));
}

TEST(NumericCollective, FloatReduceMatchesSequentialSum) {
  const auto topo = Topology::hierarchical(4, 4);
  std::vector<std::vector<float>> storage(4);
  std::vector<std::span<float>> views;
  for (int c = 0; c < 4; ++c) {
    storage[static_cast<std::size_t>(c)] = {0.5f * static_cast<float>(c), 1.0f};
    views.emplace_back(storage[static_cast<std::size_t>(c)]);
  }
  noc::reduce_numeric(topo, views);
  EXPECT_FLOAT_EQ(storage[0][0], 0.0f + 0.5f + 1.0f + 1.5f);
  EXPECT_FLOAT_EQ(storage[0][1], 4.0f);
}

TEST(NumericCollective, SizeMismatchThrows) {
  const auto topo = Topology::hierarchical(2, 4);
  std::vector<int> a(4), b(5);
  std::vector<std::span<int>> views{std::span<int>(a), std::span<int>(b)};
  EXPECT_THROW(noc::reduce_numeric(topo, views), Error);
}

// --- timed collectives ---------------------------------------------------

namespace {
LinkConfig test_link() {
  LinkConfig l;
  l.bandwidth_bytes_per_cycle = 1.0;
  l.setup_cycles = 100;
  l.energy_pj_per_byte = 100.0;
  return l;
}
}  // namespace

TEST(CollectiveTimer, GroupMembersSerializeOnLeaderIngress) {
  const auto topo = Topology::hierarchical(4, 4);
  CollectiveTimer timer(topo, test_link(), chip::ChipConfig::siracusa().timing);
  const std::vector<Cycles> ready(4, 0);
  const auto r = timer.reduce(ready, 1000);
  // Three hops into chip 0's ingress port: at least 3*(100+1000) cycles
  // of pure link time plus accumulation.
  EXPECT_GE(r.finish, 3u * 1100u);
  EXPECT_EQ(r.num_transfers, 3u);
  EXPECT_EQ(r.c2c_bytes, 3000u);
  EXPECT_GT(r.accumulate_compute, 0u);
}

TEST(CollectiveTimer, ReduceWaitsForLateChips) {
  const auto topo = Topology::hierarchical(2, 4);
  CollectiveTimer timer(topo, test_link(), chip::ChipConfig::siracusa().timing);
  const auto r = timer.reduce({0, 5000}, 100);
  EXPECT_GE(r.finish, 5000u + 100u + 100u);
}

TEST(CollectiveTimer, BroadcastReachesAllChips) {
  const auto topo = Topology::hierarchical(8, 4);
  CollectiveTimer timer(topo, test_link(), chip::ChipConfig::siracusa().timing);
  const auto b = timer.broadcast(0, 512);
  EXPECT_EQ(b.chip_ready.size(), 8u);
  EXPECT_EQ(b.chip_ready[0], 0u);  // root already holds the data
  for (std::size_t c = 1; c < b.chip_ready.size(); ++c) EXPECT_GT(b.chip_ready[c], 0u);
  EXPECT_EQ(b.num_transfers, 7u);
  EXPECT_EQ(b.c2c_bytes, 7u * 512u);
  EXPECT_EQ(b.accumulate_compute, 0u);
}

TEST(CollectiveTimer, HierarchicalBeatsFlatForManyChips) {
  // The motivation for groups of four (paper Sec. IV): an all-to-one
  // reduce serializes N-1 transfers on the root ingress, the hierarchy
  // parallelizes groups.
  const Bytes bytes = 4096;
  const std::vector<Cycles> ready(32, 0);
  CollectiveTimer hier(Topology::hierarchical(32, 4), test_link(),
                       chip::ChipConfig::siracusa().timing);
  CollectiveTimer flat(Topology::flat(32), test_link(),
                       chip::ChipConfig::siracusa().timing);
  const auto rh = hier.reduce(ready, bytes);
  const auto rf = flat.reduce(ready, bytes);
  EXPECT_LT(rh.finish, rf.finish);
}

TEST(CollectiveTimer, SingleChipIsFree) {
  const auto topo = Topology::hierarchical(1, 4);
  CollectiveTimer timer(topo, test_link(), chip::ChipConfig::siracusa().timing);
  const auto r = timer.reduce({42}, 1 << 20);
  EXPECT_EQ(r.finish, 42u);
  EXPECT_EQ(r.c2c_bytes, 0u);
  const auto b = timer.broadcast(42, 1 << 20);
  EXPECT_EQ(b.finish, 42u);
}

TEST(CollectiveTimer, TracerRecordsC2CSpans) {
  const auto topo = Topology::hierarchical(4, 4);
  CollectiveTimer timer(topo, test_link(), chip::ChipConfig::siracusa().timing);
  sim::Tracer tracer;
  const std::vector<Cycles> ready(4, 0);
  timer.reduce(ready, 256, &tracer);
  EXPECT_EQ(tracer.total_bytes(sim::Category::chip_to_chip), 3u * 256u);
  EXPECT_GT(tracer.total(0, sim::Category::compute), 0u);  // accumulates on root
}

TEST(CollectiveTimer, BackToBackCollectivesContend) {
  const auto topo = Topology::hierarchical(4, 4);
  CollectiveTimer timer(topo, test_link(), chip::ChipConfig::siracusa().timing);
  const std::vector<Cycles> ready(4, 0);
  const auto first = timer.reduce(ready, 1000);
  // Issuing the same reduce again with ready=0 must queue behind the
  // first one's port occupancy.
  const auto second = timer.reduce(ready, 1000);
  EXPECT_GT(second.finish, first.finish);
  timer.reset();
  const auto third = timer.reduce(ready, 1000);
  EXPECT_EQ(third.finish, first.finish);
}
