#include "kernels/ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace distmcu::kernels {

void softmax_rows(std::span<float> x, int rows, int cols) {
  DISTMCU_CHECK(rows > 0 && cols > 0, "softmax: dimensions must be positive");
  DISTMCU_CHECK(x.size() == static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              "softmax: size mismatch");
  for (int r = 0; r < rows; ++r) {
    float* row = x.data() + static_cast<std::size_t>(r) * cols;
    const float mx = *std::max_element(row, row + cols);
    float sum = 0.0f;
    for (int c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (int c = 0; c < cols; ++c) row[c] *= inv;
  }
}

void rmsnorm_rows(std::span<const float> x, std::span<const float> gamma,
                  std::span<float> out, int rows, int cols, float eps) {
  DISTMCU_CHECK(x.size() == static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              "rmsnorm: size mismatch");
  DISTMCU_CHECK(gamma.size() == static_cast<std::size_t>(cols), "rmsnorm: gamma size mismatch");
  DISTMCU_CHECK(out.size() == x.size(), "rmsnorm: out size mismatch");
  for (int r = 0; r < rows; ++r) {
    const float* xi = x.data() + static_cast<std::size_t>(r) * cols;
    float* oi = out.data() + static_cast<std::size_t>(r) * cols;
    float ss = 0.0f;
    for (int c = 0; c < cols; ++c) ss += xi[c] * xi[c];
    const float scale = 1.0f / std::sqrt(ss / static_cast<float>(cols) + eps);
    for (int c = 0; c < cols; ++c) oi[c] = xi[c] * scale * gamma[static_cast<std::size_t>(c)];
  }
}

void layernorm_rows(std::span<const float> x, std::span<const float> gamma,
                    std::span<const float> beta, std::span<float> out, int rows,
                    int cols, float eps) {
  DISTMCU_CHECK(x.size() == static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              "layernorm: size mismatch");
  DISTMCU_CHECK(gamma.size() == static_cast<std::size_t>(cols) &&
                  beta.size() == static_cast<std::size_t>(cols),
              "layernorm: param size mismatch");
  DISTMCU_CHECK(out.size() == x.size(), "layernorm: out size mismatch");
  for (int r = 0; r < rows; ++r) {
    const float* xi = x.data() + static_cast<std::size_t>(r) * cols;
    float* oi = out.data() + static_cast<std::size_t>(r) * cols;
    float mean = 0.0f;
    for (int c = 0; c < cols; ++c) mean += xi[c];
    mean /= static_cast<float>(cols);
    float var = 0.0f;
    for (int c = 0; c < cols; ++c) {
      const float d = xi[c] - mean;
      var += d * d;
    }
    var /= static_cast<float>(cols);
    const float inv = 1.0f / std::sqrt(var + eps);
    for (int c = 0; c < cols; ++c) {
      oi[c] = (xi[c] - mean) * inv * gamma[static_cast<std::size_t>(c)] +
              beta[static_cast<std::size_t>(c)];
    }
  }
}

void gelu(std::span<float> x) {
  for (float& v : x) {
    v = 0.5f * v * (1.0f + std::erf(v * 0.70710678118654752440f));
  }
}

void silu(std::span<float> x) {
  for (float& v : x) v = v / (1.0f + std::exp(-v));
}

void relu(std::span<float> x) {
  for (float& v : x) v = std::max(v, 0.0f);
}

void add_inplace(std::span<float> out, std::span<const float> x) {
  DISTMCU_CHECK(out.size() == x.size(), "add_inplace: size mismatch");
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += x[i];
}

void mul_inplace(std::span<float> out, std::span<const float> x) {
  DISTMCU_CHECK(out.size() == x.size(), "mul_inplace: size mismatch");
  for (std::size_t i = 0; i < out.size(); ++i) out[i] *= x[i];
}

}  // namespace distmcu::kernels
