// Reproduces paper Fig. 4(b): TinyLlama prompt mode (S=16) on 1-8 chips.
//
// Paper's headline for this panel: 9.9x speedup at 8 chips; computation
// (not memory) is the largest runtime contributor, so suppressing
// off-chip transfers helps less than in autoregressive mode.
#include <iostream>

#include "bench_common.hpp"

using namespace distmcu;

int main() {
  const auto cfg = model::TransformerConfig::tiny_llama_42m();
  const auto points = bench::sweep_chips(cfg, model::Mode::prompt, {1, 2, 4, 8});
  bench::print_fig4_panel("Fig. 4(b) — TinyLlama prompt mode (S=16), one block",
                          points);

  const auto& p8 = points.back();
  const auto& bd = p8.report.breakdown;
  std::cout << "paper reports: 9.9x at 8 chips (super-linear, compute-dominated)\n"
            << "measured:      " << p8.speedup << "x at 8 chips\n"
            << "shape check:   "
            << (p8.speedup > 8.0 && bd.compute > bd.dma_l2_l1 && bd.compute > bd.c2c
                    ? "PASS"
                    : "FAIL")
            << " (super-linear AND compute is the largest contributor)\n";
  return 0;
}
