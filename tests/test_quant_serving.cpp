// Quantized serving-path invariants: precision as a per-deployment
// property, end to end. The randomized ServingInvariantsQuant sweeps
// ride the nightly high-seed job (DISTMCU_INVARIANT_SEEDS) and pin the
// tentpole property — an int8 tenant's token streams, served through
// BatchedEngine with real batching and chunked prefill, are
// bit-identical under any chip count and reduction tree shape, because
// the cross-chip reductions carry exact int32 partials. The
// deterministic suites cover the packed-KV capacity arithmetic, exact
// mixed-precision attribution, the DeploymentSpec registration surface
// (validation, session ownership outliving the registry), the unified
// submit(Request) surface with its legacy forwarding overloads, and
// the value-semantics contract of QuantizedDistributedFfn.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "invariant_env.hpp"
#include "model/config.hpp"
#include "model/weights.hpp"
#include "noc/topology.hpp"
#include "partition/plan.hpp"
#include "partition/sharder.hpp"
#include "quant/quantized_ffn.hpp"
#include "runtime/batched_engine.hpp"
#include "runtime/deployment_spec.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/precision.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

using namespace distmcu;
using distmcu::testing::invariant_seed_count;
using distmcu::testing::SeedReproLog;
using runtime::BatchedEngine;
using runtime::DeploymentSpec;
using runtime::InferenceSession;
using runtime::KvLayout;
using runtime::ModelRegistry;
using runtime::Precision;

namespace {

/// Full-width heads on a cut decoder: small enough for per-seed
/// numerics, wide enough that 1/2/4-chip shardings all differ.
model::TransformerConfig quant_cfg(int ar_context, int prompt_len) {
  auto cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.num_layers = 2;
  cfg.vocab_size = 256;
  cfg.ar_context = ar_context;
  cfg.prompt_len = prompt_len;
  cfg.validate();
  return cfg;
}

/// Cut bidirectional encoder (LayerNorm, no RoPE) for the
/// mixed-precision tenant.
model::TransformerConfig bert_cfg() {
  auto cfg = model::TransformerConfig::mobile_bert();
  cfg.num_layers = 1;
  cfg.ar_context = 32;
  cfg.prompt_len = 8;
  cfg.validate();
  return cfg;
}

DeploymentSpec int8_spec(int chips, bool flat_topology,
                         KvLayout layout = KvLayout::int8) {
  DeploymentSpec spec;
  spec.model = quant_cfg(/*ar_context=*/32, /*prompt_len=*/8);
  spec.chips = chips;
  spec.precision = Precision::int8;
  spec.kv_layout = layout;
  spec.prefill_chunk_tokens = 4;
  spec.system.flat_topology = flat_topology;
  return spec;
}

struct Job {
  std::vector<int> prompt;
  int new_tokens = 0;
};

std::vector<Job> random_jobs(util::Rng& rng, int vocab) {
  std::vector<Job> jobs(2 + static_cast<std::size_t>(rng.next_below(3)));
  for (auto& j : jobs) {
    j.prompt.resize(2 + static_cast<std::size_t>(rng.next_below(6)));
    for (auto& t : j.prompt) {
      t = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(vocab)));
    }
    j.new_tokens = 1 + static_cast<int>(rng.next_below(8));
  }
  return jobs;
}

/// Serve `jobs` on one prebuilt session and return the token streams in
/// submit order.
std::vector<std::vector<int>> serve(const InferenceSession& session,
                                    const std::vector<Job>& jobs) {
  BatchedEngine engine(session, {.max_batch = 2});
  std::vector<runtime::RequestId> ids;
  for (const auto& j : jobs) {
    auto id = engine.submit({.prompt = j.prompt, .new_tokens = j.new_tokens});
    EXPECT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  const auto results = engine.run_to_completion();
  EXPECT_EQ(results.size(), jobs.size());
  std::vector<std::vector<int>> streams(jobs.size());
  for (const auto& r : results) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (r.id == ids[i]) streams[i] = r.gen.tokens;
    }
  }
  return streams;
}

}  // namespace

TEST(ServingInvariantsQuant, RandomizedInt8StreamsChipAndTreeInvariant) {
  // One int8 model re-sharded three ways: 2 chips, 4 chips, and 4 chips
  // on a flat reduce tree. Randomized batched workloads must produce
  // bit-identical token streams on all three — through the real serving
  // path (admission, chunked prefill, batch interleaving), not just a
  // bare block forward.
  const InferenceSession two(int8_spec(2, /*flat_topology=*/false));
  const InferenceSession four(int8_spec(4, /*flat_topology=*/false));
  const InferenceSession four_flat(int8_spec(4, /*flat_topology=*/true));
  const int vocab = two.config().vocab_size;

  SeedReproLog repro(
      "./test_quant_serving",
      "ServingInvariantsQuant.RandomizedInt8StreamsChipAndTreeInvariant");
  const std::uint64_t seeds = invariant_seed_count(12);
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    repro.begin();
    util::Rng rng(seed);
    const auto jobs = random_jobs(rng, vocab);
    const auto s2 = serve(two, jobs);
    const auto s4 = serve(four, jobs);
    const auto s4f = serve(four_flat, jobs);
    EXPECT_EQ(s2, s4) << "seed " << seed
                      << ": int8 streams changed with the chip count";
    EXPECT_EQ(s4, s4f) << "seed " << seed
                       << ": int8 streams changed with the tree shape";
    // And the served streams match the dedicated single-request path.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(s2[i],
                two.generate(jobs[i].prompt, jobs[i].new_tokens).tokens)
          << "seed " << seed << " job " << i;
    }
    repro.end(seed);
  }
}

TEST(ServingInvariantsQuant, PackedKvLayoutsMultiplyCapacityAtEqualPoolBytes) {
  // The same KV pool bytes hold 1 fp16 set, 2 int8 sets, or 4 int4
  // sets; the engine must admit exactly that many concurrent requests.
  struct Case {
    Precision p;
    KvLayout l;
    int slots;
  };
  const std::vector<Case> cases = {{Precision::fp16, KvLayout::fp16, 1},
                                   {Precision::int8, KvLayout::int8, 2},
                                   {Precision::int8, KvLayout::int4, 4}};
  std::vector<Bytes> pools;
  for (const auto& c : cases) {
    DeploymentSpec spec = int8_spec(2, /*flat_topology=*/false, c.l);
    spec.precision = c.p;
    const InferenceSession solo(spec);
    ModelRegistry reg;
    const auto m = reg.add(spec);
    BatchedEngine engine(reg, {.total_kv_slots = c.slots});
    EXPECT_EQ(engine.model_kv_elem_bits(m),
              runtime::kv_layout_bits(c.l, /*native_bits=*/8));
    pools.push_back(engine.kv_slots().pool_bytes());

    std::vector<runtime::RequestId> ids;
    for (int i = 0; i < 5; ++i) {
      auto id = engine.submit(
          {.model = m, .prompt = {3, 1 + i, 7}, .new_tokens = 3 + i % 2});
      ASSERT_TRUE(id.has_value());
      ids.push_back(*id);
    }
    const auto results = engine.run_to_completion();
    ASSERT_EQ(results.size(), ids.size());
    EXPECT_EQ(engine.stats().peak_batch, c.slots)
        << "layout " << runtime::kv_layout_name(c.l);
    EXPECT_EQ(engine.kv_slots().in_use(), 0);
    for (const auto& r : results) {
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (r.id != ids[i]) continue;
        const int ii = static_cast<int>(i);
        EXPECT_EQ(r.gen.tokens,
                  solo.generate({3, 1 + ii, 7}, 3 + ii % 2).tokens)
            << "layout " << runtime::kv_layout_name(c.l) << " job " << i;
      }
    }
  }
  EXPECT_EQ(pools[0], pools[1]);
  EXPECT_EQ(pools[1], pools[2]);
}

TEST(ServingInvariantsQuant, MixedPrecisionTenantsConserveExactly) {
  // fp16 decoder + int8 encoder in one registry and one arena: the
  // per-model stats must partition the engine totals exactly.
  DeploymentSpec llama;
  llama.model = quant_cfg(/*ar_context=*/32, /*prompt_len=*/8);
  llama.chips = 2;
  llama.kv_layout = KvLayout::fp16;
  DeploymentSpec bert;
  bert.model = bert_cfg();
  bert.chips = 2;
  bert.precision = Precision::int8;
  bert.kv_layout = KvLayout::int8;

  const InferenceSession llama_solo(llama);
  const InferenceSession bert_solo(bert);
  ModelRegistry reg;
  const auto lm = reg.add(llama);
  const auto bm = reg.add(bert);
  BatchedEngine engine(reg, {.total_kv_slots = 2});
  EXPECT_EQ(engine.model_precision(lm), Precision::fp16);
  EXPECT_EQ(engine.model_precision(bm), Precision::int8);

  std::vector<std::pair<runtime::RequestId, std::vector<int>>> expected;
  for (int i = 0; i < 3; ++i) {
    const std::vector<int> p = {5 + i, 9, 2};
    auto lid = engine.submit({.model = lm, .prompt = p, .new_tokens = 4});
    ASSERT_TRUE(lid.has_value());
    expected.emplace_back(*lid, llama_solo.generate(p, 4).tokens);
    auto bid = engine.submit({.model = bm, .prompt = p, .new_tokens = 0});
    ASSERT_TRUE(bid.has_value());
    expected.emplace_back(*bid, bert_solo.generate(p, 0).tokens);
  }
  const auto results = engine.run_to_completion();
  ASSERT_EQ(results.size(), expected.size());
  for (const auto& [id, toks] : expected) {
    for (const auto& r : results) {
      if (r.id == id) {
        EXPECT_EQ(r.gen.tokens, toks);
      }
    }
  }

  const auto stats = engine.stats();
  int generated = 0;
  int completed = 0;
  Cycles cycles = 0;
  double energy = 0.0;
  for (const auto& pm : stats.per_model) {
    generated += pm.total_generated;
    completed += pm.completed;
    cycles += pm.attributed_cycles;
    energy += pm.attributed_energy_mj;
  }
  EXPECT_EQ(generated, stats.total_generated);
  EXPECT_EQ(completed, stats.completed);
  EXPECT_EQ(cycles, stats.total_cycles);
  EXPECT_NEAR(energy, stats.total_energy_mj,
              1e-9 * std::fabs(stats.total_energy_mj));
  EXPECT_EQ(engine.kv_slots().in_use(), 0);
}

TEST(DeploymentSpecQuant, ValidateRejectsIncoherentCombinations) {
  // Packed-integer KV under float arithmetic: no quantizer runs.
  DeploymentSpec fp_int_kv;
  fp_int_kv.model = quant_cfg(32, 8);
  fp_int_kv.chips = 2;
  fp_int_kv.kv_layout = KvLayout::int8;
  EXPECT_THROW(fp_int_kv.validate(), Error);
  // The A8W8 block only supports plain-MLP FFNs.
  DeploymentSpec swiglu;
  swiglu.model = quant_cfg(32, 8);
  swiglu.model.ffn = model::FfnKind::swiglu;
  swiglu.chips = 2;
  swiglu.precision = Precision::int8;
  EXPECT_THROW(swiglu.validate(), Error);
  // The registry runs the same validation at registration.
  ModelRegistry reg;
  EXPECT_THROW((void)reg.add(fp_int_kv), Error);
  // A coherent spec passes and the session reflects it.
  const InferenceSession ok(int8_spec(2, false));
  EXPECT_EQ(ok.precision(), Precision::int8);
  EXPECT_EQ(ok.kv_layout(), KvLayout::int8);
}

TEST(DeploymentSpecQuant, RegistryOwnedSessionOutlivesRegistry) {
  // ModelRegistry::add(DeploymentSpec) builds the session; the engine
  // shares ownership, so a temporary registry — the common idiom — must
  // not leave the engine with dangling tenants.
  const DeploymentSpec spec = int8_spec(2, /*flat_topology=*/false);
  const InferenceSession solo(spec);
  std::unique_ptr<BatchedEngine> engine;
  runtime::ModelId m = 0;
  {
    ModelRegistry reg;
    m = reg.add(spec);
    engine = std::make_unique<BatchedEngine>(
        reg, BatchedEngine::MultiOptions{.total_kv_slots = 2});
  }  // registry (and its deployments) destroyed here
  auto id = engine->submit({.model = m, .prompt = {4, 8, 15}, .new_tokens = 5});
  ASSERT_TRUE(id.has_value());
  const auto results = engine->run_to_completion();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].gen.tokens, solo.generate({4, 8, 15}, 5).tokens);
}

TEST(SubmitRequestQuant, LegacyOverloadsForwardToTheRequestSurface) {
  // The positional overloads are shims over submit(Request): identical
  // ids, streams, and stats either way.
  const DeploymentSpec spec = int8_spec(2, /*flat_topology=*/false);
  const InferenceSession session(spec);
  const std::vector<int> prompt = {2, 4, 6, 8};

  BatchedEngine via_request(session, {.max_batch = 2});
  BatchedEngine via_legacy(session, {.max_batch = 2});
  auto a1 = via_request.submit({.prompt = prompt, .new_tokens = 4});
  auto a2 = via_request.submit(
      {.prompt = prompt, .new_tokens = 2, .slo = {.deadline_cycles = 1}});
  auto b1 = via_legacy.submit(prompt, 4, {});
  auto b2 = via_legacy.submit(prompt, 2, {.deadline_cycles = 1});
  ASSERT_TRUE(a1 && b1);
  EXPECT_EQ(*a1, *b1);
  EXPECT_EQ(a2.has_value(), b2.has_value());
  const auto ra = via_request.run_to_completion();
  const auto rb = via_legacy.run_to_completion();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].id, rb[i].id);
    EXPECT_EQ(ra[i].gen.tokens, rb[i].gen.tokens);
  }
  EXPECT_EQ(via_request.stats().total_cycles, via_legacy.stats().total_cycles);

  // The ModelId-first overload forwards identically.
  ModelRegistry reg;
  const auto m = reg.add(spec);
  BatchedEngine multi(reg, {.total_kv_slots = 2});
  auto c1 = multi.submit(m, prompt, 4, {});
  ASSERT_TRUE(c1.has_value());
  const auto rc = multi.run_to_completion();
  ASSERT_EQ(rc.size(), 1u);
  for (const auto& r : ra) {
    if (r.id == *a1) {
      EXPECT_EQ(rc[0].gen.tokens, r.gen.tokens);
    }
  }
}

TEST(QuantFfnOwnershipQuant, ValueSemanticsSurviveTheSourceObjects) {
  // QuantizedDistributedFfn owns its plan/shards/topology by value: a
  // construct-from-temporaries caller (the natural style) must get an
  // object that works after every constructor argument is gone.
  auto cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.embed_dim = 64;
  cfg.ffn_dim = 128;
  cfg.num_heads = 8;
  cfg.head_dim = 8;
  cfg.num_layers = 1;
  cfg.prompt_len = 4;
  cfg.act = model::Activation::relu;
  cfg.validate();
  const model::Weights w(cfg, 21);

  util::Rng rng(17);
  model::Tensor x(cfg.prompt_len, cfg.embed_dim);
  x.random_init(rng, 1.0f);

  std::optional<quant::QuantizedDistributedFfn> qffn;
  {
    const auto plan = partition::PartitionPlan::create(cfg, 2);
    const partition::ShardedWeights shards(w, plan);
    const auto topo = noc::Topology::flat(2);
    qffn.emplace(cfg, shards, plan, topo);
  }  // every constructor argument destroyed here
  const model::Tensor y = qffn->forward(x);

  const auto plan = partition::PartitionPlan::create(cfg, 2);
  const partition::ShardedWeights shards(w, plan);
  const quant::QuantizedDistributedFfn fresh(cfg, shards, plan,
                                             noc::Topology::flat(2));
  EXPECT_EQ(model::Tensor::max_abs_diff(y, fresh.forward(x)), 0.0f);
}
