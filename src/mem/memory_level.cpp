#include "mem/memory_level.hpp"

namespace distmcu::mem {

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::l1: return "L1";
    case Tier::l2: return "L2";
    case Tier::l3: return "L3";
  }
  return "?";
}

}  // namespace distmcu::mem
