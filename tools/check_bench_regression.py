#!/usr/bin/env python3
"""CI perf-regression gate for the machine-readable benches.

Compares a fresh ``<bench> --json`` run against its checked-in baseline
under ``bench/baselines/`` and exits nonzero on regression. The handler
is selected by the baseline's ``schema`` field; the candidate must carry
the same schema:

* ``distmcu.serving.v1`` (serving_throughput): batch_sweep rows (matched
  by batch size) bound tokens_per_s below and total_cycles/mj_per_token
  above baseline by ``--tolerance``; chunk_sweep rows likewise;
  slo_policies rows additionally pin deadline_misses (the workload is
  deterministic, so any increase is a scheduling regression) and check
  the cross-policy invariant that EDF keeps strictly fewer misses than
  FIFO at equal-or-better throughput.
* ``distmcu.serving.v2``: everything in v1, plus overload rows (matched
  by engine config) with every admission/shedding/preemption counter
  pinned exactly, cycle/throughput fields bounded by ``--tolerance``,
  and the cross-config invariants that preemption strictly cuts
  deadline misses versus the non-preemptive engine at identical offered
  load, the full overload stack never misses more than preemption
  alone, and fail-fast/shedding actually reject and shed on the
  overloaded workload.
* ``distmcu.headline.v1`` (headline_abstract): metrics rows (matched by
  name) must stay within ``--tolerance`` of the baseline measurement in
  BOTH directions, a band that passed in the baseline must still pass,
  and all_bands_pass must hold.
* ``distmcu.multimodel.v1`` (multimodel_serving): mixed rows (matched by
  budget policy) bound requests_per_s/tokens_per_s below and
  total_cycles above baseline, kv_cross_leak_slots must be zero, each
  model's completed/generated counts are pinned exactly, and the shared
  arena must keep speedup_vs_best_isolated >= 1.
* ``distmcu.paging.v1`` (paged_serving): configs rows (matched by
  engine config) bound tokens_per_s below and total_cycles above
  baseline, with peak_batch / completed / bit_exact / pages_leaked /
  prefix_hits / cow_forks pinned exactly, plus the cross-config
  invariants that the paged engine admits strictly more concurrent
  requests than the slot engine at equal KV bytes, every config's
  streams stay bit-exact with zero pages leaked, and prefix sharing
  registers hits and strictly cuts cycles versus cold paging.
* ``distmcu.fleet.v1`` (fleet_serving): policies rows (matched by
  routing policy) pin every conservation counter exactly (offered ==
  placed + rejected, routed == placed + misrouted, placed == completed
  + shed, all re-derived by the gate itself) along with deadline_misses,
  prefix counters, bit_exact and conservation_ok; cycle/transfer fields
  are drift-bounded; per-node rows (matched by node name) pin
  attempts/placed/completed/rejected/link_rejected; and the
  cross-policy invariants hold that a cost- or prefix-aware router
  strictly beats round-robin on deadline misses at identical offered
  load and that prefix affinity lands more prefix-cache hits than
  round-robin.
* ``distmcu.quant.v1`` (quant_serving): configs rows (matched by
  precision config) bound tokens_per_s below and total_cycles /
  mj_per_token above baseline, with precision / kv_layout /
  kv_elem_bits / kv_units / peak_batch / completed / bit_exact /
  units_leaked pinned exactly, plus the cross-config invariants —
  re-derived by the gate itself — that at equal KV pool bytes the int8
  layout admits >= 2x and the int4 layout >= 4x the fp16 engine's
  concurrent requests, int8 costs strictly less energy per token than
  fp16, every config's streams stay bit-exact with zero KV units
  leaked, the int8 streams are invariant across chip counts and
  reduction tree shapes, and the mixed fp16+int8 registry conserves
  per-model attribution without leaks.
* ``distmcu.analysis.v1`` (analyze): configs rows (matched by config
  name) pin errors/warnings/ok and the sorted diagnostic-code list
  exactly (the analyzer is deterministic — any new code on a shipped
  config is a soundness change, not drift), and the report must keep
  all_ok true with zero total_errors.

Structural strictness: every section, row, and metric field present in
the BASELINE must exist in the candidate — a missing key fails the gate
with a clear message instead of silently passing (or crashing with a
bare KeyError).

The simulator is an analytic, integer-cycle model seeded
deterministically, so current and baseline numbers agree exactly when
the code is unchanged; the tolerance only absorbs intentional small
drifts (retuned constants) without letting real regressions through.
Regenerate a baseline with, e.g.:

    ./build/serving_throughput --json bench/baselines/serving_baseline.json
    ./build/headline_abstract --json bench/baselines/headline_baseline.json
    ./build/multimodel_serving --json bench/baselines/multimodel_baseline.json
    ./build/paged_serving --json bench/baselines/paging_baseline.json
    ./build/fleet_serving --json bench/baselines/fleet_baseline.json
    ./build/quant_serving --json bench/baselines/quant_baseline.json

Uses only the Python standard library.
"""

import argparse
import json
import sys

SERVING_SCHEMA = "distmcu.serving.v1"
SERVING_V2_SCHEMA = "distmcu.serving.v2"
HEADLINE_SCHEMA = "distmcu.headline.v1"
MULTIMODEL_SCHEMA = "distmcu.multimodel.v1"
ANALYSIS_SCHEMA = "distmcu.analysis.v1"
PAGING_SCHEMA = "distmcu.paging.v1"
FLEET_SCHEMA = "distmcu.fleet.v1"
QUANT_SCHEMA = "distmcu.quant.v1"


def fail(errors, msg):
    errors.append(msg)


def require(errors, doc, key, ctx):
    """Fetch doc[key], failing the gate with a clear message when the
    baseline expects a key the candidate does not carry."""
    if not isinstance(doc, dict) or key not in doc:
        fail(errors, f"{ctx}: required key '{key}' missing from candidate "
                     f"JSON (present in baseline)")
        return None
    return doc[key]


def index_rows(errors, section, rows, key):
    out = {}
    for i, row in enumerate(rows):
        k = require(errors, row, key, f"{section}[{i}]")
        if k is not None:
            out[k] = row
    return out


def check_rows(errors, section, current, baseline, key, lower_is_better,
               higher_is_better, tol, pinned=()):
    """Field-wise drift bounds for baseline-keyed row lists. Fields in
    `pinned` must match the baseline exactly (deterministic counts)."""
    if current is None:
        return
    cur = index_rows(errors, f"current.{section}", current, key)
    base = index_rows(errors, f"baseline.{section}", baseline, key)
    missing = sorted(set(base) - set(cur))
    if missing:
        fail(errors, f"{section}: baseline rows missing from candidate: "
                     f"{missing}")
        return
    if set(cur) != set(base):
        fail(errors, f"{section}: row keys differ "
                     f"(current {sorted(cur)} vs baseline {sorted(base)})")
        return
    for k, brow in base.items():
        crow = cur[k]
        ctx = f"{section}[{key}={k}]"
        for field in higher_is_better:
            cval = require(errors, crow, field, ctx)
            if cval is None:
                continue
            if cval < brow[field] * (1.0 - tol):
                fail(errors,
                     f"{ctx}.{field}: {cval:.6g} fell more than {tol:.0%} "
                     f"below baseline {brow[field]:.6g}")
        for field in lower_is_better:
            cval = require(errors, crow, field, ctx)
            if cval is None:
                continue
            if cval > brow[field] * (1.0 + tol):
                fail(errors,
                     f"{ctx}.{field}: {cval:.6g} grew more than {tol:.0%} "
                     f"above baseline {brow[field]:.6g}")
        for field in pinned:
            cval = require(errors, crow, field, ctx)
            if cval is None:
                continue
            if cval != brow[field]:
                fail(errors, f"{ctx}.{field}: {cval!r} != baseline "
                             f"{brow[field]!r} on the deterministic workload")


def check_serving(errors, current, baseline, tol):
    check_rows(errors, "batch_sweep",
               require(errors, current, "batch_sweep", "current"),
               baseline["batch_sweep"], "batch",
               lower_is_better=("total_cycles", "mj_per_token"),
               higher_is_better=("tokens_per_s",), tol=tol)
    check_rows(errors, "chunk_sweep",
               require(errors, current, "chunk_sweep", "current"),
               baseline["chunk_sweep"], "chunk",
               lower_is_better=("total_cycles",),
               higher_is_better=("tokens_per_s",), tol=tol)
    slo = require(errors, current, "slo_policies", "current")
    check_rows(errors, "slo_policies", slo,
               baseline["slo_policies"], "policy",
               lower_is_better=("total_cycles", "queue_delay_p95"),
               higher_is_better=("tokens_per_s",), tol=tol)
    if slo is None:
        return ""

    policies = index_rows(errors, "current.slo_policies", slo, "policy")
    base_policies = index_rows(errors, "baseline.slo_policies",
                               baseline["slo_policies"], "policy")
    for name, brow in base_policies.items():
        row = policies.get(name)
        if row is None:
            continue  # already reported by check_rows
        misses = require(errors, row, "deadline_misses",
                         f"slo_policies[{name}]")
        if misses is not None and misses > brow["deadline_misses"]:
            fail(errors,
                 f"slo_policies[{name}]: deadline_misses rose "
                 f"{brow['deadline_misses']} -> {misses} on the "
                 f"deterministic workload")
    fifo, edf = policies.get("fifo"), policies.get("edf")
    if fifo is None or edf is None:
        fail(errors, "slo_policies: fifo/edf rows missing")
        return ""
    fifo_misses = require(errors, fifo, "deadline_misses",
                          "slo_policies[fifo]")
    edf_misses = require(errors, edf, "deadline_misses", "slo_policies[edf]")
    fifo_tok = require(errors, fifo, "tokens_per_s", "slo_policies[fifo]")
    edf_tok = require(errors, edf, "tokens_per_s", "slo_policies[edf]")
    if None in (fifo_misses, edf_misses, fifo_tok, edf_tok):
        return ""
    if edf_misses >= fifo_misses:
        fail(errors,
             f"invariant: EDF misses ({edf_misses}) not below "
             f"FIFO ({fifo_misses})")
    if edf_tok < fifo_tok * (1.0 - 1e-9):
        fail(errors,
             f"invariant: EDF throughput {edf_tok:.6g} below "
             f"FIFO {fifo_tok:.6g}")
    return f"EDF {edf_misses} vs FIFO {fifo_misses} misses"


def check_serving_v2(errors, current, baseline, tol):
    """v1 tables plus the overload section: pinned admission-control
    counters per engine config and the preemption miss-cut invariants."""
    v1_summary = check_serving(errors, current, baseline, tol)
    overload = require(errors, current, "overload", "current")
    check_rows(errors, "overload", overload, baseline["overload"], "config",
               lower_is_better=("total_cycles", "preemption_cycles"),
               higher_is_better=("tokens_per_s",), tol=tol,
               pinned=("offered", "accepted", "completed", "deadline_misses",
                       "rejected_queue_full", "rejected_hopeless", "shed",
                       "preemptions", "resumes", "queue_depth_peak"))
    if overload is None:
        return v1_summary
    rows = index_rows(errors, "current.overload", overload, "config")
    plain = rows.get("edf")
    pre = rows.get("edf+preempt")
    full = rows.get("edf+preempt+failfast+shed")
    if plain is None or pre is None or full is None:
        fail(errors, "overload: expected configs edf / edf+preempt / "
                     "edf+preempt+failfast+shed")
        return v1_summary
    vals = {}
    for name, row in (("edf", plain), ("pre", pre), ("full", full)):
        for field in ("deadline_misses", "preemptions", "shed",
                      "rejected_hopeless"):
            vals[(name, field)] = require(errors, row, field,
                                          f"overload[{name}]")
    if None in vals.values():
        return v1_summary
    if vals[("pre", "deadline_misses")] >= vals[("edf", "deadline_misses")]:
        fail(errors,
             f"invariant: preemption misses "
             f"({vals[('pre', 'deadline_misses')]}) not below the "
             f"non-preemptive engine ({vals[('edf', 'deadline_misses')]}) "
             f"at identical offered load")
    if vals[("full", "deadline_misses")] > vals[("pre", "deadline_misses")]:
        fail(errors,
             f"invariant: full overload stack misses "
             f"({vals[('full', 'deadline_misses')]}) above preemption-only "
             f"({vals[('pre', 'deadline_misses')]})")
    for name in ("pre", "full"):
        if vals[(name, "preemptions")] < 1:
            fail(errors, f"invariant: overload[{name}] never preempted on "
                         f"the overloaded workload")
    if vals[("full", "shed")] < 1:
        fail(errors, "invariant: fair shedding never shed under overload")
    if vals[("full", "rejected_hopeless")] < 1:
        fail(errors, "invariant: fail-fast never rejected a hopeless "
                     "deadline under overload")
    overload_summary = (f"overload misses {vals[('edf', 'deadline_misses')]}"
                        f" -> {vals[('pre', 'deadline_misses')]}"
                        f" -> {vals[('full', 'deadline_misses')]}")
    return (f"{v1_summary}; {overload_summary}" if v1_summary
            else overload_summary)


def check_headline(errors, current, baseline, tol):
    metrics = require(errors, current, "metrics", "current")
    if metrics is None:
        return ""
    cur = index_rows(errors, "current.metrics", metrics, "metric")
    base = index_rows(errors, "baseline.metrics", baseline["metrics"],
                      "metric")
    missing = sorted(set(base) - set(cur))
    if missing:
        fail(errors, f"metrics: baseline metrics missing from candidate: "
                     f"{missing}")
        return ""
    passing = 0
    for name, brow in base.items():
        crow = cur[name]
        ctx = f"metrics[{name}]"
        measured = require(errors, crow, "measured", ctx)
        band = require(errors, crow, "band_pass", ctx)
        if measured is not None:
            lo = brow["measured"] - abs(brow["measured"]) * tol
            hi = brow["measured"] + abs(brow["measured"]) * tol
            if not (lo <= measured <= hi):
                fail(errors,
                     f"{ctx}.measured: {measured:.6g} drifted more than "
                     f"{tol:.0%} from baseline {brow['measured']:.6g}")
        if band is not None:
            if brow["band_pass"] and not band:
                fail(errors, f"{ctx}: band_pass regressed true -> false")
            passing += bool(band)
    all_pass = require(errors, current, "all_bands_pass", "current")
    if all_pass is not None and baseline.get("all_bands_pass") and not all_pass:
        fail(errors, "all_bands_pass regressed true -> false")
    return f"{passing}/{len(base)} bands pass"


def check_multimodel(errors, current, baseline, tol):
    mixed = require(errors, current, "mixed", "current")
    check_rows(errors, "mixed", mixed, baseline["mixed"], "policy",
               lower_is_better=("total_cycles",),
               higher_is_better=("requests_per_s", "tokens_per_s"), tol=tol,
               pinned=("kv_cross_leak_slots",))
    if mixed is not None:
        for row in mixed:
            name = row.get("policy", "?")
            ctx = f"mixed[{name}]"
            leak = require(errors, row, "kv_cross_leak_slots", ctx)
            if leak not in (None, 0):
                fail(errors, f"{ctx}: kv_cross_leak_slots = {leak} "
                             f"(cross-model KV leakage)")
            per_model = require(errors, row, "per_model", ctx)
            base_row = next((b for b in baseline["mixed"]
                             if b.get("policy") == name), None)
            if per_model is None or base_row is None:
                continue
            check_rows(errors, f"{ctx}.per_model", per_model,
                       base_row["per_model"], "model",
                       lower_is_better=("attributed_cycles",),
                       higher_is_better=(), tol=tol,
                       pinned=("completed", "generated"))
    check_rows(errors, "isolated",
               require(errors, current, "isolated", "current"),
               baseline["isolated"], "llama_slots",
               lower_is_better=("total_cycles",),
               higher_is_better=("requests_per_s",), tol=tol)
    check_rows(errors, "budget_policies",
               require(errors, current, "budget_policies", "current"),
               baseline["budget_policies"], "policy",
               lower_is_better=("total_cycles",),
               higher_is_better=("requests_per_s",), tol=tol)
    speedup = require(errors, current, "speedup_vs_best_isolated", "current")
    if speedup is not None and speedup < 1.0 - 1e-9:
        fail(errors,
             f"invariant: mixed serving ({speedup:.4f}x) fell below the "
             f"best isolated single-model split at equal total KV slots")
    if speedup is None:
        return ""
    return f"mixed {speedup:.3f}x vs best isolated split"


def check_analysis(errors, current, baseline, tol):
    """Static-analyzer report gate: diagnostics are deterministic, so
    everything is pinned — no drift tolerance applies."""
    del tol  # no tolerance-bounded fields in an analysis report
    configs = require(errors, current, "configs", "current")
    check_rows(errors, "configs", configs, baseline["configs"], "config",
               lower_is_better=(), higher_is_better=(),
               tol=0.0, pinned=("errors", "warnings", "ok"))
    if configs is not None:
        cur = index_rows(errors, "current.configs", configs, "config")
        base = index_rows(errors, "baseline.configs", baseline["configs"],
                          "config")
        for name, brow in base.items():
            crow = cur.get(name)
            if crow is None:
                continue  # already reported by check_rows
            codes = require(errors, crow, "codes", f"configs[{name}]")
            if codes is not None and sorted(codes) != sorted(brow["codes"]):
                fail(errors,
                     f"configs[{name}].codes: {sorted(codes)} != baseline "
                     f"{sorted(brow['codes'])} (diagnostic set changed)")
    total = require(errors, current, "total_errors", "current")
    all_ok = require(errors, current, "all_ok", "current")
    if total not in (None, 0):
        fail(errors, f"total_errors = {total}: a shipped config carries "
                     f"error-severity diagnostics")
    if all_ok is False:
        fail(errors, "all_ok regressed to false")
    n = len(baseline["configs"])
    warns = current.get("total_warnings", "?")
    return f"{n} configs clean, {warns} warning(s)"


def check_paging(errors, current, baseline, tol):
    """Paged-KV serving gate: concurrency/correctness counters are
    deterministic and pinned; cycle/throughput fields drift-bounded."""
    configs = require(errors, current, "configs", "current")
    check_rows(errors, "configs", configs, baseline["configs"], "config",
               lower_is_better=("total_cycles",),
               higher_is_better=("tokens_per_s",), tol=tol,
               pinned=("kv_units", "peak_batch", "completed", "bit_exact",
                       "pages_leaked", "prefix_hits", "cow_forks"))
    if configs is None:
        return ""
    rows = index_rows(errors, "current.configs", configs, "config")
    slot = rows.get("slot")
    paged = rows.get("paged")
    shared = rows.get("paged+prefix")
    if slot is None or paged is None or shared is None:
        fail(errors, "configs: expected configs slot / paged / paged+prefix")
        return ""
    vals = {}
    for name, row in (("slot", slot), ("paged", paged), ("shared", shared)):
        for field in ("peak_batch", "bit_exact", "pages_leaked",
                      "total_cycles", "prefix_hits"):
            vals[(name, field)] = require(errors, row, field,
                                          f"configs[{name}]")
    if None in vals.values():
        return ""
    for name in ("slot", "paged", "shared"):
        if vals[(name, "bit_exact")] is not True:
            fail(errors, f"invariant: configs[{name}] streams diverged from "
                         f"the dedicated single-request engine")
        if vals[(name, "pages_leaked")] != 0:
            fail(errors, f"invariant: configs[{name}] leaked "
                         f"{vals[(name, 'pages_leaked')]} KV unit(s)")
    if vals[("paged", "peak_batch")] <= vals[("slot", "peak_batch")]:
        fail(errors,
             f"invariant: paged peak batch ({vals[('paged', 'peak_batch')]}) "
             f"not above the slot engine ({vals[('slot', 'peak_batch')]}) "
             f"at equal KV bytes")
    if vals[("shared", "prefix_hits")] < 1:
        fail(errors, "invariant: prefix sharing never hit on the "
                     "repeated-prompt workload")
    if vals[("shared", "total_cycles")] >= vals[("paged", "total_cycles")]:
        fail(errors,
             f"invariant: prefix sharing saved no cycles "
             f"({vals[('shared', 'total_cycles')]} vs cold "
             f"{vals[('paged', 'total_cycles')]})")
    return (f"paged admits {vals[('paged', 'peak_batch')]} vs slot "
            f"{vals[('slot', 'peak_batch')]}, "
            f"{vals[('shared', 'prefix_hits')]} prefix hits")


def check_fleet(errors, current, baseline, tol):
    """Fleet-router gate: request-conservation counters are deterministic
    and pinned (and re-derived here, so a tampered baseline cannot hide a
    leak); cycle/transfer fields drift-bounded; plus the cross-policy
    invariants that routing intelligence pays for itself."""
    policies = require(errors, current, "policies", "current")
    check_rows(errors, "policies", policies, baseline["policies"], "policy",
               lower_is_better=("makespan_cycles", "request_transfer_cycles",
                               "response_transfer_cycles"),
               higher_is_better=(), tol=tol,
               pinned=("offered", "placed", "rejected", "routed", "misrouted",
                       "completed", "shed", "slo_requests", "deadline_misses",
                       "transfer_bytes", "prefix_hits", "prefix_shared_tokens",
                       "bit_exact", "conservation_ok"))
    if policies is None:
        return ""
    rows = index_rows(errors, "current.policies", policies, "policy")
    base_rows = index_rows(errors, "baseline.policies", baseline["policies"],
                           "policy")
    for name, row in rows.items():
        ctx = f"policies[{name}]"
        vals = {f: require(errors, row, f, ctx)
                for f in ("offered", "placed", "rejected", "routed",
                          "misrouted", "completed", "shed", "bit_exact",
                          "conservation_ok", "per_node")}
        if None in vals.values():
            continue
        if vals["offered"] != vals["placed"] + vals["rejected"]:
            fail(errors, f"{ctx}: offered ({vals['offered']}) != placed "
                         f"({vals['placed']}) + rejected ({vals['rejected']})")
        if vals["routed"] != vals["placed"] + vals["misrouted"]:
            fail(errors, f"{ctx}: routed ({vals['routed']}) != placed "
                         f"({vals['placed']}) + misrouted "
                         f"({vals['misrouted']})")
        if vals["placed"] != vals["completed"] + vals["shed"]:
            fail(errors, f"{ctx}: placed ({vals['placed']}) != completed "
                         f"({vals['completed']}) + shed ({vals['shed']})")
        if vals["bit_exact"] is not True:
            fail(errors, f"{ctx}: routed streams diverged from the "
                         f"dedicated single-node engine")
        if vals["conservation_ok"] is not True:
            fail(errors, f"{ctx}: in-bench conservation audit failed")
        brow = base_rows.get(name)
        if brow is not None:
            check_rows(errors, f"{ctx}.per_node", vals["per_node"],
                       brow["per_node"], "name",
                       lower_is_better=("total_cycles",),
                       higher_is_better=(), tol=tol,
                       pinned=("attempts", "placed", "completed", "rejected",
                               "link_rejected"))
    rr = rows.get("round_robin")
    cost = rows.get("cost_aware")
    prefix = rows.get("prefix_affinity")
    if rr is None or cost is None or prefix is None:
        fail(errors, "policies: expected round_robin / cost_aware / "
                     "prefix_affinity rows")
        return ""
    vals = {}
    for name, row in (("rr", rr), ("cost", cost), ("prefix", prefix)):
        for field in ("deadline_misses", "prefix_hits", "offered"):
            vals[(name, field)] = require(errors, row, field,
                                          f"policies[{name}]")
    if None in vals.values():
        return ""
    if len({vals[(n, "offered")] for n in ("rr", "cost", "prefix")}) != 1:
        fail(errors, "invariant: policies compared at different offered load")
    best = min(vals[("cost", "deadline_misses")],
               vals[("prefix", "deadline_misses")])
    if best >= vals[("rr", "deadline_misses")]:
        fail(errors,
             f"invariant: neither cost-aware "
             f"({vals[('cost', 'deadline_misses')]}) nor prefix-affinity "
             f"({vals[('prefix', 'deadline_misses')]}) routing beats "
             f"round-robin ({vals[('rr', 'deadline_misses')]}) on deadline "
             f"misses at identical offered load")
    if vals[("prefix", "prefix_hits")] <= vals[("rr", "prefix_hits")]:
        fail(errors,
             f"invariant: prefix-affinity hits "
             f"({vals[('prefix', 'prefix_hits')]}) not above round-robin "
             f"({vals[('rr', 'prefix_hits')]})")
    return (f"misses rr {vals[('rr', 'deadline_misses')]} vs cost "
            f"{vals[('cost', 'deadline_misses')]} vs prefix "
            f"{vals[('prefix', 'deadline_misses')]}")


def check_quant(errors, current, baseline, tol):
    """Quantized-serving gate: capacity/correctness counters are
    deterministic and pinned; cycle/throughput fields drift-bounded; plus
    the cross-config invariants the precision envelope promises."""
    configs = require(errors, current, "configs", "current")
    check_rows(errors, "configs", configs, baseline["configs"], "config",
               lower_is_better=("total_cycles", "mj_per_token"),
               higher_is_better=("tokens_per_s",), tol=tol,
               pinned=("precision", "kv_layout", "kv_elem_bits", "kv_units",
                       "peak_batch", "completed", "bit_exact",
                       "units_leaked"))
    if configs is None:
        return ""
    rows = index_rows(errors, "current.configs", configs, "config")
    fp16 = rows.get("fp16")
    int8 = rows.get("int8")
    int4 = rows.get("int8+kv4")
    if fp16 is None or int8 is None or int4 is None:
        fail(errors, "configs: expected configs fp16 / int8 / int8+kv4")
        return ""
    vals = {}
    for name, row in (("fp16", fp16), ("int8", int8), ("int4", int4)):
        for field in ("peak_batch", "bit_exact", "units_leaked",
                      "mj_per_token"):
            vals[(name, field)] = require(errors, row, field,
                                          f"configs[{name}]")
    for field in ("chip_invariant", "reduction_invariant"):
        vals[(field,)] = require(errors, current, field, "current")
    mixed = require(errors, current, "mixed", "current")
    if mixed is not None:
        for field in ("conserved", "units_leaked", "completed"):
            vals[("mixed", field)] = require(errors, mixed, field, "mixed")
    if None in vals.values() or mixed is None:
        return ""
    for name in ("fp16", "int8", "int4"):
        if vals[(name, "bit_exact")] is not True:
            fail(errors, f"invariant: configs[{name}] streams diverged from "
                         f"the dedicated single-request engine")
        if vals[(name, "units_leaked")] != 0:
            fail(errors, f"invariant: configs[{name}] leaked "
                         f"{vals[(name, 'units_leaked')]} KV unit(s)")
    # Re-derive the capacity gains instead of trusting the reported
    # ratios; a tampered baseline cannot hide a shrunken envelope.
    if vals[("int8", "peak_batch")] < 2 * vals[("fp16", "peak_batch")]:
        fail(errors,
             f"invariant: int8 peak batch ({vals[('int8', 'peak_batch')]}) "
             f"below 2x the fp16 engine ({vals[('fp16', 'peak_batch')]}) "
             f"at equal KV bytes")
    if vals[("int4", "peak_batch")] < 4 * vals[("fp16", "peak_batch")]:
        fail(errors,
             f"invariant: int4 peak batch ({vals[('int4', 'peak_batch')]}) "
             f"below 4x the fp16 engine ({vals[('fp16', 'peak_batch')]}) "
             f"at equal KV bytes")
    if vals[("int8", "mj_per_token")] >= vals[("fp16", "mj_per_token")]:
        fail(errors,
             f"invariant: int8 energy/token "
             f"({vals[('int8', 'mj_per_token')]}) not below fp16 "
             f"({vals[('fp16', 'mj_per_token')]})")
    if vals[("chip_invariant",)] is not True:
        fail(errors, "invariant: int8 token streams changed with the chip "
                     "count (int32 all-reduce no longer exact)")
    if vals[("reduction_invariant",)] is not True:
        fail(errors, "invariant: int8 token streams changed with the "
                     "reduction tree shape")
    if vals[("mixed", "conserved")] is not True:
        fail(errors, "invariant: mixed fp16+int8 registry broke per-model "
                     "attribution conservation")
    if vals[("mixed", "units_leaked")] != 0:
        fail(errors, f"invariant: mixed registry leaked "
                     f"{vals[('mixed', 'units_leaked')]} KV unit(s)")
    return (f"int8 admits {vals[('int8', 'peak_batch')]} and int4 "
            f"{vals[('int4', 'peak_batch')]} vs fp16 "
            f"{vals[('fp16', 'peak_batch')]} at equal KV bytes")


HANDLERS = {
    SERVING_SCHEMA: check_serving,
    SERVING_V2_SCHEMA: check_serving_v2,
    HEADLINE_SCHEMA: check_headline,
    MULTIMODEL_SCHEMA: check_multimodel,
    ANALYSIS_SCHEMA: check_analysis,
    PAGING_SCHEMA: check_paging,
    FLEET_SCHEMA: check_fleet,
    QUANT_SCHEMA: check_quant,
}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="BENCH_*.json from this build")
    ap.add_argument("baseline", help="checked-in bench/baselines/*.json")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="relative drift allowed on cycle/throughput fields "
                         "(default 0.05)")
    args = ap.parse_args()

    with open(args.current) as f:
        current = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    errors = []
    schema = baseline.get("schema")
    handler = HANDLERS.get(schema)
    if handler is None:
        fail(errors, f"baseline: unknown schema {schema!r} "
                     f"(expected one of {sorted(HANDLERS)})")
    if current.get("schema") != schema:
        fail(errors, f"current: schema {current.get('schema')!r} != "
                     f"baseline {schema!r}")
    summary = ""
    if not errors:
        summary = handler(errors, current, baseline, args.tolerance)

    if errors:
        print("PERF REGRESSION GATE FAILED:")
        print("\n".join(f"  - {e}" for e in errors))
        return 1
    print(f"perf gate OK [{schema}]: {args.current} within "
          f"{args.tolerance:.0%} of {args.baseline}"
          + (f" ({summary})" if summary else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
