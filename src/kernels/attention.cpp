#include "kernels/attention.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "kernels/gemm.hpp"
#include "kernels/ops.hpp"
#include "util/check.hpp"

namespace distmcu::kernels {

void attention_head(std::span<const float> q, std::span<const float> k,
                    std::span<const float> v, std::span<float> out, int s_q,
                    int s_kv, int p, bool causal, int pos_offset) {
  DISTMCU_CHECK(s_q > 0 && s_kv > 0 && p > 0, "attention: dimensions must be positive");
  DISTMCU_CHECK(q.size() == static_cast<std::size_t>(s_q) * static_cast<std::size_t>(p),
              "attention: Q size mismatch");
  DISTMCU_CHECK(k.size() == static_cast<std::size_t>(s_kv) * static_cast<std::size_t>(p),
              "attention: K size mismatch");
  DISTMCU_CHECK(v.size() == k.size(), "attention: V size mismatch");
  DISTMCU_CHECK(out.size() == q.size(), "attention: out size mismatch");

  std::vector<float> scores(static_cast<std::size_t>(s_q) * static_cast<std::size_t>(s_kv));
  gemm_nt(q, k, scores, s_q, s_kv, p);

  const float scale = 1.0f / std::sqrt(static_cast<float>(p));
  for (float& s : scores) s *= scale;

  if (causal) {
    constexpr float kNegInf = -std::numeric_limits<float>::infinity();
    for (int i = 0; i < s_q; ++i) {
      float* row = scores.data() + static_cast<std::size_t>(i) * s_kv;
      for (int j = pos_offset + i + 1; j < s_kv; ++j) row[static_cast<std::size_t>(j)] = kNegInf;
    }
  }
  softmax_rows(scores, s_q, s_kv);
  gemm(scores, v, out, s_q, p, s_kv);
}

void attention_head_ar(std::span<const float> q, std::span<const float> k,
                       std::span<const float> v, std::span<float> out, int s_kv,
                       int p) {
  // A single query attending to the full cache: causality is implied by
  // the cache containing only past positions.
  attention_head(q, k, v, out, /*s_q=*/1, s_kv, p, /*causal=*/false, /*pos_offset=*/0);
}

}  // namespace distmcu::kernels
