#include "energy/energy_model.hpp"

namespace distmcu::energy {

EnergyModel::EnergyModel(chip::ChipConfig chip_cfg, noc::LinkConfig link)
    : chip_(std::move(chip_cfg)), link_(link) {}

EnergyBreakdown EnergyModel::compute(const runtime::RunReport& report) const {
  EnergyBreakdown e;
  // P[mW] * t[s] = mJ; *1e9 -> pJ.
  const double p_mw = chip_.active_power_mw();
  for (const Cycles t : report.t_comp) {
    const double seconds = util::cycles_to_s(t, chip_.freq_hz);
    e.core += p_mw * seconds * 1e9;
  }
  e.l3 = static_cast<double>(report.traffic.l3_l2) * chip_.e_l3_pj_per_byte;
  e.l2 = static_cast<double>(report.traffic.l2_l1) * chip_.e_l2_pj_per_byte;
  e.c2c = static_cast<double>(report.traffic.c2c) * link_.energy_pj_per_byte;
  return e;
}

double EnergyModel::edp_mj_ms(const EnergyBreakdown& energy, Cycles cycles) const {
  return energy.total_mj() * util::cycles_to_ms(cycles, chip_.freq_hz);
}

}  // namespace distmcu::energy
