#ifndef DISTMCU_KERNELS_GEMM_HPP
#define DISTMCU_KERNELS_GEMM_HPP

#include <span>

namespace distmcu::kernels {

/// C[M,N] = A[M,K] * B[K,N] (+ bias broadcast over rows when given).
/// All tensors row-major. This is the functional reference used for
/// numeric validation; performance on the simulated platform comes from
/// chip::KernelTiming, not from this host implementation.
void gemm(std::span<const float> a, std::span<const float> b, std::span<float> c,
          int m, int n, int k, std::span<const float> bias = {});

/// C[M,N] = A[M,K] * B^T where B is [N,K] row-major (the Q*K^T pattern).
void gemm_nt(std::span<const float> a, std::span<const float> b, std::span<float> c,
             int m, int n, int k);

/// out[N] = x[K] * B[K,N] — the GEMV that dominates autoregressive mode.
void gemv(std::span<const float> x, std::span<const float> b, std::span<float> out,
          int n, int k, std::span<const float> bias = {});

}  // namespace distmcu::kernels

#endif  // DISTMCU_KERNELS_GEMM_HPP
