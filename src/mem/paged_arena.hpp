#ifndef DISTMCU_MEM_PAGED_ARENA_HPP
#define DISTMCU_MEM_PAGED_ARENA_HPP

#include <optional>
#include <string>
#include <vector>

#include "mem/arena.hpp"
#include "util/units.hpp"

namespace distmcu::mem {

/// Fixed-count, fixed-size *page* pool carved out of an Arena — the
/// paged counterpart of SlotArena for block-granular KV serving (the
/// vLLM layout, adapted to a fixed L2 budget): a request maps logical KV
/// blocks to physical pages through a per-request page table, acquires
/// only the pages its current length needs, and grows page-by-page at
/// decode time.
///
/// Pages carry the same tenant discipline as SlotArena slots — every
/// acquisition names the tenant the page is charged to, releases are
/// owner-checked, and per-tenant occupancy/high-water/reclaim counters
/// are maintained — plus a per-page *refcount* for copy-on-write prefix
/// sharing: a read-only prefix page can back several requests at once
/// (`add_ref`), is physically counted once toward its owning tenant, and
/// returns to the pool only when the last reference is released.
///
/// The arena reserves the whole pool up front, so the fit accounting
/// stays a single high-water number exactly as in the slot design.
class PagedKvArena {
 public:
  /// Reserves `n_pages * page_bytes` from `arena` immediately (throws
  /// PlanError via the arena when the pool does not fit).
  PagedKvArena(Arena& arena, const std::string& name, int n_pages,
               Bytes page_bytes);

  /// Lowest free page index charged to `tenant` with refcount 1, or
  /// nullopt when the pool is exhausted — callers reject, queue, or
  /// evict, never overrun.
  [[nodiscard]] std::optional<int> acquire(int tenant = 0);

  /// Take an additional reference on an in-use page (prefix sharing).
  /// The page stays charged to its original owner and is not counted
  /// again toward any tenant's occupancy. Throws on a free page.
  void add_ref(int page);

  /// Drop one reference held by `tenant`'s mapping of `page` (the
  /// owner check is against the page's *recorded owner*, so a shared
  /// page must be returned through the tenant it is charged to). The
  /// page returns to the pool when the last reference drops.
  void release(int page, int tenant);

  /// Like release, but when the dropped reference was the last one the
  /// freed page is additionally counted as *reclaimed* from `tenant` —
  /// the preemptive-eviction path.
  void reclaim(int page, int tenant);

  [[nodiscard]] int capacity() const { return static_cast<int>(owner_.size()); }
  [[nodiscard]] int in_use() const { return n_in_use_; }
  [[nodiscard]] int free() const { return capacity() - n_in_use_; }
  [[nodiscard]] Bytes page_bytes() const { return page_bytes_; }
  [[nodiscard]] Bytes pool_bytes() const {
    return static_cast<Bytes>(capacity()) * page_bytes_;
  }
  [[nodiscard]] const std::string& name() const { return name_; }

  static constexpr int kFreePage = -1;
  /// Tenant currently charged for `page` (kFreePage when unheld).
  [[nodiscard]] int owner(int page) const;
  /// References currently held on `page` (0 when free).
  [[nodiscard]] int refcount(int page) const;
  /// Sum of refcounts over all in-use pages — the conservation quantity
  /// the randomized invariant suite checks against the engine's page
  /// tables plus registry pins.
  [[nodiscard]] long long total_refs() const { return total_refs_; }
  /// Pages currently referenced by more than one mapping.
  [[nodiscard]] int shared_pages() const;

  /// Physical pages currently charged to `tenant` (each counted once,
  /// however many references it carries).
  [[nodiscard]] int tenant_in_use(int tenant) const;
  /// Most pages `tenant` ever held at once.
  [[nodiscard]] int tenant_high_water(int tenant) const;
  /// Pages reclaimed (preemptively freed) from `tenant` so far.
  [[nodiscard]] int tenant_reclaimed(int tenant) const;
  /// Reclaimed pages across all tenants.
  [[nodiscard]] int total_reclaimed() const { return total_reclaimed_; }

 private:
  void free_page(int page, int tenant);

  std::string name_;
  Bytes page_bytes_;
  std::vector<int> owner_;     // kFreePage, or the charged tenant
  std::vector<int> refcount_;  // 0 when free
  int n_in_use_ = 0;
  long long total_refs_ = 0;
  std::vector<int> tenant_in_use_;  // indexed by tenant, grown on demand
  std::vector<int> tenant_high_water_;
  std::vector<int> tenant_reclaimed_;
  int total_reclaimed_ = 0;
};

}  // namespace distmcu::mem

#endif  // DISTMCU_MEM_PAGED_ARENA_HPP
