// Tests for the public API facade: InferenceSession block measurements,
// end-to-end greedy generation (distributed numerics must produce the
// same tokens as the single-chip reference), the encoder path, the
// embedding, and the steady-state multi-block simulation.
#include <gtest/gtest.h>

#include <vector>

#include "model/embedding.hpp"
#include "model/reference_model.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/steady_state.hpp"
#include "util/check.hpp"

using namespace distmcu;
using model::Mode;
using model::TransformerConfig;
using runtime::InferenceSession;
using runtime::SteadyStateSimulation;
using runtime::SystemConfig;

namespace {

TransformerConfig small_llama() {
  TransformerConfig cfg = TransformerConfig::tiny_llama_42m();
  cfg.embed_dim = 32;
  cfg.ffn_dim = 64;
  cfg.num_heads = 4;
  cfg.head_dim = 8;
  cfg.num_layers = 2;
  cfg.vocab_size = 100;
  cfg.ar_context = 24;
  cfg.prompt_len = 4;
  cfg.validate();
  return cfg;
}

TransformerConfig small_bert() {
  TransformerConfig cfg = TransformerConfig::mobile_bert();
  cfg.embed_dim = 32;
  cfg.ffn_dim = 32;
  cfg.num_heads = 4;
  cfg.head_dim = 8;
  cfg.num_layers = 2;
  cfg.vocab_size = 64;
  cfg.ar_context = 16;
  cfg.prompt_len = 8;
  cfg.validate();
  return cfg;
}

}  // namespace

TEST(Embedding, LookupReturnsTableRows) {
  const auto cfg = small_llama();
  const model::Embedding emb(cfg, 1);
  const auto x = emb.lookup({3, 7, 3});
  EXPECT_EQ(x.rows(), 3);
  EXPECT_EQ(x.cols(), cfg.embed_dim);
  // Same id -> same row.
  for (int c = 0; c < cfg.embed_dim; ++c) EXPECT_FLOAT_EQ(x.at(0, c), x.at(2, c));
}

TEST(Embedding, RejectsOutOfVocab) {
  const auto cfg = small_llama();
  const model::Embedding emb(cfg, 1);
  EXPECT_THROW((void)emb.lookup({cfg.vocab_size}), Error);
  EXPECT_THROW((void)emb.lookup({-1}), Error);
  EXPECT_THROW((void)emb.lookup({}), Error);
}

TEST(Embedding, GreedyPicksArgmax) {
  const auto cfg = small_llama();
  const model::Embedding emb(cfg, 1);
  // The logit of token t for input = embedding(t) is that row's squared
  // norm — the diagonal dominates, so greedy should return t itself for
  // most rows; check the mechanism on one row.
  const auto x = emb.lookup({5});
  const auto lg = emb.logits(x);
  int best = 0;
  for (int v = 1; v < lg.cols(); ++v) {
    if (lg.at(0, v) > lg.at(0, best)) best = v;
  }
  EXPECT_EQ(emb.greedy_next(x), best);
}

TEST(Session, BlockResultConsistent) {
  const InferenceSession session(TransformerConfig::tiny_llama_42m(), 8);
  const auto block = session.run_block(Mode::autoregressive);
  EXPECT_EQ(block.report.num_chips, 8);
  EXPECT_EQ(block.report.breakdown.total(), block.report.block_cycles);
  EXPECT_GT(block.energy_mj(), 0.0);
  EXPECT_GT(block.latency_ms(500e6), 0.0);
  EXPECT_NEAR(block.edp_mj_ms(500e6),
              block.energy_mj() * block.latency_ms(500e6), 1e-12);
  EXPECT_EQ(block.memory.residency, partition::Residency::double_buffered);
}

TEST(Session, GenerateProducesRequestedTokens) {
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 4);
  const std::vector<int> prompt{1, 2, 3};
  const auto gen = session.generate(prompt, 5);
  EXPECT_EQ(gen.tokens.size(), prompt.size() + 5);
  EXPECT_EQ(gen.generated, 5);
  EXPECT_GT(gen.total_cycles, 0u);
  EXPECT_GT(gen.total_energy_mj, 0.0);
  EXPECT_GT(gen.tokens_per_s(500e6), 0.0);
  EXPECT_GT(gen.mj_per_token(), 0.0);
  for (std::size_t i = 0; i < prompt.size(); ++i) {
    EXPECT_EQ(gen.tokens[i], prompt[static_cast<std::size_t>(i)]);
  }
}

TEST(Session, DistributedGenerationMatchesReferenceTokens) {
  // The full pipeline (embed -> distributed blocks -> greedy head) must
  // produce the same token sequence as a single-chip reference model.
  const auto cfg = small_llama();
  const std::vector<int> prompt{4, 9, 2};
  const int steps = 6;

  const InferenceSession dist(cfg, 4, SystemConfig::siracusa_system(), 42);
  const auto gen = dist.generate(prompt, steps);

  // Reference: same weights/embedding seed, single chip.
  const model::Weights w(cfg, 42);
  const model::Embedding emb(cfg, 42);
  const model::ReferenceModel ref(cfg, w);
  auto caches = ref.make_caches(cfg.ar_context);
  std::vector<int> ref_tokens = prompt;
  model::Tensor h = emb.lookup(prompt);
  h = ref.forward_prompt(h, &caches, 0);
  int next = emb.greedy_next(h);
  int pos = static_cast<int>(prompt.size());
  for (int t = 0; t < steps; ++t) {
    ref_tokens.push_back(next);
    if (t + 1 == steps) break;
    model::Tensor x = emb.lookup({next});
    x = ref.forward_ar(x, caches, pos);
    next = emb.greedy_next(x);
    ++pos;
  }
  EXPECT_EQ(gen.tokens, ref_tokens);
}

TEST(Session, EncodeMatchesReference) {
  const auto cfg = small_bert();
  const InferenceSession session(cfg, 4, SystemConfig::siracusa_system(), 7);
  std::vector<int> tokens;
  for (int i = 0; i < cfg.prompt_len; ++i) tokens.push_back(i % cfg.vocab_size);
  const auto h = session.encode(tokens);

  const model::Weights w(cfg, 7);
  const model::Embedding emb(cfg, 7);
  const model::ReferenceModel ref(cfg, w);
  const auto h_ref = ref.forward_prompt(emb.lookup(tokens));
  EXPECT_LE(model::Tensor::max_abs_diff(h, h_ref), 5e-3f);
}

TEST(Session, EncodeRejectsWrongLength) {
  const auto cfg = small_bert();
  const InferenceSession session(cfg, 2);
  EXPECT_THROW((void)session.encode({1, 2, 3}), Error);
}

TEST(Session, GenerateRejectsContextOverflow) {
  const auto cfg = small_llama();
  const InferenceSession session(cfg, 2);
  EXPECT_THROW((void)session.generate({1}, cfg.ar_context + 1), Error);
  EXPECT_THROW((void)session.generate({}, 1), Error);
}

TEST(Session, MoreChipsSameTokensLowerLatency) {
  const auto cfg = small_llama();
  const std::vector<int> prompt{1, 2};
  const InferenceSession s1(cfg, 1);
  const InferenceSession s4(cfg, 4);
  const auto g1 = s1.generate(prompt, 4);
  const auto g4 = s4.generate(prompt, 4);
  EXPECT_EQ(g1.tokens, g4.tokens);  // numerics independent of partitioning
}

// --- steady state ---------------------------------------------------------

TEST(SteadyState, DoubleBufferedSustainedSlowerThanIsolated) {
  // The accounting gap DESIGN.md documents: at 8 chips the prefetch
  // (786 KiB @ 0.5 GB/s) outlasts the block compute.
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const auto plan = partition::PartitionPlan::create(cfg, 8);
  const SteadyStateSimulation sim(SystemConfig::siracusa_system());
  const auto ss = sim.run(plan, Mode::autoregressive);
  EXPECT_EQ(ss.residency, partition::Residency::double_buffered);
  EXPECT_EQ(ss.blocks, cfg.num_layers);
  EXPECT_GT(ss.per_block_sustained, ss.per_block_isolated);
  EXPECT_GT(ss.prefetch_stall_cycles, 0u);
}

TEST(SteadyState, FullyResidentHasNoStall) {
  const auto cfg = TransformerConfig::tiny_llama_scaled(64);
  const auto plan = partition::PartitionPlan::create(cfg, 32);
  const SteadyStateSimulation sim(SystemConfig::siracusa_system());
  const auto ss = sim.run(plan, Mode::autoregressive);
  EXPECT_EQ(ss.residency, partition::Residency::fully_resident);
  EXPECT_EQ(ss.prefetch_stall_cycles, 0u);
  EXPECT_EQ(ss.per_block_sustained, ss.per_block_isolated);
}

TEST(SteadyState, StreamedChainsBackToBack) {
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const auto plan = partition::PartitionPlan::create(cfg, 2);
  const SteadyStateSimulation sim(SystemConfig::siracusa_system());
  const auto ss = sim.run(plan, Mode::autoregressive);
  EXPECT_EQ(ss.residency, partition::Residency::streamed);
  EXPECT_EQ(ss.total_cycles,
            ss.per_block_isolated * static_cast<Cycles>(cfg.num_layers));
}
