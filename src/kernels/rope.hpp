#ifndef DISTMCU_KERNELS_ROPE_HPP
#define DISTMCU_KERNELS_ROPE_HPP

#include <span>

namespace distmcu::kernels {

/// Rotary position embedding (Llama family) applied in place to one
/// head's rows: `x` is [n_pos, head_dim] row-major, where row i holds the
/// features of absolute position `pos_offset + i`. Pairs (2j, 2j+1) are
/// rotated by angle pos / base^(2j/head_dim).
///
/// RoPE is applied per head and depends only on that head's features, so
/// it is fully chip-local under the head-dimension partitioning — no
/// extra communication, a property the partition tests assert.
void rope_apply(std::span<float> x, int n_pos, int head_dim, int pos_offset,
                float base);

}  // namespace distmcu::kernels

#endif  // DISTMCU_KERNELS_ROPE_HPP
