// Serving-throughput bench: aggregate tokens/s, energy per token, and
// mean per-request latency of the batched engine at batch sizes
// B in {1, 2, 4, 8}, against the B=1 (sequential serving) baseline AND
// against the serial-charging cost model (compute + stream per step).
// Continuous batching shares each decode step's block-weight streaming
// across the batch, and the engine overlaps the next step's weight
// prefetch with the batch's compute, so a step costs
// max(compute, stream) — prefetch_stall_cycles is the remainder the
// batch could not hide and shrinks to zero as B grows.
//
// The second table sweeps the chunked-prefill step model on the same
// default workload: prompts split into fixed-size chunks, co-scheduled
// with decodes, the chunks' own weight streaming racing the step's
// compute on the shared L3 port. prompt_mcyc — what the engine actually
// charges for the prompt phase — must drop strictly below the serial
// model's (chunk 0) charge once chunking is on.
//
// The third table runs a deadline-mixed workload (long best-effort
// background jobs submitted ahead of short interactive jobs with tight
// deadlines) under each admission policy — fifo / priority / edf — and
// reports deadline misses and the queueing-delay distribution. EDF must
// cut the miss count versus FIFO at equal-or-better aggregate
// throughput; the bench exits nonzero if it does not, so CI catches a
// scheduling regression even without the JSON gate.
//
// The fourth table drives an identical overloaded offered load — a
// burst of long best-effort background jobs from one tenant, then
// tight-deadline interactive jobs from a second tenant, then a second
// background flood that jams the bounded queue — through three engine
// configurations: the non-preemptive EDF engine, EDF + deadline-aware
// preemption (checkpoint/evict/resume), and the full overload stack
// (preemption + fail-fast rejection + fair load shedding). Preemption
// must cut the deadline misses, and the full stack must cut them
// further (hopeless deadlines are refused at submit instead of
// counting as misses); the bench exits nonzero otherwise.
//
// --json <path> additionally writes the machine-readable result used by
// the CI perf-regression gate (tools/check_bench_regression.py compares
// it against bench/baselines/serving_baseline.json). Stable schema:
//
//   {
//     "schema": "distmcu.serving.v2",
//     "model": "<config name>", "chips": N, "freq_hz": F,
//     "batch_sweep": [            // first table, one row per batch size
//       {"batch": B, "tokens_per_s": x, "total_cycles": n,
//        "stall_cycles": n, "hidden_cycles": n, "mj_per_token": x}],
//     "chunk_sweep": [            // second table, one row per chunk size
//       {"chunk": C, "total_cycles": n, "prefill_cycles": n,
//        "prefill_stall_cycles": n, "tokens_per_s": x}],
//     "slo_policies": [           // third table, one row per policy
//       {"policy": "fifo|priority|edf", "total_cycles": n,
//        "tokens_per_s": x, "slo_requests": n, "deadline_misses": n,
//        "miss_rate": x, "queue_delay_p50": n, "queue_delay_p95": n,
//        "queue_delay_p99": n}],
//     "overload": [               // fourth table, one row per config
//       {"config": "edf|edf+preempt|edf+preempt+failfast+shed",
//        "offered": n, "accepted": n, "completed": n,
//        "deadline_misses": n, "miss_rate": x,
//        "rejected_queue_full": n, "rejected_hopeless": n, "shed": n,
//        "preemptions": n, "resumes": n, "preemption_cycles": n,
//        "queue_depth_peak": n, "total_cycles": n, "tokens_per_s": x}]
//   }
//
// Integer fields are exact simulated cycles/counts; doubles are emitted
// with enough digits to round-trip. Additive fields may appear in later
// versions; consumers must key on "schema" and ignore unknown keys.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runtime/batched_engine.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/kv_budget.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/scheduler.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

using namespace distmcu;

namespace {

/// Full-width TinyLlama blocks with the layer count and vocabulary cut
/// so the functional numerics stay quick. At 4 chips this deployment
/// streams block weights from L3 on every decode step — the regime
/// where continuous batching buys throughput.
model::TransformerConfig bench_model() {
  auto cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.num_layers = 4;
  cfg.vocab_size = 512;
  cfg.ar_context = 64;
  cfg.prompt_len = 8;
  cfg.validate();
  return cfg;
}

struct BatchRow {
  int batch = 0;
  double tok_s = 0.0;
  runtime::ServingStats stats;
};

struct ChunkRow {
  int chunk = 0;
  runtime::ServingStats stats;
  double tok_s = 0.0;
};

struct PolicyRow {
  runtime::SchedulePolicy policy{};
  runtime::ServingStats stats;
  double tok_s = 0.0;
};

/// Deadline-mixed workload: four long best-effort background jobs
/// (full 8-token prompts, 16 decode tokens, priority class 2, no
/// deadline) submitted AHEAD of six short interactive jobs (2-token
/// prompts, 3 decode tokens, priority class 0, tight deadline) into two
/// KV slots with chunked prefill. FIFO admits the backgrounds first and
/// every interactive blows its deadline in the queue; a latency-aware
/// policy admits the interactives ahead and meets them, at the same
/// total work (the even background count keeps the final batch full
/// under every admission order, so throughput is an apples-to-apples
/// comparison).
PolicyRow run_slo_scenario(const runtime::InferenceSession& session,
                           runtime::SchedulePolicy policy,
                           Cycles interactive_deadline, double freq_hz) {
  runtime::BatchedEngine engine(
      session, {.max_batch = 2,
                .max_pending = 64,
                .prefill_chunk_tokens = 2,
                .scheduler = runtime::make_scheduler(policy)});
  for (int i = 0; i < 4; ++i) {
    (void)*engine.submit({1 + i, 7 + i, 3, 9, 2 + i, 5, 8, 4}, 16,
                         {.priority = 2, .deadline_cycles = runtime::kNoDeadline});
  }
  for (int i = 0; i < 6; ++i) {
    (void)*engine.submit({20 + i, 11}, 3,
                         {.priority = 0, .deadline_cycles = interactive_deadline});
  }
  (void)engine.run_to_completion();
  return {policy, engine.stats(),
          engine.stats().aggregate_tokens_per_s(freq_hz)};
}

struct OverloadRow {
  std::string config;
  int offered = 0;
  int accepted = 0;
  runtime::ServingStats stats;
  double tok_s = 0.0;
};

struct OverloadJob {
  int step = 0;  ///< engine step at which the job is offered
  runtime::ModelId model = 0;
  std::vector<int> prompt;
  int new_tokens = 0;
  runtime::SloSpec slo;
  bool attempted = false;
};

/// One fixed offered load, identical across the engine configurations:
/// a burst of long background jobs from tenant 0 saturates both KV
/// slots (borrowing tenant 1's reserve under the watermark policy),
/// tight-deadline interactive jobs from tenant 1 arrive mid-serving —
/// including two with hopeless sub-service deadlines — and a second
/// background flood jams the bounded queue before a late interactive
/// wave that only fair shedding can still seat.
std::vector<OverloadJob> overload_jobs(Cycles fg_deadline) {
  std::vector<OverloadJob> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back({0, 0, {1 + i, 7 + i, 3, 9, 2 + i, 5, 8, 4}, 16,
                    {.priority = 2, .deadline_cycles = runtime::kNoDeadline}});
  }
  for (int i = 0; i < 4; ++i) {
    jobs.push_back({2, 1, {20 + i, 11}, 3,
                    {.priority = 0, .deadline_cycles = fg_deadline}});
  }
  for (int i = 0; i < 2; ++i) {
    jobs.push_back({3, 1, {30 + i, 13}, 3,
                    {.priority = 0, .deadline_cycles = 1'000}});
  }
  for (int i = 0; i < 10; ++i) {
    jobs.push_back({4, 0, {40 + i, 9 - (i % 3), 3, 7}, 16,
                    {.priority = 2, .deadline_cycles = runtime::kNoDeadline}});
  }
  for (int i = 0; i < 3; ++i) {
    jobs.push_back({6, 1, {50 + i, 17}, 3,
                    {.priority = 0, .deadline_cycles = fg_deadline}});
  }
  return jobs;
}

OverloadRow run_overload(const runtime::InferenceSession& session,
                         std::string config, bool preempt, bool failfast,
                         bool fair_shed, Cycles fg_deadline, double freq_hz) {
  // Two tenants over one deployment: the tenancy (and the shed/reclaim
  // fairness) is what is under test, not a second model's cost profile.
  runtime::ModelRegistry reg;
  (void)reg.add(session, "background");
  (void)reg.add(session, "interactive");
  runtime::BatchedEngine::MultiOptions opts;
  opts.total_kv_slots = 2;
  opts.max_pending = 12;
  opts.scheduler = runtime::make_scheduler(runtime::SchedulePolicy::edf);
  opts.kv_budget = runtime::make_kv_budget(runtime::KvBudget::watermark);
  opts.fail_fast_deadlines = failfast;
  opts.fair_shedding = fair_shed;
  if (preempt) {
    opts.preemption = std::make_shared<runtime::DeadlineAwarePreemption>();
  }
  runtime::BatchedEngine engine(reg, opts);

  auto jobs = overload_jobs(fg_deadline);
  OverloadRow row;
  row.config = std::move(config);
  row.offered = static_cast<int>(jobs.size());
  int step = 0;
  for (;;) {
    bool submitted_any = false;
    for (auto& job : jobs) {
      if (job.attempted || job.step > step) continue;
      if (engine.submit(job.model, job.prompt, job.new_tokens, job.slo)) {
        ++row.accepted;
      }
      job.attempted = true;
      submitted_any = true;
    }
    const bool pending_arrivals = std::any_of(
        jobs.begin(), jobs.end(), [](const auto& j) { return !j.attempted; });
    const bool work = engine.step();
    ++step;
    if (!work && !pending_arrivals && !submitted_any) break;
    util::check(step <= 5000, "overload scenario did not drain");
  }
  row.stats = engine.stats();
  row.tok_s = row.stats.aggregate_tokens_per_s(freq_hz);
  // Conservation across the overload machinery, whatever the config:
  // every offered request is accounted for exactly once.
  util::check(row.accepted + row.stats.rejected == row.offered,
              "overload: offered != accepted + rejected");
  util::check(row.stats.completed + row.stats.shed == row.accepted,
              "overload: accepted != completed + shed");
  return row;
}

/// Minimal JSON emission (objects with number/string members only);
/// max_digits10 keeps the doubles round-trip exact for the gate.
void write_json(const std::string& path, const model::TransformerConfig& cfg,
                int n_chips, double freq_hz,
                const std::vector<BatchRow>& batches,
                const std::vector<ChunkRow>& chunks,
                const std::vector<PolicyRow>& policies,
                const std::vector<OverloadRow>& overload) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot open --json path " << path << "\n";
    std::exit(2);
  }
  os.precision(17);
  os << "{\n  \"schema\": \"distmcu.serving.v2\",\n"
     << "  \"model\": \"" << bench::json_escape(cfg.name) << "\",\n"
     << "  \"chips\": " << n_chips << ",\n"
     << "  \"freq_hz\": " << freq_hz << ",\n  \"batch_sweep\": [";
  for (std::size_t i = 0; i < batches.size(); ++i) {
    const auto& b = batches[i];
    os << (i == 0 ? "" : ",") << "\n    {\"batch\": " << b.batch
       << ", \"tokens_per_s\": " << b.tok_s
       << ", \"total_cycles\": " << b.stats.total_cycles
       << ", \"stall_cycles\": " << b.stats.prefetch_stall_cycles
       << ", \"hidden_cycles\": " << b.stats.stream_cycles_hidden
       << ", \"mj_per_token\": " << b.stats.mj_per_token() << "}";
  }
  os << "\n  ],\n  \"chunk_sweep\": [";
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const auto& c = chunks[i];
    os << (i == 0 ? "" : ",") << "\n    {\"chunk\": " << c.chunk
       << ", \"total_cycles\": " << c.stats.total_cycles
       << ", \"prefill_cycles\": " << c.stats.prefill_cycles
       << ", \"prefill_stall_cycles\": " << c.stats.prefill_stall_cycles
       << ", \"tokens_per_s\": " << c.tok_s << "}";
  }
  os << "\n  ],\n  \"slo_policies\": [";
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const auto& p = policies[i];
    os << (i == 0 ? "" : ",") << "\n    {\"policy\": \""
       << runtime::policy_name(p.policy) << "\""
       << ", \"total_cycles\": " << p.stats.total_cycles
       << ", \"tokens_per_s\": " << p.tok_s
       << ", \"slo_requests\": " << p.stats.slo_requests
       << ", \"deadline_misses\": " << p.stats.deadline_misses
       << ", \"miss_rate\": " << p.stats.deadline_miss_rate()
       << ", \"queue_delay_p50\": " << p.stats.queue_delay_p50
       << ", \"queue_delay_p95\": " << p.stats.queue_delay_p95
       << ", \"queue_delay_p99\": " << p.stats.queue_delay_p99 << "}";
  }
  os << "\n  ],\n  \"overload\": [";
  for (std::size_t i = 0; i < overload.size(); ++i) {
    const auto& o = overload[i];
    os << (i == 0 ? "" : ",") << "\n    {\"config\": \""
       << bench::json_escape(o.config) << "\""
       << ", \"offered\": " << o.offered
       << ", \"accepted\": " << o.accepted
       << ", \"completed\": " << o.stats.completed
       << ", \"deadline_misses\": " << o.stats.deadline_misses
       << ", \"miss_rate\": " << o.stats.deadline_miss_rate()
       << ", \"rejected_queue_full\": " << o.stats.rejected_queue_full
       << ", \"rejected_hopeless\": " << o.stats.rejected_hopeless_deadline
       << ", \"shed\": " << o.stats.shed
       << ", \"preemptions\": " << o.stats.preemptions
       << ", \"resumes\": " << o.stats.resumes
       << ", \"preemption_cycles\": " << o.stats.preemption_cycles
       << ", \"queue_depth_peak\": " << o.stats.queue_depth_peak
       << ", \"total_cycles\": " << o.stats.total_cycles
       << ", \"tokens_per_s\": " << o.tok_s << "}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);

  const auto cfg = bench_model();
  const int n_chips = 4;
  const int decode_tokens = 12;
  const double freq_hz = 500e6;
  const runtime::InferenceSession session(cfg, n_chips);

  std::cout << "Batched serving throughput — " << cfg.name << " on " << n_chips
            << " chips, " << decode_tokens << " decode tokens per request\n\n";

  util::Table table({"batch", "requests", "steps", "agg_tok_per_s",
                     "speedup_vs_b1", "overlap_gain", "stall_mcyc",
                     "mean_req_latency_ms", "mj_per_token"});
  std::vector<BatchRow> batch_rows;
  double base_tok_s = 0.0;
  for (const int batch : {1, 2, 4, 8}) {
    runtime::BatchedEngine engine(session,
                                  {.max_batch = batch, .max_pending = 64});
    for (int i = 0; i < batch; ++i) {
      // Distinct prompts so the streams differ per request.
      (void)*engine.submit({1 + i, 7 + i, 3}, decode_tokens);
    }
    const auto results = engine.run_to_completion();

    double latency_ms_sum = 0.0;
    for (const auto& r : results) {
      // Residence time in the batch — grows with contention, unlike the
      // attributed cost share in r.gen.
      latency_ms_sum += util::cycles_to_ms(r.latency_cycles(), freq_hz);
    }
    const auto& stats = engine.stats();
    const double tok_s = stats.aggregate_tokens_per_s(freq_hz);
    if (base_tok_s == 0.0) base_tok_s = tok_s;
    // What the serial-charging model (compute + stream per step) would
    // have reported: the overlap's win is the hidden stream time.
    const Cycles serial_cycles = stats.total_cycles + stats.stream_cycles_hidden;
    const double overlap_gain = static_cast<double>(serial_cycles) /
                                static_cast<double>(stats.total_cycles);

    table.row()
        .add(batch)
        .add(static_cast<int>(results.size()))
        .add(stats.steps)
        .add(tok_s, 1)
        .add(tok_s / base_tok_s, 2)
        .add(overlap_gain, 3)
        .add(static_cast<double>(stats.prefetch_stall_cycles) / 1e6, 2)
        .add(latency_ms_sum / static_cast<double>(results.size()), 3)
        .add(stats.mj_per_token(), 4);
    batch_rows.push_back({batch, tok_s, stats});
  }
  table.print(std::cout);
  std::cout << "\nstall_mcyc is nonzero only while the batch's compute cannot\n"
               "cover the shared weight stream; overlap_gain compares against\n"
               "the serial-charging model (compute + stream per step).\n";

  // --- chunked prefill sweep --------------------------------------------
  // Continuous arrivals (more requests than KV slots, half-length
  // prompts) so prompt chunks genuinely co-schedule with decode steps.
  std::cout << "\nChunked prefill — " << 2 * 4
            << " requests of 4-token prompts through 4 KV slots, chunk "
               "size swept (0 = serial prefill model):\n\n";
  util::Table chunk_table({"chunk", "steps", "prefill_steps", "prompt_mcyc",
                           "prompt_gain", "hidden_mcyc", "tail_mcyc",
                           "total_mcyc", "agg_tok_per_s"});
  std::vector<ChunkRow> chunk_rows;
  double serial_prompt_mcyc = 0.0;
  Cycles serial_prompt_cycles = 0;
  for (const int chunk : {0, 2, 4, 8}) {
    runtime::BatchedEngine engine(
        session,
        {.max_batch = 4, .max_pending = 64, .prefill_chunk_tokens = chunk});
    for (int i = 0; i < 8; ++i) {
      (void)*engine.submit({1 + i, 9 - i, 3, 7}, decode_tokens);
    }
    (void)engine.run_to_completion();
    const auto& stats = engine.stats();
    const double prompt_mcyc =
        static_cast<double>(stats.prefill_cycles) / 1e6;
    if (chunk == 0) {
      serial_prompt_mcyc = prompt_mcyc;
      serial_prompt_cycles = stats.prefill_cycles;
    }
    chunk_table.row()
        .add(chunk)
        .add(stats.steps)
        .add(stats.prefill_steps)
        .add(prompt_mcyc, 2)
        .add(serial_prompt_mcyc / prompt_mcyc, 2)
        .add(static_cast<double>(stats.prefill_cycles_hidden) / 1e6, 2)
        .add(static_cast<double>(stats.prefill_stall_cycles) / 1e6, 2)
        .add(static_cast<double>(stats.total_cycles) / 1e6, 2)
        .add(stats.aggregate_tokens_per_s(freq_hz), 1);
    chunk_rows.push_back({chunk, stats, stats.aggregate_tokens_per_s(freq_hz)});
    if (chunk > 0 && stats.prefill_cycles >= serial_prompt_cycles) {
      std::cout << "WARNING: chunk " << chunk
                << " did not beat the serial prompt charge\n";
    }
  }
  chunk_table.print(std::cout);
  std::cout << "\nprompt_mcyc is the prompt-phase charge (chunk compute + "
               "visible stream\ntails); its drop versus chunk 0 is the "
               "chunked model's win — the chunk\nstreams' port windows "
               "(service + FIFO queueing) hide behind batch compute\n"
               "(hidden_mcyc) and short prompts stop paying the full "
               "static prefill shape.\n";

  // --- scheduling policies under a deadline-mixed workload ---------------
  // Interactive deadline: ample for the jobs' own service (several times
  // the estimate) but far below the backgrounds' drain time, so the miss
  // counts isolate the ADMISSION ORDER, not the deadline tightness.
  const Cycles interactive_deadline = 160'000'000;
  std::cout << "\nScheduling policies — 4 long best-effort jobs submitted "
               "ahead of 6 short\ninteractive jobs (deadline "
            << static_cast<double>(interactive_deadline) / 1e6
            << " Mcyc), 2 KV slots, chunked prefill:\n\n";
  util::Table slo_table({"policy", "total_mcyc", "agg_tok_per_s", "slo_reqs",
                         "misses", "miss_rate", "qdelay_p50_mcyc",
                         "qdelay_p95_mcyc", "qdelay_p99_mcyc"});
  std::vector<PolicyRow> policy_rows;
  for (const auto policy :
       {runtime::SchedulePolicy::fifo, runtime::SchedulePolicy::priority,
        runtime::SchedulePolicy::edf}) {
    const PolicyRow row =
        run_slo_scenario(session, policy, interactive_deadline, freq_hz);
    slo_table.row()
        .add(runtime::policy_name(row.policy))
        .add(static_cast<double>(row.stats.total_cycles) / 1e6, 2)
        .add(row.tok_s, 1)
        .add(row.stats.slo_requests)
        .add(row.stats.deadline_misses)
        .add(row.stats.deadline_miss_rate(), 2)
        .add(static_cast<double>(row.stats.queue_delay_p50) / 1e6, 2)
        .add(static_cast<double>(row.stats.queue_delay_p95) / 1e6, 2)
        .add(static_cast<double>(row.stats.queue_delay_p99) / 1e6, 2);
    policy_rows.push_back(row);
  }
  slo_table.print(std::cout);
  std::cout << "\nSame work under every policy — only the admission order "
               "differs. EDF\nadmits the tight deadlines ahead of the queued "
               "best-effort jobs and must\ncut the miss count at "
               "equal-or-better aggregate throughput.\n";

  const auto row_for = [&policy_rows](runtime::SchedulePolicy p) -> const PolicyRow& {
    for (const auto& row : policy_rows) {
      if (row.policy == p) return row;
    }
    throw Error("serving_throughput: policy row missing");
  };
  const auto& fifo = row_for(runtime::SchedulePolicy::fifo);
  const auto& edf = row_for(runtime::SchedulePolicy::edf);
  bool ok = true;
  if (edf.stats.deadline_misses >= fifo.stats.deadline_misses) {
    std::cout << "FAIL: EDF misses (" << edf.stats.deadline_misses
              << ") not below FIFO (" << fifo.stats.deadline_misses << ")\n";
    ok = false;
  }
  if (edf.tok_s < fifo.tok_s) {
    std::cout << "FAIL: EDF throughput " << edf.tok_s << " below FIFO "
              << fifo.tok_s << "\n";
    ok = false;
  }

  // --- overload: preemption, fail-fast, fair shedding --------------------
  // Interactive deadline: generous for the jobs' own service plus one
  // checkpoint round trip, far below the background drain — so the miss
  // deltas isolate the overload machinery.
  const auto ar_block = session.run_block(model::Mode::autoregressive);
  const Cycles ar_serial = ar_block.report.block_cycles *
                           static_cast<Cycles>(cfg.num_layers);
  const Cycles prefill_serial =
      session.run_block(model::Mode::prompt).report.block_cycles *
      static_cast<Cycles>(cfg.num_layers);
  const Cycles fg_deadline = prefill_serial + 6 * ar_serial;
  std::cout << "\nOverload — identical offered load (6 long background, then "
               "tight-deadline\ninteractive arrivals incl. 2 hopeless, then a "
               "10-job background flood into a\n12-deep queue over 2 shared "
               "KV slots, watermark borrowing, EDF admission):\n\n";
  util::Table ovl_table({"config", "offered", "accepted", "completed",
                         "misses", "rej_full", "rej_hopeless", "shed",
                         "preempt", "qpeak", "agg_tok_per_s"});
  std::vector<OverloadRow> overload_rows;
  overload_rows.push_back(run_overload(session, "edf", /*preempt=*/false,
                                       /*failfast=*/false, /*fair_shed=*/false,
                                       fg_deadline, freq_hz));
  overload_rows.push_back(run_overload(session, "edf+preempt",
                                       /*preempt=*/true, /*failfast=*/false,
                                       /*fair_shed=*/false, fg_deadline,
                                       freq_hz));
  overload_rows.push_back(run_overload(session, "edf+preempt+failfast+shed",
                                       /*preempt=*/true, /*failfast=*/true,
                                       /*fair_shed=*/true, fg_deadline,
                                       freq_hz));
  for (const auto& o : overload_rows) {
    ovl_table.row()
        .add(o.config)
        .add(o.offered)
        .add(o.accepted)
        .add(o.stats.completed)
        .add(o.stats.deadline_misses)
        .add(o.stats.rejected_queue_full)
        .add(o.stats.rejected_hopeless_deadline)
        .add(o.stats.shed)
        .add(o.stats.preemptions)
        .add(o.stats.queue_depth_peak)
        .add(o.tok_s, 1);
  }
  ovl_table.print(std::cout);
  std::cout << "\nPreemption checkpoints a borrowed-slot background job out "
               "of the arena so\nthe interactive deadlines are served in "
               "time; fail-fast converts the\nhopeless deadlines into "
               "rejections instead of misses; fair shedding seats\nthe late "
               "interactive wave by dropping the flooding tenant's newest "
               "backlog.\n";

  const auto& nonpre = overload_rows[0];
  const auto& pre = overload_rows[1];
  const auto& full = overload_rows[2];
  if (pre.stats.deadline_misses >= nonpre.stats.deadline_misses) {
    std::cout << "FAIL: preemption misses (" << pre.stats.deadline_misses
              << ") not below non-preemptive (" << nonpre.stats.deadline_misses
              << ")\n";
    ok = false;
  }
  if (full.stats.deadline_misses > pre.stats.deadline_misses) {
    std::cout << "FAIL: full overload stack misses ("
              << full.stats.deadline_misses << ") above preemption-only ("
              << pre.stats.deadline_misses << ")\n";
    ok = false;
  }
  if (pre.stats.preemptions == 0 || full.stats.preemptions == 0) {
    std::cout << "FAIL: preemptive configs never preempted\n";
    ok = false;
  }
  if (full.stats.shed == 0) {
    std::cout << "FAIL: fair shedding never shed on the jammed queue\n";
    ok = false;
  }
  if (full.stats.rejected_hopeless_deadline == 0) {
    std::cout << "FAIL: fail-fast never rejected the hopeless deadlines\n";
    ok = false;
  }

  std::cout << "\nCSV:\n";
  table.write_csv(std::cout);
  chunk_table.write_csv(std::cout);
  slo_table.write_csv(std::cout);
  ovl_table.write_csv(std::cout);

  if (!json_path.empty()) {
    write_json(json_path, cfg, n_chips, freq_hz, batch_rows, chunk_rows,
               policy_rows, overload_rows);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return ok ? 0 : 1;
}
