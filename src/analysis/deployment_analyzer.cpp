#include "analysis/deployment_analyzer.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>
#include <utility>

#include "partition/memory_planner.hpp"
#include "util/units.hpp"

namespace distmcu::analysis {

namespace {

using runtime::BatchedEngine;
using runtime::InferenceSession;
using runtime::ModelDeployment;
using runtime::ModelRegistry;

void emit(AnalysisReport& report, const char* code, Severity severity,
          std::string entity, std::string message, std::string hint) {
  report.diagnostics.push_back({code, severity, std::move(entity),
                                std::move(message), std::move(hint)});
}

std::string deployment_entity(const ModelDeployment& dep) {
  return "deployment '" + dep.name + "'";
}

/// The key a deployment name collapses to on every keyed surface (trace
/// lane labels, per-model stats rows, bench JSON object keys): lowercase
/// alphanumerics, everything else folded to '_'. Two names sharing a key
/// are indistinguishable downstream even though the registry accepts
/// both as distinct strings.
std::string lane_key(const std::string& name) {
  std::string key;
  key.reserve(name.size());
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    key.push_back(std::isalnum(u) != 0
                      ? static_cast<char>(std::tolower(u))
                      : '_');
  }
  return key;
}

/// Characters safe to embed in the hand-written trace/bench JSON and in
/// trace lane labels without escaping.
bool lane_safe(const std::string& name) {
  return std::all_of(name.begin(), name.end(), [](char c) {
    const auto u = static_cast<unsigned char>(c);
    return std::isalnum(u) != 0 || c == '_' || c == '-' || c == '.' ||
           c == ':';
  });
}

/// Static mirror of one BatchedEngine::Tenant's cost/fit derivation —
/// the same block measurements, decomposed the same way, without
/// allocating any cache pool.
struct TenantModel {
  int chunk_tokens = 0;
  struct ChunkCost {
    Cycles compute = 0;
    Cycles stream = 0;
  };
  std::vector<ChunkCost> chunk_costs;
  Cycles prompt_cycles = 0;
  Cycles ar_shared_cycles = 0;   // per-step weight stream (port occupancy)
  Cycles ar_per_req_cycles = 0;  // per-request decode compute
  Bytes chip_kv_bytes = 0;
  /// Per-precision KV widths, mirroring BatchedEngine::build_tenant:
  /// every KV byte count is scaled from the planner's native entry width
  /// to the deployment's packed layout before any fit is judged.
  int kv_elem_bits = 0;
  int native_kv_bits = 0;
  struct FitPlan {
    const char* mode = "";
    partition::MemoryPlan plan;
  };
  std::vector<FitPlan> fit_plans;
  int quota = 0;
  int cap = 0;
  /// Paged mode only (zero in slot mode): effective page size in token
  /// positions (kv_page_tokens clamped to ar_context) and the
  /// worst-case-chip L2 footprint of one page — the per-unit bytes of
  /// every paged fit check, rounded up exactly like the engine's.
  int page_tokens = 0;
  Bytes chip_page_bytes = 0;
  bool measured = false;  // block measurements succeeded (no PlanError)
};

/// Same composition as BatchedEngine::estimate_request_cost: the
/// request's own service demand, excluding batch-shared streaming and
/// queueing.
Cycles estimate_request_cost(const TenantModel& t, int prompt_tokens,
                             int new_tokens) {
  Cycles est = 0;
  if (t.chunk_tokens > 0) {
    const int n_chunks = (prompt_tokens + t.chunk_tokens - 1) / t.chunk_tokens;
    for (int i = 0; i < n_chunks; ++i) {
      const auto& cc = t.chunk_costs[static_cast<std::size_t>(i)];
      est += cc.compute + cc.stream;
    }
  } else {
    est = t.prompt_cycles;
  }
  if (new_tokens > 1) {
    est += static_cast<Cycles>(new_tokens - 1) * t.ar_per_req_cycles;
  }
  return est;
}

/// Measure one deployment's block program and decompose it exactly like
/// BatchedEngine::build_tenant. PlanError from the measurement itself
/// (single-request plan infeasible) becomes DMCU-MEM-001.
void measure_tenant(const ModelDeployment& dep, TenantModel& t,
                    AnalysisReport& report) {
  const InferenceSession& session = *dep.session;
  const int prompt_len = session.config().prompt_len;
  t.chunk_tokens = dep.prefill_chunk_tokens == 0
                       ? 0
                       : std::min(dep.prefill_chunk_tokens, prompt_len);
  try {
    std::optional<runtime::BlockResult> prompt_block;
    std::vector<runtime::BlockResult> chunk_blocks;
    if (t.chunk_tokens > 0) {
      const int n = (prompt_len + t.chunk_tokens - 1) / t.chunk_tokens;
      std::vector<int> spans;
      spans.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        spans.push_back(std::min((i + 1) * t.chunk_tokens, prompt_len));
      }
      chunk_blocks = session.run_prompt_chunks(t.chunk_tokens, spans);
    } else {
      prompt_block = session.run_block(model::Mode::prompt);
    }
    const runtime::BlockResult ar_block =
        session.run_block(model::Mode::autoregressive);

    if (chunk_blocks.empty()) {
      t.fit_plans.push_back({"prompt", prompt_block->memory});
    } else {
      t.fit_plans.push_back({"chunked-prompt", chunk_blocks.front().memory});
    }
    t.fit_plans.push_back({"autoregressive", ar_block.memory});
    t.kv_elem_bits = session.kv_elem_bits();
    t.native_kv_bits =
        static_cast<int>(session.system().precision.kv_bytes) *
        runtime::kBitsPerByte;
    t.chip_kv_bytes = runtime::scale_kv_bytes(
        ar_block.memory.kv_cache_bytes, t.kv_elem_bits, t.native_kv_bits);

    const auto layers = static_cast<Cycles>(session.config().num_layers);
    if (prompt_block.has_value()) {
      t.prompt_cycles = prompt_block->report.block_cycles * layers;
    }
    t.ar_shared_cycles = ar_block.report.breakdown.dma_l3_l2 * layers;
    t.ar_per_req_cycles =
        (ar_block.report.block_cycles - ar_block.report.breakdown.dma_l3_l2) *
        layers;
    t.chunk_costs.reserve(chunk_blocks.size());
    for (const auto& cb : chunk_blocks) {
      TenantModel::ChunkCost cc;
      cc.stream = cb.report.breakdown.dma_l3_l2 * layers;
      cc.compute =
          (cb.report.block_cycles - cb.report.breakdown.dma_l3_l2) * layers;
      t.chunk_costs.push_back(cc);
    }
    t.measured = true;
  } catch (const PlanError& e) {
    emit(report, kMemOverflow, Severity::error, deployment_entity(dep),
         std::string("single-request memory plan is infeasible: ") + e.what(),
         "shrink the model shape, raise the chip count, or lower ar_context");
  }
}

}  // namespace

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::note:
      return "note";
    case Severity::warning:
      return "warning";
    case Severity::error:
      return "error";
  }
  return "error";
}

int AnalysisReport::errors() const {
  return static_cast<int>(
      std::count_if(diagnostics.begin(), diagnostics.end(), [](const auto& d) {
        return d.severity == Severity::error;
      }));
}

int AnalysisReport::warnings() const {
  return static_cast<int>(
      std::count_if(diagnostics.begin(), diagnostics.end(), [](const auto& d) {
        return d.severity == Severity::warning;
      }));
}

bool AnalysisReport::has(std::string_view code) const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [&](const auto& d) { return d.code == code; });
}

std::vector<std::string> AnalysisReport::codes() const {
  std::vector<std::string> out;
  for (const auto& d : diagnostics) {
    if (std::find(out.begin(), out.end(), d.code) == out.end()) {
      out.push_back(d.code);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string AnalysisReport::to_text() const {
  std::ostringstream os;
  if (diagnostics.empty()) {
    os << "clean: no diagnostics\n";
    return os.str();
  }
  for (const auto& d : diagnostics) {
    os << severity_name(d.severity) << "[" << d.code << "] " << d.entity
       << ": " << d.message;
    if (!d.hint.empty()) os << " (hint: " << d.hint << ")";
    os << "\n";
  }
  os << errors() << " error(s), " << warnings() << " warning(s)\n";
  return os.str();
}

AnalysisReport DeploymentAnalyzer::analyze(
    const ModelRegistry& registry, const BatchedEngine::MultiOptions& opts,
    const Workload* workload) {
  AnalysisReport report;

  // ---- DMCU-CFG-000: registry/options shape --------------------------
  if (registry.count() == 0) {
    emit(report, kCfgMalformed, Severity::error, "registry",
         "registry holds no deployments",
         "register at least one (session, name) deployment");
  }
  if (opts.total_kv_slots <= 0) {
    emit(report, kCfgMalformed, Severity::error, "options",
         "total_kv_slots must be positive (got " +
             std::to_string(opts.total_kv_slots) + ")",
         "size the shared KV arena for at least one slot per deployment");
  }
  if (opts.max_pending < 0) {
    emit(report, kCfgMalformed, Severity::error, "options",
         "max_pending must be >= 0 (got " + std::to_string(opts.max_pending) +
             ")",
         "use 0 to disable queuing beyond free KV slots");
  }
  // ---- DMCU-PAGE-007: paged-KV option shape --------------------------
  if (opts.kv_page_tokens < 0) {
    emit(report, kPagedConfig, Severity::error, "options",
         "kv_page_tokens must be >= 0 (got " +
             std::to_string(opts.kv_page_tokens) + ")",
         "use 0 for slot-granular serving or a positive page size in "
         "token positions");
  }
  if (opts.prefix_sharing && opts.kv_page_tokens == 0) {
    emit(report, kPagedConfig, Severity::warning, "options",
         "prefix_sharing is set but kv_page_tokens is 0; prefix KV pages "
         "only exist in paged mode, so the slot engine ignores the flag "
         "and every request re-runs its full prefill",
         "set kv_page_tokens > 0 to share prefixes, or drop the flag");
  }
  for (const ModelDeployment& dep : registry.entries()) {
    if (dep.session == nullptr) {
      emit(report, kCfgMalformed, Severity::error, deployment_entity(dep),
           "registry entry carries no session",
           "construct the InferenceSession before registering it");
    }
    if (dep.prefill_chunk_tokens < 0 || dep.kv_quota < 0 ||
        dep.max_resident < 0) {
      emit(report, kCfgMalformed, Severity::error, deployment_entity(dep),
           "negative serving knob (prefill_chunk_tokens/kv_quota/"
           "max_resident must be >= 0)",
           "use 0 for engine-derived defaults");
    }
  }
  if (report.errors() > 0) return report;  // nothing further is derivable

  // ---- DMCU-TRC-005: trace-lane / tenant-ID collisions ---------------
  const auto& entries = registry.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].name.empty()) {
      emit(report, kTraceCollision, Severity::error, "deployment #" +
               std::to_string(i),
           "deployment name is empty; trace lanes and per-model stats are "
           "keyed by name",
           "give every deployment a unique non-empty name");
      continue;
    }
    if (!lane_safe(entries[i].name)) {
      emit(report, kTraceCollision, Severity::error,
           deployment_entity(entries[i]),
           "name contains characters outside [A-Za-z0-9_.:-]; it would be "
           "embedded unescaped in trace labels and bench JSON keys",
           "restrict deployment names to alphanumerics, '_', '-', '.', ':'");
    }
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      if (entries[j].name.empty()) continue;
      if (entries[i].name == entries[j].name ||
          lane_key(entries[i].name) == lane_key(entries[j].name)) {
        emit(report, kTraceCollision, Severity::error,
             deployment_entity(entries[j]),
             "name collides with " + deployment_entity(entries[i]) +
                 " on the trace-lane/stats key '" +
                 lane_key(entries[i].name) +
                 "'; their per-model rows and trace lanes would be "
                 "indistinguishable",
             "rename one deployment so the sanitized keys differ");
      }
    }
  }

  // ---- DMCU-KV-002: budget policy slot conservation -------------------
  // Mirrors the engine's quota/cap derivation exactly.
  int explicit_sum = 0;
  int unset = 0;
  for (const auto& e : entries) {
    if (e.kv_quota > 0) {
      explicit_sum += e.kv_quota;
    } else {
      ++unset;
    }
  }
  if (explicit_sum > opts.total_kv_slots) {
    emit(report, kKvBudget, Severity::error, "options",
         "deployment quotas (" + std::to_string(explicit_sum) +
             ") oversubscribe total_kv_slots (" +
             std::to_string(opts.total_kv_slots) +
             "); no policy can conserve slots under these reserves",
         "raise total_kv_slots or lower per-deployment kv_quota");
    return report;  // quota derivation is undefined past this point
  }
  const int rem = opts.total_kv_slots - explicit_sum;
  if (unset > 0 && rem < unset) {
    emit(report, kKvBudget, Severity::error, "options",
         "total_kv_slots leaves no KV slot for " +
             std::to_string(unset - rem) +
             " deployment(s) with an unset quota; their static reserve "
             "derives to zero and the split can never drain them",
         "raise total_kv_slots or lower explicit quotas");
    return report;
  }
  const bool borrowing =
      opts.kv_budget != nullptr && opts.kv_budget->allows_borrowing();
  std::vector<TenantModel> tenants(entries.size());
  int unset_seen = 0;
  for (std::size_t m = 0; m < entries.size(); ++m) {
    const auto& e = entries[m];
    int quota = e.kv_quota;
    if (quota == 0) {
      quota = rem / unset + (static_cast<int>(unset_seen) < rem % unset ? 1 : 0);
      ++unset_seen;
    }
    if (quota < 1) {
      emit(report, kKvBudget, Severity::error, deployment_entity(e),
           "derived a zero KV quota", "raise total_kv_slots");
      return report;
    }
    int cap = e.max_resident > 0
                  ? std::min(e.max_resident, opts.total_kv_slots)
                  : (borrowing ? opts.total_kv_slots : quota);
    cap = std::max(cap, 1);
    tenants[m].quota = quota;
    tenants[m].cap = cap;
    if (cap < quota) {
      emit(report, kKvBudget, Severity::warning, deployment_entity(e),
           "max_resident caps the tenant at " + std::to_string(cap) +
               " slots below its quota of " + std::to_string(quota) +
               "; the " + std::to_string(quota - cap) +
               "-slot phantom reserve can never be occupied, and "
               "unmet-reserve accounting throttles other tenants' borrows "
               "against it forever",
         "lower kv_quota to max_resident or raise max_resident");
    }
  }

  // ---- DMCU-MEM-001: L2 fits ------------------------------------------
  const bool paged = opts.kv_page_tokens > 0;
  for (std::size_t m = 0; m < entries.size(); ++m) {
    TenantModel& t = tenants[m];
    measure_tenant(entries[m], t, report);
    if (!t.measured) continue;
    if (paged) {
      // Same derivation as BatchedEngine::build_tenant: the page size is
      // clamped to the context, and one page's per-chip share of the
      // full-context KV footprint is rounded up so fits never
      // under-reserve.
      const int ctx = entries[m].session->config().ar_context;
      t.page_tokens = std::min(opts.kv_page_tokens, ctx);
      t.chip_page_bytes =
          (t.chip_kv_bytes * static_cast<Bytes>(t.page_tokens) +
           static_cast<Bytes>(ctx) - 1) /
          static_cast<Bytes>(ctx);
    }
    for (const auto& fp : t.fit_plans) {
      if (paged) {
        // The cap counts pages, so resident KV is cap pages beside the
        // plan's non-KV working set (the plan's own single-set KV term
        // is swapped out, exactly like check_paged_pool_fits).
        const Bytes resident =
            static_cast<Bytes>(t.cap) * t.chip_page_bytes;
        const Bytes need = fp.plan.need() - fp.plan.kv_cache_bytes + resident;
        if (need > fp.plan.l2_usable) {
          emit(report, kMemOverflow, Severity::error,
               deployment_entity(entries[m]),
               std::to_string(t.cap) + " resident KV pages need " +
                   util::format_bytes(need) + " of L2 in " + fp.mode +
                   " mode but only " +
                   util::format_bytes(fp.plan.l2_usable) + " is usable",
               "lower max_resident/total_kv_slots, kv_page_tokens, or "
               "ar_context");
        }
        continue;
      }
      // Unified per-precision form, exactly like check_pool_fits: swap
      // the plan's native single-set KV term for cap sets at the packed
      // width (identity for native layouts).
      const Bytes set_kv = runtime::scale_kv_bytes(
          fp.plan.kv_cache_bytes, t.kv_elem_bits, t.native_kv_bits);
      const Bytes resident = fp.plan.need() - fp.plan.kv_cache_bytes +
                             set_kv * static_cast<Bytes>(t.cap);
      if (resident > fp.plan.l2_usable) {
        emit(report, kMemOverflow, Severity::error,
             deployment_entity(entries[m]),
             std::to_string(t.cap) + " pooled KV-cache sets need " +
                 util::format_bytes(resident) + " of L2 in " +
                 fp.mode + " mode but only " +
                 util::format_bytes(fp.plan.l2_usable) + " is usable",
             "lower max_resident/total_kv_slots or ar_context");
      }
    }
  }
  const bool all_measured =
      std::all_of(tenants.begin(), tenants.end(),
                  [](const TenantModel& t) { return t.measured; });
  if (entries.size() > 1 && all_measured) {
    // Worst-case co-resident KV: the arena's budget units (whole sets,
    // or pages when paged) filled greedily with the largest per-chip
    // footprints, each tenant bounded by its cap in the same unit.
    std::vector<std::pair<Bytes, int>> kv_loads;
    kv_loads.reserve(tenants.size());
    for (const TenantModel& t : tenants) {
      kv_loads.emplace_back(paged ? t.chip_page_bytes : t.chip_kv_bytes,
                            t.cap);
    }
    std::sort(kv_loads.begin(), kv_loads.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    Bytes worst_kv = 0;
    int slots_left = opts.total_kv_slots;
    for (const auto& [chip_kv, cap] : kv_loads) {
      if (slots_left <= 0) break;
      const int take = std::min(cap, slots_left);
      worst_kv += static_cast<Bytes>(take) * chip_kv;
      slots_left -= take;
    }
    for (std::size_t m = 0; m < entries.size(); ++m) {
      for (const auto& fp : tenants[m].fit_plans) {
        const Bytes need_beside =
            fp.plan.need() - fp.plan.kv_cache_bytes + worst_kv;
        if (need_beside > fp.plan.l2_usable) {
          emit(report, kMemOverflow, Severity::error,
               deployment_entity(entries[m]),
               "worst-case co-resident KV of all tenants (" +
                   util::format_bytes(worst_kv) + "/chip) plus the " +
                   fp.mode + "-mode working set needs " +
                   util::format_bytes(need_beside) + " of L2 but only " +
                   util::format_bytes(fp.plan.l2_usable) + " is usable",
               "lower total_kv_slots, tenant caps, or ar_context");
        }
      }
    }
  }

  // ---- DMCU-PORT-003: steady-state L3 port over-subscription ----------
  // At full occupancy every tenant's decode step streams its per-step
  // block weights (ar_shared_cycles of port occupancy on the normalized
  // 1 byte == 1 cycle link) while the batch computes cap * per-request
  // forwards. When the summed stream exceeds the summed compute no
  // overlap schedule can hide it: decode is permanently stall-bound.
  if (all_measured) {
    Cycles total_stream = 0;
    Cycles total_compute = 0;
    for (const TenantModel& t : tenants) {
      total_stream = util::sat_add(total_stream, t.ar_shared_cycles);
      total_compute = util::sat_add(
          total_compute,
          static_cast<Cycles>(t.cap) * t.ar_per_req_cycles);
    }
    if (total_stream > total_compute) {
      emit(report, kPortOversub, Severity::warning, "options",
           "steady-state decode streams " + std::to_string(total_stream) +
               " port cycles per step against " +
               std::to_string(total_compute) +
               " compute cycles at full occupancy; the L3 port is "
               "over-subscribed and every step stalls on weights",
           "raise tenant caps/total_kv_slots to deepen batches, or deploy "
           "on more chips to shrink the per-step stream");
    }
  }

  // ---- Workload checks: DMCU-REQ-006 / DMCU-SLO-004 -------------------
  if (workload != nullptr) {
    for (std::size_t i = 0; i < workload->requests.size(); ++i) {
      const SloRequest& rq = workload->requests[i];
      const std::string entity = "workload request #" + std::to_string(i);
      if (rq.model < 0 || rq.model >= registry.count()) {
        emit(report, kRequestShape, Severity::error, entity,
             "unknown model id " + std::to_string(rq.model),
             "target a ModelId returned by ModelRegistry::add");
        continue;
      }
      const auto& dep = entries[static_cast<std::size_t>(rq.model)];
      const auto& cfg = dep.session->config();
      bool shape_ok = true;
      if (rq.prompt_tokens <= 0) {
        emit(report, kRequestShape, Severity::error, entity,
             "prompt must not be empty", "submit at least one prompt token");
        shape_ok = false;
      }
      if (rq.new_tokens < 0) {
        emit(report, kRequestShape, Severity::error, entity,
             "new_tokens must be >= 0",
             "use 0 for encoder-style prefill-only requests");
        shape_ok = false;
      }
      if (shape_ok && rq.prompt_tokens + rq.new_tokens > cfg.ar_context) {
        emit(report, kRequestShape, Severity::error, entity,
             "sequence of " + std::to_string(rq.prompt_tokens + rq.new_tokens) +
                 " tokens exceeds " + deployment_entity(dep) +
                 "'s context length (" + std::to_string(cfg.ar_context) + ")",
             "shorten the request or raise ar_context");
        shape_ok = false;
      }
      if (shape_ok && rq.prompt_tokens > cfg.prompt_len) {
        emit(report, kRequestShape, Severity::error, entity,
             "prompt of " + std::to_string(rq.prompt_tokens) +
                 " tokens exceeds " + deployment_entity(dep) +
                 "'s prefill length (" + std::to_string(cfg.prompt_len) + ")",
             "raise the deployment's prompt_len or chunk the request");
        shape_ok = false;
      }
      if (shape_ok && paged) {
        // Mirror of submit()'s livelock guard: a sequence whose full KV
        // (prompt rows plus every decode row but the last) exceeds the
        // tenant's page cap would be admitted, grown to the cap, and
        // evicted forever.
        const int pt = std::min(opts.kv_page_tokens, cfg.ar_context);
        const int max_rows = rq.prompt_tokens + std::max(0, rq.new_tokens - 1);
        const int need_pages = (max_rows + pt - 1) / pt;
        const int cap = tenants[static_cast<std::size_t>(rq.model)].cap;
        if (need_pages > cap) {
          emit(report, kPagedConfig, Severity::error, entity,
               "sequence needs " + std::to_string(need_pages) +
                   " KV pages but " + deployment_entity(dep) +
                   " is capped at " + std::to_string(cap) +
                   "; submit() refuses it up front (grow/evict livelock)",
               "raise max_resident/total_kv_slots or kv_page_tokens, or "
               "shorten the request");
          shape_ok = false;
        }
      }
      if (!shape_ok || rq.deadline_cycles == runtime::kNoDeadline) continue;
      const TenantModel& t = tenants[static_cast<std::size_t>(rq.model)];
      if (!t.measured) continue;  // already reported as DMCU-MEM-001
      const Cycles est =
          estimate_request_cost(t, rq.prompt_tokens, rq.new_tokens);
      if (est > rq.deadline_cycles) {
        emit(report, kSloInfeasible, Severity::error, entity,
             "deadline of " + std::to_string(rq.deadline_cycles) +
                 " cycles is below the request's own service demand of " +
                 std::to_string(est) + " cycles on " +
                 deployment_entity(dep) +
                 "; even an idle engine fail-fasts it at submit",
             "relax the deadline past the cost estimate or shrink the "
             "request");
      }
    }
  }

  return report;
}

}  // namespace distmcu::analysis
