#include "util/quantile_reservoir.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace distmcu::util {

QuantileReservoir::QuantileReservoir(std::size_t capacity)
    : capacity_(capacity), rng_state_(0x6a09e667f3bcc909ull) {
  DISTMCU_CHECK(capacity_ > 0, "QuantileReservoir: capacity must be positive");
}

std::uint64_t QuantileReservoir::next_random() {
  // xorshift64* — deterministic replacement stream, no global RNG state.
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  return rng_state_ * 0x2545f4914f6cdd1dull;
}

void QuantileReservoir::insert(Cycles value) {
  ++inserted_;
  if (sorted_.size() < capacity_) {
    sorted_.insert(std::upper_bound(sorted_.begin(), sorted_.end(), value),
                   value);
    return;
  }
  // Algorithm R: keep the new sample with probability capacity/inserted,
  // evicting a uniformly random retained one.
  const std::uint64_t j = next_random() % inserted_;
  if (j >= capacity_) return;
  sorted_.erase(sorted_.begin() + static_cast<std::ptrdiff_t>(j));
  sorted_.insert(std::upper_bound(sorted_.begin(), sorted_.end(), value),
                 value);
}

Cycles QuantileReservoir::percentile(double p) const {
  if (sorted_.empty()) return 0;
  const auto n = static_cast<double>(sorted_.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank > 0) --rank;
  rank = std::min(rank, sorted_.size() - 1);
  return sorted_[rank];
}

}  // namespace distmcu::util
