// Tests for the partitioning plan, weight sharder and memory planner —
// including the zero-duplication proof and the residency crossovers the
// paper's super-linear speedups hinge on (DESIGN.md §1).
#include <gtest/gtest.h>

#include <set>

#include "chip/chip_config.hpp"
#include "model/config.hpp"
#include "model/weights.hpp"
#include "partition/memory_planner.hpp"
#include "partition/plan.hpp"
#include "partition/sharder.hpp"
#include "util/check.hpp"

using namespace distmcu;
using model::Mode;
using model::TransformerConfig;
using model::Weights;
using partition::MemoryPlan;
using partition::MemoryPlanner;
using partition::PartitionPlan;
using partition::PrecisionConfig;
using partition::Residency;
using partition::ShardedWeights;

namespace {
MemoryPlanner default_planner() {
  return MemoryPlanner(chip::ChipConfig::siracusa(), PrecisionConfig{});
}
}  // namespace

TEST(Plan, SingleChipOwnsEverything) {
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const auto plan = PartitionPlan::create(cfg, 1);
  EXPECT_EQ(plan.slice(0).num_heads(), 8);
  EXPECT_EQ(plan.slice(0).f_width(), 2048);
  EXPECT_EQ(plan.chip_block_weight_elems(0), cfg.block_weight_elems());
}

TEST(Plan, EvenSplitAcrossEightChips) {
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const auto plan = PartitionPlan::create(cfg, 8);
  for (int c = 0; c < 8; ++c) {
    EXPECT_EQ(plan.slice(c).num_heads(), 1);
    EXPECT_EQ(plan.slice(c).f_width(), 256);
    EXPECT_EQ(plan.proj_width(c), 64);
  }
}

TEST(Plan, UnevenHeadCountsGoToLowChips) {
  auto cfg = TransformerConfig::tiny_llama_42m();
  cfg.num_heads = 6;
  cfg.validate();
  const auto plan = PartitionPlan::create(cfg, 4);
  EXPECT_EQ(plan.slice(0).num_heads(), 2);
  EXPECT_EQ(plan.slice(1).num_heads(), 2);
  EXPECT_EQ(plan.slice(2).num_heads(), 1);
  EXPECT_EQ(plan.slice(3).num_heads(), 1);
  // Chip 0 is the worst case.
  EXPECT_EQ(plan.max_chip_block_weight_elems(), plan.chip_block_weight_elems(0));
}

TEST(Plan, RejectsMoreChipsThanHeads) {
  const auto cfg = TransformerConfig::tiny_llama_42m();  // 8 heads
  EXPECT_THROW(PartitionPlan::create(cfg, 16), Error);
  // The paper's fix: scale the head count, then 16..64 chips work.
  const auto scaled = TransformerConfig::tiny_llama_scaled(64);
  EXPECT_NO_THROW(PartitionPlan::create(scaled, 64));
}

TEST(Plan, TwoSyncsPerBlockStructuralConstant) {
  EXPECT_EQ(PartitionPlan::kSyncsPerBlock, 2);
}

// Property sweep: shards partition the weights exactly for any chip count.
class PlanCoverageTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanCoverageTest, ShardsSumToBlockTotalWithoutOverlap) {
  const int n = GetParam();
  const auto cfg = TransformerConfig::tiny_llama_scaled(64);
  const auto plan = PartitionPlan::create(cfg, n);
  std::uint64_t sum = 0;
  std::set<int> heads_seen;
  for (int c = 0; c < n; ++c) {
    sum += plan.chip_block_weight_elems(c);
    for (int h = plan.slice(c).head_begin; h < plan.slice(c).head_end; ++h) {
      EXPECT_TRUE(heads_seen.insert(h).second) << "head " << h << " duplicated";
    }
  }
  EXPECT_EQ(sum, cfg.block_weight_elems());
  EXPECT_EQ(heads_seen.size(), static_cast<std::size_t>(cfg.num_heads));
}

INSTANTIATE_TEST_SUITE_P(ChipCounts, PlanCoverageTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16, 32, 64));

TEST(Sharder, ShardShapesMatchPlan) {
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const Weights w(cfg, 5);
  const auto plan = PartitionPlan::create(cfg, 4);
  const ShardedWeights shards(w, plan);
  const auto& s = shards.shard(1, 0);
  EXPECT_EQ(s.wq.rows(), 512);
  EXPECT_EQ(s.wq.cols(), 128);  // 2 heads * 64
  EXPECT_EQ(s.wo.rows(), 128);
  EXPECT_EQ(s.wo.cols(), 512);
  EXPECT_EQ(s.w1.cols(), 512);  // F/4
  EXPECT_EQ(s.w2.rows(), 512);
}

TEST(Sharder, ShardValuesComeFromTheRightColumns) {
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const Weights w(cfg, 5);
  const auto plan = PartitionPlan::create(cfg, 8);
  const ShardedWeights shards(w, plan);
  // Chip 3 owns head 3 -> columns [192, 256) of WQ.
  const auto& s = shards.shard(3, 2);
  EXPECT_FLOAT_EQ(s.wq.at(17, 5), w.layer(2).wq.at(17, 192 + 5));
  EXPECT_FLOAT_EQ(s.wo.at(5, 17), w.layer(2).wo.at(192 + 5, 17));
  // Chip 3 owns F columns [768, 1024).
  EXPECT_FLOAT_EQ(s.w1.at(100, 7), w.layer(2).w1.at(100, 768 + 7));
  EXPECT_FLOAT_EQ(s.w2.at(7, 100), w.layer(2).w2.at(768 + 7, 100));
}

TEST(Sharder, ZeroDuplicationAcrossChips) {
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const Weights w(cfg, 5);
  for (int n : {1, 2, 4, 8}) {
    const auto plan = PartitionPlan::create(cfg, n);
    const ShardedWeights shards(w, plan);
    for (int l = 0; l < cfg.num_layers; ++l) {
      EXPECT_EQ(shards.layer_elem_sum(l), cfg.block_weight_elems())
          << "n=" << n << " layer=" << l;
    }
  }
}

// --- Memory planner: the paper's residency crossovers -------------------

struct ResidencyCase {
  const char* label;
  int chips;
  Mode mode;
  Residency expected;
};

class ResidencyTest : public ::testing::TestWithParam<ResidencyCase> {};

TEST_P(ResidencyTest, MatchesPaperCrossover) {
  const auto& tc = GetParam();
  TransformerConfig cfg;
  if (std::string(tc.label).find("bert") != std::string::npos) {
    cfg = TransformerConfig::mobile_bert();
  } else if (std::string(tc.label).find("scaled") != std::string::npos) {
    cfg = TransformerConfig::tiny_llama_scaled(64);
  } else {
    cfg = TransformerConfig::tiny_llama_42m();
  }
  const auto plan = PartitionPlan::create(cfg, tc.chips);
  const MemoryPlan mp = default_planner().plan(plan, tc.mode);
  EXPECT_EQ(mp.residency, tc.expected)
      << tc.label << " chips=" << tc.chips << "\n" << mp.describe();
}

INSTANTIATE_TEST_SUITE_P(
    PaperCrossovers, ResidencyTest,
    ::testing::Values(
        // TinyLlama AR: streamed through 4 chips, double-buffered at 8
        // (paper Fig. 4a: super-linear speedup appears at 8).
        ResidencyCase{"llama-ar-1", 1, Mode::autoregressive, Residency::streamed},
        ResidencyCase{"llama-ar-2", 2, Mode::autoregressive, Residency::streamed},
        ResidencyCase{"llama-ar-4", 4, Mode::autoregressive, Residency::streamed},
        ResidencyCase{"llama-ar-8", 8, Mode::autoregressive, Residency::double_buffered},
        // Prompt mode: same crossover (paper Fig. 4b).
        ResidencyCase{"llama-pr-4", 4, Mode::prompt, Residency::streamed},
        ResidencyCase{"llama-pr-8", 8, Mode::prompt, Residency::double_buffered},
        // MobileBERT: crossover at 4 chips (paper Fig. 4c).
        ResidencyCase{"bert-1", 1, Mode::prompt, Residency::streamed},
        ResidencyCase{"bert-2", 2, Mode::prompt, Residency::streamed},
        ResidencyCase{"bert-4", 4, Mode::prompt, Residency::double_buffered},
        // Scaled 64-head model (paper Sec. V-C): double-buffered at 8-16,
        // fully resident at 32-64 ("with 32 chips, all model weights fit
        // on-chip, and double-buffering is no longer required").
        ResidencyCase{"scaled-ar-8", 8, Mode::autoregressive, Residency::double_buffered},
        ResidencyCase{"scaled-ar-16", 16, Mode::autoregressive, Residency::double_buffered},
        ResidencyCase{"scaled-ar-32", 32, Mode::autoregressive, Residency::fully_resident},
        ResidencyCase{"scaled-ar-64", 64, Mode::autoregressive, Residency::fully_resident},
        ResidencyCase{"scaled-pr-16", 16, Mode::prompt, Residency::double_buffered},
        ResidencyCase{"scaled-pr-32", 32, Mode::prompt, Residency::fully_resident}),
    [](const ::testing::TestParamInfo<ResidencyCase>& info) {
      std::string name = info.param.label;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(MemoryPlanner, ByteAccountingTinyLlamaEightChips) {
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const auto plan = PartitionPlan::create(cfg, 8);
  const MemoryPlan mp = default_planner().plan(plan, Mode::autoregressive);
  EXPECT_EQ(mp.weight_shard_bytes, 786432u);           // 6 MiB / 8 chips
  EXPECT_EQ(mp.kv_cache_bytes, 131072u);               // 8L * 2 * 128 * 64 * 1B
  EXPECT_EQ(mp.all_blocks_bytes, 8u * 786432u);
  EXPECT_TRUE(mp.uses_kv_cache);
  EXPECT_EQ(mp.seq_len, 1);
  EXPECT_EQ(mp.attention_span, 128);
}

TEST(MemoryPlanner, EncoderHasNoKvCache) {
  const auto cfg = TransformerConfig::mobile_bert();
  const auto plan = PartitionPlan::create(cfg, 4);
  const MemoryPlan mp = default_planner().plan(plan, Mode::prompt);
  EXPECT_FALSE(mp.uses_kv_cache);
  EXPECT_EQ(mp.kv_cache_bytes, 0u);
  EXPECT_EQ(mp.seq_len, 268);
}

TEST(MemoryPlanner, Int8WeightsShiftCrossoverEarlier) {
  // The precision ablation (DESIGN.md): with 1-byte weights TinyLlama
  // would already double-buffer at 4 chips — the reason the paper's
  // crossover at 8 pins the deployment to 2-byte weights.
  PrecisionConfig p8;
  p8.weight_bytes = 1;
  const MemoryPlanner planner(chip::ChipConfig::siracusa(), p8);
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const auto plan = PartitionPlan::create(cfg, 4);
  EXPECT_EQ(planner.plan(plan, Mode::autoregressive).residency,
            Residency::double_buffered);
}

TEST(MemoryPlanner, Fp32WeightsPushCrossoverLater) {
  PrecisionConfig p32;
  p32.weight_bytes = 4;
  const MemoryPlanner planner(chip::ChipConfig::siracusa(), p32);
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const auto plan = PartitionPlan::create(cfg, 8);
  EXPECT_EQ(planner.plan(plan, Mode::autoregressive).residency, Residency::streamed);
}

TEST(MemoryPlanner, ThrowsWhenNothingFits) {
  chip::ChipConfig tiny = chip::ChipConfig::siracusa();
  tiny.l2_size = 128 * 1024;
  tiny.l2_runtime_reserve = 0;
  tiny.l1_tile_budget = 16 * 1024;
  const MemoryPlanner planner(tiny, PrecisionConfig{});
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const auto plan = PartitionPlan::create(cfg, 1);
  EXPECT_THROW((void)planner.plan(plan, Mode::autoregressive), PlanError);
}

TEST(MemoryPlanner, DescribeMentionsRegime) {
  const auto cfg = TransformerConfig::tiny_llama_42m();
  const auto plan = PartitionPlan::create(cfg, 8);
  const MemoryPlan mp = default_planner().plan(plan, Mode::autoregressive);
  const std::string desc = mp.describe();
  EXPECT_NE(desc.find("double-buffered"), std::string::npos);
  EXPECT_NE(desc.find("KV cache"), std::string::npos);
}
