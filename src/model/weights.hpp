#ifndef DISTMCU_MODEL_WEIGHTS_HPP
#define DISTMCU_MODEL_WEIGHTS_HPP

#include <vector>

#include "model/config.hpp"
#include "model/tensor.hpp"

namespace distmcu::model {

/// Weights of one Transformer block, stored as the kernels consume them:
/// projections are [in, out] row-major so GEMM needs no transposes.
struct LayerWeights {
  Tensor wq;  // [E, P*H]
  Tensor wk;  // [E, P*H]
  Tensor wv;  // [E, P*H]
  Tensor wo;  // [P*H, E]
  Tensor w1;  // [E, F]
  Tensor w2;  // [F, E]
  Tensor w3;  // [E, F] SwiGLU gate (empty for the plain MLP)
  Tensor norm1_gamma;  // [1, E]
  Tensor norm1_beta;   // [1, E] (layernorm only; unused for rmsnorm)
  Tensor norm2_gamma;  // [1, E]
  Tensor norm2_beta;   // [1, E]
};

/// Full model weights with deterministic pseudo-random initialization
/// (see DESIGN.md substitution 2: all measured quantities are
/// data-independent; numerics only need a stable golden input).
class Weights {
 public:
  Weights(const TransformerConfig& cfg, std::uint64_t seed);

  [[nodiscard]] const LayerWeights& layer(int i) const;
  [[nodiscard]] int num_layers() const { return static_cast<int>(layers_.size()); }
  [[nodiscard]] const TransformerConfig& config() const { return cfg_; }

  /// Bytes of one block's matmul weights at `elem_bytes` per element.
  [[nodiscard]] Bytes block_weight_bytes(Bytes elem_bytes) const {
    return cfg_.block_weight_elems() * elem_bytes;
  }

  /// Bytes of the whole model's matmul weights (all blocks, excluding
  /// embeddings, which never live in on-chip memory).
  [[nodiscard]] Bytes total_weight_bytes(Bytes elem_bytes) const {
    return block_weight_bytes(elem_bytes) * static_cast<Bytes>(cfg_.num_layers);
  }

 private:
  TransformerConfig cfg_;
  std::vector<LayerWeights> layers_;
};

}  // namespace distmcu::model

#endif  // DISTMCU_MODEL_WEIGHTS_HPP
