// Ablation A5b (extension): sequence-length sensitivity. The paper
// evaluates two fixed points (S=16 prompt, S=1 autoregressive with a
// 128-token context); this sweep shows the continuum — where the
// workload flips from memory-bound GEMV to compute-bound GEMM, how the
// 8-chip speedup decays with S, and how the autoregressive context
// length stresses the KV path.
#include <iostream>

#include "bench_common.hpp"

using namespace distmcu;

int main() {
  std::cout << "Ablation A5b — prompt length sweep, TinyLlama, 1 vs 8 chips\n";
  util::Table t1({"prompt_len", "1chip_cycles", "8chip_cycles", "speedup",
                  "8chip_compute_share_%"});
  for (const int s : {1, 2, 4, 8, 16, 32, 64, 128}) {
    auto cfg = model::TransformerConfig::tiny_llama_42m();
    cfg.prompt_len = s;
    const auto pts = bench::sweep_chips(cfg, model::Mode::prompt, {1, 8});
    const auto& r8 = pts[1].report;
    t1.row()
        .add(s)
        .add(pts[0].report.block_cycles)
        .add(r8.block_cycles)
        .add(pts[1].speedup, 2)
        .add(100.0 * static_cast<double>(r8.breakdown.compute) /
                 static_cast<double>(r8.block_cycles),
             1);
  }
  t1.print(std::cout);

  std::cout << "\nAblation A5c — autoregressive KV-context sweep, 8 chips\n";
  util::Table t2({"kv_context", "8chip_cycles", "kv_bytes_per_chip_KiB", "residency"});
  for (const int ctx : {32, 64, 128, 256, 512, 1024}) {
    auto cfg = model::TransformerConfig::tiny_llama_42m();
    cfg.ar_context = ctx;
    const auto pts = bench::sweep_chips(cfg, model::Mode::autoregressive, {8});
    const auto plan = partition::PartitionPlan::create(cfg, 8);
    const Bytes kv = static_cast<Bytes>(cfg.num_layers) * 2 *
                     static_cast<Bytes>(ctx) *
                     static_cast<Bytes>(plan.proj_width(0));
    t2.row()
        .add(ctx)
        .add(pts[0].report.block_cycles)
        .add(static_cast<double>(kv) / 1024.0, 1)
        .add(partition::residency_name(pts[0].report.residency));
  }
  t2.print(std::cout);
  std::cout << "\nreading: the prompt sweep shows the GEMV->GEMM transition (compute "
               "share grows with S, speedup decays toward the compute-bound limit); "
               "the context sweep shows the KV cache eroding the L2 budget until "
               "the 8-chip deployment falls back to the streamed regime.\n";
  return 0;
}
