#include "model/config.hpp"

#include "util/check.hpp"

namespace distmcu::model {

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::autoregressive: return "autoregressive";
    case Mode::prompt: return "prompt";
  }
  return "?";
}

std::uint64_t TransformerConfig::block_weight_elems() const {
  const auto e = static_cast<std::uint64_t>(embed_dim);
  const auto f = static_cast<std::uint64_t>(ffn_dim);
  const auto ph = static_cast<std::uint64_t>(proj_dim());
  const std::uint64_t ffn_mats = ffn == FfnKind::swiglu ? 3 : 2;
  return 4 * e * ph + ffn_mats * e * f;
}

std::uint64_t TransformerConfig::block_norm_elems() const {
  const auto e = static_cast<std::uint64_t>(embed_dim);
  const std::uint64_t per_norm = norm == NormKind::layernorm ? 2 * e : e;
  return 2 * per_norm;  // two norms per block
}

void TransformerConfig::validate() const {
  DISTMCU_CHECK(embed_dim > 0 && ffn_dim > 0 && num_heads > 0 && head_dim > 0 &&
                  num_layers > 0,
              "TransformerConfig: dimensions must be positive");
  DISTMCU_CHECK(vocab_size > 0, "TransformerConfig: vocab_size must be positive");
  DISTMCU_CHECK(ar_context > 0 && prompt_len > 0,
              "TransformerConfig: sequence parameters must be positive");
  DISTMCU_CHECK(head_dim % 2 == 0 || pos != PosEmbed::rope,
              "TransformerConfig: RoPE requires an even head_dim");
}

TransformerConfig TransformerConfig::tiny_llama_42m() {
  TransformerConfig cfg;
  cfg.name = "tinyllama-42m";
  cfg.embed_dim = 512;
  cfg.ffn_dim = 2048;
  cfg.num_heads = 8;
  cfg.head_dim = 64;
  cfg.num_layers = 8;
  cfg.vocab_size = 32000;
  cfg.ar_context = 128;
  cfg.prompt_len = 16;
  cfg.norm = NormKind::rmsnorm;
  cfg.act = Activation::gelu;
  cfg.pos = PosEmbed::rope;
  cfg.mask = MaskKind::causal;
  cfg.validate();
  return cfg;
}

TransformerConfig TransformerConfig::mobile_bert() {
  TransformerConfig cfg;
  cfg.name = "mobilebert";
  cfg.embed_dim = 512;
  cfg.ffn_dim = 512;
  cfg.num_heads = 4;
  cfg.head_dim = 128;
  cfg.num_layers = 24;
  cfg.vocab_size = 30522;
  cfg.ar_context = 268;
  cfg.prompt_len = 268;
  cfg.norm = NormKind::layernorm;
  cfg.act = Activation::gelu;
  cfg.pos = PosEmbed::none;
  cfg.mask = MaskKind::bidirectional;
  cfg.validate();
  return cfg;
}

TransformerConfig TransformerConfig::tiny_llama_scaled(int heads) {
  TransformerConfig cfg = tiny_llama_42m();
  DISTMCU_CHECK(heads > 0 && cfg.proj_dim() % heads == 0,
              "tiny_llama_scaled: heads must divide P*H = 512");
  cfg.name = "tinyllama-scaled-" + std::to_string(heads) + "h";
  cfg.head_dim = cfg.proj_dim() / heads;  // keep P*H constant first
  cfg.num_heads = heads;
  cfg.validate();
  return cfg;
}

}  // namespace distmcu::model
