#ifndef DISTMCU_NOC_COLLECTIVES_HPP
#define DISTMCU_NOC_COLLECTIVES_HPP

#include <span>
#include <vector>

#include "chip/kernel_timing.hpp"
#include "noc/topology.hpp"
#include "sim/resource.hpp"
#include "sim/tracer.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace distmcu::noc {

/// ---------------------------------------------------------------------
/// Numeric collectives
/// ---------------------------------------------------------------------
/// These execute the hierarchical schedule on real per-chip buffers and
/// are used by the functional distributed block. Accumulation follows
/// the schedule order, so results are bit-deterministic; with integer
/// element types they are also reduction-order invariant, which the
/// property tests exploit.

/// Reduce all chip buffers into the root's buffer (dst += src per hop).
template <typename T>
void reduce_numeric(const Topology& topo, std::vector<std::span<T>>& buffers) {
  DISTMCU_CHECK(buffers.size() == static_cast<std::size_t>(topo.num_chips()),
              "reduce_numeric: buffer count != chip count");
  for (const auto& stage : topo.reduce_stages()) {
    for (const auto& hop : stage) {
      auto& dst = buffers[static_cast<std::size_t>(hop.dst)];
      const auto& src = buffers[static_cast<std::size_t>(hop.src)];
      DISTMCU_CHECK(dst.size() == src.size(), "reduce_numeric: buffer size mismatch");
      for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
    }
  }
}

/// Copy the root's buffer to every chip along the mirrored schedule.
template <typename T>
void broadcast_numeric(const Topology& topo, std::vector<std::span<T>>& buffers) {
  DISTMCU_CHECK(buffers.size() == static_cast<std::size_t>(topo.num_chips()),
              "broadcast_numeric: buffer count != chip count");
  for (const auto& stage : topo.broadcast_stages()) {
    for (const auto& hop : stage) {
      auto& dst = buffers[static_cast<std::size_t>(hop.dst)];
      const auto& src = buffers[static_cast<std::size_t>(hop.src)];
      DISTMCU_CHECK(dst.size() == src.size(), "broadcast_numeric: buffer size mismatch");
      for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = src[i];
    }
  }
}

/// All-reduce: reduce to root then broadcast back. After the call every
/// chip holds the full sum.
template <typename T>
void all_reduce_numeric(const Topology& topo, std::vector<std::span<T>>& buffers) {
  reduce_numeric(topo, buffers);
  broadcast_numeric(topo, buffers);
}

/// ---------------------------------------------------------------------
/// Timed collectives
/// ---------------------------------------------------------------------

/// Timing outcome of one collective phase.
struct CollectiveTiming {
  /// When the result is available: at the root (reduce) or on the last
  /// chip (broadcast).
  Cycles finish = 0;
  /// Per-chip availability of the collective's result/contribution.
  std::vector<Cycles> chip_ready;
  /// Bytes that crossed chip-to-chip links (counted once per hop).
  Bytes c2c_bytes = 0;
  std::size_t num_transfers = 0;
  /// Total cluster-active cycles spent accumulating partial sums,
  /// summed over chips (feeds the P*T_comp energy term).
  Cycles accumulate_compute = 0;
  /// Per-chip share of `accumulate_compute` (accumulation runs on the
  /// hop destinations — group leaders and the root).
  std::vector<Cycles> accumulate_per_chip;
};

/// Replays a Topology's reduce/broadcast schedule against per-chip
/// ingress/egress link ports (sim::Resource), so that hops sharing a
/// port serialize exactly as the paper describes for the group-of-four
/// reduction ("sending all partial outputs to one specific chip of the
/// group"). Port occupancy persists across calls, making back-to-back
/// collectives on the same links contend realistically.
class CollectiveTimer {
 public:
  CollectiveTimer(const Topology& topo, const LinkConfig& link,
                  const chip::TimingConfig& timing);

  /// Time a reduce of `bytes` per partial buffer. `ready[i]` is the cycle
  /// chip i's partial output becomes available. Optionally traces
  /// chip-to-chip spans (attributed to the destination chip) and
  /// accumulate spans.
  CollectiveTiming reduce(const std::vector<Cycles>& ready, Bytes bytes,
                          sim::Tracer* tracer = nullptr);

  /// Time a broadcast of `bytes` from the root, ready at `root_ready`.
  CollectiveTiming broadcast(Cycles root_ready, Bytes bytes,
                             sim::Tracer* tracer = nullptr);

  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] const LinkConfig& link() const { return link_; }

  /// Release all port reservations (new measurement window).
  void reset();

 private:
  Topology topo_;
  LinkConfig link_;
  chip::KernelTiming timing_;
  std::vector<sim::Resource> in_ports_;
  std::vector<sim::Resource> out_ports_;
};

}  // namespace distmcu::noc

#endif  // DISTMCU_NOC_COLLECTIVES_HPP
