#include "model/embedding.hpp"

#include <cmath>

#include "kernels/gemm.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace distmcu::model {

Embedding::Embedding(const TransformerConfig& cfg, std::uint64_t seed)
    : table_(cfg.vocab_size, cfg.embed_dim) {
  util::Rng rng(seed ^ 0xe5b5u);
  table_.random_init(rng, 1.0f / std::sqrt(static_cast<float>(cfg.embed_dim)));
}

Tensor Embedding::lookup(const std::vector<int>& ids) const {
  DISTMCU_CHECK(!ids.empty(), "Embedding::lookup: empty id list");
  Tensor out(static_cast<int>(ids.size()), table_.cols());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    DISTMCU_CHECK(ids[i] >= 0 && ids[i] < table_.rows(),
                "Embedding::lookup: id out of vocabulary");
    const auto src = table_.row(ids[i]);
    auto dst = out.row(static_cast<int>(i));
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

Tensor Embedding::logits(const Tensor& x) const {
  DISTMCU_CHECK(x.cols() == table_.cols(), "Embedding::logits: width mismatch");
  Tensor out(x.rows(), table_.rows());
  kernels::gemm_nt(x.span(), table_.span(), out.span(), x.rows(), table_.rows(),
                   x.cols());
  return out;
}

int Embedding::greedy_next(const Tensor& x) const {
  const Tensor lg = logits(x.slice_rows(x.rows() - 1, x.rows()));
  int best = 0;
  float best_v = lg.at(0, 0);
  for (int v = 1; v < lg.cols(); ++v) {
    if (lg.at(0, v) > best_v) {
      best_v = lg.at(0, v);
      best = v;
    }
  }
  return best;
}

}  // namespace distmcu::model
