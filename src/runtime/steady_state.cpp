#include "runtime/steady_state.hpp"

#include <algorithm>
#include <cmath>

#include "partition/memory_planner.hpp"
#include "runtime/prefetch_pipeline.hpp"
#include "util/check.hpp"

namespace distmcu::runtime {

SteadyStateSimulation::SteadyStateSimulation(SystemConfig sys) : sys_(std::move(sys)) {}

SteadyStateReport SteadyStateSimulation::run(const partition::PartitionPlan& plan,
                                             model::Mode mode) const {
  // Per-block latency with weights staged (the paper's number).
  SystemConfig isolated = sys_;
  isolated.accounting = LatencyAccounting::single_block_resident;
  const RunReport block = TimedBlockSimulation(isolated).run(plan, mode);

  SteadyStateReport out;
  out.blocks = plan.config().num_layers;
  out.per_block_isolated = block.block_cycles;
  out.residency = block.residency;

  if (block.residency != partition::Residency::double_buffered) {
    // Streamed: L3 already serialized inside the block; fully resident:
    // nothing to fetch. Blocks chain back-to-back either way.
    out.total_cycles = block.block_cycles * static_cast<Cycles>(out.blocks);
    out.per_block_sustained = block.block_cycles;
    return out;
  }

  // Double-buffered: every chip prefetches its next-block shard on its
  // own L3 DMA concurrently with compute. Worst-case chip 0 gates the
  // system (largest shard); all chips advance in lock-step through the
  // block's two synchronizations, so one pipeline chain suffices. Block 0
  // is staged before the pass begins (the paper's setup); block 1..L-1
  // arrive by DMA issued as the previous block starts.
  const Bytes shard =
      plan.max_chip_block_weight_elems() * sys_.precision.weight_bytes;

  PrefetchPipeline pipeline(sys_.chip.bw_l3_l2, sys_.chip.dma_setup_l3);
  for (int b = 0; b < out.blocks; ++b) {
    const Bytes next_shard = b + 1 < out.blocks ? shard : Bytes{0};
    (void)pipeline.advance(block.block_cycles, next_shard);
  }

  out.total_cycles = pipeline.now();
  out.prefetch_stall_cycles = pipeline.stall_total();
  out.per_block_sustained = out.total_cycles / static_cast<Cycles>(out.blocks);
  return out;
}

}  // namespace distmcu::runtime
