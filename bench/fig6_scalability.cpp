// Reproduces paper Fig. 6: speedup of the scaled-up TinyLlama (64 heads,
// all other parameters unchanged) on 2-64 chips, autoregressive and
// prompt modes, against linear scaling.
//
// Paper's narrative: AR achieves super-linear speedup for 8-32 chips
// (on-chip residency) and quasi-linear 60.1x at 64; prompt scales
// ~linearly to 16 chips, then saturates (compute-bound, shrinking
// kernels, growing collectives).
#include <iostream>

#include "bench_common.hpp"

using namespace distmcu;

int main() {
  const auto cfg = model::TransformerConfig::tiny_llama_scaled(64);
  const std::vector<int> chips{1, 2, 4, 8, 16, 32, 64};
  const auto ar = bench::sweep_chips(cfg, model::Mode::autoregressive, chips);
  const auto pr = bench::sweep_chips(cfg, model::Mode::prompt, chips);

  std::cout << "Fig. 6 — scaled-up TinyLlama (64 heads), speedup vs chips\n";
  util::Table table({"chips", "ar_speedup", "prompt_speedup", "linear_scaling",
                     "ar_residency"});
  for (std::size_t i = 0; i < chips.size(); ++i) {
    table.row()
        .add(chips[i])
        .add(ar[i].speedup, 2)
        .add(pr[i].speedup, 2)
        .add(chips[i])
        .add(partition::residency_name(ar[i].report.residency));
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.write_csv(std::cout);

  const double ar64 = ar.back().speedup;
  const double pr16 = pr[4].speedup;
  const double pr64 = pr.back().speedup;
  const bool ar_superlinear_8_32 = ar[3].speedup > 8 && ar[4].speedup > 16 &&
                                   ar[5].speedup > 32;
  std::cout << "\npaper reports: AR 60.1x at 64 chips; super-linear 8-32; prompt "
               "linear to 16 then diminishing\n"
            << "measured:      AR " << ar64 << "x at 64; prompt " << pr16
            << "x at 16 -> " << pr64 << "x at 64\n"
            << "shape checks:\n"
            << "  AR super-linear at 8/16/32 chips: "
            << (ar_superlinear_8_32 ? "PASS" : "FAIL") << "\n"
            << "  AR quasi-linear at 64 (speedup < 64, > 40): "
            << (ar64 < 64 && ar64 > 40 ? "PASS" : "FAIL") << "\n"
            << "  prompt saturates past 16 chips (gain 16->64 below 2.5x): "
            << (pr64 / pr16 < 2.5 ? "PASS" : "FAIL") << "\n";
  return 0;
}
