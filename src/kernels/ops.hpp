#ifndef DISTMCU_KERNELS_OPS_HPP
#define DISTMCU_KERNELS_OPS_HPP

#include <span>

namespace distmcu::kernels {

/// Row-wise numerically stable softmax over an [rows, cols] tensor,
/// in place (paper Eq. 3: max-subtracted exponentials).
void softmax_rows(std::span<float> x, int rows, int cols);

/// RMSNorm (Llama family): out = x / rms(x) * gamma, row-wise.
/// `x` and `out` may alias.
void rmsnorm_rows(std::span<const float> x, std::span<const float> gamma,
                  std::span<float> out, int rows, int cols, float eps);

/// LayerNorm (BERT family): out = (x - mean) / sqrt(var + eps) * gamma + beta.
void layernorm_rows(std::span<const float> x, std::span<const float> gamma,
                    std::span<const float> beta, std::span<float> out, int rows,
                    int cols, float eps);

/// Element-wise activations, in place.
void gelu(std::span<float> x);   // exact erf formulation [19]
void silu(std::span<float> x);
void relu(std::span<float> x);

/// out[i] += x[i]
void add_inplace(std::span<float> out, std::span<const float> x);

/// out[i] *= x[i]
void mul_inplace(std::span<float> out, std::span<const float> x);

}  // namespace distmcu::kernels

#endif  // DISTMCU_KERNELS_OPS_HPP
