#ifndef DISTMCU_SIM_TRACE_EXPORT_HPP
#define DISTMCU_SIM_TRACE_EXPORT_HPP

#include <iosfwd>

#include "sim/tracer.hpp"

namespace distmcu::sim {

/// Export a tracer's spans as Chrome-tracing JSON (chrome://tracing /
/// Perfetto "traceEvents" format): one process per chip, one track per
/// activity category, microsecond timestamps derived from the cluster
/// clock. This is the visual counterpart of GVSoC's VCD traces — load
/// the file in Perfetto to see the two-synchronization block structure,
/// the DMA/compute overlap, and the prefetch racing the block.
void write_chrome_trace(const Tracer& tracer, double freq_hz, std::ostream& os);

}  // namespace distmcu::sim

#endif  // DISTMCU_SIM_TRACE_EXPORT_HPP
