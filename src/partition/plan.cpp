#include "partition/plan.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace distmcu::partition {

PartitionPlan::PartitionPlan(model::TransformerConfig cfg, std::vector<ChipSlice> slices)
    : cfg_(std::move(cfg)), slices_(std::move(slices)) {}

PartitionPlan PartitionPlan::create(const model::TransformerConfig& cfg, int n_chips) {
  cfg.validate();
  DISTMCU_CHECK(n_chips >= 1, "PartitionPlan: need at least one chip");
  DISTMCU_CHECK(n_chips <= cfg.num_heads,
              "PartitionPlan: more chips (" + std::to_string(n_chips) + ") than heads (" +
                  std::to_string(cfg.num_heads) +
                  ") — scale the head count first (paper Sec. V-C)");
  DISTMCU_CHECK(n_chips <= cfg.ffn_dim,
              "PartitionPlan: more chips than FFN columns");

  std::vector<ChipSlice> slices;
  slices.reserve(static_cast<std::size_t>(n_chips));
  const int h_base = cfg.num_heads / n_chips;
  const int h_extra = cfg.num_heads % n_chips;
  const int f_base = cfg.ffn_dim / n_chips;
  const int f_extra = cfg.ffn_dim % n_chips;
  int h_cursor = 0;
  int f_cursor = 0;
  for (int c = 0; c < n_chips; ++c) {
    ChipSlice s;
    s.chip = c;
    s.head_begin = h_cursor;
    s.head_end = h_cursor + h_base + (c < h_extra ? 1 : 0);
    s.f_begin = f_cursor;
    s.f_end = f_cursor + f_base + (c < f_extra ? 1 : 0);
    h_cursor = s.head_end;
    f_cursor = s.f_end;
    slices.push_back(s);
  }
  PartitionPlan plan(cfg, std::move(slices));
  plan.validate();
  return plan;
}

const ChipSlice& PartitionPlan::slice(int chip) const {
  DISTMCU_CHECK(chip >= 0 && chip < num_chips(), "PartitionPlan::slice: chip out of range");
  return slices_[static_cast<std::size_t>(chip)];
}

int PartitionPlan::proj_width(int chip) const {
  return slice(chip).num_heads() * cfg_.head_dim;
}

std::uint64_t PartitionPlan::chip_block_weight_elems(int chip) const {
  const auto e = static_cast<std::uint64_t>(cfg_.embed_dim);
  const auto pw = static_cast<std::uint64_t>(proj_width(chip));
  const auto fw = static_cast<std::uint64_t>(slice(chip).f_width());
  const std::uint64_t ffn_mats = cfg_.ffn == model::FfnKind::swiglu ? 3 : 2;
  return 4 * e * pw + ffn_mats * e * fw;
}

std::uint64_t PartitionPlan::max_chip_block_weight_elems() const {
  std::uint64_t mx = 0;
  for (int c = 0; c < num_chips(); ++c) {
    mx = std::max(mx, chip_block_weight_elems(c));
  }
  return mx;
}

std::uint64_t PartitionPlan::sync_payload_elems(int seq_len) const {
  return static_cast<std::uint64_t>(seq_len) * static_cast<std::uint64_t>(cfg_.embed_dim);
}

void PartitionPlan::validate() const {
  DISTMCU_CHECK(!slices_.empty(), "PartitionPlan: empty");
  int h_cursor = 0;
  int f_cursor = 0;
  std::uint64_t elem_sum = 0;
  for (int c = 0; c < num_chips(); ++c) {
    const ChipSlice& s = slices_[static_cast<std::size_t>(c)];
    DISTMCU_CHECK(s.chip == c, "PartitionPlan: slice/chip index mismatch");
    DISTMCU_CHECK(s.head_begin == h_cursor && s.head_end > s.head_begin,
                "PartitionPlan: head ranges must tile [0, H) contiguously");
    DISTMCU_CHECK(s.f_begin == f_cursor && s.f_end > s.f_begin,
                "PartitionPlan: FFN ranges must tile [0, F) contiguously");
    h_cursor = s.head_end;
    f_cursor = s.f_end;
    elem_sum += chip_block_weight_elems(c);
  }
  DISTMCU_CHECK(h_cursor == cfg_.num_heads, "PartitionPlan: heads not fully covered");
  DISTMCU_CHECK(f_cursor == cfg_.ffn_dim, "PartitionPlan: FFN not fully covered");
  // Zero duplication: shards partition the block's weights exactly.
  DISTMCU_CHECK(elem_sum == cfg_.block_weight_elems(),
              "PartitionPlan: shard elements do not sum to block total");
}

}  // namespace distmcu::partition
