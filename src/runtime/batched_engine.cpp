#include "runtime/batched_engine.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace distmcu::runtime {

namespace {

/// Re-check one mode's memory plan with max_batch KV sets resident: the
/// memory planner validated a single request's KV against the
/// worst-case chip's L2, so scale its KV term by max_batch.
void check_pool_fits(const partition::MemoryPlan& mp, int max_batch,
                     const char* mode) {
  const Bytes extra_kv = mp.kv_cache_bytes * static_cast<Bytes>(max_batch - 1);
  util::check_plan(
      mp.need() + extra_kv <= mp.l2_usable,
      "BatchedEngine: " + std::to_string(max_batch) +
          " pooled KV-cache sets need " +
          util::format_bytes(mp.need() + extra_kv) + " of L2 in " + mode +
          " mode but only " + util::format_bytes(mp.l2_usable) +
          " is usable; lower max_batch or ar_context");
}

/// Validate the options and the pooled-KV fit for both serving phases
/// BEFORE any cache tensors are allocated; returns max_batch so it can
/// run in the constructor's init list ahead of the pool member. With
/// chunking enabled the prompt phase materializes chunk-shaped
/// activations only, so its fit is checked at the chunk shape.
int checked_pool_slots(const BatchedEngine::Options& opts,
                       const std::optional<BlockResult>& prompt_block,
                       const BlockResult& ar_block,
                       const std::vector<BlockResult>& chunk_blocks) {
  util::check(opts.max_batch > 0, "BatchedEngine: max_batch must be positive");
  util::check(opts.max_pending >= 0, "BatchedEngine: max_pending must be >= 0");
  if (chunk_blocks.empty()) {
    check_pool_fits(prompt_block->memory, opts.max_batch, "prompt");
  } else {
    check_pool_fits(chunk_blocks.front().memory, opts.max_batch,
                    "chunked-prompt");
  }
  check_pool_fits(ar_block.memory, opts.max_batch, "autoregressive");
  return opts.max_batch;
}

/// Nearest-rank percentile of an ascending-sorted sample (0 when empty).
Cycles percentile(const std::vector<Cycles>& sorted, double p) {
  if (sorted.empty()) return 0;
  auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  rank = std::max<std::size_t>(rank, 1);
  return sorted[std::min(rank, sorted.size()) - 1];
}

/// Effective chunk size: clamped to the deployment's static prompt
/// shape, 0 when chunking is disabled.
int effective_chunk_tokens(const BatchedEngine::Options& opts, int prompt_len) {
  util::check(opts.prefill_chunk_tokens >= 0,
              "BatchedEngine: prefill_chunk_tokens must be >= 0");
  if (opts.prefill_chunk_tokens == 0) return 0;
  return std::min(opts.prefill_chunk_tokens, prompt_len);
}

/// One chunk-shaped block measurement per chunk position of the padded
/// static prompt: chunk i processes C rows attending to (i+1)*C cached
/// positions (capped at the full prompt shape).
std::vector<BlockResult> build_chunk_blocks(const InferenceSession& session,
                                            int chunk_tokens) {
  if (chunk_tokens <= 0) return {};
  const int prompt_len = session.config().prompt_len;
  const int n = (prompt_len + chunk_tokens - 1) / chunk_tokens;
  std::vector<int> spans;
  spans.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    spans.push_back(std::min((i + 1) * chunk_tokens, prompt_len));
  }
  return session.run_prompt_chunks(chunk_tokens, spans);
}

}  // namespace

BatchedEngine::BatchedEngine(const InferenceSession& session, Options opts,
                             sim::Tracer* tracer)
    : session_(session),
      opts_(opts),
      tracer_(tracer),
      chunk_tokens_(effective_chunk_tokens(opts, session.config().prompt_len)),
      // The full prompt shape is only planned and measured in serial
      // mode: chunked serving must stay constructible on deployments
      // whose full-prompt activations cannot fit L2 at all.
      prompt_block_(chunk_tokens_ > 0
                        ? std::nullopt
                        : std::optional<BlockResult>(
                              session.run_block(model::Mode::prompt))),
      ar_block_(session.run_block(model::Mode::autoregressive)),
      chunk_blocks_(build_chunk_blocks(session, chunk_tokens_)),
      kv_pool_(
          checked_pool_slots(opts, prompt_block_, ar_block_, chunk_blocks_),
          [&session] {
            return session.block_executor().make_chip_caches(
                session.config().ar_context);
          }),
      kv_set_bytes_(
          kv_pool_.set_capacity_bytes(session.system().precision.kv_bytes)),
      // Size the arena for max_batch aligned slot reservations exactly.
      kv_arena_("l2.kv_pool",
                static_cast<Bytes>(opts.max_batch) *
                    mem::Arena::align_up(kv_set_bytes_,
                                         mem::Arena::kDefaultAlignment)),
      kv_slots_(kv_arena_, "kv_set", opts.max_batch, kv_set_bytes_) {
  const auto layers = static_cast<Cycles>(session_.config().num_layers);

  if (prompt_block_.has_value()) {
    prompt_cycles_ = prompt_block_->report.block_cycles * layers;
    prompt_energy_mj_ =
        prompt_block_->energy_mj() * static_cast<double>(layers);
    prompt_stream_cycles_ = prompt_block_->report.breakdown.dma_l3_l2 * layers;
  }

  // Decode-step decomposition: the L3->L2 portion is block-weight
  // streaming, fetched once per layer no matter how many requests are in
  // the batch; everything else scales with the batch.
  ar_shared_cycles_ = ar_block_.report.breakdown.dma_l3_l2 * layers;
  ar_per_req_cycles_ =
      (ar_block_.report.block_cycles - ar_block_.report.breakdown.dma_l3_l2) *
      layers;
  ar_shared_energy_mj_ =
      util::pj_to_mj(ar_block_.energy.l3) * static_cast<double>(layers);
  ar_per_req_energy_mj_ =
      util::pj_to_mj(ar_block_.energy.core + ar_block_.energy.l2 +
                     ar_block_.energy.c2c) *
      static_cast<double>(layers);
  stream_bytes_per_step_ = ar_block_.report.traffic.l3_l2 * layers;

  // Chunk decomposition mirrors the decode one: the chunk's own L3 share
  // becomes asynchronous port occupancy racing the step, the rest is
  // serialized compute.
  chunk_costs_.reserve(chunk_blocks_.size());
  for (const auto& cb : chunk_blocks_) {
    ChunkCost cc;
    cc.stream = cb.report.breakdown.dma_l3_l2 * layers;
    cc.compute =
        (cb.report.block_cycles - cb.report.breakdown.dma_l3_l2) * layers;
    cc.energy_mj = cb.energy_mj() * static_cast<double>(layers);
    cc.l3_bytes = cb.report.traffic.l3_l2 * layers;
    chunk_costs_.push_back(cc);
  }
  // The raw chunk reports are fully consumed (pool fit check above,
  // per-chunk costs here); only the compact decomposition serves steps.
  chunk_blocks_.clear();
  chunk_blocks_.shrink_to_fit();

  // Admission policy: the configured scheduler, or the process-wide FIFO
  // instance (policies are stateless, so sharing it is safe).
  static const FifoScheduler kDefaultFifo;
  scheduler_ = opts_.scheduler != nullptr ? opts_.scheduler.get() : &kDefaultFifo;
}

Cycles BatchedEngine::estimate_request_cost(int prompt_tokens,
                                            int new_tokens) const {
  // Prefill charge from the same block-program decomposition the steps
  // use, then one per-request decode forward per generated token past
  // the prefill output (generate's composition: prompt + (n-1) decodes).
  // Batch-shared weight streaming and queueing are excluded — this is
  // the request's own service demand, not a latency prediction.
  Cycles est = 0;
  if (chunk_tokens_ > 0) {
    const int n_chunks = (prompt_tokens + chunk_tokens_ - 1) / chunk_tokens_;
    for (int i = 0; i < n_chunks; ++i) {
      const auto& cc = chunk_costs_[static_cast<std::size_t>(i)];
      est += cc.compute + cc.stream;
    }
  } else {
    est = prompt_cycles_;
  }
  if (new_tokens > 1) {
    est += static_cast<Cycles>(new_tokens - 1) * ar_per_req_cycles_;
  }
  return est;
}

std::optional<RequestId> BatchedEngine::submit(std::vector<int> prompt,
                                               int new_tokens, SloSpec slo) {
  util::check(!prompt.empty(), "submit: prompt must not be empty");
  util::check(new_tokens >= 0, "submit: new_tokens must be >= 0");
  util::check(static_cast<int>(prompt.size()) + new_tokens <=
                  session_.config().ar_context,
              "submit: sequence exceeds the model's context length");
  // Prefill cost and the construction-time L2 fit were both derived from
  // the deployment's static prompt shape, so longer prompts would be
  // silently under-charged and under-validated.
  util::check(static_cast<int>(prompt.size()) <= session_.config().prompt_len,
              "submit: prompt exceeds the deployment's prefill length (" +
                  std::to_string(session_.config().prompt_len) + ")");

  // max_pending bounds the *queue*: only the backlog beyond what the
  // free KV slots can absorb at the next admission point counts against
  // it, so an idle engine with a free slot admits even at
  // max_pending == 0.
  const int backlog = static_cast<int>(pending_.size()) - kv_slots_.free();
  if (backlog >= opts_.max_pending) {
    ++stats_.rejected;
    return std::nullopt;
  }
  Request r;
  r.id = next_id_++;
  r.prompt = std::move(prompt);
  r.new_tokens = new_tokens;
  r.slo = slo;
  r.submitted_at = pipeline_.now();
  if (slo.deadline_cycles != kNoDeadline) {
    r.deadline_at = r.submitted_at + slo.deadline_cycles;
  }
  r.estimated_cost = estimate_request_cost(static_cast<int>(r.prompt.size()),
                                           new_tokens);
  const RequestId id = r.id;
  pending_.push_back(std::move(r));
  return id;
}

BatchedEngine::Request BatchedEngine::take_scheduled_pending() {
  std::vector<Scheduler::Candidate> queue;
  queue.reserve(pending_.size());
  for (const Request& p : pending_) {
    Scheduler::Candidate c;
    c.id = p.id;
    c.priority = p.slo.priority;
    c.deadline_at = p.deadline_at;
    c.submitted_at = p.submitted_at;
    // Ids are issued monotonically at submit, so they double as the
    // policies' FIFO tie-break sequence.
    c.submit_seq = p.id;
    c.estimated_cost = p.estimated_cost;
    queue.push_back(c);
  }
  const std::size_t idx = scheduler_->pick(queue, pipeline_.now());
  util::check(idx < pending_.size(),
              std::string("BatchedEngine: scheduler '") + scheduler_->name() +
                  "' returned an out-of-range queue index");
  Request r = std::move(pending_[idx]);
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(idx));
  return r;
}

void BatchedEngine::trace_admission(const Request& r) {
  if (tracer_ == nullptr || r.admitted_at <= r.submitted_at) return;
  tracer_->set_request(r.id);
  tracer_->record(0, sim::Category::sched, r.submitted_at, r.admitted_at, 0,
                  "sched.queue");
  tracer_->set_request(sim::kNoRequest);
}

void BatchedEngine::charge(Request& r, Cycles cycles, double energy_mj,
                           sim::Category cat, const char* label, Cycles begin) {
  r.cycles += cycles;
  r.energy_mj += energy_mj;
  if (tracer_ != nullptr && cycles > 0) {
    tracer_->set_request(r.id);
    tracer_->record(0, cat, begin, begin + cycles, 0, label);
    tracer_->set_request(sim::kNoRequest);
  }
}

void BatchedEngine::finish(Request& r, int step_idx) {
  kv_slots_.release(r.slot);
  r.slot = -1;
  RequestResult out;
  out.id = r.id;
  out.admitted_step = r.admitted_step;
  out.finished_step = step_idx;
  out.admitted_at = r.admitted_at;
  // The boundary at which the final token was committed: the request's
  // own last completed work, not the end of a step other requests are
  // still filling.
  out.finished_at = r.work_done_at;
  out.slo = r.slo;
  out.submitted_at = r.submitted_at;
  out.deadline_at = r.deadline_at;
  out.gen.tokens = std::move(r.tokens);
  out.gen.generated = r.generated;
  out.gen.total_cycles = r.cycles;
  out.gen.total_energy_mj = r.energy_mj;

  // SLO accounting: attained-vs-deadline and the queueing-delay
  // distribution, refreshed so stats() is a consistent snapshot at every
  // completion.
  const Cycles queue_delay = out.queue_delay_cycles();
  stats_.queue_delay_total += queue_delay;
  queue_delays_.insert(
      std::upper_bound(queue_delays_.begin(), queue_delays_.end(), queue_delay),
      queue_delay);
  stats_.queue_delay_p50 = percentile(queue_delays_, 0.50);
  stats_.queue_delay_p95 = percentile(queue_delays_, 0.95);
  stats_.queue_delay_p99 = percentile(queue_delays_, 0.99);
  if (out.deadline_at != kNoDeadline) {
    ++stats_.slo_requests;
    if (out.missed_deadline()) {
      ++stats_.deadline_misses;
      // Instant marker on the request's lane at the moment the deadline
      // was finally blown (its own finish boundary).
      if (tracer_ != nullptr) {
        tracer_->set_request(out.id);
        tracer_->record(0, sim::Category::sched, out.finished_at,
                        out.finished_at, 0, "sched.deadline.miss");
        tracer_->set_request(sim::kNoRequest);
      }
    }
  }

  finished_.push_back(std::move(out));
  ++stats_.completed;
}

// --------------------------------------------------------------------------
// Serial-prefill compatibility mode (prefill_chunk_tokens == 0): a joining
// request's whole prompt is charged in full at admission.
// --------------------------------------------------------------------------

model::Tensor BatchedEngine::forward_tokens(const Request& r,
                                            const std::vector<int>& toks,
                                            int pos_offset) {
  const auto& block = session_.block_executor();
  model::Tensor h = session_.embedding().lookup(toks);
  for (int l = 0; l < session_.config().num_layers; ++l) {
    h = block.forward(h, l, &kv_pool_.slot(r.slot), pos_offset);
  }
  return h;
}

int BatchedEngine::admit_pending_serial(int step_idx, double& step_energy) {
  const auto& emb = session_.embedding();

  int admitted = 0;
  while (!pending_.empty()) {
    const auto slot = kv_slots_.acquire();
    if (!slot.has_value()) break;
    Request r = take_scheduled_pending();
    r.slot = *slot;
    r.admitted_step = step_idx;
    // The request's own position on the step timeline: prefills of
    // requests admitted earlier this step have already advanced the
    // pipeline, so their cycles never leak into this request's
    // residence latency.
    r.admitted_at = pipeline_.now();
    trace_admission(r);
    kv_pool_.reset_slot(r.slot);

    const model::Tensor h = forward_tokens(r, r.prompt, 0);
    r.tokens = r.prompt;
    r.prefill_pos = static_cast<int>(r.prompt.size());
    r.pos = static_cast<int>(r.prompt.size());
    charge(r, prompt_cycles_, prompt_energy_mj_, sim::Category::compute,
           "prefill", r.admitted_at);
    stats_.prefill_cycles += prompt_cycles_;
    // Prefill advances the timeline without touching the staged decode
    // weights; an in-flight stream prefetch keeps draining underneath,
    // except while the prefill's own L3 streaming occupies the port.
    pipeline_.advance_opaque(prompt_cycles_, prompt_stream_cycles_);
    r.work_done_at = pipeline_.now();
    step_energy += prompt_energy_mj_;
    ++admitted;

    if (r.new_tokens == 0) {
      finish(r, step_idx);
    } else {
      r.next = emb.greedy_next(h);
      active_.push_back(std::move(r));
    }
  }
  return admitted;
}

bool BatchedEngine::step_serial() {
  if (pending_.empty() && active_.empty()) return false;
  const int step_idx = stats_.steps;
  double step_energy = 0.0;

  if (admit_pending_serial(step_idx, step_energy) > 0) ++stats_.prefill_steps;
  stats_.peak_batch =
      std::max(stats_.peak_batch, static_cast<int>(active_.size()));

  const auto& emb = session_.embedding();

  // Emit one token per active request; a request that emits its final
  // token leaves without running another forward, mirroring
  // InferenceSession::generate exactly.
  std::vector<Request> still_active;
  still_active.reserve(active_.size());
  for (auto& r : active_) {
    r.tokens.push_back(r.next);
    ++r.generated;
    ++stats_.total_generated;
    if (r.generated == r.new_tokens) {
      finish(r, step_idx);
      continue;
    }
    r.next = emb.greedy_next(forward_tokens(r, {r.next}, r.pos));
    ++r.pos;
    still_active.push_back(std::move(r));
  }
  active_ = std::move(still_active);

  // Decode phase: the batch's serialized forwards race the weight stream
  // the previous decode step prefetched, and the prefetch for the NEXT
  // step is issued the moment this one starts. Only the unhidden stall
  // lands on the step; it is attributed in equal integer shares
  // (remainder cycles to the earliest admitted) so per-request cycles
  // still sum to the aggregate exactly. Streaming energy is charged in
  // full regardless of overlap — the DMA runs either way.
  if (!active_.empty()) {
    const auto b = static_cast<Cycles>(active_.size());
    const Cycles compute = b * ar_per_req_cycles_;
    // Skip the speculative fetch when this is provably the last step.
    const bool work_remains = !pending_.empty() ||
                              std::any_of(active_.begin(), active_.end(),
                                          [](const Request& r) {
                                            return r.generated + 1 < r.new_tokens;
                                          });
    const Bytes next_stream =
        work_remains ? static_cast<Bytes>(ar_shared_cycles_) : Bytes{0};
    const auto span = pipeline_.advance(compute, next_stream);

    // Trace the stream DMA this step consumed (issued during an earlier
    // step, so it overlaps whatever ran since) and remember the one just
    // issued for the step that will consume it.
    if (tracer_ != nullptr && pending_fetch_ready_ > pending_fetch_start_) {
      tracer_->record(0, sim::Category::dma_l3_l2, pending_fetch_start_,
                      pending_fetch_ready_, stream_bytes_per_step_,
                      "weights.prefetch");
    }
    // Serial mode is the port's only consumer, so service starts at the
    // issue point.
    pending_fetch_start_ = span.fetch_issue;
    pending_fetch_ready_ = span.fetch_ready;

    // Per-request decode compute at its serialized slot on the step
    // timeline; the stall shares all sit in the wait window at the
    // start of the phase, overlapping across the requests' trace lanes.
    const Cycles share = span.stall / b;
    const Cycles rem = span.stall % b;
    const double e_share =
        ar_shared_energy_mj_ / static_cast<double>(active_.size());
    for (std::size_t i = 0; i < active_.size(); ++i) {
      charge(active_[i], ar_per_req_cycles_, ar_per_req_energy_mj_,
             sim::Category::compute, "decode",
             span.start + static_cast<Cycles>(i) * ar_per_req_cycles_);
      const Cycles c = share + (static_cast<Cycles>(i) < rem ? 1 : 0);
      charge(active_[i], c, e_share, sim::Category::dma_l3_l2,
             "weights.stall", span.begin);
      // Tokens commit at phase boundaries: every participant's work
      // extends to the phase end, whichever serialized slot it ran in.
      active_[i].work_done_at = span.end;
    }
    step_energy += static_cast<double>(b) * ar_per_req_energy_mj_ +
                   ar_shared_energy_mj_;
    ++stats_.decode_steps;
    stats_.prefetch_stall_cycles += span.stall;
    stats_.stream_cycles_hidden += ar_shared_cycles_ - span.stall;
  }

  stats_.total_cycles = pipeline_.now();
  stats_.total_energy_mj += step_energy;
  ++stats_.steps;
  return !(pending_.empty() && active_.empty());
}

// --------------------------------------------------------------------------
// Chunked-prefill mode (prefill_chunk_tokens > 0): heterogeneous steps.
// --------------------------------------------------------------------------

void BatchedEngine::admit_pending_chunked(int step_idx) {
  while (!pending_.empty()) {
    const auto slot = kv_slots_.acquire();
    if (!slot.has_value()) break;
    Request r = take_scheduled_pending();
    r.slot = *slot;
    r.admitted_step = step_idx;
    // Provisional; refined to the start of the request's own first chunk
    // once the step timeline is laid out.
    r.admitted_at = pipeline_.now();
    kv_pool_.reset_slot(r.slot);
    active_.push_back(std::move(r));
  }
}

int BatchedEngine::run_prefill_chunk(Request& r) {
  const int len = static_cast<int>(r.prompt.size());
  const int begin = r.prefill_pos;
  const int chunk_idx = begin / chunk_tokens_;
  const int end = std::min(begin + chunk_tokens_, len);

  const std::vector<int> chunk(r.prompt.begin() + begin,
                               r.prompt.begin() + end);
  const model::Tensor h = forward_tokens(r, chunk, begin);
  r.prefill_pos = end;
  if (r.prefill_done()) {
    r.tokens = r.prompt;
    r.pos = len;
    if (r.new_tokens > 0) r.next = session_.embedding().greedy_next(h);
  }
  return chunk_idx;
}

bool BatchedEngine::step_chunked() {
  if (pending_.empty() && active_.empty()) return false;
  const int step_idx = stats_.steps;
  double step_energy = 0.0;

  admit_pending_chunked(step_idx);
  stats_.peak_batch =
      std::max(stats_.peak_batch, static_cast<int>(active_.size()));

  // ---- functional work -------------------------------------------------
  // Every prefilling request advances one chunk; a request completing its
  // final chunk joins this step's token commit (its prefill output IS its
  // first forward, mirroring the serial mode and generate()).
  struct ChunkRun {
    std::size_t req;  // index into active_
    int chunk;        // chunk position (indexes chunk_costs_)
    bool first;       // the request's first chunk (admission point)
  };
  std::vector<ChunkRun> chunk_runs;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    Request& r = active_[i];
    if (r.prefill_done()) continue;
    const bool first = r.prefill_pos == 0;
    const int ci = run_prefill_chunk(r);
    chunk_runs.push_back({i, ci, first});
  }

  std::vector<std::size_t> decode_runs;  // ran a decode forward this step
  std::vector<std::size_t> finishers;    // leave at this boundary
  for (std::size_t i = 0; i < active_.size(); ++i) {
    Request& r = active_[i];
    if (!r.prefill_done()) continue;
    if (r.new_tokens == 0) {
      // Prefill-only request: done at its own last chunk.
      finishers.push_back(i);
      continue;
    }
    r.tokens.push_back(r.next);
    ++r.generated;
    ++stats_.total_generated;
    if (r.generated == r.new_tokens) {
      finishers.push_back(i);
      continue;
    }
    r.next = session_.embedding().greedy_next(forward_tokens(r, {r.next}, r.pos));
    ++r.pos;
    decode_runs.push_back(i);
  }

  // ---- step cost through the multi-consumer pipeline -------------------
  Cycles prefill_compute = 0;
  Cycles prefill_stream = 0;
  Bytes prefill_l3_bytes = 0;
  for (const auto& cr : chunk_runs) {
    const ChunkCost& cc = chunk_costs_[static_cast<std::size_t>(cr.chunk)];
    prefill_compute += cc.compute;
    prefill_stream += cc.stream;
    prefill_l3_bytes += cc.l3_bytes;
  }
  const auto d = static_cast<Cycles>(decode_runs.size());
  const bool any_decode = !decode_runs.empty();

  if (!chunk_runs.empty() || any_decode) {
    // Speculative fetch for the next decode step, issued only from steps
    // that consume a stream themselves (a pure-prefill step leaves the
    // staged weights untouched). Decode work remains while anything in
    // the queue or the batch will still run a decode forward.
    bool decode_work_remains = !pending_.empty();
    for (std::size_t i = 0;
         i < active_.size() && !decode_work_remains; ++i) {
      if (std::find(finishers.begin(), finishers.end(), i) !=
          finishers.end()) {
        continue;
      }
      const Request& r = active_[i];
      decode_work_remains = r.prefill_done() ? r.generated + 1 < r.new_tokens
                                             : r.new_tokens > 1;
    }
    const Bytes next_stream = any_decode && decode_work_remains
                                  ? static_cast<Bytes>(ar_shared_cycles_)
                                  : Bytes{0};

    const auto sp = pipeline_.advance_step(
        prefill_compute, static_cast<Bytes>(prefill_stream), any_decode,
        d * ar_per_req_cycles_, next_stream);

    // Trace the chunk streams' port service window (untagged: the DMA is
    // a shared-port activity; the visible tail is charged per request
    // below) and the consumed decode prefetch.
    if (tracer_ != nullptr && prefill_stream > 0) {
      tracer_->record(0, sim::Category::dma_l3_l2, sp.chunk_stream_start,
                      sp.chunk_ready, prefill_l3_bytes, "prompt.stream");
    }
    if (any_decode) {
      if (tracer_ != nullptr && pending_fetch_ready_ > pending_fetch_start_) {
        tracer_->record(0, sim::Category::dma_l3_l2, pending_fetch_start_,
                        pending_fetch_ready_, stream_bytes_per_step_,
                        "weights.prefetch");
      }
      pending_fetch_start_ = sp.fetch_start;
      pending_fetch_ready_ = sp.fetch_ready;
    }

    // ---- exact attribution --------------------------------------------
    // Prompt chunks at their serialized slots from the step start.
    Cycles cum = sp.begin;
    for (const auto& cr : chunk_runs) {
      Request& r = active_[cr.req];
      const ChunkCost& cc = chunk_costs_[static_cast<std::size_t>(cr.chunk)];
      if (cr.first) {
        r.admitted_at = cum;
        trace_admission(r);
      }
      charge(r, cc.compute, cc.energy_mj, sim::Category::compute,
             "prefill.chunk", cum);
      cum += cc.compute;
      r.work_done_at = cum;
      step_energy += cc.energy_mj;
    }
    // The visible chunk-stream tail lands on the prefilling requests in
    // equal integer shares (remainder to the earliest admitted), all in
    // the tail window past the compute.
    if (sp.prefill_tail > 0) {
      const auto pn = static_cast<Cycles>(chunk_runs.size());
      const Cycles share = sp.prefill_tail / pn;
      const Cycles rem = sp.prefill_tail % pn;
      const Cycles tail_begin = sp.end - sp.prefill_tail;
      for (std::size_t j = 0; j < chunk_runs.size(); ++j) {
        Request& r = active_[chunk_runs[j].req];
        const Cycles c = share + (static_cast<Cycles>(j) < rem ? 1 : 0);
        charge(r, c, 0.0, sim::Category::dma_l3_l2, "prompt.stall",
               tail_begin);
        r.work_done_at = sp.end;
      }
    }
    // Decode forwards after the stall window, as in the serial mode.
    if (any_decode) {
      const Cycles share = sp.stall / d;
      const Cycles rem = sp.stall % d;
      const double e_share =
          ar_shared_energy_mj_ / static_cast<double>(decode_runs.size());
      const Cycles decode_end = sp.decode_start + d * ar_per_req_cycles_;
      for (std::size_t j = 0; j < decode_runs.size(); ++j) {
        Request& r = active_[decode_runs[j]];
        charge(r, ar_per_req_cycles_, ar_per_req_energy_mj_,
               sim::Category::compute, "decode",
               sp.decode_start + static_cast<Cycles>(j) * ar_per_req_cycles_);
        const Cycles c = share + (static_cast<Cycles>(j) < rem ? 1 : 0);
        charge(r, c, e_share, sim::Category::dma_l3_l2, "weights.stall",
               sp.decode_begin);
        // Tokens commit at the decode phase boundary; the chunk-stream
        // tail belongs to the prefilling requests, not the decoders —
        // except a request that ran its own chunk this very step, whose
        // tail share already extended its work to the step end.
        r.work_done_at = std::max(r.work_done_at, decode_end);
      }
      step_energy += static_cast<double>(d) * ar_per_req_energy_mj_ +
                     ar_shared_energy_mj_;
      ++stats_.decode_steps;
      stats_.prefetch_stall_cycles += sp.stall;
      stats_.stream_cycles_hidden += ar_shared_cycles_ - sp.stall;
    }
    if (!chunk_runs.empty()) {
      ++stats_.prefill_steps;
      stats_.prefill_cycles += prefill_compute + sp.prefill_tail;
      stats_.prefill_stream_cycles += sp.prefill_window;
      stats_.prefill_stall_cycles += sp.prefill_tail;
      stats_.prefill_cycles_hidden += sp.prefill_window - sp.prefill_tail;
    }
  }

  // ---- retire finished requests at the boundary ------------------------
  if (!finishers.empty()) {
    std::vector<Request> still_active;
    still_active.reserve(active_.size() - finishers.size());
    std::size_t f = 0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (f < finishers.size() && finishers[f] == i) {
        finish(active_[i], step_idx);
        ++f;
      } else {
        still_active.push_back(std::move(active_[i]));
      }
    }
    active_ = std::move(still_active);
  }

  stats_.total_cycles = pipeline_.now();
  stats_.total_energy_mj += step_energy;
  ++stats_.steps;
  return !(pending_.empty() && active_.empty());
}

bool BatchedEngine::step() {
  return chunk_tokens_ > 0 ? step_chunked() : step_serial();
}

std::vector<RequestResult> BatchedEngine::run_to_completion() {
  while (step()) {
  }
  return finished_;
}

}  // namespace distmcu::runtime
